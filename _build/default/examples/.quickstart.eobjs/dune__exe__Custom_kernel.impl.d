examples/custom_kernel.ml: Behaviour Block_parallel Float Format Graph Image Item Kernel List Machine Mapping Method_spec Port Rate Sim Sink Size Source Token Window
