examples/quickstart.ml: Block_parallel Conv Float Format Graph Image Image_ops List Machine Pipeline Rate Sim Sink Size Source Window
