examples/quickstart.mli:
