examples/security_camera.ml: Arith Block_parallel Conv Float Format Graph Histogram Image Image_ops List Machine Median Pipeline Rate Sim Sink Size Source Window
