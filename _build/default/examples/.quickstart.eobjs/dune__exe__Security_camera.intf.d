examples/security_camera.mli:
