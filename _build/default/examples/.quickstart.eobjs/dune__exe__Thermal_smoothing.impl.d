examples/thermal_smoothing.ml: Behaviour Block_parallel Conv Feedback Float Format Graph Image Image_ops Kernel List Machine Method_spec Pipeline Port Rate Sim Sink Size Source Step Window
