examples/thermal_smoothing.mli:
