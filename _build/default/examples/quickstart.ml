(* Quickstart: a real-time blur.

   Build a three-kernel application — a camera-like input, a 3x3 box blur,
   an output — and let the compiler do everything the paper automates:
   insert the row buffer, check the rates, parallelize if needed, and map
   the kernels to processors. Then simulate and verify the pixels.

   Run with: dune exec examples/quickstart.exe *)

open Block_parallel

let () =
  (* The real-time contract: 32x24 frames at 50 frames per second. *)
  let frame = Size.v 32 24 in
  let rate = Rate.hz 50. in
  let frames = Image.Gen.frame_sequence ~seed:1 frame 4 in

  (* The application graph, exactly as the programmer writes it: no
     buffers, no splits — the 3x3 window on the blur input is the whole
     story the compiler needs. *)
  let g = Graph.create () in
  let input =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let blur = Graph.add g ~name:"3x3 Blur" (Conv.spec ~w:3 ~h:3 ()) in
  let coeff_img = Image.Gen.constant (Size.v 3 3) (1. /. 9.) in
  let coeff =
    Graph.add g (Source.const ~class_name:"Blur Coeff" ~chunk:coeff_img ())
  in
  let results = Sink.collector () in
  let output = Graph.add g (Sink.spec ~window:Window.pixel results ()) in
  Graph.connect g ~from:(input, "out") ~into:(blur, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(blur, "coeff");
  Graph.connect g ~from:(blur, "out") ~into:(output, "in");

  (* Compile: analysis, buffering, alignment, parallelization. *)
  let compiled = Pipeline.compile ~machine:Machine.default g in
  Format.printf "%a@." Pipeline.pp_summary compiled;

  (* Simulate on the timing-accurate functional simulator. *)
  let result = Pipeline.simulate compiled ~greedy:true in
  Format.printf "%a@." Sim.pp_result result;

  (* Verify every pixel against the reference convolution. *)
  let expected = List.map (fun f -> Image_ops.convolve f ~kernel:coeff_img) frames in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list
          (Size.v (frame.Size.w - 2) (frame.Size.h - 2))
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames results)
  in
  let worst =
    List.fold_left2
      (fun acc a b -> Float.max acc (Image.max_abs_diff a b))
      0. expected got
  in
  let verdict =
    Sim.real_time_verdict result ~expected_frames:4
      ~period_s:(Rate.frame_period_s rate) ()
  in
  Format.printf "pixels: worst |diff| = %g; real-time: %s@." worst
    (if verdict.Sim.met then "met" else "MISSED")
