(* Security camera: per-frame change statistics.

   The kind of workload the paper's introduction motivates: a camera
   stream is denoised with a median filter and compared against a blurred
   background estimate; a histogram of the absolute difference summarizes
   per-frame activity, reduced serially once per frame through a
   dependency-capped merge — the full Figure 1(b) pattern on a different
   application.

   Run with: dune exec examples/security_camera.exe *)

open Block_parallel

let bins = 12
let lo = 0.
let hi = 6.

let () =
  let frame = Size.v 28 20 in
  let rate = Rate.hz 18. in
  let n_frames = 4 in
  let frames = Image.Gen.frame_sequence ~seed:99 frame n_frames in

  let g = Graph.create () in
  let camera =
    Graph.add g ~name:"Camera"
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let denoise = Graph.add g ~name:"Denoise" (Median.spec ~w:3 ~h:3 ()) in
  let background = Graph.add g ~name:"Background" (Conv.spec ~w:5 ~h:5 ()) in
  let blur_coeff = Image.Gen.constant (Size.v 5 5) (1. /. 25.) in
  let coeff =
    Graph.add g (Source.const ~class_name:"Background Coeff" ~chunk:blur_coeff ())
  in
  let change = Graph.add g ~name:"Change" (Arith.absdiff ()) in
  let activity = Graph.add g ~name:"Activity" (Histogram.spec ~bins ()) in
  let bin_bounds = Histogram.bin_lower_bounds ~bins ~lo ~hi in
  let bounds =
    Graph.add g (Source.const ~class_name:"Activity Bins" ~chunk:bin_bounds ())
  in
  let merge = Graph.add g (Histogram.merge ~bins ()) in
  let results = Sink.collector () in
  let alarm =
    Graph.add g ~name:"Alarm Feed"
      (Sink.spec ~window:(Window.block bins 1) results ())
  in
  Graph.connect g ~from:(camera, "out") ~into:(denoise, "in");
  Graph.connect g ~from:(camera, "out") ~into:(background, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(background, "coeff");
  Graph.connect g ~from:(denoise, "out") ~into:(change, "in0");
  Graph.connect g ~from:(background, "out") ~into:(change, "in1");
  Graph.connect g ~from:(change, "out") ~into:(activity, "in");
  Graph.connect g ~from:(bounds, "out") ~into:(activity, "bins");
  Graph.connect g ~from:(activity, "out") ~into:(merge, "in");
  Graph.connect g ~from:(merge, "out") ~into:(alarm, "in");
  (* The merge reduction runs once per camera frame. *)
  Graph.add_dep g ~src:camera ~dst:merge;

  let compiled = Pipeline.compile ~machine:Machine.default g in
  Format.printf "%a@." Pipeline.pp_summary compiled;
  let result = Pipeline.simulate compiled ~greedy:true in
  Format.printf "%a@." Sim.pp_result result;

  (* Reference: the same computation on whole frames. *)
  let expected =
    List.map
      (fun f ->
        let med = Image_ops.median f ~w:3 ~h:3 in
        let bg = Image_ops.convolve f ~kernel:blur_coeff in
        let med =
          Image_ops.trim med ~left:1 ~right:1 ~top:1 ~bottom:1
        in
        let diff = Image.map2 (fun a b -> Float.abs (a -. b)) med bg in
        Histogram.reference diff ~bins ~lo ~hi)
      frames
  in
  List.iteri
    (fun i (hist : Image.t) ->
      let golden = List.nth expected i in
      Format.printf "frame %d activity histogram (|diff| vs golden = %g):@."
        i
        (Image.max_abs_diff golden hist);
      for b = 0 to bins - 1 do
        Format.printf "  bin %2d: %3.0f@." b (Image.get hist ~x:b ~y:0)
      done)
    (Sink.chunks results)
