lib/analysis/dataflow.ml: Array Bp_geometry Bp_graph Bp_kernel Bp_kernels Bp_token Bp_util Err Float Format Hashtbl Inset List Option Rate Size Step Stream String Window
