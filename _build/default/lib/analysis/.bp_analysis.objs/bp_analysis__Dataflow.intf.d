lib/analysis/dataflow.mli: Bp_geometry Bp_graph Format Stream
