lib/analysis/reuse.ml: Bp_geometry Format Size Step Window
