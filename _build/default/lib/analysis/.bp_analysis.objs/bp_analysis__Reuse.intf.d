lib/analysis/reuse.mli: Bp_geometry Format
