lib/analysis/stream.ml: Bp_geometry Bp_util Format Inset List Rate Size
