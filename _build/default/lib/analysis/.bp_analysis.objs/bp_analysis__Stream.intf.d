lib/analysis/stream.mli: Bp_geometry Format
