open Bp_util
open Bp_geometry
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Port = Bp_kernel.Port
module Method_spec = Bp_kernel.Method_spec
module Costs = Bp_kernels.Costs

type node_info = {
  iterations : Size.t option;
  fires_per_frame : float;
  rate : Rate.t option;
  compute_cycles_per_frame : float;
  read_words_per_frame : float;
  write_words_per_frame : float;
}

type misalignment = {
  mis_node : Graph.node_id;
  mis_method : string;
  mis_inputs : (string * Size.t * Inset.t) list;
  target_iterations : Size.t;
  target_inset : Inset.t;
}

type t = {
  g : Graph.t;
  streams : (int, Stream.t) Hashtbl.t;
  infos : (Graph.node_id, node_info) Hashtbl.t;
  mutable mis : misalignment list;
}

let graph t = t.g

let stream_of t chan_id =
  match Hashtbl.find_opt t.streams chan_id with
  | Some s -> s
  | None -> Err.graphf "no stream recorded for channel %d" chan_id

let info_of t id =
  match Hashtbl.find_opt t.infos id with
  | Some i -> i
  | None -> Err.graphf "no analysis info for node %d" id

let misalignments t = List.rev t.mis

(* The *logical* per-frame iteration space a window imposes on a stream is
   pure geometry — the window slid over the stream's extent. It is defined
   even for interleaved branch streams (where this instance only fires on a
   share of the iterations). *)
let logical_iterations (s : Stream.t) (port : Port.t) =
  let w = port.Port.window in
  if Size.equal w.Window.size s.Stream.chunk
     && not (Size.equal s.Stream.chunk Size.one)
  then
    (* Chunk-shaped windows are consumed one-for-one; derive the space from
       the extent when possible, otherwise fall back to the grid. *)
    match Err.guard (fun () -> Window.iterations w ~frame:s.Stream.extent) with
    | Ok it -> it
    | Error _ -> (
      match s.Stream.grid with
      | Some g -> g
      | None -> Size.one)
  else Window.iterations w ~frame:s.Stream.extent

(* How often this node actually fires on the stream per frame: the full
   iteration space for an in-order stream, its share for an interleaved
   branch stream. *)
let fires_on (s : Stream.t) (port : Port.t) =
  if s.Stream.constant then 1.
  else
    match s.Stream.grid with
    | None -> s.Stream.chunks_per_frame
    | Some _ -> float_of_int (Size.area (logical_iterations s port))

(* Does the stream over [c] need re-chunking before the consumer can use
   it? *)
let needs_buffer t (c : Graph.channel) =
  let s = stream_of t c.Graph.chan_id in
  if s.Stream.constant then false
  else
    let dst = Graph.node t.g c.Graph.dst.Graph.node in
    let port = Spec.find_input dst.Graph.spec c.Graph.dst.Graph.port in
    let w = port.Port.window in
    if not (Size.equal w.Window.size s.Stream.chunk) then true
    else
      match s.Stream.grid with
      | None -> false
      | Some grid -> not (Size.equal (logical_iterations s port) grid)

let overlapping (w : Window.t) =
  w.Window.step.Step.sx < w.Window.size.Size.w
  || w.Window.step.Step.sy < w.Window.size.Size.h

(* The logical extent downstream of an output port: overlapped window
   streams keep the upstream extent (consumers take them one-for-one);
   tiling outputs define a fresh extent from the iteration space. *)
let out_extent (w : Window.t) ~iterations ~upstream_extent =
  if overlapping w then upstream_extent
  else Size.scale iterations w.Window.size.Size.w w.Window.size.Size.h

(* Streams arriving at each input port of a node. *)
let in_streams t node_id =
  List.map
    (fun (c : Graph.channel) ->
      (c.Graph.dst.Graph.port, stream_of t c.Graph.chan_id))
    (Graph.in_channels t.g node_id)

let record_out t node_id port stream =
  List.iter
    (fun (c : Graph.channel) ->
      if String.equal c.Graph.src.Graph.port port then
        Hashtbl.replace t.streams c.Graph.chan_id stream)
    (Graph.out_channels t.g node_id ())

let write_words t node_id =
  List.fold_left
    (fun acc (c : Graph.channel) ->
      match Hashtbl.find_opt t.streams c.Graph.chan_id with
      | Some s when not s.Stream.constant -> acc +. Stream.words_per_frame s
      | _ -> acc)
    0.
    (Graph.out_channels t.g node_id ())

let read_words ins =
  List.fold_left
    (fun acc (_, s) ->
      if s.Stream.constant then acc else acc +. Stream.words_per_frame s)
    0. ins

(* --- Role-specific propagation rules --------------------------------- *)

let analyze_source t (n : Graph.node) =
  let frame, rate =
    match n.Graph.meta with
    | Graph.Source_meta { frame; rate } -> (frame, rate)
    | _ -> Err.graphf "source %s lacks Source_meta" n.Graph.name
  in
  let s = Stream.source_stream ~frame ~rate ~origin:n.Graph.id in
  record_out t n.Graph.id "out" s;
  {
    iterations = Some frame;
    fires_per_frame = float_of_int (Size.area frame);
    rate = Some rate;
    compute_cycles_per_frame = 0.;
    read_words_per_frame = 0.;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_const t (n : Graph.node) =
  let port =
    match n.Graph.spec.Spec.outputs with
    | [ p ] -> p
    | _ -> Err.graphf "const source %s must have one output" n.Graph.name
  in
  let s = Stream.constant_stream ~chunk:port.Port.window.Window.size in
  record_out t n.Graph.id port.Port.name s;
  {
    iterations = None;
    fires_per_frame = 0.;
    rate = None;
    compute_cycles_per_frame = 0.;
    read_words_per_frame = 0.;
    write_words_per_frame = 0.;
  }

(* Combine the per-input logical iteration spaces of one data method;
   record a misalignment when they disagree and continue with the
   intersection (the post-repair value). *)
let combine_method_iterations t (n : Graph.node) (m : Method_spec.t) per_input
    =
  match per_input with
  | [] -> (Size.one, Inset.zero)
  | (_, it0, i0) :: rest ->
    let target =
      List.fold_left
        (fun acc (_, it, _) ->
          Size.v (min acc.Size.w it.Size.w) (min acc.Size.h it.Size.h))
        it0 rest
    in
    let target_inset =
      List.fold_left (fun acc (_, _, i) -> Inset.union acc i) i0 rest
    in
    if not (List.for_all (fun (_, it, _) -> Size.equal target it) per_input)
    then
      t.mis <-
        {
          mis_node = n.Graph.id;
          mis_method = m.Method_spec.name;
          mis_inputs = per_input;
          target_iterations = target;
          target_inset;
        }
        :: t.mis;
    (target, target_inset)

let analyze_compute t (n : Graph.node) =
  let spec = n.Graph.spec in
  let ins = in_streams t n.Graph.id in
  let stream_of_port p =
    match List.assoc_opt p ins with
    | Some s -> s
    | None -> Err.graphf "%s: input %s has no stream" n.Graph.name p
  in
  let rate = Stream.same_rate (List.map snd ins) in
  let data_methods, token_methods =
    List.partition
      (fun m ->
        match m.Method_spec.trigger with
        | Method_spec.On_data _ -> true
        | Method_spec.On_token _ -> false)
      spec.Spec.methods
  in
  (* Per data method: logical iteration space (geometry), fire share
     (scheduling), inset, origin. *)
  let method_results =
    List.map
      (fun m ->
        let inputs = Method_spec.trigger_inputs m in
        let driving =
          List.filter_map
            (fun pname ->
              let s = stream_of_port pname in
              if s.Stream.constant then None
              else
                let port = Spec.find_input spec pname in
                let inset =
                  Inset.add s.Stream.inset (Inset.of_window port.Port.window)
                in
                Some (pname, logical_iterations s port, inset, s, port))
            inputs
        in
        let per_input =
          List.map (fun (p, it, i, _, _) -> (p, it, i)) driving
        in
        let iterations, inset =
          combine_method_iterations t n m per_input
        in
        let rect =
          driving <> []
          && List.for_all
               (fun (_, _, _, s, _) -> Option.is_some s.Stream.grid)
               driving
        in
        let fires =
          if driving = [] then 0.
          else
            List.fold_left
              (fun acc (_, _, _, s, port) -> Float.min acc (fires_on s port))
              infinity driving
        in
        let origins =
          List.sort_uniq compare
            (List.filter_map (fun (_, _, _, s, _) -> s.Stream.origin) driving)
        in
        let origin = match origins with [ o ] -> Some o | _ -> None in
        let upstream_extent =
          match driving with
          | (_, _, _, s, _) :: _ -> s.Stream.extent
          | [] -> Size.one
        in
        (m, iterations, fires, rect, inset, origin, upstream_extent))
      data_methods
  in
  (* Outputs written by data methods. *)
  List.iter
    (fun (m, iterations, fires, rect, inset, origin, upstream_extent) ->
      List.iter
        (fun oname ->
          let oport = Spec.find_output spec oname in
          let w = oport.Port.window in
          let stream =
            {
              Stream.chunk = w.Window.size;
              chunks_per_frame = fires;
              grid = (if rect then Some iterations else None);
              extent = out_extent w ~iterations ~upstream_extent;
              rate;
              inset;
              origin;
              constant = false;
            }
          in
          record_out t n.Graph.id oname stream)
        m.Method_spec.outputs)
    method_results;
  (* Outputs written by token methods: once per handled token. *)
  List.iter
    (fun m ->
      match m.Method_spec.trigger with
      | Method_spec.On_token (_, Bp_token.Token.End_of_frame) ->
        List.iter
          (fun oname ->
            let oport = Spec.find_output spec oname in
            let chunk = oport.Port.window.Window.size in
            let stream =
              {
                Stream.chunk;
                chunks_per_frame = 1.;
                grid = Some Size.one;
                extent = chunk;
                rate;
                inset = Inset.zero;
                origin = None;
                constant = false;
              }
            in
            record_out t n.Graph.id oname stream)
          m.Method_spec.outputs
      | Method_spec.On_token (_, (Bp_token.Token.User _ as kind)) ->
        (* User tokens carry a declared per-frame bound (Section II-C);
           outputs they trigger recur at most that often. *)
        let budget =
          match Spec.user_token_budget spec kind with
          | Some b -> float_of_int b
          | None ->
            Err.unsupportedf "%s: user token without a declared bound"
              n.Graph.name
        in
        List.iter
          (fun oname ->
            let oport = Spec.find_output spec oname in
            let chunk = oport.Port.window.Window.size in
            let stream =
              {
                Stream.chunk;
                chunks_per_frame = budget;
                grid = None;
                extent = chunk;
                rate;
                inset = Inset.zero;
                origin = None;
                constant = false;
              }
            in
            record_out t n.Graph.id oname stream)
          m.Method_spec.outputs
      | Method_spec.On_token (_, Bp_token.Token.End_of_line) ->
        if m.Method_spec.outputs <> [] then
          Err.unsupportedf
            "%s: outputs triggered by end-of-line tokens are not analyzable"
            n.Graph.name
      | Method_spec.On_data _ -> ())
    token_methods;
  let data_fires =
    List.fold_left
      (fun acc (_, _, fires, _, _, _, _) -> acc +. fires)
      0. method_results
  in
  let user_budget m =
    match m.Method_spec.trigger with
    | Method_spec.On_token (_, (Bp_token.Token.User _ as kind)) ->
      float_of_int (Option.value ~default:0 (Spec.user_token_budget spec kind))
    | _ -> 0.
  in
  let token_fires =
    List.fold_left
      (fun acc m ->
        match m.Method_spec.trigger with
        | Method_spec.On_token (_, Bp_token.Token.End_of_frame) -> acc +. 1.
        | Method_spec.On_token (_, Bp_token.Token.User _) ->
          acc +. user_budget m
        | Method_spec.On_token (_, Bp_token.Token.End_of_line)
        | Method_spec.On_data _ ->
          acc)
      0. token_methods
  in
  let cycles =
    List.fold_left
      (fun acc (m, _, fires, _, _, _, _) ->
        acc +. (fires *. float_of_int m.Method_spec.cycles))
      0. method_results
    +. List.fold_left
         (fun acc m ->
           match m.Method_spec.trigger with
           | Method_spec.On_token (_, Bp_token.Token.End_of_frame) ->
             acc +. float_of_int m.Method_spec.cycles
           | Method_spec.On_token (_, Bp_token.Token.User _) ->
             acc +. (user_budget m *. float_of_int m.Method_spec.cycles)
           | _ -> acc)
         0. token_methods
  in
  let iterations =
    (* The primary data method's iteration space, when one fires. *)
    List.fold_left
      (fun acc (_, it, fires, _, _, _, _) ->
        match acc with
        | None when fires > 0. -> Some it
        | acc -> acc)
      None method_results
  in
  {
    iterations;
    fires_per_frame = data_fires +. token_fires;
    rate;
    compute_cycles_per_frame = cycles;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_buffer t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  let s =
    match ins with
    | [ (_, s) ] -> s
    | _ -> Err.graphf "buffer %s must have exactly one input" n.Graph.name
  in
  let oport =
    match n.Graph.spec.Spec.outputs with
    | [ p ] -> p
    | _ -> Err.graphf "buffer %s must have one output" n.Graph.name
  in
  let w = oport.Port.window in
  let iterations = Window.iterations w ~frame:s.Stream.extent in
  let stream =
    {
      Stream.chunk = w.Window.size;
      chunks_per_frame = float_of_int (Size.area iterations);
      grid = Some iterations;
      (* A buffer re-chunks but does not transform the logical frame: the
         consumer's own window (whose shape the buffer mirrors) applies the
         step/halo math. This also holds for downsampling windows, where
         scaling the extent here would make the consumer decimate twice. *)
      extent = s.Stream.extent;
      rate = s.Stream.rate;
      inset = s.Stream.inset;
      origin = s.Stream.origin;
      constant = false;
    }
  in
  record_out t n.Graph.id oport.Port.name stream;
  let fires =
    s.Stream.chunks_per_frame +. float_of_int (Size.area iterations)
  in
  {
    iterations = Some iterations;
    fires_per_frame = fires;
    rate = s.Stream.rate;
    compute_cycles_per_frame = fires *. float_of_int Costs.buffer_store;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_split t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  let s =
    match ins with
    | [ (_, s) ] -> s
    | _ -> Err.graphf "split %s must have exactly one input" n.Graph.name
  in
  let outs = n.Graph.spec.Spec.outputs in
  (match n.Graph.meta with
  | Graph.Split_meta { ways } ->
    let share = s.Stream.chunks_per_frame /. float_of_int ways in
    List.iter
      (fun (p : Port.t) ->
        record_out t n.Graph.id p.Port.name
          { s with Stream.chunks_per_frame = share; grid = None })
      outs
  | Graph.Column_split_meta { ranges } ->
    List.iteri
      (fun k (p : Port.t) ->
        let c0, c1 = ranges.(k) in
        let extent = Size.v (c1 - c0) s.Stream.extent.Size.h in
        record_out t n.Graph.id p.Port.name
          {
            s with
            Stream.chunks_per_frame = float_of_int (Size.area extent);
            grid = Some extent;
            extent;
          })
      outs
  | _ -> Err.graphf "split %s lacks split metadata" n.Graph.name);
  let fires = s.Stream.chunks_per_frame in
  {
    iterations = None;
    fires_per_frame = fires;
    rate = s.Stream.rate;
    compute_cycles_per_frame = fires *. float_of_int Costs.split;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_join t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  if ins = [] then Err.graphf "join %s has no inputs" n.Graph.name;
  let streams = List.map snd ins in
  let s0 = List.hd streams in
  let chunks =
    List.fold_left (fun acc s -> acc +. s.Stream.chunks_per_frame) 0. streams
  in
  let inset =
    List.fold_left
      (fun acc s -> Inset.union acc s.Stream.inset)
      s0.Stream.inset (List.tl streams)
  in
  let origins =
    List.sort_uniq compare (List.filter_map (fun s -> s.Stream.origin) streams)
  in
  let origin = match origins with [ o ] -> Some o | _ -> None in
  let extent =
    match n.Graph.meta with
    | Graph.Pattern_join_meta { out_extent; pattern = _ } -> out_extent
    | _ -> s0.Stream.extent
  in
  (* A join re-serializes its branches into scan-line order, so the output
     grid is exactly the iteration space of the join's window over the
     recombined extent. *)
  let grid =
    let w =
      (Spec.find_output n.Graph.spec "out").Bp_kernel.Port.window
    in
    match Err.guard (fun () -> Window.iterations w ~frame:extent) with
    | Ok it when Float.abs (float_of_int (Size.area it) -. chunks) < 1e-6 ->
      Some it
    | Ok _ | Error _ -> None
  in
  let out =
    {
      Stream.chunk = s0.Stream.chunk;
      chunks_per_frame = chunks;
      grid;
      extent;
      rate = Stream.same_rate streams;
      inset;
      origin;
      constant = false;
    }
  in
  record_out t n.Graph.id "out" out;
  {
    iterations = None;
    fires_per_frame = chunks;
    rate = out.Stream.rate;
    compute_cycles_per_frame = chunks *. float_of_int Costs.split;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_inset t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  let s =
    match ins with
    | [ (_, s) ] -> s
    | _ -> Err.graphf "inset %s must have exactly one input" n.Graph.name
  in
  let l, r, tp, b =
    match n.Graph.meta with
    | Graph.Inset_meta { left; right; top; bottom } -> (left, right, top, bottom)
    | _ -> Err.graphf "inset %s lacks Inset_meta" n.Graph.name
  in
  let grid =
    match s.Stream.grid with
    | Some g -> g
    | None -> Err.unsupportedf "inset %s on interleaved stream" n.Graph.name
  in
  let grid' = Size.v (grid.Size.w - l - r) (grid.Size.h - tp - b) in
  let extent =
    Size.scale grid' s.Stream.chunk.Size.w s.Stream.chunk.Size.h
  in
  let inset =
    Inset.add s.Stream.inset
      (Inset.v ~left:(float_of_int l) ~right:(float_of_int r)
         ~top:(float_of_int tp) ~bottom:(float_of_int b))
  in
  let out =
    {
      s with
      Stream.chunks_per_frame = float_of_int (Size.area grid');
      grid = Some grid';
      extent;
      inset;
    }
  in
  record_out t n.Graph.id "out" out;
  let fires = s.Stream.chunks_per_frame in
  {
    iterations = Some grid';
    fires_per_frame = fires;
    rate = s.Stream.rate;
    compute_cycles_per_frame = fires *. float_of_int Costs.inset;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_pad t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  let s =
    match ins with
    | [ (_, s) ] -> s
    | _ -> Err.graphf "pad %s must have exactly one input" n.Graph.name
  in
  let l, r, tp, b =
    match n.Graph.meta with
    | Graph.Pad_meta { left; right; top; bottom } -> (left, right, top, bottom)
    | _ -> Err.graphf "pad %s lacks Pad_meta" n.Graph.name
  in
  let extent =
    Size.v (s.Stream.extent.Size.w + l + r) (s.Stream.extent.Size.h + tp + b)
  in
  let inset =
    {
      Inset.left = s.Stream.inset.Inset.left -. float_of_int l;
      right = s.Stream.inset.Inset.right -. float_of_int r;
      top = s.Stream.inset.Inset.top -. float_of_int tp;
      bottom = s.Stream.inset.Inset.bottom -. float_of_int b;
    }
  in
  let out =
    {
      s with
      Stream.chunks_per_frame = float_of_int (Size.area extent);
      grid = Some extent;
      extent;
      inset;
    }
  in
  record_out t n.Graph.id "out" out;
  let fires = float_of_int (Size.area extent) in
  {
    iterations = Some extent;
    fires_per_frame = fires;
    rate = s.Stream.rate;
    compute_cycles_per_frame = fires *. float_of_int Costs.pad;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_replicate t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  let s =
    match ins with
    | [ (_, s) ] -> s
    | _ -> Err.graphf "replicate %s must have exactly one input" n.Graph.name
  in
  record_out t n.Graph.id "out" s;
  let fires = s.Stream.chunks_per_frame in
  {
    iterations = None;
    fires_per_frame = fires;
    rate = s.Stream.rate;
    compute_cycles_per_frame = fires;
    read_words_per_frame = read_words ins;
    write_words_per_frame = write_words t n.Graph.id;
  }

let analyze_sink t (n : Graph.node) =
  let ins = in_streams t n.Graph.id in
  {
    iterations = None;
    fires_per_frame =
      List.fold_left (fun acc (_, s) -> acc +. s.Stream.chunks_per_frame) 0. ins;
    rate = Stream.same_rate (List.map snd ins);
    compute_cycles_per_frame = 0.;
    read_words_per_frame = read_words ins;
    write_words_per_frame = 0.;
  }

let analyze_node t (n : Graph.node) =
  match n.Graph.spec.Spec.role with
  | Spec.Source -> analyze_source t n
  | Spec.Const_source -> analyze_const t n
  | Spec.Compute -> analyze_compute t n
  | Spec.Buffer -> analyze_buffer t n
  | Spec.Split -> analyze_split t n
  | Spec.Join -> analyze_join t n
  | Spec.Inset -> analyze_inset t n
  | Spec.Pad -> analyze_pad t n
  | Spec.Replicate -> analyze_replicate t n
  | Spec.Sink -> analyze_sink t n

(* Seed the declared loop stream of a feedback-initialization kernel so the
   work-list can enter the cycle (Section III-D). *)
let seed_feedback t (n : Graph.node) =
  match n.Graph.meta with
  | Graph.Feedback_init_meta { extent; rate } ->
    let port =
      match n.Graph.spec.Spec.outputs with
      | [ p ] -> p
      | _ -> Err.graphf "feedback init %s must have one output" n.Graph.name
    in
    let w = port.Port.window in
    let grid = Window.iterations w ~frame:extent in
    record_out t n.Graph.id port.Port.name
      {
        Stream.chunk = w.Window.size;
        chunks_per_frame = float_of_int (Size.area grid);
        grid = Some grid;
        extent;
        rate = Some rate;
        inset = Inset.zero;
        origin = None;
        constant = false;
      };
    true
  | _ -> false

let analyze g =
  Graph.validate g;
  let t =
    { g; streams = Hashtbl.create 64; infos = Hashtbl.create 64; mis = [] }
  in
  let seeded =
    List.filter (fun n -> seed_feedback t n) (Graph.nodes g)
  in
  let ready (n : Graph.node) =
    List.for_all
      (fun (c : Graph.channel) -> Hashtbl.mem t.streams c.Graph.chan_id)
      (Graph.in_channels g n.Graph.id)
  in
  (* Work-list over the (cycle-tolerant) topological order: on a DAG one
     pass suffices; feedback cycles resolve through the seeded streams. *)
  let rec passes pending guard =
    if pending = [] then ()
    else if guard = 0 then
      Err.graphf "dataflow did not converge (feedback loop without an
        initialization kernel?)"
    else begin
      let remaining =
        List.filter
          (fun n ->
            if ready n then begin
              Hashtbl.replace t.infos n.Graph.id (analyze_node t n);
              false
            end
            else true)
          pending
      in
      if List.length remaining = List.length pending then
        Err.graphf "dataflow stuck: %s have inputs with no streams"
          (String.concat ", "
             (List.map (fun (n : Graph.node) -> n.Graph.name) remaining));
      passes remaining (guard - 1)
    end
  in
  passes (Graph.topological_order g) (1 + Graph.size g);
  (* A feedback loop converges when recomputing the init kernel reproduces
     the declared stream. *)
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.meta with
      | Graph.Feedback_init_meta { extent; rate } ->
        List.iter
          (fun (c : Graph.channel) ->
            let s = stream_of t c.Graph.chan_id in
            if not (Size.equal s.Stream.extent extent) then
              Err.ratef
                "feedback loop through %s does not converge: declared \
                 extent %s, computed %s"
                n.Graph.name (Size.to_string extent)
                (Size.to_string s.Stream.extent);
            match s.Stream.rate with
            | Some r when not (Rate.equal r rate) ->
              Err.ratef "feedback loop through %s: declared %s, computed %s"
                n.Graph.name (Rate.to_string rate) (Rate.to_string r)
            | _ -> ())
          (Graph.out_channels g n.Graph.id ())
      | _ -> ())
    seeded;
  t

let pp_report ppf t =
  Format.fprintf ppf "%-26s %-12s %-10s %-10s %s@." "node" "iterations"
    "fires/frm" "rate" "cycles/frm";
  List.iter
    (fun (n : Graph.node) ->
      let i = info_of t n.Graph.id in
      Format.fprintf ppf "%-26s %-12s %-10.0f %-10s %.0f@." n.Graph.name
        (match i.iterations with
        | Some s -> Size.to_string s
        | None -> "-")
        i.fires_per_frame
        (match i.rate with Some r -> Rate.to_string r | None -> "const")
        i.compute_cycles_per_frame)
    (Graph.topological_order t.g)
