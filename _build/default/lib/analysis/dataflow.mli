(** Iteration-size, rate and inset dataflow analysis (Sections III-A/III-C).

    The analysis propagates the application inputs' sizes and rates through
    the graph in topological order, computing for every channel a
    {!Stream.t} and for every node its iteration space, firing count,
    per-frame cycle and I/O word requirements — everything the buffering,
    alignment and parallelization transforms need.

    The analysis is *total on partially-elaborated graphs*: it runs on the
    raw application (Figure 2), after buffering (Figure 3), and after
    parallelization (Figure 4), giving consistent results at each stage.
    Misaligned multi-input kernels (Figure 8) do not fail the analysis;
    they are reported in [misalignments] and the analysis continues with the
    intersection of the inputs' iteration spaces (the post-repair value). *)

type node_info = {
  iterations : Bp_geometry.Size.t option;
      (** Rectangular per-frame iteration space of the node's primary data
          method; [None] when the node is fed an interleaved branch stream
          or fires only on tokens. *)
  fires_per_frame : float;
      (** Total method firings per frame (all methods, including token
          handlers). *)
  rate : Bp_geometry.Rate.t option;
      (** Frame rate; [None] for constant-only nodes. *)
  compute_cycles_per_frame : float;
  read_words_per_frame : float;
  write_words_per_frame : float;
}

type misalignment = {
  mis_node : Bp_graph.Graph.node_id;
  mis_method : string;
  mis_inputs : (string * Bp_geometry.Size.t * Bp_geometry.Inset.t) list;
      (** Port, iteration space, inset of each rectangular driving input. *)
  target_iterations : Bp_geometry.Size.t;
      (** Intersection the inputs must be trimmed/padded to. *)
  target_inset : Bp_geometry.Inset.t;  (** Union of the input insets. *)
}

type t

val analyze : Bp_graph.Graph.t -> t
(** Runs the dataflow. Fails with {!Bp_util.Err.Rate_mismatch} when two
    driving inputs of one kernel carry different frame rates, and with
    {!Bp_util.Err.Unsupported} on constructs outside the model. *)

val graph : t -> Bp_graph.Graph.t

val stream_of : t -> int -> Stream.t
(** The stream over a channel (by channel id). Fails with
    {!Bp_util.Err.Graph_malformed} for unknown channels. *)

val info_of : t -> Bp_graph.Graph.node_id -> node_info

val misalignments : t -> misalignment list
(** Multi-input kernels whose driving inputs disagree on extent — the work
    list of the alignment transform. Empty on a well-aligned graph. *)

val needs_buffer : t -> Bp_graph.Graph.channel -> bool
(** True when the producer's chunk shape or grid does not match what the
    consumer's window needs — the work list of the buffering transform. *)

val pp_report : Format.formatter -> t -> unit
(** A per-node table of iteration sizes, rates and insets — the textual
    equivalent of Figure 2's annotations. *)
