open Bp_geometry

type t = {
  elements_per_fire : int;
  new_per_fire : int;
  reused_per_fire : int;
  reuse_fraction : float;
  column_reuse_per_fire : int;
}

let of_window (w : Window.t) =
  let elements_per_fire = Window.elements_consumed_per_fire w in
  let new_per_fire = Window.new_elements_per_fire w in
  let reused_per_fire = elements_per_fire - new_per_fire in
  let column_reuse_per_fire =
    max 0 (w.Window.size.Size.w - w.Window.step.Step.sx) * w.Window.size.Size.h
  in
  {
    elements_per_fire;
    new_per_fire;
    reused_per_fire;
    reuse_fraction = Window.reuse_fraction w;
    column_reuse_per_fire;
  }

let pp ppf t =
  Format.fprintf ppf "%d read, %d new, %d reused (%.1f%%)" t.elements_per_fire
    t.new_per_fire t.reused_per_fire
    (100. *. t.reuse_fraction)
