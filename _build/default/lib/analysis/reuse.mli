(** Data access and reuse statistics (Figure 5(b)).

    Derived entirely from a port's window parameterization plus the fixed
    scan-line ordering, as the paper describes: a 5×5 unit-step window reads
    25 elements per iteration of which 24 are reused in the steady state. *)

type t = {
  elements_per_fire : int;  (** Words read per iteration. *)
  new_per_fire : int;  (** Fresh words per iteration in 2-D steady state. *)
  reused_per_fire : int;
  reuse_fraction : float;  (** [reused / elements]. *)
  column_reuse_per_fire : int;
      (** Words reused from the previous iteration in the same row only
          ([width - step] columns × height) — the reuse available without
          row buffering. *)
}

val of_window : Bp_geometry.Window.t -> t

val pp : Format.formatter -> t -> unit
