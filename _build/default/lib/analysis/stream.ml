open Bp_geometry

type t = {
  chunk : Size.t;
  chunks_per_frame : float;
  grid : Size.t option;
  extent : Size.t;
  rate : Rate.t option;
  inset : Inset.t;
  origin : int option;
  constant : bool;
}

let constant_stream ~chunk =
  {
    chunk;
    chunks_per_frame = 0.;
    grid = None;
    extent = chunk;
    rate = None;
    inset = Inset.zero;
    origin = None;
    constant = true;
  }

let source_stream ~frame ~rate ~origin =
  {
    chunk = Size.one;
    chunks_per_frame = float_of_int (Size.area frame);
    grid = Some frame;
    extent = frame;
    rate = Some rate;
    inset = Inset.zero;
    origin = Some origin;
    constant = false;
  }

let words_per_frame t = t.chunks_per_frame *. float_of_int (Size.area t.chunk)

let same_rate streams =
  let rates = List.filter_map (fun s -> s.rate) (List.filter (fun s -> not s.constant) streams) in
  match rates with
  | [] -> None
  | r :: rest ->
    List.iter
      (fun r' ->
        if not (Rate.equal r r') then
          Bp_util.Err.ratef "input rates disagree: %s vs %s"
            (Rate.to_string r) (Rate.to_string r'))
      rest;
    Some r

let pp ppf t =
  Format.fprintf ppf "%a x %.1f/frame over %a %s inset %a" Size.pp t.chunk
    t.chunks_per_frame Size.pp t.extent
    (match t.rate with None -> "const" | Some r -> Rate.to_string r)
    Inset.pp t.inset
