(** Stream descriptions computed by the dataflow analysis.

    A stream describes what flows over one channel in the steady state:
    chunk shape, how many chunks per frame (and their scan-line grid when it
    is rectangular), the logical data extent downstream window math should
    use, the frame rate, and the accumulated inset from the originating
    application input. *)

type t = {
  chunk : Bp_geometry.Size.t;  (** Extent of each data chunk. *)
  chunks_per_frame : float;
      (** Data chunks per frame. Fractional after round-robin splitting
          (each branch carries a share). *)
  grid : Bp_geometry.Size.t option;
      (** Chunks-per-row × rows-per-frame when the stream is a rectangular
          scan-line grid; [None] for interleaved branch streams. *)
  extent : Bp_geometry.Size.t;
      (** The logical frame extent consumers apply their windows to. *)
  rate : Bp_geometry.Rate.t option;
      (** Frame rate; [None] for constant configuration streams. *)
  inset : Bp_geometry.Inset.t;
      (** Accumulated inset from the originating input (Section III-C). *)
  origin : int option;
      (** Node id of the application input this stream derives from, when
          unique. *)
  constant : bool;
      (** True for configuration streams (coefficients, bin bounds) that do
          not recur every frame. *)
}

val constant_stream : chunk:Bp_geometry.Size.t -> t
(** The stream of a constant source: one chunk ever, no rate, no tokens. *)

val source_stream :
  frame:Bp_geometry.Size.t -> rate:Bp_geometry.Rate.t -> origin:int -> t
(** The pixel stream of an application input. *)

val words_per_frame : t -> float
(** Data words per frame ([chunks_per_frame × chunk area]). *)

val same_rate : t list -> Bp_geometry.Rate.t option
(** The common rate of the non-constant streams. Fails with
    {!Bp_util.Err.Rate_mismatch} when two streams disagree; [None] when all
    streams are constant. *)

val pp : Format.formatter -> t -> unit
