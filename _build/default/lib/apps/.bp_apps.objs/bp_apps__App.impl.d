lib/apps/app.ml: Bp_geometry Bp_graph Bp_image Bp_kernels Bp_sim Float List Rate Size
