lib/apps/app.mli: Bp_geometry Bp_graph Bp_image Bp_kernels Bp_sim
