lib/apps/bayer_app.mli: App Bp_geometry
