lib/apps/downsample_app.ml: App Behaviour Bp_geometry Bp_graph Bp_image Bp_kernel Bp_kernels List Method_spec Port Size Spec Step Window
