lib/apps/downsample_app.mli: App Bp_geometry
