lib/apps/edge_app.ml: App Bp_geometry Bp_graph Bp_image Bp_kernels Float List Size Window
