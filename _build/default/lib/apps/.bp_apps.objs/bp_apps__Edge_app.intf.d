lib/apps/edge_app.mli: App Bp_geometry
