lib/apps/feedback_app.ml: App Bp_geometry Bp_graph Bp_image Bp_kernels List Size Window
