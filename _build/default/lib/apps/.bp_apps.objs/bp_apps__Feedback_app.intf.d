lib/apps/feedback_app.mli: App Bp_geometry
