lib/apps/histogram_app.mli: App Bp_geometry
