lib/apps/image_pipeline.ml: App Bp_geometry Bp_graph Bp_image Bp_kernels Bp_transform Bp_util List Size Window
