lib/apps/image_pipeline.mli: App Bp_geometry Bp_image Bp_transform
