lib/apps/motion_app.mli: App Bp_geometry
