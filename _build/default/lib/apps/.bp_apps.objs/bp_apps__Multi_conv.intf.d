lib/apps/multi_conv.mli: App Bp_geometry
