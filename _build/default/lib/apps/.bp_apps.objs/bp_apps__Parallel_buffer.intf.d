lib/apps/parallel_buffer.mli: App Bp_geometry
