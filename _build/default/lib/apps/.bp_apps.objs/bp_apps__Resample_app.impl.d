lib/apps/resample_app.ml: App Bp_geometry Bp_graph Bp_image Bp_kernels Bp_util List Size Window
