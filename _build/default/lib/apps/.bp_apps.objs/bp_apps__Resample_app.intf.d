lib/apps/resample_app.mli: App Bp_geometry
