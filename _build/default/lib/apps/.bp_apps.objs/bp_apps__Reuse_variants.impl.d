lib/apps/reuse_variants.ml: App Bp_geometry Bp_graph Bp_image Bp_kernels List Printf Size Window
