lib/apps/reuse_variants.mli: App Bp_geometry
