lib/apps/suite.ml: App Bayer_app Bp_geometry Bp_machine Bp_util Histogram_app Image_pipeline List Multi_conv Parallel_buffer Rate Size String
