lib/apps/suite.mli: App Bp_machine
