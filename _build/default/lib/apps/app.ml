open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Sink = Bp_kernels.Sink

type instance = {
  name : string;
  graph : Graph.t;
  frame : Size.t;
  rate : Rate.t;
  n_frames : int;
  checks : (string * (unit -> float)) list;
  expected_chunks : (string * int) list;
  collectors : (string * Sink.collector) list;
  allowed_leftover : int;
}

let period_s inst = Rate.frame_period_s inst.rate

let verify inst (result : Bp_sim.Sim.result) =
  let diffs = List.map (fun (label, f) -> (label, f ())) inst.checks in
  let chunks_ok =
    List.for_all
      (fun (label, expected) ->
        match List.assoc_opt label inst.collectors with
        | Some c -> List.length (Sink.chunks c) = expected
        | None -> false)
      inst.expected_chunks
  in
  let exact = List.for_all (fun (_, d) -> d <= 1e-9) diffs in
  ( diffs,
    chunks_ok && exact
    && result.Bp_sim.Sim.leftover_items <= inst.allowed_leftover )

let add_source g ~frame ~rate ~frames =
  Graph.add g
    ~meta:(Graph.Source_meta { frame; rate })
    (Bp_kernels.Source.spec ~frame ~frames ())

let add_sink g ~name ~window collector =
  Graph.add g ~name (Sink.spec ~class_name:name ~window collector ())

let sink_frames_as_images collector extent =
  List.map
    (fun chunks ->
      Image.of_scanline_list extent
        (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
    (Sink.chunks_between_frames collector)

let max_diff_over_frames ~golden got =
  if List.length golden <> List.length got then infinity
  else
    List.fold_left2
      (fun acc a b -> Float.max acc (Image.max_abs_diff a b))
      0. golden got
