(** Benchmark application instances.

    Each application module builds a raw block-parallel graph plus the
    apparatus to verify a simulated run: the synthetic input frames, the
    sink collectors, and golden whole-frame reference computations. The
    [checks] are evaluated after simulation and report the worst pixel
    deviation per output — 0.0 for an exact reproduction. *)

type instance = {
  name : string;
  graph : Bp_graph.Graph.t;
  frame : Bp_geometry.Size.t;
  rate : Bp_geometry.Rate.t;
  n_frames : int;
  checks : (string * (unit -> float)) list;
      (** Per output: worst absolute difference against the golden
          computation, over all frames. Call only after simulating. *)
  expected_chunks : (string * int) list;
      (** Per output: data chunks a full run must deliver to the sink. *)
  collectors : (string * Bp_kernels.Sink.collector) list;
  allowed_leftover : int;
      (** Items legitimately still queued at quiescence — e.g. the final
          feedback value circulating in a loop (0 for acyclic apps). *)
}

val period_s : instance -> float
(** Seconds per input frame. *)

val verify :
  instance -> Bp_sim.Sim.result -> (string * float) list * bool
(** [verify inst result] evaluates all checks; the boolean is true when
    every check is exact (within 1e-9), every sink got the expected chunk
    count, and the run left nothing queued. *)

(** Helpers shared by the application builders. *)

val add_source :
  Bp_graph.Graph.t ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  frames:Bp_image.Image.t list ->
  Bp_graph.Graph.node_id

val add_sink :
  Bp_graph.Graph.t ->
  name:string ->
  window:Bp_geometry.Window.t ->
  Bp_kernels.Sink.collector ->
  Bp_graph.Graph.node_id

val sink_frames_as_images :
  Bp_kernels.Sink.collector -> Bp_geometry.Size.t -> Bp_image.Image.t list
(** Reassemble a sink's per-frame pixel chunks into images of the given
    extent (for 1×1-chunk output streams). *)

val max_diff_over_frames :
  golden:Bp_image.Image.t list -> Bp_image.Image.t list -> float
(** Worst pixel deviation across paired frames; [infinity] when the frame
    counts differ. *)
