open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

let v ?(seed = 11) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let demosaic = Graph.add g (K.Bayer.spec ~frame ()) in
  let out_extent = Size.v (frame.Size.w - 2) (frame.Size.h - 2) in
  let mk_plane plane =
    let c = K.Sink.collector () in
    let sink = App.add_sink g ~name:plane ~window:Window.pixel c in
    Graph.connect g ~from:(demosaic, plane) ~into:(sink, "in");
    (plane, c, sink)
  in
  Graph.connect g ~from:(src, "out") ~into:(demosaic, "in");
  let planes = List.map mk_plane [ "r"; "g"; "b" ] in
  let goldens =
    List.map
      (fun f ->
        let r, gr, b = Ops.bayer_demosaic f in
        [ ("r", r); ("g", gr); ("b", b) ])
      frames
  in
  let check plane collector () =
    let golden = List.map (fun per_frame -> List.assoc plane per_frame) goldens in
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "bayer";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = List.map (fun (p, c, _) -> (p, check p c)) planes;
    expected_chunks =
      List.map (fun (p, _, _) -> (p, n_frames * Size.area out_extent)) planes;
    collectors = List.map (fun (p, c, _) -> (p, c)) planes;
    allowed_leftover = 0;
  }
