(** Bayer demosaicing (benchmarks 1 / 1F of Figure 13).

    A raw RGGB mosaic stream is demosaiced by a 3×3 position-dependent
    kernel into red, green and blue planes, each delivered to its own
    output. Exercises multi-output kernels and programmatic (strided)
    parallelization. *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
