(** Downsampling pipeline (extension example).

    A 3×3 box blur followed by 2× decimation in both dimensions — exercises
    window steps larger than the window (the model's downsampling case,
    which the buffer kernel implements) and gain post-processing of the
    decimated stream. *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
