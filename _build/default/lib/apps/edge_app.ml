open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

let sobel_x =
  Image.of_scanline_list (Size.v 3 3)
    [ -1.; 0.; 1.; -2.; 0.; 2.; -1.; 0.; 1. ]

let sobel_y =
  Image.of_scanline_list (Size.v 3 3)
    [ -1.; -2.; -1.; 0.; 0.; 0.; 1.; 2.; 1. ]

let v ?(seed = 77) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let conv name = Graph.add g ~name (K.Conv.spec ~w:3 ~h:3 ()) in
  let gx = conv "Sobel X" and gy = conv "Sobel Y" in
  let coeff name chunk =
    Graph.add g ~name (K.Source.const ~class_name:name ~chunk ())
  in
  let cx = coeff "Sobel X Coeff" sobel_x in
  let cy = coeff "Sobel Y Coeff" sobel_y in
  let abs_x = Graph.add g ~name:"Abs X" (K.Arith.abs_val ()) in
  let abs_y = Graph.add g ~name:"Abs Y" (K.Arith.abs_val ()) in
  let magnitude = Graph.add g ~name:"Magnitude" (K.Arith.add2 ()) in
  let collector = K.Sink.collector () in
  let sink = App.add_sink g ~name:"edges" ~window:Window.pixel collector in
  Graph.connect g ~from:(src, "out") ~into:(gx, "in");
  Graph.connect g ~from:(cx, "out") ~into:(gx, "coeff");
  Graph.connect g ~from:(src, "out") ~into:(gy, "in");
  Graph.connect g ~from:(cy, "out") ~into:(gy, "coeff");
  Graph.connect g ~from:(gx, "out") ~into:(abs_x, "in");
  Graph.connect g ~from:(gy, "out") ~into:(abs_y, "in");
  Graph.connect g ~from:(abs_x, "out") ~into:(magnitude, "in0");
  Graph.connect g ~from:(abs_y, "out") ~into:(magnitude, "in1");
  Graph.connect g ~from:(magnitude, "out") ~into:(sink, "in");
  let out_extent = Size.v (frame.Size.w - 2) (frame.Size.h - 2) in
  let golden =
    List.map
      (fun f ->
        let ax = Image.map Float.abs (Ops.convolve f ~kernel:sobel_x) in
        let ay = Image.map Float.abs (Ops.convolve f ~kernel:sobel_y) in
        Image.map2 ( +. ) ax ay)
      frames
  in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "edge-detect";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("magnitude", check) ];
    expected_chunks = [ ("edges", n_frames * Size.area out_extent) ];
    collectors = [ ("edges", collector) ];
    allowed_leftover = 0;
  }
