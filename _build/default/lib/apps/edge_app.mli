(** Sobel-style edge detection (extension example).

    Two asymmetric 3×3 gradient convolutions over the same input, absolute
    values, and a two-input sum approximating the gradient magnitude —
    exercises coefficient flipping (the kernels are asymmetric), fan-out of
    one source into two filter branches of *equal* depth (no alignment
    repair needed), and a three-level reconvergence. *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
