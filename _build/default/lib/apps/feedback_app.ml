open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module K = Bp_kernels

let coefficient = 0.5
let initial_value = 0.

let v ?(seed = 67) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create ~allow_cycles:true () in
  let src = App.add_source g ~frame ~rate ~frames in
  let combine =
    Graph.add g
      (K.Feedback.loop_combine ~class_name:"IIR"
         (fun x y_prev -> x +. (coefficient *. y_prev)))
  in
  let init =
    Graph.add g
      ~meta:(Graph.Feedback_init_meta { extent = frame; rate })
      (K.Feedback.init ~window:Window.pixel
         ~initial:[ Image.Gen.constant Size.one initial_value ]
         ())
  in
  let collector = K.Sink.collector () in
  let sink = App.add_sink g ~name:"result" ~window:Window.pixel collector in
  Graph.connect g ~from:(src, "out") ~into:(combine, "in0");
  Graph.connect g ~from:(combine, "out") ~into:(sink, "in");
  Graph.connect g ~from:(combine, "out") ~into:(init, "in");
  Graph.connect g ~from:(init, "out") ~into:(combine, "in1");
  (* Golden: the scan-line recurrence, continuous across frames. *)
  let golden =
    (* Explicit scan-line loops: the recurrence depends on pixel order. *)
    let y = ref initial_value in
    List.map
      (fun f ->
        let out = Image.create frame in
        for row = 0 to frame.Size.h - 1 do
          for x = 0 to frame.Size.w - 1 do
            let v = Image.get f ~x ~y:row +. (coefficient *. !y) in
            y := v;
            Image.set out ~x ~y:row v
          done
        done;
        out)
      frames
  in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector frame)
  in
  {
    App.name = "feedback-iir";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("accumulated", check) ];
    expected_chunks = [ ("result", n_frames * Size.area frame) ];
    collectors = [ ("result", collector) ];
    (* The last feedback value stays queued at the loop-combine input. *)
    allowed_leftover = 1;
  }
