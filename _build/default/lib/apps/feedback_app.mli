(** A feedback application (Section III-D extension): a first-order IIR
    accumulator over the pixel stream, [y(n) = x(n) + k·y(n-1)], closed
    through a loop-initialization kernel that provides [y(-1)]. The
    recurrence runs across frame boundaries, matching the continuous-stream
    semantics of the loop. *)

val coefficient : float
(** The feedback gain [k] (0.5). *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
