open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module K = Bp_kernels

let bins = 32
let lo = 0.
let hi = 32.

let v ?(seed = 23) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let hist = Graph.add g (K.Histogram.spec ~bins ()) in
  let hist_bins =
    Graph.add g ~name:"Hist Bins"
      (K.Source.const ~class_name:"Hist Bins"
         ~chunk:(K.Histogram.bin_lower_bounds ~bins ~lo ~hi)
         ())
  in
  let merge = Graph.add g (K.Histogram.merge ~bins ()) in
  let collector = K.Sink.collector () in
  let sink =
    App.add_sink g ~name:"result" ~window:(Window.block bins 1) collector
  in
  Graph.connect g ~from:(src, "out") ~into:(hist, "in");
  Graph.connect g ~from:(hist_bins, "out") ~into:(hist, "bins");
  Graph.connect g ~from:(hist, "out") ~into:(merge, "in");
  Graph.connect g ~from:(merge, "out") ~into:(sink, "in");
  Graph.add_dep g ~src ~dst:merge;
  let golden =
    List.map (fun f -> K.Histogram.reference f ~bins ~lo ~hi) frames
  in
  let check () =
    App.max_diff_over_frames ~golden (K.Sink.chunks collector)
  in
  {
    App.name = "histogram";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("histogram", check) ];
    expected_chunks = [ ("result", n_frames) ];
    collectors = [ ("result", collector) ];
    allowed_leftover = 0;
  }
