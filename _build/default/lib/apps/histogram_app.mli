(** Whole-image histogram (benchmarks 2 / 2F of Figure 13).

    The simplest control-token application: pixels stream straight into a
    histogram kernel, the end-of-frame token triggers emission, and a
    serial merge (dependency-capped to one instance per frame) reduces
    partials when the histogram is parallelized. *)

val bins : int

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
