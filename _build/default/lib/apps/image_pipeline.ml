open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

let bins = 16
let hist_lo = -8.
let hist_hi = 8.

let coefficients =
  Image.Gen.constant (Size.v 5 5) (1. /. 25.)

let golden ~policy frames =
  List.map
    (fun f ->
      let diff =
        match (policy : Bp_transform.Align.policy) with
        | Bp_transform.Align.Trim ->
          let med = Ops.median f ~w:3 ~h:3 in
          let conv = Ops.convolve f ~kernel:coefficients in
          Ops.subtract (Ops.trim med ~left:1 ~right:1 ~top:1 ~bottom:1) conv
        | Bp_transform.Align.Pad_zero ->
          let med = Ops.median f ~w:3 ~h:3 in
          let padded = Ops.pad_zero f ~left:1 ~right:1 ~top:1 ~bottom:1 in
          let conv = Ops.convolve padded ~kernel:coefficients in
          Ops.subtract med conv
      in
      K.Histogram.reference diff ~bins ~lo:hist_lo ~hi:hist_hi)
    frames

let v ?(policy = Bp_transform.Align.Trim) ?(seed = 7) ~frame ~rate ~n_frames
    () =
  if frame.Size.w < 10 || frame.Size.h < 10 then
    Bp_util.Err.invalidf "image pipeline needs at least a 10x10 frame";
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let median = Graph.add g (K.Median.spec ~w:3 ~h:3 ()) in
  let conv = Graph.add g (K.Conv.spec ~w:5 ~h:5 ()) in
  let coeff =
    Graph.add g ~name:"5x5 Coeff"
      (K.Source.const ~class_name:"5x5 Coeff" ~chunk:coefficients ())
  in
  let subtract = Graph.add g (K.Arith.subtract ()) in
  let hist = Graph.add g (K.Histogram.spec ~bins ()) in
  let hist_bins =
    Graph.add g ~name:"Hist Bins"
      (K.Source.const ~class_name:"Hist Bins"
         ~chunk:(K.Histogram.bin_lower_bounds ~bins ~lo:hist_lo ~hi:hist_hi)
         ())
  in
  let merge = Graph.add g (K.Histogram.merge ~bins ()) in
  let collector = K.Sink.collector () in
  let sink =
    App.add_sink g ~name:"result"
      ~window:(Window.block bins 1)
      collector
  in
  Graph.connect g ~from:(src, "out") ~into:(median, "in");
  Graph.connect g ~from:(src, "out") ~into:(conv, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(conv, "coeff");
  Graph.connect g ~from:(median, "out") ~into:(subtract, "in0");
  Graph.connect g ~from:(conv, "out") ~into:(subtract, "in1");
  Graph.connect g ~from:(subtract, "out") ~into:(hist, "in");
  Graph.connect g ~from:(hist_bins, "out") ~into:(hist, "bins");
  Graph.connect g ~from:(hist, "out") ~into:(merge, "in");
  Graph.connect g ~from:(merge, "out") ~into:(sink, "in");
  (* One merge instance per input frame (Section IV-B). *)
  Graph.add_dep g ~src ~dst:merge;
  let expected = golden ~policy frames in
  let check () =
    App.max_diff_over_frames ~golden:expected (K.Sink.chunks collector)
  in
  {
    App.name = "image-pipeline";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("histogram", check) ];
    expected_chunks = [ ("result", n_frames) ];
    collectors = [ ("result", collector) ];
    allowed_leftover = 0;
  }
