(** The paper's running example (Figure 1(b)).

    A frame stream is filtered by a 3×3 median and a 5×5 convolution, the
    per-pixel difference is taken, and a histogram is computed per frame;
    partial histograms merge serially once per frame (enforced by a
    data-dependency edge from the input). The raw graph contains no buffers,
    insets, splits or joins — the compiler inserts all of them.

    The golden computation mirrors the chosen alignment policy: under
    [Trim] the median output loses one pixel per side; under [Pad_zero] the
    convolution input is zero-padded by one pixel per side. *)

val bins : int
(** Histogram bins used by the app (16). *)

val coefficients : Bp_image.Image.t
(** The 5×5 box-filter coefficients loaded into the convolution. *)

val v :
  ?policy:Bp_transform.Align.policy ->
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
(** Build the raw application instance. [frame] must be at least 10×10 so
    both filters and the trim fit. *)
