open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module K = Bp_kernels

let bins = 8
let lo = 0.
let hi = 8.

let v ?(seed = 41) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  (* One-frame delay line: a full frame of zero-valued initial chunks. *)
  let delay =
    Graph.add g ~name:"Frame Delay"
      (K.Feedback.init ~class_name:"Frame Delay" ~window:Window.pixel
         ~initial:
           (List.init (Size.area frame) (fun _ ->
                Image.Gen.constant Size.one 0.))
         ())
  in
  let change =
    Graph.add g
      (K.Feedback.loop_combine ~class_name:"Change"
         (fun current previous -> Float.abs (current -. previous)))
  in
  let hist = Graph.add g (K.Histogram.spec ~bins ()) in
  let bounds =
    Graph.add g ~name:"Motion Bins"
      (K.Source.const ~class_name:"Motion Bins"
         ~chunk:(K.Histogram.bin_lower_bounds ~bins ~lo ~hi)
         ())
  in
  let merge = Graph.add g (K.Histogram.merge ~bins ()) in
  let collector = K.Sink.collector () in
  let sink =
    App.add_sink g ~name:"motion" ~window:(Window.block bins 1) collector
  in
  Graph.connect g ~from:(src, "out") ~into:(change, "in0");
  (* A one-frame delay holds a frame in flight: its input channel must be
     deep enough to absorb the live frame while the initial frame drains. *)
  Graph.connect g
    ~capacity:(Size.area frame + frame.Size.h + 4)
    ~from:(src, "out") ~into:(delay, "in");
  Graph.connect g ~from:(delay, "out") ~into:(change, "in1");
  Graph.connect g ~from:(change, "out") ~into:(hist, "in");
  Graph.connect g ~from:(bounds, "out") ~into:(hist, "bins");
  Graph.connect g ~from:(hist, "out") ~into:(merge, "in");
  Graph.connect g ~from:(merge, "out") ~into:(sink, "in");
  Graph.add_dep g ~src ~dst:merge;
  (* Golden: per frame, |frame - previous| histogram (frame 0 diffs against
     zeros). *)
  let golden =
    let zero = Image.Gen.constant frame 0. in
    let rec walk prev = function
      | [] -> []
      | f :: rest ->
        let diff = Image.map2 (fun a b -> Float.abs (a -. b)) f prev in
        K.Histogram.reference diff ~bins ~lo ~hi :: walk f rest
    in
    walk zero frames
  in
  let check () =
    App.max_diff_over_frames ~golden (K.Sink.chunks collector)
  in
  {
    App.name = "motion-detect";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("motion histogram", check) ];
    expected_chunks = [ ("motion", n_frames) ];
    collectors = [ ("motion", collector) ];
    (* The delay line still holds the final frame (plus its trailing
       tokens) when the input ends. *)
    allowed_leftover = Size.area frame + frame.Size.h + 4;
  }
