(** Temporal motion detection (extension example).

    Frame-to-frame change detection: the pixel stream is compared against a
    one-frame-delayed copy of itself, and a histogram summarizes the
    per-frame motion energy. The delay is a [Feedback.init] kernel
    pre-loaded with a full frame of zeros — the paper's initial-value
    mechanism (Section III-D) used as a forward delay line rather than in a
    loop. The comparison kernel treats the delayed input as token-free, so
    frame structure flows from the live stream only. *)

val bins : int

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
