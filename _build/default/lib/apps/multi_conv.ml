open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

let k5 = Image.Gen.constant (Size.v 5 5) 0.04
let k3a = Image.Gen.constant (Size.v 3 3) (1. /. 9.)

let k3b =
  (* A small sharpening-style kernel; asymmetric so coefficient flipping
     is actually exercised. *)
  Image.init (Size.v 3 3) (fun ~x ~y ->
      if x = 1 && y = 1 then 2. else -0.125 *. float_of_int (x + y))

let v ?(seed = 31) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let conv_a = Graph.add g ~name:"3x3 Conv A" (K.Conv.spec ~w:3 ~h:3 ()) in
  let conv_b = Graph.add g ~name:"3x3 Conv B" (K.Conv.spec ~w:3 ~h:3 ()) in
  let conv_c = Graph.add g ~name:"5x5 Conv C" (K.Conv.spec ~w:5 ~h:5 ()) in
  let coeff name chunk =
    Graph.add g ~name (K.Source.const ~class_name:name ~chunk ())
  in
  let ca = coeff "Coeff A" k3a in
  let cb = coeff "Coeff B" k3b in
  let cc = coeff "Coeff C" k5 in
  let subtract = Graph.add g (K.Arith.subtract ()) in
  let collector = K.Sink.collector () in
  let sink = App.add_sink g ~name:"result" ~window:Window.pixel collector in
  Graph.connect g ~from:(src, "out") ~into:(conv_a, "in");
  Graph.connect g ~from:(ca, "out") ~into:(conv_a, "coeff");
  Graph.connect g ~from:(conv_a, "out") ~into:(conv_b, "in");
  Graph.connect g ~from:(cb, "out") ~into:(conv_b, "coeff");
  Graph.connect g ~from:(src, "out") ~into:(conv_c, "in");
  Graph.connect g ~from:(cc, "out") ~into:(conv_c, "coeff");
  Graph.connect g ~from:(conv_b, "out") ~into:(subtract, "in0");
  Graph.connect g ~from:(conv_c, "out") ~into:(subtract, "in1");
  Graph.connect g ~from:(subtract, "out") ~into:(sink, "in");
  (* Cascade inset: 1+1 = 2 per side; 5x5 branch inset: 2 per side — the
     two branches align exactly, which itself is a property worth testing;
     the subtraction output is (W-4)x(H-4). *)
  let out_extent = Size.v (frame.Size.w - 4) (frame.Size.h - 4) in
  let golden =
    List.map
      (fun f ->
        let a = Ops.convolve f ~kernel:k3a in
        let b = Ops.convolve a ~kernel:k3b in
        let c = Ops.convolve f ~kernel:k5 in
        Ops.subtract b c)
      frames
  in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "multi-conv";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("difference", check) ];
    expected_chunks = [ ("result", n_frames * Size.area out_extent) ];
    collectors = [ ("result", collector) ];
    allowed_leftover = 0;
  }
