(** Multiple convolutions test (benchmark 4 of Figure 13).

    Two cascaded convolutions on one branch and a third on a parallel
    branch, recombined by a subtraction — exercises chained buffers, deep
    inset accumulation (the cascade insets 2+1 pixels, the single filter 1)
    and alignment repair across branches of different depth. *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
