open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

let kernel5 = Image.Gen.constant (Size.v 5 5) (1. /. 25.)

let v ?(seed = 47) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let conv = Graph.add g (K.Conv.spec ~w:5 ~h:5 ()) in
  let coeff =
    Graph.add g ~name:"5x5 Coeff"
      (K.Source.const ~class_name:"5x5 Coeff" ~chunk:kernel5 ())
  in
  let collector = K.Sink.collector () in
  let sink = App.add_sink g ~name:"result" ~window:Window.pixel collector in
  Graph.connect g ~from:(src, "out") ~into:(conv, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(conv, "coeff");
  Graph.connect g ~from:(conv, "out") ~into:(sink, "in");
  let out_extent = Size.v (frame.Size.w - 4) (frame.Size.h - 4) in
  let golden = List.map (fun f -> Ops.convolve f ~kernel:kernel5) frames in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "parallel-buffer";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("filtered", check) ];
    expected_chunks = [ ("result", n_frames * Size.area out_extent) ];
    collectors = [ ("result", collector) ];
    allowed_leftover = 0;
  }
