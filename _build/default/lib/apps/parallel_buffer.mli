(** Parallel buffer test (benchmark 3 of Figure 13).

    A wide frame through a single 5×5 box filter. On a memory-starved
    machine the input buffer cannot hold enough rows of the wide frame, so
    the compiler must split it column-wise with overlap replication
    (Figure 10) — this application exists to exercise exactly that path. *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
