open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

let up_factor = 2
let down_factor = 3
let taps = 5
let fir_coeffs = Image.Gen.constant (Size.v taps 1) (1. /. float_of_int taps)

let reference frame_w f =
  let expanded =
    K.Upsample.reference ~mode:K.Upsample.Zero_stuff ~fx:up_factor ~fy:1 f
  in
  let filtered = Ops.convolve expanded ~kernel:fir_coeffs in
  ignore frame_w;
  Ops.downsample filtered ~fx:down_factor ~fy:1

let v ?(seed = 83) ~frame ~rate ~n_frames () =
  if frame.Size.h <> 1 then
    Bp_util.Err.invalidf "resampler expects row frames (height 1)";
  if frame.Size.w * up_factor < taps + down_factor then
    Bp_util.Err.invalidf "resampler frame too narrow";
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let expand =
    Graph.add g
      (K.Upsample.spec ~mode:K.Upsample.Zero_stuff ~fx:up_factor ~fy:1 ())
  in
  let fir = Graph.add g ~name:"FIR" (K.Conv.spec ~w:taps ~h:1 ()) in
  let coeff =
    Graph.add g ~name:"FIR Taps"
      (K.Source.const ~class_name:"FIR Taps" ~chunk:fir_coeffs ())
  in
  let dec = Graph.add g (K.Decimate.spec ~fx:down_factor ~fy:1 ()) in
  let collector = K.Sink.collector () in
  let sink =
    App.add_sink g ~name:"resampled" ~window:Window.pixel collector
  in
  Graph.connect g ~from:(src, "out") ~into:(expand, "in");
  Graph.connect g ~from:(expand, "out") ~into:(fir, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(fir, "coeff");
  Graph.connect g ~from:(fir, "out") ~into:(dec, "in");
  Graph.connect g ~from:(dec, "out") ~into:(sink, "in");
  let golden = List.map (reference frame.Size.w) frames in
  let out_extent = Image.size (List.hd golden) in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "resample";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("resampled", check) ];
    expected_chunks = [ ("resampled", n_frames * Size.area out_extent) ];
    collectors = [ ("resampled", collector) ];
    allowed_leftover = 0;
  }
