(** Rational sample-rate conversion (extension example).

    The classic 1-D DSP expander/filter/decimator cascade over row frames:
    zero-stuff by L, low-pass with an N-tap FIR, decimate by M. Exercises a
    block-producing kernel (the expander's 1×L output tiles) feeding a
    windowed consumer — the compiler inserts a block-fed buffer — plus a
    downsampling buffer for the decimator, all verified against a
    whole-row reference. *)

val up_factor : int  (** L = 2 *)

val down_factor : int  (** M = 3 *)

val taps : int  (** 5-tap averaging FIR *)

val v :
  ?seed:int ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
(** [frame] must be a row frame (height 1) wide enough for the cascade. *)
