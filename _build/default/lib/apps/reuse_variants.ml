open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

type variant = Round_robin | Blocked | Blocked_buffered

let variant_name = function
  | Round_robin -> "round-robin"
  | Blocked -> "blocked, minimal output buffering"
  | Blocked_buffered -> "blocked, double-buffered outputs"

let kernel5 = Image.Gen.constant (Size.v 5 5) (1. /. 25.)

let v ?(seed = 61) ~variant ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let window = Bp_kernels.Conv.input_window ~w:5 ~h:5 in
  let buf_cfg = K.Buffer.config ~out_window:window ~frame () in
  let buf =
    Graph.add g
      ~meta:(Graph.Buffer_meta { storage = K.Buffer.storage buf_cfg })
      (K.Buffer.spec buf_cfg)
  in
  let windows_per_row = frame.Size.w - 4 in
  let deep = (2 * windows_per_row) + 4 in
  (* Input-side depth is the b0/b1 split buffers of Figure 9(b); output-side
     depth is the bo0/bo1 buffers that Figure 9(c) adds. *)
  let pattern, in_capacity, out_capacity =
    match variant with
    | Round_robin -> (None, Graph.default_capacity, Graph.default_capacity)
    | Blocked ->
      (* Only the implicit one-iteration buffering on the outputs. *)
      (Some [| windows_per_row; windows_per_row |], deep, 4)
    | Blocked_buffered ->
      (Some [| windows_per_row; windows_per_row |], deep, deep)
  in
  let split =
    Graph.add g
      ~meta:(Graph.Split_meta { ways = 2 })
      (K.Split_join.split ?pattern ~window ~ways:2 ())
  in
  let join =
    Graph.add g
      ~meta:
        (match pattern with
        | None -> Graph.Join_meta { ways = 2 }
        | Some pattern ->
          Graph.Pattern_join_meta
            {
              pattern;
              out_extent = Size.v (frame.Size.w - 4) (frame.Size.h - 4);
            })
      (K.Split_join.join ?pattern ~window:Window.pixel ~ways:2 ())
  in
  let convs =
    List.init 2 (fun k ->
        Graph.add g
          ~name:(Printf.sprintf "5x5 Conv_%d" k)
          (K.Conv.spec ~w:5 ~h:5 ()))
  in
  let coeff =
    Graph.add g ~name:"5x5 Coeff"
      (K.Source.const ~class_name:"5x5 Coeff" ~chunk:kernel5 ())
  in
  let replicate =
    Graph.add g (K.Split_join.replicate ~window:(Window.block 5 5) ())
  in
  let collector = K.Sink.collector () in
  let sink = App.add_sink g ~name:"result" ~window:Window.pixel collector in
  Graph.connect g ~from:(src, "out") ~into:(buf, "in");
  Graph.connect g ~from:(buf, "out") ~into:(split, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(replicate, "in");
  List.iteri
    (fun k conv ->
      Graph.connect g ~capacity:in_capacity
        ~from:(split, Printf.sprintf "out%d" k)
        ~into:(conv, "in");
      Graph.connect g ~from:(replicate, "out") ~into:(conv, "coeff");
      Graph.connect g ~capacity:out_capacity ~from:(conv, "out")
        ~into:(join, Printf.sprintf "in%d" k))
    convs;
  Graph.connect g ~from:(join, "out") ~into:(sink, "in");
  let out_extent = Size.v (frame.Size.w - 4) (frame.Size.h - 4) in
  let golden = List.map (fun f -> Ops.convolve f ~kernel:kernel5) frames in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "reuse-" ^ variant_name variant;
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("filtered", check) ];
    expected_chunks = [ ("result", n_frames * Size.area out_extent) ];
    collectors = [ ("result", collector) ];
    allowed_leftover = 0;
  }
