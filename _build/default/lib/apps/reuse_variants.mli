(** The buffering-for-reuse ablation of Figure 9.

    Three hand-built parallelizations of one 5×5 convolution over a buffered
    input, mirroring the paper's three sub-figures:

    - [Round_robin] — the baseline the compiler emits: windows alternate
      between the two convolution instances (Figure 9(a));
    - [Blocked] — whole window-rows go to each instance in turn, the
      distribution that would let each instance reuse its window columns,
      but with only the implicit iteration buffering on its output channels
      (Figure 9(b)): the pattern join forces the instances into lockstep and
      the input ends up stalling;
    - [Blocked_buffered] — the same distribution with output channels deep
      enough to double-buffer a full run (Figure 9(c)), restoring rate.

    All three compute identical pixels; only timing differs. *)

type variant = Round_robin | Blocked | Blocked_buffered

val variant_name : variant -> string

val v :
  ?seed:int ->
  variant:variant ->
  frame:Bp_geometry.Size.t ->
  rate:Bp_geometry.Rate.t ->
  n_frames:int ->
  unit ->
  App.instance
