open Bp_geometry
module Machine = Bp_machine.Machine

type entry = {
  label : string;
  description : string;
  machine : Machine.t;
  build : unit -> App.instance;
}

let small = Size.v 24 18
let big = Size.v 48 36
let slow = Rate.hz 20.
let fast = Rate.hz 40.
let n_frames = 3

let entries =
  [
    {
      label = "1";
      description = "Bayer demosaicing, baseline rate";
      machine = Machine.default;
      build =
        (fun () ->
          Bayer_app.v ~frame:(Size.v 20 16) ~rate:(Rate.hz 30.) ~n_frames ());
    };
    {
      label = "1F";
      description = "Bayer demosaicing, faster rate";
      machine = Machine.default;
      build =
        (fun () ->
          Bayer_app.v ~frame:(Size.v 20 16) ~rate:(Rate.hz 120.) ~n_frames ());
    };
    {
      label = "2";
      description = "Image histogram, baseline rate";
      machine = Machine.default;
      build = (fun () -> Histogram_app.v ~frame:small ~rate:(Rate.hz 40.) ~n_frames ());
    };
    {
      label = "2F";
      description = "Image histogram, faster rate";
      machine = Machine.default;
      build =
        (fun () -> Histogram_app.v ~frame:small ~rate:(Rate.hz 160.) ~n_frames ());
    };
    {
      label = "3";
      description = "Parallel buffer test (memory-starved machine)";
      machine = Machine.small_memory;
      build =
        (fun () ->
          Parallel_buffer.v ~frame:(Size.v 96 16) ~rate:(Rate.hz 20.) ~n_frames ());
    };
    {
      label = "4";
      description = "Multiple convolutions test";
      machine = Machine.default;
      build =
        (fun () ->
          Multi_conv.v ~frame:(Size.v 20 16) ~rate:(Rate.hz 40.) ~n_frames ());
    };
    {
      label = "SS";
      description = "Image processing example, small input, slow rate";
      machine = Machine.small_memory;
      build =
        (fun () -> Image_pipeline.v ~frame:small ~rate:slow ~n_frames ());
    };
    {
      label = "SF";
      description = "Image processing example, small input, fast rate";
      machine = Machine.small_memory;
      build =
        (fun () -> Image_pipeline.v ~frame:small ~rate:fast ~n_frames ());
    };
    {
      label = "BS";
      description = "Image processing example, big input, slow rate";
      machine = Machine.small_memory;
      build = (fun () -> Image_pipeline.v ~frame:big ~rate:slow ~n_frames ());
    };
    {
      label = "BF";
      description = "Image processing example, big input, fast rate";
      machine = Machine.small_memory;
      build = (fun () -> Image_pipeline.v ~frame:big ~rate:fast ~n_frames ());
    };
    {
      label = "5";
      description = "Application of Figure 1(b)";
      machine = Machine.default;
      build =
        (fun () -> Image_pipeline.v ~frame:small ~rate:(Rate.hz 30.) ~n_frames ());
    };
  ]

let labels = List.map (fun e -> e.label) entries

let by_label l =
  match List.find_opt (fun e -> String.equal e.label l) entries with
  | Some e -> e
  | None ->
    Bp_util.Err.unsupportedf "unknown benchmark %S (expected one of %s)" l
      (String.concat ", " labels)
