(** The benchmark suite of Figure 13.

    Eleven configurations, as listed in the figure's caption: Bayer
    demosaicing at baseline and faster rates (1, 1F), image histogram at
    baseline and faster rates (2, 2F), the parallel-buffer test (3), the
    multiple-convolutions test (4), the image-processing example at four
    input size/rate corners (SS, SF, BS, BF), and the Figure 1(b)
    application (5). Each entry carries the machine it targets — the
    parallel-buffer test runs on the memory-starved machine, everything
    else on the default. *)

type entry = {
  label : string;
  description : string;
  machine : Bp_machine.Machine.t;
  build : unit -> App.instance;
}

val entries : entry list
(** In the paper's order: 1, 1F, 2, 2F, 3, 4, SS, SF, BS, BF, 5. *)

val by_label : string -> entry
(** Fails with {!Bp_util.Err.Unsupported} on unknown labels. *)

val labels : string list
