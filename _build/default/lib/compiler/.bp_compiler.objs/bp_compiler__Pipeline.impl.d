lib/compiler/pipeline.ml: Bp_analysis Bp_graph Bp_machine Bp_sim Bp_transform Bp_util Err Format List
