lib/compiler/pipeline.mli: Bp_analysis Bp_graph Bp_machine Bp_sim Bp_transform Format
