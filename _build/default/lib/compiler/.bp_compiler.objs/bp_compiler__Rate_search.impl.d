lib/compiler/rate_search.ml: Bp_machine Bp_transform Bp_util List Pipeline
