lib/compiler/rate_search.mli: Bp_graph Bp_machine
