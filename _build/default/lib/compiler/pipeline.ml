open Bp_util
module Graph = Bp_graph.Graph
module Machine = Bp_machine.Machine
module Align = Bp_transform.Align
module Buffering = Bp_transform.Buffering
module Parallelize = Bp_transform.Parallelize
module Multiplex = Bp_transform.Multiplex
module Dataflow = Bp_analysis.Dataflow
module Mapping = Bp_sim.Mapping

type t = {
  graph : Graph.t;
  machine : Machine.t;
  repairs : Align.repair list;
  buffers : Buffering.inserted list;
  decisions : Parallelize.decision list;
  analysis : Dataflow.t;
}

let compile ?align_policy ~machine g =
  Graph.validate g;
  ignore (Dataflow.analyze g);
  let repairs = Align.run ?policy:align_policy g in
  let buffers = Buffering.run g in
  let decisions = Parallelize.run machine g in
  let analysis = Dataflow.analyze g in
  if Dataflow.misalignments analysis <> [] then
    Err.alignf "internal: misalignment survived compilation";
  List.iter
    (fun c ->
      if Dataflow.needs_buffer analysis c then
        Err.graphf "internal: channel still needs a buffer after compilation")
    (Graph.channels g);
  { graph = g; machine; repairs; buffers; decisions; analysis }

let mapping_one_to_one t = Mapping.one_to_one t.graph

let mapping_greedy t =
  let groups = Multiplex.greedy t.machine t.graph in
  if List.length groups > t.machine.Machine.max_pes then
    Err.resourcef "program needs %d PEs but the machine has %d"
      (List.length groups) t.machine.Machine.max_pes;
  Mapping.of_groups t.graph groups

let processors_needed t ~greedy =
  if greedy then List.length (Multiplex.greedy t.machine t.graph)
  else List.length (Multiplex.one_to_one t.graph)

let simulate ?max_time_s t ~greedy =
  let mapping = if greedy then mapping_greedy t else mapping_one_to_one t in
  Bp_sim.Sim.run ?max_time_s ~graph:t.graph ~mapping ~machine:t.machine ()

let pp_summary ppf t =
  Format.fprintf ppf
    "compiled: %d nodes (%d buffers inserted, %d repairs, %d kernels \
     parallelized); 1:1 needs %d PEs, greedy needs %d PEs@,"
    (Graph.size t.graph)
    (List.length t.buffers) (List.length t.repairs)
    (List.length t.decisions)
    (processors_needed t ~greedy:false)
    (processors_needed t ~greedy:true);
  List.iter
    (fun (d : Parallelize.decision) ->
      Format.fprintf ppf "  %s -> x%d (%s)@," d.Parallelize.original
        d.Parallelize.degree
        (match d.Parallelize.reason with
        | Parallelize.Cpu_bound -> "cpu"
        | Parallelize.Memory_bound -> "memory"
        | Parallelize.Capped_by_dependency -> "dependency-capped"))
    t.decisions
