lib/geometry/inset.ml: Bp_util Err Float Format Size Window
