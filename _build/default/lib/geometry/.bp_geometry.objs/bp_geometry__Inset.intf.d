lib/geometry/inset.mli: Format Size Window
