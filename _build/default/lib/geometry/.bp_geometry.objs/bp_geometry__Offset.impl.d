lib/geometry/offset.ml: Bp_util Err Float Format Size
