lib/geometry/offset.mli: Format Size
