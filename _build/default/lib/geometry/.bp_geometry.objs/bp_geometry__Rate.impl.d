lib/geometry/rate.ml: Bp_util Err Float Format Size
