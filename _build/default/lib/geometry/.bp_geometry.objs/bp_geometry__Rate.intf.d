lib/geometry/rate.mli: Format Size
