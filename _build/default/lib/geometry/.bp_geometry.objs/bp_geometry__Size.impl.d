lib/geometry/size.ml: Bp_util Err Format Int
