lib/geometry/size.mli: Format
