lib/geometry/step.ml: Bp_util Err Format Int Size
