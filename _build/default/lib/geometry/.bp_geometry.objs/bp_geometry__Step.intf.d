lib/geometry/step.mli: Format Size
