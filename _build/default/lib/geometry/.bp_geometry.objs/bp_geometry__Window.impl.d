lib/geometry/window.ml: Bp_util Err Format Offset Size Step
