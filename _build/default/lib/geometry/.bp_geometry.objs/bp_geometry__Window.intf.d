lib/geometry/window.mli: Format Offset Size Step
