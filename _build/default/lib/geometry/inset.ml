open Bp_util

type t = { left : float; right : float; top : float; bottom : float }

let v ~left ~right ~top ~bottom =
  let bad f = not (Float.is_finite f) in
  if bad left || bad right || bad top || bad bottom then
    Err.invalidf "inset components must be finite";
  { left; right; top; bottom }

let zero = { left = 0.; right = 0.; top = 0.; bottom = 0. }
let uniform m = v ~left:m ~right:m ~top:m ~bottom:m

let of_window (w : Window.t) =
  let hx, hy = Window.halo w in
  v ~left:w.offset.ox ~top:w.offset.oy
    ~right:(float_of_int hx -. w.offset.ox)
    ~bottom:(float_of_int hy -. w.offset.oy)

let add a b =
  {
    left = a.left +. b.left;
    right = a.right +. b.right;
    top = a.top +. b.top;
    bottom = a.bottom +. b.bottom;
  }

let union a b =
  {
    left = Float.max a.left b.left;
    right = Float.max a.right b.right;
    top = Float.max a.top b.top;
    bottom = Float.max a.bottom b.bottom;
  }

let diff ~target i =
  {
    left = target.left -. i.left;
    right = target.right -. i.right;
    top = target.top -. i.top;
    bottom = target.bottom -. i.bottom;
  }

let dominates a b =
  a.left >= b.left && a.right >= b.right && a.top >= b.top
  && a.bottom >= b.bottom

let equal a b =
  Float.equal a.left b.left && Float.equal a.right b.right
  && Float.equal a.top b.top && Float.equal a.bottom b.bottom

let is_integral t =
  let whole f = Float.equal (Float.round f) f in
  whole t.left && whole t.right && whole t.top && whole t.bottom

let to_int_sides t =
  if not (is_integral t) then
    Err.alignf "inset %g,%g,%g,%g is fractional; cannot trim exactly" t.left
      t.right t.top t.bottom;
  ( int_of_float t.left,
    int_of_float t.right,
    int_of_float t.top,
    int_of_float t.bottom )

let shrink_size (s : Size.t) t =
  let l, r, tp, b = to_int_sides t in
  Size.v (s.w - l - r) (s.h - tp - b)

let pp ppf t =
  Format.fprintf ppf "{l=%g r=%g t=%g b=%g}" t.left t.right t.top t.bottom

let to_string t = Format.asprintf "%a" pp t
