(** Insets: per-side margins relative to an original application input.

    The alignment analysis (Section III-C, Figure 8) propagates, for every
    stream in the graph, how far its data extent is inset from the frame of
    the application input that produced it. A centered 3×3 median filter
    insets its output by 1 on every side; a centered 5×5 convolution by 2.
    Comparing insets at a multi-input kernel detects misalignment and sizes
    the trim/pad repair. Margins are floats because fractional offsets are
    allowed for downsampling kernels. *)

type t = { left : float; right : float; top : float; bottom : float }

val v : left:float -> right:float -> top:float -> bottom:float -> t
(** Component constructor; components must be finite. *)

val zero : t
(** No inset — the stream covers the full input frame. *)

val uniform : float -> t
(** [uniform m] insets every side by [m]. *)

val of_window : Window.t -> t
(** [of_window w] is the inset a windowed kernel applies to its data:
    [left = offset.ox], [top = offset.oy],
    [right = halo_x - offset.ox], [bottom = halo_y - offset.oy].
    A centered window splits its halo evenly. *)

val add : t -> t -> t
(** Composition along a kernel chain (insets accumulate). *)

val union : t -> t -> t
(** Per-side maximum: the inset of the intersection of two data extents.
    This is the alignment target for a multi-input kernel. *)

val diff : target:t -> t -> t
(** [diff ~target i] is the extra trim needed to take a stream with inset
    [i] to [target]. All components are non-negative when
    [dominates target i]. *)

val dominates : t -> t -> bool
(** [dominates a b] is true when [a] insets at least as much as [b] on every
    side. *)

val equal : t -> t -> bool

val is_integral : t -> bool
(** True when all four margins are whole numbers (trimming is exact). *)

val to_int_sides : t -> int * int * int * int
(** [(left, right, top, bottom)] as integers. Fails with
    {!Bp_util.Err.Alignment_error} when not {!is_integral}. *)

val shrink_size : Size.t -> t -> Size.t
(** [shrink_size s i] is [s] reduced by the (integral) inset margins. Fails
    if the result would be empty. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
