open Bp_util

type t = { ox : float; oy : float }

let v ox oy =
  let bad f = (not (Float.is_finite f)) || f < 0. in
  if bad ox || bad oy then Err.invalidf "offset [%g,%g] must be finite and non-negative" ox oy;
  { ox; oy }

let zero = { ox = 0.; oy = 0. }

let centered (s : Size.t) =
  v (float_of_int (s.w / 2)) (float_of_int (s.h / 2))

let add a b = { ox = a.ox +. b.ox; oy = a.oy +. b.oy }
let equal a b = Float.equal a.ox b.ox && Float.equal a.oy b.oy
let pp ppf o = Format.fprintf ppf "[%.1f,%.1f]" o.ox o.oy
let to_string o = Format.asprintf "%a" pp o
