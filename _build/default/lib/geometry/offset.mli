(** Input-to-output offsets.

    The offset of an input declares where each produced output sits relative
    to the upper-left corner of the consumed input window (Figure 5(b) of the
    paper). A centered 5×5 window has offset [\[2.0,2.0\]]. Offsets may be
    fractional for downsampling kernels, which is why they are floats. *)

type t = { ox : float; oy : float }

val v : float -> float -> t
(** [v ox oy]. Fails with {!Bp_util.Err.Invalid_parameterization} when a
    component is negative or not finite. *)

val zero : t
(** The offset [0.0,0.0]. *)

val centered : Size.t -> t
(** [centered s] is the offset placing the output at the center of window
    [s]: [floor(w/2), floor(h/2)] — the convention used by the paper's
    convolution kernel. *)

val add : t -> t -> t
(** Component-wise sum, used when composing kernels along a path. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as ["[ox,oy]"] with one decimal, matching the paper. *)

val to_string : t -> string
