open Bp_util

type t = float

let hz f =
  if (not (Float.is_finite f)) || f <= 0. then
    Err.invalidf "rate %g Hz must be positive and finite" f;
  f

let to_hz t = t
let frame_period_s t = 1. /. t
let element_period_s t ~frame = 1. /. (t *. float_of_int (Size.area frame))
let elements_per_s t ~frame = t *. float_of_int (Size.area frame)
let scale t k = hz (t *. k)
let equal = Float.equal
let compare = Float.compare
let pp ppf t = Format.fprintf ppf "%gHz" t
let to_string t = Format.asprintf "%a" pp t
