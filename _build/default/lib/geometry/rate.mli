(** Frame rates — the real-time constraint.

    Application inputs arrive at a fixed rate; the compiler's job is to
    guarantee the graph keeps up. Rates are frames per second (strictly
    positive, finite). *)

type t = private float
(** Frames per second. *)

val hz : float -> t
(** [hz f] is the rate [f] frames/s. Fails with
    {!Bp_util.Err.Invalid_parameterization} unless positive and finite. *)

val to_hz : t -> float
(** The rate in frames per second. *)

val frame_period_s : t -> float
(** [frame_period_s r] is [1 / r]: seconds per frame. *)

val element_period_s : t -> frame:Size.t -> float
(** [element_period_s r ~frame] is the inter-arrival time of individual
    elements when a [frame]-sized input streams at rate [r]:
    [1 / (r * area frame)]. *)

val elements_per_s : t -> frame:Size.t -> float
(** Total element throughput of the input. *)

val scale : t -> float -> t
(** [scale r k] is the rate [k * r]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
