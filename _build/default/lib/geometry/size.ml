open Bp_util

type t = { w : int; h : int }

let v w h =
  if w <= 0 || h <= 0 then Err.invalidf "size %dx%d must be positive" w h;
  { w; h }

let square n = v n n
let one = { w = 1; h = 1 }
let area s = s.w * s.h
let equal a b = a.w = b.w && a.h = b.h

let compare a b =
  match Int.compare a.w b.w with 0 -> Int.compare a.h b.h | c -> c

let add a b = v (a.w + b.w) (a.h + b.h)
let sub a b = v (a.w - b.w) (a.h - b.h)
let scale s kx ky = v (s.w * kx) (s.h * ky)
let max_pair a b = { w = max a.w b.w; h = max a.h b.h }
let fits_within inner outer = inner.w <= outer.w && inner.h <= outer.h
let pp ppf s = Format.fprintf ppf "(%dx%d)" s.w s.h
let to_string s = Format.asprintf "%a" pp s
