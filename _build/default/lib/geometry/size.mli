(** Two-dimensional extents.

    A [Size.t] is the width and height of a data window, a frame, or an
    iteration space, always in elements (pixels). Extents are strictly
    positive; [v] enforces this. *)

type t = { w : int; h : int }

val v : int -> int -> t
(** [v w h] is the size [w]×[h]. Fails with
    {!Bp_util.Err.Invalid_parameterization} unless both are positive. *)

val square : int -> t
(** [square n] is [v n n]. *)

val one : t
(** The 1×1 size. *)

val area : t -> int
(** [area s] is [s.w * s.h], the number of elements. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
(** Component-wise sum. *)

val sub : t -> t -> t
(** Component-wise difference; fails if a component would become
    non-positive. *)

val scale : t -> int -> int -> t
(** [scale s kx ky] multiplies the components. *)

val max_pair : t -> t -> t
(** Component-wise maximum. *)

val fits_within : t -> t -> bool
(** [fits_within inner outer] is true when [inner] is no larger than [outer]
    in both dimensions. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["(WxH)"], matching the paper's figures. *)

val to_string : t -> string
