open Bp_util

type t = { sx : int; sy : int }

let v sx sy =
  if sx <= 0 || sy <= 0 then Err.invalidf "step [%d,%d] must be positive" sx sy;
  { sx; sy }

let one = { sx = 1; sy = 1 }
let of_size (s : Size.t) = v s.w s.h
let equal a b = a.sx = b.sx && a.sy = b.sy

let compare a b =
  match Int.compare a.sx b.sx with 0 -> Int.compare a.sy b.sy | c -> c

let pp ppf s = Format.fprintf ppf "[%d,%d]" s.sx s.sy
let to_string s = Format.asprintf "%a" pp s
