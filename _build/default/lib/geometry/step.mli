(** Window step sizes.

    A step [\[sx,sy\]] is how far an input/output window advances between
    kernel iterations in X and Y, in elements. Steps are strictly
    positive. A step equal to the window size means no data reuse (e.g. the
    coefficient input of a convolution); a step of [1,1] with a larger window
    is the classic sliding window. *)

type t = { sx : int; sy : int }

val v : int -> int -> t
(** [v sx sy]. Fails with {!Bp_util.Err.Invalid_parameterization} unless both
    components are positive. *)

val one : t
(** The step [1,1]. *)

val of_size : Size.t -> t
(** [of_size s] is the non-overlapping step for window [s]
    (step = window size). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["[sx,sy]"], matching the paper's figures. *)

val to_string : t -> string
