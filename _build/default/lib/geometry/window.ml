open Bp_util

type t = { size : Size.t; step : Step.t; offset : Offset.t }

let v ?(offset = Offset.zero) ?(step = Step.one) (size : Size.t) =
  (* Steps larger than the window are legal: they express downsampling
     (elements between windows are deliberately skipped). *)
  { size; step; offset }

let pixel = v Size.one
let windowed w h = v ~offset:(Offset.centered (Size.v w h)) (Size.v w h)
let block w h = v ~step:(Step.v w h) (Size.v w h)
let halo t = (t.size.w - t.step.sx, t.size.h - t.step.sy)

let iterations t ~(frame : Size.t) =
  if not (Size.fits_within t.size frame) then
    Err.ratef "frame %s is smaller than window %s" (Size.to_string frame)
      (Size.to_string t.size);
  Size.v
    (((frame.w - t.size.w) / t.step.sx) + 1)
    (((frame.h - t.size.h) / t.step.sy) + 1)

let extent_for_iterations t (n : Size.t) =
  Size.v
    (t.size.w + ((n.w - 1) * t.step.sx))
    (t.size.h + ((n.h - 1) * t.step.sy))

let elements_consumed_per_fire t = Size.area t.size

let new_elements_per_fire t =
  min (t.step.sx * t.step.sy) (Size.area t.size)

let reuse_fraction t =
  let area = float_of_int (Size.area t.size) in
  1. -. (float_of_int (new_elements_per_fire t) /. area)

let equal a b =
  Size.equal a.size b.size && Step.equal a.step b.step
  && Offset.equal a.offset b.offset

let pp ppf t =
  Format.fprintf ppf "%a%a@@%a" Size.pp t.size Step.pp t.step Offset.pp
    t.offset

let to_string t = Format.asprintf "%a" pp t
