(** Windowed-access parameterization.

    A window bundles the size, step and offset of one kernel input or output
    — the complete data-access description of the block-parallel model
    (Section II-A of the paper). Together with the fixed scan-line ordering
    it fully determines data movement, reuse, and iteration counts. *)

type t = { size : Size.t; step : Step.t; offset : Offset.t }

val v : ?offset:Offset.t -> ?step:Step.t -> Size.t -> t
(** [v size] is a window with step [1,1] and offset [0.0,0.0] unless
    overridden. A step larger than the size is legal and expresses
    downsampling (elements between windows are skipped). *)

val pixel : t
(** The 1×1 window with unit step — how plain sample streams are typed. *)

val windowed : int -> int -> t
(** [windowed w h] is a [w]×[h] sliding window, unit step, centered offset —
    the common case for image filters. *)

val block : int -> int -> t
(** [block w h] is a [w]×[h] window with non-overlapping step (step = size)
    and zero offset — e.g. a histogram's bin output. *)

val halo : t -> int * int
(** [halo w] is [(size.w - step.sx, size.h - step.sy)]: the total number of
    border elements in each dimension that the window consumes beyond its
    step. A 5×5 window with unit step has a halo of [(4,4)]. *)

val iterations : t -> frame:Size.t -> Size.t
(** [iterations w ~frame] is how many times the window fires in X and Y when
    slid over a [frame] in scan-line order:
    [floor((frame - size) / step) + 1] per dimension. Fails with
    {!Bp_util.Err.Rate_mismatch} when the frame is smaller than the window. *)

val extent_for_iterations : t -> Size.t -> Size.t
(** [extent_for_iterations w n] is the frame extent the window covers when
    fired [n.w]×[n.h] times: [size + (n-1)*step] per dimension. Inverse of
    {!iterations} for exact fits. *)

val elements_consumed_per_fire : t -> int
(** Words read from the channel each firing (= window area). *)

val new_elements_per_fire : t -> int
(** In the 2-D steady state (rows and columns reused), the number of
    elements per firing that were never seen before: [step.sx * step.sy],
    capped at the window area. *)

val reuse_fraction : t -> float
(** [reuse_fraction w] is the steady-state fraction of the window that is
    reused from previous iterations: [1 - new/area]. A 5×5 unit-step window
    reuses 24/25 = 0.96 (Figure 5(b)). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as ["(WxH)[sx,sy]@[ox,oy]"]. *)

val to_string : t -> string
