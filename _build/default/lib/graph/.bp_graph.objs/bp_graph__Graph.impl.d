lib/graph/graph.ml: Bp_geometry Bp_kernel Bp_util Err Format Hashtbl Id Int List Map Option Printf String
