lib/graph/graph.mli: Bp_geometry Bp_kernel Format
