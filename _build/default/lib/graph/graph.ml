open Bp_util
module Int_map = Map.Make (Int)

type node_id = int

type meta =
  | Plain
  | Source_meta of { frame : Bp_geometry.Size.t; rate : Bp_geometry.Rate.t }
  | Buffer_meta of { storage : Bp_geometry.Size.t }
  | Split_meta of { ways : int }
  | Column_split_meta of { ranges : (int * int) array }
  | Join_meta of { ways : int }
  | Pattern_join_meta of {
      pattern : int array;
      out_extent : Bp_geometry.Size.t;
    }
  | Inset_meta of { left : int; right : int; top : int; bottom : int }
  | Pad_meta of { left : int; right : int; top : int; bottom : int }
  | Feedback_init_meta of {
      extent : Bp_geometry.Size.t;
      rate : Bp_geometry.Rate.t;
    }

type node = { id : node_id; name : string; spec : Bp_kernel.Spec.t; meta : meta }
type endpoint = { node : node_id; port : string }

type channel = {
  chan_id : int;
  src : endpoint;
  dst : endpoint;
  capacity : int;
}

type dep = { dep_src : node_id; dep_dst : node_id }

type t = {
  node_gen : Id.gen;
  chan_gen : Id.gen;
  allow_cycles : bool;
  mutable node_map : node Int_map.t;
  mutable chan_map : channel Int_map.t;
  mutable dep_list : dep list;
}

let create ?(allow_cycles = false) () =
  {
    node_gen = Id.make_gen ();
    chan_gen = Id.make_gen ();
    allow_cycles;
    node_map = Int_map.empty;
    chan_map = Int_map.empty;
    dep_list = [];
  }

let default_capacity = 16

let name_taken t name =
  Int_map.exists (fun _ n -> String.equal n.name name) t.node_map

let add ?name ?(meta = Plain) t (spec : Bp_kernel.Spec.t) =
  let id = Id.fresh t.node_gen in
  let name =
    match name with
    | Some n ->
      if name_taken t n then Err.graphf "node name %S already in use" n;
      n
    | None ->
      let base = spec.Bp_kernel.Spec.class_name in
      if not (name_taken t base) then base
      else
        let rec try_suffix k =
          let candidate = Printf.sprintf "%s_%d" base k in
          if name_taken t candidate then try_suffix (k + 1) else candidate
        in
        try_suffix 0
  in
  t.node_map <- Int_map.add id { id; name; spec; meta } t.node_map;
  id

let node t id =
  match Int_map.find_opt id t.node_map with
  | Some n -> n
  | None -> Err.graphf "no node with id %d" id

let node_by_name t name =
  let found =
    Int_map.fold
      (fun _ n acc -> if String.equal n.name name then Some n else acc)
      t.node_map None
  in
  match found with
  | Some n -> n
  | None -> Err.graphf "no node named %S" name

let set_meta t id meta =
  let n = node t id in
  t.node_map <- Int_map.add id { n with meta } t.node_map

let in_channel t id port =
  Int_map.fold
    (fun _ c acc ->
      if c.dst.node = id && String.equal c.dst.port port then Some c else acc)
    t.chan_map None

let connect ?(capacity = default_capacity) t ~from:(src_id, src_port)
    ~into:(dst_id, dst_port) =
  if capacity < 2 then Err.graphf "channel capacity must be at least 2";
  let src_node = node t src_id and dst_node = node t dst_id in
  ignore (Bp_kernel.Spec.find_output src_node.spec src_port);
  ignore (Bp_kernel.Spec.find_input dst_node.spec dst_port);
  (match in_channel t dst_id dst_port with
  | Some _ ->
    Err.graphf "input %s.%s is already driven" dst_node.name dst_port
  | None -> ());
  let chan_id = Id.fresh t.chan_gen in
  let c =
    {
      chan_id;
      src = { node = src_id; port = src_port };
      dst = { node = dst_id; port = dst_port };
      capacity;
    }
  in
  t.chan_map <- Int_map.add chan_id c t.chan_map

let add_dep t ~src ~dst =
  ignore (node t src);
  ignore (node t dst);
  t.dep_list <- { dep_src = src; dep_dst = dst } :: t.dep_list

let remove_channel t chan_id =
  if not (Int_map.mem chan_id t.chan_map) then
    Err.graphf "no channel with id %d" chan_id;
  t.chan_map <- Int_map.remove chan_id t.chan_map

let remove_node t id =
  ignore (node t id);
  t.node_map <- Int_map.remove id t.node_map;
  t.chan_map <-
    Int_map.filter
      (fun _ c -> c.src.node <> id && c.dst.node <> id)
      t.chan_map;
  t.dep_list <-
    List.filter (fun d -> d.dep_src <> id && d.dep_dst <> id) t.dep_list

let nodes t = List.map snd (Int_map.bindings t.node_map)
let channels t = List.map snd (Int_map.bindings t.chan_map)
let deps t = List.rev t.dep_list

let channel t chan_id =
  match Int_map.find_opt chan_id t.chan_map with
  | Some c -> c
  | None -> Err.graphf "no channel with id %d" chan_id

let in_channels t id = List.filter (fun c -> c.dst.node = id) (channels t)

let out_channels t id ?port () =
  List.filter
    (fun c ->
      c.src.node = id
      && match port with None -> true | Some p -> String.equal c.src.port p)
    (channels t)

let distinct ids = List.sort_uniq Int.compare ids

let predecessors t id =
  distinct
    (List.filter_map
       (fun c -> if c.dst.node = id then Some c.src.node else None)
       (channels t))

let successors t id =
  distinct
    (List.filter_map
       (fun c -> if c.src.node = id then Some c.dst.node else None)
       (channels t))

let dep_sources t id =
  distinct
    (List.filter_map
       (fun d -> if d.dep_dst = id then Some d.dep_src else None)
       t.dep_list)

let with_role role t =
  List.filter (fun n -> n.spec.Bp_kernel.Spec.role = role) (nodes t)

let sources t = with_role Bp_kernel.Spec.Source t
let const_sources t = with_role Bp_kernel.Spec.Const_source t
let sinks t = with_role Bp_kernel.Spec.Sink t

let topological_order t =
  (* Kahn's algorithm; when cycles are allowed, remaining nodes (members of
     cycles) are appended in id order so callers still see every node. *)
  let succ = Hashtbl.create 16 and indeg = Hashtbl.create 16 in
  let all = nodes t in
  List.iter (fun n -> Hashtbl.replace indeg n.id 0) all;
  List.iter
    (fun c ->
      Hashtbl.replace succ c.src.node
        (c.dst.node :: Option.value ~default:[] (Hashtbl.find_opt succ c.src.node));
      Hashtbl.replace indeg c.dst.node
        (1 + Option.value ~default:0 (Hashtbl.find_opt indeg c.dst.node)))
    (channels t);
  let ready =
    ref
      (List.filter_map
         (fun n -> if Hashtbl.find indeg n.id = 0 then Some n.id else None)
         all)
  in
  let order = ref [] in
  let emitted = Hashtbl.create 16 in
  while !ready <> [] do
    match List.sort Int.compare !ready with
    | [] -> ()
    | id :: rest ->
      ready := rest;
      Hashtbl.replace emitted id ();
      order := id :: !order;
      List.iter
        (fun s ->
          let d = Hashtbl.find indeg s - 1 in
          Hashtbl.replace indeg s d;
          if d = 0 then ready := s :: !ready)
        (List.sort_uniq Int.compare
           (Option.value ~default:[] (Hashtbl.find_opt succ id)))
  done;
  let missing = List.filter (fun n -> not (Hashtbl.mem emitted n.id)) all in
  if missing <> [] && not t.allow_cycles then
    Err.graphf "stream graph has a cycle through %s"
      (String.concat ", " (List.map (fun n -> n.name) missing));
  List.map (node t) (List.rev !order) @ missing

let validate t =
  let all = nodes t in
  List.iter
    (fun c ->
      let src = node t c.src.node and dst = node t c.dst.node in
      ignore (Bp_kernel.Spec.find_output src.spec c.src.port);
      ignore (Bp_kernel.Spec.find_input dst.spec c.dst.port))
    (channels t);
  List.iter
    (fun n ->
      let role = n.spec.Bp_kernel.Spec.role in
      (match role with
      | Bp_kernel.Spec.Source | Bp_kernel.Spec.Const_source ->
        if n.spec.Bp_kernel.Spec.inputs <> [] then
          Err.graphf "source %s must have no inputs" n.name
      | Bp_kernel.Spec.Sink ->
        if n.spec.Bp_kernel.Spec.outputs <> [] then
          Err.graphf "sink %s must have no outputs" n.name
      | _ -> ());
      List.iter
        (fun (p : Bp_kernel.Port.t) ->
          match in_channel t n.id p.Bp_kernel.Port.name with
          | Some _ -> ()
          | None ->
            Err.graphf "input %s.%s is not connected" n.name
              p.Bp_kernel.Port.name)
        n.spec.Bp_kernel.Spec.inputs)
    all;
  List.iter
    (fun d ->
      ignore (node t d.dep_src);
      ignore (node t d.dep_dst))
    t.dep_list;
  ignore (topological_order t)

let size t = Int_map.cardinal t.node_map

let copy t =
  {
    node_gen =
      (let g = Id.make_gen () in
       Id.reserve g (Id.peek t.node_gen);
       g);
    chan_gen =
      (let g = Id.make_gen () in
       Id.reserve g (Id.peek t.chan_gen);
       g);
    allow_cycles = t.allow_cycles;
    node_map = t.node_map;
    chan_map = t.chan_map;
    dep_list = t.dep_list;
  }

let role_string = function
  | Bp_kernel.Spec.Source -> "source"
  | Bp_kernel.Spec.Const_source -> "const"
  | Bp_kernel.Spec.Sink -> "sink"
  | Bp_kernel.Spec.Compute -> "compute"
  | Bp_kernel.Spec.Buffer -> "buffer"
  | Bp_kernel.Spec.Split -> "split"
  | Bp_kernel.Spec.Join -> "join"
  | Bp_kernel.Spec.Inset -> "inset"
  | Bp_kernel.Spec.Pad -> "pad"
  | Bp_kernel.Spec.Replicate -> "replicate"

let pp_summary ppf t =
  Format.fprintf ppf "graph: %d nodes, %d channels, %d deps@," (size t)
    (List.length (channels t))
    (List.length t.dep_list);
  List.iter
    (fun n ->
      Format.fprintf ppf "  [%d] %-24s %-9s in:%d out:%d@," n.id n.name
        (role_string n.spec.Bp_kernel.Spec.role)
        (List.length (in_channels t n.id))
        (List.length (out_channels t n.id ())))
    (nodes t)
