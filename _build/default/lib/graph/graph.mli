(** The application graph.

    Kernels (nodes) connected by stream channels, plus data-dependency edges
    that limit parallelism (Section IV-B). The graph is the unit every
    compiler pass consumes and produces: analyses annotate it, transforms
    rewrite it, the simulator executes it.

    Structural invariants (checked by {!validate}):
    - every channel joins an existing output port to an existing input port;
    - every input port has exactly one incoming channel (outputs may fan
      out to several consumers);
    - sources have no inputs, sinks no outputs;
    - the stream graph is acyclic unless the graph was created with
      [~allow_cycles:true] (the feedback extension, Section III-D). *)

type node_id = int

(** Metadata attached by construction or by compiler passes, surfaced in
    figure labels and used by the analyses. *)
type meta =
  | Plain
  | Source_meta of { frame : Bp_geometry.Size.t; rate : Bp_geometry.Rate.t }
  | Buffer_meta of { storage : Bp_geometry.Size.t }
      (** The buffer's allocated 2-D storage — the "[20x10]" labels of
          Figures 3-4. *)
  | Split_meta of { ways : int }  (** Round-robin distributor. *)
  | Column_split_meta of { ranges : (int * int) array }
      (** Column-range distributor for split buffers (Figure 10). *)
  | Join_meta of { ways : int }  (** Round-robin collector. *)
  | Pattern_join_meta of {
      pattern : int array;
      out_extent : Bp_geometry.Size.t;
          (** Logical extent of the re-serialized stream. *)
    }
      (** Striped collector for split buffers. *)
  | Inset_meta of { left : int; right : int; top : int; bottom : int }
  | Pad_meta of { left : int; right : int; top : int; bottom : int }
  | Feedback_init_meta of {
      extent : Bp_geometry.Size.t;
      rate : Bp_geometry.Rate.t;
    }
      (** Marks an initialization kernel that breaks a feedback loop; the
          payload declares the loop stream's geometry, seeding the
          work-list dataflow (Section III-D). *)

type node = {
  id : node_id;
  name : string;  (** Unique instance name, e.g. ["5x5 Conv_0"]. *)
  spec : Bp_kernel.Spec.t;
  meta : meta;
}

type endpoint = { node : node_id; port : string }

type channel = {
  chan_id : int;
  src : endpoint;  (** An output port. *)
  dst : endpoint;  (** An input port. *)
  capacity : int;  (** Queue capacity in items. *)
}

type dep = { dep_src : node_id; dep_dst : node_id }
(** A data-dependency edge: the parallelism of [dep_dst] is limited to that
    of [dep_src]. *)

type t

val create : ?allow_cycles:bool -> unit -> t
(** An empty graph. *)

val default_capacity : int
(** Default channel capacity in items (a couple of iterations of implicit
    port buffering plus in-flight control tokens). *)

val add : ?name:string -> ?meta:meta -> t -> Bp_kernel.Spec.t -> node_id
(** [add g spec] inserts a kernel instance. [name] defaults to the spec's
    class name, uniquified with a [_k] suffix when necessary. Fails with
    {!Bp_util.Err.Graph_malformed} if [name] is given and already taken. *)

val connect :
  ?capacity:int -> t -> from:node_id * string -> into:node_id * string -> unit
(** [connect g ~from:(n,"out") ~into:(m,"in")] adds a stream channel. Fails
    when a port does not exist, direction is wrong, or the input is already
    driven. *)

val add_dep : t -> src:node_id -> dst:node_id -> unit
(** Add a data-dependency edge. *)

val remove_channel : t -> int -> unit
(** Remove a channel by id. *)

val remove_node : t -> node_id -> unit
(** Remove a node and all channels and dependency edges touching it. *)

val node : t -> node_id -> node
(** Look a node up. Fails with {!Bp_util.Err.Graph_malformed} when absent. *)

val node_by_name : t -> string -> node
(** Look a node up by instance name. *)

val set_meta : t -> node_id -> meta -> unit

val nodes : t -> node list
(** All nodes, in increasing id order. *)

val channels : t -> channel list
(** All channels, in increasing id order. *)

val deps : t -> dep list

val channel : t -> int -> channel

val in_channel : t -> node_id -> string -> channel option
(** The channel driving the given input port, if connected. *)

val in_channels : t -> node_id -> channel list
(** Channels into any input of the node. *)

val out_channels : t -> node_id -> ?port:string -> unit -> channel list
(** Channels out of the node, optionally restricted to one output port. *)

val predecessors : t -> node_id -> node_id list
(** Distinct upstream neighbours over stream channels. *)

val successors : t -> node_id -> node_id list
(** Distinct downstream neighbours over stream channels. *)

val dep_sources : t -> node_id -> node_id list
(** Nodes this node depends on via dependency edges. *)

val sources : t -> node list
(** Nodes whose spec role is [Source]. *)

val const_sources : t -> node list
val sinks : t -> node list

val topological_order : t -> node list
(** Nodes sorted so every stream channel goes forward. Fails with
    {!Bp_util.Err.Graph_malformed} on a cycle when cycles are not allowed;
    with [~allow_cycles:true], back edges found by DFS are ignored for the
    ordering (callers must use the work-list analysis). *)

val validate : t -> unit
(** Check all structural invariants; fails with
    {!Bp_util.Err.Graph_malformed} otherwise. *)

val size : t -> int
(** Number of nodes. *)

val copy : t -> t
(** A structural deep copy (specs are shared; they are immutable). Node and
    channel ids are preserved. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per node with its class, role and degree — the textual
    counterpart of the paper's application-graph figures. *)
