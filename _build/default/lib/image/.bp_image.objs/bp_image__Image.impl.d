lib/image/image.ml: Array Bp_geometry Bp_util Float Format List Printf Size
