lib/image/image.mli: Bp_geometry Bp_util Format
