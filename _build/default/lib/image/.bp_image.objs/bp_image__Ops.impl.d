lib/image/ops.ml: Array Bp_geometry Bp_util Float Image Printf Size
