lib/image/ops.mli: Image
