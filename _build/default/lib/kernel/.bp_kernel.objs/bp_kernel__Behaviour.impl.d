lib/kernel/behaviour.ml: Bp_image Bp_token Bp_util Err Item List Method_spec
