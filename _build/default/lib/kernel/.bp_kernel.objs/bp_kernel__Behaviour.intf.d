lib/kernel/behaviour.mli: Bp_image Bp_token Item Method_spec
