lib/kernel/item.ml: Bp_image Bp_token
