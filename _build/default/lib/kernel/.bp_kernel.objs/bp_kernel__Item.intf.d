lib/kernel/item.mli: Bp_image Bp_token Format
