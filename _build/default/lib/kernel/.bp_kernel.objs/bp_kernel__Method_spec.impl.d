lib/kernel/method_spec.ml: Bp_token Bp_util Err Format List String
