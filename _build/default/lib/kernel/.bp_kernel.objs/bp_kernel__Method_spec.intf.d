lib/kernel/method_spec.mli: Bp_token Format
