lib/kernel/port.ml: Bp_geometry Bp_util Err Format List Size String Window
