lib/kernel/port.mli: Bp_geometry Format
