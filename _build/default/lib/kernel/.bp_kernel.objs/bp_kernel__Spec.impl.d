lib/kernel/spec.ml: Behaviour Bp_token Bp_util Err Format List Method_spec Port String
