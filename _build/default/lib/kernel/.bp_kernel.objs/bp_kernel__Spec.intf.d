lib/kernel/spec.mli: Behaviour Bp_token Format Method_spec Port
