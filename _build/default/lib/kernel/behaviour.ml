open Bp_util

type io = {
  peek : string -> Item.t option;
  pop : string -> Item.t;
  push : string -> Item.t -> unit;
  space : string -> int;
}

type fired = { method_name : string; cycles : int }
type t = { try_step : io -> fired option }

let forward_method_name = "<forward-token>"

type data_run =
  (string * Bp_image.Image.t) list -> (string * Bp_image.Image.t) list

type token_run = Bp_token.Token.t -> (string * Bp_image.Image.t) list

let pop_data io input =
  match io.pop input with
  | Item.Data img -> img
  | Item.Ctl tok ->
    Err.graphf "expected data on %S, found token %s" input
      (Bp_token.Token.to_string tok)

let front_is_data io input =
  match io.peek input with Some (Item.Data _) -> true | _ -> false

let front_token io input =
  match io.peek input with Some (Item.Ctl tok) -> Some tok | _ -> None

(* Push the chunks a method body returned, in the method's declared output
   order, validating that the body only wrote declared outputs. *)
let push_results io (m : Method_spec.t) results =
  List.iter
    (fun (out, _) ->
      if not (List.mem out m.Method_spec.outputs) then
        Err.graphf "method %s wrote undeclared output %S" m.Method_spec.name
          out)
    results;
  List.iter
    (fun out ->
      match List.assoc_opt out results with
      | Some chunk -> io.push out (Item.data chunk)
      | None -> ())
    m.Method_spec.outputs

(* The fronts of a method's trigger inputs, or None when a queue is empty. *)
let fronts io inputs =
  let rec collect acc = function
    | [] -> Some (List.rev acc)
    | input :: rest -> (
      match io.peek input with
      | None -> None
      | Some item -> collect ((input, item) :: acc) rest)
  in
  collect [] inputs

let all_data items = List.for_all (fun (_, item) -> Item.is_data item) items

let matching_token items =
  match items with
  | [] -> None
  | (_, first) :: rest -> (
    match first with
    | Item.Data _ -> None
    | Item.Ctl tok ->
      let same (_, item) =
        match item with
        | Item.Ctl t -> Bp_token.Token.kind_equal t.kind tok.kind
        | Item.Data _ -> false
      in
      if List.for_all same rest then Some tok else None)

let iteration_kernel ?(token_forward_cycles = 2) ~methods ~run
    ?(token_run = fun _ _ -> []) () =
  let data_methods =
    List.filter
      (fun m ->
        match m.Method_spec.trigger with
        | Method_spec.On_data _ -> true
        | Method_spec.On_token _ -> false)
      methods
  in
  let token_handler inputs kind =
    List.find_opt
      (fun m ->
        match m.Method_spec.trigger with
        | Method_spec.On_token (input, k) ->
          List.mem input inputs && Bp_token.Token.kind_equal k kind
        | Method_spec.On_data _ -> false)
      methods
  in
  let space_ok io outputs need =
    List.for_all (fun out -> io.space out >= need) outputs
  in
  let try_data_method io (m : Method_spec.t) items =
    if not (space_ok io m.outputs 1) then None
    else begin
      let chunks =
        List.map (fun (input, _) -> (input, Item.chunk_exn (io.pop input))) items
      in
      push_results io m (run m.Method_spec.name chunks);
      Some { method_name = m.Method_spec.name; cycles = m.Method_spec.cycles }
    end
  in
  let try_token io (m : Method_spec.t) items (tok : Bp_token.Token.t) =
    let inputs = List.map fst items in
    match token_handler inputs tok.kind with
    | Some h ->
      (* A handler may emit one chunk per output plus the forwarded token. *)
      if not (space_ok io h.Method_spec.outputs 2) then None
      else begin
        List.iter (fun (input, _) -> ignore (io.pop input)) items;
        push_results io h (token_run h.Method_spec.name tok);
        if h.Method_spec.forward_token then
          List.iter
            (fun out -> io.push out (Item.ctl tok))
            h.Method_spec.outputs;
        Some
          {
            method_name = h.Method_spec.name;
            cycles = h.Method_spec.cycles;
          }
      end
    | None ->
      if not (space_ok io m.Method_spec.outputs 1) then None
      else begin
        List.iter (fun (input, _) -> ignore (io.pop input)) items;
        List.iter
          (fun out -> io.push out (Item.ctl tok))
          m.Method_spec.outputs;
        Some { method_name = forward_method_name; cycles = token_forward_cycles }
      end
  in
  let try_step io =
    let rec attempt = function
      | [] -> None
      | m :: rest -> (
        let inputs = Method_spec.trigger_inputs m in
        match fronts io inputs with
        | None -> attempt rest
        | Some items -> (
          if all_data items then
            match try_data_method io m items with
            | Some f -> Some f
            | None -> attempt rest
          else
            match matching_token items with
            | Some tok -> (
              match try_token io m items tok with
              | Some f -> Some f
              | None -> attempt rest)
            | None ->
              (* Mixed fronts: wait for the streams to re-align. *)
              attempt rest))
    in
    attempt data_methods
  in
  { try_step }
