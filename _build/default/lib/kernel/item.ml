type t = Data of Bp_image.Image.t | Ctl of Bp_token.Token.t

let data img = Data img
let ctl tok = Ctl tok
let is_data = function Data _ -> true | Ctl _ -> false
let is_ctl = function Ctl _ -> true | Data _ -> false

let words = function
  | Data img -> Bp_image.Image.width img * Bp_image.Image.height img
  | Ctl tok -> Bp_token.Token.words tok

let chunk_exn = function
  | Data img -> img
  | Ctl _ -> invalid_arg "Item.chunk_exn: control token"

let token_exn = function
  | Ctl tok -> tok
  | Data _ -> invalid_arg "Item.token_exn: data chunk"

let pp ppf = function
  | Data img -> Bp_image.Image.pp ppf img
  | Ctl tok -> Bp_token.Token.pp ppf tok
