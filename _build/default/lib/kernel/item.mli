(** Stream items.

    A channel carries a sequence of items: data chunks (one kernel
    iteration's window or output, a small image) interleaved with control
    tokens. Scan-line ordering is implicit in the sequence. *)

type t =
  | Data of Bp_image.Image.t
  | Ctl of Bp_token.Token.t

val data : Bp_image.Image.t -> t
val ctl : Bp_token.Token.t -> t

val is_data : t -> bool
val is_ctl : t -> bool

val words : t -> int
(** Transfer cost in words: the chunk area for data, 1 for a token. *)

val chunk_exn : t -> Bp_image.Image.t
(** The image of a [Data] item. Raises [Invalid_argument] on tokens. *)

val token_exn : t -> Bp_token.Token.t
(** The token of a [Ctl] item. Raises [Invalid_argument] on data. *)

val pp : Format.formatter -> t -> unit
