open Bp_util

type trigger = On_data of string list | On_token of string * Bp_token.Token.kind

type t = {
  name : string;
  trigger : trigger;
  outputs : string list;
  cycles : int;
  forward_token : bool;
}

let check_inputs name inputs =
  if inputs = [] then Err.invalidf "method %s: empty trigger input list" name;
  let sorted = List.sort_uniq String.compare inputs in
  if List.length sorted <> List.length inputs then
    Err.invalidf "method %s: duplicate trigger inputs" name

let on_data ?(cycles = 1) ~name ~inputs ~outputs () =
  check_inputs name inputs;
  if cycles < 0 then Err.invalidf "method %s: negative cycles" name;
  { name; trigger = On_data inputs; outputs; cycles; forward_token = true }

let on_token ?(cycles = 1) ?(forward_token = true) ~name ~input ~kind ~outputs
    () =
  if cycles < 0 then Err.invalidf "method %s: negative cycles" name;
  { name; trigger = On_token (input, kind); outputs; cycles; forward_token }

let trigger_inputs t =
  match t.trigger with On_data inputs -> inputs | On_token (i, _) -> [ i ]

let pp ppf t =
  let trig =
    match t.trigger with
    | On_data inputs -> "data(" ^ String.concat "," inputs ^ ")"
    | On_token (i, k) ->
      Format.asprintf "token(%s,%a)" i Bp_token.Token.pp_kind k
  in
  Format.fprintf ppf "%s <- %s -> [%s] (%d cyc)" t.name trig
    (String.concat "," t.outputs)
    t.cycles
