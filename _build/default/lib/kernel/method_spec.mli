(** Kernel methods.

    A kernel registers one or more methods (Section II-B). Each method is
    triggered either by data arriving on a set of inputs or by a specific
    control token on one input, names the outputs it may write, and declares
    the compute cycles one invocation costs. Methods of one kernel share the
    kernel's private state. *)

type trigger =
  | On_data of string list
      (** Fires when a full window of data is available on every listed
          input. The list must be non-empty and duplicate-free. *)
  | On_token of string * Bp_token.Token.kind
      (** Fires when the given token kind arrives on the given input (e.g.
          the histogram's [finishCount] on end-of-frame). *)

type t = {
  name : string;
  trigger : trigger;
  outputs : string list;  (** Outputs this method may write, in push order. *)
  cycles : int;  (** Compute cycles consumed per invocation. *)
  forward_token : bool;
      (** For [On_token] methods: whether the handled token is re-emitted on
          the method's outputs after the handler runs (default [true], so
          frame structure propagates downstream). Ignored for [On_data]. *)
}

val on_data :
  ?cycles:int -> name:string -> inputs:string list -> outputs:string list ->
  unit -> t
(** Data-triggered method; [cycles] defaults to 1. Fails with
    {!Bp_util.Err.Invalid_parameterization} on an empty or duplicated input
    list. *)

val on_token :
  ?cycles:int -> ?forward_token:bool -> name:string -> input:string ->
  kind:Bp_token.Token.kind -> outputs:string list -> unit -> t
(** Token-triggered method; [cycles] defaults to 1. *)

val trigger_inputs : t -> string list
(** The inputs participating in the trigger. *)

val pp : Format.formatter -> t -> unit
