open Bp_util
open Bp_geometry

type t = { name : string; window : Window.t; replicated : bool }

let input ?(replicated = false) name window = { name; window; replicated }
let output name window = { name; window; replicated = false }
let buffer_words t = 2 * Size.area t.window.Window.size

let find ports name =
  match List.find_opt (fun p -> String.equal p.name name) ports with
  | Some p -> p
  | None -> Err.graphf "no port named %S" name

let pp ppf t =
  Format.fprintf ppf "%s %a%s" t.name Window.pp t.window
    (if t.replicated then " (replicated)" else "")
