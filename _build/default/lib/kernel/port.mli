(** Kernel ports.

    A port is one named input or output of a kernel, carrying the full
    block-parallel parameterization: a window (size, step, offset) and, for
    inputs, whether the stream should be replicated rather than distributed
    when the kernel is parallelized (Section II-A). *)

type t = {
  name : string;
  window : Bp_geometry.Window.t;
  replicated : bool;
      (** Inputs only: under parallelization the data is copied to every
          instance instead of being split (dashed edges in the paper's
          figures). Always [false] on outputs. *)
}

val input : ?replicated:bool -> string -> Bp_geometry.Window.t -> t
(** [input name window] declares an input port. *)

val output : string -> Bp_geometry.Window.t -> t
(** [output name window] declares an output port. *)

val buffer_words : t -> int
(** Implicit buffering contributed by the port: space for one iteration,
    double-buffered ([2 × window area]), per Figure 5 of the paper. *)

val find : t list -> string -> t
(** [find ports name] looks a port up by name. Fails with
    {!Bp_util.Err.Graph_malformed} when absent. *)

val pp : Format.formatter -> t -> unit
