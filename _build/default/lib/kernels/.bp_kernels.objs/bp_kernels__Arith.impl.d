lib/kernels/arith.ml: Behaviour Bp_geometry Bp_image Bp_kernel Costs Float Fun List Method_spec Port Printf Spec Window
