lib/kernels/arith.mli: Bp_kernel
