lib/kernels/bayer.ml: Behaviour Bp_geometry Bp_image Bp_kernel Bp_util Costs List Method_spec Port Size Spec Window
