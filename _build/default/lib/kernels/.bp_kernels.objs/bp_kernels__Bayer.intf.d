lib/kernels/bayer.mli: Bp_geometry Bp_kernel
