lib/kernels/buffer.ml: Array Behaviour Bp_geometry Bp_image Bp_kernel Bp_token Bp_util Costs Format Item Option Port Size Spec Step Window
