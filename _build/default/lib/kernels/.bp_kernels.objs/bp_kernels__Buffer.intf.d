lib/kernels/buffer.mli: Bp_geometry Bp_kernel
