lib/kernels/conv.ml: Behaviour Bp_geometry Bp_image Bp_kernel Bp_util Costs List Method_spec Offset Option Port Printf Size Spec Step Window
