lib/kernels/conv.mli: Bp_geometry Bp_kernel
