lib/kernels/costs.ml:
