lib/kernels/costs.mli:
