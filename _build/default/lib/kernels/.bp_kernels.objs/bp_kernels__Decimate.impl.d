lib/kernels/decimate.ml: Behaviour Bp_geometry Bp_kernel Bp_util List Method_spec Port Printf Size Spec Step Window
