lib/kernels/decimate.mli: Bp_kernel
