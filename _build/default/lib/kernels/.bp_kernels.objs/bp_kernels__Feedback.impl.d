lib/kernels/feedback.ml: Behaviour Bp_geometry Bp_image Bp_kernel Bp_util Item List Method_spec Port Size Spec Window
