lib/kernels/feedback.mli: Bp_geometry Bp_image Bp_kernel
