lib/kernels/histogram.ml: Array Behaviour Bp_geometry Bp_image Bp_kernel Bp_token Bp_util Costs List Method_spec Option Port Size Spec Step Window
