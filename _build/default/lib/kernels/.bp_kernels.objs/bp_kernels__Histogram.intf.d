lib/kernels/histogram.mli: Bp_image Bp_kernel
