lib/kernels/inset_pad.ml: Behaviour Bp_geometry Bp_image Bp_kernel Bp_token Bp_util Costs Item Option Port Printf Size Spec Window
