lib/kernels/inset_pad.mli: Bp_geometry Bp_kernel
