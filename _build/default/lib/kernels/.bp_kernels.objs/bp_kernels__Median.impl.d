lib/kernels/median.ml: Behaviour Bp_geometry Bp_image Bp_kernel Costs List Method_spec Option Port Printf Spec Window
