lib/kernels/median.mli: Bp_kernel
