lib/kernels/sink.ml: Behaviour Bp_image Bp_kernel Bp_token Item List Port Spec
