lib/kernels/sink.mli: Bp_geometry Bp_image Bp_kernel Bp_token
