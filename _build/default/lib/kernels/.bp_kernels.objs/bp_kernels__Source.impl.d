lib/kernels/source.ml: Behaviour Bp_geometry Bp_image Bp_kernel Bp_token Bp_util Item List Port Size Spec Step Window
