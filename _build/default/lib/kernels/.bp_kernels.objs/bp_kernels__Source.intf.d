lib/kernels/source.mli: Bp_geometry Bp_image Bp_kernel
