lib/kernels/split_join.ml: Array Behaviour Bp_geometry Bp_kernel Bp_token Bp_util Costs Item List Option Port Printf Size Spec Step Window
