lib/kernels/split_join.mli: Bp_geometry Bp_kernel
