lib/kernels/upsample.ml: Behaviour Bp_geometry Bp_image Bp_kernel Bp_util List Method_spec Port Printf Size Spec Window
