lib/kernels/upsample.mli: Bp_image Bp_kernel
