(** Elementwise arithmetic kernels. *)

val subtract : unit -> Bp_kernel.Spec.t
(** Two inputs [in0], [in1] (1×1 each), one output [out] with the per-pixel
    difference [in0 - in1]. The method triggers on data on both inputs, so
    control tokens must arrive matched on both (Section II-C). *)

val gain : float -> Bp_kernel.Spec.t
(** [gain k] scales its input stream by [k]: input [in], output [out]. *)

val add_const : float -> Bp_kernel.Spec.t
(** [add_const c] offsets its input stream by [c]. *)

val forward : ?class_name:string -> unit -> Bp_kernel.Spec.t
(** The identity kernel on a 1×1 stream — useful for pipelines and tests. *)

val absdiff : unit -> Bp_kernel.Spec.t
(** Like {!subtract} but produces the absolute difference. *)

val add2 : unit -> Bp_kernel.Spec.t
(** Two-input elementwise sum ([in0 + in1]). *)

val abs_val : unit -> Bp_kernel.Spec.t
(** Elementwise absolute value. *)
