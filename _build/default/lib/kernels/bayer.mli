(** Bayer demosaicing (benchmark 1 of Figure 13).

    A 3×3 sliding-window kernel over an RGGB mosaic producing three pixel
    outputs per iteration: the bilinearly interpolated red, green and blue
    values at the window center. The kernel must know its absolute position
    within the frame to select the per-site formula, so it is configured
    with the frame width and tracks its iteration index — an example of a
    multi-output kernel with position-dependent state. *)

val spec : ?cycles:int -> frame:Bp_geometry.Size.t -> unit -> Bp_kernel.Spec.t
(** [spec ~frame ()] builds the kernel for mosaics of extent [frame]
    (the iteration grid is [(frame.w-2)]×[(frame.h-2)]). Ports: input
    ["in"] (3×3 window), outputs ["r"], ["g"], ["b"]. *)
