(** The parameterized buffer kernel (Section III-B).

    A buffer adapts chunk shapes between kernels: it accepts non-overlapping
    input blocks (usually single pixels) tiling a known frame in scan-line
    order, stores them in a two-dimensional circular row buffer, and emits
    the consumer's windows — including overlapped sliding windows and
    downsampling windows — in scan-line order.

    Storage follows the paper's sizing rule: double-buffer the larger of the
    input and output windows, i.e. [frame_width × 2·max(in_h, out_h)] words
    (the "[20x10]" labels of Figures 3-4). The implementation really is
    circular — reading a row that has been overwritten is a hard error — so
    the sizing rule is validated by execution, not assumed.

    Tokens: incoming EOL/EOF are consumed (EOF additionally resets the frame
    state); the buffer emits its own end-of-frame after the last window of
    each frame, and optionally its own end-of-line after each window row
    ([emit_eol], default off — see DESIGN.md on token alignment). *)

type config = {
  in_block : Bp_geometry.Size.t;
      (** Input chunk extent; must tile [frame] exactly. *)
  out_window : Bp_geometry.Window.t;  (** Window the consumer needs. *)
  frame : Bp_geometry.Size.t;  (** Extent of one input frame. *)
  emit_eol : bool;
}

val config :
  ?emit_eol:bool ->
  ?in_block:Bp_geometry.Size.t ->
  out_window:Bp_geometry.Window.t ->
  frame:Bp_geometry.Size.t ->
  unit ->
  config
(** [in_block] defaults to 1×1. Fails with
    {!Bp_util.Err.Invalid_parameterization} when the block does not tile the
    frame or the window does not fit in the frame. *)

val storage : config -> Bp_geometry.Size.t
(** The allocated circular storage extent ([frame.w] ×
    [2·max(in_block.h, out_window.size.h)]). *)

val storage_words : config -> int

val iterations : config -> Bp_geometry.Size.t
(** Output windows per frame in X and Y (the consumer's iteration space). *)

val spec : ?class_name:string -> config -> Bp_kernel.Spec.t
(** Builds the kernel: input ["in"], output ["out"]. The class name defaults
    to the paper's label style,
    ["Buffer \[20x10\] (1x1)->(5x5)"]. *)
