(** The windowed convolution kernel (Figures 5 and 6 of the paper).

    Ports:
    - ["in"]: a [w]×[h] sliding window (unit step, centered offset);
    - ["coeff"]: a [w]×[h] block (step = size) of coefficients, marked
      replicated so parallel instances all receive the same filter;
    - ["out"]: one pixel per iteration.

    Methods:
    - [runConvolve] fires on data on ["in"] and multiply-accumulates the
      window against the (flipped) coefficients;
    - [loadCoeff] fires on data on ["coeff"] and replaces the private
      coefficient state, so filters can be swapped at run time. *)

val spec : ?cycles:int -> w:int -> h:int -> unit -> Bp_kernel.Spec.t
(** [spec ~w ~h ()] builds the kernel; [cycles] overrides the default
    {!Costs.convolve} cost for [runConvolve]. *)

val input_window : w:int -> h:int -> Bp_geometry.Window.t
(** The parameterization of the ["in"] port, exposed for tests. *)
