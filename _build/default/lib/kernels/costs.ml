let convolve ~w ~h = 10 + (3 * h * w)
let load_coeff ~w ~h = 10 + (2 * h * w)

let median ~w ~h =
  let n = w * h in
  let log2 = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
  15 * n * max 1 log2 / 4

let subtract = 4
let histogram_count ~bins = (bins / 2) + 5
let histogram_finish ~bins = (3 * bins) + 3
let merge_accumulate ~bins = 2 * bins
let merge_emit ~bins = (2 * bins) + 3
let buffer_store = 4
let split = 3
let inset = 2
let pad = 2
let bayer = 24
let gain = 3
