(** Default cycle-cost models of the standard kernels.

    The paper specifies per-method resource requirements explicitly in each
    kernel's [configureKernel] (e.g. [10 + 3*h*w] for a convolution). These
    functions centralize those formulas so kernels, analyses and tests agree
    on them; every kernel constructor also accepts an override. *)

val convolve : w:int -> h:int -> int
(** [10 + 3*h*w], as in the paper's Figure 6. *)

val load_coeff : w:int -> h:int -> int
(** [10 + 2*h*w], as in the paper's Figure 6. *)

val median : w:int -> h:int -> int
(** A sorting-network estimate: roughly [15 * n * log2 n] for [n = w*h]. *)

val subtract : int
(** Per-pixel difference. *)

val histogram_count : bins:int -> int
(** [bins/2 + 5] — the paper's average linear bin search. *)

val histogram_finish : bins:int -> int
(** [3*bins + 3], as in the paper's Figure 7. *)

val merge_accumulate : bins:int -> int
val merge_emit : bins:int -> int

val buffer_store : int
(** Per-input-chunk bookkeeping in a buffer kernel. *)

val split : int
(** Per-item routing decision in a split/join FSM. *)

val inset : int
(** Per-chunk keep/drop decision. *)

val pad : int
(** Per-emitted-chunk cost of a padding kernel. *)

val bayer : int
(** Per-site demosaic interpolation. *)

val gain : int
