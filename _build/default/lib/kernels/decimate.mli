(** Decimation: keep one pixel in [fx × fy].

    Declared as a 1×1 window with step [fx,fy] — the model's
    step-larger-than-window downsampling case. The compiler's buffering
    pass realizes the stride with a downsampling buffer; the kernel itself
    just forwards the selected pixels. *)

val spec : ?cycles:int -> fx:int -> fy:int -> unit -> Bp_kernel.Spec.t
(** Ports: ["in"] (1×1, step [fx,fy]), ["out"] (1×1). Fails with
    {!Bp_util.Err.Invalid_parameterization} unless both factors are
    positive. *)
