(** Feedback-loop kernels (the Section III-D extension).

    The paper sketches feedback support as two modifications: break loops
    with special initialization kernels that provide the loop's initial
    values, and traverse the graph with a work-list analysis. The analysis
    half lives in [Bp_analysis.Dataflow]; this module provides the kernels.

    [init] emits its initial chunks once at start-up and from then on
    forwards every data chunk; incoming tokens are consumed (not
    recirculated — frame structure enters a loop from the forward path).
    Graph nodes using it must carry [Graph.Feedback_init_meta] declaring
    the loop stream's extent and rate so the dataflow can seed the cycle.

    [loop_combine] is a two-input elementwise kernel for closing loops:
    ["in0"] is the forward input (tokens forwarded from it alone), ["in1"]
    the feedback input, which carries no tokens. This sidesteps the
    matched-token rule that would deadlock on a cycle. *)

val init :
  ?class_name:string ->
  window:Bp_geometry.Window.t ->
  initial:Bp_image.Image.t list ->
  unit ->
  Bp_kernel.Spec.t
(** All [initial] chunks must have the window's extent. *)

val loop_combine :
  ?class_name:string ->
  ?cycles:int ->
  (float -> float -> float) ->
  Bp_kernel.Spec.t
(** [loop_combine f]: output pixel = [f forward feedback]. *)
