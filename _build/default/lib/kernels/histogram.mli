(** The histogram kernel and its serial merge partner (Figures 1 and 7).

    The histogram is the paper's showcase for multiple methods and control
    tokens: [count] fires per data pixel, [finishCount] fires on the
    end-of-frame token, emits the accumulated bin counts on ["out"], resets,
    and forwards the token; [configureBins] fires when bin lower bounds
    arrive on the replicated ["bins"] input.

    Because partial histograms from parallel instances must be reduced
    serially once per frame, the [merge] kernel accumulates partials and
    emits the final histogram on the end-of-frame token. Its parallelism is
    limited with a data-dependency edge from the application input (Figure
    1(b)); it is also marked non-data-parallel so the compiler can never
    replicate it even without the edge. *)

val bin_lower_bounds : bins:int -> lo:float -> hi:float -> Bp_image.Image.t
(** The 1×[bins] image of uniform bin lower bounds, suitable as the chunk of
    the "Hist Bins" constant source. *)

val spec : ?count_cycles:int -> bins:int -> unit -> Bp_kernel.Spec.t
(** The histogram kernel. Bin ranges arrive via the ["bins"] input; until
    configured, all pixels land in bin 0 (tests always configure first).
    Output chunks are 1×[bins] rows of counts. *)

val merge : bins:int -> unit -> Bp_kernel.Spec.t
(** The serial reduction kernel: input ["in"] receives partial histograms,
    output ["out"] emits the per-frame total on end-of-frame. *)

val reference :
  Bp_image.Image.t -> bins:int -> lo:float -> hi:float -> Bp_image.Image.t
(** The golden whole-frame histogram using exactly the kernel's linear
    [findBin] over {!bin_lower_bounds}, as a 1×[bins] image — bit-identical
    to what a simulated histogram+merge pipeline produces. *)
