(** Alignment repair kernels (Section III-C, Figure 8).

    [inset] trims an iteration grid: it consumes a stream of chunks laid out
    as a [grid.w]×[grid.h] scan-line grid and forwards only the chunks
    outside the trimmed margins, re-emitting its own end-of-frame. This is
    the "inverted house" kernel of Figure 3.

    [pad] grows a pixel stream: it re-emits its input frame surrounded by
    margins of a constant value (zero padding — the paper's alternative to
    trimming; mirror padding exists as a reference image operation). It
    consumes incoming EOL/EOF and emits its own tokens for the padded
    geometry. *)

val inset :
  ?class_name:string ->
  ?chunk:Bp_geometry.Window.t ->
  grid:Bp_geometry.Size.t ->
  left:int -> right:int -> top:int -> bottom:int ->
  unit ->
  Bp_kernel.Spec.t
(** [inset ~grid ~left ~right ~top ~bottom ()] drops the given margins of
    the chunk grid. [chunk] is the shape of each stream chunk (default 1×1
    pixels). Fails with {!Bp_util.Err.Invalid_parameterization} when the
    margins consume the whole grid or are negative. *)

val pad :
  ?class_name:string ->
  ?value:float ->
  frame:Bp_geometry.Size.t ->
  left:int -> right:int -> top:int -> bottom:int ->
  unit ->
  Bp_kernel.Spec.t
(** [pad ~frame ~left ~right ~top ~bottom ()] surrounds each incoming
    [frame]-sized pixel stream with margins of [value] (default 0),
    producing a [(frame.w+left+right)]×[(frame.h+top+bottom)] stream. *)
