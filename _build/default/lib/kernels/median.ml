open Bp_kernel
open Bp_geometry

let spec ?cycles ~w ~h () =
  let cycles = Option.value cycles ~default:(Costs.median ~w ~h) in
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"runMedian" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let run _m inputs =
    [ ("out", Bp_image.Ops.median (List.assoc "in" inputs) ~w ~h) ]
  in
  Spec.v
    ~class_name:(Printf.sprintf "%dx%d Median" w h)
    ~inputs:[ Port.input "in" (Window.windowed w h) ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods
    ~make_behaviour:(fun () -> Behaviour.iteration_kernel ~methods ~run ())
    ()
