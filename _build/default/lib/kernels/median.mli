(** The windowed median filter. One [w]×[h] sliding-window input ["in"]
    (unit step, centered offset), one pixel output ["out"]. *)

val spec : ?cycles:int -> w:int -> h:int -> unit -> Bp_kernel.Spec.t
