(** Application outputs.

    A sink drains its input stream and records everything it received into a
    collector the test or application code holds on to, which is how
    functional results leave the simulation. Frame-completion *times* are
    recorded by the simulator itself (see [Bp_sim]); the collector records
    content and order. *)

type collector
(** Accumulates what one sink received. A collector is reset each time a
    fresh behaviour is instantiated (i.e. at the start of each simulation
    run). *)

val collector : unit -> collector
(** A fresh, empty collector. *)

val reset : collector -> unit

val chunks : collector -> Bp_image.Image.t list
(** All data chunks in arrival order. *)

val tokens : collector -> Bp_token.Token.t list
(** All control tokens in arrival order. *)

val chunks_between_frames : collector -> Bp_image.Image.t list list
(** The recorded chunks grouped by frame: the end-of-frame tokens the sink
    received act as separators. A trailing group of chunks after the last
    EOF is included only when non-empty. *)

val eof_count : collector -> int
(** Number of end-of-frame tokens received. *)

val spec :
  ?class_name:string ->
  window:Bp_geometry.Window.t ->
  collector ->
  unit ->
  Bp_kernel.Spec.t
(** [spec ~window c ()] is a sink whose ["in"] port expects [window]-shaped
    chunks. Each fresh behaviour instance resets [c] before recording. *)
