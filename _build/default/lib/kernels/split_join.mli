(** Compiler-inserted distribution and collection FSM kernels (Section IV).

    [split] distributes the chunks of a stream round-robin over [ways]
    parallel instances and replicates every control token to all of them.
    [join] re-serializes: it takes [pattern.(b)] chunks from branch [b]
    before moving to the next branch (round-robin is the all-ones pattern;
    column-split buffers use the windows-per-row-per-stripe pattern), and
    merges the token copies — a token is consumed once it is at the front of
    every branch, and forwarded once. Both reset their FSM state on
    end-of-frame, so per-frame chunk counts need not divide [ways] evenly.

    [column_split] is the specialized distributor for parallelized buffers
    (Figure 10): it routes each pixel of a scan-line stream by column to the
    stripe(s) whose range contains it, duplicating pixels in overlap
    regions, and replicates tokens to all stripes.

    [replicate] copies a configuration stream to every consumer of its
    single output (replicated inputs are fanned out, not distributed). *)

val split :
  ?class_name:string ->
  ?pattern:int array ->
  window:Bp_geometry.Window.t ->
  ways:int ->
  unit ->
  Bp_kernel.Spec.t
(** Input ["in"], outputs ["out0"] .. ["out<ways-1>"]. [pattern] (default
    all-ones = round-robin) sends runs of [pattern.(b)] consecutive chunks
    to branch [b] — the distribution that preserves intra-branch window
    reuse in the Figure 9 ablation. The FSM resets on end-of-frame. *)

val join :
  ?class_name:string ->
  ?pattern:int array ->
  window:Bp_geometry.Window.t ->
  ways:int ->
  unit ->
  Bp_kernel.Spec.t
(** Inputs ["in0"] .. ["in<ways-1>"], output ["out"]. [pattern] defaults to
    all-ones (round-robin); it must have length [ways] and positive
    entries. *)

val column_split :
  ?class_name:string ->
  ranges:(int * int) array ->
  frame:Bp_geometry.Size.t ->
  unit ->
  Bp_kernel.Spec.t
(** [ranges.(k) = (c0, c1)] sends columns [c0 <= c < c1] to ["out<k>"].
    Ranges must cover [0, frame.w) in order and may overlap (the shared
    columns of Figure 10). Fails with
    {!Bp_util.Err.Invalid_parameterization} otherwise. *)

val replicate :
  ?class_name:string -> window:Bp_geometry.Window.t -> unit ->
  Bp_kernel.Spec.t
(** Input ["in"], output ["out"]; the output is intended to fan out. *)

val stripe_ranges :
  frame_w:int -> window:Bp_geometry.Window.t -> parts:int -> (int * int) array
(** Divide a frame into [parts] column stripes for buffer splitting: output
    window origins are divided evenly; each stripe's input range is widened
    by the window halo so neighbouring stripes share [size.w - step.sx]
    overlap columns. Fails when the frame is too narrow to split that
    far. *)

val stripe_windows_per_row :
  frame_w:int -> window:Bp_geometry.Window.t -> ranges:(int * int) array ->
  int array
(** The join [pattern] matching {!stripe_ranges}: how many output windows
    per frame row each stripe produces. *)
