(** Upsampling: each input pixel becomes an [fx × fy] output block.

    The inverse of {!Decimate}: the output port is an [fx×fy] block per
    iteration, so the logical extent *grows* — exercising the
    tiling-output branch of the dataflow's extent rule. Two modes:
    replicate the pixel across the block (sample-and-hold) or place it at
    the block origin with zero fill (zero-stuffing, the classic DSP
    expander). *)

type mode = Hold | Zero_stuff

val spec :
  ?cycles:int -> ?mode:mode -> fx:int -> fy:int -> unit -> Bp_kernel.Spec.t
(** Ports: ["in"] (1×1), ["out"] ([fx]×[fy] block). Default mode
    [Hold]. *)

val reference :
  mode:mode -> fx:int -> fy:int -> Bp_image.Image.t -> Bp_image.Image.t
(** Whole-frame golden upsampling. *)
