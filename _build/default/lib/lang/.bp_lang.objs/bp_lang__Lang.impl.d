lib/lang/lang.ml: Bp_geometry Bp_graph Bp_image Bp_kernels Bp_util Float Format Fun List Option Rate Size String Window
