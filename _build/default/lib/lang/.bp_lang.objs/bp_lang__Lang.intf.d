lib/lang/lang.mli: Bp_geometry Bp_graph Bp_kernels
