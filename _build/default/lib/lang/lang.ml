open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module K = Bp_kernels
module Err = Bp_util.Err

type program = {
  graph : Graph.t;
  inputs : (string * Graph.node_id) list;
  outputs : (string * K.Sink.collector) list;
  n_frames : int;
  rate : Rate.t option;
}

let kernel_kinds =
  [
    "conv"; "median"; "subtract"; "absdiff"; "forward"; "gain"; "add";
    "histogram"; "merge"; "bayer"; "decimate"; "upsample"; "add2"; "fir";
    "delay"; "changedetect";
  ]

(* ---- lexing helpers ---------------------------------------------------- *)

let failf line fmt =
  Format.kasprintf (fun s -> Err.unsupportedf "line %d: %s" line s) fmt

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

(* Split tokens into positional arguments and key=value options. *)
let split_args toks =
  List.partition_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        Right
          ( String.sub tok 0 i,
            String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> Left tok)
    toks

let opt_value opts key = List.assoc_opt key opts

let parse_int ln what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failf ln "%s: expected an integer, got %S" what s

let parse_float ln what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failf ln "%s: expected a number, got %S" what s

let parse_size ln what s =
  match String.split_on_char 'x' s with
  | [ w; h ] -> Size.v (parse_int ln what w) (parse_int ln what h)
  | _ -> failf ln "%s: expected WxH, got %S" what s

let required ln opts key what =
  match opt_value opts key with
  | Some v -> v
  | None -> failf ln "missing %s=... (%s)" key what

(* ---- statement handling ------------------------------------------------ *)

type state = {
  g : Graph.t;
  mutable names : (string * Graph.node_id) list;
  mutable ins : (string * Graph.node_id) list;
  mutable outs : (string * K.Sink.collector) list;
  mutable frames_streamed : int option;
  mutable first_rate : Rate.t option;
}

let lookup st ln name =
  match List.assoc_opt name st.names with
  | Some id -> id
  | None -> failf ln "unknown node %S" name

let check_fresh st ln name =
  if List.mem_assoc name st.names then failf ln "duplicate name %S" name

let define st ln name id =
  check_fresh st ln name;
  st.names <- (name, id) :: st.names

let stmt_input st ln name flags opts =
  check_fresh st ln name;
  let frame = parse_size ln "frame" (required ln opts "frame" "input frame") in
  let rate = Rate.hz (parse_float ln "rate" (required ln opts "rate" "input rate")) in
  let n_frames =
    match opt_value opts "frames" with
    | Some v -> parse_int ln "frames" v
    | None -> 3
  in
  let seed =
    match opt_value opts "seed" with Some v -> parse_int ln "seed" v | None -> 1
  in
  (match List.filter (fun f -> f <> "noeol") flags with
  | [] -> ()
  | f :: _ -> failf ln "unexpected token %S" f);
  let emit_eol = not (List.mem "noeol" flags) in
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let id =
    Graph.add st.g ~name
      ~meta:(Graph.Source_meta { frame; rate })
      (K.Source.spec ~emit_eol ~class_name:name ~frame ~frames ())
  in
  define st ln name id;
  st.ins <- st.ins @ [ (name, id) ];
  if st.frames_streamed = None then begin
    st.frames_streamed <- Some n_frames;
    st.first_rate <- Some rate
  end

let stmt_const st ln name opts =
  check_fresh st ln name;
  let chunk =
    match (opt_value opts "size", opt_value opts "bins") with
    | Some size, None -> (
      let s = parse_size ln "size" size in
      match (opt_value opts "value", opt_value opts "values") with
      | Some v, None -> Image.Gen.constant s (parse_float ln "value" v)
      | None, Some vs ->
        let parsed =
          List.map (parse_float ln "values") (String.split_on_char ',' vs)
        in
        if List.length parsed <> Size.area s then
          failf ln "values: expected %d numbers, got %d" (Size.area s)
            (List.length parsed);
        Image.of_scanline_list s parsed
      | _ -> failf ln "const needs exactly one of value=V or values=v1,v2,...")
    | None, Some bins ->
      let bins = parse_int ln "bins" bins in
      let lo = parse_float ln "lo" (required ln opts "lo" "bin range") in
      let hi = parse_float ln "hi" (required ln opts "hi" "bin range") in
      K.Histogram.bin_lower_bounds ~bins ~lo ~hi
    | _ -> failf ln "const needs either size=WxH value=V or bins=N lo=L hi=H"
  in
  let id = Graph.add st.g ~name (K.Source.const ~class_name:name ~chunk ()) in
  define st ln name id

let stmt_kernel st ln name kind args opts =
  check_fresh st ln name;
  let int_arg i what =
    match List.nth_opt args i with
    | Some v -> parse_int ln what v
    | None -> failf ln "kernel %s: missing argument %s" kind what
  in
  let float_arg i what =
    match List.nth_opt args i with
    | Some v -> parse_float ln what v
    | None -> failf ln "kernel %s: missing argument %s" kind what
  in
  let spec =
    match kind with
    | "conv" -> K.Conv.spec ~w:(int_arg 0 "width") ~h:(int_arg 1 "height") ()
    | "median" ->
      K.Median.spec ~w:(int_arg 0 "width") ~h:(int_arg 1 "height") ()
    | "subtract" -> K.Arith.subtract ()
    | "absdiff" -> K.Arith.absdiff ()
    | "forward" -> K.Arith.forward ()
    | "gain" -> K.Arith.gain (float_arg 0 "factor")
    | "add" -> K.Arith.add_const (float_arg 0 "offset")
    | "histogram" ->
      let bins = parse_int ln "bins" (required ln opts "bins" "histogram") in
      K.Histogram.spec ~bins ()
    | "merge" ->
      let bins = parse_int ln "bins" (required ln opts "bins" "merge") in
      K.Histogram.merge ~bins ()
    | "bayer" ->
      let frame = parse_size ln "frame" (required ln opts "frame" "bayer") in
      K.Bayer.spec ~frame ()
    | "decimate" ->
      K.Decimate.spec ~fx:(int_arg 0 "fx") ~fy:(int_arg 1 "fy") ()
    | "upsample" ->
      K.Upsample.spec ~fx:(int_arg 0 "fx") ~fy:(int_arg 1 "fy") ()
    | "add2" -> K.Arith.add2 ()
    | "fir" ->
      (* A 1-D FIR is a 1-row convolution; taps arrive on its coeff port. *)
      K.Conv.spec ~w:(int_arg 0 "taps") ~h:1 ()
    | "delay" ->
      (* A one-frame delay line: an initial frame of zeros, then
         passthrough. Its input channel must be deep enough to hold a
         frame (use cap= on the connection). *)
      let frame = parse_size ln "frame" (required ln opts "frame" "delay") in
      K.Feedback.init ~class_name:name ~window:Bp_geometry.Window.pixel
        ~initial:
          (List.init (Size.area frame) (fun _ ->
               Image.Gen.constant Size.one 0.))
        ()
    | "changedetect" ->
      (* |in0 - in1| with a token-free in1 — pair it with a delay. *)
      K.Feedback.loop_combine ~class_name:name (fun a b ->
          Float.abs (a -. b))
    | other ->
      failf ln "unknown kernel kind %S (expected one of %s)" other
        (String.concat ", " kernel_kinds)
  in
  define st ln name (Graph.add st.g ~name spec)

let stmt_output st ln name opts =
  check_fresh st ln name;
  let window =
    match opt_value opts "window" with
    | Some s ->
      let size = parse_size ln "window" s in
      Window.block size.Size.w size.Size.h
    | None -> Window.pixel
  in
  let collector = K.Sink.collector () in
  let id =
    Graph.add st.g ~name (K.Sink.spec ~class_name:name ~window collector ())
  in
  define st ln name id;
  st.outs <- st.outs @ [ (name, collector) ]

let parse_endpoint st ln s =
  match String.split_on_char '.' s with
  | [ node; port ] -> (lookup st ln node, port)
  | _ -> failf ln "expected NODE.PORT, got %S" s

let stmt_connect st ln src dst opts =
  let from = parse_endpoint st ln src in
  let into = parse_endpoint st ln dst in
  let capacity =
    match opt_value opts "cap" with
    | Some v -> Some (parse_int ln "cap" v)
    | None -> None
  in
  match Err.guard (fun () -> Graph.connect st.g ?capacity ~from ~into) with
  | Ok () -> ()
  | Error e -> failf ln "%s" (Err.to_string e)

let stmt_dep st ln src dst =
  Graph.add_dep st.g ~src:(lookup st ln src) ~dst:(lookup st ln dst)

let parse source =
  let st =
    {
      g = Graph.create ();
      names = [];
      ins = [];
      outs = [];
      frames_streamed = None;
      first_rate = None;
    }
  in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      match tokens (strip_comment raw) with
      | [] -> ()
      | toks -> (
        let args, opts = split_args toks in
        match args with
        | "input" :: name :: flags -> stmt_input st ln name flags opts
        | "const" :: name :: rest when rest = [] -> stmt_const st ln name opts
        | "kernel" :: name :: kind :: kargs ->
          stmt_kernel st ln name kind kargs opts
        | "output" :: name :: rest when rest = [] ->
          stmt_output st ln name opts
        | [ "dep"; src; "->"; dst ] -> stmt_dep st ln src dst
        | [ src; "->"; dst ] -> stmt_connect st ln src dst opts
        | first :: _ -> failf ln "cannot parse statement starting with %S" first
        | [] -> ()))
    lines;
  if st.ins = [] then Err.unsupportedf "program has no input";
  if st.outs = [] then Err.unsupportedf "program has no output";
  (match Err.guard (fun () -> Graph.validate st.g) with
  | Ok () -> ()
  | Error e -> Err.unsupportedf "invalid program: %s" (Err.to_string e));
  {
    graph = st.g;
    inputs = st.ins;
    outputs = st.outs;
    n_frames = Option.value st.frames_streamed ~default:0;
    rate = st.first_rate;
  }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse (really_input_string ic len))
