(** A textual application description.

    The paper embeds kernel definitions in Java; this module provides the
    equivalent stand-alone surface syntax for wiring the standard kernel
    library into an application graph, so programs can be written as plain
    text files and driven through [bpc]. One statement per line; [#] starts
    a comment. Statements:

    {v
    input  NAME frame=WxH rate=HZ [frames=N] [seed=K] [noeol]
    const  NAME size=WxH value=V
    const  NAME size=WxH values=v1,v2,...   # scan-line order
    const  NAME bins=N lo=L hi=H
    kernel NAME KIND [ARGS] [key=value ...]
    output NAME [window=WxH]
    SRC.PORT -> DST.PORT [cap=N]
    dep SRC -> DST
    v}

    Kernel kinds and their arguments:
    - [conv W H] — windowed convolution (coefficients via a [const] wired
      to its [coeff] port);
    - [median W H];
    - [subtract], [absdiff], [forward];
    - [gain K], [add K];
    - [histogram bins=N lo=L hi=H] (bin bounds via its [bins] port);
    - [merge bins=N];
    - [bayer frame=WxH];
    - [decimate FX FY], [upsample FX FY];
    - [add2] — two-input elementwise sum;
    - [fir N] — 1-D FIR over a row stream (taps via its [taps] port);
    - [delay frame=WxH] — a one-frame delay line (give its input channel a
      frame of capacity with [cap=]);
    - [changedetect] — |in0 − in1| where in1 carries no tokens (pair with
      [delay]).

    Everything the compiler inserts (buffers, splits, joins, insets) is
    absent from the syntax by design. *)

type program = {
  graph : Bp_graph.Graph.t;
  inputs : (string * Bp_graph.Graph.node_id) list;
  outputs : (string * Bp_kernels.Sink.collector) list;
  n_frames : int;  (** Frames streamed by the first input. *)
  rate : Bp_geometry.Rate.t option;  (** Rate of the first input. *)
}

val parse : string -> program
(** [parse source] builds the application graph. Fails with
    {!Bp_util.Err.Unsupported} carrying a [line N:] prefix on any syntax or
    semantic error. *)

val parse_file : string -> program
(** [parse_file path] reads and parses a [.bp] file. *)

val kernel_kinds : string list
(** The kinds accepted after [kernel], for help text. *)
