lib/machine/machine.ml: Bp_util Err Format String
