open Bp_util

type pe = {
  freq_hz : float;
  mem_words : int;
  read_cycles_per_word : float;
  write_cycles_per_word : float;
  switch_cycles : float;
}

type t = {
  pe : pe;
  max_pes : int;
  target_utilization : float;
  multiplex_headroom : float;
}

let pe_v ?(switch_cycles = 0.) ~freq_hz ~mem_words ~read_cycles_per_word
    ~write_cycles_per_word () =
  if freq_hz <= 0. then Err.invalidf "PE frequency must be positive";
  if mem_words <= 0 then Err.invalidf "PE memory must be positive";
  if read_cycles_per_word < 0. || write_cycles_per_word < 0. then
    Err.invalidf "PE I/O costs must be non-negative";
  if switch_cycles < 0. then Err.invalidf "switch cost must be non-negative";
  {
    freq_hz;
    mem_words;
    read_cycles_per_word;
    write_cycles_per_word;
    switch_cycles;
  }

let v ?(max_pes = 64) ?(target_utilization = 0.9)
    ?(multiplex_headroom = 0.8) pe =
  if max_pes <= 0 then Err.invalidf "machine must have at least one PE";
  if target_utilization <= 0. || target_utilization > 1. then
    Err.invalidf "target utilization must be in (0,1]";
  if multiplex_headroom <= 0. || multiplex_headroom > 1. then
    Err.invalidf "multiplex headroom must be in (0,1]";
  { pe; max_pes; target_utilization; multiplex_headroom }

let cycle_time_s pe = 1. /. pe.freq_hz

let read_time_s pe ~words =
  float_of_int words *. pe.read_cycles_per_word /. pe.freq_hz

let write_time_s pe ~words =
  float_of_int words *. pe.write_cycles_per_word /. pe.freq_hz

let usable_cycles_per_s t = t.pe.freq_hz *. t.target_utilization

let default =
  v
    (pe_v ~freq_hz:1e6 ~mem_words:4096 ~read_cycles_per_word:0.15
       ~write_cycles_per_word:0.15 ())

let small_memory =
  v
    (pe_v ~freq_hz:1e6 ~mem_words:320 ~read_cycles_per_word:0.15
       ~write_cycles_per_word:0.15 ())

let fast_pe =
  v
    (pe_v ~freq_hz:4e6 ~mem_words:4096 ~read_cycles_per_word:0.15
       ~write_cycles_per_word:0.15 ())

let names = [ "default"; "small-memory"; "fast-pe" ]

let by_name = function
  | "default" -> default
  | "small-memory" -> small_memory
  | "fast-pe" -> fast_pe
  | other -> Err.unsupportedf "unknown machine %S (expected %s)" other
               (String.concat "/" names)

let pp ppf t =
  Format.fprintf ppf
    "machine: %d PEs @ %g Hz, %d words, r/w %.2f/%.2f cyc/word, target %g%%"
    t.max_pes t.pe.freq_hz t.pe.mem_words t.pe.read_cycles_per_word
    t.pe.write_cycles_per_word
    (100. *. t.target_utilization)
