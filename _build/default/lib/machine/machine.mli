(** The target machine model.

    The compiler parallelizes against an abstract many-core: identical
    processing elements (PEs) with a clock rate, a local memory, and
    per-word costs for reading kernel inputs and writing outputs (the
    read/write components of Figure 13). The paper leaves the concrete chip
    abstract; all results are shapes over these parameters. *)

type pe = {
  freq_hz : float;  (** Compute cycles per second. *)
  mem_words : int;  (** Local storage per PE, in data words. *)
  read_cycles_per_word : float;
      (** Cycles spent moving one word from a channel into the kernel. *)
  write_cycles_per_word : float;
      (** Cycles spent moving one word from the kernel to a channel. *)
  switch_cycles : float;
      (** Context-switch cost charged when a time-multiplexed PE fires a
          different kernel than it fired last (0 on dedicated PEs and by
          default). *)
}

type t = {
  pe : pe;
  max_pes : int;  (** PEs available on the chip. *)
  target_utilization : float;
      (** Headroom factor in (0,1]: parallelization provisions kernels so
          each PE is loaded to at most this fraction, absorbing scheduling
          jitter. *)
  multiplex_headroom : float;
      (** Extra margin in (0,1] applied when time-multiplexing kernels onto
          one PE (Section V): merged kernels suffer each other's service
          latency, so the greedy mapper fills cores only to
          [target_utilization × multiplex_headroom]. *)
}

val v :
  ?max_pes:int -> ?target_utilization:float -> ?multiplex_headroom:float ->
  pe -> t
(** Validates ranges; fails with {!Bp_util.Err.Invalid_parameterization}. *)

val pe_v :
  ?switch_cycles:float ->
  freq_hz:float ->
  mem_words:int ->
  read_cycles_per_word:float ->
  write_cycles_per_word:float ->
  unit ->
  pe

val cycle_time_s : pe -> float
(** Seconds per compute cycle. *)

val read_time_s : pe -> words:int -> float
(** Seconds to read [words] from channels. *)

val write_time_s : pe -> words:int -> float
(** Seconds to write [words] to channels. *)

val usable_cycles_per_s : t -> float
(** [freq * target_utilization] — what parallelization budgets per PE. *)

(** Named configurations used by the experiments. *)

val default : t
(** A mid-size PE: 1 MHz, 4096 words, 0.15 cycles/word each way, 64 PEs,
    90% target utilization. Deliberately slow clocks keep the simulated
    workloads small while forcing realistic parallelization degrees. *)

val small_memory : t
(** Like {!default} but with only 320 words per PE — forces buffer
    splitting (Figure 10) on modest frames. *)

val fast_pe : t
(** A 4 MHz PE — kernels rarely need replication; exposes the multiplexing
    win (Section V). *)

val by_name : string -> t
(** ["default" | "small-memory" | "fast-pe"]; fails with
    {!Bp_util.Err.Unsupported} otherwise. *)

val names : string list

val pp : Format.formatter -> t -> unit
