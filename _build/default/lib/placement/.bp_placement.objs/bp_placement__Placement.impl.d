lib/placement/placement.ml: Array Bp_analysis Bp_graph Bp_sim Bp_util Format Hashtbl List Prng
