lib/placement/placement.mli: Bp_analysis Bp_sim Format
