open Bp_util
module Graph = Bp_graph.Graph
module Dataflow = Bp_analysis.Dataflow
module Stream = Bp_analysis.Stream
module Mapping = Bp_sim.Mapping

type placement = {
  mesh_side : int;
  tile_of : int -> int * int;
  cost : float;
}

type options = {
  seed : int;
  initial_temperature : float;
  cooling : float;
  sweeps : int;
  moves_per_sweep : int;
}

let default_options =
  {
    seed = 1;
    initial_temperature = 100.;
    cooling = 0.92;
    sweeps = 60;
    moves_per_sweep = 200;
  }

let mesh_side_for procs =
  let rec search side = if side * side >= procs then side else search (side + 1) in
  search 1

(* Words per frame crossing each processor pair, with off-chip traffic
   pinned to the virtual processor [-1] at tile (0,0). *)
let traffic an mapping =
  let g = Dataflow.graph an in
  List.filter_map
    (fun (c : Graph.channel) ->
      let s = Dataflow.stream_of an c.Graph.chan_id in
      if s.Stream.constant then None
      else
        let proc_of id =
          match Mapping.processor_of mapping id with
          | Some p -> p
          | None -> -1
        in
        let a = proc_of c.Graph.src.Graph.node
        and b = proc_of c.Graph.dst.Graph.node in
        if a = b then None else Some (a, b, Stream.words_per_frame s))
    (Graph.channels g)

let manhattan (x0, y0) (x1, y1) = abs (x0 - x1) + abs (y0 - y1)

let cost_of_tiles traffic tile_of =
  List.fold_left
    (fun acc (a, b, words) ->
      let ta = if a < 0 then (0, 0) else tile_of a in
      let tb = if b < 0 then (0, 0) else tile_of b in
      acc +. (words *. float_of_int (manhattan ta tb)))
    0. traffic

let communication_cost an mapping tile_of =
  cost_of_tiles (traffic an mapping) tile_of

let tiles_array procs side rng =
  (* Processors take the first [procs] tiles of a shuffled tile list, so
     random placements cover the mesh uniformly. *)
  let all =
    Array.init (side * side) (fun i -> (i mod side, i / side))
  in
  Prng.shuffle rng all;
  Array.sub all 0 procs

let random_placement ~seed an mapping =
  let procs = Mapping.processors mapping in
  let side = mesh_side_for procs in
  let rng = Prng.create seed in
  let tiles = tiles_array procs side rng in
  let tile_of p = tiles.(p) in
  {
    mesh_side = side;
    tile_of;
    cost = communication_cost an mapping tile_of;
  }

let place ?(options = default_options) an mapping =
  let procs = Mapping.processors mapping in
  let side = mesh_side_for procs in
  let rng = Prng.create options.seed in
  let tiles = tiles_array procs side rng in
  let tr = traffic an mapping in
  (* Pre-index traffic per processor for incremental cost evaluation. *)
  let touching = Array.make procs [] in
  List.iter
    (fun (a, b, w) ->
      if a >= 0 then touching.(a) <- (a, b, w) :: touching.(a);
      if b >= 0 && b <> a then touching.(b) <- (a, b, w) :: touching.(b))
    tr;
  let tile_of p = tiles.(p) in
  let local_cost p =
    List.fold_left
      (fun acc (a, b, w) ->
        let ta = if a < 0 then (0, 0) else tile_of a in
        let tb = if b < 0 then (0, 0) else tile_of b in
        acc +. (w *. float_of_int (manhattan ta tb)))
      0. touching.(p)
  in
  let cost = ref (cost_of_tiles tr tile_of) in
  let temp = ref options.initial_temperature in
  (* Candidate moves swap two processors' tiles (or move one processor to a
     free tile when the mesh is larger than the processor count). *)
  let free_tiles =
    let used = Hashtbl.create 16 in
    Array.iter (fun t -> Hashtbl.replace used t ()) tiles;
    let free = ref [] in
    for i = 0 to (side * side) - 1 do
      let t = (i mod side, i / side) in
      if not (Hashtbl.mem used t) then free := t :: !free
    done;
    Array.of_list !free
  in
  for _sweep = 1 to options.sweeps do
    for _move = 1 to options.moves_per_sweep do
      if procs >= 2 then begin
        let use_free =
          Array.length free_tiles > 0 && Prng.bool rng
        in
        if use_free then begin
          let p = Prng.int rng procs in
          let fi = Prng.int rng (Array.length free_tiles) in
          let before = local_cost p in
          let old = tiles.(p) in
          tiles.(p) <- free_tiles.(fi);
          let delta = local_cost p -. before in
          if delta <= 0. || Prng.float rng 1. < exp (-.delta /. !temp) then begin
            free_tiles.(fi) <- old;
            cost := !cost +. delta
          end
          else tiles.(p) <- old
        end
        else begin
          let p = Prng.int rng procs in
          let q = Prng.int rng procs in
          if p <> q then begin
            let before = local_cost p +. local_cost q in
            let tp = tiles.(p) and tq = tiles.(q) in
            tiles.(p) <- tq;
            tiles.(q) <- tp;
            let delta = local_cost p +. local_cost q -. before in
            if delta <= 0. || Prng.float rng 1. < exp (-.delta /. !temp) then
              cost := !cost +. delta
            else begin
              tiles.(p) <- tp;
              tiles.(q) <- tq
            end
          end
        end
      end
    done;
    temp := !temp *. options.cooling
  done;
  (* Recompute exactly to wash out float drift from incremental updates. *)
  let final = cost_of_tiles tr tile_of in
  { mesh_side = side; tile_of; cost = final }

let pp ppf t =
  Format.fprintf ppf "placement on %dx%d mesh, cost %.0f word-hops/frame"
    t.mesh_side t.mesh_side t.cost
