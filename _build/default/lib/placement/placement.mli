(** Simulated-annealing placement onto a 2-D mesh.

    The paper implements (but does not integrate) a simulated-annealing
    placer: throughput is insensitive to placement, which only affects
    first-output latency and communication energy (Section IV-D). This
    module reproduces that component: given a compiled graph and a
    kernel-to-processor mapping, it assigns processors to tiles of a square
    mesh network-on-chip, minimizing the total
    words-per-frame × Manhattan-distance communication cost.

    The placer is deterministic for a given seed. *)

type placement = {
  mesh_side : int;  (** The mesh is [mesh_side × mesh_side] tiles. *)
  tile_of : int -> int * int;
      (** Tile coordinates of each processor (off-chip endpoints are pinned
          to tile (0,0)'s edge and excluded from optimization). *)
  cost : float;  (** Total weighted Manhattan communication cost. *)
}

type options = {
  seed : int;
  initial_temperature : float;
  cooling : float;  (** Geometric cooling factor per sweep, in (0,1). *)
  sweeps : int;  (** Number of temperature steps. *)
  moves_per_sweep : int;
}

val default_options : options

val communication_cost :
  Bp_analysis.Dataflow.t -> Bp_sim.Mapping.t -> (int -> int * int) -> float
(** [communication_cost an mapping tile_of] is the words-per-frame-weighted
    Manhattan distance summed over all channels whose endpoints live on
    distinct processors. Channels to or from off-chip nodes cost the
    distance to tile (0,0). *)

val place :
  ?options:options ->
  Bp_analysis.Dataflow.t ->
  Bp_sim.Mapping.t ->
  placement
(** Anneal a placement for the mapping's processors. The mesh side is the
    smallest square that fits them. *)

val random_placement :
  seed:int -> Bp_analysis.Dataflow.t -> Bp_sim.Mapping.t -> placement
(** A uniformly random placement (the annealer's starting point), useful as
    a baseline in the ablation bench. *)

val pp : Format.formatter -> placement -> unit
