lib/report/report.mli: Bp_analysis Bp_apps Bp_geometry Format
