lib/sim/energy.ml: Array Bp_machine Format Sim
