lib/sim/energy.mli: Bp_machine Format Sim
