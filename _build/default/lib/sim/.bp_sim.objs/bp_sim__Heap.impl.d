lib/sim/heap.ml: Array Float
