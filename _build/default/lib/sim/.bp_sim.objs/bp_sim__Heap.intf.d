lib/sim/heap.mli:
