lib/sim/mapping.ml: Array Bp_graph Bp_kernel Bp_util Err Format Hashtbl List String
