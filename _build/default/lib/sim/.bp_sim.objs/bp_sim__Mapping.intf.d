lib/sim/mapping.mli: Bp_graph Format
