lib/sim/sim.ml: Array Bp_geometry Bp_graph Bp_kernel Bp_machine Bp_token Bp_util Err Float Format Hashtbl Heap List Mapping Queue Stats
