lib/sim/sim.mli: Bp_graph Bp_kernel Bp_machine Format Mapping
