lib/sim/trace.ml: Array Bp_graph Buffer Bytes Float Hashtbl List Option Printf
