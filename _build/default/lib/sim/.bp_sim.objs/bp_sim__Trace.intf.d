lib/sim/trace.mli: Bp_graph
