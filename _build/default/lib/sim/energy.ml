module Machine = Bp_machine.Machine

type model = {
  pj_per_cycle : float;
  pj_per_word : float;
  mw_static_per_pe : float;
  pj_per_word_hop : float;
}

let default_model =
  {
    pj_per_cycle = 10.;
    pj_per_word = 5.;
    mw_static_per_pe = 0.5;
    pj_per_word_hop = 2.;
  }

type breakdown = {
  compute_uj : float;
  channel_uj : float;
  static_uj : float;
  network_uj : float;
  total_uj : float;
  pes : int;
  duration_s : float;
}

let of_result ?(model = default_model)
    ?(placement_cost_word_hops_per_frame = 0.) ?(frames = 0) ~machine
    (r : Sim.result) =
  let pe = machine.Machine.pe in
  let freq = pe.Machine.freq_hz in
  let pj_to_uj v = v *. 1e-6 in
  let cycles =
    Array.fold_left (fun acc p -> acc +. (p.Sim.run_s *. freq)) 0. r.Sim.procs
  in
  (* Words moved are recovered from the time spent moving them; when a
     direction is free (cost 0 cycles/word) its words are untracked and
     excluded — the estimate is then a lower bound. *)
  let words_of time_s cost_cycles_per_word =
    if cost_cycles_per_word <= 0. then 0.
    else time_s *. freq /. cost_cycles_per_word
  in
  let words =
    Array.fold_left
      (fun acc p ->
        acc
        +. words_of p.Sim.read_s pe.Machine.read_cycles_per_word
        +. words_of p.Sim.write_s pe.Machine.write_cycles_per_word)
      0. r.Sim.procs
  in
  let pes = Array.length r.Sim.procs in
  let compute_uj = pj_to_uj (cycles *. model.pj_per_cycle) in
  let channel_uj = pj_to_uj (words *. model.pj_per_word) in
  let static_uj =
    (* mW * s = mJ = 1000 uJ *)
    model.mw_static_per_pe *. float_of_int pes *. r.Sim.duration_s *. 1000.
  in
  let network_uj =
    pj_to_uj
      (placement_cost_word_hops_per_frame *. float_of_int frames
      *. model.pj_per_word_hop)
  in
  {
    compute_uj;
    channel_uj;
    static_uj;
    network_uj;
    total_uj = compute_uj +. channel_uj +. static_uj +. network_uj;
    pes;
    duration_s = r.Sim.duration_s;
  }

let pp ppf b =
  Format.fprintf ppf
    "energy: %.2f uJ total (compute %.2f, channels %.2f, static %.2f on %d \
     PEs, network %.2f)"
    b.total_uj b.compute_uj b.channel_uj b.static_uj b.pes b.network_uj
