(** First-order energy accounting.

    The paper motivates mapping and placement decisions partly by energy
    ("increasing the number of kernels beyond what is required ... may allow
    a more optimal placement, resulting in a lower overall energy
    consumption", Section IV-D). This module derives an energy estimate from
    a simulation result: active energy per compute cycle and per channel
    word, static (leakage/idle) power per powered processor, and — when a
    placement is supplied — network energy per word-hop. It makes the
    1:1-vs-greedy trade quantitative: fewer processors means less static
    power for the same active work. *)

type model = {
  pj_per_cycle : float;  (** Active energy per compute cycle. *)
  pj_per_word : float;  (** Channel read or write, per word. *)
  mw_static_per_pe : float;  (** Static power per powered-on PE. *)
  pj_per_word_hop : float;  (** NoC energy per word per mesh hop. *)
}

val default_model : model
(** 10 pJ/cycle, 5 pJ/word, 0.5 mW static per PE, 2 pJ/word-hop —
    representative embedded-class constants; all results are ratios, so
    absolute values only set the scale. *)

type breakdown = {
  compute_uj : float;
  channel_uj : float;
  static_uj : float;
  network_uj : float;  (** 0 unless a placement is supplied. *)
  total_uj : float;
  pes : int;
  duration_s : float;
}

val of_result :
  ?model:model ->
  ?placement_cost_word_hops_per_frame:float ->
  ?frames:int ->
  machine:Bp_machine.Machine.t ->
  Sim.result ->
  breakdown
(** [of_result ~machine result] reconstructs cycles and words from the
    per-processor run/read/write times and prices them. Supplying the
    annealer's communication cost (word-hops per frame) and the frame count
    adds the network term. *)

val pp : Format.formatter -> breakdown -> unit
