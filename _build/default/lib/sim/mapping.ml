open Bp_util
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec

type t = {
  groups : Graph.node_id list array;
  proc_of : (Graph.node_id, int) Hashtbl.t;
}

let is_on_chip (n : Graph.node) =
  match n.Graph.spec.Spec.role with
  | Spec.Source | Spec.Const_source | Spec.Sink -> false
  | Spec.Compute | Spec.Buffer | Spec.Split | Spec.Join | Spec.Inset
  | Spec.Pad | Spec.Replicate ->
    true

let of_groups g groups =
  let proc_of = Hashtbl.create 64 in
  List.iteri
    (fun proc ids ->
      List.iter
        (fun id ->
          let n = Graph.node g id in
          if not (is_on_chip n) then
            Err.graphf "node %s is off-chip and cannot be mapped" n.Graph.name;
          if Hashtbl.mem proc_of id then
            Err.graphf "node %s mapped twice" n.Graph.name;
          Hashtbl.replace proc_of id proc)
        ids)
    groups;
  List.iter
    (fun (n : Graph.node) ->
      if is_on_chip n && not (Hashtbl.mem proc_of n.Graph.id) then
        Err.graphf "node %s is not mapped to any processor" n.Graph.name)
    (Graph.nodes g);
  { groups = Array.of_list groups; proc_of }

let one_to_one g =
  of_groups g
    (List.filter_map
       (fun (n : Graph.node) ->
         if is_on_chip n then Some [ n.Graph.id ] else None)
       (Graph.nodes g))

let processors t = Array.length t.groups
let nodes_on t proc = t.groups.(proc)
let processor_of t id = Hashtbl.find_opt t.proc_of id

let pp g ppf t =
  Array.iteri
    (fun proc ids ->
      Format.fprintf ppf "PE%-3d: %s@," proc
        (String.concat ", "
           (List.map (fun id -> (Graph.node g id).Graph.name) ids)))
    t.groups
