(** Kernel-to-processor mappings.

    A mapping assigns every on-chip node (everything except sources, constant
    sources and sinks, which live off-chip) to a processor. The 1:1 mapping
    gives each kernel its own core (Figure 12(a)); the greedy multiplexing
    transform produces denser mappings (Figure 12(b)). *)

type t

val of_groups : Bp_graph.Graph.t -> Bp_graph.Graph.node_id list list -> t
(** [of_groups g groups] builds a mapping placing each group of node ids on
    one processor. Every on-chip node of [g] must appear exactly once;
    fails with {!Bp_util.Err.Graph_malformed} otherwise. Off-chip nodes
    (sources, const sources, sinks) must not appear. *)

val one_to_one : Bp_graph.Graph.t -> t
(** Each on-chip node on its own processor. *)

val processors : t -> int
(** Number of processors used. *)

val nodes_on : t -> int -> Bp_graph.Graph.node_id list
(** The nodes assigned to a processor, in assignment order. *)

val processor_of : t -> Bp_graph.Graph.node_id -> int option
(** The processor of a node; [None] for off-chip nodes. *)

val is_on_chip : Bp_graph.Graph.node -> bool
(** False for sources, constant sources and sinks. *)

val pp : Bp_graph.Graph.t -> Format.formatter -> t -> unit
