type firing = {
  at_s : float;
  proc : int;
  kernel : string;
  method_name : string;
  service_s : float;
}

type t = { mutable rev : firing list }

let recorder () =
  let t = { rev = [] } in
  let observer ~time_s ~proc ~node ~method_name ~service_s =
    t.rev <-
      {
        at_s = time_s;
        proc;
        kernel = node.Bp_graph.Graph.name;
        method_name;
        service_s;
      }
      :: t.rev
  in
  (t, observer)

let firings t = List.rev t.rev
let firings_on t ~proc = List.filter (fun f -> f.proc = proc) (firings t)

let summary t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let fires, time =
        Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl f.kernel)
      in
      Hashtbl.replace tbl f.kernel (fires + 1, time +. f.service_s))
    (firings t);
  Hashtbl.fold (fun k (n, s) acc -> (k, n, s) :: acc) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)

let busiest_kernel t =
  match summary t with (k, _, s) :: _ -> Some (k, s) | [] -> None

let gantt ?(width = 72) ?from_s ?until_s t =
  let fs = firings t in
  match fs with
  | [] -> "(empty trace)\n"
  | _ ->
    let t0 = Option.value from_s ~default:(List.hd fs).at_s in
    let t1 =
      Option.value until_s
        ~default:
          (List.fold_left (fun acc f -> Float.max acc (f.at_s +. f.service_s)) t0 fs)
    in
    let span = Float.max (t1 -. t0) 1e-12 in
    let procs = 1 + List.fold_left (fun acc f -> max acc f.proc) 0 fs in
    let rows = Array.init procs (fun _ -> Bytes.make width '.') in
    List.iter
      (fun f ->
        let c0 =
          int_of_float (Float.of_int width *. (f.at_s -. t0) /. span)
        in
        let c1 =
          int_of_float
            (Float.of_int width *. (f.at_s +. f.service_s -. t0) /. span)
        in
        for c = max 0 c0 to min (width - 1) (max c0 c1) do
          Bytes.set rows.(f.proc) c '#'
        done)
      fs;
    let buf = Buffer.create (procs * (width + 12)) in
    Array.iteri
      (fun p row ->
        Buffer.add_string buf (Printf.sprintf "PE%-3d |%s|\n" p (Bytes.to_string row)))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "       %g s .. %g s\n" t0 t1);
    Buffer.contents buf
