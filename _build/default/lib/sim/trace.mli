(** Execution traces.

    A recorder for the simulator's {!Sim.run} [observer] hook: it collects
    every kernel firing (start time, processor, kernel, method, service
    time) and renders them as a per-processor text Gantt chart or a
    per-kernel activity summary — the debugging view for "why is this PE
    underutilized" questions that Figure 12 answers statically. *)

type firing = {
  at_s : float;
  proc : int;
  kernel : string;
  method_name : string;
  service_s : float;
}

type t

val recorder :
  unit ->
  t
  * (time_s:float ->
    proc:int ->
    node:Bp_graph.Graph.node ->
    method_name:string ->
    service_s:float ->
    unit)
(** A fresh trace and the observer to pass to {!Sim.run}. *)

val firings : t -> firing list
(** All recorded firings in time order. *)

val firings_on : t -> proc:int -> firing list

val busiest_kernel : t -> (string * float) option
(** Kernel with the most accumulated service time. *)

val gantt :
  ?width:int -> ?from_s:float -> ?until_s:float -> t -> string
(** An ASCII Gantt chart, one row per processor: each column is a time
    slice, [#] busy, [.] idle. [width] defaults to 72 columns; the window
    defaults to the whole trace. *)

val summary : t -> (string * int * float) list
(** Per kernel: (name, firings, total service seconds), busiest first. *)
