lib/token/token.ml: Bp_util Format String
