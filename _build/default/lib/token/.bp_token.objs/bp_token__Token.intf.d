lib/token/token.mli: Format
