type kind = End_of_line | End_of_frame | User of string
type t = { kind : kind; seq : int }

let eol seq = { kind = End_of_line; seq }
let eof seq = { kind = End_of_frame; seq }
let user name seq = { kind = User name; seq }

let kind_equal a b =
  match (a, b) with
  | End_of_line, End_of_line | End_of_frame, End_of_frame -> true
  | User x, User y -> String.equal x y
  | (End_of_line | End_of_frame | User _), _ -> false

let equal a b = kind_equal a.kind b.kind && a.seq = b.seq
let words _ = 1

let pp_kind ppf = function
  | End_of_line -> Format.pp_print_string ppf "EOL"
  | End_of_frame -> Format.pp_print_string ppf "EOF"
  | User s -> Format.fprintf ppf "User(%s)" s

let pp ppf t = Format.fprintf ppf "%a#%d" pp_kind t.kind t.seq
let to_string t = Format.asprintf "%a" pp t

module Bound = struct
  type budget = { kind : kind; max_per_frame : int }

  let v kind ~max_per_frame =
    if max_per_frame < 0 then
      Bp_util.Err.invalidf "token budget must be non-negative";
    { kind; max_per_frame }

  let handler_cycles_per_frame b ~handler_cycles =
    b.max_per_frame * handler_cycles
end
