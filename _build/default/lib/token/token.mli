(** Control tokens.

    Tokens travel in-stream with the data (Section II-C of the paper). The
    two standard kinds — end-of-line and end-of-frame — are generated
    automatically by application inputs and by geometry-changing kernels
    (buffers, insets). Kernels may define their own kinds, provided they
    declare a static maximum rate so the compiler can budget resources for
    handling them. *)

type kind =
  | End_of_line
  | End_of_frame
  | User of string  (** Kernel-defined control, named. *)

type t = { kind : kind; seq : int }
(** [seq] numbers the line within the frame (for [End_of_line]) or the frame
    within the run (for [End_of_frame] and [User]); it exists for tracing and
    runtime assertions, not for control decisions. *)

val eol : int -> t
val eof : int -> t
val user : string -> int -> t

val kind_equal : kind -> kind -> bool

val equal : t -> t -> bool

val words : t -> int
(** Transfer cost of a token on a channel, in words (always [1] — tokens are
    small control messages). *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Static rate bounds for user-defined tokens, per Section II-C: the
    programmer declares how many of each kind can be generated per frame so
    that analysis can account for the handler's cycles. *)
module Bound : sig
  type budget = { kind : kind; max_per_frame : int }

  val v : kind -> max_per_frame:int -> budget
  (** Fails with {!Bp_util.Err.Invalid_parameterization} if
      [max_per_frame < 0]. *)

  val handler_cycles_per_frame : budget -> handler_cycles:int -> int
  (** Worst-case cycles per frame spent in the handler of this token kind. *)
end
