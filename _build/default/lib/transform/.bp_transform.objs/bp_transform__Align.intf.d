lib/transform/align.mli: Bp_graph
