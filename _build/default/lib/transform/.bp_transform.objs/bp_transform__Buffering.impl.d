lib/transform/buffering.ml: Bp_analysis Bp_geometry Bp_graph Bp_kernel Bp_kernels Bp_util Err List Size Step Window
