lib/transform/buffering.mli: Bp_geometry Bp_graph
