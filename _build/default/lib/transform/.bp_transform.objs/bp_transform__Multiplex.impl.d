lib/transform/multiplex.ml: Bp_analysis Bp_graph Bp_kernel Bp_machine Hashtbl Int List Parallelize
