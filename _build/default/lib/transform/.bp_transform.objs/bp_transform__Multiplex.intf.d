lib/transform/multiplex.mli: Bp_analysis Bp_graph Bp_machine
