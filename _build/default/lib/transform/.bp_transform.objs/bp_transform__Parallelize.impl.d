lib/transform/parallelize.ml: Array Bp_analysis Bp_geometry Bp_graph Bp_kernel Bp_kernels Bp_machine Bp_util Err Float Hashtbl Int List Option Printf Rate Size
