lib/transform/parallelize.mli: Bp_analysis Bp_graph Bp_machine
