lib/transform/schedulability.ml: Bp_analysis Bp_graph Bp_kernel Bp_machine Float Format List Parallelize
