lib/transform/schedulability.mli: Bp_graph Bp_machine Format
