open Bp_util
open Bp_geometry
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Dataflow = Bp_analysis.Dataflow
module Stream = Bp_analysis.Stream

type policy = Trim | Pad_zero

type repair = {
  at_node : string;
  on_port : string;
  inserted : Graph.node_id;
  margins : int * int * int * int;
}

let int_margins (d : Inset.t) =
  let il, ir, it, ib = Inset.to_int_sides d in
  (il, ir, it, ib)

let insert_on_channel g (c : Graph.channel) node in_port out_port =
  Graph.remove_channel g c.Graph.chan_id;
  Graph.connect g ~capacity:c.Graph.capacity
    ~from:(c.Graph.src.Graph.node, c.Graph.src.Graph.port)
    ~into:(node, in_port);
  Graph.connect g ~capacity:c.Graph.capacity ~from:(node, out_port)
    ~into:(c.Graph.dst.Graph.node, c.Graph.dst.Graph.port)

(* Trim repair: put an inset kernel directly on the offending input. *)
let repair_trim g an (mis : Dataflow.misalignment) =
  let node = Graph.node g mis.Dataflow.mis_node in
  List.filter_map
    (fun (port, _iters, inset) ->
      let diff = Inset.diff ~target:mis.Dataflow.target_inset inset in
      if Inset.equal diff Inset.zero then None
      else begin
        if not (Inset.dominates mis.Dataflow.target_inset inset) then
          Err.alignf "%s.%s: trim repair needs negative margins" node.Graph.name
            port;
        let l, r, t, b = int_margins diff in
        let c =
          match Graph.in_channel g mis.Dataflow.mis_node port with
          | Some c -> c
          | None -> Err.graphf "%s.%s: not connected" node.Graph.name port
        in
        let s = Dataflow.stream_of an c.Graph.chan_id in
        let grid =
          match s.Stream.grid with
          | Some grid -> grid
          | None ->
            Err.alignf "%s.%s: cannot trim an interleaved stream"
              node.Graph.name port
        in
        let inset_node =
          Graph.add g
            ~meta:(Graph.Inset_meta { left = l; right = r; top = t; bottom = b })
            (Bp_kernels.Inset_pad.inset ~grid ~left:l ~right:r ~top:t
               ~bottom:b ())
        in
        insert_on_channel g c inset_node "in" "out";
        Some
          {
            at_node = node.Graph.name;
            on_port = port;
            inserted = inset_node;
            margins = (l, r, t, b);
          }
      end)
    mis.Dataflow.mis_inputs

(* Pad repair: walk upstream past buffers to the pixel stream feeding the
   deeper filter chain and zero-pad it there. *)
let repair_pad g an (mis : Dataflow.misalignment) =
  let node = Graph.node g mis.Dataflow.mis_node in
  (* Pad equalizes toward the *least* inset stream. *)
  let target =
    List.fold_left
      (fun acc (_, _, i) ->
        {
          Inset.left = Float.min acc.Inset.left i.Inset.left;
          right = Float.min acc.Inset.right i.Inset.right;
          top = Float.min acc.Inset.top i.Inset.top;
          bottom = Float.min acc.Inset.bottom i.Inset.bottom;
        })
      (match mis.Dataflow.mis_inputs with
      | (_, _, i) :: _ -> i
      | [] -> Inset.zero)
      mis.Dataflow.mis_inputs
  in
  List.filter_map
    (fun (port, _iters, inset) ->
      let diff = Inset.diff ~target:inset target in
      (* diff = inset - target: how much this stream over-insets. *)
      if Inset.equal diff Inset.zero then None
      else begin
        let l, r, t, b = int_margins diff in
        (* Walk upstream through the filter chain (single-driving-input
           kernels and their buffers) to the pixel stream feeding this
           branch: padding must happen before the filters so their outputs
           grow, not after them. *)
        let rec find_pixel_channel (c : Graph.channel) =
          let src = Graph.node g c.Graph.src.Graph.node in
          let continue_through input =
            match Graph.in_channel g src.Graph.id input with
            | Some up -> find_pixel_channel up
            | None -> c
          in
          match src.Graph.spec.Spec.role with
          | Spec.Buffer | Spec.Inset | Spec.Pad -> continue_through "in"
          | Spec.Compute -> (
            (* Follow a unique non-constant driving input. *)
            let driving =
              List.filter
                (fun (up : Graph.channel) ->
                  let s = Dataflow.stream_of an up.Graph.chan_id in
                  not s.Stream.constant)
                (Graph.in_channels g src.Graph.id)
            in
            match driving with [ up ] -> find_pixel_channel up | _ -> c)
          | Spec.Source | Spec.Const_source | Spec.Sink | Spec.Split
          | Spec.Join | Spec.Replicate ->
            c
        in
        let c0 =
          match Graph.in_channel g mis.Dataflow.mis_node port with
          | Some c -> c
          | None -> Err.graphf "%s.%s: not connected" node.Graph.name port
        in
        let c = find_pixel_channel c0 in
        let s = Dataflow.stream_of an c.Graph.chan_id in
        if not (Size.equal s.Stream.chunk Size.one) then
          Err.alignf "%s.%s: pad repair needs a pixel stream upstream"
            node.Graph.name port;
        let pad_node =
          Graph.add g
            ~meta:(Graph.Pad_meta { left = l; right = r; top = t; bottom = b })
            (Bp_kernels.Inset_pad.pad ~frame:s.Stream.extent ~left:l ~right:r
               ~top:t ~bottom:b ())
        in
        insert_on_channel g c pad_node "in" "out";
        Some
          {
            at_node = node.Graph.name;
            on_port = port;
            inserted = pad_node;
            margins = (l, r, t, b);
          }
      end)
    mis.Dataflow.mis_inputs

let run ?(policy = Trim) g =
  let rec fix rounds acc =
    if rounds > 8 then
      Err.alignf "alignment did not converge after 8 rounds";
    let an = Dataflow.analyze g in
    match Dataflow.misalignments an with
    | [] -> List.rev acc
    | mis :: _ ->
      let repairs =
        match policy with
        | Trim -> repair_trim g an mis
        | Pad_zero -> repair_pad g an mis
      in
      if repairs = [] then
        Err.alignf "misalignment at %s produced no repair"
          (Graph.node g mis.Dataflow.mis_node).Graph.name;
      fix (rounds + 1) (List.rev_append repairs acc)
  in
  fix 0 []
