(** Automatic trimming and padding (Section III-C, Figures 3 and 8).

    Multi-input kernels whose inputs carry different insets from the shared
    application input are repaired either by trimming the larger stream
    (inserting inset kernels, the default shown in Figure 3) or by
    zero-padding the input of the deeper filter chain so its output grows.
    The paper leaves the Trim/Pad choice to the programmer because it
    changes the numeric result; the mechanics are automatic. *)

type policy =
  | Trim  (** Discard rows/columns of the less-inset streams. *)
  | Pad_zero
      (** Zero-pad upstream of the more-inset streams so their extents
          grow back. *)

type repair = {
  at_node : string;  (** The misaligned kernel's instance name. *)
  on_port : string;
  inserted : Bp_graph.Graph.node_id;
  margins : int * int * int * int;  (** left, right, top, bottom *)
}

val run : ?policy:policy -> Bp_graph.Graph.t -> repair list
(** Repairs every misalignment, re-running the dataflow between passes
    until it reports none (bounded; fails with
    {!Bp_util.Err.Alignment_error} if the graph does not converge or a
    repair would need fractional margins). Mutates the graph in place. *)
