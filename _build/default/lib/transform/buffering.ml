open Bp_util
open Bp_geometry
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Port = Bp_kernel.Port
module Dataflow = Bp_analysis.Dataflow
module Stream = Bp_analysis.Stream
module Buffer = Bp_kernels.Buffer

type inserted = {
  buffer_node : Graph.node_id;
  between : string * string;
  storage : Size.t;
}

let non_overlapping (w : Window.t) =
  w.Window.step.Step.sx >= w.Window.size.Size.w
  && w.Window.step.Step.sy >= w.Window.size.Size.h

let run g =
  let an = Dataflow.analyze g in
  let work =
    List.filter (fun c -> Dataflow.needs_buffer an c) (Graph.channels g)
  in
  List.map
    (fun (c : Graph.channel) ->
      let s = Dataflow.stream_of an c.Graph.chan_id in
      let src = Graph.node g c.Graph.src.Graph.node in
      let dst = Graph.node g c.Graph.dst.Graph.node in
      let sport = Spec.find_output src.Graph.spec c.Graph.src.Graph.port in
      let dport = Spec.find_input dst.Graph.spec c.Graph.dst.Graph.port in
      if not (non_overlapping sport.Port.window) then
        Err.unsupportedf
          "cannot buffer %s -> %s: producer emits overlapped windows"
          src.Graph.name dst.Graph.name;
      let cfg =
        Buffer.config ~in_block:s.Stream.chunk
          ~out_window:dport.Port.window ~frame:s.Stream.extent ()
      in
      let storage = Buffer.storage cfg in
      let buf =
        Graph.add g
          ~meta:(Graph.Buffer_meta { storage })
          (Buffer.spec cfg)
      in
      Graph.remove_channel g c.Graph.chan_id;
      Graph.connect g ~capacity:c.Graph.capacity
        ~from:(c.Graph.src.Graph.node, c.Graph.src.Graph.port)
        ~into:(buf, "in");
      Graph.connect g ~capacity:c.Graph.capacity ~from:(buf, "out")
        ~into:(c.Graph.dst.Graph.node, c.Graph.dst.Graph.port);
      { buffer_node = buf; between = (src.Graph.name, dst.Graph.name); storage })
    work
