(** Automatic buffer insertion (Section III-B, Figure 3).

    Wherever a channel's producer chunk shape cannot satisfy the consumer's
    window (a pixel stream feeding a 5×5 sliding window; a pixel stream
    feeding a downsampling step), a parameterized buffer kernel is inserted
    and sized by the double-buffering rule. *)

type inserted = {
  buffer_node : Bp_graph.Graph.node_id;
  between : string * string;  (** Producer and consumer instance names. *)
  storage : Bp_geometry.Size.t;
}

val run : Bp_graph.Graph.t -> inserted list
(** Mutates the graph in place; returns a description of every buffer
    added. Fails with {!Bp_util.Err.Unsupported} when a producer emits
    overlapped windows that the consumer cannot take one-for-one (re-windowing
    an overlapped stream is outside the model). *)
