module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Machine = Bp_machine.Machine
module Dataflow = Bp_analysis.Dataflow

type group_stats = {
  members : string list;
  predicted_utilization : float;
  memory_words : int;
}

let utilization_of an machine id =
  Parallelize.required_cycles_per_s an machine id
  /. machine.Machine.pe.Machine.freq_hz

let on_chip g =
  List.filter
    (fun (n : Graph.node) ->
      match n.Graph.spec.Spec.role with
      | Spec.Source | Spec.Const_source | Spec.Sink -> false
      | _ -> true)
    (Graph.nodes g)

let one_to_one g = List.map (fun (n : Graph.node) -> [ n.Graph.id ]) (on_chip g)

(* An initial input buffer: a buffer whose data reaches it from a source
   through nothing but split/replicate plumbing. *)
let protected_input_buffer g id =
  let n = Graph.node g id in
  match n.Graph.spec.Spec.role with
  | Spec.Buffer ->
    let rec from_source id =
      List.exists
        (fun pred ->
          let p = Graph.node g pred in
          match p.Graph.spec.Spec.role with
          | Spec.Source -> true
          | Spec.Split | Spec.Replicate | Spec.Pad -> from_source pred
          | _ -> false)
        (Graph.predecessors g id)
    in
    from_source id
  | _ -> false

let greedy machine g =
  let an = Dataflow.analyze g in
  let pe = machine.Machine.pe in
  let cap =
    machine.Machine.target_utilization *. machine.Machine.multiplex_headroom
  in
  let util id = utilization_of an machine id in
  let mem id = Spec.memory_words (Graph.node g id).Graph.spec in
  (* group id -> members (rev), total util, total memory *)
  let groups : (int, Graph.node_id list * float * int) Hashtbl.t =
    Hashtbl.create 32
  in
  let group_of : (Graph.node_id, int) Hashtbl.t = Hashtbl.create 32 in
  let protected_groups : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let next_group = ref 0 in
  let new_group ?(protect = false) id =
    let gid = !next_group in
    incr next_group;
    Hashtbl.replace groups gid ([ id ], util id, mem id);
    Hashtbl.replace group_of id gid;
    if protect then Hashtbl.replace protected_groups gid ()
  in
  let try_merge id gid =
    let members, u, m = Hashtbl.find groups gid in
    let u' = u +. util id and m' = m + mem id in
    if u' <= cap && m' <= pe.Machine.mem_words then begin
      Hashtbl.replace groups gid (id :: members, u', m');
      Hashtbl.replace group_of id gid;
      true
    end
    else false
  in
  let order = Graph.topological_order g in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.spec.Spec.role with
      | Spec.Source | Spec.Const_source | Spec.Sink -> ()
      | _ ->
        let id = n.Graph.id in
        if protected_input_buffer g id then new_group ~protect:true id
        else begin
          let neighbour_groups =
            List.sort_uniq Int.compare
              (List.filter_map
                 (fun nb ->
                   match Hashtbl.find_opt group_of nb with
                   | Some gid when not (Hashtbl.mem protected_groups gid) ->
                     Some gid
                   | _ -> None)
                 (Graph.predecessors g id @ Graph.successors g id))
          in
          let merged =
            List.exists (fun gid -> try_merge id gid) neighbour_groups
          in
          if not merged then new_group id
        end)
    order;
  Hashtbl.fold (fun gid (members, _, _) acc -> (gid, List.rev members) :: acc)
    groups []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let stats machine g groups =
  let an = Dataflow.analyze g in
  List.map
    (fun ids ->
      {
        members = List.map (fun id -> (Graph.node g id).Graph.name) ids;
        predicted_utilization =
          List.fold_left
            (fun acc id -> acc +. utilization_of an machine id)
            0. ids;
        memory_words =
          List.fold_left
            (fun acc id ->
              acc + Spec.memory_words (Graph.node g id).Graph.spec)
            0 ids;
      })
    groups
