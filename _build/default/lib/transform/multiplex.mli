(** Greedy time-multiplexing of kernels onto processors (Section V).

    A naive 1:1 kernel-to-core mapping wastes cores on low-utilization
    buffers and split/join FSMs. The greedy algorithm walks the graph and
    merges a kernel onto a neighbour's processor whenever their combined
    CPU utilization stays below the machine's target and their combined
    state fits the PE memory. Initial input buffers — buffers fed (possibly
    through a split) straight from an application input — are never
    multiplexed, because a delayed buffer would block the input
    (Figure 12). *)

type group_stats = {
  members : string list;
  predicted_utilization : float;  (** Analysis-predicted, not measured. *)
  memory_words : int;
}

val utilization_of :
  Bp_analysis.Dataflow.t ->
  Bp_machine.Machine.t ->
  Bp_graph.Graph.node_id ->
  float
(** Predicted steady-state utilization of one node on one PE (compute plus
    I/O cycles over PE frequency). *)

val one_to_one : Bp_graph.Graph.t -> Bp_graph.Graph.node_id list list
(** The identity grouping: every on-chip kernel on its own processor. *)

val greedy :
  Bp_machine.Machine.t -> Bp_graph.Graph.t -> Bp_graph.Graph.node_id list list
(** The greedy merged grouping. *)

val stats :
  Bp_machine.Machine.t ->
  Bp_graph.Graph.t ->
  Bp_graph.Graph.node_id list list ->
  group_stats list
(** Predicted per-processor statistics for a grouping. *)

val protected_input_buffer :
  Bp_graph.Graph.t -> Bp_graph.Graph.node_id -> bool
(** Whether the node is an initial input buffer (excluded from merging). *)
