open Bp_util
open Bp_geometry
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Port = Bp_kernel.Port
module Machine = Bp_machine.Machine
module Dataflow = Bp_analysis.Dataflow
module Stream = Bp_analysis.Stream
module Buffer = Bp_kernels.Buffer
module Split_join = Bp_kernels.Split_join

type reason = Cpu_bound | Memory_bound | Capped_by_dependency

type decision = {
  original : string;
  degree : int;
  reason : reason;
  replicas : Graph.node_id list;
}

let required_cycles_per_s an machine id =
  let info = Dataflow.info_of an id in
  match info.Dataflow.rate with
  | None -> 0.
  | Some rate ->
    let pe = machine.Machine.pe in
    let per_frame =
      info.Dataflow.compute_cycles_per_frame
      +. (info.Dataflow.read_words_per_frame *. pe.Machine.read_cycles_per_word)
      +. (info.Dataflow.write_words_per_frame *. pe.Machine.write_cycles_per_word)
    in
    per_frame *. Rate.to_hz rate

(* How many stripes a buffer needs so each stripe fits one PE's memory and
   keeps up with its input share. *)
let buffer_stripes an machine id =
  let g = Dataflow.graph an in
  let n = Graph.node g id in
  let pe = machine.Machine.pe in
  let out_port =
    match n.Graph.spec.Spec.outputs with
    | [ p ] -> p
    | _ -> Err.graphf "buffer %s must have one output" n.Graph.name
  in
  let in_c =
    match Graph.in_channel g id "in" with
    | Some c -> c
    | None -> Err.graphf "buffer %s input not connected" n.Graph.name
  in
  let s = Dataflow.stream_of an in_c.Graph.chan_id in
  let frame = s.Stream.extent in
  let window = out_port.Port.window in
  let cpu = required_cycles_per_s an machine id in
  let degree_cpu =
    int_of_float (Float.ceil (cpu /. Machine.usable_cycles_per_s machine))
  in
  let fits parts =
    if parts = 1 then Spec.memory_words n.Graph.spec <= pe.Machine.mem_words
    else
      match
        Err.guard (fun () ->
            Split_join.stripe_ranges ~frame_w:frame.Size.w ~window ~parts)
      with
      | Error _ -> false
      | Ok ranges ->
        Array.for_all
          (fun (c0, c1) ->
            let cfg =
              Buffer.config ~out_window:window
                ~frame:(Size.v (c1 - c0) frame.Size.h)
                ()
            in
            Spec.memory_words (Buffer.spec cfg) <= pe.Machine.mem_words)
          ranges
  in
  let rec min_parts m =
    if m > 64 then
      Err.resourcef "buffer %s cannot be split to fit PE memory" n.Graph.name
    else if fits m then m
    else min_parts (m + 1)
  in
  let mem_parts = min_parts 1 in
  (max mem_parts (max 1 degree_cpu), if mem_parts > degree_cpu then Memory_bound else Cpu_bound)

let degree_of an machine id =
  let g = Dataflow.graph an in
  let n = Graph.node g id in
  match n.Graph.spec.Spec.role with
  | Spec.Buffer -> fst (buffer_stripes an machine id)
  | Spec.Compute ->
    let cpu = required_cycles_per_s an machine id in
    max 1
      (int_of_float (Float.ceil (cpu /. Machine.usable_cycles_per_s machine)))
  | Spec.Source | Spec.Const_source | Spec.Sink | Spec.Split | Spec.Join
  | Spec.Inset | Spec.Pad | Spec.Replicate ->
    1

(* Degree after data-dependency capping: deg(dst) <= deg(src); a source
   contributes degree 1 (one instance per input frame). Iterated to a
   fixpoint since dependency chains compose. *)
let capped_degrees an machine =
  let g = Dataflow.graph an in
  let degrees = Hashtbl.create 32 in
  List.iter
    (fun (n : Graph.node) ->
      Hashtbl.replace degrees n.Graph.id (degree_of an machine n.Graph.id))
    (Graph.nodes g);
  let capped = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Graph.dep) ->
        let src_deg =
          let n = Graph.node g d.Graph.dep_src in
          match n.Graph.spec.Spec.role with
          | Spec.Source -> 1
          | _ -> Hashtbl.find degrees d.Graph.dep_src
        in
        let dst_deg = Hashtbl.find degrees d.Graph.dep_dst in
        if dst_deg > src_deg then begin
          Hashtbl.replace degrees d.Graph.dep_dst src_deg;
          Hashtbl.replace capped d.Graph.dep_dst ();
          changed := true
        end)
      (Graph.deps g)
  done;
  (degrees, capped)

(* --- Pipeline chains (Section IV-B, second use of dependency edges) ----

   A dependency edge between two kernels that are also stream neighbours
   declares a *pipeline*: the downstream kernel's instances are tied
   one-to-one to the upstream kernel's (state flows along each pipeline),
   so the whole chain replicates together, point-to-point, instead of
   being re-split between stages. *)

let pipeline_chains an =
  let g = Dataflow.graph an in
  let dep_pairs =
    List.filter_map
      (fun (d : Graph.dep) ->
        let src = Graph.node g d.Graph.dep_src in
        let dst = Graph.node g d.Graph.dep_dst in
        (* A chain link: compute -> compute, and the dep follows the
           stream. The downstream stage must be single-(driving-)input and
           single-consumer so the point-to-point rewiring is well defined. *)
        if
          src.Graph.spec.Spec.role = Spec.Compute
          && dst.Graph.spec.Spec.role = Spec.Compute
          && List.mem d.Graph.dep_src (Graph.predecessors g d.Graph.dep_dst)
          && List.length (Graph.in_channels g d.Graph.dep_dst) = 1
          && List.length (Graph.out_channels g d.Graph.dep_src ()) = 1
        then Some (d.Graph.dep_src, d.Graph.dep_dst)
        else None)
      (Graph.deps g)
  in
  let continues id = List.exists (fun (_, dst) -> dst = id) dep_pairs in
  let next_of id =
    List.find_map
      (fun (src, dst) -> if src = id then Some dst else None)
      dep_pairs
  in
  (* Chains start at a link source that is not itself a continuation. *)
  let heads =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (src, _) -> if continues src then None else Some src)
         dep_pairs)
  in
  List.map
    (fun head ->
      let rec follow id acc =
        match next_of id with
        | Some next -> follow next (next :: acc)
        | None -> List.rev acc
      in
      follow head [ head ])
    heads

let out_port_name g id =
  match (Graph.node g id).Graph.spec.Spec.outputs with
  | [ p ] -> p.Port.name
  | _ -> Err.graphf "pipeline stage must have one output"

(* Replicate a whole chain [d] ways: split before the first stage, the
   stages of each pipeline wired point-to-point, join after the last. *)
let replicate_chain g an chain d =
  let nodes = List.map (Graph.node g) chain in
  let first = List.hd nodes and last = List.hd (List.rev nodes) in
  ignore an;
  let driving_input (n : Graph.node) =
    (* The single stream input that is not a replicated/config port. *)
    match
      List.filter
        (fun (p : Port.t) -> not p.Port.replicated)
        n.Graph.spec.Spec.inputs
    with
    | [ p ] -> p
    | _ -> Err.graphf "pipeline stage %s must have one driving input" n.Graph.name
  in
  let first_in = driving_input first in
  let first_in_c =
    match Graph.in_channel g first.Graph.id first_in.Port.name with
    | Some c -> c
    | None -> Err.graphf "pipeline head %s not connected" first.Graph.name
  in
  let out_port =
    match last.Graph.spec.Spec.outputs with
    | [ p ] -> p
    | _ -> Err.graphf "pipeline tail %s must have one output" last.Graph.name
  in
  let out_cs = Graph.out_channels g last.Graph.id () in
  let entry = (first_in_c.Graph.src.Graph.node, first_in_c.Graph.src.Graph.port) in
  let exits =
    List.map
      (fun (c : Graph.channel) ->
        (c.Graph.capacity, (c.Graph.dst.Graph.node, c.Graph.dst.Graph.port)))
      out_cs
  in
  (* Capture each stage's replicated (config) feeds before removal. *)
  let config_feeds =
    List.map
      (fun (n : Graph.node) ->
        List.filter_map
          (fun (p : Port.t) ->
            if p.Port.replicated then
              Option.map
                (fun (c : Graph.channel) ->
                  (p, (c.Graph.src.Graph.node, c.Graph.src.Graph.port)))
                (Graph.in_channel g n.Graph.id p.Port.name)
            else None)
          n.Graph.spec.Spec.inputs)
      nodes
  in
  List.iter (fun (n : Graph.node) -> Graph.remove_node g n.Graph.id) nodes;
  let split =
    Graph.add g
      ~name:(Printf.sprintf "Split(pipeline %s)" first.Graph.name)
      ~meta:(Graph.Split_meta { ways = d })
      (Split_join.split ~window:first_in.Port.window ~ways:d ())
  in
  Graph.connect g ~capacity:first_in_c.Graph.capacity ~from:entry
    ~into:(split, "in");
  let join =
    Graph.add g
      ~name:(Printf.sprintf "Join(pipeline %s)" last.Graph.name)
      ~meta:(Graph.Join_meta { ways = d })
      (Split_join.join ~window:out_port.Port.window ~ways:d ())
  in
  let pipelines =
    List.init d (fun k ->
        let stage_ids =
          List.map2
            (fun (n : Graph.node) feeds ->
              let rspec = Spec.replica_spec n.Graph.spec ~replica:k ~ways:d in
              let id =
                Graph.add g
                  ~name:(Printf.sprintf "%s_%d" n.Graph.name k)
                  rspec
              in
              (* Config ports fan out from their constant producers. *)
              List.iter
                (fun ((p : Port.t), from) ->
                  Graph.connect g ~from ~into:(id, p.Port.name))
                feeds;
              (id, driving_input n))
            nodes config_feeds
        in
        (* Wire the stages of this pipeline point-to-point. *)
        let rec wire = function
          | (a, _) :: ((b, b_in) :: _ as rest) ->
            Graph.connect g ~from:(a, out_port_name g a) ~into:(b, b_in.Port.name);
            wire rest
          | _ -> ()
        in
        wire stage_ids;
        let head_id, head_in = List.hd stage_ids in
        Graph.connect g
          ~from:(split, Printf.sprintf "out%d" k)
          ~into:(head_id, head_in.Port.name);
        let tail_id, _ = List.hd (List.rev stage_ids) in
        Graph.connect g
          ~from:(tail_id, out_port.Port.name)
          ~into:(join, Printf.sprintf "in%d" k);
        List.map fst stage_ids)
    |> List.concat
  in
  List.iter
    (fun (capacity, into) ->
      Graph.connect g ~capacity ~from:(join, "out") ~into)
    exits;
  pipelines

(* Rewrite one data-parallel compute node into [d] replicas with
   split/join/replicate plumbing. *)
let replicate_compute g (n : Graph.node) d =
  let spec = n.Graph.spec in
  let in_channels =
    List.map
      (fun (p : Port.t) ->
        match Graph.in_channel g n.Graph.id p.Port.name with
        | Some c -> (p, c)
        | None -> Err.graphf "%s.%s not connected" n.Graph.name p.Port.name)
      spec.Spec.inputs
  in
  let out_channels =
    List.map
      (fun (p : Port.t) ->
        (p, Graph.out_channels g n.Graph.id ~port:p.Port.name ()))
      spec.Spec.outputs
  in
  let base_name = n.Graph.name in
  Graph.remove_node g n.Graph.id;
  let replicas =
    List.init d (fun k ->
        let rspec = Spec.replica_spec spec ~replica:k ~ways:d in
        Graph.add g ~name:(Printf.sprintf "%s_%d" base_name k) rspec)
  in
  (* Inputs: split or replicate. *)
  List.iter
    (fun ((p : Port.t), (c : Graph.channel)) ->
      (* The channel itself disappeared with the removed node; only its
         endpoints matter now. *)
      let from = (c.Graph.src.Graph.node, c.Graph.src.Graph.port) in
      if p.Port.replicated then begin
        let rep =
          Graph.add g
            ~name:(Printf.sprintf "Replicate(%s.%s)" base_name p.Port.name)
            (Split_join.replicate ~window:p.Port.window ())
        in
        Graph.connect g ~capacity:c.Graph.capacity ~from ~into:(rep, "in");
        List.iter
          (fun r ->
            Graph.connect g ~capacity:c.Graph.capacity ~from:(rep, "out")
              ~into:(r, p.Port.name))
          replicas
      end
      else begin
        let split =
          Graph.add g
            ~name:(Printf.sprintf "Split(%s.%s)" base_name p.Port.name)
            ~meta:(Graph.Split_meta { ways = d })
            (Split_join.split ~window:p.Port.window ~ways:d ())
        in
        Graph.connect g ~capacity:c.Graph.capacity ~from ~into:(split, "in");
        List.iteri
          (fun k r ->
            Graph.connect g ~capacity:c.Graph.capacity
              ~from:(split, Printf.sprintf "out%d" k)
              ~into:(r, p.Port.name))
          replicas
      end)
    in_channels;
  (* Outputs: join, then restore the original fan-out. *)
  List.iter
    (fun ((p : Port.t), (cs : Graph.channel list)) ->
      match cs with
      | [] -> Err.graphf "%s.%s drives nothing" base_name p.Port.name
      | _ ->
        let join =
          Graph.add g
            ~name:(Printf.sprintf "Join(%s.%s)" base_name p.Port.name)
            ~meta:(Graph.Join_meta { ways = d })
            (Split_join.join ~window:p.Port.window ~ways:d ())
        in
        List.iteri
          (fun k r ->
            Graph.connect g
              ~from:(r, p.Port.name)
              ~into:(join, Printf.sprintf "in%d" k))
          replicas;
        List.iter
          (fun (c : Graph.channel) ->
            Graph.connect g ~capacity:c.Graph.capacity ~from:(join, "out")
              ~into:(c.Graph.dst.Graph.node, c.Graph.dst.Graph.port))
          cs)
    out_channels;
  replicas

(* Rewrite one buffer into [m] column stripes (Figure 10). *)
let split_buffer g an (n : Graph.node) m =
  let out_port =
    match n.Graph.spec.Spec.outputs with
    | [ p ] -> p
    | _ -> Err.graphf "buffer %s must have one output" n.Graph.name
  in
  let window = out_port.Port.window in
  let in_c =
    match Graph.in_channel g n.Graph.id "in" with
    | Some c -> c
    | None -> Err.graphf "buffer %s input not connected" n.Graph.name
  in
  let s = Dataflow.stream_of an in_c.Graph.chan_id in
  if not (Size.equal s.Stream.chunk Size.one) then
    Err.unsupportedf "buffer %s: only pixel-fed buffers can be split"
      n.Graph.name;
  let frame = s.Stream.extent in
  let ranges =
    Split_join.stripe_ranges ~frame_w:frame.Size.w ~window ~parts:m
  in
  let pattern =
    Split_join.stripe_windows_per_row ~frame_w:frame.Size.w ~window ~ranges
  in
  let out_cs = Graph.out_channels g n.Graph.id ~port:"out" () in
  let base_name = n.Graph.name in
  let from = (in_c.Graph.src.Graph.node, in_c.Graph.src.Graph.port) in
  let outs =
    List.map
      (fun (c : Graph.channel) ->
        (c.Graph.capacity, (c.Graph.dst.Graph.node, c.Graph.dst.Graph.port)))
      out_cs
  in
  Graph.remove_node g n.Graph.id;
  let split =
    Graph.add g
      ~name:(Printf.sprintf "Split(%s)" base_name)
      ~meta:(Graph.Column_split_meta { ranges })
      (Split_join.column_split ~ranges ~frame ())
  in
  Graph.connect g ~capacity:in_c.Graph.capacity ~from ~into:(split, "in");
  let subs =
    Array.to_list
      (Array.mapi
         (fun k (c0, c1) ->
           let cfg =
             Buffer.config ~out_window:window
               ~frame:(Size.v (c1 - c0) frame.Size.h)
               ()
           in
           let sub =
             Graph.add g
               ~meta:(Graph.Buffer_meta { storage = Buffer.storage cfg })
               (Buffer.spec cfg)
           in
           Graph.connect g
             ~from:(split, Printf.sprintf "out%d" k)
             ~into:(sub, "in");
           sub)
         ranges)
  in
  let join =
    Graph.add g
      ~name:(Printf.sprintf "Join(%s)" base_name)
      ~meta:(Graph.Pattern_join_meta { pattern; out_extent = frame })
      (Split_join.join ~pattern ~window ~ways:m ())
  in
  List.iteri
    (fun k sub ->
      Graph.connect g ~from:(sub, "out") ~into:(join, Printf.sprintf "in%d" k))
    subs;
  List.iter
    (fun (capacity, into) ->
      Graph.connect g ~capacity ~from:(join, "out") ~into)
    outs;
  subs

let run machine g =
  let an = Dataflow.analyze g in
  (* Everything is decided against the pre-rewrite analysis: detect
     pipeline chains, compute degrees and dependency caps, and snapshot the
     node list — only then start mutating the graph. *)
  let chains = pipeline_chains an in
  let chain_members = List.concat chains |> List.sort_uniq Int.compare in
  let in_chain id = List.mem id chain_members in
  let original_nodes = Graph.nodes g in
  let degrees, capped = capped_degrees an machine in
  let chain_decisions =
    List.filter_map
      (fun chain ->
        let d =
          List.fold_left
            (fun acc id -> max acc (degree_of an machine id))
            1 chain
        in
        if d < 2 then None
        else begin
          let head = Graph.node g (List.hd chain) in
          let replicas = replicate_chain g an chain d in
          Some
            {
              original = Printf.sprintf "pipeline(%s)" head.Graph.name;
              degree = d;
              reason = Cpu_bound;
              replicas;
            }
        end)
      chains
  in
  let pe = machine.Machine.pe in
  let plan =
    List.filter_map
      (fun (n : Graph.node) ->
        if in_chain n.Graph.id then None
        else
        let d = Hashtbl.find degrees n.Graph.id in
        match n.Graph.spec.Spec.role with
        | Spec.Buffer ->
          let _, reason = buffer_stripes an machine n.Graph.id in
          if d > 1 then Some (n, d, reason) else None
        | Spec.Compute ->
          if Spec.memory_words n.Graph.spec > pe.Machine.mem_words then
            Err.resourcef "kernel %s does not fit in PE memory (%d > %d)"
              n.Graph.name
              (Spec.memory_words n.Graph.spec)
              pe.Machine.mem_words;
          if d > 1 then begin
            (match n.Graph.spec.Spec.parallelization with
            | Spec.Serial ->
              Err.schedulef
                "serial kernel %s needs %d PEs worth of throughput"
                n.Graph.name d
            | Spec.Data_parallel | Spec.Custom _ -> ());
            let reason =
              if Hashtbl.mem capped n.Graph.id then Capped_by_dependency
              else Cpu_bound
            in
            Some (n, d, reason)
          end
          else None
        | _ -> None)
      original_nodes
  in
  chain_decisions
  @ List.map
      (fun ((n : Graph.node), d, reason) ->
        let replicas =
          match n.Graph.spec.Spec.role with
          | Spec.Buffer -> split_buffer g an n d
          | _ -> replicate_compute g n d
        in
        { original = n.Graph.name; degree = d; reason; replicas })
      plan
