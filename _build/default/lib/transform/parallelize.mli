(** Automatic parallelization to meet the real-time constraint (Section IV).

    For every kernel the transform compares the cycles-per-second it needs
    (compute plus channel I/O, from the dataflow analysis) against what one
    processing element provides, and the memory it needs against one PE's
    local store:

    - data-parallel compute kernels that need more than one PE are
      replicated, with round-robin split/join FSM kernels distributing and
      collecting the data (Figure 4); replicated inputs get a replicate
      kernel instead of a split;
    - kernels with a [Custom] parallelization supply their own replica
      specs (e.g. position-strided kernels);
    - data-dependency edges cap a kernel's degree at its dependency
      source's degree (Section IV-B) — an edge from an application input
      caps at one instance per frame;
    - buffers that exceed one PE's memory (or input rate) are split
      column-wise into stripes with overlap replication at the seams
      (Figure 10): a column-split FSM, one sub-buffer per stripe, and a
      pattern join that re-serializes the window stream;
    - serial kernels that would need more than one PE make the program
      unschedulable, reported via {!Bp_util.Err.Not_schedulable}. *)

type reason = Cpu_bound | Memory_bound | Capped_by_dependency

type decision = {
  original : string;  (** Instance name of the kernel that was rewritten. *)
  degree : int;
  reason : reason;
  replicas : Bp_graph.Graph.node_id list;
      (** The replica (or stripe sub-buffer) nodes. *)
}

val required_cycles_per_s :
  Bp_analysis.Dataflow.t ->
  Bp_machine.Machine.t ->
  Bp_graph.Graph.node_id ->
  float
(** Compute + I/O cycles per second the node needs in the steady state. *)

val degree_of :
  Bp_analysis.Dataflow.t ->
  Bp_machine.Machine.t ->
  Bp_graph.Graph.node_id ->
  int
(** The parallelization degree the node needs before dependency capping
    (max of CPU and, for buffers, memory pressure). *)

val run : Bp_machine.Machine.t -> Bp_graph.Graph.t -> decision list
(** Mutates the graph in place. Fails with
    {!Bp_util.Err.Not_schedulable} when a serial kernel cannot keep up and
    {!Bp_util.Err.Resource_exhausted} when a non-buffer kernel cannot fit
    in one PE's memory. *)
