module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Machine = Bp_machine.Machine
module Dataflow = Bp_analysis.Dataflow

type node_report = {
  node : Graph.node_id;
  name : string;
  required_cycles_per_s : float;
  utilization : float;
  schedulable : bool;
}

type t = {
  nodes : node_report list;
  bottleneck : node_report option;
  schedulable : bool;
  predicted_pe_count : int;
}

let on_chip (n : Graph.node) =
  match n.Graph.spec.Spec.role with
  | Spec.Source | Spec.Const_source | Spec.Sink -> false
  | _ -> true

let check machine g =
  let an = Dataflow.analyze g in
  let nodes =
    List.filter_map
      (fun (n : Graph.node) ->
        if not (on_chip n) then None
        else
          let required =
            Parallelize.required_cycles_per_s an machine n.Graph.id
          in
          let utilization = required /. machine.Machine.pe.Machine.freq_hz in
          Some
            {
              node = n.Graph.id;
              name = n.Graph.name;
              required_cycles_per_s = required;
              utilization;
              schedulable = utilization <= machine.Machine.target_utilization;
            })
      (Graph.nodes g)
  in
  let nodes =
    List.sort (fun a b -> Float.compare b.utilization a.utilization) nodes
  in
  {
    nodes;
    bottleneck = (match nodes with [] -> None | n :: _ -> Some n);
    schedulable =
      List.for_all (fun (n : node_report) -> n.schedulable) nodes;
    predicted_pe_count = List.length nodes;
  }

let pp ppf t =
  Format.fprintf ppf "schedulable: %b (%d PEs at 1:1)@,"
    t.schedulable t.predicted_pe_count;
  List.iter
    (fun n ->
      Format.fprintf ppf "  %-32s %6.1f%%%s@," n.name
        (100. *. n.utilization)
        (if n.schedulable then "" else "  OVERLOADED"))
    t.nodes
