(** Static schedulability checking.

    The paper's guarantee is *a priori*: the compiler must be able to argue,
    before running anything, that the parallelized program keeps up with its
    inputs. This module performs that argument for an elaborated graph: for
    every on-chip node it compares the steady-state cycles per second it
    needs (compute plus channel words, from the dataflow analysis) against
    what one processing element provides, and reports per-node margins and
    the overall bottleneck. The simulator then confirms the prediction
    dynamically; tests assert the two agree. *)

type node_report = {
  node : Bp_graph.Graph.node_id;
  name : string;
  required_cycles_per_s : float;
  utilization : float;  (** Against the full PE frequency. *)
  schedulable : bool;
      (** Utilization within the machine's target (with multiplexing
          headroom NOT applied — this is the per-node, own-PE bound). *)
}

type t = {
  nodes : node_report list;  (** Worst utilization first. *)
  bottleneck : node_report option;  (** The busiest node. *)
  schedulable : bool;  (** Every node individually schedulable. *)
  predicted_pe_count : int;  (** On-chip nodes = PEs under a 1:1 mapping. *)
}

val check : Bp_machine.Machine.t -> Bp_graph.Graph.t -> t
(** Analyze and check. The graph should already be elaborated (buffers
    inserted, kernels parallelized); on a raw graph the report shows which
    kernels *will need* parallelization instead. *)

val pp : Format.formatter -> t -> unit
