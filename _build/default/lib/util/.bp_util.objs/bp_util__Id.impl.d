lib/util/id.ml:
