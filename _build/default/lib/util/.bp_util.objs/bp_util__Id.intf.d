lib/util/id.mli:
