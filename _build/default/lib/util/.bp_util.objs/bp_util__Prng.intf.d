lib/util/prng.mli:
