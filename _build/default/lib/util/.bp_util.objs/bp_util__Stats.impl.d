lib/util/stats.ml: List Printf
