lib/util/stats.mli:
