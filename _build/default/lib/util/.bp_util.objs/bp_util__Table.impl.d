lib/util/table.ml: List String
