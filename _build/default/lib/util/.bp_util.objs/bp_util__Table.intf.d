lib/util/table.mli:
