type t =
  | Invalid_parameterization of string
  | Graph_malformed of string
  | Rate_mismatch of string
  | Alignment_error of string
  | Resource_exhausted of string
  | Not_schedulable of string
  | Unsupported of string

exception Error of t

let fail e = raise (Error e)
let kfail wrap fmt = Format.kasprintf (fun s -> fail (wrap s)) fmt
let invalidf fmt = kfail (fun s -> Invalid_parameterization s) fmt
let graphf fmt = kfail (fun s -> Graph_malformed s) fmt
let ratef fmt = kfail (fun s -> Rate_mismatch s) fmt
let alignf fmt = kfail (fun s -> Alignment_error s) fmt
let resourcef fmt = kfail (fun s -> Resource_exhausted s) fmt
let schedulef fmt = kfail (fun s -> Not_schedulable s) fmt
let unsupportedf fmt = kfail (fun s -> Unsupported s) fmt

let to_string = function
  | Invalid_parameterization s -> "invalid parameterization: " ^ s
  | Graph_malformed s -> "malformed graph: " ^ s
  | Rate_mismatch s -> "rate mismatch: " ^ s
  | Alignment_error s -> "alignment error: " ^ s
  | Resource_exhausted s -> "resource exhausted: " ^ s
  | Not_schedulable s -> "not schedulable: " ^ s
  | Unsupported s -> "unsupported: " ^ s

let pp ppf e = Format.pp_print_string ppf (to_string e)
let guard f = match f () with v -> Ok v | exception Error e -> Error e
