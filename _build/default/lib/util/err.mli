(** Structured compiler errors.

    Every analysis and transformation reports failures through [error] rather
    than bare strings, so that tests can match on the failure class and the
    CLI can render a uniform message. *)

type t =
  | Invalid_parameterization of string
      (** A port size/step/offset is malformed (zero or negative extents,
          step larger than permitted, ...). *)
  | Graph_malformed of string
      (** The application graph violates a structural invariant
          (dangling edge, duplicate port connection, missing source, ...). *)
  | Rate_mismatch of string
      (** Two inputs of a kernel disagree on iteration count or rate and the
          disagreement cannot be fixed by trimming/padding. *)
  | Alignment_error of string
      (** Inset propagation detected data misalignment that the selected
          policy refuses to repair automatically. *)
  | Resource_exhausted of string
      (** A kernel cannot fit on any processing element even at maximum
          parallelization. *)
  | Not_schedulable of string
      (** The simulator or a schedulability check proved the real-time
          constraint cannot be met. *)
  | Unsupported of string
      (** A feature combination the compiler does not handle. *)

exception Error of t
(** Raised by [fail] and by analyses that cannot return a [result]. *)

val fail : t -> 'a
(** [fail e] raises {!Error}[ e]. *)

val invalidf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [invalidf fmt ...] fails with {!Invalid_parameterization}. *)

val graphf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [graphf fmt ...] fails with {!Graph_malformed}. *)

val ratef : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [ratef fmt ...] fails with {!Rate_mismatch}. *)

val alignf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [alignf fmt ...] fails with {!Alignment_error}. *)

val resourcef : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [resourcef fmt ...] fails with {!Resource_exhausted}. *)

val schedulef : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [schedulef fmt ...] fails with {!Not_schedulable}. *)

val unsupportedf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [unsupportedf fmt ...] fails with {!Unsupported}. *)

val to_string : t -> string
(** [to_string e] renders [e] with its class prefix, e.g.
    ["rate mismatch: ..."] . *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer for errors. *)

val guard : (unit -> 'a) -> ('a, t) result
(** [guard f] runs [f ()], catching {!Error} into [Error _]. Other
    exceptions propagate. *)
