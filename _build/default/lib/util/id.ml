type gen = { mutable next : int }

let make_gen () = { next = 0 }

let fresh g =
  let n = g.next in
  g.next <- n + 1;
  n

let peek g = g.next
let reserve g n = if g.next < n then g.next <- n
