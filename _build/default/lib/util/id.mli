(** Fresh integer identifiers.

    Every structural object in the compiler (graph nodes, edges, processors,
    simulation events) carries a small integer identity. Generators are
    explicit values so that independent graphs or simulations never share a
    counter, keeping runs deterministic and tests isolated. *)

type gen
(** A mutable identifier generator. *)

val make_gen : unit -> gen
(** [make_gen ()] is a fresh generator whose first identifier is [0]. *)

val fresh : gen -> int
(** [fresh g] returns the next identifier and advances [g]. *)

val peek : gen -> int
(** [peek g] is the identifier that the next [fresh g] will return. *)

val reserve : gen -> int -> unit
(** [reserve g n] advances [g] so that all future identifiers are [>= n].
    Used when grafting nodes from one graph into another. *)
