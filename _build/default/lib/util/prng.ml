type t = { mutable state : int64 }

let create seed =
  let s =
    if seed = 0 then 0x9E3779B97F4A7C15L else Int64.of_int seed
  in
  { state = s }

(* xorshift64* step: shift-xor scramble followed by an odd multiply. *)
let next t =
  let s = t.state in
  let s = Int64.logxor s (Int64.shift_right_logical s 12) in
  let s = Int64.logxor s (Int64.shift_left s 25) in
  let s = Int64.logxor s (Int64.shift_right_logical s 27) in
  t.state <- s;
  Int64.mul s 0x2545F4914F6CDD1DL

let split t =
  let s = next t in
  { state = (if Int64.equal s 0L then 1L else s) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (next t) 1L) 0L <> 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
