(** Deterministic pseudo-random numbers.

    The simulator, the annealing placer and the synthetic image generators
    all need reproducible randomness that does not depend on global state.
    This is a splittable xorshift64* generator; identical seeds always yield
    identical streams on every platform. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator. [seed = 0] is remapped internally so the
    stream is never degenerate. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
