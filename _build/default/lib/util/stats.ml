let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map log xs in
    exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length xs))

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) *. (x -. m)) xs in
    sqrt (mean sq)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let clampf ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let ceil_div a b =
  if b <= 0 then invalid_arg "Stats.ceil_div: divisor must be positive";
  if a < 0 then invalid_arg "Stats.ceil_div: dividend must be non-negative";
  (a + b - 1) / b

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
