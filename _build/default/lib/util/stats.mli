(** Small numeric helpers shared by analyses and reports. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; [0.] on the empty list. *)

val stdev : float list -> float
(** Population standard deviation; [0.] on lists shorter than 2. *)

val minimum : float list -> float
(** Smallest element. Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element. Raises [Invalid_argument] on the empty list. *)

val clampf : lo:float -> hi:float -> float -> float
(** [clampf ~lo ~hi x] limits [x] to the closed interval. *)

val clamp : lo:int -> hi:int -> int -> int
(** Integer clamp. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a/b] rounded up; [b] must be positive, [a]
    non-negative. *)

val pct : float -> string
(** [pct 0.374] is ["37.4%"]. *)
