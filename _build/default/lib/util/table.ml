type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than headers";
  let cells = if k < n then cells @ List.init (n - k) (fun _ -> "") else cells in
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let is_numeric s =
  s <> ""
  &&
  match float_of_string_opt (String.concat "" (String.split_on_char '%' s)) with
  | Some _ -> true
  | None -> (
    (* allow suffixed values such as "1.5x" or "96x96" to stay left-aligned *)
    match float_of_string_opt s with Some _ -> true | None -> false)

let render t =
  let rows = List.rev t.rows in
  let all_cells =
    t.headers :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let ncols = List.length t.headers in
  let width i =
    List.fold_left
      (fun acc cells -> max acc (String.length (List.nth cells i)))
      0 all_cells
  in
  let widths = List.init ncols width in
  let pad w s numeric =
    let fill = String.make (w - String.length s) ' ' in
    if numeric then fill ^ s else s ^ fill
  in
  let render_cells cells =
    let parts =
      List.map2 (fun w s -> pad w s (is_numeric s)) widths cells
    in
    "| " ^ String.concat " | " parts ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let body =
    List.map (function Cells c -> render_cells c | Rule -> rule) rows
  in
  let lines =
    (if t.title = "" then [] else [ t.title ])
    @ [ rule; render_cells t.headers; rule ]
    @ body @ [ rule ]
  in
  String.concat "\n" lines ^ "\n"

let print t = print_string (render t)
