(** Plain-text table rendering for experiment reports.

    Every figure/table reproduction prints through this module so the bench
    and CLI output share one look. Columns are auto-sized; numeric cells are
    right-aligned when they parse as numbers. *)

type t
(** A table under construction. *)

val create : title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends one row. Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal separator row. *)

val render : t -> string
(** [render t] is the full table as a string, trailing newline included. *)

val print : t -> unit
(** [print t] renders to stdout. *)
