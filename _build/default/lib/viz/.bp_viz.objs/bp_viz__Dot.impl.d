lib/viz/dot.ml: Bp_geometry Bp_graph Bp_kernel Bp_util Fun Hashtbl List Printf Stdlib String
