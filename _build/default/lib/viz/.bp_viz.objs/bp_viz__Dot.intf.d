lib/viz/dot.mli: Bp_graph
