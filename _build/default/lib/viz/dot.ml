module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Port = Bp_kernel.Port

let shape_of (n : Graph.node) =
  match n.Graph.spec.Spec.role with
  | Spec.Source | Spec.Const_source -> "oval"
  | Spec.Sink -> "oval"
  | Spec.Compute -> "box"
  | Spec.Buffer -> "parallelogram"
  | Spec.Split | Spec.Join -> "diamond"
  | Spec.Inset -> "invhouse"
  | Spec.Pad -> "house"
  | Spec.Replicate -> "hexagon"

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let node_label (n : Graph.node) =
  match n.Graph.meta with
  | Graph.Buffer_meta { storage } ->
    Printf.sprintf "%s\\n[%dx%d]" n.Graph.name storage.Bp_geometry.Size.w
      storage.Bp_geometry.Size.h
  | _ -> n.Graph.name

let replicated_edge g (c : Graph.channel) =
  (* A channel is drawn dashed when it feeds a replicated input or carries
     configuration data from a constant source / replicate kernel. *)
  let dst = Graph.node g c.Graph.dst.Graph.node in
  let src = Graph.node g c.Graph.src.Graph.node in
  (match Bp_util.Err.guard (fun () ->
       Spec.find_input dst.Graph.spec c.Graph.dst.Graph.port)
   with
  | Ok p -> p.Port.replicated
  | Error _ -> false)
  ||
  match src.Graph.spec.Spec.role with
  | Spec.Const_source | Spec.Replicate -> true
  | _ -> false

let to_dot ?(title = "application") ?(groups = []) g =
  let buf = Stdlib.Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Stdlib.Buffer.add_string buf) fmt in
  addf "digraph \"%s\" {\n" (escape title);
  addf "  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=8];\n";
  let grouped = Hashtbl.create 16 in
  List.iteri
    (fun i ids ->
      addf "  subgraph cluster_%d {\n    label=\"PE%d\";\n    style=rounded;\n"
        i i;
      List.iter
        (fun id ->
          Hashtbl.replace grouped id ();
          let n = Graph.node g id in
          addf "    n%d [label=\"%s\", shape=%s];\n" id
            (escape (node_label n))
            (shape_of n))
        ids;
      addf "  }\n")
    groups;
  List.iter
    (fun (n : Graph.node) ->
      if not (Hashtbl.mem grouped n.Graph.id) then
        addf "  n%d [label=\"%s\", shape=%s];\n" n.Graph.id
          (escape (node_label n))
          (shape_of n))
    (Graph.nodes g);
  List.iter
    (fun (c : Graph.channel) ->
      let style = if replicated_edge g c then " [style=dashed]" else "" in
      addf "  n%d -> n%d%s;\n" c.Graph.src.Graph.node c.Graph.dst.Graph.node
        style)
    (Graph.channels g);
  List.iter
    (fun (d : Graph.dep) ->
      addf "  n%d -> n%d [style=dotted, color=red, constraint=false];\n"
        d.Graph.dep_src d.Graph.dep_dst)
    (Graph.deps g);
  addf "}\n";
  Stdlib.Buffer.contents buf

let write_file ~path source =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc source)
