(** Graphviz export of application graphs.

    Renders the paper's visual conventions: parallelograms for buffers,
    diamonds for split/join FSMs, inverted houses for inset kernels, dashed
    edges for replicated (configuration) streams, and dotted red edges for
    data-dependency edges. *)

val to_dot :
  ?title:string ->
  ?groups:Bp_graph.Graph.node_id list list ->
  Bp_graph.Graph.t ->
  string
(** [to_dot g] is the Graphviz source. When [groups] is given (a
    kernel-to-processor mapping), each group is drawn as a cluster —
    Figure 12's boxes. *)

val write_file : path:string -> string -> unit
(** Write rendered DOT source to a file. *)
