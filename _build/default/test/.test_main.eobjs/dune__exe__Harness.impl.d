test/harness.ml: Alcotest App Behaviour Block_parallel Err Hashtbl Image Inset Item Kernel List Machine Option Pipeline Port QCheck2 QCheck_alcotest Queue Sim Size String Token
