test/test_differential.ml: Alcotest Arith Block_parallel Conv Decimate Graph Harness Image Image_ops List Machine Median Pipeline Printf QCheck2 Rate Sim Sink Size Source String Upsample Window
