test/test_extensions.ml: Alcotest App Apps Array Block_parallel Energy Err Float Harness List Machine Mapping Pipeline Placement Printf Rate Rate_search Schedulability Sim Size Trace
