test/test_geometry.ml: Alcotest Block_parallel Conv Err Harness Inset Offset QCheck2 Rate Reuse Size Step Window
