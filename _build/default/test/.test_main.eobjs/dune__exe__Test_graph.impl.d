test/test_graph.ml: Alcotest Arith Block_parallel Err Format Graph Harness Image List Rate Sink Size Source Window
