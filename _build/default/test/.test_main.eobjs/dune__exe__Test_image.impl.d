test/test_image.ml: Alcotest Array Block_parallel Float Harness Image Image_ops List Prng QCheck2 Size
