test/test_integration.ml: Alcotest Align App Apps Array Block_parallel Bp_report Dot Filename Format Harness Image Inset List Machine Multiplex Pipeline Printf Rate Reuse Sink Size Sys
