test/test_kernel.ml: Alcotest Arith Behaviour Block_parallel Conv Costs Err Harness Histogram Image Item Kernel List Method_spec Port Size Token Window
