test/test_lang.ml: Alcotest Block_parallel Err Graph Harness Image Image_ops Lang List Machine Pipeline Printf Rate Sim Sink Size
