test/test_placement.ml: Alcotest App Apps Block_parallel Float List Machine Mapping Pipeline Placement Printf Rate Size
