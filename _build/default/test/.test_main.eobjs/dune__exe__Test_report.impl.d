test/test_report.ml: Alcotest App Apps Block_parallel Bp_report Format Harness List Machine Pipeline Rate Schedulability Size Stdlib
