test/test_sweeps.ml: Alcotest Apps Block_parallel Conv Decimate Graph Harness Image Image_ops List Machine Median Pipeline Printf Rate Sim Sink Size Source Window
