test/test_util.ml: Alcotest Array Block_parallel Bp_util Err Fun Harness Id List Prng QCheck2 String Table
