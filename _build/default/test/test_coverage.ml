(* Additional coverage: the machine model, kernel corner cases, stream
   metadata on elaborated graphs, and determinism guarantees. *)

open Block_parallel
open Harness

(* ---- machine model ------------------------------------------------------ *)

let test_machine_constructors () =
  let m = Machine.default in
  Alcotest.(check bool) "positive freq" true (m.Machine.pe.Machine.freq_hz > 0.);
  Alcotest.(check (float 1e-12)) "cycle time" (1. /. 1e6)
    (Machine.cycle_time_s m.Machine.pe);
  Alcotest.(check (float 1e-12)) "read time"
    (10. *. 0.15 /. 1e6)
    (Machine.read_time_s m.Machine.pe ~words:10);
  Alcotest.(check bool) "usable below freq" true
    (Machine.usable_cycles_per_s m < m.Machine.pe.Machine.freq_hz);
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Machine.pe_v ~freq_hz:0. ~mem_words:1 ~read_cycles_per_word:0.
        ~write_cycles_per_word:0. ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Machine.v ~target_utilization:1.5 Machine.default.Machine.pe);
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Machine.v ~max_pes:0 Machine.default.Machine.pe)

let test_machine_by_name () =
  List.iter
    (fun n -> ignore (Machine.by_name n))
    Machine.names;
  expect_error (Err.Unsupported "") (fun () -> ignore (Machine.by_name "nope"));
  Alcotest.(check bool) "small memory smaller" true
    (Machine.small_memory.Machine.pe.Machine.mem_words
    < Machine.default.Machine.pe.Machine.mem_words);
  Alcotest.(check bool) "fast pe faster" true
    (Machine.fast_pe.Machine.pe.Machine.freq_hz
    > Machine.default.Machine.pe.Machine.freq_hz)

(* ---- kernel corner cases ------------------------------------------------- *)

let test_bayer_strided_replica () =
  (* A custom replica must see exactly its share of the scan order. *)
  let frame = Size.v 6 6 in
  let mosaic = Image.Gen.ramp frame in
  let golden_r, _, _ = Image_ops.bayer_demosaic mosaic in
  let base = Bayer.spec ~frame () in
  let replicas =
    List.init 2 (fun k -> Kernel.replica_spec base ~replica:k ~ways:2)
  in
  let benches = List.map bench replicas in
  (* Round-robin the 16 valid windows across the two replicas. *)
  List.iteri
    (fun i (ox, oy) ->
      let b = List.nth benches (i mod 2) in
      b.feed "in" (Item.data (Image.sub mosaic ~x:ox ~y:oy (Size.v 3 3))))
    (List.concat_map (fun oy -> List.map (fun ox -> (ox, oy)) [ 0; 1; 2; 3 ])
       [ 0; 1; 2; 3 ]);
  List.iter (fun b -> ignore (b.run_to_idle ())) benches;
  let outs =
    List.map
      (fun b ->
        List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "r")))
      benches
  in
  (* Interleave back and compare to the golden red plane. *)
  let merged = Array.make 16 0. in
  List.iteri
    (fun k vals -> List.iteri (fun i v -> merged.((2 * i) + k) <- v) vals)
    outs;
  let got = Image.of_scanline_list (Size.v 4 4) (Array.to_list merged) in
  Alcotest.check image "strided replicas reassemble" golden_r got

let test_histogram_find_bin_edges () =
  let b = bench (Histogram.spec ~bins:4 ()) in
  b.feed "bins" (Item.data (Histogram.bin_lower_bounds ~bins:4 ~lo:0. ~hi:4.));
  List.iter (fun v -> b.feed "in" (px v)) [ -10.; 0.; 3.999; 42. ];
  b.feed "in" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  match data_chunks (b.out "out") with
  | [ h ] ->
    Alcotest.(check (float 0.)) "below range clamps to bin 0" 2.
      (Image.get h ~x:0 ~y:0);
    Alcotest.(check (float 0.)) "above range clamps to last" 2.
      (Image.get h ~x:3 ~y:0)
  | _ -> Alcotest.fail "expected one histogram"

let test_buffer_forwards_user_tokens () =
  let frame = Size.v 4 4 in
  let cfg = Buffer.config ~out_window:(Window.windowed 3 3) ~frame () in
  let b = bench (Buffer.spec cfg) in
  b.feed "in" (Item.ctl (Token.user "knob" 0));
  ignore (b.run_to_idle ());
  match b.out "out" with
  | [ Item.Ctl t ] ->
    Alcotest.(check bool) "user token forwarded" true
      (Token.kind_equal t.Token.kind (Token.User "knob"))
  | _ -> Alcotest.fail "expected the token"

let test_source_noeol () =
  let frame = Size.v 3 2 in
  let spec =
    Source.spec ~emit_eol:false ~frame ~frames:[ Image.Gen.ramp frame ] ()
  in
  let b = bench spec in
  ignore (b.run_to_idle ());
  let items = b.out "out" in
  Alcotest.(check int) "pixels + EOF only" 7 (List.length items);
  Alcotest.(check int) "single token" 1 (List.length (tokens_of items))

let test_replicate_fanout_in_sim () =
  (* One replicate node feeding two consumers: both receive every item. *)
  let g = Graph.create () in
  let frame = Size.v 4 3 in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 10. })
      (Source.spec ~frame ~frames:[ Image.Gen.ramp frame ] ())
  in
  let rep = Graph.add g (Split_join.replicate ~window:Window.pixel ()) in
  let c1 = Sink.collector () and c2 = Sink.collector () in
  let s1 = Graph.add g ~name:"a" (Sink.spec ~window:Window.pixel c1 ()) in
  let s2 = Graph.add g ~name:"b" (Sink.spec ~window:Window.pixel c2 ()) in
  Graph.connect g ~from:(src, "out") ~into:(rep, "in");
  Graph.connect g ~from:(rep, "out") ~into:(s1, "in");
  Graph.connect g ~from:(rep, "out") ~into:(s2, "in");
  let result =
    Sim.run ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  Alcotest.(check int) "copy 1" 12 (List.length (Sink.chunks c1));
  Alcotest.(check int) "copy 2" 12 (List.length (Sink.chunks c2))

let test_decimate_kernel_spec () =
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Decimate.spec ~fx:0 ~fy:2 ());
  let s = Decimate.spec ~fx:2 ~fy:3 () in
  let w = (Kernel.find_input s "in").Port.window in
  Alcotest.(check bool) "step 2,3" true (Step.equal w.Window.step (Step.v 2 3))

(* ---- elaborated stream metadata ------------------------------------------ *)

let test_column_split_streams () =
  let inst =
    Apps.Parallel_buffer.v ~frame:(Size.v 96 16) ~rate:(Rate.hz 20.)
      ~n_frames:1 ()
  in
  let compiled =
    Pipeline.compile ~machine:Machine.small_memory inst.App.graph
  in
  let g = compiled.Pipeline.graph in
  let an = compiled.Pipeline.analysis in
  (* Stripe streams: the sub-buffer inputs cover their declared ranges. *)
  let split =
    List.find
      (fun (n : Graph.node) ->
        match n.Graph.meta with
        | Graph.Column_split_meta _ -> true
        | _ -> false)
      (Graph.nodes g)
  in
  let ranges =
    match split.Graph.meta with
    | Graph.Column_split_meta { ranges } -> ranges
    | _ -> assert false
  in
  List.iteri
    (fun k (c : Graph.channel) ->
      let s = Dataflow.stream_of an c.Graph.chan_id in
      let c0, c1 = ranges.(k) in
      Alcotest.(check int)
        (Printf.sprintf "stripe %d width" k)
        (c1 - c0) s.Stream.extent.Size.w)
    (Graph.out_channels g split.Graph.id ());
  (* The pattern join restores the full logical extent. *)
  let join =
    List.find
      (fun (n : Graph.node) ->
        match n.Graph.meta with
        | Graph.Pattern_join_meta _ -> true
        | _ -> false)
      (Graph.nodes g)
  in
  let out = List.hd (Graph.out_channels g join.Graph.id ()) in
  let s = Dataflow.stream_of an out.Graph.chan_id in
  Alcotest.check size "rejoined extent" (Size.v 96 16) s.Stream.extent

(* ---- determinism ---------------------------------------------------------- *)

let test_sim_deterministic () =
  let run () =
    let inst =
      Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
        ~n_frames:2 ()
    in
    let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
    let result = Pipeline.simulate compiled ~greedy:true in
    ( result.Sim.duration_s,
      Sim.average_utilization result,
      List.map
        (fun c -> Image.to_scanline_list c)
        (Sink.chunks (List.assoc "result" inst.App.collectors)) )
  in
  let d1, u1, c1 = run () in
  let d2, u2, c2 = run () in
  Alcotest.(check (float 1e-12)) "same duration" d1 d2;
  Alcotest.(check (float 1e-12)) "same utilization" u1 u2;
  Alcotest.(check bool) "same pixels" true (c1 = c2)

let test_multiplex_deterministic () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let a = Multiplex.greedy compiled.Pipeline.machine compiled.Pipeline.graph in
  let b = Multiplex.greedy compiled.Pipeline.machine compiled.Pipeline.graph in
  Alcotest.(check bool) "same grouping" true (a = b)

let suite =
  [
    Alcotest.test_case "machine: constructors" `Quick
      test_machine_constructors;
    Alcotest.test_case "machine: by_name" `Quick test_machine_by_name;
    Alcotest.test_case "bayer: strided replicas" `Quick
      test_bayer_strided_replica;
    Alcotest.test_case "histogram: clamping" `Quick
      test_histogram_find_bin_edges;
    Alcotest.test_case "buffer: user tokens" `Quick
      test_buffer_forwards_user_tokens;
    Alcotest.test_case "source: noeol" `Quick test_source_noeol;
    Alcotest.test_case "replicate: fanout" `Quick test_replicate_fanout_in_sim;
    Alcotest.test_case "decimate: spec" `Quick test_decimate_kernel_spec;
    Alcotest.test_case "streams: column split metadata" `Quick
      test_column_split_streams;
    Alcotest.test_case "determinism: simulator" `Slow test_sim_deterministic;
    Alcotest.test_case "determinism: multiplexer" `Quick
      test_multiplex_deterministic;
  ]

(* ---- upsample / add2 / latency -------------------------------------------- *)

let test_upsample_modes () =
  let img = Image.of_scanline_list (Size.v 2 1) [ 3.; 4. ] in
  let hold = Upsample.reference ~mode:Upsample.Hold ~fx:2 ~fy:2 img in
  Alcotest.(check (list (float 0.)))
    "hold" [ 3.; 3.; 4.; 4.; 3.; 3.; 4.; 4. ]
    (Image.to_scanline_list hold);
  let zs = Upsample.reference ~mode:Upsample.Zero_stuff ~fx:2 ~fy:2 img in
  Alcotest.(check (list (float 0.)))
    "zero stuff" [ 3.; 0.; 4.; 0.; 0.; 0.; 0.; 0. ]
    (Image.to_scanline_list zs)

let test_upsample_in_sim () =
  let frame = Size.v 6 4 in
  let rate = Rate.hz 10. in
  let frames = Image.Gen.frame_sequence ~seed:21 frame 2 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let up = Graph.add g (Upsample.spec ~fx:2 ~fy:2 ()) in
  let collector = Sink.collector () in
  let sink =
    Graph.add g (Sink.spec ~window:(Window.block 2 2) collector ())
  in
  Graph.connect g ~from:(src, "out") ~into:(up, "in");
  Graph.connect g ~from:(up, "out") ~into:(sink, "in");
  let result =
    Sim.run ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  (* Stitch the 2x2 blocks back into upsampled frames and compare. *)
  let stitch chunks =
    let out = Image.create (Size.v 12 8) in
    List.iteri
      (fun i block ->
        let bx = i mod 6 and by = i / 6 in
        Image.blit ~src:block ~dst:out ~x:(bx * 2) ~y:(by * 2))
      chunks;
    out
  in
  List.iter2
    (fun f chunks ->
      let golden = Upsample.reference ~mode:Upsample.Hold ~fx:2 ~fy:2 f in
      Alcotest.check image "upsampled" golden (stitch chunks))
    frames
    (Sink.chunks_between_frames collector)

let test_add2_kernel () =
  let b = bench (Arith.add2 ()) in
  b.feed "in0" (px 3.);
  b.feed "in1" (px 4.);
  ignore (b.run_to_idle ());
  match data_chunks (b.out "out") with
  | [ img ] -> Alcotest.(check (float 0.)) "sum" 7. (Image.get img ~x:0 ~y:0)
  | _ -> Alcotest.fail "expected one chunk"

let test_first_output_latency () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:2 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let lat greedy =
    match Sim.first_output_latency_s (Pipeline.simulate compiled ~greedy) with
    | Some l -> l
    | None -> Alcotest.fail "no output"
  in
  let l_1to1 = lat false and l_gm = lat true in
  let period = 1. /. 30. in
  (* The histogram result needs the whole frame: latency sits within a
     frame period of the frame's end, under either mapping. *)
  Alcotest.(check bool) "latency at least one frame" true (l_1to1 >= period *. 0.9);
  Alcotest.(check bool) "latency bounded" true (l_1to1 < 2. *. period);
  (* Throughput-insensitive claim: mapping changes latency only mildly at
     these utilizations. *)
  Alcotest.(check bool) "mapping leaves latency similar" true
    (Float.abs (l_gm -. l_1to1) < 0.5 *. period)

let suite =
  suite
  @ [
      Alcotest.test_case "upsample: reference modes" `Quick
        test_upsample_modes;
      Alcotest.test_case "upsample: in simulation" `Quick test_upsample_in_sim;
      Alcotest.test_case "arith: add2" `Quick test_add2_kernel;
      Alcotest.test_case "latency: first output" `Quick
        test_first_output_latency;
    ]

let test_switch_overhead () =
  (* The same multiplexed program costs more busy time when context
     switches are charged; a dedicated (1:1) mapping is unaffected. *)
  let inst () =
    Apps.Histogram_app.v ~frame:(Size.v 12 9) ~rate:(Rate.hz 20.) ~n_frames:2 ()
  in
  let machine_with sw =
    Machine.v
      (Machine.pe_v ~switch_cycles:sw ~freq_hz:1e6 ~mem_words:4096
         ~read_cycles_per_word:0.15 ~write_cycles_per_word:0.15 ())
  in
  let busy machine greedy =
    let i = inst () in
    let compiled = Pipeline.compile ~machine i.App.graph in
    let r = Pipeline.simulate compiled ~greedy in
    Array.fold_left
      (fun acc (p : Sim.proc_stats) -> acc +. p.Sim.run_s)
      0. r.Sim.procs
  in
  let base = busy (machine_with 0.) true in
  let heavy = busy (machine_with 50.) true in
  Alcotest.(check bool) "switching costs time" true (heavy > base);
  (* Dedicated PEs never switch. *)
  let one_base = busy (machine_with 0.) false in
  let one_heavy = busy (machine_with 50.) false in
  Alcotest.(check (float 1e-9)) "1:1 unaffected" one_base one_heavy

let test_upsample_then_window () =
  (* Block-producing kernel feeding a windowed consumer: the buffering pass
     must insert a block-fed buffer (in_block = 2x2). *)
  let frame = Size.v 8 6 in
  let rate = Rate.hz 10. in
  let frames = Image.Gen.frame_sequence ~seed:31 frame 2 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let up = Graph.add g (Upsample.spec ~fx:2 ~fy:2 ()) in
  let blur = Graph.add g (Conv.spec ~w:3 ~h:3 ()) in
  let coeffs = Image.Gen.constant (Size.v 3 3) (1. /. 9.) in
  let c = Graph.add g (Source.const ~chunk:coeffs ()) in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(up, "in");
  Graph.connect g ~from:(up, "out") ~into:(blur, "in");
  Graph.connect g ~from:(c, "out") ~into:(blur, "coeff");
  Graph.connect g ~from:(blur, "out") ~into:(sink, "in");
  let compiled = Pipeline.compile ~machine:Machine.default g in
  (* A buffer was inserted between upsample and conv, fed 2x2 blocks. *)
  let block_buffer =
    List.exists
      (fun (b : Buffering.inserted) ->
        let n = Graph.node compiled.Pipeline.graph b.Buffering.buffer_node in
        let inp = Kernel.find_input n.Graph.spec "in" in
        Size.equal inp.Port.window.Window.size (Size.v 2 2))
      compiled.Pipeline.buffers
  in
  Alcotest.(check bool) "block-fed buffer inserted" true block_buffer;
  let result = Pipeline.simulate compiled ~greedy:false in
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  let golden =
    List.map
      (fun f ->
        Image_ops.convolve
          (Upsample.reference ~mode:Upsample.Hold ~fx:2 ~fy:2 f)
          ~kernel:coeffs)
      frames
  in
  let out_extent = Image.size (List.hd golden) in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list out_extent
          (List.map (fun ch -> Image.get ch ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames collector)
  in
  List.iter2
    (fun a b -> Alcotest.check image "upsample+blur golden" a b)
    golden got

let test_shipped_programs_parse () =
  (* The .bp programs shipped under examples/programs must keep compiling
     and simulating cleanly. *)
  List.iter
    (fun (path, allowed_leftover) ->
      let p = Lang.parse_file path in
      let compiled = Pipeline.compile ~machine:Machine.default p.Lang.graph in
      let result = Pipeline.simulate compiled ~greedy:true in
      Alcotest.(check bool)
        (Printf.sprintf "%s leftovers <= %d" path allowed_leftover)
        true
        (result.Sim.leftover_items <= allowed_leftover);
      List.iter
        (fun (name, collector) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s output %s nonempty" path name)
            true
            (Sink.chunks collector <> []))
        p.Lang.outputs)
    [
      ("../examples/programs/edge_histogram.bp", 0);
      ("../examples/programs/radio_fir.bp", 0);
      ("../examples/programs/edge_detect.bp", 0);
      (* The delay line holds the final frame plus its tokens. *)
      ("../examples/programs/motion.bp", (16 * 12) + 12 + 4);
    ]

let suite =
  suite
  @ [
      Alcotest.test_case "sim: switch overhead" `Quick test_switch_overhead;
      Alcotest.test_case "buffer: block-fed" `Quick test_upsample_then_window;
      Alcotest.test_case "lang: shipped programs" `Quick
        test_shipped_programs_parse;
    ]

let test_pp_smoke () =
  (* Formatting surfaces stay stable and total. *)
  Alcotest.(check string) "window" "(5x5)[1,1]@[2.0,2.0]"
    (Window.to_string (Conv.input_window ~w:5 ~h:5));
  Alcotest.(check string) "rate" "30Hz" (Rate.to_string (Rate.hz 30.));
  Alcotest.(check bool) "machine" true
    (Harness.contains
       (Format.asprintf "%a" Machine.pp Machine.default)
       "64 PEs");
  Alcotest.(check bool) "stream" true
    (Harness.contains
       (Format.asprintf "%a" Stream.pp
          (Stream.source_stream ~frame:(Size.v 4 3) ~rate:(Rate.hz 5.)
             ~origin:0))
       "(4x3)")

let test_trace_window_args () =
  let inst =
    Apps.Histogram_app.v ~frame:(Size.v 6 5) ~rate:(Rate.hz 20.) ~n_frames:1 ()
  in
  let g = inst.App.graph in
  let trace, observer = Trace.recorder () in
  ignore
    (Sim.run ~observer ~graph:g ~mapping:(Mapping.one_to_one g)
       ~machine:Machine.default ());
  (* A window that excludes all firings renders as all idle. *)
  let late = Trace.gantt ~width:20 ~from_s:10. ~until_s:11. trace in
  Alcotest.(check bool) "no busy cells out of window" false
    (Harness.contains late "#");
  let full = Trace.gantt ~width:20 trace in
  Alcotest.(check bool) "busy cells in full window" true
    (Harness.contains full "#")

let test_rate_search_top_fits () =
  (* When even the highest probe fits, the search takes it directly. *)
  let build ~rate_hz =
    let frame = Size.v 6 5 in
    let g = Graph.create () in
    let src =
      Graph.add g
        ~meta:(Graph.Source_meta { frame; rate = Rate.hz rate_hz })
        (Source.spec ~frame ~frames:[] ())
    in
    let f = Graph.add g (Arith.forward ()) in
    let c = Sink.collector () in
    let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
    Graph.connect g ~from:(src, "out") ~into:(f, "in");
    Graph.connect g ~from:(f, "out") ~into:(sink, "in");
    g
  in
  let r =
    Rate_search.search ~lo_hz:1. ~hi_hz:50. ~iterations:4
      ~machine:Machine.default ~max_pes:4 build
  in
  Alcotest.(check (float 1e-9)) "takes the ceiling" 50.
    r.Rate_search.best_rate_hz;
  Alcotest.(check int) "only two probes" 2
    (List.length r.Rate_search.probes)

let test_dot_pad_shape () =
  let inst =
    Apps.Image_pipeline.v ~policy:Align.Pad_zero ~frame:(Size.v 24 18)
      ~rate:(Rate.hz 20.) ~n_frames:1 ()
  in
  let compiled =
    Pipeline.compile ~align_policy:Align.Pad_zero ~machine:Machine.default
      inst.App.graph
  in
  let dot = Dot.to_dot compiled.Pipeline.graph in
  Alcotest.(check bool) "pad drawn as house" true
    (Harness.contains dot "shape=house")

let suite =
  suite
  @ [
      Alcotest.test_case "pp: smoke" `Quick test_pp_smoke;
      Alcotest.test_case "trace: window args" `Quick test_trace_window_args;
      Alcotest.test_case "rate search: ceiling" `Quick
        test_rate_search_top_fits;
      Alcotest.test_case "dot: pad shape" `Quick test_dot_pad_shape;
    ]
