(* Tests for the extension modules: static schedulability, energy
   accounting, and execution traces. *)

open Block_parallel
open Harness

let compiled_example ?(rate = Rate.hz 30.) () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate ~n_frames:2 ()
  in
  (inst, Pipeline.compile ~machine:Machine.default inst.App.graph)

(* ---- schedulability ----------------------------------------------------- *)

let test_schedulable_after_compile () =
  let _, compiled = compiled_example () in
  let r = Schedulability.check compiled.Pipeline.machine compiled.Pipeline.graph in
  Alcotest.(check bool) "elaborated graph schedulable" true r.Schedulability.schedulable;
  Alcotest.(check bool) "has a bottleneck" true
    (r.Schedulability.bottleneck <> None);
  Alcotest.(check int) "PE prediction matches mapping"
    (Mapping.processors (Pipeline.mapping_one_to_one compiled))
    r.Schedulability.predicted_pe_count;
  (* Sorted by utilization, descending. *)
  let utils =
    List.map (fun (n : Schedulability.node_report) -> n.Schedulability.utilization)
      r.Schedulability.nodes
  in
  Alcotest.(check bool) "sorted" true
    (List.sort (fun a b -> Float.compare b a) utils = utils)

let test_raw_graph_flags_overload () =
  (* Before parallelization, a fast rate overloads the median — the static
     check must say so, and the compiled graph must fix it. *)
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 40.)
      ~n_frames:1 ()
  in
  let raw = Schedulability.check Machine.default inst.App.graph in
  Alcotest.(check bool) "raw graph not schedulable" false
    raw.Schedulability.schedulable;
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let post =
    Schedulability.check compiled.Pipeline.machine compiled.Pipeline.graph
  in
  Alcotest.(check bool) "compiled graph schedulable" true
    post.Schedulability.schedulable

let test_prediction_matches_simulation () =
  (* The static prediction and the dynamic verdict must agree on both a
     feasible and an infeasible program. *)
  let check_agreement rate =
    let inst =
      Apps.Histogram_app.v ~frame:(Size.v 24 18) ~rate ~n_frames:2 ()
    in
    let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
    let static =
      Schedulability.check compiled.Pipeline.machine compiled.Pipeline.graph
    in
    let result = Pipeline.simulate compiled ~greedy:false in
    let verdict =
      Sim.real_time_verdict result ~expected_frames:2
        ~period_s:(App.period_s inst) ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "static %b = dynamic %b at %s"
         static.Schedulability.schedulable verdict.Sim.met
         (Rate.to_string rate))
      static.Schedulability.schedulable verdict.Sim.met
  in
  check_agreement (Rate.hz 40.)

(* ---- the inverse throughput query ----------------------------------------- *)

let test_rate_search_finds_frontier () =
  let build ~rate_hz =
    (Apps.Histogram_app.v ~frame:(Size.v 24 18) ~rate:(Rate.hz rate_hz)
       ~n_frames:1 ())
      .App.graph
  in
  let r =
    Rate_search.search ~lo_hz:5. ~hi_hz:400. ~iterations:10
      ~machine:Machine.default ~max_pes:6 build
  in
  Alcotest.(check bool) "found a rate" true (r.Rate_search.best_rate_hz > 5.);
  Alcotest.(check bool) "within budget" true (r.Rate_search.best_pes <= 6);
  (* The found rate really is feasible and ~25% beyond is not, for this
     budget: re-check both ends by compiling directly. *)
  let fits rate_hz =
    match
      Err.guard (fun () ->
          let compiled =
            Pipeline.compile ~machine:Machine.default (build ~rate_hz)
          in
          Pipeline.processors_needed compiled ~greedy:true <= 6)
    with
    | Ok ok -> ok
    | Error _ -> false
  in
  Alcotest.(check bool) "best fits" true (fits r.Rate_search.best_rate_hz);
  Alcotest.(check bool) "frontier is tight" false
    (fits (r.Rate_search.best_rate_hz *. 1.5))

let test_rate_search_infeasible () =
  let build ~rate_hz =
    (Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz rate_hz)
       ~n_frames:1 ())
      .App.graph
  in
  (* One PE can never hold the whole pipeline. *)
  let r =
    Rate_search.search ~lo_hz:1. ~hi_hz:10. ~iterations:3
      ~machine:Machine.default ~max_pes:1 build
  in
  Alcotest.(check (float 0.)) "no feasible rate" 0. r.Rate_search.best_rate_hz

(* ---- energy -------------------------------------------------------------- *)

let test_energy_breakdown () =
  let _, compiled = compiled_example () in
  let result = Pipeline.simulate compiled ~greedy:false in
  let e = Energy.of_result ~machine:compiled.Pipeline.machine result in
  Alcotest.(check bool) "compute positive" true (e.Energy.compute_uj > 0.);
  Alcotest.(check bool) "channel positive" true (e.Energy.channel_uj > 0.);
  Alcotest.(check bool) "static positive" true (e.Energy.static_uj > 0.);
  Alcotest.(check (float 1e-9)) "network zero without placement" 0.
    e.Energy.network_uj;
  Alcotest.(check (float 1e-6)) "total sums" e.Energy.total_uj
    (e.Energy.compute_uj +. e.Energy.channel_uj +. e.Energy.static_uj
   +. e.Energy.network_uj)

let test_energy_greedy_saves_static () =
  (* The same work on fewer processors burns the same active energy but
     less static energy — the quantitative version of Section V. *)
  let _, compiled = compiled_example () in
  let e_1to1 =
    Energy.of_result ~machine:compiled.Pipeline.machine
      (Pipeline.simulate compiled ~greedy:false)
  in
  let e_gm =
    Energy.of_result ~machine:compiled.Pipeline.machine
      (Pipeline.simulate compiled ~greedy:true)
  in
  Alcotest.(check bool) "fewer PEs" true (e_gm.Energy.pes < e_1to1.Energy.pes);
  Alcotest.(check bool) "less static energy" true
    (e_gm.Energy.static_uj < e_1to1.Energy.static_uj);
  Alcotest.(check bool) "similar active energy" true
    (Float.abs (e_gm.Energy.compute_uj -. e_1to1.Energy.compute_uj)
    < 0.05 *. e_1to1.Energy.compute_uj);
  Alcotest.(check bool) "less total energy" true
    (e_gm.Energy.total_uj < e_1to1.Energy.total_uj)

let test_energy_with_placement () =
  let _, compiled = compiled_example () in
  let mapping = Pipeline.mapping_one_to_one compiled in
  let placement = Placement.place compiled.Pipeline.analysis mapping in
  let result = Pipeline.simulate compiled ~greedy:false in
  let e =
    Energy.of_result ~machine:compiled.Pipeline.machine
      ~placement_cost_word_hops_per_frame:placement.Placement.cost ~frames:2
      result
  in
  Alcotest.(check bool) "network energy counted" true (e.Energy.network_uj > 0.)

(* ---- traces -------------------------------------------------------------- *)

let traced_run () =
  let inst =
    Apps.Histogram_app.v ~frame:(Size.v 8 6) ~rate:(Rate.hz 20.) ~n_frames:1 ()
  in
  let g = inst.App.graph in
  let trace, observer = Trace.recorder () in
  let result =
    Sim.run ~observer ~graph:g ~mapping:(Mapping.one_to_one g)
      ~machine:Machine.default ()
  in
  (trace, result)

let test_trace_records_firings () =
  let trace, result = traced_run () in
  let fs = Trace.firings trace in
  Alcotest.(check bool) "firings recorded" true (List.length fs > 48);
  (* Times are nondecreasing and service times positive or zero. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Trace.at_s <= b.Trace.at_s +. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "time-ordered" true (monotone fs);
  (* Total traced service equals the processors' busy time. *)
  let traced =
    List.fold_left (fun acc f -> acc +. f.Trace.service_s) 0. fs
  in
  let busy =
    Array.fold_left
      (fun acc (p : Sim.proc_stats) ->
        acc +. p.Sim.run_s +. p.Sim.read_s +. p.Sim.write_s)
      0. result.Sim.procs
  in
  Alcotest.(check bool) "trace covers busy time" true
    (Float.abs (traced -. busy) < 1e-9)

let test_trace_summary_and_gantt () =
  let trace, _ = traced_run () in
  (match Trace.busiest_kernel trace with
  | Some (name, s) ->
    Alcotest.(check string) "histogram dominates" "Histogram" name;
    Alcotest.(check bool) "positive time" true (s > 0.)
  | None -> Alcotest.fail "expected firings");
  let gantt = Trace.gantt ~width:40 trace in
  Alcotest.(check bool) "one row per PE" true (contains gantt "PE0");
  Alcotest.(check bool) "busy cells" true (contains gantt "#");
  let per_proc = Trace.firings_on trace ~proc:0 in
  Alcotest.(check bool) "proc filter" true
    (List.for_all (fun f -> f.Trace.proc = 0) per_proc)

let test_trace_empty () =
  let trace, _ = Trace.recorder () in
  Alcotest.(check string) "empty gantt" "(empty trace)\n" (Trace.gantt trace);
  Alcotest.(check bool) "no busiest" true (Trace.busiest_kernel trace = None)

let suite =
  [
    Alcotest.test_case "schedulability: compiled graph" `Quick
      test_schedulable_after_compile;
    Alcotest.test_case "schedulability: raw overload" `Quick
      test_raw_graph_flags_overload;
    Alcotest.test_case "schedulability: matches simulation" `Quick
      test_prediction_matches_simulation;
    Alcotest.test_case "rate search: frontier" `Slow
      test_rate_search_finds_frontier;
    Alcotest.test_case "rate search: infeasible" `Quick
      test_rate_search_infeasible;
    Alcotest.test_case "energy: breakdown" `Quick test_energy_breakdown;
    Alcotest.test_case "energy: greedy saves static" `Quick
      test_energy_greedy_saves_static;
    Alcotest.test_case "energy: with placement" `Quick
      test_energy_with_placement;
    Alcotest.test_case "trace: records firings" `Quick
      test_trace_records_firings;
    Alcotest.test_case "trace: summary and gantt" `Quick
      test_trace_summary_and_gantt;
    Alcotest.test_case "trace: empty" `Quick test_trace_empty;
  ]

(* ---- placement-integrated simulation -------------------------------------- *)

let test_placement_affects_latency_not_throughput () =
  (* The paper's Section IV-D claim, tested rather than assumed: adding
     NoC hop delay leaves throughput intact and only moves latency. *)
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:3 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let mapping = Pipeline.mapping_one_to_one compiled in
  let placed = Placement.place compiled.Pipeline.analysis mapping in
  let run placement =
    Sim.run ?placement ~graph:compiled.Pipeline.graph ~mapping
      ~machine:compiled.Pipeline.machine ()
  in
  let base = run None in
  let with_noc =
    run
      (Some
         {
           Sim.tile_of_proc = placed.Placement.tile_of;
           hop_cycles_per_word = 2.;
         })
  in
  let verdict r =
    Sim.real_time_verdict r ~expected_frames:3
      ~period_s:(App.period_s inst) ()
  in
  Alcotest.(check bool) "throughput met without NoC" true (verdict base).Sim.met;
  Alcotest.(check bool) "throughput met with NoC" true
    (verdict with_noc).Sim.met;
  let lat r =
    match Sim.first_output_latency_s r with
    | Some l -> l
    | None -> Alcotest.fail "no output"
  in
  Alcotest.(check bool) "latency does not decrease" true
    (lat with_noc >= lat base -. 1e-12);
  (* The hop delay shows up as extra write time. *)
  let write r =
    Array.fold_left (fun acc (p : Sim.proc_stats) -> acc +. p.Sim.write_s) 0. r.Sim.procs
  in
  Alcotest.(check bool) "hop cycles charged" true
    (write with_noc > write base);
  (* And the functional result is untouched. *)
  let _, ok = App.verify inst with_noc in
  Alcotest.(check bool) "pixels identical" true ok

let suite =
  suite
  @ [
      Alcotest.test_case "placement: latency not throughput" `Slow
        test_placement_affects_latency_not_throughput;
    ]
