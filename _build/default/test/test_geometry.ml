(* Unit and property tests for the geometry layer: sizes, steps, offsets,
   windows, insets, rates — the math every analysis rests on. *)

open Block_parallel
open Harness

(* ---- generators -------------------------------------------------------- *)

let gen_size =
  QCheck2.Gen.(
    map (fun (w, h) -> Size.v w h) (pair (int_range 1 64) (int_range 1 64)))

let gen_window =
  (* Window of size <= 8, step <= size+3 (downsampling allowed), centered
     or zero offset. *)
  QCheck2.Gen.(
    map
      (fun ((w, h), (sx, sy), centered) ->
        let size = Size.v w h in
        let offset = if centered then Offset.centered size else Offset.zero in
        Window.v ~offset ~step:(Step.v sx sy) size)
      (triple
         (pair (int_range 1 8) (int_range 1 8))
         (pair (int_range 1 10) (int_range 1 10))
         bool))

(* ---- Size -------------------------------------------------------------- *)

let test_size_basic () =
  let s = Size.v 4 3 in
  Alcotest.(check int) "area" 12 (Size.area s);
  Alcotest.check size "square" (Size.v 5 5) (Size.square 5);
  Alcotest.check size "one" (Size.v 1 1) Size.one;
  Alcotest.check size "add" (Size.v 6 5) (Size.add s (Size.v 2 2));
  Alcotest.check size "sub" (Size.v 2 1) (Size.sub s (Size.v 2 2));
  Alcotest.check size "scale" (Size.v 8 9) (Size.scale s 2 3);
  Alcotest.check size "max_pair" (Size.v 4 7) (Size.max_pair s (Size.v 2 7));
  Alcotest.(check bool) "fits" true (Size.fits_within (Size.v 2 2) s);
  Alcotest.(check bool) "does not fit" false (Size.fits_within s (Size.v 2 2));
  Alcotest.(check string) "render" "(4x3)" (Size.to_string s)

let test_size_invalid () =
  expect_error (Err.Invalid_parameterization "") (fun () -> Size.v 0 3);
  expect_error (Err.Invalid_parameterization "") (fun () -> Size.v 3 (-1));
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Size.sub (Size.v 2 2) (Size.v 2 1))

let test_size_compare () =
  Alcotest.(check bool) "ordering" true (Size.compare (Size.v 1 9) (Size.v 2 1) < 0);
  Alcotest.(check int) "equal" 0 (Size.compare (Size.v 3 3) (Size.v 3 3))

(* ---- Step / Offset ----------------------------------------------------- *)

let test_step () =
  Alcotest.(check string) "render" "[2,3]" (Step.to_string (Step.v 2 3));
  Alcotest.(check bool) "of_size" true
    (Step.equal (Step.of_size (Size.v 4 5)) (Step.v 4 5));
  expect_error (Err.Invalid_parameterization "") (fun () -> Step.v 0 1)

let test_offset () =
  let c = Offset.centered (Size.v 5 5) in
  Alcotest.(check (float 1e-9)) "centered x" 2. c.Offset.ox;
  Alcotest.(check (float 1e-9)) "centered y" 2. c.Offset.oy;
  let c4 = Offset.centered (Size.v 4 4) in
  Alcotest.(check (float 1e-9)) "even floor" 2. c4.Offset.ox;
  Alcotest.(check bool) "add" true
    (Offset.equal (Offset.add c c) (Offset.v 4. 4.));
  expect_error (Err.Invalid_parameterization "") (fun () -> Offset.v (-1.) 0.);
  expect_error (Err.Invalid_parameterization "") (fun () -> Offset.v nan 0.)

(* ---- Window ------------------------------------------------------------ *)

let test_window_iterations_paper_example () =
  (* The paper's worked example: a 5x5 convolution over a 100x100 input has
     a 4x4 halo and iterates 96x96 (Section III-A). *)
  let w = Conv.input_window ~w:5 ~h:5 in
  Alcotest.(check (pair int int)) "halo" (4, 4) (Window.halo w);
  Alcotest.check size "iterations" (Size.v 96 96)
    (Window.iterations w ~frame:(Size.v 100 100))

let test_window_iterations_edges () =
  let w = Window.windowed 3 3 in
  Alcotest.check size "exact fit" (Size.v 1 1)
    (Window.iterations w ~frame:(Size.v 3 3));
  expect_error (Err.Rate_mismatch "") (fun () ->
      Window.iterations w ~frame:(Size.v 2 5))

let test_window_downsample () =
  let w = Window.v ~step:(Step.v 2 2) Size.one in
  Alcotest.check size "decimation grid" (Size.v 5 4)
    (Window.iterations w ~frame:(Size.v 10 8));
  Alcotest.(check (float 1e-9)) "no reuse" 0. (Window.reuse_fraction w)

let test_window_reuse_paper () =
  (* Figure 5(b): 24 of 25 elements reused in steady state. *)
  let w = Conv.input_window ~w:5 ~h:5 in
  Alcotest.(check int) "consumed" 25 (Window.elements_consumed_per_fire w);
  Alcotest.(check int) "new" 1 (Window.new_elements_per_fire w);
  Alcotest.(check (float 1e-9)) "reuse" (24. /. 25.) (Window.reuse_fraction w)

let test_window_block_no_reuse () =
  let w = Window.block 5 5 in
  Alcotest.(check (float 1e-9)) "block reuse" 0. (Window.reuse_fraction w);
  Alcotest.(check (pair int int)) "block halo" (0, 0) (Window.halo w)

let window_iterations_extent_inverse =
  qtest "extent_for_iterations inverts iterations"
    QCheck2.Gen.(pair gen_window gen_size)
    (fun (w, n) ->
      let extent = Window.extent_for_iterations w n in
      Size.equal (Window.iterations w ~frame:extent) n)

let window_iterations_monotone =
  qtest "bigger frames never reduce iterations"
    QCheck2.Gen.(pair gen_window gen_size)
    (fun (w, frame) ->
      let frame =
        Size.max_pair frame w.Window.size (* ensure the window fits *)
      in
      let bigger = Size.add frame (Size.v 3 2) in
      let a = Window.iterations w ~frame in
      let b = Window.iterations w ~frame:bigger in
      b.Size.w >= a.Size.w && b.Size.h >= a.Size.h)

let window_reuse_bounds =
  qtest "reuse fraction in [0,1)" gen_window (fun w ->
      let r = Window.reuse_fraction w in
      r >= 0. && r < 1.)

(* ---- Inset ------------------------------------------------------------- *)

let test_inset_of_window () =
  (* Centered 5x5: inset 2 on every side; centered 3x3: inset 1. *)
  Alcotest.check inset "conv inset" (Inset.uniform 2.)
    (Inset.of_window (Conv.input_window ~w:5 ~h:5));
  Alcotest.check inset "median inset" (Inset.uniform 1.)
    (Inset.of_window (Window.windowed 3 3));
  Alcotest.check inset "pixel inset" Inset.zero
    (Inset.of_window Window.pixel)

let test_inset_zero_offset_window () =
  (* A 3x3 window with zero offset puts the whole halo on the right and
     bottom. *)
  let i = Inset.of_window (Window.v (Size.v 3 3)) in
  Alcotest.check inset "asymmetric"
    (Inset.v ~left:0. ~right:2. ~top:0. ~bottom:2.)
    i

let test_inset_algebra () =
  let a = Inset.uniform 1. and b = Inset.v ~left:2. ~right:0. ~top:1. ~bottom:3. in
  Alcotest.check inset "add"
    (Inset.v ~left:3. ~right:1. ~top:2. ~bottom:4.)
    (Inset.add a b);
  Alcotest.check inset "union"
    (Inset.v ~left:2. ~right:1. ~top:1. ~bottom:3.)
    (Inset.union a b);
  Alcotest.(check bool) "dominates self" true (Inset.dominates b b);
  Alcotest.(check bool) "union dominates both" true
    (Inset.dominates (Inset.union a b) a && Inset.dominates (Inset.union a b) b)

let test_inset_diff_and_shrink () =
  let target = Inset.uniform 2. and have = Inset.uniform 1. in
  let d = Inset.diff ~target have in
  Alcotest.check inset "diff" (Inset.uniform 1.) d;
  let l, r, t, b = Inset.to_int_sides d in
  Alcotest.(check (list int)) "sides" [ 1; 1; 1; 1 ] [ l; r; t; b ];
  Alcotest.check size "shrink" (Size.v 8 6)
    (Inset.shrink_size (Size.v 10 8) d)

let test_inset_fractional_rejects () =
  expect_error (Err.Alignment_error "") (fun () ->
      Inset.to_int_sides (Inset.uniform 0.5))

let gen_inset =
  QCheck2.Gen.(
    map
      (fun (l, r, t, b) ->
        Inset.v ~left:(float_of_int l) ~right:(float_of_int r)
          ~top:(float_of_int t) ~bottom:(float_of_int b))
      (quad (int_range 0 5) (int_range 0 5) (int_range 0 5) (int_range 0 5)))

let inset_union_commutative =
  qtest "inset union commutes" QCheck2.Gen.(pair gen_inset gen_inset)
    (fun (a, b) -> Inset.equal (Inset.union a b) (Inset.union b a))

let inset_union_idempotent =
  qtest "inset union idempotent" gen_inset (fun a ->
      Inset.equal (Inset.union a a) a)

let inset_diff_roundtrip =
  qtest "add (diff target a) a = target when target dominates"
    QCheck2.Gen.(pair gen_inset gen_inset)
    (fun (a, b) ->
      let target = Inset.union a b in
      Inset.equal (Inset.add a (Inset.diff ~target a)) target)

(* ---- Rate -------------------------------------------------------------- *)

let test_rate () =
  let r = Rate.hz 50. in
  Alcotest.(check (float 1e-12)) "period" 0.02 (Rate.frame_period_s r);
  Alcotest.(check (float 1e-12)) "element period"
    (1. /. (50. *. 100.))
    (Rate.element_period_s r ~frame:(Size.v 10 10));
  Alcotest.(check (float 1e-9)) "elements/s" 5000.
    (Rate.elements_per_s r ~frame:(Size.v 10 10));
  Alcotest.(check (float 1e-9)) "scale" 100. (Rate.to_hz (Rate.scale r 2.));
  expect_error (Err.Invalid_parameterization "") (fun () -> Rate.hz 0.);
  expect_error (Err.Invalid_parameterization "") (fun () -> Rate.hz (-3.))

(* ---- Reuse analysis (Figure 5) ---------------------------------------- *)

let test_reuse_module () =
  let r = Reuse.of_window (Conv.input_window ~w:5 ~h:5) in
  Alcotest.(check int) "read" 25 r.Reuse.elements_per_fire;
  Alcotest.(check int) "new" 1 r.Reuse.new_per_fire;
  Alcotest.(check int) "reused" 24 r.Reuse.reused_per_fire;
  Alcotest.(check int) "column reuse" 20 r.Reuse.column_reuse_per_fire;
  Alcotest.(check (float 1e-9)) "fraction" 0.96 r.Reuse.reuse_fraction

let suite =
  [
    Alcotest.test_case "size: basics" `Quick test_size_basic;
    Alcotest.test_case "size: invalid" `Quick test_size_invalid;
    Alcotest.test_case "size: compare" `Quick test_size_compare;
    Alcotest.test_case "step: basics" `Quick test_step;
    Alcotest.test_case "offset: basics" `Quick test_offset;
    Alcotest.test_case "window: paper 100x100 example" `Quick
      test_window_iterations_paper_example;
    Alcotest.test_case "window: iteration edges" `Quick
      test_window_iterations_edges;
    Alcotest.test_case "window: downsampling step" `Quick test_window_downsample;
    Alcotest.test_case "window: 24/25 reuse" `Quick test_window_reuse_paper;
    Alcotest.test_case "window: block reuse" `Quick test_window_block_no_reuse;
    Alcotest.test_case "inset: of_window" `Quick test_inset_of_window;
    Alcotest.test_case "inset: zero-offset halo" `Quick
      test_inset_zero_offset_window;
    Alcotest.test_case "inset: algebra" `Quick test_inset_algebra;
    Alcotest.test_case "inset: diff/shrink" `Quick test_inset_diff_and_shrink;
    Alcotest.test_case "inset: fractional trim rejected" `Quick
      test_inset_fractional_rejects;
    Alcotest.test_case "rate: basics" `Quick test_rate;
    Alcotest.test_case "reuse: figure 5 numbers" `Quick test_reuse_module;
    window_iterations_extent_inverse;
    window_iterations_monotone;
    window_reuse_bounds;
    inset_union_commutative;
    inset_union_idempotent;
    inset_diff_roundtrip;
  ]

let inset_window_duality =
  (* For unit-step windows, the iteration space equals the frame shrunk by
     the window's inset — the identity the alignment pass relies on. *)
  qtest "iterations = extent shrunk by of_window (unit step)"
    QCheck2.Gen.(
      pair
        (pair (int_range 1 7) (int_range 1 7))
        (pair (int_range 10 40) (int_range 10 40)))
    (fun ((w, h), (fw, fh)) ->
      let win = Window.v ~offset:(Offset.centered (Size.v w h)) (Size.v w h) in
      let frame = Size.v fw fh in
      QCheck2.assume (Size.fits_within (Size.v w h) frame);
      let i = Inset.of_window win in
      QCheck2.assume (Inset.is_integral i);
      Size.equal
        (Window.iterations win ~frame)
        (Inset.shrink_size frame i))

let offset_centered_within_halo =
  qtest "centered offsets never exceed the halo"
    QCheck2.Gen.(pair (int_range 1 9) (int_range 1 9))
    (fun (w, h) ->
      let win =
        Window.v ~offset:(Offset.centered (Size.v w h)) (Size.v w h)
      in
      let i = Inset.of_window win in
      i.Inset.left >= 0. && i.Inset.right >= 0. && i.Inset.top >= 0.
      && i.Inset.bottom >= 0.)

let suite =
  suite @ [ inset_window_duality; offset_centered_within_halo ]
