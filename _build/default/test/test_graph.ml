(* Tests for the application graph: construction, structural validation,
   traversal, and rewriting primitives. *)

open Block_parallel
open Harness

let mini_graph () =
  let g = Graph.create () in
  let frame = Size.v 6 5 in
  let rate = Rate.hz 10. in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames:[ Image.Gen.ramp frame ] ())
  in
  let fwd = Graph.add g (Arith.forward ()) in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(fwd, "in");
  Graph.connect g ~from:(fwd, "out") ~into:(sink, "in");
  (g, src, fwd, sink)

let test_add_names () =
  let g = Graph.create () in
  let a = Graph.add g (Arith.forward ()) in
  let b = Graph.add g (Arith.forward ()) in
  Alcotest.(check string) "first uses class name" "Forward"
    (Graph.node g a).Graph.name;
  Alcotest.(check string) "second uniquified" "Forward_0"
    (Graph.node g b).Graph.name;
  expect_error (Err.Graph_malformed "") (fun () ->
      ignore (Graph.add g ~name:"Forward" (Arith.forward ())))

let test_connect_validation () =
  let g = Graph.create () in
  let a = Graph.add g (Arith.forward ()) in
  let b = Graph.add g (Arith.forward ()) in
  expect_error (Err.Graph_malformed "") (fun () ->
      Graph.connect g ~from:(a, "nope") ~into:(b, "in"));
  expect_error (Err.Graph_malformed "") (fun () ->
      Graph.connect g ~from:(a, "out") ~into:(b, "nope"));
  Graph.connect g ~from:(a, "out") ~into:(b, "in");
  expect_error (Err.Graph_malformed "") (fun () ->
      Graph.connect g ~from:(a, "out") ~into:(b, "in"));
  expect_error (Err.Graph_malformed "") (fun () ->
      Graph.connect g ~capacity:1 ~from:(b, "out") ~into:(a, "in"))

let test_validate_unconnected_input () =
  let g = Graph.create () in
  ignore (Graph.add g (Arith.forward ()));
  expect_error (Err.Graph_malformed "") (fun () -> Graph.validate g)

let test_validate_cycle_rejected () =
  let g = Graph.create () in
  let a = Graph.add g (Arith.forward ()) in
  let b = Graph.add g (Arith.forward ()) in
  Graph.connect g ~from:(a, "out") ~into:(b, "in");
  Graph.connect g ~from:(b, "out") ~into:(a, "in");
  expect_error (Err.Graph_malformed "") (fun () -> Graph.validate g)

let test_cycle_allowed_when_opted_in () =
  let g = Graph.create ~allow_cycles:true () in
  let a = Graph.add g (Arith.forward ()) in
  let b = Graph.add g (Arith.forward ()) in
  Graph.connect g ~from:(a, "out") ~into:(b, "in");
  Graph.connect g ~from:(b, "out") ~into:(a, "in");
  Graph.validate g;
  Alcotest.(check int) "all nodes in order" 2
    (List.length (Graph.topological_order g))

let test_fanout () =
  let g = Graph.create () in
  let a = Graph.add g (Arith.forward ()) in
  let b = Graph.add g (Arith.forward ()) in
  let c = Graph.add g (Arith.forward ()) in
  Graph.connect g ~from:(a, "out") ~into:(b, "in");
  Graph.connect g ~from:(a, "out") ~into:(c, "in");
  Alcotest.(check int) "two out channels" 2
    (List.length (Graph.out_channels g a ~port:"out" ()));
  Alcotest.(check (list int)) "successors" [ b; c ] (Graph.successors g a)

let test_topological_order () =
  let g, src, fwd, sink = mini_graph () in
  let order = List.map (fun n -> n.Graph.id) (Graph.topological_order g) in
  Alcotest.(check (list int)) "pipeline order" [ src; fwd; sink ] order

let test_remove_node () =
  let g, _src, fwd, _sink = mini_graph () in
  Graph.remove_node g fwd;
  Alcotest.(check int) "channels dropped" 0 (List.length (Graph.channels g));
  expect_error (Err.Graph_malformed "") (fun () -> ignore (Graph.node g fwd))

let test_deps () =
  let g, src, fwd, _sink = mini_graph () in
  Graph.add_dep g ~src ~dst:fwd;
  Alcotest.(check (list int)) "dep sources" [ src ] (Graph.dep_sources g fwd);
  Graph.remove_node g src;
  Alcotest.(check (list Alcotest.int)) "deps dropped with node" []
    (Graph.dep_sources g fwd)

let test_copy_preserves_ids () =
  let g, src, fwd, sink = mini_graph () in
  let g2 = Graph.copy g in
  Graph.remove_node g fwd;
  (* the copy is unaffected *)
  Alcotest.(check int) "copy intact" 3 (Graph.size g2);
  Alcotest.(check (list int)) "same ids"
    [ src; fwd; sink ]
    (List.map (fun n -> n.Graph.id) (Graph.topological_order g2));
  (* fresh ids in the copy do not collide *)
  let fresh = Graph.add g2 (Arith.forward ()) in
  Alcotest.(check bool) "fresh id beyond" true (fresh > sink)

let test_lookup_by_name () =
  let g, _, fwd, _ = mini_graph () in
  Alcotest.(check int) "by name" fwd (Graph.node_by_name g "Forward").Graph.id;
  expect_error (Err.Graph_malformed "") (fun () ->
      ignore (Graph.node_by_name g "nope"))

let test_sources_sinks () =
  let g, src, _, sink = mini_graph () in
  Alcotest.(check (list int)) "sources" [ src ]
    (List.map (fun n -> n.Graph.id) (Graph.sources g));
  Alcotest.(check (list int)) "sinks" [ sink ]
    (List.map (fun n -> n.Graph.id) (Graph.sinks g))

let test_in_channel_lookup () =
  let g, src, fwd, _ = mini_graph () in
  (match Graph.in_channel g fwd "in" with
  | Some c -> Alcotest.(check int) "producer" src c.Graph.src.Graph.node
  | None -> Alcotest.fail "expected channel");
  Alcotest.(check bool) "missing port" true (Graph.in_channel g src "in" = None)

let test_source_sink_role_checks () =
  let g = Graph.create () in
  let frame = Size.v 2 2 in
  (* A sink with outputs is impossible to build through the library, so
     validate catches a source wired as a consumer instead. *)
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate = Rate.hz 1. })
      (Source.spec ~frame ~frames:[] ())
  in
  let c = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel c ()) in
  Graph.connect g ~from:(src, "out") ~into:(sink, "in");
  Graph.validate g

let test_pp_summary () =
  let g, _, _, _ = mini_graph () in
  let s = Format.asprintf "%a" Graph.pp_summary g in
  Alcotest.(check bool) "mentions nodes" true (contains s "Forward")

let suite =
  [
    Alcotest.test_case "graph: names" `Quick test_add_names;
    Alcotest.test_case "graph: connect validation" `Quick
      test_connect_validation;
    Alcotest.test_case "graph: unconnected input" `Quick
      test_validate_unconnected_input;
    Alcotest.test_case "graph: cycle rejected" `Quick
      test_validate_cycle_rejected;
    Alcotest.test_case "graph: cycle opt-in" `Quick
      test_cycle_allowed_when_opted_in;
    Alcotest.test_case "graph: fanout" `Quick test_fanout;
    Alcotest.test_case "graph: topological order" `Quick test_topological_order;
    Alcotest.test_case "graph: remove node" `Quick test_remove_node;
    Alcotest.test_case "graph: dependency edges" `Quick test_deps;
    Alcotest.test_case "graph: copy" `Quick test_copy_preserves_ids;
    Alcotest.test_case "graph: lookup by name" `Quick test_lookup_by_name;
    Alcotest.test_case "graph: sources/sinks" `Quick test_sources_sinks;
    Alcotest.test_case "graph: in_channel" `Quick test_in_channel_lookup;
    Alcotest.test_case "graph: role validation" `Quick
      test_source_sink_role_checks;
    Alcotest.test_case "graph: summary" `Quick test_pp_summary;
  ]
