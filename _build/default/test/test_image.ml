(* Unit and property tests for the image substrate and the golden image
   operations the simulator is checked against. *)

open Block_parallel
open Harness

let gen_small_size =
  QCheck2.Gen.(
    map (fun (w, h) -> Size.v w h) (pair (int_range 1 16) (int_range 1 16)))

let gen_image =
  QCheck2.Gen.(
    map
      (fun (s, seed) ->
        Image.Gen.noise (Prng.create seed) s 100.)
      (pair gen_small_size int))

(* ---- basics ------------------------------------------------------------ *)

let test_create_get_set () =
  let img = Image.create (Size.v 3 2) in
  Alcotest.(check (float 0.)) "zero init" 0. (Image.get img ~x:2 ~y:1);
  Image.set img ~x:2 ~y:1 5.;
  Alcotest.(check (float 0.)) "set/get" 5. (Image.get img ~x:2 ~y:1);
  Alcotest.(check int) "width" 3 (Image.width img);
  Alcotest.(check int) "height" 2 (Image.height img)

let test_bounds_checked () =
  let img = Image.create (Size.v 3 2) in
  List.iter
    (fun (x, y) ->
      try
        ignore (Image.get img ~x ~y);
        Alcotest.failf "expected bounds failure at (%d,%d)" x y
      with Invalid_argument _ -> ())
    [ (-1, 0); (0, -1); (3, 0); (0, 2) ]

let test_init_scanline_order () =
  let img = Image.init (Size.v 3 2) (fun ~x ~y -> float_of_int ((10 * y) + x)) in
  Alcotest.(check (list (float 0.)))
    "scanline" [ 0.; 1.; 2.; 10.; 11.; 12. ]
    (Image.to_scanline_list img)

let test_sub_blit () =
  let img = Image.Gen.ramp (Size.v 6 5) in
  let sub = Image.sub img ~x:2 ~y:1 (Size.v 3 2) in
  Alcotest.(check (float 0.)) "sub content" (Image.get img ~x:2 ~y:1)
    (Image.get sub ~x:0 ~y:0);
  let dst = Image.create (Size.v 6 5) in
  Image.blit ~src:sub ~dst ~x:2 ~y:1;
  Alcotest.(check (float 0.)) "blit back" (Image.get img ~x:4 ~y:2)
    (Image.get dst ~x:4 ~y:2)

let test_copy_isolated () =
  let a = Image.Gen.ramp (Size.v 3 3) in
  let b = Image.copy a in
  Image.set b ~x:0 ~y:0 99.;
  Alcotest.(check (float 0.)) "original untouched" 0. (Image.get a ~x:0 ~y:0)

let test_map_fold () =
  let img = Image.Gen.constant (Size.v 2 2) 3. in
  let doubled = Image.map (fun v -> 2. *. v) img in
  Alcotest.(check (float 0.)) "map" 6. (Image.get doubled ~x:1 ~y:1);
  Alcotest.(check (float 0.)) "fold sum" 24. (Image.fold ( +. ) 0. doubled)

let scanline_roundtrip =
  qtest "scanline list roundtrips" gen_image (fun img ->
      let back =
        Image.of_scanline_list (Image.size img) (Image.to_scanline_list img)
      in
      Image.equal img back)

let sub_matches_get =
  qtest "sub agrees with get"
    QCheck2.Gen.(pair gen_image (pair (int_range 0 3) (int_range 0 3)))
    (fun (img, (dx, dy)) ->
      let w = Image.width img and h = Image.height img in
      QCheck2.assume (w > dx && h > dy);
      let s = Size.v (w - dx) (h - dy) in
      let sub = Image.sub img ~x:dx ~y:dy s in
      Image.get sub ~x:0 ~y:0 = Image.get img ~x:dx ~y:dy)

(* ---- ops --------------------------------------------------------------- *)

let test_convolve_identity () =
  (* A centered delta kernel reproduces the valid region. *)
  let img = Image.Gen.ramp (Size.v 6 6) in
  let delta =
    Image.init (Size.v 3 3) (fun ~x ~y -> if x = 1 && y = 1 then 1. else 0.)
  in
  let out = Image_ops.convolve img ~kernel:delta in
  Alcotest.check size "valid extent" (Size.v 4 4) (Image.size out);
  Alcotest.(check (float 1e-9)) "center passthrough"
    (Image.get img ~x:1 ~y:1) (Image.get out ~x:0 ~y:0)

let test_convolve_box () =
  let img = Image.Gen.constant (Size.v 5 5) 2. in
  let box = Image.Gen.constant (Size.v 3 3) 1. in
  let out = Image_ops.convolve img ~kernel:box in
  Alcotest.(check (float 1e-9)) "box sum" 18. (Image.get out ~x:0 ~y:0)

let test_convolve_flips_kernel () =
  (* An asymmetric kernel must be applied flipped (paper Figure 6). *)
  let img =
    Image.init (Size.v 3 1) (fun ~x ~y:_ -> float_of_int x)
  in
  let k = Image.init (Size.v 3 1) (fun ~x ~y:_ -> if x = 0 then 1. else 0.) in
  (* flipped k picks the rightmost input element *)
  let out = Image_ops.convolve img ~kernel:k in
  Alcotest.(check (float 1e-9)) "flipped" 2. (Image.get out ~x:0 ~y:0)

let test_median () =
  let img =
    Image.of_scanline_list (Size.v 3 3)
      [ 9.; 1.; 8.; 2.; 5.; 7.; 3.; 6.; 4. ]
  in
  let out = Image_ops.median img ~w:3 ~h:3 in
  Alcotest.(check (float 1e-9)) "median of 1..9" 5. (Image.get out ~x:0 ~y:0)

let median_of_constant =
  qtest "median of a constant image is constant"
    QCheck2.Gen.(pair (int_range 3 10) (int_range 3 10))
    (fun (w, h) ->
      let img = Image.Gen.constant (Size.v (w + 2) (h + 2)) 7. in
      let out = Image_ops.median img ~w:3 ~h:3 in
      Image.fold (fun acc v -> acc && v = 7.) true out)

let median_bounded =
  qtest "median lies within the window's range" gen_image (fun img ->
      QCheck2.assume (Image.width img >= 3 && Image.height img >= 3);
      let out = Image_ops.median img ~w:3 ~h:3 in
      let lo = Image.fold Float.min infinity img in
      let hi = Image.fold Float.max neg_infinity img in
      Image.fold (fun acc v -> acc && v >= lo -. 1e-9 && v <= hi +. 1e-9) true out)

let test_subtract_gain () =
  let a = Image.Gen.constant (Size.v 2 2) 5. in
  let b = Image.Gen.constant (Size.v 2 2) 3. in
  Alcotest.(check (float 1e-9)) "subtract" 2.
    (Image.get (Image_ops.subtract a b) ~x:0 ~y:0);
  Alcotest.(check (float 1e-9)) "gain" 10.
    (Image.get (Image_ops.gain a 2.) ~x:1 ~y:1)

let test_histogram_op () =
  let img = Image.of_scanline_list (Size.v 4 1) [ 0.; 1.; 2.; 3. ] in
  let counts = Image_ops.histogram img ~bins:4 ~lo:0. ~hi:4. in
  Alcotest.(check (array (float 0.))) "one per bin" [| 1.; 1.; 1.; 1. |] counts;
  (* Out-of-range clamps to end bins. *)
  let img2 = Image.of_scanline_list (Size.v 2 1) [ -5.; 99. ] in
  let counts2 = Image_ops.histogram img2 ~bins:4 ~lo:0. ~hi:4. in
  Alcotest.(check (float 0.)) "clamped low" 1. counts2.(0);
  Alcotest.(check (float 0.)) "clamped high" 1. counts2.(3)

let test_trim_pad_inverse () =
  let img = Image.Gen.ramp (Size.v 6 5) in
  let padded = Image_ops.pad_zero img ~left:2 ~right:1 ~top:1 ~bottom:3 in
  Alcotest.check size "pad extent" (Size.v 9 9) (Image.size padded);
  let trimmed = Image_ops.trim padded ~left:2 ~right:1 ~top:1 ~bottom:3 in
  Alcotest.check image "trim inverts pad" img trimmed;
  Alcotest.(check (float 0.)) "margin is zero" 0.
    (Image.get padded ~x:0 ~y:0)

let test_pad_mirror () =
  let img = Image.of_scanline_list (Size.v 3 1) [ 1.; 2.; 3. ] in
  let padded = Image_ops.pad_mirror img ~left:2 ~right:2 ~top:0 ~bottom:0 in
  Alcotest.(check (list (float 0.)))
    "mirrored" [ 3.; 2.; 1.; 2.; 3.; 2.; 1. ]
    (Image.to_scanline_list padded)

let test_downsample () =
  let img = Image.Gen.ramp (Size.v 5 4) in
  let out = Image_ops.downsample img ~fx:2 ~fy:2 in
  Alcotest.check size "extent" (Size.v 3 2) (Image.size out);
  Alcotest.(check (float 0.)) "picks strided" (Image.get img ~x:2 ~y:2)
    (Image.get out ~x:1 ~y:1)

let test_bayer_demosaic_green_sites () =
  (* On a constant mosaic every interpolation returns the constant. *)
  let img = Image.Gen.constant (Size.v 8 6) 9. in
  let r, g, b = Image_ops.bayer_demosaic img in
  List.iter
    (fun plane ->
      Image.iter_pixels
        (fun ~x:_ ~y:_ v -> Alcotest.(check (float 1e-9)) "constant" 9. v)
        plane)
    [ r; g; b ]

let test_box_blur () =
  let img = Image.Gen.constant (Size.v 5 5) 6. in
  let out = Image_ops.box_blur img ~w:3 ~h:3 in
  Alcotest.(check (float 1e-9)) "mean preserved" 6. (Image.get out ~x:1 ~y:1)

let convolve_linear =
  qtest "convolution is linear in the image"
    QCheck2.Gen.(pair gen_image (float_range (-2.) 2.))
    (fun (img, k) ->
      QCheck2.assume (Image.width img >= 3 && Image.height img >= 3);
      let kern = Image.Gen.constant (Size.v 3 3) 0.5 in
      let a = Image_ops.convolve (Image_ops.gain img k) ~kernel:kern in
      let b = Image_ops.gain (Image_ops.convolve img ~kernel:kern) k in
      Image.max_abs_diff a b < 1e-6)

let histogram_total =
  qtest "histogram counts every pixel once" gen_image (fun img ->
      let counts = Image_ops.histogram img ~bins:8 ~lo:0. ~hi:100. in
      let total = Array.fold_left ( +. ) 0. counts in
      total = float_of_int (Size.area (Image.size img)))

let gen_frames =
  QCheck2.Gen.(
    map
      (fun (s, n) -> Image.Gen.frame_sequence ~seed:5 s n)
      (pair gen_small_size (int_range 1 4)))

let frame_sequence_distinct =
  qtest "generated frames are deterministic and sized" gen_frames (fun frames ->
      let again =
        Image.Gen.frame_sequence ~seed:5
          (Image.size (List.hd frames))
          (List.length frames)
      in
      List.for_all2 Image.equal frames again)

let suite =
  [
    Alcotest.test_case "image: create/get/set" `Quick test_create_get_set;
    Alcotest.test_case "image: bounds" `Quick test_bounds_checked;
    Alcotest.test_case "image: scanline order" `Quick test_init_scanline_order;
    Alcotest.test_case "image: sub/blit" `Quick test_sub_blit;
    Alcotest.test_case "image: copy isolation" `Quick test_copy_isolated;
    Alcotest.test_case "image: map/fold" `Quick test_map_fold;
    Alcotest.test_case "ops: delta convolution" `Quick test_convolve_identity;
    Alcotest.test_case "ops: box convolution" `Quick test_convolve_box;
    Alcotest.test_case "ops: kernel flipped" `Quick test_convolve_flips_kernel;
    Alcotest.test_case "ops: median" `Quick test_median;
    Alcotest.test_case "ops: subtract/gain" `Quick test_subtract_gain;
    Alcotest.test_case "ops: histogram" `Quick test_histogram_op;
    Alcotest.test_case "ops: trim inverts pad" `Quick test_trim_pad_inverse;
    Alcotest.test_case "ops: mirror pad" `Quick test_pad_mirror;
    Alcotest.test_case "ops: downsample" `Quick test_downsample;
    Alcotest.test_case "ops: bayer on constant" `Quick
      test_bayer_demosaic_green_sites;
    Alcotest.test_case "ops: box blur" `Quick test_box_blur;
    scanline_roundtrip;
    sub_matches_get;
    median_of_constant;
    median_bounded;
    convolve_linear;
    histogram_total;
    frame_sequence_distinct;
  ]

let test_psnr () =
  let a = Image.Gen.ramp (Size.v 4 4) in
  Alcotest.(check (float 0.)) "identical is infinite" infinity
    (Image.psnr a (Image.copy a));
  let noisy = Image.map (fun v -> v +. 0.5) a in
  let p = Image.psnr a noisy in
  Alcotest.(check bool) "finite and positive" true
    (Float.is_finite p && p > 0.);
  let noisier = Image.map (fun v -> v +. 2.) a in
  Alcotest.(check bool) "more noise, lower PSNR" true
    (Image.psnr a noisier < p);
  try
    ignore (Image.psnr a (Image.create (Size.v 2 2)));
    Alcotest.fail "expected extent mismatch"
  with Invalid_argument _ -> ()

let suite = suite @ [ Alcotest.test_case "image: psnr" `Quick test_psnr ]
