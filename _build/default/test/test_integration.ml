(* End-to-end integration: every benchmark application compiled and
   simulated under both mappings, with exact functional verification and
   real-time checks; plus policy variants and whole-suite invariants. *)

open Block_parallel
open Harness

let small = Size.v 24 18

let test_suite_benchmark label () =
  let e = Apps.Suite.by_label label in
  ignore
    (check_app ~machine:e.Apps.Suite.machine (e.Apps.Suite.build ()))

let test_image_pipeline_pad_policy () =
  let inst =
    Apps.Image_pipeline.v ~policy:Align.Pad_zero ~frame:small
      ~rate:(Rate.hz 25.) ~n_frames:2 ()
  in
  let compiled =
    Pipeline.compile ~align_policy:Align.Pad_zero ~machine:Machine.default
      inst.App.graph
  in
  let result = Pipeline.simulate compiled ~greedy:false in
  let diffs, ok = App.verify inst result in
  List.iter
    (fun (l, d) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "pad golden %s" l) 0. d)
    diffs;
  Alcotest.(check bool) "pad policy verified" true ok

let test_trim_vs_pad_differ () =
  (* The two repair policies produce different histograms on the same
     input — which is why the paper leaves the choice to the programmer. *)
  let run policy =
    let inst =
      Apps.Image_pipeline.v ~policy ~frame:small ~rate:(Rate.hz 25.)
        ~n_frames:1 ()
    in
    let compiled =
      Pipeline.compile ~align_policy:policy ~machine:Machine.default
        inst.App.graph
    in
    ignore (Pipeline.simulate compiled ~greedy:false);
    match inst.App.collectors with
    | [ (_, c) ] -> List.hd (Sink.chunks c)
    | _ -> Alcotest.fail "expected one collector"
  in
  let trim = run Align.Trim and pad = run Align.Pad_zero in
  Alcotest.(check bool) "policies differ" true
    (Image.max_abs_diff trim pad > 0.)

let test_feedback_app_end_to_end () =
  let inst =
    Apps.Feedback_app.v ~frame:(Size.v 10 8) ~rate:(Rate.hz 20.) ~n_frames:3 ()
  in
  ignore (check_app ~greedy_list:[ false ] inst)

let test_downsample_app_end_to_end () =
  let inst =
    Apps.Downsample_app.v ~frame:(Size.v 17 13) ~rate:(Rate.hz 20.)
      ~n_frames:2 ()
  in
  ignore (check_app inst)

let test_reuse_variants_shape () =
  (* Figure 9's shape: (a) meets rate, (b) misses it, (c) meets it, with
     bit-identical pixels in all three. *)
  let rows = Bp_report.Report.fig9 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  (match rows with
  | [ a; b; c ] ->
    Alcotest.(check bool) "round robin meets" true a.Bp_report.Report.met;
    Alcotest.(check bool) "blocked misses" false b.Bp_report.Report.met;
    Alcotest.(check bool) "blocked stalls" true (b.Bp_report.Report.stalls > 0);
    Alcotest.(check bool) "buffered meets" true c.Bp_report.Report.met;
    Alcotest.(check bool) "all exact" true
      (a.Bp_report.Report.exact && b.Bp_report.Report.exact
      && c.Bp_report.Report.exact)
  | _ -> Alcotest.fail "expected three variants")

let test_fig10_exact () =
  let r = Bp_report.Report.fig10 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  Alcotest.(check bool) "striped buffer exact" true r.Bp_report.Report.exact;
  Alcotest.(check bool) "several stripes" true
    (Array.length r.Bp_report.Report.ranges >= 2);
  Alcotest.(check bool) "overlap replicated" true
    (List.length r.Bp_report.Report.overlap_columns > 0)

let test_fig11_shape () =
  let rows = Bp_report.Report.fig11 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  let find c =
    List.find (fun (r : Bp_report.Report.fig11_row) -> r.Bp_report.Report.config = c) rows
  in
  let ss = find "Small/Slow" and sf = find "Small/Fast" in
  let bs = find "Big/Slow" and bf = find "Big/Fast" in
  List.iter
    (fun (r : Bp_report.Report.fig11_row) ->
      Alcotest.(check bool) (r.Bp_report.Report.config ^ " meets rate") true
        r.Bp_report.Report.met)
    rows;
  Alcotest.(check bool) "bigger input, more buffers" true
    (bs.Bp_report.Report.buffers > ss.Bp_report.Report.buffers);
  Alcotest.(check bool) "faster rate, more compute" true
    (sf.Bp_report.Report.compute_replicas > ss.Bp_report.Report.compute_replicas);
  Alcotest.(check bool) "big/fast is the largest" true
    (bf.Bp_report.Report.pes_1to1 >= sf.Bp_report.Report.pes_1to1
    && bf.Bp_report.Report.pes_1to1 >= bs.Bp_report.Report.pes_1to1)

let test_fig12_improvement () =
  let r = Bp_report.Report.fig12 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  Alcotest.(check bool) "greedy uses fewer PEs" true
    (r.Bp_report.Report.pes_greedy < r.Bp_report.Report.pes_1to1);
  let ratio = r.Bp_report.Report.util_greedy /. r.Bp_report.Report.util_1to1 in
  Alcotest.(check bool)
    (Printf.sprintf "improvement %.2f in the paper's ballpark" ratio)
    true
    (ratio > 1.2 && ratio < 2.5)

let test_fig13_shape () =
  let r = Bp_report.Report.fig13 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  List.iter
    (fun (row : Bp_report.Report.fig13_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s real-time" row.Bp_report.Report.label
           row.Bp_report.Report.mapping)
        true row.Bp_report.Report.rt_met;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s functional" row.Bp_report.Report.label
           row.Bp_report.Report.mapping)
        true row.Bp_report.Report.functional)
    r.Bp_report.Report.rows;
  (* GM never loses to 1:1 and the average improvement is near 1.5x. *)
  List.iter
    (fun label ->
      let find m =
        List.find
          (fun (row : Bp_report.Report.fig13_row) ->
            row.Bp_report.Report.label = label
            && row.Bp_report.Report.mapping = m)
          r.Bp_report.Report.rows
      in
      Alcotest.(check bool) (label ^ ": GM at least 1:1") true
        ((find "GM").Bp_report.Report.total
        >= (find "1:1").Bp_report.Report.total -. 1e-9))
    Apps.Suite.labels;
  Alcotest.(check bool)
    (Printf.sprintf "average improvement %.2f in range"
       r.Bp_report.Report.average_improvement)
    true
    (r.Bp_report.Report.average_improvement > 1.2
    && r.Bp_report.Report.average_improvement < 2.0)

let test_fig5_reuse_numbers () =
  let rows = Bp_report.Report.fig5 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  let conv = List.assoc "5x5 conv, step 1" rows in
  Alcotest.(check int) "24 reused" 24 conv.Reuse.reused_per_fire;
  Alcotest.(check (float 1e-9)) "96%" 0.96 conv.Reuse.reuse_fraction

let test_fig8_insets () =
  let r = Bp_report.Report.fig8 (Format.make_formatter (fun _ _ _ -> ()) ignore) in
  Alcotest.check inset "median 1,1" (Inset.uniform 1.)
    r.Bp_report.Report.median_inset;
  Alcotest.check inset "conv 2,2" (Inset.uniform 2.)
    r.Bp_report.Report.conv_inset;
  Alcotest.(check (list (list int))) "trim by one"
    [ [ 1; 1; 1; 1 ] ]
    (List.map
       (fun (l, rr, t, b) -> [ l; rr; t; b ])
       r.Bp_report.Report.trim_margins)

let test_dot_export () =
  let inst =
    Apps.Image_pipeline.v ~frame:small ~rate:(Rate.hz 30.) ~n_frames:1 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let dot =
    Dot.to_dot ~title:"test"
      ~groups:(Multiplex.greedy compiled.Pipeline.machine compiled.Pipeline.graph)
      compiled.Pipeline.graph
  in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "buffers as parallelograms" true
    (contains dot "parallelogram");
  Alcotest.(check bool) "clusters for PEs" true (contains dot "cluster_0");
  Alcotest.(check bool) "dashed replicated edges" true
    (contains dot "style=dashed");
  Alcotest.(check bool) "dependency edge" true (contains dot "style=dotted")

let test_pipeline_reports () =
  let inst =
    Apps.Image_pipeline.v ~frame:small ~rate:(Rate.hz 30.) ~n_frames:1 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let s = Format.asprintf "%a" Pipeline.pp_summary compiled in
  Alcotest.(check bool) "mentions PEs" true (contains s "PEs");
  Alcotest.(check bool) "processors sane" true
    (Pipeline.processors_needed compiled ~greedy:true
    <= Pipeline.processors_needed compiled ~greedy:false)

let suite =
  List.map
    (fun label ->
      Alcotest.test_case
        (Printf.sprintf "benchmark %s end-to-end" label)
        `Slow (test_suite_benchmark label))
    Apps.Suite.labels
  @ [
      Alcotest.test_case "image pipeline: pad policy" `Slow
        test_image_pipeline_pad_policy;
      Alcotest.test_case "trim vs pad differ" `Slow test_trim_vs_pad_differ;
      Alcotest.test_case "feedback app end-to-end" `Slow
        test_feedback_app_end_to_end;
      Alcotest.test_case "downsample app end-to-end" `Slow
        test_downsample_app_end_to_end;
      Alcotest.test_case "figure 9 shape" `Slow test_reuse_variants_shape;
      Alcotest.test_case "figure 10 exact" `Slow test_fig10_exact;
      Alcotest.test_case "figure 11 shape" `Slow test_fig11_shape;
      Alcotest.test_case "figure 12 improvement" `Slow test_fig12_improvement;
      Alcotest.test_case "figure 13 shape" `Slow test_fig13_shape;
      Alcotest.test_case "figure 5 numbers" `Quick test_fig5_reuse_numbers;
      Alcotest.test_case "figure 8 insets" `Quick test_fig8_insets;
      Alcotest.test_case "dot export" `Quick test_dot_export;
      Alcotest.test_case "pipeline reports" `Quick test_pipeline_reports;
    ]

let test_motion_app () =
  let inst =
    Apps.Motion_app.v ~frame:(Size.v 14 10) ~rate:(Rate.hz 15.) ~n_frames:3 ()
  in
  ignore (check_app ~greedy_list:[ false; true ] inst)

let test_edge_app () =
  let inst =
    Apps.Edge_app.v ~frame:(Size.v 20 16) ~rate:(Rate.hz 20.) ~n_frames:2 ()
  in
  ignore (check_app inst)

let suite =
  suite
  @ [
      Alcotest.test_case "motion detection app" `Slow test_motion_app;
      Alcotest.test_case "edge detection app" `Slow test_edge_app;
    ]

let test_export_dots () =
  let dir = Filename.temp_file "bp" "dots" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let null = Format.make_formatter (fun _ _ _ -> ()) ignore in
  let paths = Bp_report.Report.export_dots ~dir null in
  Alcotest.(check int) "four renderings" 4 (List.length paths);
  List.iter
    (fun p ->
      let ic = open_in p in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) (p ^ " is dot") true (contains line "digraph"))
    paths

let suite =
  suite @ [ Alcotest.test_case "figure dot export" `Slow test_export_dots ]

let test_resample_app () =
  let inst =
    Apps.Resample_app.v ~frame:(Size.v 48 1) ~rate:(Rate.hz 30.) ~n_frames:3 ()
  in
  ignore (check_app inst)

let suite =
  suite @ [ Alcotest.test_case "rational resampler app" `Slow test_resample_app ]
