(* Tests for the standard kernel library, exercised one behaviour at a time
   through the bench harness — no simulator involved. *)

open Block_parallel
open Harness

(* Feed a whole frame into a buffer bench and collect the emitted windows. *)
let run_buffer cfg img =
  let b = bench (Buffer.spec cfg) in
  feed_frame b "in" img ~frame_idx:0;
  ignore (b.run_to_idle ());
  b.out "out"

let window_at img ~ox ~oy (w : Window.t) =
  Image.sub img ~x:ox ~y:oy w.Window.size

(* ---- buffer ------------------------------------------------------------ *)

let test_buffer_config_validation () =
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Buffer.config ~in_block:(Size.v 3 3)
        ~out_window:(Window.windowed 3 3) ~frame:(Size.v 10 10) ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Buffer.config ~out_window:(Window.windowed 9 9) ~frame:(Size.v 4 4) ())

let test_buffer_storage_rule () =
  (* The paper's double-buffering rule: frame width x 2*max(in_h,out_h). *)
  let cfg =
    Buffer.config ~out_window:(Conv.input_window ~w:5 ~h:5)
      ~frame:(Size.v 20 12) ()
  in
  Alcotest.check size "[20x10]" (Size.v 20 10) (Buffer.storage cfg);
  Alcotest.(check int) "words" 200 (Buffer.storage_words cfg);
  let cfg3 =
    Buffer.config ~out_window:(Window.windowed 3 3) ~frame:(Size.v 24 18) ()
  in
  Alcotest.check size "[24x6]" (Size.v 24 6) (Buffer.storage cfg3)

let test_buffer_emits_all_windows_in_order () =
  let frame = Size.v 8 6 in
  let img = Image.Gen.ramp frame in
  let w = Window.windowed 3 3 in
  let cfg = Buffer.config ~out_window:w ~frame () in
  let items = run_buffer cfg img in
  let windows = data_chunks items in
  Alcotest.(check int) "count" (6 * 4) (List.length windows);
  List.iteri
    (fun i got ->
      let ox = i mod 6 and oy = i / 6 in
      Alcotest.check image
        (Printf.sprintf "window %d" i)
        (window_at img ~ox ~oy w) got)
    windows;
  (* The buffer emits its own end-of-frame after the last window. *)
  match List.rev items with
  | Item.Ctl t :: _ ->
    Alcotest.(check bool) "trailing EOF" true (t.Token.kind = Token.End_of_frame)
  | _ -> Alcotest.fail "expected trailing EOF"

let test_buffer_downsampling () =
  let frame = Size.v 9 7 in
  let img = Image.Gen.ramp frame in
  let w = Window.v ~step:(Step.v 2 2) Size.one in
  let cfg = Buffer.config ~out_window:w ~frame () in
  let windows = data_chunks (run_buffer cfg img) in
  Alcotest.(check int) "decimated count" (5 * 4) (List.length windows);
  Alcotest.(check (float 0.)) "first pixel" (Image.get img ~x:0 ~y:0)
    (Image.get (List.hd windows) ~x:0 ~y:0);
  Alcotest.(check (float 0.)) "strided pixel" (Image.get img ~x:2 ~y:0)
    (Image.get (List.nth windows 1) ~x:0 ~y:0)

let test_buffer_multi_frame_reset () =
  let frame = Size.v 6 5 in
  let w = Window.windowed 3 3 in
  let cfg = Buffer.config ~out_window:w ~frame () in
  let b = bench (Buffer.spec cfg) in
  let f1 = Image.Gen.constant frame 1. and f2 = Image.Gen.constant frame 2. in
  feed_frame b "in" f1 ~frame_idx:0;
  feed_frame b "in" f2 ~frame_idx:1;
  ignore (b.run_to_idle ());
  let windows = data_chunks (b.out "out") in
  Alcotest.(check int) "two frames of windows" (2 * 4 * 3)
    (List.length windows);
  Alcotest.(check (float 0.)) "frame 1 content" 1.
    (Image.get (List.hd windows) ~x:0 ~y:0);
  Alcotest.(check (float 0.)) "frame 2 content" 2.
    (Image.get (List.nth windows 12) ~x:0 ~y:0)

let test_buffer_rejects_wrong_block () =
  let cfg =
    Buffer.config ~out_window:(Window.windowed 3 3) ~frame:(Size.v 6 5) ()
  in
  let b = bench (Buffer.spec cfg) in
  b.feed "in" (Item.data (Image.Gen.constant (Size.v 2 2) 0.));
  expect_error (Err.Graph_malformed "") (fun () -> b.step ())

let buffer_window_property =
  qtest ~count:60 "buffer reproduces exactly the window stream"
    QCheck2.Gen.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 3) (int_range 1 3))
    (fun (ww, wh, sx, sy) ->
      let frame = Size.v (ww + (3 * sx) + 2) (wh + (2 * sy) + 1) in
      let img = Image.Gen.ramp frame in
      let w =
        Window.v ~step:(Step.v sx sy) (Size.v ww wh)
      in
      let cfg = Buffer.config ~out_window:w ~frame () in
      let windows = data_chunks (run_buffer cfg img) in
      let iter = Window.iterations w ~frame in
      List.length windows = Size.area iter
      && List.for_all2
           (fun i got ->
             let ox = i mod iter.Size.w * sx and oy = i / iter.Size.w * sy in
             Image.equal (window_at img ~ox ~oy w) got)
           (List.init (List.length windows) Fun.id)
           windows)

(* ---- split / join ------------------------------------------------------ *)

let test_split_round_robin () =
  let b = bench (Split_join.split ~window:Window.pixel ~ways:3 ()) in
  List.iter (fun v -> b.feed "in" (px v)) [ 0.; 1.; 2.; 3.; 4. ];
  b.feed "in" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  let vals port =
    List.map (fun img -> Image.get img ~x:0 ~y:0) (data_chunks (b.out port))
  in
  Alcotest.(check (list (float 0.))) "out0" [ 0.; 3. ] (vals "out0");
  Alcotest.(check (list (float 0.))) "out1" [ 1.; 4. ] (vals "out1");
  Alcotest.(check (list (float 0.))) "out2" [ 2. ] (vals "out2")

let test_split_broadcasts_tokens () =
  let b = bench (Split_join.split ~window:Window.pixel ~ways:2 ()) in
  b.feed "in" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  Alcotest.(check int) "out0 token" 1 (List.length (b.out "out0"));
  Alcotest.(check int) "out1 token" 1 (List.length (b.out "out1"))

let test_join_round_robin () =
  let b = bench (Split_join.join ~window:Window.pixel ~ways:2 ()) in
  b.feed "in0" (px 0.);
  b.feed "in1" (px 1.);
  b.feed "in0" (px 2.);
  b.feed "in1" (px 3.);
  ignore (b.run_to_idle ());
  let vals =
    List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "out"))
  in
  Alcotest.(check (list (float 0.))) "interleaved" [ 0.; 1.; 2.; 3. ] vals

let test_join_merges_tokens () =
  let b = bench (Split_join.join ~window:Window.pixel ~ways:2 ()) in
  b.feed "in0" (Item.ctl (Token.eof 0));
  Alcotest.(check bool) "waits for both" true (b.step () = None);
  b.feed "in1" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  Alcotest.(check int) "merged once" 1 (List.length (b.out "out"))

let test_join_eof_resets_cursor () =
  (* 3 chunks over 2 ways: after the EOF the cursor must restart at
     branch 0 because the split restarts there too. *)
  let b = bench (Split_join.join ~window:Window.pixel ~ways:2 ()) in
  b.feed "in0" (px 0.);
  b.feed "in1" (px 1.);
  b.feed "in0" (px 2.);
  b.feed "in0" (Item.ctl (Token.eof 0));
  b.feed "in1" (Item.ctl (Token.eof 0));
  b.feed "in0" (px 10.);
  b.feed "in1" (px 11.);
  ignore (b.run_to_idle ());
  let vals =
    List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "out"))
  in
  Alcotest.(check (list (float 0.))) "order across frames"
    [ 0.; 1.; 2.; 10.; 11. ]
    vals

let split_join_roundtrip =
  qtest ~count:80 "split then join restores the stream"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 40))
    (fun (ways, n) ->
      let split = bench (Split_join.split ~window:Window.pixel ~ways ()) in
      let join = bench (Split_join.join ~window:Window.pixel ~ways ()) in
      let sent = List.init n float_of_int in
      List.iter (fun v -> split.feed "in" (px v)) sent;
      split.feed "in" (Item.ctl (Token.eof 0));
      ignore (split.run_to_idle ());
      List.iteri
        (fun k _ ->
          List.iter
            (fun item -> join.feed (Printf.sprintf "in%d" k) item)
            (split.out (Printf.sprintf "out%d" k)))
        (List.init ways Fun.id);
      ignore (join.run_to_idle ());
      let got =
        List.map
          (fun i -> Image.get i ~x:0 ~y:0)
          (data_chunks (join.out "out"))
      in
      got = sent)

let test_pattern_split_runs () =
  let b =
    bench (Split_join.split ~pattern:[| 2; 1 |] ~window:Window.pixel ~ways:2 ())
  in
  List.iter (fun v -> b.feed "in" (px v)) [ 0.; 1.; 2.; 3.; 4.; 5. ];
  ignore (b.run_to_idle ());
  let vals port =
    List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out port))
  in
  Alcotest.(check (list (float 0.))) "runs of 2" [ 0.; 1.; 3.; 4. ] (vals "out0");
  Alcotest.(check (list (float 0.))) "runs of 1" [ 2.; 5. ] (vals "out1")

let test_column_split_overlap () =
  (* Figure 10: pixels in the shared columns go to both stripes. *)
  let frame = Size.v 6 2 in
  let ranges = [| (0, 4); (2, 6) |] in
  let b = bench (Split_join.column_split ~ranges ~frame ()) in
  let img = Image.Gen.ramp frame in
  feed_frame b "in" img ~frame_idx:0;
  ignore (b.run_to_idle ());
  let count port = List.length (data_chunks (b.out port)) in
  (* stripe 0: columns 0..3 of both rows; stripe 1: columns 2..5. *)
  Alcotest.(check int) "stripe 0 pixels" 8 (count "out0");
  Alcotest.(check int) "stripe 1 pixels" 8 (count "out1")

let test_column_split_validation () =
  let frame = Size.v 6 2 in
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Split_join.column_split ~ranges:[| (1, 4); (4, 6) |] ~frame ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Split_join.column_split ~ranges:[| (0, 2); (3, 6) |] ~frame ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Split_join.column_split ~ranges:[| (0, 4); (2, 5) |] ~frame ())

let test_stripe_ranges () =
  let window = Conv.input_window ~w:5 ~h:5 in
  let ranges = Split_join.stripe_ranges ~frame_w:20 ~window ~parts:2 in
  (* 16 window origins, split 8/8: stripe 0 covers 0..11, stripe 1 8..19,
     overlap = halo = 4 columns. *)
  Alcotest.(check (array (pair int int))) "ranges" [| (0, 12); (8, 20) |] ranges;
  let pattern = Split_join.stripe_windows_per_row ~frame_w:20 ~window ~ranges in
  Alcotest.(check (array int)) "windows/row" [| 8; 8 |] pattern

let stripe_ranges_cover =
  qtest ~count:100 "stripe ranges cover the frame and preserve window counts"
    QCheck2.Gen.(
      triple (int_range 10 80) (pair (int_range 2 6) (int_range 1 2))
        (int_range 2 5))
    (fun (frame_w, (w, sx), parts) ->
      QCheck2.assume (((frame_w - w) / sx) + 1 >= parts);
      let window = Window.v ~step:(Step.v sx 1) (Size.v w 1) in
      let ranges = Split_join.stripe_ranges ~frame_w ~window ~parts in
      let pattern =
        Split_join.stripe_windows_per_row ~frame_w ~window ~ranges
      in
      let total = Array.fold_left ( + ) 0 pattern in
      let expected = ((frame_w - w) / sx) + 1 in
      fst ranges.(0) = 0
      && snd ranges.(parts - 1) = frame_w
      && total = expected)

(* ---- inset / pad ------------------------------------------------------- *)

let test_inset_kernel () =
  let grid = Size.v 4 3 in
  let spec =
    Inset_pad.inset ~grid ~left:1 ~right:1 ~top:1 ~bottom:0 ()
  in
  let b = bench spec in
  let img = Image.Gen.ramp grid in
  feed_frame ~tokens:false b "in" img ~frame_idx:0;
  b.feed "in" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  let kept =
    List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "out"))
  in
  (* Rows 1..2, columns 1..2 of the 4x3 ramp. *)
  Alcotest.(check (list (float 0.))) "kept chunks" [ 5.; 6.; 9.; 10. ] kept

let test_inset_validation () =
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Inset_pad.inset ~grid:(Size.v 3 3) ~left:2 ~right:1 ~top:0 ~bottom:0 ());
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Inset_pad.inset ~grid:(Size.v 3 3) ~left:(-1) ~right:0 ~top:0 ~bottom:0 ())

let test_pad_kernel () =
  let frame = Size.v 2 2 in
  let spec = Inset_pad.pad ~frame ~left:1 ~right:0 ~top:1 ~bottom:0 () in
  let b = bench spec in
  let img = Image.of_scanline_list frame [ 1.; 2.; 3.; 4. ] in
  feed_frame b "in" img ~frame_idx:0;
  ignore (b.run_to_idle ());
  let vals =
    List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "out"))
  in
  Alcotest.(check (list (float 0.)))
    "zero-padded scanline" [ 0.; 0.; 0.; 0.; 1.; 2.; 0.; 3.; 4. ]
    vals

let pad_then_trim_identity =
  qtest ~count:60 "pad kernel then trim recovers the frame"
    QCheck2.Gen.(
      pair (pair (int_range 1 6) (int_range 1 6))
        (pair (int_range 0 2) (int_range 0 2)))
    (fun ((w, h), (l, t)) ->
      let frame = Size.v w h in
      let img = Image.Gen.ramp frame in
      let spec = Inset_pad.pad ~frame ~left:l ~right:1 ~top:t ~bottom:0 () in
      let b = bench spec in
      feed_frame b "in" img ~frame_idx:0;
      ignore (b.run_to_idle ());
      let vals =
        List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "out"))
      in
      let padded = Image.of_scanline_list (Size.v (w + l + 1) (h + t)) vals in
      let trimmed =
        Image_ops.trim padded ~left:l ~right:1 ~top:t ~bottom:0
      in
      Image.equal trimmed img)

(* ---- sources and sinks ------------------------------------------------- *)

let test_source_emission_order () =
  let frame = Size.v 3 2 in
  let img = Image.Gen.ramp frame in
  let spec = Source.spec ~frame ~frames:[ img ] () in
  let b = bench spec in
  ignore (b.run_to_idle ());
  let items = b.out "out" in
  (* 3 pixels, EOL, 3 pixels, EOL, EOF. *)
  Alcotest.(check int) "item count" 9 (List.length items);
  Alcotest.(check int) "pixels" 6 (List.length (data_chunks items));
  let kinds = List.map (fun t -> t.Token.kind) (tokens_of items) in
  Alcotest.(check bool) "two EOLs and one EOF" true
    (kinds = [ Token.End_of_line; Token.End_of_line; Token.End_of_frame ])

let test_source_frame_mismatch () =
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Source.spec ~frame:(Size.v 3 2)
        ~frames:[ Image.Gen.ramp (Size.v 2 2) ]
        ())

let test_const_source_emits_once () =
  let chunk = Image.Gen.ramp (Size.v 2 2) in
  let b = bench (Source.const ~chunk ()) in
  Alcotest.(check int) "single step" 1 (b.run_to_idle ());
  Alcotest.(check int) "one chunk" 1 (List.length (b.out "out"));
  Alcotest.(check int) "never again" 0 (b.run_to_idle ())

let test_sink_collector_grouping () =
  let c = Sink.collector () in
  let b = bench (Sink.spec ~window:Window.pixel c ()) in
  b.feed "in" (px 1.);
  b.feed "in" (Item.ctl (Token.eof 0));
  b.feed "in" (px 2.);
  b.feed "in" (px 3.);
  b.feed "in" (Item.ctl (Token.eof 1));
  ignore (b.run_to_idle ());
  Alcotest.(check int) "chunks" 3 (List.length (Sink.chunks c));
  Alcotest.(check int) "eofs" 2 (Sink.eof_count c);
  let groups = Sink.chunks_between_frames c in
  Alcotest.(check (list int)) "grouping" [ 1; 2 ]
    (List.map List.length groups)

(* ---- compute kernels vs golden ----------------------------------------- *)

let test_conv_kernel_behaviour () =
  let b = bench (Conv.spec ~w:3 ~h:3 ()) in
  let coeff = Image.Gen.constant (Size.v 3 3) (1. /. 9.) in
  b.feed "coeff" (Item.data coeff);
  let win = Image.Gen.ramp (Size.v 3 3) in
  b.feed "in" (Item.data win);
  ignore (b.run_to_idle ());
  match data_chunks (b.out "out") with
  | [ out ] ->
    let golden = Image_ops.convolve win ~kernel:coeff in
    Alcotest.(check (float 1e-9)) "matches golden"
      (Image.get golden ~x:0 ~y:0) (Image.get out ~x:0 ~y:0)
  | _ -> Alcotest.fail "expected one output"

let test_conv_coeff_reload () =
  let b = bench (Conv.spec ~w:1 ~h:1 ()) in
  b.feed "coeff" (Item.data (Image.Gen.constant Size.one 2.));
  b.feed "in" (px 5.);
  ignore (b.run_to_idle ());
  b.feed "coeff" (Item.data (Image.Gen.constant Size.one 3.));
  b.feed "in" (px 5.);
  ignore (b.run_to_idle ());
  let vals =
    List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out "out"))
  in
  Alcotest.(check (list (float 1e-9))) "reloaded between fires" [ 10.; 15. ]
    vals

let test_median_kernel_behaviour () =
  let b = bench (Median.spec ~w:3 ~h:3 ()) in
  let win =
    Image.of_scanline_list (Size.v 3 3) [ 9.; 1.; 8.; 2.; 5.; 7.; 3.; 6.; 4. ]
  in
  b.feed "in" (Item.data win);
  ignore (b.run_to_idle ());
  match data_chunks (b.out "out") with
  | [ out ] -> Alcotest.(check (float 0.)) "median" 5. (Image.get out ~x:0 ~y:0)
  | _ -> Alcotest.fail "expected one output"

let test_bayer_position_dependence () =
  let frame = Size.v 6 6 in
  let mosaic = Image.Gen.ramp frame in
  let golden_r, golden_g, golden_b = Image_ops.bayer_demosaic mosaic in
  let b = bench (Bayer.spec ~frame ()) in
  (* Feed all the valid 3x3 windows in scan order. *)
  for oy = 0 to 3 do
    for ox = 0 to 3 do
      b.feed "in" (Item.data (Image.sub mosaic ~x:ox ~y:oy (Size.v 3 3)))
    done
  done;
  ignore (b.run_to_idle ());
  let plane port =
    Image.of_scanline_list (Size.v 4 4)
      (List.map (fun i -> Image.get i ~x:0 ~y:0) (data_chunks (b.out port)))
  in
  Alcotest.check image "red" golden_r (plane "r");
  Alcotest.check image "green" golden_g (plane "g");
  Alcotest.check image "blue" golden_b (plane "b")

let test_feedback_init_kernel () =
  let spec =
    Feedback.init ~window:Window.pixel
      ~initial:[ Image.Gen.constant Size.one 7. ]
      ()
  in
  let b = bench spec in
  (* Emits the initial value before consuming anything. *)
  ignore (b.run_to_idle ());
  (match data_chunks (b.out "out") with
  | [ i ] -> Alcotest.(check (float 0.)) "initial" 7. (Image.get i ~x:0 ~y:0)
  | _ -> Alcotest.fail "expected initial chunk");
  b.feed "in" (px 1.);
  b.feed "in" (Item.ctl (Token.eof 0));
  ignore (b.run_to_idle ());
  let items = b.out "out" in
  Alcotest.(check int) "forwards data, drops tokens" 1 (List.length items)

let suite =
  [
    Alcotest.test_case "buffer: config validation" `Quick
      test_buffer_config_validation;
    Alcotest.test_case "buffer: storage rule" `Quick test_buffer_storage_rule;
    Alcotest.test_case "buffer: window stream" `Quick
      test_buffer_emits_all_windows_in_order;
    Alcotest.test_case "buffer: downsampling" `Quick test_buffer_downsampling;
    Alcotest.test_case "buffer: frame reset" `Quick
      test_buffer_multi_frame_reset;
    Alcotest.test_case "buffer: wrong block rejected" `Quick
      test_buffer_rejects_wrong_block;
    buffer_window_property;
    Alcotest.test_case "split: round robin" `Quick test_split_round_robin;
    Alcotest.test_case "split: token broadcast" `Quick
      test_split_broadcasts_tokens;
    Alcotest.test_case "join: round robin" `Quick test_join_round_robin;
    Alcotest.test_case "join: token merge" `Quick test_join_merges_tokens;
    Alcotest.test_case "join: EOF resets cursor" `Quick
      test_join_eof_resets_cursor;
    split_join_roundtrip;
    Alcotest.test_case "split: pattern runs" `Quick test_pattern_split_runs;
    Alcotest.test_case "column split: overlap" `Quick test_column_split_overlap;
    Alcotest.test_case "column split: validation" `Quick
      test_column_split_validation;
    Alcotest.test_case "stripes: paper-style ranges" `Quick test_stripe_ranges;
    stripe_ranges_cover;
    Alcotest.test_case "inset: trims grid" `Quick test_inset_kernel;
    Alcotest.test_case "inset: validation" `Quick test_inset_validation;
    Alcotest.test_case "pad: zero margins" `Quick test_pad_kernel;
    pad_then_trim_identity;
    Alcotest.test_case "source: emission order" `Quick
      test_source_emission_order;
    Alcotest.test_case "source: frame mismatch" `Quick
      test_source_frame_mismatch;
    Alcotest.test_case "const source: once" `Quick test_const_source_emits_once;
    Alcotest.test_case "sink: collector grouping" `Quick
      test_sink_collector_grouping;
    Alcotest.test_case "conv: behaviour vs golden" `Quick
      test_conv_kernel_behaviour;
    Alcotest.test_case "conv: coefficient reload" `Quick test_conv_coeff_reload;
    Alcotest.test_case "median: behaviour" `Quick test_median_kernel_behaviour;
    Alcotest.test_case "bayer: position dependent" `Quick
      test_bayer_position_dependence;
    Alcotest.test_case "feedback: init kernel" `Quick test_feedback_init_kernel;
  ]

let test_buffer_emit_eol () =
  let frame = Size.v 5 4 in
  let cfg =
    Buffer.config ~emit_eol:true ~out_window:(Window.windowed 3 3) ~frame ()
  in
  let b = bench (Buffer.spec cfg) in
  feed_frame b "in" (Image.Gen.ramp frame) ~frame_idx:0;
  ignore (b.run_to_idle ());
  let items = b.out "out" in
  let kinds = List.map (fun t -> t.Token.kind) (tokens_of items) in
  (* 2 window rows: EOL, EOL then EOF. *)
  Alcotest.(check int) "token count" 3 (List.length kinds);
  Alcotest.(check bool) "last is EOF" true
    (List.nth kinds 2 = Token.End_of_frame);
  Alcotest.(check bool) "EOLs first" true
    (List.nth kinds 0 = Token.End_of_line
    && List.nth kinds 1 = Token.End_of_line);
  (* The EOL sits after each complete window row. *)
  let rec row_lengths acc current = function
    | [] -> List.rev acc
    | Item.Data _ :: rest -> row_lengths acc (current + 1) rest
    | Item.Ctl { Token.kind = Token.End_of_line; _ } :: rest ->
      row_lengths (current :: acc) 0 rest
    | Item.Ctl _ :: rest -> row_lengths acc current rest
  in
  Alcotest.(check (list int)) "rows of 3 windows" [ 3; 3 ]
    (row_lengths [] 0 items)

let suite =
  suite
  @ [ Alcotest.test_case "buffer: emit_eol" `Quick test_buffer_emit_eol ]

let histogram_cross_validation =
  (* Two independent implementations agree on uniform bins: the kernel's
     linear findBin (via [Histogram.reference]) and the arithmetic
     whole-frame [Image_ops.histogram]. *)
  qtest ~count:120 "histogram implementations agree"
    QCheck2.Gen.(
      triple (int_range 1 12)
        (pair (int_range 2 10) (int_range 2 10))
        int)
    (fun (bins, (w, h), seed) ->
      let img =
        Image.Gen.noise (Prng.create seed) (Size.v w h) 20.
      in
      let lo = 0. and hi = 20. in
      let reference = Histogram.reference img ~bins ~lo ~hi in
      let ops = Image_ops.histogram img ~bins ~lo ~hi in
      List.for_all
        (fun i -> Image.get reference ~x:i ~y:0 = ops.(i))
        (List.init bins Fun.id))

let suite = suite @ [ histogram_cross_validation ]
