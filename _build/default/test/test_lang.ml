(* Tests for the textual application description. *)

open Block_parallel
open Harness

let minimal =
  {|
# a comment line
input  cam frame=8x6 rate=10 frames=2 seed=3
kernel g   gain 2
output out

cam.out -> g.in
g.out   -> out.in
|}

let test_parse_minimal () =
  let p = Lang.parse minimal in
  Alcotest.(check int) "nodes" 3 (Graph.size p.Lang.graph);
  Alcotest.(check int) "frames" 2 p.Lang.n_frames;
  (match p.Lang.rate with
  | Some r -> Alcotest.(check (float 0.)) "rate" 10. (Rate.to_hz r)
  | None -> Alcotest.fail "expected rate");
  Alcotest.(check (list string)) "inputs" [ "cam" ] (List.map fst p.Lang.inputs);
  Alcotest.(check (list string)) "outputs" [ "out" ]
    (List.map fst p.Lang.outputs)

let test_parse_and_run () =
  let p = Lang.parse minimal in
  let compiled = Pipeline.compile ~machine:Machine.default p.Lang.graph in
  let result = Pipeline.simulate compiled ~greedy:false in
  Alcotest.(check int) "no leftovers" 0 result.Sim.leftover_items;
  let collector = List.assoc "out" p.Lang.outputs in
  Alcotest.(check int) "all pixels doubled" (2 * 48)
    (List.length (Sink.chunks collector));
  (* Functional check: gain 2 over the generated frames. *)
  let frames = Image.Gen.frame_sequence ~seed:3 (Size.v 8 6) 2 in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list (Size.v 8 6)
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames collector)
  in
  List.iter2
    (fun f g ->
      Alcotest.check image "doubled" (Image_ops.gain f 2.) g)
    frames got

let test_parse_full_pipeline () =
  (* The Figure 1(b) application written in the surface syntax. *)
  let src =
    {|
input  cam    frame=24x18 rate=20 frames=1 seed=7
const  coeff  size=5x5 value=0.04
const  bounds bins=16 lo=-8 hi=8
kernel med    median 3 3
kernel conv   conv 5 5
kernel diff   subtract
kernel hist   histogram bins=16
kernel total  merge bins=16
output stats  window=16x1
cam.out    -> med.in
cam.out    -> conv.in
coeff.out  -> conv.coeff
med.out    -> diff.in0
conv.out   -> diff.in1
diff.out   -> hist.in
bounds.out -> hist.bins
hist.out   -> total.in
total.out  -> stats.in
dep cam -> total
|}
  in
  let p = Lang.parse src in
  Alcotest.(check int) "nine nodes" 9 (Graph.size p.Lang.graph);
  Alcotest.(check int) "one dependency edge" 1
    (List.length (Graph.deps p.Lang.graph));
  let compiled = Pipeline.compile ~machine:Machine.default p.Lang.graph in
  let result = Pipeline.simulate compiled ~greedy:true in
  Alcotest.(check int) "one histogram chunk" 1
    (List.length (Sink.chunks (List.assoc "stats" p.Lang.outputs)));
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items

let expect_parse_error ?needle src =
  match Err.guard (fun () -> Lang.parse src) with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> (
    Alcotest.check err_kind "unsupported" (Err.Unsupported "") e;
    match needle with
    | Some n ->
      Alcotest.(check bool)
        (Printf.sprintf "message mentions %S (got %s)" n (Err.to_string e))
        true
        (contains (Err.to_string e) n)
    | None -> ())

let test_errors () =
  expect_parse_error ~needle:"line 1" "bogus stuff\n";
  expect_parse_error ~needle:"frame" "input cam rate=10\n";
  expect_parse_error ~needle:"integer" "input cam frame=axb rate=10\n";
  expect_parse_error ~needle:"unknown kernel kind"
    "input c frame=4x4 rate=1\nkernel k wat 1\noutput o\nc.out -> k.in\nk.out -> o.in\n";
  expect_parse_error ~needle:"unknown node"
    "input c frame=4x4 rate=1\noutput o\nmissing.out -> o.in\n";
  expect_parse_error ~needle:"duplicate"
    "input c frame=4x4 rate=1\nkernel c gain 1\noutput o\n";
  expect_parse_error ~needle:"no input" "output o\n";
  expect_parse_error ~needle:"no output" "input c frame=4x4 rate=1\n";
  (* A structurally invalid program (unconnected input) is caught by the
     final validation. *)
  expect_parse_error ~needle:"invalid program"
    "input c frame=4x4 rate=1\nkernel g gain 1\noutput o\ng.out -> o.in\n";
  (* NODE.PORT syntax errors. *)
  expect_parse_error ~needle:"NODE.PORT"
    "input c frame=4x4 rate=1\noutput o\nc -> o.in\n"

let test_capacity_option () =
  let src =
    "input c frame=4x4 rate=1 frames=1\nkernel g gain 1\noutput o\n\
     c.out -> g.in cap=64\ng.out -> o.in\n"
  in
  let p = Lang.parse src in
  let g_node = Graph.node_by_name p.Lang.graph "g" in
  match Graph.in_channel p.Lang.graph g_node.Graph.id "in" with
  | Some c -> Alcotest.(check int) "capacity" 64 c.Graph.capacity
  | None -> Alcotest.fail "expected channel"

let test_fir_program () =
  let src =
    "input ant frame=64x1 rate=50 frames=2\nconst taps size=8x1 value=0.125\n\
     kernel f fir 8\noutput bb\nant.out -> f.in\ntaps.out -> f.coeff\n\
     f.out -> bb.in\n"
  in
  let p = Lang.parse src in
  let compiled = Pipeline.compile ~machine:Machine.default p.Lang.graph in
  let result = Pipeline.simulate compiled ~greedy:false in
  Alcotest.(check int) "fir chunks" (2 * 57)
    (List.length (Sink.chunks (List.assoc "bb" p.Lang.outputs)));
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  (* 1-D golden: the FIR equals a 8x1 convolution. *)
  let frames = Image.Gen.frame_sequence ~seed:1 (Size.v 64 1) 2 in
  let taps = Image.Gen.constant (Size.v 8 1) 0.125 in
  let golden = List.map (fun f -> Image_ops.convolve f ~kernel:taps) frames in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list (Size.v 57 1)
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames (List.assoc "bb" p.Lang.outputs))
  in
  List.iter2 (fun a b -> Alcotest.check image "fir golden" a b) golden got

let test_kernel_kinds_listed () =
  Alcotest.(check bool) "conv present" true
    (List.mem "conv" Lang.kernel_kinds);
  Alcotest.(check bool) "fir present" true (List.mem "fir" Lang.kernel_kinds)

let suite =
  [
    Alcotest.test_case "lang: minimal program" `Quick test_parse_minimal;
    Alcotest.test_case "lang: parse and run" `Quick test_parse_and_run;
    Alcotest.test_case "lang: full pipeline" `Slow test_parse_full_pipeline;
    Alcotest.test_case "lang: errors" `Quick test_errors;
    Alcotest.test_case "lang: channel capacity" `Quick test_capacity_option;
    Alcotest.test_case "lang: 1-D fir" `Quick test_fir_program;
    Alcotest.test_case "lang: kinds" `Quick test_kernel_kinds_listed;
  ]

let test_values_const () =
  let src =
    "input c frame=6x5 rate=5 frames=1\nconst k size=2x1 values=1,2\n\
     kernel f fir 2\noutput o\nc.out -> f.in\nk.out -> f.coeff\nf.out -> o.in\n"
  in
  let p = Lang.parse src in
  let compiled = Pipeline.compile ~machine:Machine.default p.Lang.graph in
  ignore (Pipeline.simulate compiled ~greedy:false);
  let chunks = Sink.chunks (List.assoc "o" p.Lang.outputs) in
  Alcotest.(check int) "fir output count" ((6 - 1) * 5) (List.length chunks);
  (* Values were used in scan order: taps [1;2] flipped over [p0;p1] give
     2*p0 + 1*p1... verified against the golden convolution. *)
  let frames = Image.Gen.frame_sequence ~seed:1 (Size.v 6 5) 1 in
  let taps = Image.of_scanline_list (Size.v 2 1) [ 1.; 2. ] in
  let golden = Image_ops.convolve (List.hd frames) ~kernel:taps in
  let got =
    Image.of_scanline_list (Size.v 5 5)
      (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks)
  in
  Alcotest.check image "values respected" golden got

let test_values_errors () =
  expect_parse_error ~needle:"expected 4 numbers"
    "input c frame=4x4 rate=1\nconst k size=2x2 values=1,2,3\noutput o\nc.out -> o.in\n";
  expect_parse_error ~needle:"exactly one"
    "input c frame=4x4 rate=1\nconst k size=2x2 value=1 values=1,2,3,4\n\
     output o\nc.out -> o.in\n"

let suite =
  suite
  @ [
      Alcotest.test_case "lang: values= const" `Quick test_values_const;
      Alcotest.test_case "lang: values errors" `Quick test_values_errors;
    ]
