(* Tests for the standalone simulated-annealing placer. *)

open Block_parallel

let compiled_and_mapping () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  (compiled.Pipeline.analysis, Pipeline.mapping_one_to_one compiled)

let test_mesh_side () =
  let an, mapping = compiled_and_mapping () in
  let p = Placement.random_placement ~seed:1 an mapping in
  let procs = Mapping.processors mapping in
  Alcotest.(check bool) "mesh fits processors" true
    (p.Placement.mesh_side * p.Placement.mesh_side >= procs);
  Alcotest.(check bool) "mesh not oversized" true
    ((p.Placement.mesh_side - 1) * (p.Placement.mesh_side - 1) < procs)

let test_tiles_distinct () =
  let an, mapping = compiled_and_mapping () in
  let p = Placement.place an mapping in
  let procs = Mapping.processors mapping in
  let tiles = List.init procs p.Placement.tile_of in
  Alcotest.(check int) "all tiles distinct" procs
    (List.length (List.sort_uniq compare tiles));
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool) "within mesh" true
        (x >= 0 && y >= 0 && x < p.Placement.mesh_side
        && y < p.Placement.mesh_side))
    tiles

let test_annealing_beats_random () =
  let an, mapping = compiled_and_mapping () in
  let random = Placement.random_placement ~seed:11 an mapping in
  let annealed = Placement.place an mapping in
  Alcotest.(check bool)
    (Printf.sprintf "annealed %.0f <= random %.0f" annealed.Placement.cost
       random.Placement.cost)
    true
    (annealed.Placement.cost <= random.Placement.cost);
  Alcotest.(check bool) "cost consistent with cost function" true
    (Float.abs
       (annealed.Placement.cost
       -. Placement.communication_cost an mapping annealed.Placement.tile_of)
    < 1e-6)

let test_deterministic () =
  let an, mapping = compiled_and_mapping () in
  let a = Placement.place an mapping in
  let b = Placement.place an mapping in
  Alcotest.(check (float 1e-9)) "same seed, same cost" a.Placement.cost
    b.Placement.cost

let test_cost_positive_when_spread () =
  let an, mapping = compiled_and_mapping () in
  let p = Placement.random_placement ~seed:3 an mapping in
  Alcotest.(check bool) "random placements have cost" true
    (p.Placement.cost > 0.)

let suite =
  [
    Alcotest.test_case "placement: mesh sizing" `Quick test_mesh_side;
    Alcotest.test_case "placement: tiles distinct" `Quick test_tiles_distinct;
    Alcotest.test_case "placement: annealing beats random" `Quick
      test_annealing_beats_random;
    Alcotest.test_case "placement: deterministic" `Quick test_deterministic;
    Alcotest.test_case "placement: nonzero cost" `Quick
      test_cost_positive_when_spread;
  ]
