(* Tests for the report harness's rendered output: the tables must carry
   the key artifacts a reader checks against the paper. *)

open Block_parallel
open Harness

let render f =
  let buf = Stdlib.Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  ignore (f ppf);
  Format.pp_print_flush ppf ();
  Stdlib.Buffer.contents buf

let test_fig2_render () =
  let s = render Bp_report.Report.fig2 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "3x3 Median"; "5x5 Conv"; "(20x14)"; "30Hz"; "const" ]

let test_fig3_render () =
  let s = render Bp_report.Report.fig3 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "storage [24x6]"; "storage [24x10]"; "trim l=1 r=1 t=1 b=1" ]

let test_fig5_render () =
  let s = render Bp_report.Report.fig5 in
  Alcotest.(check bool) "24 reused" true (contains s "24");
  Alcotest.(check bool) "96%" true (contains s "96.0%")

let test_fig13_render () =
  let s = render Bp_report.Report.fig13 in
  List.iter
    (fun label ->
      Alcotest.(check bool) ("row for " ^ label) true (contains s label))
    Apps.Suite.labels;
  Alcotest.(check bool) "average row" true (contains s "GM/1:1")

let test_energy_render () =
  let s = render Bp_report.Report.energy_ablation in
  Alcotest.(check bool) "both mappings" true
    (contains s "1:1" && contains s "greedy")

let test_schedulability_render () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
      ~n_frames:1 ()
  in
  let compiled = Pipeline.compile ~machine:Machine.default inst.App.graph in
  let s =
    Format.asprintf "@[<v>%a@]" Schedulability.pp
      (Schedulability.check compiled.Pipeline.machine compiled.Pipeline.graph)
  in
  Alcotest.(check bool) "verdict line" true (contains s "schedulable: true");
  Alcotest.(check bool) "per-kernel rows" true (contains s "3x3 Median")

let suite =
  [
    Alcotest.test_case "report: figure 2 text" `Quick test_fig2_render;
    Alcotest.test_case "report: figure 3 text" `Quick test_fig3_render;
    Alcotest.test_case "report: figure 5 text" `Quick test_fig5_render;
    Alcotest.test_case "report: figure 13 text" `Slow test_fig13_render;
    Alcotest.test_case "report: energy text" `Slow test_energy_render;
    Alcotest.test_case "report: schedulability text" `Quick
      test_schedulability_render;
  ]

let test_machine_ablation () =
  let rows =
    Bp_report.Report.machine_ablation
      (Format.make_formatter (fun _ _ _ -> ()) ignore)
  in
  match rows with
  | [ d; f ] ->
    Alcotest.(check bool) "both meet rate" true
      (d.Bp_report.Report.m_met && f.Bp_report.Report.m_met);
    Alcotest.(check bool) "faster PE, fewer kernels" true
      (f.Bp_report.Report.m_compute_kernels
      < d.Bp_report.Report.m_compute_kernels);
    Alcotest.(check bool) "faster PE, fewer cores" true
      (f.Bp_report.Report.m_pes_1to1 < d.Bp_report.Report.m_pes_1to1)
  | _ -> Alcotest.fail "expected two machines"

let suite =
  suite
  @ [ Alcotest.test_case "report: machine ablation" `Slow test_machine_ablation ]
