(* Parameterized end-to-end sweeps: the same pipeline verified across a
   grid of window geometries, frame extents, and rates. Each case is a
   distinct compile+simulate+verify run against a whole-frame reference. *)

open Block_parallel
open Harness

(* One windowed filter through the full compile+simulate path. *)
let run_filter_case ~frame ~spec ~golden =
  let rate = Rate.hz 10. in
  let frames = Image.Gen.frame_sequence ~seed:6 frame 2 in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let k, feed_coeff = spec g in
  let collector = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel collector ()) in
  Graph.connect g ~from:(src, "out") ~into:(k, "in");
  feed_coeff ();
  Graph.connect g ~from:(k, "out") ~into:(sink, "in");
  let compiled = Pipeline.compile ~machine:Machine.default g in
  let result = Pipeline.simulate compiled ~greedy:true in
  Alcotest.(check int) "clean" 0 result.Sim.leftover_items;
  let expected = List.map golden frames in
  let out_extent = Image.size (List.hd expected) in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list out_extent
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames collector)
  in
  List.iter2
    (fun a b ->
      Alcotest.(check (float 1e-9)) "pixels" 0. (Image.max_abs_diff a b))
    expected got

let conv_case (kw, kh) () =
  let frame = Size.v (kw + 9) (kh + 7) in
  let coeffs =
    Image.init (Size.v kw kh) (fun ~x ~y ->
        0.01 *. float_of_int (x + (2 * y) + 1))
  in
  run_filter_case ~frame
    ~spec:(fun g ->
      let conv = Graph.add g (Conv.spec ~w:kw ~h:kh ()) in
      let c = Graph.add g (Source.const ~chunk:coeffs ()) in
      (conv, fun () -> Graph.connect g ~from:(c, "out") ~into:(conv, "coeff")))
    ~golden:(fun f -> Image_ops.convolve f ~kernel:coeffs)

let median_case (kw, kh) () =
  let frame = Size.v (kw + 8) (kh + 6) in
  run_filter_case ~frame
    ~spec:(fun g -> (Graph.add g (Median.spec ~w:kw ~h:kh ()), fun () -> ()))
    ~golden:(fun f -> Image_ops.median f ~w:kw ~h:kh)

let decimate_case (fx, fy) () =
  let frame = Size.v ((3 * fx) + 4) ((3 * fy) + 3) in
  run_filter_case ~frame
    ~spec:(fun g -> (Graph.add g (Decimate.spec ~fx ~fy ()), fun () -> ()))
    ~golden:(fun f -> Image_ops.downsample f ~fx ~fy)

let image_pipeline_case (w, h, rate_hz) () =
  let inst =
    Apps.Image_pipeline.v ~frame:(Size.v w h) ~rate:(Rate.hz rate_hz)
      ~n_frames:2 ()
  in
  ignore (check_app ~greedy_list:[ true ] inst)

let edge_case (w, h) () =
  let inst =
    Apps.Edge_app.v ~frame:(Size.v w h) ~rate:(Rate.hz 20.) ~n_frames:2 ()
  in
  ignore (check_app ~greedy_list:[ false ] inst)

let bayer_case (w, h) () =
  let inst =
    Apps.Bayer_app.v ~frame:(Size.v w h) ~rate:(Rate.hz 25.) ~n_frames:2 ()
  in
  ignore (check_app ~greedy_list:[ true ] inst)

let named fmt f cases =
  List.map
    (fun case -> Alcotest.test_case (fmt case) `Slow (f case))
    cases

let suite =
  named
    (fun (w, h) -> Printf.sprintf "conv %dx%d end-to-end" w h)
    conv_case
    [ (1, 1); (3, 3); (5, 5); (7, 7); (5, 3); (3, 5); (7, 1); (1, 7) ]
  @ named
      (fun (w, h) -> Printf.sprintf "median %dx%d end-to-end" w h)
      median_case
      [ (3, 3); (5, 5); (3, 1); (1, 3); (5, 3) ]
  @ named
      (fun (fx, fy) -> Printf.sprintf "decimate %dx%d end-to-end" fx fy)
      decimate_case
      [ (2, 2); (3, 2); (2, 3); (4, 4) ]
  @ named
      (fun (w, h, r) -> Printf.sprintf "image pipeline %dx%d@%gHz" w h r)
      image_pipeline_case
      [ (16, 14, 20.); (20, 16, 35.); (32, 24, 25.); (24, 18, 15.) ]
  @ named
      (fun (w, h) -> Printf.sprintf "edge detect %dx%d" w h)
      edge_case
      [ (14, 12); (26, 20) ]
  @ named
      (fun (w, h) -> Printf.sprintf "bayer %dx%d" w h)
      bayer_case
      [ (12, 10); (22, 18) ]
