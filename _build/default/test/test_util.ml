(* Unit and property tests for Bp_util: ids, errors, PRNG, stats, tables. *)

open Block_parallel
open Harness

let test_id_fresh () =
  let g = Id.make_gen () in
  Alcotest.(check int) "first" 0 (Id.fresh g);
  Alcotest.(check int) "second" 1 (Id.fresh g);
  Alcotest.(check int) "peek" 2 (Id.peek g);
  Alcotest.(check int) "peek is stable" 2 (Id.peek g)

let test_id_independent () =
  let a = Id.make_gen () and b = Id.make_gen () in
  ignore (Id.fresh a);
  ignore (Id.fresh a);
  Alcotest.(check int) "b untouched" 0 (Id.fresh b)

let test_id_reserve () =
  let g = Id.make_gen () in
  Id.reserve g 10;
  Alcotest.(check int) "jumps forward" 10 (Id.fresh g);
  Id.reserve g 5;
  Alcotest.(check int) "never moves back" 11 (Id.fresh g)

let test_err_to_string () =
  Alcotest.(check bool) "prefix"
    true
    (String.length (Err.to_string (Err.Rate_mismatch "x")) > 2);
  Alcotest.(check string) "rate prefix" "rate mismatch: boom"
    (Err.to_string (Err.Rate_mismatch "boom"))

let test_err_guard () =
  (match Err.guard (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "ok passes" 42 v
  | Error _ -> Alcotest.fail "unexpected error");
  match Err.guard (fun () -> Err.fail (Err.Unsupported "nope")) with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.check err_kind "class" (Err.Unsupported "") e

let test_err_formatters () =
  expect_error (Err.Invalid_parameterization "") (fun () ->
      Err.invalidf "bad %d" 3);
  expect_error (Err.Graph_malformed "") (fun () -> Err.graphf "bad");
  expect_error (Err.Not_schedulable "") (fun () -> Err.schedulef "bad");
  expect_error (Err.Resource_exhausted "") (fun () -> Err.resourcef "bad");
  expect_error (Err.Alignment_error "") (fun () -> Err.alignf "bad")

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_zero_seed () =
  let g = Prng.create 0 in
  (* Must not be the degenerate all-zero stream. *)
  let any_nonzero =
    List.exists (fun _ -> Prng.int g 100 <> 0) (List.init 20 Fun.id)
  in
  Alcotest.(check bool) "non-degenerate" true any_nonzero

let test_prng_split () =
  let g = Prng.create 7 in
  let h = Prng.split g in
  let xs = List.init 10 (fun _ -> Prng.int g 1000) in
  let ys = List.init 10 (fun _ -> Prng.int h 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_shuffle_permutes () =
  let g = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Bp_util.Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Bp_util.Stats.mean []);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Bp_util.Stats.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "min" 1. (Bp_util.Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Bp_util.Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.(check int) "clamp lo" 0 (Bp_util.Stats.clamp ~lo:0 ~hi:5 (-3));
  Alcotest.(check int) "clamp hi" 5 (Bp_util.Stats.clamp ~lo:0 ~hi:5 9);
  Alcotest.(check int) "ceil_div exact" 3 (Bp_util.Stats.ceil_div 9 3);
  Alcotest.(check int) "ceil_div round" 4 (Bp_util.Stats.ceil_div 10 3);
  Alcotest.(check string) "pct" "37.5%" (Bp_util.Stats.pct 0.375)

let test_stats_errors () =
  (try
     ignore (Bp_util.Stats.minimum []);
     Alcotest.fail "expected exception"
   with Invalid_argument _ -> ());
  try
    ignore (Bp_util.Stats.ceil_div 1 0);
    Alcotest.fail "expected exception"
  with Invalid_argument _ -> ()

let test_table_renders () =
  let t = Table.create ~title:"T" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_rule t;
  Table.add_row t [ "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains cell" true (contains s "22");
  Alcotest.(check bool) "pads short rows" true (contains s "| 22 |")

let test_table_row_too_long () =
  let t = Table.create ~title:"" [ "a" ] in
  try
    Table.add_row t [ "1"; "2" ];
    Alcotest.fail "expected exception"
  with Invalid_argument _ -> ()

let prng_bounds =
  qtest "prng int stays in bounds"
    QCheck2.Gen.(pair (int_range 1 10_000) int)
    (fun (bound, seed) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prng_float_bounds =
  qtest "prng float stays in bounds" QCheck2.Gen.int (fun seed ->
      let g = Prng.create seed in
      let v = Prng.float g 3.5 in
      v >= 0. && v < 3.5)

let stats_mean_bounded =
  qtest "mean between min and max"
    QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 1000.))
    (fun xs ->
      let m = Bp_util.Stats.mean xs in
      m >= Bp_util.Stats.minimum xs -. 1e-9
      && m <= Bp_util.Stats.maximum xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "id: fresh increments" `Quick test_id_fresh;
    Alcotest.test_case "id: generators independent" `Quick test_id_independent;
    Alcotest.test_case "id: reserve" `Quick test_id_reserve;
    Alcotest.test_case "err: to_string" `Quick test_err_to_string;
    Alcotest.test_case "err: guard" `Quick test_err_guard;
    Alcotest.test_case "err: formatters" `Quick test_err_formatters;
    Alcotest.test_case "prng: deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng: zero seed ok" `Quick test_prng_zero_seed;
    Alcotest.test_case "prng: split independent" `Quick test_prng_split;
    Alcotest.test_case "prng: shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "stats: basics" `Quick test_stats_basics;
    Alcotest.test_case "stats: errors" `Quick test_stats_errors;
    Alcotest.test_case "table: renders" `Quick test_table_renders;
    Alcotest.test_case "table: row too long" `Quick test_table_row_too_long;
    prng_bounds;
    prng_float_bounds;
    stats_mean_bounded;
  ]
