(* The benchmark harness.

   Two halves:

   1. Figure regeneration — every table and figure of the paper is rebuilt
      from scratch and printed, exactly as `bpc report all` does. This is
      the reproduction artifact recorded in EXPERIMENTS.md.

   2. Bechamel micro-benchmarks — one `Test.make` per experiment driver and
      per performance-relevant component (dataflow analysis, each transform,
      the simulator, the kernels' inner loops, the annealer, the event
      heap), so regressions in the compiler itself are visible.

   Run with: dune exec bench/main.exe
   Skip the (slower) figure regeneration with: BENCH_ONLY=1 dune exec bench/main.exe *)

open Block_parallel
open Bechamel
open Toolkit

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) ignore

(* ---- shared fixtures --------------------------------------------------- *)

let small = Size.v 24 18

let pipeline_graph () =
  (Apps.Image_pipeline.v ~frame:small ~rate:(Rate.hz 30.) ~n_frames:1 ())
    .App.graph

let compiled_pipeline () =
  Pipeline.compile ~machine:Machine.default (pipeline_graph ())

(* ---- micro-benchmarks --------------------------------------------------- *)

let bench_analysis =
  Test.make ~name:"dataflow-analyze (fig 2)"
    (Staged.stage @@ fun () -> ignore (Dataflow.analyze (pipeline_graph ())))

let bench_align =
  Test.make ~name:"align-trim (fig 3/8)"
    (Staged.stage @@ fun () ->
     let g = pipeline_graph () in
     ignore (Align.run g))

let bench_buffering =
  Test.make ~name:"buffer-insertion (fig 3)"
    (Staged.stage @@ fun () ->
     let g = pipeline_graph () in
     ignore (Align.run g);
     ignore (Buffering.run g))

let bench_compile =
  Test.make ~name:"full-compile (fig 4)"
    (Staged.stage @@ fun () -> ignore (compiled_pipeline ()))

let bench_parallelize_math =
  Test.make ~name:"stripe-ranges (fig 10)"
    (Staged.stage @@ fun () ->
     ignore
       (Split_join.stripe_ranges ~frame_w:96
          ~window:(Conv.input_window ~w:5 ~h:5)
          ~parts:5))

let bench_multiplex =
  Test.make ~name:"greedy-multiplex (fig 12)"
    (let compiled = compiled_pipeline () in
     Staged.stage @@ fun () ->
     ignore (Multiplex.greedy compiled.Pipeline.machine compiled.Pipeline.graph))

let bench_simulate =
  Test.make ~name:"simulate-one-frame (fig 13 inner loop)"
    (Staged.stage @@ fun () ->
     let inst =
       Apps.Histogram_app.v ~frame:(Size.v 12 9) ~rate:(Rate.hz 30.)
         ~n_frames:1 ()
     in
     let g = inst.App.graph in
     ignore
       (Sim.run ~graph:g ~mapping:(Mapping.one_to_one g)
          ~machine:Machine.default ()))

let bench_reuse_math =
  Test.make ~name:"reuse-stats (fig 5)"
    (Staged.stage @@ fun () ->
     ignore (Reuse.of_window (Conv.input_window ~w:5 ~h:5)))

let bench_placement =
  Test.make ~name:"simulated-annealing-placement"
    (let compiled = compiled_pipeline () in
     let mapping = Pipeline.mapping_one_to_one compiled in
     let an = compiled.Pipeline.analysis in
     Staged.stage @@ fun () -> ignore (Placement.place an mapping))

let bench_conv_kernel =
  Test.make ~name:"golden-convolve-32x32"
    (let img = Image.Gen.ramp (Size.v 32 32) in
     let k = Image.Gen.constant (Size.v 5 5) 0.04 in
     Staged.stage @@ fun () -> ignore (Image_ops.convolve img ~kernel:k))

let bench_median_kernel =
  Test.make ~name:"golden-median-32x32"
    (let img = Image.Gen.ramp (Size.v 32 32) in
     Staged.stage @@ fun () -> ignore (Image_ops.median img ~w:3 ~h:3))

let bench_lang_parse =
  Test.make ~name:"lang-parse (.bp front end)"
    (let src =
       "input cam frame=24x18 rate=20 frames=1\n\
        const coeff size=5x5 value=0.04\n\
        const bounds bins=16 lo=-8 hi=8\n\
        kernel med median 3 3\nkernel conv conv 5 5\n\
        kernel diff subtract\nkernel hist histogram bins=16\n\
        kernel total merge bins=16\noutput stats window=16x1\n\
        cam.out -> med.in\ncam.out -> conv.in\ncoeff.out -> conv.coeff\n\
        med.out -> diff.in0\nconv.out -> diff.in1\ndiff.out -> hist.in\n\
        bounds.out -> hist.bins\nhist.out -> total.in\n\
        total.out -> stats.in\ndep cam -> total\n"
     in
     Staged.stage @@ fun () -> ignore (Lang.parse src))

let bench_schedulability =
  Test.make ~name:"schedulability-check"
    (let compiled = compiled_pipeline () in
     Staged.stage @@ fun () ->
     ignore
       (Schedulability.check compiled.Pipeline.machine compiled.Pipeline.graph))

let bench_heap =
  Test.make ~name:"event-heap-1k"
    (Staged.stage @@ fun () ->
     let h = Bp_sim.Heap.create ~dummy:0 () in
     for i = 0 to 999 do
       Bp_sim.Heap.push h ~time:(float_of_int ((i * 7919) mod 997)) i
     done;
     while not (Bp_sim.Heap.is_empty h) do
       ignore (Bp_sim.Heap.pop h)
     done)

let benchmarks =
  [
    bench_analysis;
    bench_align;
    bench_buffering;
    bench_compile;
    bench_parallelize_math;
    bench_multiplex;
    bench_simulate;
    bench_reuse_math;
    bench_placement;
    bench_lang_parse;
    bench_schedulability;
    bench_conv_kernel;
    bench_median_kernel;
    bench_heap;
  ]

(* Bechamel's full analysis pipeline, rendered as a simple table. *)
let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"block-parallel" benchmarks in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw) instances
  in
  let table = Table.create ~title:"micro-benchmarks" [ "benchmark"; "ns/run" ] in
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.sprintf "%.0f" est
            | _ -> "-"
          in
          Table.add_row table [ name; ns ])
        result)
    results;
  Table.print table

(* A metrics snapshot of one instrumented reference run (the running
   example under the greedy mapping), printed with the bechamel numbers so
   a perf PR shows *where* time moved, not just that it moved. Set
   BENCH_METRICS=path to also write the snapshot as JSON. *)
let metrics_snapshot () =
  let compiled = compiled_pipeline () in
  let obs = Instrument.create ~graph:compiled.Pipeline.graph () in
  let result =
    Sim.run
      ~observer:(Instrument.observer obs)
      ~channel_observer:(Instrument.channel_observer obs)
      ~graph:compiled.Pipeline.graph
      ~mapping:(Pipeline.mapping_greedy compiled)
      ~machine:compiled.Pipeline.machine ()
  in
  Instrument.finalize obs ~result;
  let m = Instrument.metrics obs in
  print_endline "==== metrics snapshot (image-pipeline, greedy) ====";
  Format.printf "%a@." Metrics.pp m;
  match Sys.getenv_opt "BENCH_METRICS" with
  | Some path ->
    Obs_json.write_file ~path (Metrics.to_json m);
    Printf.printf "wrote %s\n" path
  | None -> ()

let () =
  if Sys.getenv_opt "BENCH_ONLY" = None then begin
    print_endline "==== figure and table reproduction ====";
    Bp_report.Report.all Format.std_formatter
  end
  else ignore null_ppf;
  print_endline "==== compiler micro-benchmarks ====";
  run_benchmarks ();
  metrics_snapshot ()
