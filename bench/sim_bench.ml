(* Simulator throughput and allocation benchmark.

   Times full simulation runs (compile excluded) of the image-pipeline
   and histogram applications under both mappings, on the event-driven
   engine (pooled and unpooled data plane), the quasi-static plan-driven
   entry (the [static] axis: [Plan.run_plan] with the schedule pass's
   firing tables arming wake elision and slot-indexed batch dispatch),
   and the preserved polling reference, plus the Figure 13 suite sweep
   sharded across 1/2/4/8 worker domains (the scaling axis of
   docs/PARALLELISM.md), and writes the numbers to BENCH_SIM.json
   (schema bench-sim/v5) so throughput, GC pressure, static coverage,
   indexed-dispatch share, *and* domain scaling are tracked across PRs.
   docs/PERFORMANCE.md explains how to read the output.

   Run with:            dune exec bench/sim_bench.exe
   Fewer repetitions:   BENCH_SIM_REPEATS=1 dune exec bench/sim_bench.exe
   No warmup:           BENCH_SIM_WARMUP=0 dune exec bench/sim_bench.exe
   Different output:    BENCH_SIM_OUT=/tmp/out.json dune exec bench/sim_bench.exe
   Skip the sweep axis: BENCH_SIM_DOMAINS=0 dune exec bench/sim_bench.exe

   The scaling gate (suite sweep at -j 2 must finish in at most 0.9 of
   the -j 1 wall time) arms itself only when the host can actually run
   two domains in parallel (Domain.recommended_domain_count >= 2, or
   BENCH_SIM_FORCE_SCALING=1) — unchanged in v5, and worth restating:
   on a single-core host the axis is still measured and recorded, but
   scaling is not asserted; since v5 the disarmed state is also written
   into the file's provenance fields so a reader of the committed JSON
   knows the domain rows carry no speedup claim and the sweep should be
   re-measured on a multi-core host.

   The static gate (since v4): on fixtures marked rate-static (every on-chip
   kernel statically scheduled, no desyncs possible) the quasi-static
   rows must not lose more than BENCH_SIM_TOLERANCE of the event-driven
   rows' events/s — elision is free to win and forbidden to cost. The
   two runs' results are asserted bit-identical (event counts included)
   before any rate is compared.

   Regression gate (exits non-zero when any fixture×mapping loses more
   than BENCH_SIM_TOLERANCE — default 0.4 — of its baseline events/s;
   works against v1 through v5 files):

     dune exec bench/sim_bench.exe -- --against BENCH_SIM.json *)

open Block_parallel

type fixture = {
  name : string;
  machine : Machine.t;
  n_frames : int;
  rate_static : bool;
      (* Every on-chip kernel lands in a static region (no reactive
         merges, no user tokens), so the static gate below is armed. *)
  build : unit -> App.instance;
}

let fixtures =
  [
    {
      name = "image-pipeline-24x18";
      machine = Machine.default;
      n_frames = 2;
      rate_static = true;
      build =
        (fun () ->
          Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
            ~n_frames:2 ());
    };
    {
      name = "image-pipeline-48x36";
      machine = Machine.default;
      n_frames = 2;
      rate_static = true;
      build =
        (fun () ->
          Apps.Image_pipeline.v ~frame:(Size.v 48 36) ~rate:(Rate.hz 20.)
            ~n_frames:2 ());
    };
    {
      name = "histogram-24x18";
      machine = Machine.default;
      n_frames = 2;
      (* The histogram's configureBins/count pair is a reactive merge,
         excluded from static regions by the schedule pass. *)
      rate_static = false;
      build =
        (fun () ->
          Apps.Histogram_app.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 40.)
            ~n_frames:2 ());
    };
  ]

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try max 0 (int_of_string s) with _ -> default)
  | None -> default

let repeats = max 1 (env_int "BENCH_SIM_REPEATS" 5)
let warmup = env_int "BENCH_SIM_WARMUP" 1

(* One timed engine run over [repeats] fresh instances (behaviour state
   is per-instance, so every repetition simulates from scratch), after
   [warmup] untimed runs that fault in code paths and settle the heap.
   Returns wall seconds, the GC deltas of the timed loop only, and the
   totals of the last run. *)
let time_engine fx ~greedy ~engine =
  let prepare () =
    let inst = fx.build () in
    let compiled = Pipeline.compile ~machine:fx.machine inst.App.graph in
    let mapping =
      if greedy then Pipeline.mapping_greedy compiled
      else Pipeline.mapping_one_to_one compiled
    in
    (compiled.Pipeline.graph, mapping)
  in
  List.iter
    (fun (graph, mapping) ->
      ignore (engine ~graph ~mapping ~machine:fx.machine ()))
    (List.init warmup (fun _ -> prepare ()));
  let prepared = List.init repeats (fun _ -> prepare ()) in
  let gc0 = Metrics.gc_snapshot () in
  let t0 = Unix.gettimeofday () in
  let last =
    List.fold_left
      (fun _ (graph, mapping) ->
        Some (engine ~graph ~mapping ~machine:fx.machine ()))
      None prepared
  in
  let wall = Unix.gettimeofday () -. t0 in
  let gc1 = Metrics.gc_snapshot () in
  let minor_words = gc1.Metrics.gc_minor_words -. gc0.Metrics.gc_minor_words in
  let allocated_words = Metrics.allocated_words ~before:gc0 ~after:gc1 in
  match last with
  | Some (r : Sim.result) -> (wall, minor_words, allocated_words, r)
  | None -> assert false

let total_fires (r : Sim.result) =
  List.fold_left (fun acc (_, ns) -> acc + ns.Sim.node_fires) 0 r.Sim.node_stats

let tolerance () =
  match Sys.getenv_opt "BENCH_SIM_TOLERANCE" with
  | Some s -> (try max 0.01 (float_of_string s) with _ -> 0.4)
  | None -> 0.4

(* The quasi-static axis times the plan-driven entry — the same engine
   the dynamic rows run, plus the schedule pass's firing tables arming
   wake elision (what a bare [bpc simulate] executes). Events/s keeps
   the dynamic rows' denominator: elided wakes count as processed (each
   is an exact stand-in for one eager-engine event), so the two axes
   are directly comparable and their results bit-identical. *)
let time_plan fx ~greedy ~static =
  let policy = if greedy then Plan.Greedy else Plan.One_to_one in
  let prepare () =
    let inst = fx.build () in
    Pipeline.compile ~machine:fx.machine inst.App.graph
  in
  List.iter
    (fun plan -> ignore (Plan.run_plan ~static ~policy plan ()))
    (List.init warmup (fun _ -> prepare ()));
  let prepared = List.init repeats (fun _ -> prepare ()) in
  let gc0 = Metrics.gc_snapshot () in
  let t0 = Unix.gettimeofday () in
  let last =
    List.fold_left
      (fun _ plan -> Some (Plan.run_plan ~static ~policy plan ()))
      None prepared
  in
  let wall = Unix.gettimeofday () -. t0 in
  let gc1 = Metrics.gc_snapshot () in
  let minor_words = gc1.Metrics.gc_minor_words -. gc0.Metrics.gc_minor_words in
  match last with
  | Some (r : Sim.result) -> (wall, minor_words, r)
  | None -> assert false

let run_fixture fx ~greedy =
  let wall, minor_w, alloc_w, r =
    time_engine fx ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
        Sim.run ~graph ~mapping ~machine ())
  in
  let nopool_wall, nopool_minor_w, nopool_alloc_w, nopool_r =
    time_engine fx ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
        Sim.run ~pool:false ~graph ~mapping ~machine ())
  in
  let ref_wall, ref_minor_w, _, ref_r =
    time_engine fx ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
        Sim_reference.run ~graph ~mapping ~machine ())
  in
  let static_wall, static_minor_w, static_r =
    time_plan fx ~greedy ~static:true
  in
  if r.Sim.leftover_items <> 0
     || nopool_r.Sim.leftover_items <> 0
     || ref_r.Sim.leftover_items <> 0
     || static_r.Sim.leftover_items <> 0
  then failwith (fx.name ^ ": benchmark fixture did not drain");
  if nopool_r.Sim.events_processed <> r.Sim.events_processed then
    failwith (fx.name ^ ": pooled and unpooled runs diverged");
  if static_r.Sim.events_processed <> r.Sim.events_processed then
    failwith (fx.name ^ ": static and dynamic event counts diverged");
  if static_r.Sim.static_fallback_events <> 0 then
    failwith (fx.name ^ ": quasi-static run desynced from its tables");
  let per_run = wall /. float_of_int repeats in
  let rate denom = float_of_int (denom * repeats) /. wall in
  let total_events = float_of_int (r.Sim.events_processed * repeats) in
  let per_event w = w /. total_events in
  let pool_stats =
    match r.Sim.pool with
    | Some s -> s
    | None -> failwith (fx.name ^ ": pooled run reported no pool stats")
  in
  let pool_acquires = pool_stats.Pool.hits + pool_stats.Pool.misses in
  let pool_hit_rate =
    if pool_acquires = 0 then 0.
    else float_of_int pool_stats.Pool.hits /. float_of_int pool_acquires
  in
  let minor_reduction =
    if minor_w <= 0. then Float.infinity else nopool_minor_w /. minor_w
  in
  (* The reference engine keeps the v1-era allocation discipline (fresh
     chunks, boxed floats, per-event closures), so its words/event stands
     in for the committed v1 baseline, whose schema predates GC fields. *)
  let minor_reduction_vs_reference =
    if minor_w <= 0. then Float.infinity else ref_minor_w /. minor_w
  in
  let static_coverage =
    let fires = total_fires static_r in
    if fires = 0 then 0.
    else float_of_int static_r.Sim.static_fired /. float_of_int fires
  in
  (* v5: share of static firings that went through the closure-free
     slot-indexed dispatch path (Behaviour.indexed.fire_indexed) rather
     than the string-keyed compatibility path. *)
  let static_indexed_share =
    if static_r.Sim.static_fired = 0 then 0.
    else
      float_of_int static_r.Sim.static_indexed_fired
      /. float_of_int static_r.Sim.static_fired
  in
  let fields =
    [
      ("fixture", Obs_json.Str fx.name);
      ("mapping", Obs_json.Str (if greedy then "greedy" else "one-to-one"));
      ("repeats", Obs_json.Int repeats);
      ("warmup", Obs_json.Int warmup);
      ("frames", Obs_json.Int fx.n_frames);
      ("events", Obs_json.Int r.Sim.events_processed);
      ("fires", Obs_json.Int (total_fires r));
      ("sim_duration_s", Obs_json.float r.Sim.duration_s);
      ("wall_s_per_run", Obs_json.float per_run);
      ("events_per_s", Obs_json.float (rate r.Sim.events_processed));
      ("fires_per_s", Obs_json.float (rate (total_fires r)));
      ("frames_per_s", Obs_json.float (rate fx.n_frames));
      ("minor_words_per_event", Obs_json.float (per_event minor_w));
      ("allocated_words_per_event", Obs_json.float (per_event alloc_w));
      (* Pool counters are per run (each Sim.run owns a fresh pool). *)
      ("pool_hits", Obs_json.Int pool_stats.Pool.hits);
      ("pool_misses", Obs_json.Int pool_stats.Pool.misses);
      ("pool_hit_rate", Obs_json.float pool_hit_rate);
      ( "nopool_wall_s_per_run",
        Obs_json.float (nopool_wall /. float_of_int repeats) );
      ( "nopool_events_per_s",
        Obs_json.float (total_events /. nopool_wall) );
      ("nopool_minor_words_per_event", Obs_json.float (per_event nopool_minor_w));
      ( "nopool_allocated_words_per_event",
        Obs_json.float (per_event nopool_alloc_w) );
      ("minor_words_reduction", Obs_json.float minor_reduction);
      ("reference_wall_s_per_run",
       Obs_json.float (ref_wall /. float_of_int repeats));
      ( "reference_minor_words_per_event",
        Obs_json.float (per_event ref_minor_w) );
      ( "minor_words_reduction_vs_reference",
        Obs_json.float minor_reduction_vs_reference );
      ("speedup_vs_reference", Obs_json.float (ref_wall /. wall));
      ("rate_static", Obs_json.Bool fx.rate_static);
      ( "static_wall_s_per_run",
        Obs_json.float (static_wall /. float_of_int repeats) );
      ("static_events_per_s", Obs_json.float (total_events /. static_wall));
      ( "static_minor_words_per_event",
        Obs_json.float (per_event static_minor_w) );
      ("static_regions", Obs_json.Int static_r.Sim.static_regions);
      ("static_fired", Obs_json.Int static_r.Sim.static_fired);
      ("static_indexed_fired", Obs_json.Int static_r.Sim.static_indexed_fired);
      ("static_indexed_share", Obs_json.float static_indexed_share);
      ("static_elided_events", Obs_json.Int static_r.Sim.static_elided_events);
      ("static_coverage", Obs_json.float static_coverage);
    ]
  in
  Printf.printf
    "%-24s %-10s %8.2f ms/run  %10.0f events/s  %6.1f w/event (%4.1fx < \
     nopool, %4.1fx < reference, pool %4.1f%%)  %5.2fx vs reference\n\
     %!"
    fx.name
    (if greedy then "greedy" else "one-to-one")
    (per_run *. 1e3)
    (rate r.Sim.events_processed)
    (per_event minor_w) minor_reduction minor_reduction_vs_reference
    (100. *. pool_hit_rate)
    (ref_wall /. wall);
  Printf.printf
    "%-24s %-10s %8.2f ms/run  %10.0f events/s  quasi-static: %d region(s), \
     %.0f%% coverage, %.0f%% indexed, %d elided%s\n\
     %!"
    "  quasi-static"
    (if greedy then "greedy" else "one-to-one")
    (static_wall /. float_of_int repeats *. 1e3)
    (total_events /. static_wall)
    static_r.Sim.static_regions
    (100. *. static_coverage)
    (100. *. static_indexed_share)
    static_r.Sim.static_elided_events
    (if fx.rate_static then "" else "  (not rate-static; gate off)");
  (* The static gate: on a rate-static fixture the quasi-static rows may
     not lose more than the shared tolerance of the event-driven rows'
     events/s. Numerators and denominators are identical by the
     bit-exactness asserts above, so this is purely a wall-time bound. *)
  if fx.rate_static then begin
    let tol = tolerance () in
    let dyn_eps = rate r.Sim.events_processed in
    let static_eps = total_events /. static_wall in
    if static_eps < dyn_eps *. (1. -. tol) then begin
      Printf.printf
        "STATIC REGRESSION: %s %s quasi-static %.0f events/s < (1 - %.2f) x \
         event-driven %.0f events/s\n"
        fx.name
        (if greedy then "greedy" else "one-to-one")
        static_eps tol dyn_eps;
      exit 1
    end
  end;
  Obs_json.Obj fields

(* ---- the domain-scaling axis ------------------------------------------ *)

(* One suite sweep (all Figure 13 entries, both mappings) per domain
   count. The merged outcomes are bit-identical for every -j
   (docs/PARALLELISM.md), which the axis asserts by comparing total
   event counts; what varies — and what this axis records — is wall
   time and the steal/stat telemetry. *)
let sweep_jobs () =
  List.concat_map
    (fun (e : Apps.Suite.entry) ->
      List.map
        (fun policy ->
          {
            Sweep.label = e.Apps.Suite.label;
            machine = e.Apps.Suite.machine;
            policy;
            build = (fun () -> (e.Apps.Suite.build ()).App.graph);
          })
        [ Plan.One_to_one; Plan.Greedy ])
    Apps.Suite.entries

let run_sweep ~domains =
  Sweep.with_pool ~domains @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  let outcomes = Sweep.simulate_jobs pool (sweep_jobs ()) in
  let wall = Unix.gettimeofday () -. t0 in
  let events =
    List.fold_left
      (fun acc (o : Sweep.outcome) ->
        acc + o.Sweep.o_result.Sim.events_processed)
      0 outcomes
  in
  let steals =
    List.fold_left
      (fun acc (d : Sweep.domain_report) -> acc + d.Sweep.d_steals)
      0 (Sweep.report pool)
  in
  (wall, events, List.length outcomes, steals)

let domain_axis () =
  let cores = Domain.recommended_domain_count () in
  let force = Sys.getenv_opt "BENCH_SIM_FORCE_SCALING" = Some "1" in
  print_endline "==== suite sweep domain scaling ====";
  ignore (run_sweep ~domains:1) (* warmup: fault in every suite app *);
  let levels = [ 1; 2; 4; 8 ] in
  let runs =
    List.map (fun d -> (d, run_sweep ~domains:d)) levels
  in
  let base_wall, base_events, jobs, _ =
    match runs with (1, r) :: _ -> r | _ -> assert false
  in
  List.iter
    (fun (_, (_, events, _, _)) ->
      if events <> base_events then
        failwith "suite sweep event counts diverged across -j")
    runs;
  let rows =
    List.map
      (fun (d, (wall, events, jobs, steals)) ->
        let speedup = if wall > 0. then base_wall /. wall else 0. in
        Printf.printf
          "suite-sweep               -j %-7d %8.2f ms      %10.0f events/s  \
           %5.2fx vs -j 1  (%d steals)\n\
           %!"
          d (wall *. 1e3)
          (if wall > 0. then float_of_int events /. wall else 0.)
          speedup steals;
        Obs_json.Obj
          [
            ("domains", Obs_json.Int d);
            ("jobs", Obs_json.Int jobs);
            ("events", Obs_json.Int events);
            ("wall_s", Obs_json.float wall);
            ( "events_per_s",
              Obs_json.float
                (if wall > 0. then float_of_int events /. wall else 0.) );
            ("speedup_vs_1", Obs_json.float speedup);
            ("steals", Obs_json.Int steals);
          ])
      runs
  in
  let gate_armed = cores >= 2 || force in
  if gate_armed then begin
    let wall2 =
      match List.assoc_opt 2 runs with
      | Some (w, _, _, _) -> w
      | None -> assert false
    in
    if wall2 > base_wall *. 0.9 then begin
      Printf.printf
        "SCALING REGRESSION: -j 2 sweep took %.1f ms > 0.9 x -j 1 (%.1f ms) \
         on a %d-core host\n"
        (wall2 *. 1e3) (base_wall *. 1e3) cores;
      exit 1
    end
    else
      Printf.printf "scaling gate: -j 2 %.2fx vs -j 1 (<= 0.9 required) ok\n"
        (base_wall /. wall2)
  end
  else
    Printf.printf
      "scaling gate: DISARMED — host reports %d core%s (< 2), so the -j 2 \
       speedup bound is not asserted; domain rows below are recorded \
       without a scaling claim. Set BENCH_SIM_FORCE_SCALING=1 to arm \
       anyway, or re-run on a multi-core host.\n"
      cores
      (if cores = 1 then "" else "s");
  ignore jobs;
  ( rows,
    [ ("cores", Obs_json.Int cores);
      ("scaling_gate_armed", Obs_json.Bool gate_armed);
    ]
    @
    if gate_armed then []
    else
      [
        ( "scaling_todo",
          Obs_json.Str
            "gate disarmed: recorded on a host with < 2 usable cores; \
             re-measure the domain axis on a multi-core host before \
             reading any speedup from these rows" );
      ] )

(* ---- regression gate -------------------------------------------------- *)

let row_key row =
  match (Obs_json.member "fixture" row, Obs_json.member "mapping" row) with
  | Some (Obs_json.Str f), Some (Obs_json.Str m) -> Some (f, m)
  | _ -> None

let row_events_per_s row =
  Option.bind (Obs_json.member "events_per_s" row) Obs_json.to_float_opt

let baseline_rows path =
  match Obs_json.member "fixtures" (Obs_json.parse_file path) with
  | Some (Obs_json.List rows) -> rows
  | _ -> failwith (path ^ ": no \"fixtures\" list")

(* Exits non-zero when any fixture×mapping present in both files lost
   more than [tolerance] of its baseline events/s. Hosts differ, so the
   gate compares a fresh run against a baseline *recorded on the same
   host* (CI regenerates the baseline first) — the committed file is only
   a fallback for quick local checks. Wall-clock noise on millisecond
   fixtures easily reaches tens of percent on shared runners, so the
   default tolerance is wide and BENCH_SIM_TOLERANCE overrides it;
   the gate exists to catch order-of-magnitude regressions, while fine
   drift is read off the committed BENCH_SIM.json ratios. *)
let check_against ~path current_rows =
  let tolerance = tolerance () in
  let failures = ref 0 in
  List.iter
    (fun baseline_row ->
      match (row_key baseline_row, row_events_per_s baseline_row) with
      | Some (f, m), Some base_eps when base_eps > 0. -> (
        let current =
          List.find_opt (fun row -> row_key row = Some (f, m)) current_rows
        in
        match Option.bind current row_events_per_s with
        | Some cur_eps ->
          let ratio = cur_eps /. base_eps in
          let ok = ratio >= 1. -. tolerance in
          if not ok then incr failures;
          Printf.printf "%-24s %-10s %10.0f -> %10.0f events/s  (%+.1f%%)%s\n"
            f m base_eps cur_eps
            (100. *. (ratio -. 1.))
            (if ok then "" else "  REGRESSION")
        | None ->
          incr failures;
          Printf.printf "%-24s %-10s missing from current run\n" f m)
      | _ -> ())
    (baseline_rows path);
  if !failures > 0 then begin
    Printf.printf "%d regression(s) beyond %.0f%% vs %s\n" !failures
      (100. *. tolerance) path;
    exit 1
  end
  else Printf.printf "no events/s regression beyond %.0f%% vs %s\n"
      (100. *. tolerance) path

let () =
  let against =
    match Sys.argv with
    | [| _ |] -> None
    | [| _; "--against"; path |] -> Some path
    | _ ->
      prerr_endline "usage: sim_bench [--against BASELINE.json]";
      exit 2
  in
  print_endline "==== simulator throughput ====";
  let rows =
    List.concat_map
      (fun fx ->
        let one_to_one = run_fixture fx ~greedy:false in
        let greedy = run_fixture fx ~greedy:true in
        [ one_to_one; greedy ])
      fixtures
  in
  match against with
  | Some path -> check_against ~path rows
  | None ->
    let domain_rows, host_fields =
      if env_int "BENCH_SIM_DOMAINS" 1 = 0 then ([], [])
      else domain_axis ()
    in
    let out =
      Obs_json.Obj
        ([
           ("schema", Obs_json.Str "bench-sim/v5");
           ("repeats", Obs_json.Int repeats);
           ("warmup", Obs_json.Int warmup);
         ]
        @ host_fields
        @ [
            ("fixtures", Obs_json.List rows);
            ("domains", Obs_json.List domain_rows);
          ])
    in
    let path =
      Option.value (Sys.getenv_opt "BENCH_SIM_OUT") ~default:"BENCH_SIM.json"
    in
    Obs_json.write_file ~path out;
    Printf.printf "wrote %s\n" path
