(* Simulator throughput benchmark.

   Times full simulation runs (compile excluded) of the image-pipeline
   and histogram applications under both mappings, on the event-driven
   engine and the preserved polling reference, and writes the numbers to
   BENCH_SIM.json so throughput is tracked across PRs. docs/PERFORMANCE.md
   explains how to read the output.

   Run with:            dune exec bench/sim_bench.exe
   Fewer repetitions:   BENCH_SIM_REPEATS=1 dune exec bench/sim_bench.exe
   Different output:    BENCH_SIM_OUT=/tmp/out.json dune exec bench/sim_bench.exe *)

open Block_parallel

type fixture = {
  name : string;
  machine : Machine.t;
  n_frames : int;
  build : unit -> App.instance;
}

let fixtures =
  [
    {
      name = "image-pipeline-24x18";
      machine = Machine.default;
      n_frames = 2;
      build =
        (fun () ->
          Apps.Image_pipeline.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 30.)
            ~n_frames:2 ());
    };
    {
      name = "image-pipeline-48x36";
      machine = Machine.default;
      n_frames = 2;
      build =
        (fun () ->
          Apps.Image_pipeline.v ~frame:(Size.v 48 36) ~rate:(Rate.hz 20.)
            ~n_frames:2 ());
    };
    {
      name = "histogram-24x18";
      machine = Machine.default;
      n_frames = 2;
      build =
        (fun () ->
          Apps.Histogram_app.v ~frame:(Size.v 24 18) ~rate:(Rate.hz 40.)
            ~n_frames:2 ());
    };
  ]

let repeats =
  match Sys.getenv_opt "BENCH_SIM_REPEATS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 5)
  | None -> 5

(* One timed engine run over [repeats] fresh instances (behaviour state
   is per-instance, so every repetition simulates from scratch). Returns
   wall seconds plus the totals of the last run. *)
let time_engine fx ~greedy ~engine =
  let prepared =
    List.init repeats (fun _ ->
        let inst = fx.build () in
        let compiled = Pipeline.compile ~machine:fx.machine inst.App.graph in
        let mapping =
          if greedy then Pipeline.mapping_greedy compiled
          else Pipeline.mapping_one_to_one compiled
        in
        (compiled.Pipeline.graph, mapping))
  in
  let t0 = Unix.gettimeofday () in
  let last =
    List.fold_left
      (fun _ (graph, mapping) ->
        Some (engine ~graph ~mapping ~machine:fx.machine ()))
      None prepared
  in
  let wall = Unix.gettimeofday () -. t0 in
  match last with
  | Some (r : Sim.result) -> (wall, r)
  | None -> assert false

let total_fires (r : Sim.result) =
  List.fold_left (fun acc (_, ns) -> acc + ns.Sim.node_fires) 0 r.Sim.node_stats

let run_fixture fx ~greedy =
  let wall, r =
    time_engine fx ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
        Sim.run ~graph ~mapping ~machine ())
  in
  let ref_wall, ref_r =
    time_engine fx ~greedy ~engine:(fun ~graph ~mapping ~machine () ->
        Sim_reference.run ~graph ~mapping ~machine ())
  in
  if r.Sim.leftover_items <> 0 || ref_r.Sim.leftover_items <> 0 then
    failwith (fx.name ^ ": benchmark fixture did not drain");
  let per_run = wall /. float_of_int repeats in
  let rate denom = float_of_int (denom * repeats) /. wall in
  let fields =
    [
      ("fixture", Obs_json.Str fx.name);
      ("mapping", Obs_json.Str (if greedy then "greedy" else "one-to-one"));
      ("repeats", Obs_json.Int repeats);
      ("frames", Obs_json.Int fx.n_frames);
      ("events", Obs_json.Int r.Sim.events_processed);
      ("fires", Obs_json.Int (total_fires r));
      ("sim_duration_s", Obs_json.float r.Sim.duration_s);
      ("wall_s_per_run", Obs_json.float per_run);
      ("events_per_s", Obs_json.float (rate r.Sim.events_processed));
      ("fires_per_s", Obs_json.float (rate (total_fires r)));
      ("frames_per_s", Obs_json.float (rate fx.n_frames));
      ("reference_wall_s_per_run",
       Obs_json.float (ref_wall /. float_of_int repeats));
      ("speedup_vs_reference", Obs_json.float (ref_wall /. wall));
    ]
  in
  Printf.printf "%-24s %-10s %8.2f ms/run  %10.0f events/s  %8.1f frames/s  %5.2fx vs reference\n%!"
    fx.name
    (if greedy then "greedy" else "one-to-one")
    (per_run *. 1e3)
    (rate r.Sim.events_processed)
    (rate fx.n_frames)
    (ref_wall /. wall);
  Obs_json.Obj fields

let () =
  print_endline "==== simulator throughput ====";
  let rows =
    List.concat_map
      (fun fx ->
        let one_to_one = run_fixture fx ~greedy:false in
        let greedy = run_fixture fx ~greedy:true in
        [ one_to_one; greedy ])
      fixtures
  in
  let out =
    Obs_json.Obj
      [
        ("schema", Obs_json.Str "bench-sim/v1");
        ("repeats", Obs_json.Int repeats);
        ("fixtures", Obs_json.List rows);
      ]
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_SIM_OUT") ~default:"BENCH_SIM.json"
  in
  Obs_json.write_file ~path out;
  Printf.printf "wrote %s\n" path
