(* bpc — the block-parallel compiler driver.

   Subcommands: list, compile, simulate, report. See [bpc --help]. *)

open Cmdliner
open Bp_geometry
module Pipeline = Bp_compiler.Pipeline
module Plan = Bp_compiler.Plan
module Diag = Bp_util.Diag
module Sim = Bp_sim.Sim
module App = Bp_apps.App

let apps :
    (string * (frame:Size.t -> rate:Rate.t -> n_frames:int -> App.instance))
    list =
  [
    ( "image-pipeline",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Image_pipeline.v ~frame ~rate ~n_frames () );
    ("bayer", fun ~frame ~rate ~n_frames -> Bp_apps.Bayer_app.v ~frame ~rate ~n_frames ());
    ( "histogram",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Histogram_app.v ~frame ~rate ~n_frames () );
    ( "multi-conv",
      fun ~frame ~rate ~n_frames -> Bp_apps.Multi_conv.v ~frame ~rate ~n_frames () );
    ( "parallel-buffer",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Parallel_buffer.v ~frame ~rate ~n_frames () );
    ( "edge-detect",
      fun ~frame ~rate ~n_frames -> Bp_apps.Edge_app.v ~frame ~rate ~n_frames () );
    ( "motion-detect",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Motion_app.v ~frame ~rate ~n_frames () );
    ( "resample",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Resample_app.v
          ~frame:(Size.v (max frame.Size.w 16) 1)
          ~rate ~n_frames () );
    ( "downsample",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Downsample_app.v ~frame ~rate ~n_frames () );
    ( "feedback",
      fun ~frame ~rate ~n_frames ->
        Bp_apps.Feedback_app.v ~frame ~rate ~n_frames () );
  ]

let build_app name ~frame ~rate ~n_frames =
  match List.assoc_opt name apps with
  | Some f -> f ~frame ~rate ~n_frames
  | None ->
    Bp_util.Err.unsupportedf "unknown app %S (try: %s)" name
      (String.concat ", " (List.map fst apps))

(* --- common options ---------------------------------------------------- *)

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Application to build (see $(b,bpc list)).")

let width_arg =
  Arg.(value & opt int 24 & info [ "width" ] ~docv:"W" ~doc:"Frame width.")

let height_arg =
  Arg.(value & opt int 18 & info [ "height" ] ~docv:"H" ~doc:"Frame height.")

let rate_arg =
  Arg.(
    value & opt float 30.
    & info [ "rate" ] ~docv:"HZ" ~doc:"Input frame rate (frames/second).")

let frames_arg =
  Arg.(
    value & opt int 3
    & info [ "frames" ] ~docv:"N" ~doc:"Number of frames to stream.")

let machine_arg =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Bp_machine.Machine.names)) "default"
    & info [ "machine" ] ~docv:"M" ~doc:"Target machine model.")

let policy_arg =
  Arg.(
    value
    & opt (enum [ ("trim", "trim"); ("pad", "pad") ]) "trim"
    & info [ "policy" ] ~doc:"Alignment repair policy: trim or pad.")

let greedy_arg =
  Arg.(
    value & flag
    & info [ "greedy"; "g" ] ~doc:"Use the greedy multiplexed mapping.")

let dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the elaborated graph as DOT.")

let policy_of = function
  | "pad" -> Bp_transform.Align.Pad_zero
  | _ -> Bp_transform.Align.Trim

let handle_errors f =
  match Bp_util.Err.guard f with
  | Ok () -> 0
  | Error e ->
    Format.eprintf "bpc: %a@." Bp_util.Err.pp e;
    1

(* Like [handle_errors], but [f] chooses the exit code — simulate uses it
   to fail the process (and thus CI smokes) on real-time misses. *)
let handle_errors_code f =
  match Bp_util.Err.guard f with
  | Ok code -> code
  | Error e ->
    Format.eprintf "bpc: %a@." Bp_util.Err.pp e;
    1

let compile_common ?diags ?after_pass app width height rate frames machine
    policy =
  let frame = Size.v width height in
  let rate = Rate.hz rate in
  let inst = build_app app ~frame ~rate ~n_frames:frames in
  let machine = Bp_machine.Machine.by_name machine in
  let compiled =
    Pipeline.compile ~align_policy:(policy_of policy) ?diags ?after_pass
      ~machine inst.App.graph
  in
  (inst, compiled)

let policy_of_greedy greedy = if greedy then Plan.Greedy else Plan.One_to_one

(* --- subcommands ------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "applications:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) apps;
    print_endline "machines:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Bp_machine.Machine.names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List applications and machine models")
    Term.(const run $ const ())

let dump_after_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:
          "Print the graph (nodes, roles, channel counts) as it stands \
           after the named compile pass — one of validate, analyze-pre, \
           align, buffering, parallelize, analyze-post, schedulability, \
           map, place, schedule. For $(b,schedule), additionally renders \
           the quasi-static schedule artifact itself: the static-region \
           partition and each kernel's prelude/period firing table.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the full compilation story: per-pass timings, \
           accumulated diagnostics, the schedulability verdict, and both \
           mappings with their placements. Exits non-zero if any \
           error-severity diagnostic was emitted.")

let compile_cmd =
  let run app width height rate frames machine policy greedy dot dump_after
      explain =
    handle_errors_code @@ fun () ->
    let dumped = ref false in
    let after_pass =
      Option.map
        (fun which ~pass g ->
          if String.equal pass which then begin
            dumped := true;
            Format.printf "@[<v>after pass %s:@,%a@]@." pass
              Bp_graph.Graph.pp_summary g
          end)
        dump_after
    in
    let diags = Diag.buffer () in
    (* Run compile under our own guard so a failing pass still shows the
       diagnostics it accumulated (the failing pass's name included). *)
    match
      Bp_util.Err.guard (fun () ->
          compile_common ~diags ?after_pass app width height rate frames
            machine policy)
    with
    | Error e ->
      Format.eprintf "bpc: %a@." Bp_util.Err.pp e;
      Format.eprintf "@[<v>%a@]@?" Diag.pp_list (Diag.list diags);
      1
    | Ok (_inst, compiled) ->
      (match dump_after with
      | Some which when not !dumped ->
        Bp_util.Err.unsupportedf "--dump-after: no pass named %S ran" which
      | _ -> ());
      (* The schedule pass's artifact lives in the plan, not the graph —
         render it alongside the graph summary the hook printed. *)
      if dump_after = Some "schedule" then
        Format.printf "@[<v>%a@]@."
          (Bp_sim.Static_schedule.pp compiled.Pipeline.graph)
          compiled.Pipeline.schedule;
      Format.printf "%a" Pipeline.pp_summary compiled;
      if explain then Format.printf "%a@." Plan.pp_explain compiled
      else Format.printf "%a@." Pipeline.pp_passes compiled;
      Format.printf "%a" Bp_analysis.Dataflow.pp_report
        compiled.Pipeline.analysis;
      (match dot with
      | Some path ->
        let groups =
          (Plan.mapped compiled ~policy:(policy_of_greedy greedy)).Plan.groups
        in
        Bp_viz.Dot.write_file ~path
          (Bp_viz.Dot.to_dot ~title:app ~groups compiled.Pipeline.graph);
        Format.printf "wrote %s@." path
      | None -> ());
      if explain && Plan.errors compiled <> [] then 1 else 0
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile an application and print the analysis")
    Term.(
      const run $ app_arg $ width_arg $ height_arg $ rate_arg $ frames_arg
      $ machine_arg $ policy_arg $ greedy_arg $ dot_arg $ dump_after_arg
      $ explain_arg)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the run (one track per \
           PE, counter tracks for channel occupancy, compile passes) — \
           open it in Perfetto or chrome://tracing.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the structured metrics snapshot (counters, gauges, \
           histograms; see docs/OBSERVABILITY.md) as JSON.")

let health_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "health" ] ~docv:"FILE"
        ~doc:
          "Write the real-time health snapshot (per-kernel busy/blocked/idle \
           breakdown, per-frame latency and deadline accounting, channel \
           high-watermarks, bottleneck verdict; see docs/OBSERVABILITY.md) \
           as JSON.")

let gantt_arg =
  Arg.(
    value & flag
    & info [ "gantt" ] ~doc:"Print a per-processor ASCII Gantt chart.")

let energy_arg =
  Arg.(
    value & flag
    & info [ "energy" ] ~doc:"Print a first-order energy estimate.")

let sched_arg =
  Arg.(
    value & flag
    & info [ "schedulability" ]
        ~doc:"Print the static per-kernel utilization report.")

let no_pool_arg =
  Arg.(
    value & flag
    & info [ "no-pool" ]
        ~doc:
          "Run the simulator's data plane without the chunk pool (every \
           chunk freshly allocated, releases dropped). Results are \
           bit-identical; use it to A/B the allocation numbers printed \
           after the run (see docs/PERFORMANCE.md).")

let no_static_arg =
  Arg.(
    value & flag
    & info [ "no-static" ]
        ~doc:
          "Force fully event-driven dispatch instead of the plan's \
           quasi-static schedule (pass 10). Results are bit-identical — \
           only wall time and the static telemetry change; composes with \
           $(b,--no-pool) to A/B either axis independently (see \
           docs/PERFORMANCE.md).")

let simulate_cmd =
  let run app width height rate frames machine policy greedy trace metrics
      health gantt energy sched no_pool no_static =
    handle_errors_code @@ fun () ->
    let inst, compiled =
      compile_common app width height rate frames machine policy
    in
    Format.printf "%a" Pipeline.pp_summary compiled;
    if sched then
      Format.printf "@[<v>%a@]@." Bp_transform.Schedulability.pp
        compiled.Pipeline.schedulability;
    (* Observability is strictly pay-when-used: each recorder attaches
       only when an artifact that needs it was requested, because any
       attached observer (correctly) drops the run out of quasi-static
       execution — a bare [bpc simulate] measures the fast path. *)
    let want_trace = Option.is_some trace in
    let recorder =
      if want_trace || gantt then Some (Bp_sim.Trace.recorder ()) else None
    in
    let obs =
      if want_trace || Option.is_some metrics then
        Some (Bp_obs.Instrument.create ~graph:compiled.Pipeline.graph ())
      else None
    in
    let hlt =
      if want_trace || Option.is_some health then
        Some (Bp_obs.Health.create ~graph:compiled.Pipeline.graph ())
      else None
    in
    let observer =
      match
        List.filter_map Fun.id
          [
            Option.map snd recorder;
            Option.map Bp_obs.Instrument.observer obs;
          ]
      with
      | [] -> None
      | fs -> Some (Bp_obs.Instrument.compose fs)
    in
    let gc_before = Bp_obs.Metrics.gc_snapshot () in
    let wall_t0 = Bp_util.Clock.now_s () in
    let result =
      Plan.run_plan ~pool:(not no_pool) ~static:(not no_static) ?observer
        ?channel_observer:(Option.map Bp_obs.Instrument.channel_observer obs)
        ?state_observer:(Option.map Bp_obs.Health.state_observer hlt)
        ~policy:(policy_of_greedy greedy) compiled ()
    in
    let wall_s = Bp_util.Clock.elapsed_s ~since:wall_t0 in
    let gc_after = Bp_obs.Metrics.gc_snapshot () in
    Option.iter (fun o -> Bp_obs.Instrument.finalize o ~result) obs;
    Option.iter (fun h -> Bp_obs.Health.finalize h ~result ()) hlt;
    Option.iter
      (fun o ->
        let reg = Bp_obs.Instrument.metrics o in
        Bp_obs.Instrument.record_compile reg compiled;
        Bp_obs.Metrics.record_gc reg ~before:gc_before ~after:gc_after ();
        match result.Sim.pool with
        | Some p ->
          Bp_obs.Metrics.record_pool reg ~hits:p.Bp_image.Pool.hits
            ~misses:p.Bp_image.Pool.misses ~releases:p.Bp_image.Pool.releases
            ~live:p.Bp_image.Pool.live ()
        | None -> ())
      obs;
    Format.printf "%a@." Sim.pp_result result;
    let events_f = float_of_int result.Sim.events_processed in
    let minor_w =
      gc_after.Bp_obs.Metrics.gc_minor_words
      -. gc_before.Bp_obs.Metrics.gc_minor_words
    in
    Format.printf "wall: %.1f ms, %d events (%.0f events/s)@."
      (wall_s *. 1e3) result.Sim.events_processed
      (if wall_s > 0. then events_f /. wall_s else 0.);
    Format.printf "alloc: %.1f minor words/event%s@."
      (if events_f > 0. then minor_w /. events_f else 0.)
      (match result.Sim.pool with
      | Some p ->
        let acquires = p.Bp_image.Pool.hits + p.Bp_image.Pool.misses in
        Printf.sprintf ", pool hit rate %.1f%% (%d hits, %d misses, %d live)"
          (if acquires = 0 then 0.
           else 100. *. float_of_int p.Bp_image.Pool.hits
                /. float_of_int acquires)
          p.Bp_image.Pool.hits p.Bp_image.Pool.misses p.Bp_image.Pool.live
      | None -> ", pool off");
    if result.Sim.static_regions > 0 then
      Format.printf
        "static: %d regions, %d table-matched firings (%d slot-indexed), \
         %d dispatched + %d elided events, %d fallbacks@."
        result.Sim.static_regions result.Sim.static_fired
        result.Sim.static_indexed_fired
        (result.Sim.events_processed - result.Sim.static_elided_events)
        result.Sim.static_elided_events result.Sim.static_fallback_events;
    Option.iter
      (fun (recorded, _) ->
        if gantt then print_string (Bp_sim.Trace.gantt recorded))
      recorder;
    (match (trace, recorder, obs, hlt) with
    | Some path, Some (recorded, _), Some obs, Some hlt ->
      Bp_obs.Chrome_trace.write_file ~path
        (Bp_obs.Chrome_trace.of_run
           ~compile_passes:compiled.Pipeline.timings ~instrument:obs
           ~health:hlt ~graph:compiled.Pipeline.graph ~trace:recorded ());
      Format.printf "wrote %s@." path
    | _ -> ());
    (match (metrics, obs) with
    | Some path, Some obs ->
      Bp_obs.Json.write_file ~path
        (Bp_obs.Metrics.to_json (Bp_obs.Instrument.metrics obs));
      Format.printf "wrote %s@." path
    | _ -> ());
    (match (health, hlt) with
    | Some path, Some hlt ->
      Bp_obs.Json.write_file ~path (Bp_obs.Health.to_json hlt);
      Format.printf "wrote %s@." path
    | _ -> ());
    if energy then
      Format.printf "%a@." Bp_sim.Energy.pp
        (Bp_sim.Energy.of_result ~machine:compiled.Pipeline.machine result);
    let diffs, ok = App.verify inst result in
    List.iter
      (fun (label, d) -> Format.printf "  %s: max |diff| = %g@." label d)
      diffs;
    let verdict =
      Sim.real_time_verdict result ~expected_frames:inst.App.n_frames
        ~period_s:(App.period_s inst)
        ~allowed_leftover:inst.App.allowed_leftover ()
    in
    Format.printf "functional: %s; real-time: %s (%d frames, worst interval \
                   %.3fms)@."
      (if ok then "exact" else "MISMATCH")
      (if verdict.Sim.met then "met" else "MISSED")
      verdict.Sim.frames_delivered
      (1000. *. verdict.Sim.worst_frame_interval_s);
    (* Fail the process on a real-time miss, a deadlock/timeout, or a
       functional mismatch, so CI smokes catch regressions. *)
    if (not verdict.Sim.met) || result.Sim.timed_out || not ok then 1 else 0
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compile APP, run the timing-accurate simulation, check the \
         outputs against the reference image operations, and verify the \
         declared input rate was sustained. Exits non-zero when the run \
         misses the declared rate, deadlocks, or miscomputes.";
      `P
        "Artifact flags, all optional and composable: $(b,--trace) FILE \
         writes a Chrome trace_event timeline, $(b,--metrics) FILE the \
         structured metrics snapshot, $(b,--health) FILE the real-time \
         health snapshot (all JSON; contracts in docs/OBSERVABILITY.md). \
         $(b,--no-pool) disables the chunk-pool data plane to A/B \
         allocation behaviour and $(b,--no-static) forces event-driven \
         dispatch instead of the plan's quasi-static schedule \
         (docs/PERFORMANCE.md) — results are bit-identical under any \
         combination of the two. Observer-backed artifacts \
         ($(b,--trace)/$(b,--metrics)/$(b,--health)/$(b,--gantt)) \
         themselves drop the run to event-driven dispatch, so a bare \
         $(b,bpc simulate) is also the throughput-measurement \
         configuration.";
    ]
  in
  Cmd.v
    (Cmd.info "simulate" ~man
       ~doc:
         "Compile, simulate, and verify function and throughput (exits \
          non-zero when the run misses the declared rate, deadlocks, or \
          miscomputes); --trace/--metrics/--health write JSON artifacts, \
          --no-pool A/Bs the data plane, --no-static the dispatch engine")
    Term.(
      const run $ app_arg $ width_arg $ height_arg $ rate_arg $ frames_arg
      $ machine_arg $ policy_arg $ greedy_arg $ trace_arg $ metrics_arg
      $ health_arg $ gantt_arg $ energy_arg $ sched_arg $ no_pool_arg
      $ no_static_arg)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains to shard independent compile+simulate tasks \
           across (1 = serial, inline). Merged results are bit-identical \
           for every N (docs/PARALLELISM.md); only wall time and the \
           per-domain telemetry change.")

let sweep_cmd =
  let module Sweep = Bp_compiler.Sweep in
  let module Suite = Bp_apps.Suite in
  let labels_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"LABEL"
          ~doc:
            "Suite entries to sweep (default: the full Figure 13 suite; \
             see labels in $(b,bpc report fig13)).")
  in
  let run labels jobs metrics no_static =
    handle_errors_code @@ fun () ->
    let entries =
      match labels with
      | [] -> Suite.entries
      | ls -> List.map Suite.by_label ls
    in
    let tasks =
      List.concat_map
        (fun (e : Suite.entry) ->
          List.map
            (fun policy ->
              {
                Bp_compiler.Sweep.label = e.Suite.label;
                machine = e.Suite.machine;
                policy;
                build = (fun () -> (e.Suite.build ()).App.graph);
              })
            [ Plan.One_to_one; Plan.Greedy ])
        entries
    in
    let t0 = Bp_util.Clock.now_s () in
    Sweep.with_pool ~domains:jobs @@ fun pool ->
    let outcomes = Sweep.simulate_jobs ~static:(not no_static) pool tasks in
    let wall_s = Bp_util.Clock.elapsed_s ~since:t0 in
    (* The merged table is part of the determinism contract: identical
       for every -j (docs/PARALLELISM.md). Telemetry (wall time, domain
       breakdown) prints separately below. *)
    Format.printf "%-6s %-8s %4s %9s %10s %6s %9s@." "app" "mapping" "PEs"
      "events" "sim-time" "late" "leftover";
    let bad = ref 0 in
    List.iter
      (fun (o : Sweep.outcome) ->
        let r = o.Sweep.o_result in
        if r.Sim.timed_out then incr bad;
        Format.printf "%-6s %-8s %4d %9d %9.3fs %6d %9d%s@."
          o.Sweep.o_label
          (match o.Sweep.o_policy with
          | Plan.Greedy -> "greedy"
          | Plan.One_to_one -> "1:1")
          (Array.length r.Sim.procs)
          r.Sim.events_processed r.Sim.duration_s r.Sim.late_emissions
          r.Sim.leftover_items
          (if r.Sim.timed_out then "  TIMED OUT" else ""))
      outcomes;
    let events =
      List.fold_left
        (fun acc (o : Sweep.outcome) ->
          acc + o.Sweep.o_result.Sim.events_processed)
        0 outcomes
    in
    Format.printf "swept %d jobs on %d domain%s in %.1f ms (%.0f events/s)@."
      (List.length outcomes) (Sweep.domains pool)
      (if Sweep.domains pool = 1 then "" else "s")
      (wall_s *. 1e3)
      (if wall_s > 0. then float_of_int events /. wall_s else 0.);
    let reports = Sweep.report pool in
    List.iter
      (fun (d : Sweep.domain_report) ->
        let p = d.Sweep.d_pool in
        let acquires = p.Bp_image.Pool.hits + p.Bp_image.Pool.misses in
        Format.printf
          "  domain %d: %d tasks, %.1f ms, %d steals, pool hit rate %.1f%%@."
          d.Sweep.d_domain d.Sweep.d_tasks
          (d.Sweep.d_wall_s *. 1e3)
          d.Sweep.d_steals
          (if acquires = 0 then 0.
           else
             100.
             *. float_of_int p.Bp_image.Pool.hits
             /. float_of_int acquires))
      reports;
    (match metrics with
    | Some path ->
      let reg = Bp_obs.Metrics.create () in
      List.iter
        (fun (d : Sweep.domain_report) ->
          Bp_obs.Metrics.record_domain reg ~domain:d.Sweep.d_domain
            ~tasks:d.Sweep.d_tasks ~wall_s:d.Sweep.d_wall_s
            ~steals:d.Sweep.d_steals ())
        reports;
      Bp_obs.Metrics.incr reg ~by:(List.length outcomes) "sim.sweep.tasks";
      Bp_obs.Metrics.incr reg ~by:events "sim.sweep.events";
      Bp_obs.Metrics.set reg "sim.sweep.wall_s" wall_s;
      Bp_obs.Metrics.set reg "sim.sweep.domains"
        (float_of_int (Sweep.domains pool));
      Bp_obs.Json.write_file ~path (Bp_obs.Metrics.to_json reg);
      Format.printf "wrote %s@." path
    | None -> ());
    if !bad > 0 then 1 else 0
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compile and simulate every selected suite entry under both \
         mappings (1:1 and greedy), sharded across $(b,-j) worker \
         domains — each worker owns its own chunk pool, and results \
         merge back in submission order, so the table is bit-identical \
         for every $(b,-j) (the contract is docs/PARALLELISM.md). Each \
         run executes under its plan's quasi-static schedule; \
         $(b,--no-static) forces event-driven dispatch with a \
         bit-identical table (docs/PERFORMANCE.md). $(b,--metrics) FILE \
         exports the per-domain \
         sim.domain.<i>.{tasks,wall_s,steal_count} telemetry as JSON.";
    ]
  in
  Cmd.v
    (Cmd.info "sweep" ~man
       ~doc:
         "Simulate the benchmark suite across worker domains (bit-exact \
          for every -j and for --no-static)")
    Term.(const run $ labels_arg $ jobs_arg $ metrics_arg $ no_static_arg)

let run_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .bp program (see examples/programs).")
  in
  let run file machine policy greedy dot =
    handle_errors @@ fun () ->
    let program = Bp_lang.Lang.parse_file file in
    let machine = Bp_machine.Machine.by_name machine in
    let compiled =
      Pipeline.compile ~align_policy:(policy_of policy) ~machine
        program.Bp_lang.Lang.graph
    in
    Format.printf "%a" Pipeline.pp_summary compiled;
    (match dot with
    | Some path ->
      Bp_viz.Dot.write_file ~path
        (Bp_viz.Dot.to_dot ~title:file compiled.Pipeline.graph);
      Format.printf "wrote %s@." path
    | None -> ());
    let result =
      Plan.run_plan ~policy:(policy_of_greedy greedy) compiled ()
    in
    Format.printf "%a@." Sim.pp_result result;
    List.iter
      (fun (name, collector) ->
        Format.printf "  output %s: %d chunks in %d frames@." name
          (List.length (Bp_kernels.Sink.chunks collector))
          (List.length (Bp_kernels.Sink.chunks_between_frames collector)))
      program.Bp_lang.Lang.outputs;
    match program.Bp_lang.Lang.rate with
    | Some rate ->
      let strict =
        Sim.real_time_verdict result
          ~expected_frames:program.Bp_lang.Lang.n_frames
          ~period_s:(Rate.frame_period_s rate) ()
      in
      (* Delay lines legitimately hold state at quiescence; report that
         case distinctly from a genuine miss. *)
      let lenient =
        Sim.real_time_verdict result
          ~expected_frames:program.Bp_lang.Lang.n_frames
          ~period_s:(Rate.frame_period_s rate)
          ~allowed_leftover:result.Sim.leftover_items ()
      in
      let status =
        if strict.Sim.met then "met"
        else if lenient.Sim.met then
          Printf.sprintf "met (%d items remain queued in delay lines)"
            result.Sim.leftover_items
        else "MISSED"
      in
      Format.printf "real-time: %s (%d frames, worst interval %.3fms)@."
        status strict.Sim.frames_delivered
        (1000. *. strict.Sim.worst_frame_interval_s)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and simulate a .bp program file")
    Term.(
      const run $ file_arg $ machine_arg $ policy_arg $ greedy_arg $ dot_arg)

let rate_search_cmd =
  let pes_arg =
    Arg.(
      value & opt int 8
      & info [ "pes" ] ~docv:"N" ~doc:"Processor budget to fill.")
  in
  let run app width height frames machine policy pes greedy jobs =
    handle_errors @@ fun () ->
    let frame = Size.v width height in
    let machine = Bp_machine.Machine.by_name machine in
    let build ~rate_hz =
      (build_app app ~frame ~rate:(Rate.hz rate_hz) ~n_frames:frames)
        .App.graph
    in
    ignore (policy_of policy);
    let r =
      Bp_compiler.Sweep.with_pool ~domains:jobs @@ fun pool ->
      Bp_compiler.Rate_search.search ~pool ~machine ~max_pes:pes ~greedy
        build
    in
    List.iter
      (fun (p : Bp_compiler.Rate_search.probe) ->
        Format.printf "  probe %8.2f Hz -> %s@." p.Bp_compiler.Rate_search.rate_hz
          (if p.Bp_compiler.Rate_search.fits then
             Printf.sprintf "fits (%d PEs)" p.Bp_compiler.Rate_search.pes
           else "does not fit"))
      r.Bp_compiler.Rate_search.probes;
    if r.Bp_compiler.Rate_search.best_rate_hz > 0. then
      Format.printf
        "highest sustainable rate on %d PEs: %.2f Hz (%d PEs used)@." pes
        r.Bp_compiler.Rate_search.best_rate_hz r.Bp_compiler.Rate_search.best_pes
    else Format.printf "no feasible rate on %d PEs@." pes
  in
  Cmd.v
    (Cmd.info "rate-search"
       ~doc:
         "Find the highest sustainable input rate for a processor budget \
          (the StreamIt-style inverse query); -j N shards the probe \
          compilations with identical recorded probes")
    Term.(
      const run $ app_arg $ width_arg $ height_arg $ frames_arg $ machine_arg
      $ policy_arg $ pes_arg $ greedy_arg $ jobs_arg)

let report_cmd =
  let figs =
    [
      ("fig2", fun ppf -> ignore (Bp_report.Report.fig2 ppf));
      ("fig3", fun ppf -> ignore (Bp_report.Report.fig3 ppf));
      ("fig4", fun ppf -> ignore (Bp_report.Report.fig4 ppf));
      ("fig5", fun ppf -> ignore (Bp_report.Report.fig5 ppf));
      ("fig8", fun ppf -> ignore (Bp_report.Report.fig8 ppf));
      ("fig9", fun ppf -> ignore (Bp_report.Report.fig9 ppf));
      ("fig10", fun ppf -> ignore (Bp_report.Report.fig10 ppf));
      ("fig11", fun ppf -> ignore (Bp_report.Report.fig11 ppf));
      ("fig12", fun ppf -> ignore (Bp_report.Report.fig12 ppf));
      ("fig13", fun ppf -> ignore (Bp_report.Report.fig13 ppf));
      ("util", fun ppf -> ignore (Bp_report.Report.utilization_table ppf));
      ("placement", fun ppf -> ignore (Bp_report.Report.placement_ablation ppf));
      ("energy", fun ppf -> ignore (Bp_report.Report.energy_ablation ppf));
      ("machines", fun ppf -> ignore (Bp_report.Report.machine_ablation ppf));
    ]
  in
  let which =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"FIG"
          ~doc:
            "Figures to reproduce (fig2..fig13, util, placement, energy, \
             machines, or all) — or $(b,bottleneck APP) for the real-time \
             bottleneck report of one application.")
  in
  let dot_dir =
    Arg.(
      value & opt (some string) None
      & info [ "dot-dir" ] ~docv:"DIR"
          ~doc:"Also write Graphviz renderings of the figure graphs here.")
  in
  (* [bpc report bottleneck APP]: simulate with health instrumentation and
     print the ranked stall report (docs/TUTORIAL.md §"Finding the
     bottleneck"). *)
  let bottleneck_report app width height rate frames machine policy greedy =
    let _inst, compiled =
      compile_common app width height rate frames machine policy
    in
    let hlt = Bp_obs.Health.create ~graph:compiled.Pipeline.graph () in
    let result =
      Plan.run_plan
        ~state_observer:(Bp_obs.Health.state_observer hlt)
        ~policy:(policy_of_greedy greedy) compiled ()
    in
    Bp_obs.Health.finalize hlt ~result ();
    Format.printf "%s (%s mapping)@." app
      (if greedy then "greedy" else "1:1");
    Format.printf "%a" Bp_obs.Health.pp_bottleneck hlt
  in
  let run which dot_dir width height rate frames machine policy greedy =
    handle_errors @@ fun () ->
    match which with
    | "bottleneck" :: rest -> (
      match rest with
      | [ app ] ->
        bottleneck_report app width height rate frames machine policy greedy
      | _ ->
        Bp_util.Err.unsupportedf
          "report bottleneck: expected exactly one APP (see bpc list)")
    | _ ->
      let ppf = Format.std_formatter in
      List.iter
        (fun w ->
          if w = "all" then Bp_report.Report.all ppf
          else
            match List.assoc_opt w figs with
            | Some f -> f ppf
            | None -> Bp_util.Err.unsupportedf "unknown figure %S" w)
        which;
      (match dot_dir with
      | Some dir -> ignore (Bp_report.Report.export_dots ~dir ppf)
      | None -> ())
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Reproduce the paper's figures and tables, or print a bottleneck \
          report")
    Term.(
      const run $ which $ dot_dir $ width_arg $ height_arg $ rate_arg
      $ frames_arg $ machine_arg $ policy_arg $ greedy_arg)

let () =
  let doc = "block-parallel compiler, simulator and experiment driver" in
  let info = Cmd.info "bpc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            compile_cmd;
            simulate_cmd;
            sweep_cmd;
            run_cmd;
            rate_search_cmd;
            report_cmd;
          ]))
