(* Writing a new kernel: a runtime-reconfigurable threshold.

   Demonstrates the parts of the kernel model the paper emphasizes: a
   kernel with two methods sharing private state — one triggered by pixel
   data, one triggered by a *user-defined control token* that changes the
   threshold mid-stream — plus a replicated configuration input. The
   control source emits the retune token between frames, and the compiler
   accounts for the handler's cycles like any other method.

   Run with: dune exec examples/custom_kernel.exe *)

open Block_parallel

let retune_token = Token.User "retune"

(* The threshold kernel: output 1.0 where the pixel exceeds the current
   threshold. [applyThreshold] runs per pixel; [retune] runs when the
   retune token arrives on the same stream and doubles the threshold. *)
let threshold_kernel ~initial () =
  let methods =
    [
      Method_spec.on_data ~cycles:3 ~name:"applyThreshold" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
      Method_spec.on_token ~cycles:5 ~name:"retune" ~input:"in"
        ~kind:retune_token ~outputs:[ "out" ] ~forward_token:false ();
    ]
  in
  let make_behaviour () =
    let level = ref initial in
    let run m ~alloc inputs =
      match m with
      | "applyThreshold" ->
        let px = List.assoc "in" inputs in
        let out = alloc (Image.size px) in
        Image.map_into (fun v -> if v > !level then 1. else 0.) ~src:px
          ~dst:out;
        [ ("out", out) ]
      | _ -> assert false
    in
    let token_run m ~alloc:_ _tok =
      match m with
      | "retune" ->
        level := !level *. 2.;
        []
      | _ -> assert false
    in
    Behaviour.iteration_kernel ~methods ~run ~token_run ()
  in
  Kernel.v ~class_name:"Threshold"
    ~token_budgets:[ Token.Bound.v retune_token ~max_per_frame:1 ]
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods ~make_behaviour ~state_words:1 ()

(* A source variant that injects the retune token after each frame: it
   wraps the pixel stream and emits the user token right after EOF. *)
let retuning_forward () =
  let make_behaviour () =
    let frame_idx = ref 0 in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some _ ->
        if io.space "out" < 2 then None
        else begin
          let item = io.pop "in" in
          io.push "out" item;
          (match item with
          | Item.Ctl tok when tok.Token.kind = Token.End_of_frame ->
            io.push "out" (Item.ctl (Token.user "retune" !frame_idx));
            incr frame_idx
          | _ -> ());
          Some { Behaviour.method_name = "forward"; cycles = 1 }
        end
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    Behaviour.v ~starved try_step
  in
  Kernel.v ~class_name:"Retune Injector" ~role:Kernel.Replicate
    ~parallelization:Kernel.Serial
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods:[] ~make_behaviour ()

let () =
  let frame = Size.v 16 12 in
  let rate = Rate.hz 20. in
  let n_frames = 3 in
  let frames = Image.Gen.frame_sequence ~seed:8 frame n_frames in
  let g = Graph.create () in
  let src =
    Graph.add g
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let injector = Graph.add g (retuning_forward ()) in
  let thresh = Graph.add g (threshold_kernel ~initial:2. ()) in
  let results = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel results ()) in
  Graph.connect g ~from:(src, "out") ~into:(injector, "in");
  Graph.connect g ~from:(injector, "out") ~into:(thresh, "in");
  Graph.connect g ~from:(thresh, "out") ~into:(sink, "in");

  let mapping = Mapping.one_to_one g in
  let result = Sim.run ~graph:g ~mapping ~machine:Machine.default () in
  Format.printf "%a@." Sim.pp_result result;

  (* Reference: frame 0 is judged at the initial level, and each retune
     token (arriving after a frame's EOF) doubles the level for the next
     frame. *)
  let expected =
    List.mapi
      (fun i f ->
        let level = 2. *. (2. ** float_of_int i) in
        Image.map (fun v -> if v > level then 1. else 0.) f)
      frames
  in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list frame
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames results)
  in
  let worst =
    List.fold_left2
      (fun acc a b -> Float.max acc (Image.max_abs_diff a b))
      0. expected got
  in
  Format.printf "thresholded frames: %d, worst |diff| vs reference = %g@."
    (List.length got) worst
