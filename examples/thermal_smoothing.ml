(* Thermal inspection: decimation plus temporal smoothing.

   A slow thermal sensor streams frames that are box-blurred, decimated
   2x2 (the model's step-larger-than-window downsampling, implemented by a
   downsampling buffer the compiler inserts), and then smoothed over time
   with a first-order IIR filter closed through a feedback loop — the
   Section III-D extension.

   Run with: dune exec examples/thermal_smoothing.exe *)

open Block_parallel

let smoothing = 0.25

(* A 1x1 window with step 2x2: keep one pixel in four. *)
let decimator () =
  let methods =
    [
      Method_spec.on_data ~cycles:2 ~name:"pick" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let run _m ~alloc:_ inputs = [ ("out", List.assoc "in" inputs) ] in
  Kernel.v ~class_name:"Decimate"
    ~inputs:[ Port.input "in" (Window.v ~step:(Step.v 2 2) Size.one) ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods
    ~make_behaviour:(fun () -> Behaviour.iteration_kernel ~methods ~run ())
    ()

let () =
  let frame = Size.v 20 16 in
  let rate = Rate.hz 12. in
  let n_frames = 5 in
  let frames = Image.Gen.frame_sequence ~seed:3 frame n_frames in

  let g = Graph.create ~allow_cycles:true () in
  let sensor =
    Graph.add g ~name:"Thermal Sensor"
      ~meta:(Graph.Source_meta { frame; rate })
      (Source.spec ~frame ~frames ())
  in
  let blur = Graph.add g ~name:"Blur" (Conv.spec ~w:3 ~h:3 ()) in
  let blur_img = Image.Gen.constant (Size.v 3 3) (1. /. 9.) in
  let coeff = Graph.add g (Source.const ~class_name:"Coeff" ~chunk:blur_img ()) in
  let dec = Graph.add g (decimator ()) in
  (* Temporal IIR on the decimated stream. *)
  let blurred = Size.v (frame.Size.w - 2) (frame.Size.h - 2) in
  let decimated =
    Size.v (((blurred.Size.w - 1) / 2) + 1) (((blurred.Size.h - 1) / 2) + 1)
  in
  let smooth =
    Graph.add g
      (Feedback.loop_combine ~class_name:"Temporal Smooth"
         (fun x prev -> ((1. -. smoothing) *. x) +. (smoothing *. prev)))
  in
  let init =
    Graph.add g
      ~meta:(Graph.Feedback_init_meta { extent = decimated; rate })
      (Feedback.init ~window:Window.pixel
         ~initial:[ Image.Gen.constant Size.one 0. ]
         ())
  in
  let results = Sink.collector () in
  let sink = Graph.add g (Sink.spec ~window:Window.pixel results ()) in
  Graph.connect g ~from:(sensor, "out") ~into:(blur, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(blur, "coeff");
  Graph.connect g ~from:(blur, "out") ~into:(dec, "in");
  Graph.connect g ~from:(dec, "out") ~into:(smooth, "in0");
  Graph.connect g ~from:(smooth, "out") ~into:(sink, "in");
  Graph.connect g ~from:(smooth, "out") ~into:(init, "in");
  Graph.connect g ~from:(init, "out") ~into:(smooth, "in1");

  let compiled = Pipeline.compile ~machine:Machine.default g in
  Format.printf "%a@." Pipeline.pp_summary compiled;
  let result = Pipeline.simulate compiled ~greedy:false in
  Format.printf "%a@." Sim.pp_result result;

  (* Reference computation with the same scan-line recurrence. *)
  let prev = ref 0. in
  let expected =
    List.map
      (fun f ->
        let d =
          Image_ops.downsample (Image_ops.convolve f ~kernel:blur_img) ~fx:2
            ~fy:2
        in
        let out = Image.create decimated in
        for y = 0 to decimated.Size.h - 1 do
          for x = 0 to decimated.Size.w - 1 do
            let v =
              ((1. -. smoothing) *. Image.get d ~x ~y)
              +. (smoothing *. !prev)
            in
            prev := v;
            Image.set out ~x ~y v
          done
        done;
        out)
      frames
  in
  let got =
    List.map
      (fun chunks ->
        Image.of_scanline_list decimated
          (List.map (fun c -> Image.get c ~x:0 ~y:0) chunks))
      (Sink.chunks_between_frames results)
  in
  let worst =
    List.fold_left2
      (fun acc a b -> Float.max acc (Image.max_abs_diff a b))
      0. expected got
  in
  Format.printf "smoothed frames: %d, worst |diff| vs reference = %g@."
    (List.length got) worst
