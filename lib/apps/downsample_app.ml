open Bp_geometry
module Graph = Bp_graph.Graph
module Image = Bp_image.Image
module Ops = Bp_image.Ops
module K = Bp_kernels

(* The decimator is a gain kernel whose input window is 1x1 with step 2x2;
   the compiler's buffering pass turns the step into a downsampling
   buffer. *)
let decimator () =
  let open Bp_kernel in
  let methods =
    [
      Method_spec.on_data ~cycles:2 ~name:"pick" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let run _m ~alloc:_ inputs = [ ("out", List.assoc "in" inputs) ] in
  Spec.v ~class_name:"Decimate 2x2"
    ~inputs:
      [ Port.input "in" (Bp_geometry.Window.v ~step:(Step.v 2 2) Size.one) ]
    ~outputs:[ Port.output "out" Bp_geometry.Window.pixel ]
    ~methods
    ~make_behaviour:(fun () -> Behaviour.iteration_kernel ~methods ~run ())
    ()

let v ?(seed = 53) ~frame ~rate ~n_frames () =
  let frames = Image.Gen.frame_sequence ~seed frame n_frames in
  let g = Graph.create () in
  let src = App.add_source g ~frame ~rate ~frames in
  let blur_coeff = Image.Gen.constant (Size.v 3 3) (1. /. 9.) in
  let blur = Graph.add g ~name:"3x3 Blur" (K.Conv.spec ~w:3 ~h:3 ()) in
  let coeff =
    Graph.add g ~name:"Blur Coeff"
      (K.Source.const ~class_name:"Blur Coeff" ~chunk:blur_coeff ())
  in
  let dec = Graph.add g (decimator ()) in
  let gain = Graph.add g (K.Arith.gain 2.) in
  let collector = K.Sink.collector () in
  let sink = App.add_sink g ~name:"result" ~window:Window.pixel collector in
  Graph.connect g ~from:(src, "out") ~into:(blur, "in");
  Graph.connect g ~from:(coeff, "out") ~into:(blur, "coeff");
  Graph.connect g ~from:(blur, "out") ~into:(dec, "in");
  Graph.connect g ~from:(dec, "out") ~into:(gain, "in");
  Graph.connect g ~from:(gain, "out") ~into:(sink, "in");
  let blurred_extent = Size.v (frame.Size.w - 2) (frame.Size.h - 2) in
  let out_extent =
    Size.v
      (((blurred_extent.Size.w - 1) / 2) + 1)
      (((blurred_extent.Size.h - 1) / 2) + 1)
  in
  let golden =
    List.map
      (fun f ->
        let blurred = Ops.convolve f ~kernel:blur_coeff in
        Ops.gain (Ops.downsample blurred ~fx:2 ~fy:2) 2.)
      frames
  in
  let check () =
    App.max_diff_over_frames ~golden
      (App.sink_frames_as_images collector out_extent)
  in
  {
    App.name = "downsample";
    graph = g;
    frame;
    rate;
    n_frames;
    checks = [ ("decimated", check) ];
    expected_chunks = [ ("result", n_frames * Size.area out_extent) ];
    collectors = [ ("result", collector) ];
    allowed_leftover = 0;
  }
