open Bp_util
module Graph = Bp_graph.Graph

type timing = {
  pass : string;
  wall_s : float;
  nodes_before : int;
  nodes_after : int;
  channels_before : int;
  channels_after : int;
}

type 'state invariant = string * ('state -> unit)

type 'state t = {
  pass_name : string;
  run : 'state -> unit;
  invariants : 'state invariant list;
}

let v ?(invariants = []) pass_name run = { pass_name; run; invariants }
let name p = p.pass_name

let wrap_err ~pass e =
  let prefix s = Printf.sprintf "pass %s: %s" pass s in
  match (e : Err.t) with
  | Err.Invalid_parameterization s -> Err.Invalid_parameterization (prefix s)
  | Err.Graph_malformed s -> Err.Graph_malformed (prefix s)
  | Err.Rate_mismatch s -> Err.Rate_mismatch (prefix s)
  | Err.Alignment_error s -> Err.Alignment_error (prefix s)
  | Err.Resource_exhausted s -> Err.Resource_exhausted (prefix s)
  | Err.Not_schedulable s -> Err.Not_schedulable (prefix s)
  | Err.Unsupported s -> Err.Unsupported (prefix s)

let run_all ~graph ~diags ~timings ?after_pass state passes =
  List.iter
    (fun p ->
      let g = graph state in
      let nodes_before = Graph.size g in
      let channels_before = List.length (Graph.channels g) in
      let t0 = Clock.now_s () in
      let record () =
        let g = graph state in
        timings :=
          !timings
          @ [
              {
                pass = p.pass_name;
                wall_s = Clock.elapsed_s ~since:t0;
                nodes_before;
                nodes_after = Graph.size g;
                channels_before;
                channels_after = List.length (Graph.channels g);
              };
            ]
      in
      (* The pass barrier: run the body, then every post-invariant, inside
         one timing window. A failure anywhere records the partial timing
         and an error diagnostic before the (wrapped) error escapes. *)
      match
        Err.guard (fun () ->
            p.run state;
            List.iter
              (fun (inv_name, check) ->
                match Err.guard (fun () -> check state) with
                | Ok () -> ()
                | Error e ->
                  Err.fail
                    (wrap_err ~pass:(p.pass_name ^ "/" ^ inv_name) e))
              p.invariants)
      with
      | Ok () -> (
        record ();
        match after_pass with
        | Some f -> f ~pass:p.pass_name state
        | None -> ())
      | Error e ->
        record ();
        let wrapped =
          (* Invariant failures arrive already wrapped with
             "pass <name>/<invariant>"; wrap bare pass-body errors here. *)
          let already =
            let prefix = "pass " ^ p.pass_name in
            let s = Err.to_string e in
            (* Err.to_string prepends the class; search for the marker. *)
            let rec contains i =
              let np = String.length prefix and ns = String.length s in
              i + np <= ns
              && (String.sub s i np = prefix || contains (i + 1))
            in
            contains 0
          in
          if already then e else wrap_err ~pass:p.pass_name e
        in
        Diag.add diags
          (Diag.v Diag.Error ~pass:p.pass_name (Err.to_string wrapped));
        Err.fail wrapped)
    passes
