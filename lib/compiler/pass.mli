(** The staged pass manager.

    A compilation is a sequence of named passes over a shared mutable
    state. Each pass owns:

    - a {b name}, used for timing tables, diagnostics provenance,
      [--dump-after] and error wrapping;
    - a {b run function} that mutates the state;
    - {b post-invariants}: checks that run at the pass barrier,
      immediately after the pass that could break them — not once at the
      end of the whole pipeline.

    The manager ({!run_all}) measures each pass with the monotonic clock
    ({!Bp_util.Clock}), records a {!timing} {e even when the pass fails}
    (the partial timing lands in the caller's accumulator before the
    error propagates), converts any {!Bp_util.Err.Error} escaping a pass
    body or invariant into an error-severity diagnostic carrying the
    pass's name, and re-raises the error wrapped with that name. [Err]
    therefore only ever crosses the pass barrier: inside the flow,
    failures are data ({!Bp_util.Diag.t}) first. *)

type timing = {
  pass : string;  (** Pass name. *)
  wall_s : float;
      (** Monotonic seconds spent in the pass, invariants included.
          Never negative, even under clock steps. *)
  nodes_before : int;
  nodes_after : int;
  channels_before : int;
  channels_after : int;
}
(** One pass's wall time and graph-size delta — the compiler half of the
    observability contract (docs/OBSERVABILITY.md). Exported to Chrome
    trace JSON by {!Bp_obs.Chrome_trace} and to metrics by
    {!Bp_obs.Instrument.record_compile}. *)

type 'state invariant = string * ('state -> unit)
(** A named post-condition; raises {!Bp_util.Err.Error} on violation. *)

type 'state t
(** A pass over a ['state]. *)

val v :
  ?invariants:'state invariant list ->
  string ->
  ('state -> unit) ->
  'state t
(** [v name run] is a pass. [invariants] default to none. *)

val name : _ t -> string

val run_all :
  graph:('state -> Bp_graph.Graph.t) ->
  diags:Bp_util.Diag.buffer ->
  timings:timing list ref ->
  ?after_pass:(pass:string -> 'state -> unit) ->
  'state ->
  'state t list ->
  unit
(** Run the passes in order. [graph] projects the state's graph for the
    before/after node and channel counts. Timings are appended to
    [timings] in execution order as each pass completes — including the
    failing pass, so a crash still leaves a full record. [after_pass]
    (default: nothing) is called after each successful pass barrier —
    the [--dump-after] hook.

    On a failure in pass [p] (body or invariant), an error-severity
    diagnostic with [pass = p] is appended to [diags] and the original
    {!Bp_util.Err.Error} is re-raised with its message prefixed
    ["pass <p>: "] — the error class is preserved so callers can still
    match on it. *)

val wrap_err : pass:string -> Bp_util.Err.t -> Bp_util.Err.t
(** The error-wrapping rule: same constructor, message prefixed with the
    pass name. Exposed for tests. *)
