open Bp_util
module Graph = Bp_graph.Graph
module Machine = Bp_machine.Machine
module Align = Bp_transform.Align
module Buffering = Bp_transform.Buffering
module Parallelize = Bp_transform.Parallelize
module Multiplex = Bp_transform.Multiplex
module Schedulability = Bp_transform.Schedulability
module Dataflow = Bp_analysis.Dataflow
module Mapping = Bp_sim.Mapping
module Static_schedule = Bp_sim.Static_schedule
module Placement = Bp_placement.Placement

type pass_timing = Pass.timing = {
  pass : string;
  wall_s : float;
  nodes_before : int;
  nodes_after : int;
  channels_before : int;
  channels_after : int;
}

type t = Plan.t = {
  graph : Graph.t;
  machine : Machine.t;
  repairs : Align.repair list;
  buffers : Buffering.inserted list;
  decisions : Parallelize.decision list;
  analysis : Dataflow.t;
  schedulability : Schedulability.t;
  one_to_one : Plan.mapped;
  greedy : (Plan.mapped, Err.t) result;
  greedy_groups : Graph.node_id list list;
  schedule : Static_schedule.t;
  diagnostics : Diag.t list;
  timings : Pass.timing list;
}

(* ---- the compile state the passes share -------------------------------- *)

type cstate = {
  st_graph : Graph.t;
  st_machine : Machine.t;
  st_align_policy : Align.policy option;
  st_diags : Diag.buffer;
  mutable st_repairs : Align.repair list;
  mutable st_buffers : Buffering.inserted list;
  mutable st_decisions : Parallelize.decision list;
  mutable st_analysis : Dataflow.t option;
  mutable st_sched : Schedulability.t option;
  mutable st_one_groups : Graph.node_id list list;
  mutable st_one_mapping : Mapping.t option;
  mutable st_one_placement : Placement.placement option;
  mutable st_greedy_groups : Graph.node_id list list;
  mutable st_greedy_mapping : (Mapping.t, Err.t) result option;
  mutable st_greedy_placement : Placement.placement option;
  mutable st_schedule : Static_schedule.t option;
}

let analysis_exn st =
  match st.st_analysis with
  | Some an -> an
  | None -> Err.graphf "internal: pass ran before any analysis"

(* ---- invariants --------------------------------------------------------

   Each invariant raises the matching [Err] class on violation; the pass
   manager records the failure as a diagnostic and wraps the error with
   "pass <name>/<invariant>". Structural invariants re-analyze so they
   judge the graph as the *next* pass will see it; the fresh analysis is
   kept so subsequent passes and invariants do not pay for it twice. *)

let inv_graph_valid = ("graph-valid", fun st -> Graph.validate st.st_graph)

let reanalyze st = st.st_analysis <- Some (Dataflow.analyze st.st_graph)

let check_no_misalignment st =
  match Dataflow.misalignments (analysis_exn st) with
  | [] -> ()
  | ms -> Err.alignf "%d misalignment(s) survived" (List.length ms)

let check_all_buffered st =
  let an = analysis_exn st in
  List.iter
    (fun c ->
      if Dataflow.needs_buffer an c then
        Err.graphf "channel %d still needs a buffer" c.Graph.chan_id)
    (Graph.channels st.st_graph)

let inv_no_misalignment =
  ( "no-misalignment",
    fun st ->
      reanalyze st;
      check_no_misalignment st )

let inv_all_buffered =
  ( "no-unbuffered-channel",
    fun st ->
      reanalyze st;
      check_all_buffered st;
      check_no_misalignment st )

(* After analyze-post the stored analysis IS the final one; check it
   without re-analyzing. *)
let inv_post_clean =
  ( "elaboration-clean",
    fun st ->
      check_no_misalignment st;
      check_all_buffered st )

let inv_mappings_total =
  ( "all-on-chip-mapped",
    fun st ->
      let check = function
        | None | Some (Error _) -> ()
        | Some (Ok m) ->
          List.iter
            (fun (n : Graph.node) ->
              match n.Graph.spec.Bp_kernel.Spec.role with
              | Bp_kernel.Spec.Source | Bp_kernel.Spec.Const_source
              | Bp_kernel.Spec.Sink ->
                ()
              | _ ->
                if Mapping.processor_of m n.Graph.id = None then
                  Err.graphf "node %s escaped the mapping" n.Graph.name)
            (Graph.nodes st.st_graph)
      in
      check (Option.map (fun m -> Ok m) st.st_one_mapping);
      check st.st_greedy_mapping )

let inv_tiles_fit =
  ( "tiles-fit-mesh",
    fun st ->
      let check mapping = function
        | None -> ()
        | Some (p : Placement.placement) ->
          let procs = Mapping.processors mapping in
          if p.Placement.mesh_side * p.Placement.mesh_side < procs then
            Err.graphf "placement mesh %dx%d cannot hold %d processors"
              p.Placement.mesh_side p.Placement.mesh_side procs;
          if not (p.Placement.cost >= 0.) then
            Err.graphf "placement cost is not a non-negative number"
      in
      (match st.st_one_mapping with
      | Some m -> check m st.st_one_placement
      | None -> ());
      match st.st_greedy_mapping with
      | Some (Ok m) -> check m st.st_greedy_placement
      | Some (Error _) | None -> () )

(* ---- the passes -------------------------------------------------------- *)

let pass_validate = Pass.v "validate" (fun st -> Graph.validate st.st_graph)

let pass_analyze_pre =
  Pass.v "analyze-pre" (fun st ->
      st.st_analysis <- Some (Dataflow.analyze st.st_graph))

let pass_align =
  Pass.v "align"
    ~invariants:[ inv_graph_valid; inv_no_misalignment ]
    (fun st ->
      st.st_repairs <- Align.run ?policy:st.st_align_policy st.st_graph;
      List.iter
        (fun (r : Align.repair) ->
          let l, ri, tp, b = r.Align.margins in
          Diag.addf st.st_diags Diag.Info ~pass:"align"
            ~subject:(Diag.Node (Graph.node st.st_graph r.Align.inserted).Graph.name)
            "inserted repair (l=%d r=%d t=%d b=%d)" l ri tp b)
        st.st_repairs)

let pass_buffering =
  Pass.v "buffering"
    ~invariants:[ inv_graph_valid; inv_all_buffered ]
    (fun st ->
      st.st_buffers <- Buffering.run st.st_graph;
      List.iter
        (fun (b : Buffering.inserted) ->
          Diag.addf st.st_diags Diag.Info ~pass:"buffering"
            ~subject:
              (Diag.Node (Graph.node st.st_graph b.Buffering.buffer_node).Graph.name)
            "inserted buffer, storage [%dx%d]"
            b.Buffering.storage.Bp_geometry.Size.w
            b.Buffering.storage.Bp_geometry.Size.h)
        st.st_buffers)

let pass_parallelize =
  Pass.v "parallelize" ~invariants:[ inv_graph_valid ] (fun st ->
      st.st_decisions <- Parallelize.run st.st_machine st.st_graph;
      List.iter
        (fun (d : Parallelize.decision) ->
          Diag.addf st.st_diags Diag.Info ~pass:"parallelize"
            ~subject:(Diag.Node d.Parallelize.original)
            "parallelized x%d (%s)" d.Parallelize.degree
            (match d.Parallelize.reason with
            | Parallelize.Cpu_bound -> "cpu-bound"
            | Parallelize.Memory_bound -> "memory-bound"
            | Parallelize.Capped_by_dependency -> "dependency-capped"))
        st.st_decisions)

let pass_analyze_post =
  Pass.v "analyze-post" ~invariants:[ inv_post_clean ] (fun st ->
      st.st_analysis <- Some (Dataflow.analyze st.st_graph))

let pass_schedulability =
  Pass.v "schedulability" (fun st ->
      let sched = Schedulability.check st.st_machine st.st_graph in
      st.st_sched <- Some sched;
      List.iter
        (fun (n : Schedulability.node_report) ->
          if not n.Schedulability.schedulable then
            Diag.addf st.st_diags Diag.Warning ~pass:"schedulability"
              ~subject:(Diag.Node n.Schedulability.name)
              "predicted utilization %.0f%% exceeds one PE's budget"
              (100. *. n.Schedulability.utilization))
        sched.Schedulability.nodes)

let pass_map =
  Pass.v "map" ~invariants:[ inv_mappings_total ] (fun st ->
      let g = st.st_graph in
      let one_groups = Multiplex.one_to_one g in
      st.st_one_groups <- one_groups;
      st.st_one_mapping <- Some (Mapping.of_groups g one_groups);
      let greedy_groups = Multiplex.greedy st.st_machine g in
      st.st_greedy_groups <- greedy_groups;
      let wanted = List.length greedy_groups in
      if wanted > st.st_machine.Machine.max_pes then begin
        let e =
          Err.Resource_exhausted
            (Printf.sprintf "program needs %d PEs but the machine has %d"
               wanted st.st_machine.Machine.max_pes)
        in
        Diag.addf st.st_diags Diag.Warning ~pass:"map"
          "greedy mapping needs %d PEs but the machine has %d; only the \
           1:1 mapping is realized"
          wanted st.st_machine.Machine.max_pes;
        st.st_greedy_mapping <- Some (Error e)
      end
      else
        st.st_greedy_mapping <- Some (Ok (Mapping.of_groups g greedy_groups));
      Diag.addf st.st_diags Diag.Info ~pass:"map"
        "1:1 uses %d PEs, greedy packs them onto %d"
        (List.length one_groups) wanted)

let pass_place =
  Pass.v "place" ~invariants:[ inv_tiles_fit ] (fun st ->
      let an = analysis_exn st in
      (match st.st_one_mapping with
      | Some m ->
        let p = Placement.place an m in
        st.st_one_placement <- Some p;
        Diag.addf st.st_diags Diag.Info ~pass:"place"
          "1:1 placement: %dx%d mesh, %.0f word-hops/frame"
          p.Placement.mesh_side p.Placement.mesh_side p.Placement.cost
      | None -> Err.graphf "internal: place pass ran before map");
      match st.st_greedy_mapping with
      | Some (Ok m) ->
        let p = Placement.place an m in
        st.st_greedy_placement <- Some p;
        Diag.addf st.st_diags Diag.Info ~pass:"place"
          "greedy placement: %dx%d mesh, %.0f word-hops/frame"
          p.Placement.mesh_side p.Placement.mesh_side p.Placement.cost
      | Some (Error _) -> ()
      | None -> Err.graphf "internal: place pass ran before map")

(* The schedule pass is a pure artifact producer: it mutates nothing in
   the graph, so its invariants are about the artifact itself. *)
let inv_regions_partition =
  ( "regions-partition",
    fun st ->
      match st.st_schedule with
      | None -> Err.graphf "internal: schedule invariant ran before the pass"
      | Some sched ->
        if not sched.Static_schedule.truncated then begin
          let seen = Hashtbl.create 32 in
          List.iter
            (fun (r : Static_schedule.region) ->
              List.iter
                (fun id ->
                  if Hashtbl.mem seen id then
                    Err.graphf "node %d appears in two schedule regions" id;
                  Hashtbl.replace seen id ())
                r.Static_schedule.r_nodes)
            sched.Static_schedule.regions;
          List.iter
            (fun (n : Graph.node) ->
              if not (Hashtbl.mem seen n.Graph.id) then
                Err.graphf "node %s missing from the schedule regions"
                  n.Graph.name)
            (Graph.nodes st.st_graph)
        end )

let pass_schedule =
  Pass.v "schedule" ~invariants:[ inv_regions_partition ] (fun st ->
      let mapping =
        match st.st_one_mapping with
        | Some m -> m
        | None -> Err.graphf "internal: schedule pass ran before map"
      in
      let sched = Static_schedule.build ~graph:st.st_graph ~mapping () in
      st.st_schedule <- Some sched;
      if sched.Static_schedule.truncated then
        Diag.addf st.st_diags Diag.Warning ~pass:"schedule"
          "recorder truncated after %d firings; simulation falls back to \
           fully event-driven dispatch"
          sched.Static_schedule.recorded_firings
      else
        Diag.addf st.st_diags Diag.Info ~pass:"schedule"
          "%d regions (%d static), %d kernels tabled, coverage bound \
           %.0f%% of %d recorded firings"
          (List.length sched.Static_schedule.regions)
          (Static_schedule.static_regions sched)
          (List.length sched.Static_schedule.tables)
          (100. *. Static_schedule.coverage_bound sched st.st_graph)
          sched.Static_schedule.recorded_firings)

let passes =
  [
    pass_validate;
    pass_analyze_pre;
    pass_align;
    pass_buffering;
    pass_parallelize;
    pass_analyze_post;
    pass_schedulability;
    pass_map;
    pass_place;
    pass_schedule;
  ]

let compile ?align_policy ?diags ?after_pass ~machine g =
  let diags = match diags with Some d -> d | None -> Diag.buffer () in
  let st =
    {
      st_graph = g;
      st_machine = machine;
      st_align_policy = align_policy;
      st_diags = diags;
      st_repairs = [];
      st_buffers = [];
      st_decisions = [];
      st_analysis = None;
      st_sched = None;
      st_one_groups = [];
      st_one_mapping = None;
      st_one_placement = None;
      st_greedy_groups = [];
      st_greedy_mapping = None;
      st_greedy_placement = None;
      st_schedule = None;
    }
  in
  let timings = ref [] in
  let after_pass =
    Option.map (fun f ~pass st -> f ~pass st.st_graph) after_pass
  in
  Pass.run_all ~graph:(fun st -> st.st_graph) ~diags ~timings ?after_pass st
    passes;
  let require what = function
    | Some v -> v
    | None -> Err.graphf "internal: compile finished without %s" what
  in
  {
    graph = g;
    machine;
    repairs = st.st_repairs;
    buffers = st.st_buffers;
    decisions = st.st_decisions;
    analysis = require "an analysis" st.st_analysis;
    schedulability = require "a schedulability report" st.st_sched;
    one_to_one =
      {
        Plan.groups = st.st_one_groups;
        mapping = require "a 1:1 mapping" st.st_one_mapping;
        placement = require "a 1:1 placement" st.st_one_placement;
      };
    greedy =
      (match require "a greedy mapping" st.st_greedy_mapping with
      | Ok mapping ->
        Ok
          {
            Plan.groups = st.st_greedy_groups;
            mapping;
            placement = require "a greedy placement" st.st_greedy_placement;
          }
      | Error e -> Error e);
    greedy_groups = st.st_greedy_groups;
    schedule = require "a schedule" st.st_schedule;
    diagnostics = Diag.list diags;
    timings = !timings;
  }

(* ---- the pre-plan execution path (kept verbatim) ----------------------- *)

let mapping_one_to_one t = Mapping.one_to_one t.graph

let mapping_greedy t =
  let groups = Multiplex.greedy t.machine t.graph in
  if List.length groups > t.machine.Machine.max_pes then
    Err.resourcef "program needs %d PEs but the machine has %d"
      (List.length groups) t.machine.Machine.max_pes;
  Mapping.of_groups t.graph groups

let processors_needed t ~greedy =
  if greedy then List.length (Multiplex.greedy t.machine t.graph)
  else List.length (Multiplex.one_to_one t.graph)

let simulate ?max_time_s ?pool t ~greedy =
  let mapping = if greedy then mapping_greedy t else mapping_one_to_one t in
  Bp_sim.Sim.run ?max_time_s ?pool ~graph:t.graph ~mapping ~machine:t.machine
    ()

let pp_summary = Plan.pp_summary
let pp_passes = Plan.pp_timings
