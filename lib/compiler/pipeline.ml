open Bp_util
module Graph = Bp_graph.Graph
module Machine = Bp_machine.Machine
module Align = Bp_transform.Align
module Buffering = Bp_transform.Buffering
module Parallelize = Bp_transform.Parallelize
module Multiplex = Bp_transform.Multiplex
module Dataflow = Bp_analysis.Dataflow
module Mapping = Bp_sim.Mapping

type pass_timing = {
  pass : string;
  wall_s : float;
  nodes_before : int;
  nodes_after : int;
  channels_before : int;
  channels_after : int;
}

type t = {
  graph : Graph.t;
  machine : Machine.t;
  repairs : Align.repair list;
  buffers : Buffering.inserted list;
  decisions : Parallelize.decision list;
  analysis : Dataflow.t;
  passes : pass_timing list;
}

let compile ?align_policy ~machine g =
  let passes = ref [] in
  let timed pass f =
    let nodes_before = Graph.size g in
    let channels_before = List.length (Graph.channels g) in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let wall_s = Unix.gettimeofday () -. t0 in
    passes :=
      {
        pass;
        wall_s;
        nodes_before;
        nodes_after = Graph.size g;
        channels_before;
        channels_after = List.length (Graph.channels g);
      }
      :: !passes;
    r
  in
  timed "validate" (fun () -> Graph.validate g);
  timed "analyze-pre" (fun () -> ignore (Dataflow.analyze g));
  let repairs = timed "align" (fun () -> Align.run ?policy:align_policy g) in
  let buffers = timed "buffering" (fun () -> Buffering.run g) in
  let decisions = timed "parallelize" (fun () -> Parallelize.run machine g) in
  let analysis = timed "analyze-post" (fun () -> Dataflow.analyze g) in
  timed "check" (fun () ->
      if Dataflow.misalignments analysis <> [] then
        Err.alignf "internal: misalignment survived compilation";
      List.iter
        (fun c ->
          if Dataflow.needs_buffer analysis c then
            Err.graphf
              "internal: channel still needs a buffer after compilation")
        (Graph.channels g));
  {
    graph = g;
    machine;
    repairs;
    buffers;
    decisions;
    analysis;
    passes = List.rev !passes;
  }

let mapping_one_to_one t = Mapping.one_to_one t.graph

let mapping_greedy t =
  let groups = Multiplex.greedy t.machine t.graph in
  if List.length groups > t.machine.Machine.max_pes then
    Err.resourcef "program needs %d PEs but the machine has %d"
      (List.length groups) t.machine.Machine.max_pes;
  Mapping.of_groups t.graph groups

let processors_needed t ~greedy =
  if greedy then List.length (Multiplex.greedy t.machine t.graph)
  else List.length (Multiplex.one_to_one t.graph)

let simulate ?max_time_s ?pool t ~greedy =
  let mapping = if greedy then mapping_greedy t else mapping_one_to_one t in
  Bp_sim.Sim.run ?max_time_s ?pool ~graph:t.graph ~mapping ~machine:t.machine
    ()

let pp_summary ppf t =
  Format.fprintf ppf
    "compiled: %d nodes (%d buffers inserted, %d repairs, %d kernels \
     parallelized); 1:1 needs %d PEs, greedy needs %d PEs@,"
    (Graph.size t.graph)
    (List.length t.buffers) (List.length t.repairs)
    (List.length t.decisions)
    (processors_needed t ~greedy:false)
    (processors_needed t ~greedy:true);
  List.iter
    (fun (d : Parallelize.decision) ->
      Format.fprintf ppf "  %s -> x%d (%s)@," d.Parallelize.original
        d.Parallelize.degree
        (match d.Parallelize.reason with
        | Parallelize.Cpu_bound -> "cpu"
        | Parallelize.Memory_bound -> "memory"
        | Parallelize.Capped_by_dependency -> "dependency-capped"))
    t.decisions

let pp_passes ppf t =
  Format.fprintf ppf "@[<v>compile passes:@,";
  List.iter
    (fun p ->
      let delta before after =
        if after = before then "" else Printf.sprintf "%+d" (after - before)
      in
      Format.fprintf ppf "  %-12s %8.3f ms  nodes %d%s, channels %d%s@," p.pass
        (1000. *. p.wall_s) p.nodes_after
        (delta p.nodes_before p.nodes_after)
        p.channels_after
        (delta p.channels_before p.channels_after))
    t.passes;
  Format.fprintf ppf "@]"
