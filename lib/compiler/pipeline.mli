(** The end-to-end compilation pipeline.

    [compile] takes a raw application graph (Figure 1(b)) and a machine and
    drives it through the paper's sequence of automatic transformations:

    + validate and analyze (Section III-A);
    + repair alignment by trimming or padding (Section III-C, Figure 3);
    + insert buffers (Section III-B, Figure 3);
    + parallelize kernels and split buffers to meet the input rate
      (Section IV, Figure 4);
    + re-analyze and sanity-check the elaborated graph.

    Mappings (1:1 or greedily multiplexed, Section V) are produced
    separately so a compiled program can be simulated under both. *)

type pass_timing = {
  pass : string;
      (** Pass name: ["validate" | "analyze-pre" | "align" | "buffering" |
          "parallelize" | "analyze-post" | "check"], in execution order. *)
  wall_s : float;  (** Wall-clock seconds spent in the pass. *)
  nodes_before : int;
  nodes_after : int;
  channels_before : int;
  channels_after : int;
}
(** One compile pass's wall time and graph-size delta — the compiler half
    of the observability contract (docs/OBSERVABILITY.md). Exported to
    Chrome trace JSON by {!Bp_obs.Chrome_trace}. *)

type t = {
  graph : Bp_graph.Graph.t;  (** The elaborated graph (mutated in place). *)
  machine : Bp_machine.Machine.t;
  repairs : Bp_transform.Align.repair list;
  buffers : Bp_transform.Buffering.inserted list;
  decisions : Bp_transform.Parallelize.decision list;
  analysis : Bp_analysis.Dataflow.t;  (** Of the elaborated graph. *)
  passes : pass_timing list;  (** In execution order. *)
}

val compile :
  ?align_policy:Bp_transform.Align.policy ->
  machine:Bp_machine.Machine.t ->
  Bp_graph.Graph.t ->
  t
(** Compile in place. Fails with the transform errors documented in
    [Bp_transform] when the program cannot meet its constraints. *)

val mapping_one_to_one : t -> Bp_sim.Mapping.t

val mapping_greedy : t -> Bp_sim.Mapping.t
(** Fails with {!Bp_util.Err.Resource_exhausted} when even the merged
    mapping needs more processors than the machine has. *)

val processors_needed : t -> greedy:bool -> int

val simulate :
  ?max_time_s:float -> ?pool:bool -> t -> greedy:bool -> Bp_sim.Sim.result
(** Convenience: simulate the compiled program under the chosen mapping.
    [pool] is passed through to {!Bp_sim.Sim.run} (default: pooled). *)

val pp_summary : Format.formatter -> t -> unit

val pp_passes : Format.formatter -> t -> unit
(** The per-pass timing table: wall time and node/channel deltas. *)
