(** The end-to-end compilation pipeline.

    [compile] takes a raw application graph (Figure 1(b)) and a machine
    and drives the staged pass manager ({!Pass}) through the paper's
    sequence of automatic transformations, ending in a single {!Plan.t}
    artifact:

    + [validate] — structural sanity of the input graph;
    + [analyze-pre] — dataflow analysis of the raw graph (Section III-A);
    + [align] — repair alignment by trimming or padding (Section III-C,
      Figure 3); invariants: graph validity, no surviving misalignment;
    + [buffering] — insert buffers (Section III-B, Figure 3); invariants:
      graph validity, no unbuffered channel, no misalignment introduced;
    + [parallelize] — replicate kernels and split buffers to meet the
      input rate (Section IV, Figure 4); invariant: graph validity;
    + [analyze-post] — re-analysis of the elaborated graph (rate
      consistency is implied by the analysis succeeding); invariants: no
      misalignment, no unbuffered channel;
    + [schedulability] — the static a-priori utilization argument
      (Section IV); an unschedulable prediction is a warning diagnostic,
      not a failure — the simulator arbitrates;
    + [map] — both kernel-to-processor mappings (Section V): 1:1 and
      greedy multiplexed; a greedy overflow of the machine's PE budget is
      recorded, not raised;
    + [place] — annealed mesh placement of each realized mapping
      (Section IV-D);
    + [schedule] — quasi-static schedule recovery: an untimed functional
      execution of the elaborated graph records each kernel's firing
      sequence, segments it at end-of-frame boundaries into a prelude
      and a steady-state period, and partitions the graph into static
      regions ({!Bp_sim.Static_schedule}); invariant: the regions
      partition the node set exactly. The artifact drives the
      simulator's quasi-static executor and [--dump-after schedule].

    Each pass is timed with the monotonic clock and checked by its
    post-invariants at the pass barrier — see {!Pass}. Failures carry
    the failing pass's name and leave partial timings and an error
    diagnostic behind. *)

type pass_timing = Pass.timing = {
  pass : string;
      (** Pass name: ["validate" | "analyze-pre" | "align" | "buffering" |
          "parallelize" | "analyze-post" | "schedulability" | "map" |
          "place" | "schedule"], in execution order. *)
  wall_s : float;  (** Monotonic wall seconds spent in the pass. *)
  nodes_before : int;
  nodes_after : int;
  channels_before : int;
  channels_after : int;
}
(** Re-export of {!Pass.timing} for callers of the historical API. *)

type t = Plan.t = {
  graph : Bp_graph.Graph.t;
  machine : Bp_machine.Machine.t;
  repairs : Bp_transform.Align.repair list;
  buffers : Bp_transform.Buffering.inserted list;
  decisions : Bp_transform.Parallelize.decision list;
  analysis : Bp_analysis.Dataflow.t;
  schedulability : Bp_transform.Schedulability.t;
  one_to_one : Plan.mapped;
  greedy : (Plan.mapped, Bp_util.Err.t) result;
  greedy_groups : Bp_graph.Graph.node_id list list;
  schedule : Bp_sim.Static_schedule.t;
  diagnostics : Bp_util.Diag.t list;
  timings : Pass.timing list;
}
(** Re-export of {!Plan.t}: the compiler's result IS the plan. *)

val compile :
  ?align_policy:Bp_transform.Align.policy ->
  ?diags:Bp_util.Diag.buffer ->
  ?after_pass:(pass:string -> Bp_graph.Graph.t -> unit) ->
  machine:Bp_machine.Machine.t ->
  Bp_graph.Graph.t ->
  t
(** Compile in place. Fails with the transform errors documented in
    [Bp_transform], wrapped with the failing pass's name. [diags]
    (default: a fresh buffer) accumulates diagnostics; supply your own
    to inspect them after a failed compile — the buffer then also holds
    an error entry naming the pass that failed. [after_pass] is invoked
    with the graph after every successful pass barrier — the
    [bpc compile --dump-after] hook. *)

(** {1 The pre-plan execution path}

    Kept verbatim from before the pass-manager refactor: mappings are
    recomputed ad hoc from the elaborated graph at call time instead of
    read from the plan. [test/test_plan.ml] holds {!Plan.run_plan}
    bit-exact against this path over the whole suite. *)

val mapping_one_to_one : t -> Bp_sim.Mapping.t

val mapping_greedy : t -> Bp_sim.Mapping.t
(** Fails with {!Bp_util.Err.Resource_exhausted} when even the merged
    mapping needs more processors than the machine has. *)

val processors_needed : t -> greedy:bool -> int

val simulate :
  ?max_time_s:float -> ?pool:bool -> t -> greedy:bool -> Bp_sim.Sim.result
(** Convenience: simulate the compiled program under the chosen mapping.
    [pool] is passed through to {!Bp_sim.Sim.run} (default: pooled). *)

(** {1 Rendering} *)

val pp_summary : Format.formatter -> t -> unit
(** Alias of {!Plan.pp_summary}. *)

val pp_passes : Format.formatter -> t -> unit
(** Alias of {!Plan.pp_timings}: the per-pass timing table. *)
