open Bp_util
module Graph = Bp_graph.Graph
module Machine = Bp_machine.Machine
module Align = Bp_transform.Align
module Buffering = Bp_transform.Buffering
module Parallelize = Bp_transform.Parallelize
module Schedulability = Bp_transform.Schedulability
module Dataflow = Bp_analysis.Dataflow
module Mapping = Bp_sim.Mapping
module Sim = Bp_sim.Sim
module Static_schedule = Bp_sim.Static_schedule
module Placement = Bp_placement.Placement

type policy = One_to_one | Greedy

let policy_name = function One_to_one -> "1:1" | Greedy -> "greedy"

type mapped = {
  groups : Graph.node_id list list;
  mapping : Mapping.t;
  placement : Placement.placement;
}

type t = {
  graph : Graph.t;
  machine : Machine.t;
  repairs : Align.repair list;
  buffers : Buffering.inserted list;
  decisions : Parallelize.decision list;
  analysis : Dataflow.t;
  schedulability : Schedulability.t;
  one_to_one : mapped;
  greedy : (mapped, Err.t) result;
  greedy_groups : Graph.node_id list list;
  schedule : Static_schedule.t;
  diagnostics : Diag.t list;
  timings : Pass.timing list;
}

let mapped t ~policy =
  match policy with
  | One_to_one -> t.one_to_one
  | Greedy -> ( match t.greedy with Ok m -> m | Error e -> Err.fail e)

let mapping t ~policy = (mapped t ~policy).mapping
let placement t ~policy = (mapped t ~policy).placement

let processors_needed t ~policy =
  match policy with
  | One_to_one -> List.length t.one_to_one.groups
  | Greedy -> List.length t.greedy_groups

let errors t = Diag.errors t.diagnostics

let run_plan ?max_time_s ?max_events ?pool ?chunk_pool
    ?(with_placement = false) ?(hop_cycles_per_word = 0.5) ?(static = true)
    ?observer ?channel_observer ?state_observer ~policy t () =
  let m = mapped t ~policy in
  let placement =
    if with_placement then
      Some
        {
          Sim.tile_of_proc = m.placement.Placement.tile_of;
          hop_cycles_per_word;
        }
    else None
  in
  let static_schedule = if static then Some t.schedule else None in
  Sim.run ?max_time_s ?max_events ?pool ?chunk_pool ?placement ?observer
    ?channel_observer ?state_observer ?static_schedule ~graph:t.graph
    ~mapping:m.mapping ~machine:t.machine ()

(* ---- rendering --------------------------------------------------------- *)

let pp_summary ppf t =
  Format.fprintf ppf
    "compiled: %d nodes (%d buffers inserted, %d repairs, %d kernels \
     parallelized); 1:1 needs %d PEs, greedy needs %d PEs@,"
    (Graph.size t.graph)
    (List.length t.buffers) (List.length t.repairs)
    (List.length t.decisions)
    (processors_needed t ~policy:One_to_one)
    (processors_needed t ~policy:Greedy);
  List.iter
    (fun (d : Parallelize.decision) ->
      Format.fprintf ppf "  %s -> x%d (%s)@," d.Parallelize.original
        d.Parallelize.degree
        (match d.Parallelize.reason with
        | Parallelize.Cpu_bound -> "cpu"
        | Parallelize.Memory_bound -> "memory"
        | Parallelize.Capped_by_dependency -> "dependency-capped"))
    t.decisions

let pp_timings ppf t =
  Format.fprintf ppf "@[<v>compile passes:@,";
  List.iter
    (fun (p : Pass.timing) ->
      let delta before after =
        if after = before then "" else Printf.sprintf "%+d" (after - before)
      in
      Format.fprintf ppf "  %-14s %8.3f ms  nodes %d%s, channels %d%s@,"
        p.Pass.pass (1000. *. p.Pass.wall_s) p.Pass.nodes_after
        (delta p.Pass.nodes_before p.Pass.nodes_after)
        p.Pass.channels_after
        (delta p.Pass.channels_before p.Pass.channels_after))
    t.timings;
  Format.fprintf ppf "@]"

let pp_diagnostics ppf t =
  match t.diagnostics with
  | [] -> Format.fprintf ppf "diagnostics: none@,"
  | ds ->
    Format.fprintf ppf "@[<v>diagnostics (%d):@," (List.length ds);
    List.iter (fun d -> Format.fprintf ppf "  %a@," Diag.pp d) ds;
    Format.fprintf ppf "@]"

let pp_mapped ppf (name, m) =
  Format.fprintf ppf
    "  %-7s %d PEs, placement %dx%d mesh, %.0f word-hops/frame@," name
    (List.length m.groups) m.placement.Placement.mesh_side
    m.placement.Placement.mesh_side m.placement.Placement.cost

let pp_explain ppf t =
  Format.fprintf ppf "@[<v>%a%a" pp_timings t pp_diagnostics t;
  Format.fprintf ppf "schedulability: %s (%d nodes, predicted %d PEs 1:1)@,"
    (if t.schedulability.Schedulability.schedulable then "schedulable"
     else "NOT schedulable")
    (List.length t.schedulability.Schedulability.nodes)
    t.schedulability.Schedulability.predicted_pe_count;
  (match t.schedulability.Schedulability.bottleneck with
  | Some b ->
    Format.fprintf ppf "  busiest: %s at %.0f%% of one PE@,"
      b.Schedulability.name
      (100. *. b.Schedulability.utilization)
  | None -> ());
  Format.fprintf ppf "mappings:@,";
  pp_mapped ppf ("1:1", t.one_to_one);
  (match t.greedy with
  | Ok m -> pp_mapped ppf ("greedy", m)
  | Error e ->
    Format.fprintf ppf "  %-7s unavailable: %a@," "greedy" Err.pp e);
  (if t.schedule.Static_schedule.truncated then
     Format.fprintf ppf
       "schedule: recorder truncated after %d firings; fully dynamic@,"
       t.schedule.Static_schedule.recorded_firings
   else
     Format.fprintf ppf
       "schedule: %d regions (%d static), %d kernels tabled, coverage \
        bound %.0f%% of %d recorded firings@,"
       (List.length t.schedule.Static_schedule.regions)
       (Static_schedule.static_regions t.schedule)
       (List.length t.schedule.Static_schedule.tables)
       (100. *. Static_schedule.coverage_bound t.schedule t.graph)
       t.schedule.Static_schedule.recorded_firings);
  Format.fprintf ppf "@]"
