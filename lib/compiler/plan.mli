(** The compilation plan — the single artifact of the compiler.

    [Pipeline.compile] drives the staged pass manager ({!Pass}) through
    the paper's whole flow — dataflow analysis, alignment repair,
    buffering, parallelization, schedulability, mapping/multiplexing and
    placement (Section III–V) — and lands everything in one [Plan.t]:
    the elaborated graph, the machine, both mappings with their annealed
    placements, the a-priori schedulability verdict, the structural
    by-products of every transform, the accumulated diagnostics and the
    per-pass timings. Downstream consumers ([bpc simulate], [bpc
    report], {!Bp_obs}) read the plan instead of re-deriving any of it.

    {!run_plan} is the execution entry that consumes a plan (re-exported
    as [Sim.run_plan] by the [Block_parallel] façade); the pre-plan
    [Pipeline.simulate] path is kept and held bit-exact by the
    differential tests. *)

type policy = One_to_one | Greedy
(** The kernel-to-processor mapping policy (Section V): one PE per
    on-chip kernel, or greedy time-multiplexing. *)

val policy_name : policy -> string
(** ["1:1" | "greedy"]. *)

type mapped = {
  groups : Bp_graph.Graph.node_id list list;
      (** Kernels per processor, in processor order. *)
  mapping : Bp_sim.Mapping.t;
  placement : Bp_placement.Placement.placement;
      (** Annealed mesh placement of the mapping's processors. *)
}
(** A mapping policy's realized artifacts. *)

type t = {
  graph : Bp_graph.Graph.t;  (** The elaborated graph (mutated in place). *)
  machine : Bp_machine.Machine.t;
  repairs : Bp_transform.Align.repair list;
  buffers : Bp_transform.Buffering.inserted list;
  decisions : Bp_transform.Parallelize.decision list;
  analysis : Bp_analysis.Dataflow.t;  (** Of the elaborated graph. *)
  schedulability : Bp_transform.Schedulability.t;
      (** The static a-priori argument (Section IV). *)
  one_to_one : mapped;
  greedy : (mapped, Bp_util.Err.t) result;
      (** [Error] when even the merged mapping needs more processors
          than the machine has; compilation itself still succeeds (the
          1:1 path may be viable on a bigger machine) and the overflow
          is recorded as a warning diagnostic. *)
  greedy_groups : Bp_graph.Graph.node_id list list;
      (** The greedy grouping itself, present even on overflow — the
          processor-count query must not depend on the machine bound. *)
  schedule : Bp_sim.Static_schedule.t;
      (** The quasi-static schedule (pass 10): per-kernel periodic firing
          tables and the static-region partition, recovered by the
          untimed recorder. {!run_plan} hands it to the simulator by
          default; [--dump-after schedule] renders it. *)
  diagnostics : Bp_util.Diag.t list;  (** In emission order. *)
  timings : Pass.timing list;  (** In execution order. *)
}

(** {1 Reading the plan} *)

val mapped : t -> policy:policy -> mapped
(** The realized mapping for a policy. For [Greedy] on an overflowed
    machine this raises the recorded {!Bp_util.Err.Resource_exhausted}. *)

val mapping : t -> policy:policy -> Bp_sim.Mapping.t
val placement : t -> policy:policy -> Bp_placement.Placement.placement

val processors_needed : t -> policy:policy -> int
(** Processors the policy wants, regardless of the machine bound. *)

val errors : t -> Bp_util.Diag.t list
(** The error-severity diagnostics (empty on any plan [compile]
    returned; a failed compile never returns a plan). *)

(** {1 Executing the plan} *)

val run_plan :
  ?max_time_s:float ->
  ?max_events:int ->
  ?pool:bool ->
  ?chunk_pool:Bp_image.Pool.t ->
  ?with_placement:bool ->
  ?hop_cycles_per_word:float ->
  ?static:bool ->
  ?observer:
    (time_s:float ->
    proc:int ->
    node:Bp_graph.Graph.node ->
    method_name:string ->
    service_s:float ->
    unit) ->
  ?channel_observer:
    (time_s:float ->
    chan_id:int ->
    node:Bp_graph.Graph.node ->
    proc:int option ->
    event:Bp_sim.Sim.channel_event ->
    depth:int ->
    unit) ->
  ?state_observer:
    (time_s:float ->
    node:Bp_graph.Graph.node ->
    proc:int ->
    state:Bp_sim.Sim.kernel_state ->
    chan:int option ->
    unit) ->
  policy:policy ->
  t ->
  unit ->
  Bp_sim.Sim.result
(** Simulate the plan under the chosen mapping policy — the plan-driven
    twin of {!Bp_sim.Sim.run}, which it parameterizes entirely from the
    plan: graph, machine, and the policy's stored mapping.
    [with_placement] (default [false], matching the paper's Section IV-D
    argument that placement does not affect throughput) additionally
    applies the plan's annealed placement as a NoC delay model with
    [hop_cycles_per_word] (default 0.5) extra write cycles per hop. All
    other options — including the [chunk_pool] lending path of
    docs/PARALLELISM.md — pass through to {!Bp_sim.Sim.run} unchanged.
    [static] (default [true]) supplies the plan's pass-10 schedule to
    the simulator, enabling quasi-static execution when no observer is
    installed; [~static:false] (`bpc simulate --no-static`) forces fully
    event-driven dispatch. Results are bit-identical either way —
    [events_processed] included, elided wakes are counted — except for
    the [static_*] telemetry fields; see {!Bp_sim.Sim.run}. *)

(** {1 Rendering} *)

val pp_summary : Format.formatter -> t -> unit
(** The one-paragraph compile summary (node counts, PEs per policy,
    parallelize decisions). *)

val pp_timings : Format.formatter -> t -> unit
(** The per-pass timing table: wall time and node/channel deltas. *)

val pp_diagnostics : Format.formatter -> t -> unit

val pp_explain : Format.formatter -> t -> unit
(** The [--explain] view: timings, diagnostics, schedulability verdict,
    mapping and placement summary. *)
