module Machine = Bp_machine.Machine
module Schedulability = Bp_transform.Schedulability

type probe = { rate_hz : float; pes : int; fits : bool }

let policy_of_greedy greedy = if greedy then Plan.Greedy else Plan.One_to_one

type result = {
  best_rate_hz : float;
  best_pes : int;
  probes : probe list;
}

let try_rate ~machine ~max_pes ~greedy build rate_hz =
  match
    Bp_util.Err.guard (fun () ->
        let g = build ~rate_hz in
        let compiled = Pipeline.compile ~machine g in
        let pes =
          Plan.processors_needed compiled ~policy:(policy_of_greedy greedy)
        in
        (* The schedulability pass already ran inside [compile]; read the
           plan's verdict instead of re-deriving it. *)
        (pes, compiled.Plan.schedulability.Schedulability.schedulable))
  with
  | Ok (pes, schedulable) ->
    { rate_hz; pes; fits = (schedulable && pes <= max_pes) }
  | Error _ -> { rate_hz; pes = max_int; fits = false }

let search ?(lo_hz = 1.) ?(hi_hz = 1000.) ?(iterations = 12) ?(greedy = true)
    ~machine ~max_pes build =
  if lo_hz <= 0. || hi_hz <= lo_hz then
    Bp_util.Err.invalidf "rate search needs 0 < lo < hi";
  let probes = ref [] in
  let probe rate =
    let p = try_rate ~machine ~max_pes ~greedy build rate in
    probes := p :: !probes;
    p
  in
  let first = probe lo_hz in
  if not first.fits then
    { best_rate_hz = 0.; best_pes = 0; probes = List.rev !probes }
  else begin
    let best = ref first in
    let lo = ref lo_hz and hi = ref hi_hz in
    (* If the top of the window fits, take it outright. *)
    let top = probe hi_hz in
    if top.fits then best := top
    else
      for _ = 1 to iterations do
        let mid = (!lo +. !hi) /. 2. in
        let p = probe mid in
        if p.fits then begin
          best := p;
          lo := mid
        end
        else hi := mid
      done;
    {
      best_rate_hz = !best.rate_hz;
      best_pes = !best.pes;
      probes = List.rev !probes;
    }
  end
