module Machine = Bp_machine.Machine
module Schedulability = Bp_transform.Schedulability

type probe = { rate_hz : float; pes : int; fits : bool }

let policy_of_greedy greedy = if greedy then Plan.Greedy else Plan.One_to_one

type result = {
  best_rate_hz : float;
  best_pes : int;
  probes : probe list;
}

let try_rate ~machine ~max_pes ~greedy build rate_hz =
  match
    Bp_util.Err.guard (fun () ->
        let g = build ~rate_hz in
        let compiled = Pipeline.compile ~machine g in
        let pes =
          Plan.processors_needed compiled ~policy:(policy_of_greedy greedy)
        in
        (* The schedulability pass already ran inside [compile]; read the
           plan's verdict instead of re-deriving it. *)
        (pes, compiled.Plan.schedulability.Schedulability.schedulable))
  with
  | Ok (pes, schedulable) ->
    { rate_hz; pes; fits = (schedulable && pes <= max_pes) }
  | Error _ -> { rate_hz; pes = max_int; fits = false }

(* The speculative frontier: every rate the bisection might probe within
   the next few steps, starting from interval (lo, hi) — the decision
   tree of midpoints, breadth-first, fit-branch first (a feasible search
   walks upward more often than not), truncated at [limit] nodes. Probing
   the frontier in one parallel batch lets the strictly sequential
   bisection consume several pre-computed levels per round while probing
   EXACTLY the rates the serial search would — speculation changes what
   is computed, never what is recorded (docs/PARALLELISM.md). *)
let frontier ~lo ~hi ~limit =
  let q = Queue.create () in
  Queue.add (lo, hi) q;
  let rec collect acc n =
    if n = 0 || Queue.is_empty q then List.rev acc
    else begin
      let a, b = Queue.pop q in
      let mid = (a +. b) /. 2. in
      Queue.add (mid, b) q;
      (* fit branch: lo <- mid *)
      Queue.add (a, mid) q;
      collect (mid :: acc) (n - 1)
    end
  in
  collect [] limit

let search ?(lo_hz = 1.) ?(hi_hz = 1000.) ?(iterations = 12) ?(greedy = true)
    ?pool ~machine ~max_pes build =
  if lo_hz <= 0. || hi_hz <= lo_hz then
    Bp_util.Err.invalidf "rate search needs 0 < lo < hi";
  let slots = match pool with None -> 1 | Some p -> Sweep.domains p in
  (* Memoized pure probes, keyed by exact rate: midpoints are computed by
     the same float arithmetic on both the speculative and the replay
     side, so the keys match bit-for-bit. *)
  let memo : (float, probe) Hashtbl.t = Hashtbl.create 32 in
  let eval_batch rates =
    let fresh =
      List.filter (fun r -> not (Hashtbl.mem memo r))
        (List.sort_uniq compare rates)
    in
    let evaluated =
      match pool with
      | Some p when List.compare_length_with fresh 1 > 0 ->
        Sweep.map p
          (fun _ctx r -> try_rate ~machine ~max_pes ~greedy build r)
          fresh
      | _ -> List.map (try_rate ~machine ~max_pes ~greedy build) fresh
    in
    List.iter2 (fun r pr -> Hashtbl.replace memo r pr) fresh evaluated
  in
  let probes = ref [] in
  (* The canonical probe: exactly the serial bisection's next rate.
     Only canonical probes are recorded; [eval_batch] here is the
     slots = 1 degenerate case (one rate, computed inline). *)
  let probe rate =
    eval_batch [ rate ];
    let p = Hashtbl.find memo rate in
    probes := p :: !probes;
    p
  in
  if slots >= 2 then eval_batch [ lo_hz; hi_hz ];
  let first = probe lo_hz in
  if not first.fits then
    { best_rate_hz = 0.; best_pes = 0; probes = List.rev !probes }
  else begin
    let best = ref first in
    let lo = ref lo_hz and hi = ref hi_hz in
    (* If the top of the window fits, take it outright. *)
    let top = probe hi_hz in
    if top.fits then best := top
    else
      for _ = 1 to iterations do
        let mid = (!lo +. !hi) /. 2. in
        if slots >= 2 && not (Hashtbl.mem memo mid) then
          eval_batch (frontier ~lo:!lo ~hi:!hi ~limit:slots);
        let p = probe mid in
        if p.fits then begin
          best := p;
          lo := mid
        end
        else hi := mid
      done;
    {
      best_rate_hz = !best.rate_hz;
      best_pes = !best.pes;
      probes = List.rev !probes;
    }
  end
