(** The inverse throughput query.

    The paper positions itself against StreamIt (Section VI): StreamIt uses
    a fixed number of processors to reach the highest possible rate, while
    block-parallel compilation finds the minimum number of processors for a
    *given* rate. This module answers StreamIt's question with the
    block-parallel machinery: binary-search over input rates, recompiling
    the application at each probe, until the highest rate whose compiled
    form fits the processor budget (and passes the static schedulability
    check) is found.

    The application is supplied as a builder indexed by rate, since the
    graph must be rebuilt per probe (compilation mutates it). *)

type probe = {
  rate_hz : float;
  pes : int;  (** Processors under the chosen mapping. *)
  fits : bool;
}

type result = {
  best_rate_hz : float;  (** 0.0 when even the lowest probe fails. *)
  best_pes : int;
  probes : probe list;  (** Every rate tried, in probe order. *)
}

val search :
  ?lo_hz:float ->
  ?hi_hz:float ->
  ?iterations:int ->
  ?greedy:bool ->
  ?pool:Sweep.pool ->
  machine:Bp_machine.Machine.t ->
  max_pes:int ->
  (rate_hz:float -> Bp_graph.Graph.t) ->
  result
(** [search ~machine ~max_pes build] binary-searches rates in
    [\[lo_hz, hi_hz\]] (defaults 1–1000 Hz, 12 iterations, greedy mapping).
    A probe fits when compilation succeeds, the static check passes, and
    the mapping needs at most [max_pes] processors. Compilation failures
    ({!Bp_util.Err.Not_schedulable}, {!Bp_util.Err.Resource_exhausted}) are
    treated as non-fitting probes, not errors.

    [pool] shards probe compilations across a {!Sweep} domain pool
    ([bpc rate-search -j N]) by {e speculative bisection}: each round
    batch-evaluates the breadth-first frontier of midpoints the search
    could visit next (up to one per domain) and memoizes them by exact
    rate, then the strictly sequential bisection replays over the memo.
    Speculation changes what is computed, never what is recorded:
    [probes] and the best rate are bit-identical to the serial search
    for every [-j] (docs/PARALLELISM.md §Determinism). The builder runs
    on worker domains, so it must build a fresh, task-local graph —
    which the rebuild-per-probe rule above already requires. *)
