(* Sharded sweeps: the domain pool specialized to per-worker chunk
   pools, plus the canonical compile+simulate task. Contract in
   docs/PARALLELISM.md. *)

module Domain_pool = Bp_util.Domain_pool
module Pool = Bp_image.Pool
module Sim = Bp_sim.Sim

type ctx = { domain : int; chunk_pool : Pool.t }
type pool = Pool.t Domain_pool.t

let create_pool ?(domains = 1) () =
  Domain_pool.create ~domains ~resource:(fun _ -> Pool.create ()) ()

let shutdown = Domain_pool.shutdown

let with_pool ?(domains = 1) f =
  Domain_pool.with_pool ~domains ~resource:(fun _ -> Pool.create ()) f

let domains = Domain_pool.domains

let map p f tasks =
  Domain_pool.map p
    (fun ~domain chunk_pool task -> f { domain; chunk_pool } task)
    tasks

type domain_report = {
  d_domain : int;
  d_tasks : int;
  d_wall_s : float;
  d_steals : int;
  d_pool : Pool.stats;
}

let report p =
  List.mapi
    (fun i ((s : Domain_pool.stats), pl) ->
      {
        d_domain = i;
        d_tasks = s.Domain_pool.tasks;
        d_wall_s = s.Domain_pool.wall_s;
        d_steals = s.Domain_pool.steals;
        d_pool = Pool.stats pl;
      })
    (List.combine (Domain_pool.stats p) (Domain_pool.resources p))

let check_no_live_leaks p =
  List.iter Pool.check_no_live_leaks (Domain_pool.resources p)

(* ---- the canonical sweep task ------------------------------------------ *)

type job = {
  label : string;
  machine : Bp_machine.Machine.t;
  policy : Plan.policy;
  build : unit -> Bp_graph.Graph.t;
}

type outcome = {
  o_label : string;
  o_policy : Plan.policy;
  o_plan : Plan.t;
  o_result : Sim.result;
  o_domain : int;
  o_wall_s : float;
}

let simulate_jobs ?max_time_s ?(static = true) p jobs =
  map p
    (fun ctx job ->
      let t0 = Bp_util.Clock.now_s () in
      let plan = Pipeline.compile ~machine:job.machine (job.build ()) in
      let result =
        Plan.run_plan ?max_time_s ~chunk_pool:ctx.chunk_pool ~static
          ~policy:job.policy plan ()
      in
      {
        o_label = job.label;
        o_policy = job.policy;
        o_plan = plan;
        o_result = result;
        o_domain = ctx.domain;
        o_wall_s = Bp_util.Clock.elapsed_s ~since:t0;
      })
    jobs
