(** Sharded simulation sweeps over a {!Bp_util.Domain_pool}.

    A sweep is a list of independent compile+simulate tasks — one per
    application, per mapping, per rate probe — executed across domains
    and merged back in submission order, so the sweep's outcome is
    bit-exact whatever [-j] was (the contract is docs/PARALLELISM.md).
    This module binds the generic pool to this codebase's resource rule:
    {b each worker domain owns one chunk pool} ({!Bp_image.Pool.t} is
    not domain-safe), created when the worker starts and lent to every
    simulation that worker runs ([Sim.run ~chunk_pool]), so free lists
    stay warm across a sweep without ever crossing a domain.

    Consumers: [bpc sweep -j N], the scaling axis of
    [bench/sim_bench.exe], [Rate_search.search ?pool], and
    [test/test_domains.ml]. *)

type ctx = {
  domain : int;  (** Index of the worker running the task. *)
  chunk_pool : Bp_image.Pool.t;
      (** The worker's own pool. Ownership is pinned to the worker for
          the task's whole duration: lend it to [Sim.run ~chunk_pool],
          or acquire/release scratch chunks directly — but never store
          it past the task or hand it to another domain. *)
}
(** What a task sees of the worker executing it. *)

type pool = Bp_image.Pool.t Bp_util.Domain_pool.t
(** A domain pool whose per-worker resource is a chunk pool. *)

val create_pool : ?domains:int -> unit -> pool
(** [domains] defaults to 1 (serial, inline — the [-j 1] path). *)

val shutdown : pool -> unit
val with_pool : ?domains:int -> (pool -> 'a) -> 'a
val domains : pool -> int

val map : pool -> (ctx -> 'a -> 'b) -> 'a list -> 'b list
(** {!Bp_util.Domain_pool.map} with the worker's chunk pool packaged
    into a {!ctx}. Results in submission order; lowest-index failure
    re-raised; tasks must satisfy the independence requirements of
    docs/PARALLELISM.md. *)

type domain_report = {
  d_domain : int;
  d_tasks : int;
  d_wall_s : float;
  d_steals : int;
  d_pool : Bp_image.Pool.stats;  (** The worker pool's cumulative counters. *)
}

val report : pool -> domain_report list
(** Per-domain execution telemetry, in domain order — the numbers
    behind the [sim.domain.<i>.*] metrics (docs/OBSERVABILITY.md). Call
    between batches. *)

val check_no_live_leaks : pool -> unit
(** {!Bp_image.Pool.check_no_live_leaks} on every worker pool. Only
    meaningful after balanced borrow tasks (acquire-and-release
    scratch); a simulation sweep legitimately skews [live] — sinks
    retain chunks and sources feed in chunks the pool never issued
    (docs/PARALLELISM.md §Pool accounting). *)

(** {1 The canonical sweep task} *)

type job = {
  label : string;
  machine : Bp_machine.Machine.t;
  policy : Plan.policy;
  build : unit -> Bp_graph.Graph.t;
      (** Builds a {e fresh} graph — executed on the worker, so
          everything it creates (nodes, behaviours, sink collectors) is
          task-local. Compilation mutates the graph; never share one
          across jobs. *)
}

type outcome = {
  o_label : string;
  o_policy : Plan.policy;
  o_plan : Plan.t;
  o_result : Bp_sim.Sim.result;
      (** Deterministic across [-j] except [result.pool], which reports
          this run's deltas against the worker's (warm) pool and so
          depends on scheduling — telemetry, not outcome
          (docs/PARALLELISM.md). *)
  o_domain : int;  (** Which worker ran it — telemetry. *)
  o_wall_s : float;  (** Compile+simulate wall seconds — telemetry. *)
}

val simulate_jobs :
  ?max_time_s:float -> ?static:bool -> pool -> job list -> outcome list
(** Compile each job's graph and simulate it under its policy's mapping
    with the worker's chunk pool lent to the run. Outcomes in job
    order, bit-identical for every [-j] AND for [static] on/off —
    [static] (default [true]) executes each run under the plan's
    quasi-static schedule ([bpc sweep --no-static] forces event-driven
    dispatch; only the [static_*] telemetry fields differ). *)
