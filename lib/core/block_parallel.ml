(** Block-parallel programming for real-time embedded applications.

    The façade library: one alias per subsystem, so applications depend on a
    single library and write [Block_parallel.Graph], [Block_parallel.Conv],
    and so on. See the README for a tour and DESIGN.md for how the modules
    map onto the paper.

    {1 Geometry and data} *)

module Size = Bp_geometry.Size
module Step = Bp_geometry.Step
module Offset = Bp_geometry.Offset
module Window = Bp_geometry.Window
module Inset = Bp_geometry.Inset
module Rate = Bp_geometry.Rate
module Image = Bp_image.Image
module Image_ops = Bp_image.Ops
module Pool = Bp_image.Pool
module Token = Bp_token.Token

(** {1 The kernel model} *)

module Port = Bp_kernel.Port
module Method_spec = Bp_kernel.Method_spec
module Behaviour = Bp_kernel.Behaviour
module Item = Bp_kernel.Item
module Kernel = Bp_kernel.Spec

(** {1 The standard kernel library} *)

module Source = Bp_kernels.Source
module Sink = Bp_kernels.Sink
module Conv = Bp_kernels.Conv
module Median = Bp_kernels.Median
module Arith = Bp_kernels.Arith
module Histogram = Bp_kernels.Histogram
module Buffer = Bp_kernels.Buffer
module Split_join = Bp_kernels.Split_join
module Inset_pad = Bp_kernels.Inset_pad
module Bayer = Bp_kernels.Bayer
module Feedback = Bp_kernels.Feedback
module Decimate = Bp_kernels.Decimate
module Upsample = Bp_kernels.Upsample
module Costs = Bp_kernels.Costs

(** {1 Graph, machine, analyses} *)

module Graph = Bp_graph.Graph
module Machine = Bp_machine.Machine
module Dataflow = Bp_analysis.Dataflow
module Stream = Bp_analysis.Stream
module Reuse = Bp_analysis.Reuse

(** {1 Transforms and the compiler} *)

module Buffering = Bp_transform.Buffering
module Align = Bp_transform.Align
module Parallelize = Bp_transform.Parallelize
module Multiplex = Bp_transform.Multiplex
module Schedulability = Bp_transform.Schedulability
module Pass = Bp_compiler.Pass
module Plan = Bp_compiler.Plan
module Pipeline = Bp_compiler.Pipeline
module Rate_search = Bp_compiler.Rate_search
module Sweep = Bp_compiler.Sweep

(** {1 Execution} *)

module Mapping = Bp_sim.Mapping

module Sim = struct
  include Bp_sim.Sim

  (* The layering keeps [Bp_sim] below the compiler, so the plan-driven
     entry lives in {!Bp_compiler.Plan} and is surfaced here, where
     applications expect to find their execution API. *)
  let run_plan = Bp_compiler.Plan.run_plan
end
module Static_schedule = Bp_sim.Static_schedule
module Sim_reference = Bp_sim.Sim_reference
module Ring = Bp_sim.Ring
module Trace = Bp_sim.Trace
module Energy = Bp_sim.Energy
module Placement = Bp_placement.Placement
module Dot = Bp_viz.Dot

(** {1 Observability} *)

module Metrics = Bp_obs.Metrics
module Instrument = Bp_obs.Instrument
module Health = Bp_obs.Health
module Chrome_trace = Bp_obs.Chrome_trace
module Obs_json = Bp_obs.Json

(** {1 Applications} *)

module App = Bp_apps.App
module Apps = struct
  module Image_pipeline = Bp_apps.Image_pipeline
  module Bayer_app = Bp_apps.Bayer_app
  module Histogram_app = Bp_apps.Histogram_app
  module Multi_conv = Bp_apps.Multi_conv
  module Parallel_buffer = Bp_apps.Parallel_buffer
  module Downsample_app = Bp_apps.Downsample_app
  module Edge_app = Bp_apps.Edge_app
  module Motion_app = Bp_apps.Motion_app
  module Resample_app = Bp_apps.Resample_app
  module Feedback_app = Bp_apps.Feedback_app
  module Reuse_variants = Bp_apps.Reuse_variants
  module Suite = Bp_apps.Suite
end

(** {1 The textual language} *)

module Lang = Bp_lang.Lang

(** {1 Utilities} *)

module Err = Bp_util.Err
module Diag = Bp_util.Diag
module Clock = Bp_util.Clock
module Domain_pool = Bp_util.Domain_pool
module Id = Bp_util.Id
module Stats = Bp_util.Stats
module Prng = Bp_util.Prng
module Table = Bp_util.Table
