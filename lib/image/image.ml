open Bp_geometry

type t = { w : int; h : int; data : float array }

let create (s : Size.t) = { w = s.w; h = s.h; data = Array.make (s.w * s.h) 0. }

let init (s : Size.t) f =
  let data =
    Array.init (s.w * s.h) (fun i -> f ~x:(i mod s.w) ~y:(i / s.w))
  in
  { w = s.w; h = s.h; data }

let width t = t.w
let height t = t.h
let size t = Size.v t.w t.h
let unsafe_data t = t.data

let check t x y =
  if x < 0 || y < 0 || x >= t.w || y >= t.h then
    invalid_arg
      (Printf.sprintf "Image: pixel (%d,%d) outside %dx%d" x y t.w t.h)

let get t ~x ~y =
  check t x y;
  Array.unsafe_get t.data ((y * t.w) + x)

let set t ~x ~y v =
  check t x y;
  Array.unsafe_set t.data ((y * t.w) + x) v

let copy t = { t with data = Array.copy t.data }

let sub t ~x ~y (s : Size.t) =
  if x < 0 || y < 0 || x + s.w > t.w || y + s.h > t.h then
    invalid_arg
      (Printf.sprintf "Image.sub: window %dx%d@(%d,%d) escapes %dx%d" s.w s.h
         x y t.w t.h);
  let out = create s in
  for j = 0 to s.h - 1 do
    Array.blit t.data (((y + j) * t.w) + x) out.data (j * s.w) s.w
  done;
  out

let sub_into t ~x ~y ~dst =
  if x < 0 || y < 0 || x + dst.w > t.w || y + dst.h > t.h then
    invalid_arg
      (Printf.sprintf "Image.sub_into: window %dx%d@(%d,%d) escapes %dx%d"
         dst.w dst.h x y t.w t.h);
  for j = 0 to dst.h - 1 do
    Array.blit t.data (((y + j) * t.w) + x) dst.data (j * dst.w) dst.w
  done

let blit ~src ~dst ~x ~y =
  if x < 0 || y < 0 || x + src.w > dst.w || y + src.h > dst.h then
    invalid_arg "Image.blit: source escapes destination";
  for j = 0 to src.h - 1 do
    Array.blit src.data (j * src.w) dst.data (((y + j) * dst.w) + x) src.w
  done

let fill t v = Array.fill t.data 0 (Array.length t.data) v
let map f t = { t with data = Array.map f t.data }

let map_into f ~src ~dst =
  if src.w <> dst.w || src.h <> dst.h then
    invalid_arg "Image.map_into: extent mismatch";
  for i = 0 to Array.length src.data - 1 do
    Array.unsafe_set dst.data i (f (Array.unsafe_get src.data i))
  done

let map2 f a b =
  if a.w <> b.w || a.h <> b.h then invalid_arg "Image.map2: extent mismatch";
  { a with data = Array.map2 f a.data b.data }

let map2_into f a b ~dst =
  if a.w <> b.w || a.h <> b.h || a.w <> dst.w || a.h <> dst.h then
    invalid_arg "Image.map2_into: extent mismatch";
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set dst.data i
      (f (Array.unsafe_get a.data i) (Array.unsafe_get b.data i))
  done

let fold f acc t = Array.fold_left f acc t.data

let iter_pixels f t =
  Array.iteri (fun i v -> f ~x:(i mod t.w) ~y:(i / t.w) v) t.data

let to_scanline_list t = Array.to_list t.data

let of_scanline_list (s : Size.t) pixels =
  let data = Array.of_list pixels in
  if Array.length data <> s.w * s.h then
    invalid_arg "Image.of_scanline_list: wrong number of pixels";
  { w = s.w; h = s.h; data }

let equal ?(eps = 1e-9) a b =
  a.w = b.w && a.h = b.h
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let max_abs_diff a b =
  if a.w <> b.w || a.h <> b.h then
    invalid_arg "Image.max_abs_diff: extent mismatch";
  Array.fold_left max 0.
    (Array.map2 (fun x y -> Float.abs (x -. y)) a.data b.data)

let psnr ?peak reference t =
  if reference.w <> t.w || reference.h <> t.h then
    invalid_arg "Image.psnr: extent mismatch";
  let peak =
    match peak with
    | Some p -> p
    | None ->
      Float.max 1. (Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. reference.data)
  in
  let n = Array.length reference.data in
  let mse = ref 0. in
  for i = 0 to n - 1 do
    let d = reference.data.(i) -. t.data.(i) in
    mse := !mse +. (d *. d)
  done;
  let mse = !mse /. float_of_int n in
  if mse = 0. then infinity
  else 10. *. Float.log10 (peak *. peak /. mse)

let pp ppf t =
  Format.fprintf ppf "image %dx%d [%g .. %g]" t.w t.h
    (get t ~x:0 ~y:0)
    (get t ~x:(t.w - 1) ~y:(t.h - 1))

module Gen = struct
  let ramp (s : Size.t) = init s (fun ~x ~y -> float_of_int (x + (y * s.w)))
  let constant s v = init s (fun ~x:_ ~y:_ -> v)

  let checkerboard s a b =
    init s (fun ~x ~y -> if (x + y) mod 2 = 0 then a else b)

  let gradient (s : Size.t) =
    init s (fun ~x ~y:_ ->
        if s.w = 1 then 0. else float_of_int x /. float_of_int (s.w - 1))

  let noise rng s amp = init s (fun ~x:_ ~y:_ -> Bp_util.Prng.float rng amp)

  let frame_sequence ~seed s n =
    let rng = Bp_util.Prng.create seed in
    List.init n (fun k ->
        let base = float_of_int (k + 1) in
        let jitter = Bp_util.Prng.float rng 1. in
        init s (fun ~x ~y ->
            base +. jitter +. (0.25 *. float_of_int x)
            +. (0.125 *. float_of_int y)))
end
