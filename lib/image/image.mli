(** Two-dimensional float images.

    The functional half of the simulator moves real pixel data so that every
    compiled application can be checked against a reference computation.
    Images are dense row-major float arrays with value semantics on the API
    surface (functions return fresh images unless suffixed [_into]). *)

type t
(** An image with fixed width and height. *)

val create : Bp_geometry.Size.t -> t
(** [create s] is an all-zero image of extent [s]. *)

val init : Bp_geometry.Size.t -> (x:int -> y:int -> float) -> t
(** [init s f] fills each pixel with [f ~x ~y]. *)

val width : t -> int
val height : t -> int
val size : t -> Bp_geometry.Size.t

val unsafe_data : t -> float array
(** The backing scan-line array (row-major, length [width * height]), not a
    copy. Escape hatch for proven-hot loops: without flambda, every
    cross-module {!get}/{!set} call boxes its float, which dominates the
    simulator's allocation profile — indexing the raw array keeps the
    arithmetic unboxed. Callers take on bounds discipline themselves;
    everything else should go through the checked accessors. *)

val get : t -> x:int -> y:int -> float
(** [get img ~x ~y]. Raises [Invalid_argument] out of bounds. *)

val set : t -> x:int -> y:int -> float -> unit
(** In-place pixel update. Raises [Invalid_argument] out of bounds. *)

val copy : t -> t
(** A deep copy. *)

val sub : t -> x:int -> y:int -> Bp_geometry.Size.t -> t
(** [sub img ~x ~y s] extracts the [s]-sized window whose upper-left corner
    is [(x,y)]. Raises [Invalid_argument] when the window escapes the
    image. *)

val sub_into : t -> x:int -> y:int -> dst:t -> unit
(** [sub_into img ~x ~y ~dst] extracts the [size dst]-sized window whose
    upper-left corner is [(x,y)] into [dst], overwriting every pixel of
    [dst] — the in-place counterpart of {!sub}. Raises [Invalid_argument]
    when the window escapes the image. *)

val blit : src:t -> dst:t -> x:int -> y:int -> unit
(** [blit ~src ~dst ~x ~y] writes [src] into [dst] at [(x,y)]. *)

val fill : t -> float -> unit
(** Set every pixel. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination; extents must match ([Invalid_argument]). *)

val map_into : (float -> float) -> src:t -> dst:t -> unit
(** In-place counterpart of {!map}; [src == dst] is allowed. Extents must
    match ([Invalid_argument]). *)

val map2_into : (float -> float -> float) -> t -> t -> dst:t -> unit
(** In-place counterpart of {!map2}; [dst] may alias either input. All
    three extents must match ([Invalid_argument]). *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
(** Scan-line order fold (left-to-right, top-to-bottom). *)

val iter_pixels : (x:int -> y:int -> float -> unit) -> t -> unit
(** Scan-line order iteration. *)

val to_scanline_list : t -> float list
(** All pixels in scan-line order — the order the block-parallel input
    streams them. *)

val of_scanline_list : Bp_geometry.Size.t -> float list -> t
(** Inverse of {!to_scanline_list}. [Invalid_argument] when the list length
    is not the image area. *)

val equal : ?eps:float -> t -> t -> bool
(** [equal a b] with tolerance [eps] (default [1e-9]) per pixel. Extent
    mismatch is [false]. *)

val max_abs_diff : t -> t -> float
(** Largest pixel difference; extents must match. *)

val psnr : ?peak:float -> t -> t -> float
(** Peak signal-to-noise ratio in dB against [peak] (default: the largest
    magnitude in the reference image, min 1.0). [infinity] for identical
    images; extents must match. *)

val pp : Format.formatter -> t -> unit
(** Prints the extent and a few corner pixels (diagnostic only). *)

(** Deterministic synthetic frames used by tests and benchmark workloads. *)
module Gen : sig
  val ramp : Bp_geometry.Size.t -> t
  (** [ramp s] has pixel value [x + y*w] — distinct everywhere, handy for
      tracking data movement. *)

  val constant : Bp_geometry.Size.t -> float -> t

  val checkerboard : Bp_geometry.Size.t -> float -> float -> t
  (** Alternating pixels of the two values. *)

  val gradient : Bp_geometry.Size.t -> t
  (** Horizontal 0..1 gradient. *)

  val noise : Bp_util.Prng.t -> Bp_geometry.Size.t -> float -> t
  (** [noise rng s amp] is uniform noise in [\[0, amp)]. *)

  val frame_sequence : seed:int -> Bp_geometry.Size.t -> int -> t list
  (** [frame_sequence ~seed s n] is [n] distinct deterministic frames — the
      synthetic stand-in for a camera input stream. *)
end
