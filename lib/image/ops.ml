open Bp_geometry

let valid_extent img ~w ~h =
  let iw = Image.width img and ih = Image.height img in
  if iw < w || ih < h then
    invalid_arg
      (Printf.sprintf "Ops: %dx%d filter does not fit in %dx%d image" w h iw
         ih);
  Size.v (iw - w + 1) (ih - h + 1)

let check_dst name dst (expect : Size.t) =
  if Image.width dst <> expect.w || Image.height dst <> expect.h then
    invalid_arg
      (Printf.sprintf "Ops.%s: destination is %dx%d, expected %dx%d" name
         (Image.width dst) (Image.height dst) expect.w expect.h)

let convolve_into img ~kernel ~dst:out =
  let kw = Image.width kernel and kh = Image.height kernel in
  check_dst "convolve_into" out (valid_extent img ~w:kw ~h:kh);
  (* Raw-array loop: this is the simulator's hottest computation, and the
     checked accessors would box two floats per multiply (no flambda). The
     accumulation order matches the original accessor-based loop exactly,
     so results are bit-identical. *)
  let src = Image.unsafe_data img
  and ker = Image.unsafe_data kernel
  and dst = Image.unsafe_data out in
  let iw = Image.width img in
  let ow = Image.width out and oh = Image.height out in
  for oy = 0 to oh - 1 do
    for ox = 0 to ow - 1 do
      let acc = ref 0. in
      for ky = 0 to kh - 1 do
        (* Coefficients are applied flipped, as in the paper's Figure 6
           ([coeff[width-x-1][height-y-1]]). *)
        let src_row = ((oy + ky) * iw) + ox in
        let ker_row = (kh - ky - 1) * kw in
        for kx = 0 to kw - 1 do
          acc :=
            !acc
            +. Array.unsafe_get src (src_row + kx)
               *. Array.unsafe_get ker (ker_row + (kw - kx - 1))
        done
      done;
      Array.unsafe_set dst ((oy * ow) + ox) !acc
    done
  done

let convolve img ~kernel =
  let kw = Image.width kernel and kh = Image.height kernel in
  let out = Image.create (valid_extent img ~w:kw ~h:kh) in
  convolve_into img ~kernel ~dst:out;
  out

let median_into ?scratch img ~w ~h ~dst:out =
  check_dst "median_into" out (valid_extent img ~w ~h);
  let window =
    match scratch with
    | Some a when Array.length a = w * h -> a
    | Some _ -> invalid_arg "Ops.median_into: scratch length must be w*h"
    | None -> Array.make (w * h) 0.
  in
  let src = Image.unsafe_data img and dst = Image.unsafe_data out in
  let iw = Image.width img in
  let ow = Image.width out and oh = Image.height out in
  let n = w * h in
  for oy = 0 to oh - 1 do
    for ox = 0 to ow - 1 do
      let i = ref 0 in
      for ky = 0 to h - 1 do
        let base = ((oy + ky) * iw) + ox in
        for kx = 0 to w - 1 do
          window.(!i) <- Array.unsafe_get src (base + kx);
          incr i
        done
      done;
      (* Insertion sort on the raw floats: [Array.sort Float.compare]
         would box both operands of every comparison. The sorted value
         sequence is the same either way (pixel data carries no NaNs). *)
      for k = 1 to n - 1 do
        let v = window.(k) in
        let j = ref (k - 1) in
        while !j >= 0 && window.(!j) > v do
          window.(!j + 1) <- window.(!j);
          decr j
        done;
        window.(!j + 1) <- v
      done;
      let m =
        if n mod 2 = 1 then window.(n / 2)
        else (window.((n / 2) - 1) +. window.(n / 2)) /. 2.
      in
      Array.unsafe_set dst ((oy * ow) + ox) m
    done
  done

let median img ~w ~h =
  let out = Image.create (valid_extent img ~w ~h) in
  median_into img ~w ~h ~dst:out;
  out

let subtract a b = Image.map2 ( -. ) a b
let subtract_into a b ~dst =
  if Image.width a <> Image.width b || Image.height a <> Image.height b then
    invalid_arg "Ops.subtract_into: extent mismatch";
  check_dst "subtract_into" dst (Image.size a);
  let pa = Image.unsafe_data a
  and pb = Image.unsafe_data b
  and pd = Image.unsafe_data dst in
  for i = 0 to Array.length pd - 1 do
    Array.unsafe_set pd i (Array.unsafe_get pa i -. Array.unsafe_get pb i)
  done
let gain img k = Image.map (fun v -> v *. k) img

let histogram img ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Ops.histogram: bins must be positive";
  if not (hi > lo) then invalid_arg "Ops.histogram: empty range";
  let counts = Array.make bins 0. in
  let width = (hi -. lo) /. float_of_int bins in
  Image.iter_pixels
    (fun ~x:_ ~y:_ v ->
      let b = int_of_float (Float.floor ((v -. lo) /. width)) in
      let b = Bp_util.Stats.clamp ~lo:0 ~hi:(bins - 1) b in
      counts.(b) <- counts.(b) +. 1.)
    img;
  counts

let trim img ~left ~right ~top ~bottom =
  let w = Image.width img - left - right in
  let h = Image.height img - top - bottom in
  if w <= 0 || h <= 0 then invalid_arg "Ops.trim: nothing left";
  Image.sub img ~x:left ~y:top (Size.v w h)

let pad_with img ~left ~right ~top ~bottom pixel_of =
  let w = Image.width img and h = Image.height img in
  let out = Image.create (Size.v (w + left + right) (h + top + bottom)) in
  Image.iter_pixels
    (fun ~x ~y _ ->
      let sx = x - left and sy = y - top in
      Image.set out ~x ~y (pixel_of sx sy))
    out;
  out

let pad_zero img ~left ~right ~top ~bottom =
  let w = Image.width img and h = Image.height img in
  pad_with img ~left ~right ~top ~bottom (fun sx sy ->
      if sx >= 0 && sy >= 0 && sx < w && sy < h then Image.get img ~x:sx ~y:sy
      else 0.)

let pad_mirror img ~left ~right ~top ~bottom =
  let w = Image.width img and h = Image.height img in
  let reflect n lim =
    (* reflect across the edge without repeating the border pixel twice when
       possible; degenerate 1-wide images clamp. *)
    if lim = 1 then 0
    else
      let period = 2 * (lim - 1) in
      let m = ((n mod period) + period) mod period in
      if m < lim then m else period - m
  in
  pad_with img ~left ~right ~top ~bottom (fun sx sy ->
      Image.get img ~x:(reflect sx w) ~y:(reflect sy h))

let downsample_extent img ~fx ~fy =
  if fx <= 0 || fy <= 0 then invalid_arg "Ops.downsample: factors positive";
  let w = (Image.width img + fx - 1) / fx in
  let h = (Image.height img + fy - 1) / fy in
  Size.v w h

let downsample_into img ~fx ~fy ~dst =
  check_dst "downsample_into" dst (downsample_extent img ~fx ~fy);
  let src = Image.unsafe_data img and out = Image.unsafe_data dst in
  let iw = Image.width img in
  let dw = Image.width dst and dh = Image.height dst in
  for y = 0 to dh - 1 do
    let src_row = y * fy * iw in
    for x = 0 to dw - 1 do
      Array.unsafe_set out ((y * dw) + x)
        (Array.unsafe_get src (src_row + (x * fx)))
    done
  done

let downsample img ~fx ~fy =
  if fx <= 0 || fy <= 0 then invalid_arg "Ops.downsample: factors positive";
  let w = (Image.width img + fx - 1) / fx in
  let h = (Image.height img + fy - 1) / fy in
  Image.init (Size.v w h) (fun ~x ~y -> Image.get img ~x:(x * fx) ~y:(y * fy))

let bayer_demosaic raw =
  let w = Image.width raw and h = Image.height raw in
  if w < 3 || h < 3 then invalid_arg "Ops.bayer_demosaic: image too small";
  let out_size = Size.v (w - 2) (h - 2) in
  let red = Image.create out_size
  and green = Image.create out_size
  and blue = Image.create out_size in
  let g = Image.get raw in
  for oy = 0 to h - 3 do
    for ox = 0 to w - 3 do
      let x = ox + 1 and y = oy + 1 in
      let r, gr, b =
        match (x mod 2, y mod 2) with
        | 0, 0 ->
          (* red site *)
          ( g ~x ~y,
            (g ~x:(x - 1) ~y +. g ~x:(x + 1) ~y +. g ~x ~y:(y - 1)
            +. g ~x ~y:(y + 1))
            /. 4.,
            (g ~x:(x - 1) ~y:(y - 1)
            +. g ~x:(x + 1) ~y:(y - 1)
            +. g ~x:(x - 1) ~y:(y + 1)
            +. g ~x:(x + 1) ~y:(y + 1))
            /. 4. )
        | 1, 1 ->
          (* blue site *)
          ( (g ~x:(x - 1) ~y:(y - 1)
            +. g ~x:(x + 1) ~y:(y - 1)
            +. g ~x:(x - 1) ~y:(y + 1)
            +. g ~x:(x + 1) ~y:(y + 1))
            /. 4.,
            (g ~x:(x - 1) ~y +. g ~x:(x + 1) ~y +. g ~x ~y:(y - 1)
            +. g ~x ~y:(y + 1))
            /. 4.,
            g ~x ~y )
        | 1, 0 ->
          (* green site on a red row *)
          ( (g ~x:(x - 1) ~y +. g ~x:(x + 1) ~y) /. 2.,
            g ~x ~y,
            (g ~x ~y:(y - 1) +. g ~x ~y:(y + 1)) /. 2. )
        | _ ->
          (* green site on a blue row *)
          ( (g ~x ~y:(y - 1) +. g ~x ~y:(y + 1)) /. 2.,
            g ~x ~y,
            (g ~x:(x - 1) ~y +. g ~x:(x + 1) ~y) /. 2. )
      in
      Image.set red ~x:ox ~y:oy r;
      Image.set green ~x:ox ~y:oy gr;
      Image.set blue ~x:ox ~y:oy b
    done
  done;
  (red, green, blue)

let box_blur img ~w ~h =
  let k = float_of_int (w * h) in
  let coeffs = Image.Gen.constant (Size.v w h) (1. /. k) in
  convolve img ~kernel:coeffs
