(** Reference (golden) image operations.

    These are straightforward whole-frame implementations of the kernels in
    the standard library. Integration tests compare the pixel output of a
    compiled-and-simulated application against these, which is what makes
    the simulator "functional" and not just a timing model. All windowed
    operations are *valid-region only*: a [k]×[k] filter over [W]×[H]
    produces [(W-k+1)]×[(H-k+1)] — exactly the iteration space the dataflow
    analysis computes. *)

val convolve : Image.t -> kernel:Image.t -> Image.t
(** [convolve img ~kernel] is the valid-region 2-D correlation-style
    convolution used by the paper's kernel (coefficients flipped, as in
    Figure 6). *)

val convolve_into : Image.t -> kernel:Image.t -> dst:Image.t -> unit
(** In-place counterpart of {!convolve}: [dst] must have the valid-region
    extent ([Invalid_argument] otherwise) and is fully overwritten. Used by
    the pooled data plane; bit-identical to the allocating form. *)

val median : Image.t -> w:int -> h:int -> Image.t
(** Valid-region [w]×[h] median filter. *)

val median_into :
  ?scratch:float array -> Image.t -> w:int -> h:int -> dst:Image.t -> unit
(** In-place counterpart of {!median}. [scratch], when given, must have
    length [w*h] and is used as the sort window (lets steady-state callers
    avoid the per-call window allocation). *)

val subtract : Image.t -> Image.t -> Image.t
(** Pointwise difference; extents must match. *)

val subtract_into : Image.t -> Image.t -> dst:Image.t -> unit
(** In-place counterpart of {!subtract}; [dst] may alias either input. *)

val gain : Image.t -> float -> Image.t
(** Pointwise scale. *)

val histogram : Image.t -> bins:int -> lo:float -> hi:float -> float array
(** [histogram img ~bins ~lo ~hi] counts pixels into [bins] equal-width bins
    over [\[lo, hi)]; out-of-range pixels clamp to the end bins, matching the
    kernel's [findBin]. *)

val trim : Image.t -> left:int -> right:int -> top:int -> bottom:int -> Image.t
(** Remove margins (the inset kernel's behaviour). *)

val pad_zero : Image.t -> left:int -> right:int -> top:int -> bottom:int -> Image.t
(** Grow by zero margins (the pad kernel's behaviour). *)

val pad_mirror : Image.t -> left:int -> right:int -> top:int -> bottom:int -> Image.t
(** Grow by mirroring edge rows/columns (the paper's alternative repair). *)

val downsample : Image.t -> fx:int -> fy:int -> Image.t
(** Keep every [fx]-th column and [fy]-th row starting at the origin. *)

val downsample_extent : Image.t -> fx:int -> fy:int -> Bp_geometry.Size.t
(** The extent {!downsample} would produce ([Invalid_argument] on
    non-positive factors) — what a caller must [acquire] for
    {!downsample_into}. *)

val downsample_into : Image.t -> fx:int -> fy:int -> dst:Image.t -> unit
(** In-place counterpart of {!downsample}; [dst] must have
    {!downsample_extent}. *)

val bayer_demosaic : Image.t -> Image.t * Image.t * Image.t
(** [bayer_demosaic raw] is a simple RGGB bilinear demosaic producing the
    valid-region (border trimmed by 1) red, green and blue planes. The input
    raw mosaic is interpreted as R at even-x/even-y, B at odd-x/odd-y, G
    elsewhere. *)

val box_blur : Image.t -> w:int -> h:int -> Image.t
(** Valid-region mean filter (used by the multiple-convolutions test). *)
