open Bp_geometry

(* A shelf is a LIFO stack of idle images that all share one extent. LIFO
   keeps the hottest (cache-warm) buffer on top. Vacated slots are
   overwritten with a shared dummy so a shelf never pins an image the pool
   has already handed back out. *)
type shelf = { mutable items : Image.t array; mutable n : int }

type t = {
  shelves : (int, shelf) Hashtbl.t;
  (* Last shelf touched, memoized: simulator data planes acquire and
     release one extent (the app's chunk size) almost exclusively, so
     this turns the hashtable probe on the hot path into one compare. *)
  mutable last_key : int;
  mutable last_shelf : shelf option;
  mutable hits : int;
  mutable misses : int;
  mutable releases : int;
}

type stats = { hits : int; misses : int; releases : int; live : int }

let dummy = Image.create Size.one

(* Extents are packed into one immediate int so the shelf lookup allocates
   nothing. 2^20 rows is far beyond any frame this simulator moves. *)
let key (s : Size.t) =
  if s.h >= 1 lsl 20 then
    invalid_arg (Printf.sprintf "Pool: image height %d too large" s.h);
  (s.w lsl 20) lor s.h

let create () =
  {
    shelves = Hashtbl.create 16;
    last_key = -1;
    last_shelf = None;
    hits = 0;
    misses = 0;
    releases = 0;
  }

let find_shelf t k =
  if t.last_key = k then t.last_shelf
  else
    match Hashtbl.find_opt t.shelves k with
    | Some _ as found ->
      t.last_key <- k;
      t.last_shelf <- found;
      found
    | None -> None

let acquire t (s : Size.t) =
  match find_shelf t (key s) with
  | Some shelf when shelf.n > 0 ->
    let i = shelf.n - 1 in
    let img = shelf.items.(i) in
    shelf.items.(i) <- dummy;
    shelf.n <- i;
    t.hits <- t.hits + 1;
    (* Zero the recycled buffer so pooled and allocation-naive executions
       are bit-identical: [Image.create] also hands out all-zero pixels. *)
    Image.fill img 0.;
    img
  | _ ->
    t.misses <- t.misses + 1;
    Image.create s

let release t img =
  let k = key (Image.size img) in
  let shelf =
    match find_shelf t k with
    | Some s -> s
    | None ->
      let s = { items = Array.make 8 dummy; n = 0 } in
      Hashtbl.add t.shelves k s;
      t.last_key <- k;
      t.last_shelf <- Some s;
      s
  in
  if shelf.n = Array.length shelf.items then begin
    let grown = Array.make (2 * shelf.n) dummy in
    Array.blit shelf.items 0 grown 0 shelf.n;
    shelf.items <- grown
  end;
  shelf.items.(shelf.n) <- img;
  shelf.n <- shelf.n + 1;
  t.releases <- t.releases + 1

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    releases = t.releases;
    live = t.hits + t.misses - t.releases;
  }

let hit_rate (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let check_no_live_leaks t =
  let s = stats t in
  if s.live <> 0 then
    invalid_arg
      (Printf.sprintf
         "Pool.check_no_live_leaks: %d chunk(s) still live (%d acquired, %d \
          released)"
         s.live (s.hits + s.misses) s.releases)
