(** Size-keyed free-list pool of image chunks.

    The paper's execution model fixes every chunk extent at compile time
    (per-method memory words, Section III), so a steady-state simulation
    cycles through a small set of extents forever. The pool exploits that:
    [release]d images are kept on a per-extent free list and handed back by
    [acquire] instead of allocating, which removes the minor-GC pressure
    that otherwise rate-limits the simulator's data plane.

    Ownership protocol (see docs/PERFORMANCE.md §The data plane): every
    chunk has exactly one owner at any time; acquiring or popping a chunk
    makes you the owner, pushing it onward transfers ownership, and an
    owner that keeps nothing must [release]. Double-release is a protocol
    violation the pool cannot detect — the runtime avoids it structurally
    (move semantics, no sharing).

    Acquired buffers are always all-zero, whether recycled or fresh, so a
    pooled execution is bit-identical to an allocation-naive one. *)

type t
(** A pool. Not domain-safe: one owner domain at a time. A simulation
    run touches its pool from a single domain, and sharded sweeps give
    every worker domain its own pool instance, created on the worker
    and never lent across domains (the ownership rule is normative in
    docs/PARALLELISM.md §Pool ownership). *)

val create : unit -> t
(** An empty pool with zeroed counters. *)

val acquire : t -> Bp_geometry.Size.t -> Image.t
(** [acquire t s] is an all-zero image of extent [s]: a recycled buffer
    when the free list for [s] is non-empty (a {e hit}), freshly allocated
    otherwise (a {e miss}). *)

val release : t -> Image.t -> unit
(** [release t img] returns [img] to the free list for its extent. The
    caller must not touch [img] afterwards. Releasing an image the pool
    never handed out is allowed (it is adopted) but skews [live]. *)

type stats = {
  hits : int;  (** acquires served from a free list *)
  misses : int;  (** acquires that had to allocate *)
  releases : int;  (** chunks returned *)
  live : int;  (** acquires minus releases — chunks currently owned out *)
}

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)], or [0.] before the first acquire. *)

val check_no_live_leaks : t -> unit
(** Debug assertion: raises [Invalid_argument] unless [live = 0], i.e.
    every acquired chunk has been released. Only meaningful in controlled
    tests where nothing legitimately retains chunks (sinks in a real
    simulation do, by design). *)
