open Bp_util

type io = {
  peek : string -> Item.t option;
  pop : string -> Item.t;
  push : string -> Item.t -> unit;
  space : string -> int;
  acquire : Bp_geometry.Size.t -> Bp_image.Image.t;
  release : Bp_image.Image.t -> unit;
  has_input : string -> bool;
}

type fired = { method_name : string; cycles : int }

type t = {
  try_step : io -> fired option;
  starved : (io -> bool) option;
}

let v ?starved try_step = { try_step; starved }

let forward_method_name = "<forward-token>"

type alloc = Bp_geometry.Size.t -> Bp_image.Image.t

type data_run =
  alloc:alloc ->
  (string * Bp_image.Image.t) list ->
  (string * Bp_image.Image.t) list

type token_run =
  alloc:alloc -> Bp_token.Token.t -> (string * Bp_image.Image.t) list

let pop_data io input =
  match io.pop input with
  | Item.Data img -> img
  | Item.Ctl tok ->
    Err.graphf "expected data on %S, found token %s" input
      (Bp_token.Token.to_string tok)

let front_is_data io input =
  match io.peek input with Some (Item.Data _) -> true | _ -> false

let front_token io input =
  match io.peek input with Some (Item.Ctl tok) -> Some tok | _ -> None

(* The helpers below are written as top-level recursions rather than
   List closures on purpose: a closure that captures [io] or a chunk
   list is allocated afresh on every firing, and the firing path is the
   simulator's innermost loop. *)

let rec check_declared name outs = function
  | [] -> ()
  | (out, _) :: rest ->
    if not (List.mem out outs) then
      Err.graphf "method %s wrote undeclared output %S" name out;
    check_declared name outs rest

let rec push_declared io results = function
  | [] -> ()
  | out :: rest ->
    (match List.assoc_opt out results with
    | Some chunk -> io.push out (Item.data chunk)
    | None -> ());
    push_declared io results rest

(* Push the chunks a method body returned, in the method's declared output
   order, validating that the body only wrote declared outputs. *)
let push_results io (m : Method_spec.t) results =
  check_declared m.Method_spec.name m.Method_spec.outputs results;
  push_declared io results m.Method_spec.outputs

(* The fronts of a method's trigger inputs, or None when a queue is empty. *)
let rec fronts_collect io acc = function
  | [] -> Some (List.rev acc)
  | input :: rest -> (
    match io.peek input with
    | None -> None
    | Some item -> fronts_collect io ((input, item) :: acc) rest)

let fronts io inputs = fronts_collect io [] inputs

let all_data items = List.for_all (fun (_, item) -> Item.is_data item) items

let matching_token items =
  match items with
  | [] -> None
  | (_, first) :: rest -> (
    match first with
    | Item.Data _ -> None
    | Item.Ctl tok ->
      let same (_, item) =
        match item with
        | Item.Ctl t -> Bp_token.Token.kind_equal t.kind tok.kind
        | Item.Data _ -> false
      in
      if List.for_all same rest then Some tok else None)

let rec space_ok io need = function
  | [] -> true
  | out :: rest -> io.space out >= need && space_ok io need rest

let rec pop_chunks io = function
  | [] -> []
  | (input, _) :: rest ->
    let chunk = Item.chunk_exn (io.pop input) in
    (input, chunk) :: pop_chunks io rest

let rec phys_mem_result img = function
  | [] -> false
  | (_, r) :: rest -> r == img || phys_mem_result img rest

let rec release_consumed io results = function
  | [] -> ()
  | (_, img) :: rest ->
    if not (phys_mem_result img results) then io.release img;
    release_consumed io results rest

let rec pop_all io = function
  | [] -> ()
  | (input, _) :: rest ->
    ignore (io.pop input);
    pop_all io rest

let rec push_token io tok = function
  | [] -> ()
  | out :: rest ->
    io.push out (Item.ctl tok);
    push_token io tok rest

(* A data method with its trigger-input list and success value resolved
   once at kernel construction (both would otherwise be rebuilt — and the
   [Some fired] allocated — on every firing). *)
type prepared = {
  pm : Method_spec.t;
  pm_inputs : string list;
  pm_fired : fired option;
}

let iteration_kernel ?(token_forward_cycles = 2) ~methods ~run
    ?(token_run = fun _ ~alloc:_ _ -> []) () =
  let interned =
    List.map
      (fun (m : Method_spec.t) ->
        ( m,
          Some { method_name = m.Method_spec.name; cycles = m.Method_spec.cycles }
        ))
      methods
  in
  let fired_of m = List.assq m interned in
  let data_methods =
    List.filter_map
      (fun (m : Method_spec.t) ->
        match m.Method_spec.trigger with
        | Method_spec.On_data _ ->
          Some
            {
              pm = m;
              pm_inputs = Method_spec.trigger_inputs m;
              pm_fired = fired_of m;
            }
        | Method_spec.On_token _ -> None)
      methods
  in
  let forward_fired =
    Some { method_name = forward_method_name; cycles = token_forward_cycles }
  in
  let token_handler inputs kind =
    List.find_opt
      (fun (m : Method_spec.t) ->
        match m.Method_spec.trigger with
        | Method_spec.On_token (input, k) ->
          List.mem input inputs && Bp_token.Token.kind_equal k kind
        | Method_spec.On_data _ -> false)
      methods
  in
  let try_data_method io (p : prepared) items =
    if not (space_ok io 1 p.pm.Method_spec.outputs) then None
    else begin
      let chunks = pop_chunks io items in
      let results = run p.pm.Method_spec.name ~alloc:io.acquire chunks in
      push_results io p.pm results;
      (* Popped chunks the body did not forward onward are dead: return
         them to the pool. The physical-equality check keeps pass-through
         bodies (decimate, token-tagged forwards) from releasing a chunk
         whose ownership they just transferred by pushing it. *)
      release_consumed io results chunks;
      p.pm_fired
    end
  in
  let try_token io (p : prepared) items (tok : Bp_token.Token.t) =
    match token_handler p.pm_inputs tok.kind with
    | Some h ->
      (* A handler may emit one chunk per output plus the forwarded token. *)
      if not (space_ok io 2 h.Method_spec.outputs) then None
      else begin
        pop_all io items;
        push_results io h (token_run h.Method_spec.name ~alloc:io.acquire tok);
        if h.Method_spec.forward_token then
          push_token io tok h.Method_spec.outputs;
        fired_of h
      end
    | None ->
      if not (space_ok io 1 p.pm.Method_spec.outputs) then None
      else begin
        pop_all io items;
        push_token io tok p.pm.Method_spec.outputs;
        forward_fired
      end
  in
  let rec attempt io = function
    | [] -> None
    | p :: rest -> (
      match fronts io p.pm_inputs with
      | None -> attempt io rest
      | Some items -> (
        if all_data items then
          match try_data_method io p items with
          | Some _ as f -> f
          | None -> attempt io rest
        else
          match matching_token items with
          | Some tok -> (
            match try_token io p items tok with
            | Some _ as f -> f
            | None -> attempt io rest)
          | None ->
            (* Mixed fronts: wait for the streams to re-align. *)
            attempt io rest))
  in
  let try_step io = attempt io data_methods in
  (* An iteration kernel fires only off its queue fronts: every firing —
     data, token dispatch, or token forward — starts from a method whose
     trigger inputs are all non-empty. So when each data method is missing
     at least one trigger front, [try_step] provably declines without being
     called. This is the exact decline oracle the static executor uses to
     skip attempts and elide processor wake events (docs/PERFORMANCE.md
     §Quasi-static execution). *)
  let rec any_method_armed io = function
    | [] -> false
    | p :: rest ->
      let rec all_present = function
        | [] -> true
        | input :: more -> io.has_input input && all_present more
      in
      all_present p.pm_inputs || any_method_armed io rest
  in
  let starved io = not (any_method_armed io data_methods) in
  { try_step; starved = Some starved }
