open Bp_util

type io = {
  peek : string -> Item.t option;
  pop : string -> Item.t;
  push : string -> Item.t -> unit;
  space : string -> int;
  acquire : Bp_geometry.Size.t -> Bp_image.Image.t;
  release : Bp_image.Image.t -> unit;
  has_input : string -> bool;
}

type fired = { method_name : string; cycles : int }

(* The slot-indexed fast path: ring handles preresolved to port ordinals
   (declaration order in the spec) so a tabled firing touches no string
   and allocates no closure. Built once per node by the engine. *)
type ports = {
  ix_peek : int -> Item.t;
  ix_pop : int -> Item.t;
  ix_push : int -> Item.t -> unit;
  ix_space : int -> int;
  ix_has : int -> bool;
  ix_acquire : Bp_geometry.Size.t -> Bp_image.Image.t;
  ix_release : Bp_image.Image.t -> unit;
}

type indexed = {
  op_of : method_name:string -> pops:int array -> pushes:int array -> int;
  space_need : int -> int;
  space_outs : int -> int array;
  fire_indexed : ports -> int -> fired option;
}

type t = {
  try_step : io -> fired option;
  starved : (io -> bool) option;
  indexed : indexed option;
}

let v ?starved ?indexed try_step = { try_step; starved; indexed }

let forward_method_name = "<forward-token>"

type alloc = Bp_geometry.Size.t -> Bp_image.Image.t

type indexed_run =
  alloc:alloc ->
  inputs:Bp_image.Image.t array ->
  outputs:Bp_image.Image.t array ->
  unit

(* Sentinel filling the scratch arrays between firings: a body that leaves
   an output slot physically equal to [no_image] produced nothing there.
   Never pushed, never released. *)
let no_image = Bp_image.Image.create Bp_geometry.Size.one

type data_run =
  alloc:alloc ->
  (string * Bp_image.Image.t) list ->
  (string * Bp_image.Image.t) list

type token_run =
  alloc:alloc -> Bp_token.Token.t -> (string * Bp_image.Image.t) list

let pop_data io input =
  match io.pop input with
  | Item.Data img -> img
  | Item.Ctl tok ->
    Err.graphf "expected data on %S, found token %s" input
      (Bp_token.Token.to_string tok)

let front_is_data io input =
  match io.peek input with Some (Item.Data _) -> true | _ -> false

let front_token io input =
  match io.peek input with Some (Item.Ctl tok) -> Some tok | _ -> None

(* The helpers below are written as top-level recursions rather than
   List closures on purpose: a closure that captures [io] or a chunk
   list is allocated afresh on every firing, and the firing path is the
   simulator's innermost loop. *)

let rec check_declared name outs = function
  | [] -> ()
  | (out, _) :: rest ->
    if not (List.mem out outs) then
      Err.graphf "method %s wrote undeclared output %S" name out;
    check_declared name outs rest

let rec push_declared io results = function
  | [] -> ()
  | out :: rest ->
    (match List.assoc_opt out results with
    | Some chunk -> io.push out (Item.data chunk)
    | None -> ());
    push_declared io results rest

(* Push the chunks a method body returned, in the method's declared output
   order, validating that the body only wrote declared outputs. *)
let push_results io (m : Method_spec.t) results =
  check_declared m.Method_spec.name m.Method_spec.outputs results;
  push_declared io results m.Method_spec.outputs

(* The fronts of a method's trigger inputs, or None when a queue is empty. *)
let rec fronts_collect io acc = function
  | [] -> Some (List.rev acc)
  | input :: rest -> (
    match io.peek input with
    | None -> None
    | Some item -> fronts_collect io ((input, item) :: acc) rest)

let fronts io inputs = fronts_collect io [] inputs

let all_data items = List.for_all (fun (_, item) -> Item.is_data item) items

let matching_token items =
  match items with
  | [] -> None
  | (_, first) :: rest -> (
    match first with
    | Item.Data _ -> None
    | Item.Ctl tok ->
      let same (_, item) =
        match item with
        | Item.Ctl t -> Bp_token.Token.kind_equal t.kind tok.kind
        | Item.Data _ -> false
      in
      if List.for_all same rest then Some tok else None)

let rec space_ok io need = function
  | [] -> true
  | out :: rest -> io.space out >= need && space_ok io need rest

let rec pop_chunks io = function
  | [] -> []
  | (input, _) :: rest ->
    let chunk = Item.chunk_exn (io.pop input) in
    (input, chunk) :: pop_chunks io rest

let rec phys_mem_result img = function
  | [] -> false
  | (_, r) :: rest -> r == img || phys_mem_result img rest

let rec release_consumed io results = function
  | [] -> ()
  | (_, img) :: rest ->
    if not (phys_mem_result img results) then io.release img;
    release_consumed io results rest

let rec pop_all io = function
  | [] -> ()
  | (input, _) :: rest ->
    ignore (io.pop input);
    pop_all io rest

let rec push_token io tok = function
  | [] -> ()
  | out :: rest ->
    io.push out (Item.ctl tok);
    push_token io tok rest

(* A data method with its trigger-input list, success value, and (indexed
   kernels) body and scratch arrays resolved once at kernel construction
   (all would otherwise be rebuilt — and the [Some fired] allocated — on
   every firing). *)
type prepared = {
  pm : Method_spec.t;
  pm_inputs : string list;
  pm_fired : fired option;
  pm_body : indexed_run option;  (* resolved [run_indexed] body *)
  pm_in_scratch : Bp_image.Image.t array;  (* one slot per trigger input *)
  pm_out_scratch : Bp_image.Image.t array;  (* one slot per declared output *)
}

(* Whether [img] occurs physically in [arr] — the pass-through test of
   {!release_consumed}, on scratch arrays. Top-level recursion: no
   per-firing closure. *)
let rec phys_mem_scratch img (arr : Bp_image.Image.t array) j =
  j < Array.length arr && (arr.(j) == img || phys_mem_scratch img arr (j + 1))

let ordinal_of what names name =
  let rec go i = function
    | [] -> Err.graphf "indexed kernel: unknown %s port %S" what name
    | x :: rest -> if String.equal x name then i else go (i + 1) rest
  in
  go 0 names

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let int_array_equal (a : int array) b = a = b

let iteration_kernel ?(token_forward_cycles = 2) ~methods ?run ?port_order
    ?run_indexed ?(token_run = fun _ ~alloc:_ _ -> []) () =
  (match (run, run_indexed) with
  | None, None ->
    Err.invalidf "iteration_kernel: neither run nor run_indexed given"
  | _ -> ());
  (match (run_indexed, port_order) with
  | Some _, None ->
    Err.invalidf "iteration_kernel: run_indexed requires port_order"
  | _ -> ());
  let interned =
    List.map
      (fun (m : Method_spec.t) ->
        ( m,
          Some { method_name = m.Method_spec.name; cycles = m.Method_spec.cycles }
        ))
      methods
  in
  let fired_of m = List.assq m interned in
  let data_methods =
    List.filter_map
      (fun (m : Method_spec.t) ->
        match m.Method_spec.trigger with
        | Method_spec.On_data inputs ->
          Some
            {
              pm = m;
              pm_inputs = inputs;
              pm_fired = fired_of m;
              pm_body =
                Option.map (fun ri -> ri m.Method_spec.name) run_indexed;
              pm_in_scratch =
                Array.make (List.length inputs) no_image;
              pm_out_scratch =
                Array.make (List.length m.Method_spec.outputs) no_image;
            }
        | Method_spec.On_token _ -> None)
      methods
  in
  let forward_fired =
    Some { method_name = forward_method_name; cycles = token_forward_cycles }
  in
  let token_handler inputs kind =
    List.find_opt
      (fun (m : Method_spec.t) ->
        match m.Method_spec.trigger with
        | Method_spec.On_token (input, k) ->
          List.mem input inputs && Bp_token.Token.kind_equal k kind
        | Method_spec.On_data _ -> false)
      methods
  in
  let try_data_method io (p : prepared) items =
    if not (space_ok io 1 p.pm.Method_spec.outputs) then None
    else begin
      match p.pm_body with
      | None ->
        let run =
          match run with
          | Some r -> r
          | None ->
            Err.graphf "method %s has no body" p.pm.Method_spec.name
        in
        let chunks = pop_chunks io items in
        let results = run p.pm.Method_spec.name ~alloc:io.acquire chunks in
        push_results io p.pm results;
        (* Popped chunks the body did not forward onward are dead: return
           them to the pool. The physical-equality check keeps pass-through
           bodies (decimate, token-tagged forwards) from releasing a chunk
           whose ownership they just transferred by pushing it. *)
        release_consumed io results chunks;
        p.pm_fired
      | Some body ->
        let ins = p.pm_in_scratch and outs = p.pm_out_scratch in
        let rec fill i = function
          | [] -> ()
          | (input, _) :: rest ->
            ins.(i) <- Item.chunk_exn (io.pop input);
            fill (i + 1) rest
        in
        fill 0 items;
        body ~alloc:io.acquire ~inputs:ins ~outputs:outs;
        let rec push j = function
          | [] -> ()
          | out :: rest ->
            if outs.(j) != no_image then io.push out (Item.data outs.(j));
            push (j + 1) rest
        in
        push 0 p.pm.Method_spec.outputs;
        for i = 0 to Array.length ins - 1 do
          let img = ins.(i) in
          if not (phys_mem_scratch img outs 0) then io.release img;
          ins.(i) <- no_image
        done;
        for j = 0 to Array.length outs - 1 do
          outs.(j) <- no_image
        done;
        p.pm_fired
    end
  in
  let try_token io (p : prepared) items (tok : Bp_token.Token.t) =
    match token_handler p.pm_inputs tok.kind with
    | Some h ->
      (* A handler may emit one chunk per output plus the forwarded token. *)
      if not (space_ok io 2 h.Method_spec.outputs) then None
      else begin
        pop_all io items;
        push_results io h (token_run h.Method_spec.name ~alloc:io.acquire tok);
        if h.Method_spec.forward_token then
          push_token io tok h.Method_spec.outputs;
        fired_of h
      end
    | None ->
      if not (space_ok io 1 p.pm.Method_spec.outputs) then None
      else begin
        pop_all io items;
        push_token io tok p.pm.Method_spec.outputs;
        forward_fired
      end
  in
  let rec attempt io = function
    | [] -> None
    | p :: rest -> (
      match fronts io p.pm_inputs with
      | None -> attempt io rest
      | Some items -> (
        if all_data items then
          match try_data_method io p items with
          | Some _ as f -> f
          | None -> attempt io rest
        else
          match matching_token items with
          | Some tok -> (
            match try_token io p items tok with
            | Some _ as f -> f
            | None -> attempt io rest)
          | None ->
            (* Mixed fronts: wait for the streams to re-align. *)
            attempt io rest))
  in
  let try_step io = attempt io data_methods in
  (* An iteration kernel fires only off its queue fronts: every firing —
     data, token dispatch, or token forward — starts from a method whose
     trigger inputs are all non-empty. So when each data method is missing
     at least one trigger front, [try_step] provably declines without being
     called. This is the exact decline oracle the static executor uses to
     skip attempts and elide processor wake events (docs/PERFORMANCE.md
     §Quasi-static execution). *)
  let rec any_method_armed io = function
    | [] -> false
    | p :: rest ->
      let rec all_present = function
        | [] -> true
        | input :: more -> io.has_input input && all_present more
      in
      all_present p.pm_inputs || any_method_armed io rest
  in
  let starved io = not (any_method_armed io data_methods) in
  (* Slot-indexed ops, available when the kernel has exactly one data
     method (a node with two or more is a reactive merge and is never
     statically scheduled — see Static_schedule.multi_data_methods — and
     the single-method shape is what makes the engine's front/space guard
     equivalent to the generic attempt): op 0 fires the data method, op 1
     forwards an unhandled control token. *)
  let indexed =
    match port_order with
    | None -> None
    | Some (in_names, out_names) -> (
      match data_methods with
      | [ ({ pm_body = Some body; _ } as p) ] ->
        let trig =
          Array.of_list (List.map (ordinal_of "input" in_names) p.pm_inputs)
        in
        let trig_sorted = sorted_copy trig in
        let out_ords =
          Array.of_list
            (List.map (ordinal_of "output" out_names)
               p.pm.Method_spec.outputs)
        in
        let op_of ~method_name ~pops ~pushes:_ =
          if String.equal method_name p.pm.Method_spec.name then
            if int_array_equal pops trig then 0 else -1
          else if String.equal method_name forward_method_name then
            if int_array_equal (sorted_copy pops) trig_sorted then 1 else -1
          else -1
        in
        let space_need _ = 1 in
        let space_outs _ = out_ords in
        let fire_indexed ports op =
          if op = 0 then begin
            let ins = p.pm_in_scratch and outs = p.pm_out_scratch in
            for i = 0 to Array.length trig - 1 do
              ins.(i) <- Item.chunk_exn (ports.ix_pop trig.(i))
            done;
            body ~alloc:ports.ix_acquire ~inputs:ins ~outputs:outs;
            for j = 0 to Array.length out_ords - 1 do
              if outs.(j) != no_image then
                ports.ix_push out_ords.(j) (Item.data outs.(j))
            done;
            for i = 0 to Array.length ins - 1 do
              let img = ins.(i) in
              if not (phys_mem_scratch img outs 0) then ports.ix_release img;
              ins.(i) <- no_image
            done;
            for j = 0 to Array.length outs - 1 do
              outs.(j) <- no_image
            done;
            p.pm_fired
          end
          else begin
            (* Forward: pop the matching control token from every trigger
               input, re-emit it on the declared outputs — the indexed
               twin of the generic no-handler token path. *)
            let tok =
              match ports.ix_pop trig.(0) with
              | Item.Ctl tok -> tok
              | Item.Data _ ->
                Err.graphf "indexed forward on %s: data at front"
                  p.pm.Method_spec.name
            in
            for i = 1 to Array.length trig - 1 do
              ignore (ports.ix_pop trig.(i))
            done;
            for j = 0 to Array.length out_ords - 1 do
              ports.ix_push out_ords.(j) (Item.ctl tok)
            done;
            forward_fired
          end
        in
        Some { op_of; space_need; space_outs; fire_indexed }
      | _ -> None)
  in
  { try_step; starved = Some starved; indexed }
