(** Kernel runtime behaviours.

    A behaviour is the executable half of a kernel: a [try_step] function
    the simulator calls when the kernel's processor is free. One step either
    fires one method (consuming input items, producing output items, and
    reporting the cycles spent) or reports that the kernel cannot progress.

    The module also provides {!iteration_kernel}, the generic wrapper for
    ordinary per-iteration kernels (convolution, subtract, histogram, ...).
    It implements the paper's control-token semantics:

    - a data method fires when every trigger input has a data chunk at the
      front of its queue;
    - when every trigger input of a method instead has the *same kind* of
      control token at the front, the token is consumed once from each and
      either dispatched to a registered [On_token] method (the histogram's
      [finishCount]) or automatically forwarded to the method's outputs
      (Section II-C: kernels only pay attention to the tokens they care
      about);
    - mixed fronts (data on one input, token on another) block until the
      streams re-align, which the compiler's alignment pass guarantees will
      happen. *)

type io = {
  peek : string -> Item.t option;
      (** Front of an input queue, without consuming. *)
  pop : string -> Item.t;
      (** Consume the front of an input queue. Raises if empty. *)
  push : string -> Item.t -> unit;
      (** Append to an output (all fan-out channels). Caller must have
          checked {!field-space}. *)
  space : string -> int;
      (** Free item slots on an output — the minimum across its fan-out
          channels. *)
  acquire : Bp_geometry.Size.t -> Bp_image.Image.t;
      (** An all-zero chunk of the given extent, recycled from the engine's
          pool when one is idle. The caller owns it: push it onward or
          {!field-release} it. *)
  release : Bp_image.Image.t -> unit;
      (** Return a chunk whose ownership ended here (popped and not
          forwarded, or acquired and discarded) to the engine's pool. The
          allocation-naive reference engine wires this to [ignore]. *)
  has_input : string -> bool;
      (** Whether an input queue has a front item — [peek <> None] without
          the option allocation. The static executor's decline oracles call
          this on every skipped examination, so it must stay free of
          per-call allocation. *)
}

type fired = { method_name : string; cycles : int }
(** Accounting result of a successful step. Words moved are counted by the
    simulator inside [pop]/[push]. *)

type ports = {
  ix_peek : int -> Item.t;  (** Front of input ordinal [i]. Raises if empty. *)
  ix_pop : int -> Item.t;  (** Consume the front of input ordinal [i]. *)
  ix_push : int -> Item.t -> unit;
      (** Append to output ordinal [j] (all fan-out channels). *)
  ix_space : int -> int;  (** Free slots on output ordinal [j] (min fan-out). *)
  ix_has : int -> bool;  (** Input ordinal [i] has a front item. *)
  ix_acquire : Bp_geometry.Size.t -> Bp_image.Image.t;
  ix_release : Bp_image.Image.t -> unit;
}
(** The slot-indexed twin of {!io}: ring handles preresolved to the
    kernel's port ordinals (position in the spec's declaration order, as
    reported by {!Spec.input_ordinal}/{!Spec.output_ordinal}). The engine
    builds one [ports] per node at setup; a tabled firing dispatched
    through it performs zero name hashing and allocates no closure. Same
    ownership and accounting contract as {!io}. *)

type indexed = {
  op_of : method_name:string -> pops:int array -> pushes:int array -> int;
      (** Resolve a firing-table entry (method name, pop input ordinals in
          pop order, push output ordinals in push order) to a behaviour op
          code, or [-1] when the entry cannot take the indexed path (the
          engine then falls back to the generic [try_step]). *)
  space_need : int -> int;
      (** Free slots the generic path demands on each checked output
          before firing op — the engine reproduces the check exactly. *)
  space_outs : int -> int array;
      (** Output ordinals the generic path space-checks before firing op.
          May be [[||]] for ops that re-check space themselves inside
          {!field-fire_indexed}; such ops are never batch-armed. *)
  fire_indexed : ports -> int -> fired option;
      (** Execute one firing of op. MUST be mutation-free when returning
          [None] (the engine falls back to the generic path for that
          firing). The contract mirroring [try_step]: given that the
          engine has verified the entry's pop fronts (presence and item
          kind) and the [space_outs]/[space_need] space condition,
          [fire_indexed] must fire exactly the firing the generic
          [try_step] would, or decline with [None]; any private-state
          precondition the generic path consults must be re-checked
          here. *)
}
(** The closure-free fast path a behaviour may expose for quasi-static
    execution (docs/PERFORMANCE.md §"Quasi-static execution"). Op codes
    are private to the behaviour; the engine obtains them through
    [op_of] when it resolves a node's firing table. *)

type t = {
  try_step : io -> fired option;
  starved : (io -> bool) option;
      (** Exact decline oracle. When present, [starved io = true] MUST
          imply that [try_step io] would return [None] without mutating
          anything — from the behaviour's *current* private state and the
          current channel fronts. It may conservatively return [false].
          The oracle itself must not mutate state and should not allocate.
          The simulator's quasi-static executor uses it to (a) skip
          provably-declining attempts and (b) elide the processor-free
          wake event after a firing whose processor is provably starved —
          both exact, never approximations (docs/PERFORMANCE.md). [None]
          means "no oracle": the kernel is always re-attempted. *)
  indexed : indexed option;
      (** Slot-indexed fast path; [None] keeps every firing on the
          generic string-keyed path (always correct, merely slower). *)
}

val v :
  ?starved:(io -> bool) -> ?indexed:indexed -> (io -> fired option) -> t
(** Build a behaviour from a [try_step] and optional decline oracle and
    indexed fast path. Hand-rolled kernels with private firing state (the
    buffer's pending window, the padder's margin cursor) implement
    [starved] natively; {!iteration_kernel} derives one automatically
    from its method triggers. *)

val forward_method_name : string
(** The pseudo-method name reported when a step merely forwarded an
    unhandled control token. *)

type alloc = Bp_geometry.Size.t -> Bp_image.Image.t
(** How a method body obtains output chunks: wired to {!field-acquire} by
    {!iteration_kernel}, so steady-state firings recycle instead of
    allocating. Bodies must treat the result as all-zero scratch they now
    own. *)

type data_run =
  alloc:alloc ->
  (string * Bp_image.Image.t) list ->
  (string * Bp_image.Image.t) list
(** A data method body: consumed chunks keyed by input name, in trigger
    order, to produced chunks keyed by output name (at most one per output;
    outputs may be omitted). Ownership contract: every returned chunk is
    transferred to the runtime; every input chunk not returned (by physical
    identity) is released back to the pool after the body runs — so a body
    must not stash an input image in its state (copy or blit it instead),
    and must obtain fresh outputs from [alloc], never from a captured
    cache. *)

type token_run =
  alloc:alloc -> Bp_token.Token.t -> (string * Bp_image.Image.t) list
(** A token method body (e.g. emit the finished histogram on EOF). Same
    ownership contract for returned chunks as {!data_run}. *)

type indexed_run =
  alloc:alloc ->
  inputs:Bp_image.Image.t array ->
  outputs:Bp_image.Image.t array ->
  unit
(** A slot-indexed data method body: [inputs] holds the consumed chunks in
    trigger-declaration order; the body stores at most one produced chunk
    per declared output into [outputs] (same declaration order), leaving
    {!no_image} in slots it does not produce. Both arrays are preallocated
    scratch owned by the wrapper — a body must not retain them. Ownership
    of chunks is as in {!data_run}: inputs not stored into [outputs] (by
    physical identity) are released after the body runs. *)

val no_image : Bp_image.Image.t
(** Sentinel filling {!indexed_run} scratch slots: physical equality with
    it means "no chunk here". Never pushed, never released. *)

val iteration_kernel :
  ?token_forward_cycles:int ->
  methods:Method_spec.t list ->
  ?run:(string -> data_run) ->
  ?port_order:string list * string list ->
  ?run_indexed:(string -> indexed_run) ->
  ?token_run:(string -> token_run) ->
  unit ->
  t
(** [iteration_kernel ~methods ~run ()] builds the standard wrapper.
    [run m] is invoked for [On_data] method [m]; [token_run m] for
    [On_token] method [m] (defaults to producing nothing).
    [token_forward_cycles] (default 2) is the cost of auto-forwarding an
    unhandled token. State is whatever the [run] closures capture — callers
    allocate fresh state per behaviour instance.

    [run_indexed m] supplies the array-based body for [On_data] method [m]
    instead of (or in addition to) [run]; it requires [port_order], the
    kernel's input and output port names in spec declaration order, and is
    resolved once per method at construction. With it the wrapper both
    (a) runs the generic path through preallocated scratch arrays — no
    per-firing assoc lists — and (b) exposes the {!indexed} fast path when
    the kernel has exactly one data method. At least one of [run] /
    [run_indexed] must be given; methods lacking a body fail on first
    firing. *)

val pop_data : io -> string -> Bp_image.Image.t
(** Helper for custom behaviours: pop and assert a data chunk. *)

val front_is_data : io -> string -> bool
(** True when the input has a data chunk at its front. *)

val front_token : io -> string -> Bp_token.Token.t option
(** The token at the front of the input, if any. *)
