open Bp_util

type role =
  | Source
  | Const_source
  | Sink
  | Compute
  | Buffer
  | Split
  | Join
  | Inset
  | Pad
  | Replicate

type t = {
  class_name : string;
  role : role;
  inputs : Port.t list;
  outputs : Port.t list;
  methods : Method_spec.t list;
  state_words : int;
  token_budgets : Bp_token.Token.Bound.budget list;
  parallelization : parallelization;
  emission_burst : int;
  make_behaviour : unit -> Behaviour.t;
}

and parallelization =
  | Data_parallel
  | Serial
  | Custom of (replica:int -> ways:int -> t)

let check_distinct what names =
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    Err.graphf "duplicate %s names" what

let port_names ports = List.map (fun p -> p.Port.name) ports

let validate t =
  check_distinct "input port" (port_names t.inputs);
  check_distinct "output port" (port_names t.outputs);
  check_distinct "method"
    (List.map (fun m -> m.Method_spec.name) t.methods);
  let in_names = port_names t.inputs and out_names = port_names t.outputs in
  let check_in m i =
    if not (List.mem i in_names) then
      Err.graphf "kernel %s method %s: unknown input %S" t.class_name
        m.Method_spec.name i
  in
  let check_out m o =
    if not (List.mem o out_names) then
      Err.graphf "kernel %s method %s: unknown output %S" t.class_name
        m.Method_spec.name o
  in
  List.iter
    (fun m ->
      List.iter (check_in m) (Method_spec.trigger_inputs m);
      List.iter (check_out m) m.Method_spec.outputs)
    t.methods;
  (* Data-method triggers must be disjoint, and every input must be drained
     by some data method (sources have no inputs; custom roles are exempt
     because their behaviours poll explicitly). *)
  if t.role = Compute then begin
    let data_triggers =
      List.filter_map
        (fun m ->
          match m.Method_spec.trigger with
          | Method_spec.On_data inputs -> Some inputs
          | Method_spec.On_token _ -> None)
        t.methods
    in
    let all = List.concat data_triggers in
    check_distinct "data-method trigger input" all;
    List.iter
      (fun i ->
        if not (List.mem i all) then
          Err.graphf
            "kernel %s: input %S is not consumed by any data method"
            t.class_name i)
      in_names
  end;
  t

let v ?(role = Compute) ?(state_words = 0) ?(token_budgets = [])
    ?(parallelization = Data_parallel) ?(emission_burst = 1) ~class_name
    ~inputs ~outputs ~methods ~make_behaviour () =
  if state_words < 0 then Err.invalidf "negative state_words";
  if emission_burst < 1 then Err.invalidf "emission_burst must be positive";
  (* Every user-token trigger must come with a rate bound. *)
  List.iter
    (fun m ->
      match m.Method_spec.trigger with
      | Method_spec.On_token (_, (Bp_token.Token.User _ as kind)) ->
        let declared =
          List.exists
            (fun (b : Bp_token.Token.Bound.budget) ->
              Bp_token.Token.kind_equal b.Bp_token.Token.Bound.kind kind)
            token_budgets
        in
        if not declared then
          Err.invalidf
            "kernel %s: method %s handles a user token without a declared \
             rate bound"
            class_name m.Method_spec.name
      | _ -> ())
    methods;
  validate
    {
      class_name;
      role;
      inputs;
      outputs;
      methods;
      state_words;
      token_budgets;
      parallelization;
      emission_burst;
      make_behaviour;
    }

let user_token_budget t kind =
  List.find_map
    (fun (b : Bp_token.Token.Bound.budget) ->
      if Bp_token.Token.kind_equal b.Bp_token.Token.Bound.kind kind then
        Some b.Bp_token.Token.Bound.max_per_frame
      else None)
    t.token_budgets

let find_input t name = Port.find t.inputs name
let find_output t name = Port.find t.outputs name

(* Stable port ordinals: a port's position in the spec's declaration
   order. The slot-indexed kernel ABI (Behaviour.indexed) and the
   schedule resolver key rings by these instead of by name. *)
let port_ordinal what ports name =
  let rec go i = function
    | [] -> Err.graphf "no %s port %S" what name
    | p :: rest ->
      if String.equal p.Port.name name then i else go (i + 1) rest
  in
  go 0 ports

let input_ordinal t name = port_ordinal "input" t.inputs name
let output_ordinal t name = port_ordinal "output" t.outputs name
let input_order t = port_names t.inputs
let output_order t = port_names t.outputs

let method_trigger_ordinals t m =
  List.map (input_ordinal t) (Method_spec.trigger_inputs m)

let method_output_ordinals t m =
  List.map (output_ordinal t) m.Method_spec.outputs

let find_method t name =
  match
    List.find_opt (fun m -> String.equal m.Method_spec.name name) t.methods
  with
  | Some m -> m
  | None -> Err.graphf "kernel %s: no method %S" t.class_name name

let memory_words t =
  t.state_words
  + List.fold_left (fun acc p -> acc + Port.buffer_words p) 0 t.inputs
  + List.fold_left (fun acc p -> acc + Port.buffer_words p) 0 t.outputs

let cycles_of_method t name = (find_method t name).Method_spec.cycles

let is_data_parallel t =
  match t.parallelization with
  | Data_parallel -> true
  | Serial | Custom _ -> false

let replica_spec t ~replica ~ways =
  match t.parallelization with
  | Data_parallel -> t
  | Custom f -> f ~replica ~ways
  | Serial ->
    Err.unsupportedf "kernel %s is serial and cannot be replicated"
      t.class_name
let rename t name = { t with class_name = name }

let pp ppf t =
  Format.fprintf ppf "@[<v 2>kernel %s:@,in: %a@,out: %a@,methods: %a@]"
    t.class_name
    (Format.pp_print_list Port.pp)
    t.inputs
    (Format.pp_print_list Port.pp)
    t.outputs
    (Format.pp_print_list Method_spec.pp)
    t.methods
