(** Kernel specifications.

    A spec is the complete static description of one kernel: its role in
    the graph, its parameterized ports, its methods with resource
    requirements, and a constructor for fresh runtime behaviour instances.
    Specs are immutable and shareable; every parallel replica built by the
    compiler instantiates its own behaviour (and therefore its own private
    state) from the same spec. *)

type role =
  | Source  (** A real-time application input (frame size + rate). *)
  | Const_source
      (** A configuration input (coefficients, bin ranges): emits once,
          carries no tokens. *)
  | Sink  (** An application output. *)
  | Compute  (** An ordinary computation kernel. *)
  | Buffer  (** A compiler-inserted 2-D circular buffer. *)
  | Split  (** A compiler-inserted data distributor FSM. *)
  | Join  (** A compiler-inserted data collector FSM. *)
  | Inset  (** A compiler-inserted trim kernel. *)
  | Pad  (** A compiler-inserted padding kernel. *)
  | Replicate  (** A compiler-inserted copier for replicated inputs. *)

type t = {
  class_name : string;
      (** The kernel class, e.g. ["5x5 Conv"]. Instance naming (the [_0],
          [_1] suffixes of the paper's figures) happens in the graph. *)
  role : role;
  inputs : Port.t list;
  outputs : Port.t list;
  methods : Method_spec.t list;
  state_words : int;  (** Private state memory, in words. *)
  token_budgets : Bp_token.Token.Bound.budget list;
      (** Declared maximum per-frame rates of the user-defined tokens this
          kernel handles (Section II-C: kernels may define their own control
          tokens provided they bound the rate, so the compiler can budget
          the handlers' cycles). *)
  parallelization : parallelization;
  emission_burst : int;
      (** The most items one firing may push onto a single output port
          before re-checking space — the guard a self-driven emitter
          (source, const source) evaluates before firing. The scheduler
          uses it for an exact blocked-vs-exhausted test: an emitter whose
          [try_step] declines while some output channel has fewer than
          [emission_burst] free slots is blocked on space (and must be
          retried once space frees); one that declines with the burst
          available everywhere is exhausted. Defaults to 1; the streaming
          {!Bp_kernels.Source} declares 3 (pixel + end-of-line +
          end-of-frame at a frame corner). *)
  make_behaviour : unit -> Behaviour.t;
      (** Allocates a fresh runtime instance with fresh private state. *)
}

(** How the compiler may parallelize the kernel (Sections IV-A to IV-C). *)
and parallelization =
  | Data_parallel
      (** Replicate freely with round-robin split/join — the default. *)
  | Serial
      (** Never replicate (stateful reductions like the histogram merge;
          compiler-owned FSM kernels, which have their own specialized
          splitting transforms). *)
  | Custom of (replica:int -> ways:int -> t)
      (** Programmatic parallelization: the kernel supplies a routine
          producing the spec of replica [replica] out of [ways] (e.g. a
          position-dependent kernel that strides its iteration index). *)

val v :
  ?role:role ->
  ?state_words:int ->
  ?token_budgets:Bp_token.Token.Bound.budget list ->
  ?parallelization:parallelization ->
  ?emission_burst:int ->
  class_name:string ->
  inputs:Port.t list ->
  outputs:Port.t list ->
  methods:Method_spec.t list ->
  make_behaviour:(unit -> Behaviour.t) ->
  unit ->
  t
(** Builds and validates a spec. Fails with
    {!Bp_util.Err.Graph_malformed} when: port names collide; a method
    references an unknown port; an input is not consumed by any data
    method (the runtime would never drain it); or two data methods share a
    trigger input (triggers must be disjoint, Section II-B). *)

val find_input : t -> string -> Port.t
val find_output : t -> string -> Port.t
val find_method : t -> string -> Method_spec.t

val input_ordinal : t -> string -> int
(** A port's stable ordinal: its position in the declared input list.
    The slot-indexed ABI ({!Behaviour.indexed}) and the schedule
    resolver address rings by these. Raises on unknown names. *)

val output_ordinal : t -> string -> int
(** Position in the declared output list. Raises on unknown names. *)

val input_order : t -> string list
(** Input port names in declaration (ordinal) order. *)

val output_order : t -> string list
(** Output port names in declaration (ordinal) order. *)

val method_trigger_ordinals : t -> Method_spec.t -> int list
(** Input ordinals of a method's trigger inputs, in trigger order. *)

val method_output_ordinals : t -> Method_spec.t -> int list
(** Output ordinals of a method's declared outputs, in declaration
    order. *)

val user_token_budget : t -> Bp_token.Token.kind -> int option
(** The declared per-frame bound for a user token kind, if any. *)

val memory_words : t -> int
(** Total memory footprint: private state plus the implicit double-buffered
    port iteration buffers. *)

val cycles_of_method : t -> string -> int

val is_data_parallel : t -> bool
(** True for [Data_parallel] policy. *)

val replica_spec : t -> replica:int -> ways:int -> t
(** The spec to instantiate for one replica: the spec itself for
    [Data_parallel], the custom routine's result for [Custom]. Fails with
    {!Bp_util.Err.Unsupported} for [Serial]. *)

val rename : t -> string -> t
(** [rename t name] is [t] with a new class name (used when deriving
    configured variants). *)

val pp : Format.formatter -> t -> unit
