open Bp_kernel
open Bp_geometry

let pixel_port = Window.pixel

let binary ~class_name ~cycles f () =
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"run" ~inputs:[ "in0"; "in1" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let run_indexed _m ~alloc ~inputs ~outputs =
    let a = inputs.(0) and b = inputs.(1) in
    let out = alloc (Bp_image.Image.size a) in
    Bp_image.Image.map2_into f a b ~dst:out;
    outputs.(0) <- out
  in
  Spec.v ~class_name
    ~inputs:[ Port.input "in0" pixel_port; Port.input "in1" pixel_port ]
    ~outputs:[ Port.output "out" pixel_port ]
    ~methods
    ~make_behaviour:(fun () ->
      Behaviour.iteration_kernel ~methods
        ~port_order:([ "in0"; "in1" ], [ "out" ])
        ~run_indexed ())
    ()

let subtract () = binary ~class_name:"Subtract" ~cycles:Costs.subtract ( -. ) ()

let absdiff () =
  binary ~class_name:"AbsDiff" ~cycles:Costs.subtract
    (fun a b -> Float.abs (a -. b))
    ()

let add2 () = binary ~class_name:"Add" ~cycles:Costs.subtract ( +. ) ()

let unary ~class_name ~cycles f () =
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"run" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let run_indexed _m ~alloc ~inputs ~outputs =
    let src = inputs.(0) in
    let out = alloc (Bp_image.Image.size src) in
    Bp_image.Image.map_into f ~src ~dst:out;
    outputs.(0) <- out
  in
  Spec.v ~class_name
    ~inputs:[ Port.input "in" pixel_port ]
    ~outputs:[ Port.output "out" pixel_port ]
    ~methods
    ~make_behaviour:(fun () ->
      Behaviour.iteration_kernel ~methods ~port_order:([ "in" ], [ "out" ])
        ~run_indexed ())
    ()

let gain k =
  unary ~class_name:(Printf.sprintf "Gain %g" k) ~cycles:Costs.gain
    (fun v -> v *. k)
    ()

let add_const c =
  unary ~class_name:(Printf.sprintf "Add %g" c) ~cycles:Costs.gain
    (fun v -> v +. c)
    ()

let abs_val () = unary ~class_name:"Abs" ~cycles:Costs.gain Float.abs ()

let forward ?(class_name = "Forward") () =
  unary ~class_name ~cycles:1 Fun.id ()
