open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image

let rec make ?(cycles = Costs.bayer) ~frame ~start ~stride () =
  if frame.Size.w < 3 || frame.Size.h < 3 then
    Bp_util.Err.invalidf "bayer: frame %s too small" (Size.to_string frame);
  if start < 0 || stride <= 0 || start >= stride then
    Bp_util.Err.invalidf "bayer: bad replica position %d/%d" start stride;
  let gw = frame.Size.w - 2 and gh = frame.Size.h - 2 in
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"demosaic" ~inputs:[ "in" ]
        ~outputs:[ "r"; "g"; "b" ] ();
    ]
  in
  let windows_per_frame = gw * gh in
  let fires_per_frame =
    (* Windows i in [0, N) with i = start (mod stride). *)
    (windows_per_frame - start + stride - 1) / stride
  in
  if fires_per_frame <= 0 then
    Bp_util.Err.invalidf "bayer: replica %d of %d would never fire" start
      stride;
  let make_behaviour () =
    (* Replica [start] of [stride] sees every [stride]-th window of the
       global scan order (round-robin distribution), so the iteration index
       advances by [stride] and resets each frame — the paper's
       "programmatic" parallelization of a position-dependent kernel. *)
    let fires = ref 0 in
    let run_indexed _m ~alloc ~inputs ~outputs =
      let win = inputs.(0) in
      let idx = start + (!fires * stride) in
      fires := (!fires + 1) mod fires_per_frame;
      (* Global coordinates of the window center in the mosaic. *)
      let cx = (idx mod gw) + 1 and cy = (idx / gw) + 1 in
      let g ~x ~y = Image.get win ~x:(x + 1) ~y:(y + 1) in
      (* Same per-site formulas as the golden [Ops.bayer_demosaic], with
         window-relative coordinates (center = (0,0)). *)
      let r, gr, b =
        match (cx mod 2, cy mod 2) with
        | 0, 0 ->
          ( g ~x:0 ~y:0,
            (g ~x:(-1) ~y:0 +. g ~x:1 ~y:0 +. g ~x:0 ~y:(-1) +. g ~x:0 ~y:1)
            /. 4.,
            (g ~x:(-1) ~y:(-1) +. g ~x:1 ~y:(-1) +. g ~x:(-1) ~y:1
            +. g ~x:1 ~y:1)
            /. 4. )
        | 1, 1 ->
          ( (g ~x:(-1) ~y:(-1) +. g ~x:1 ~y:(-1) +. g ~x:(-1) ~y:1
            +. g ~x:1 ~y:1)
            /. 4.,
            (g ~x:(-1) ~y:0 +. g ~x:1 ~y:0 +. g ~x:0 ~y:(-1) +. g ~x:0 ~y:1)
            /. 4.,
            g ~x:0 ~y:0 )
        | 1, 0 ->
          ( (g ~x:(-1) ~y:0 +. g ~x:1 ~y:0) /. 2.,
            g ~x:0 ~y:0,
            (g ~x:0 ~y:(-1) +. g ~x:0 ~y:1) /. 2. )
        | _ ->
          ( (g ~x:0 ~y:(-1) +. g ~x:0 ~y:1) /. 2.,
            g ~x:0 ~y:0,
            (g ~x:(-1) ~y:0 +. g ~x:1 ~y:0) /. 2. )
      in
      let px v =
        let p = alloc Size.one in
        Image.set p ~x:0 ~y:0 v;
        p
      in
      outputs.(0) <- px r;
      outputs.(1) <- px gr;
      outputs.(2) <- px b
    in
    Behaviour.iteration_kernel ~methods
      ~port_order:([ "in" ], [ "r"; "g"; "b" ])
      ~run_indexed ()
  in
  let parallelization =
    Spec.Custom
      (fun ~replica ~ways -> make ~cycles ~frame ~start:replica ~stride:ways ())
  in
  Spec.v ~class_name:"Bayer Demosaic" ~state_words:4 ~parallelization
    ~inputs:[ Port.input "in" (Window.windowed 3 3) ]
    ~outputs:
      [
        Port.output "r" Window.pixel;
        Port.output "g" Window.pixel;
        Port.output "b" Window.pixel;
      ]
    ~methods ~make_behaviour ()

let spec ?cycles ~frame () = make ?cycles ~frame ~start:0 ~stride:1 ()
