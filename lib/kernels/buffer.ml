open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image
module Token = Bp_token.Token
module Err = Bp_util.Err

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_emitWindow =
  Some { Behaviour.method_name = "emitWindow"; cycles = Costs.buffer_store }
let fired_storeBlock =
  Some { Behaviour.method_name = "storeBlock"; cycles = Costs.buffer_store }
let fired_consumeEol =
  Some { Behaviour.method_name = "consumeEol"; cycles = 1 }
let fired_consumeEof =
  Some { Behaviour.method_name = "consumeEof"; cycles = 2 }
let fired_forwardUser =
  Some { Behaviour.method_name = "forwardUser"; cycles = 1 }


type config = {
  in_block : Size.t;
  out_window : Window.t;
  frame : Size.t;
  emit_eol : bool;
}

let config ?(emit_eol = false) ?(in_block = Size.one) ~out_window ~frame () =
  if frame.Size.w mod in_block.Size.w <> 0
     || frame.Size.h mod in_block.Size.h <> 0 then
    Err.invalidf "buffer: block %s does not tile frame %s"
      (Size.to_string in_block) (Size.to_string frame);
  if not (Size.fits_within out_window.Window.size frame) then
    Err.invalidf "buffer: window %s larger than frame %s"
      (Size.to_string out_window.Window.size)
      (Size.to_string frame);
  { in_block; out_window; frame; emit_eol }

let rows cfg =
  2 * max cfg.in_block.Size.h cfg.out_window.Window.size.Size.h

let storage cfg = Size.v cfg.frame.Size.w (rows cfg)
let storage_words cfg = Size.area (storage cfg)
let iterations cfg = Window.iterations cfg.out_window ~frame:cfg.frame

let default_class_name cfg =
  let s = storage cfg in
  Format.asprintf "Buffer [%dx%d] (%dx%d)->%a" s.Size.w s.Size.h
    cfg.in_block.Size.w cfg.in_block.Size.h Size.pp
    cfg.out_window.Window.size

(* Mutable per-instance state of the circular row store. *)
type state = {
  store : float array array;  (* rows (circular) x frame width *)
  row_ids : int array;  (* which global row each slot currently holds *)
  mutable blocks_in : int;  (* input blocks received this frame *)
  mutable wx : int;  (* next output window origin, in window-index space *)
  mutable wy : int;
  mutable frame_idx : int;
  mutable need_block : int;
      (* index of the input block containing the pending window's
         bottom-right pixel — recomputed only when the cursor moves, so
         the per-attempt availability test is two compares *)
}

let make_state cfg =
  let r = rows cfg in
  {
    store = Array.make_matrix r cfg.frame.Size.w 0.;
    row_ids = Array.make r (-1);
    blocks_in = 0;
    wx = 0;
    wy = 0;
    frame_idx = 0;
    need_block = 0;
  }

let spec ?class_name cfg =
  let class_name =
    Option.value class_name ~default:(default_class_name cfg)
  in
  let fw = cfg.frame.Size.w in
  let bw = cfg.in_block.Size.w and bh = cfg.in_block.Size.h in
  let blocks_per_row = fw / bw in
  let iter = iterations cfg in
  let win = cfg.out_window.Window.size in
  let sx = cfg.out_window.Window.step.Step.sx
  and sy = cfg.out_window.Window.step.Step.sy in
  let in_window = Window.v ~step:(Step.of_size cfg.in_block) cfg.in_block in
  let make_behaviour () =
    let st = make_state cfg in
    let r = rows cfg in
    (* Is the next pending output window fully arrived? Scan-line arrival
       means availability reduces to: has the block containing the window's
       bottom-right pixel arrived. The block index is memoized in
       [st.need_block] — this test sits inside the static executor's
       starvation oracle, so it runs on every attempt. *)
    let update_need_block () =
      let ox = st.wx * sx and oy = st.wy * sy in
      let last_x = ox + win.Size.w - 1 and last_y = oy + win.Size.h - 1 in
      st.need_block <- ((last_y / bh) * blocks_per_row) + (last_x / bw)
    in
    update_need_block ();
    let window_available () =
      st.wy < iter.Size.h && st.blocks_in > st.need_block
    in
    (* Row copies go through [Array.blit] on the raw scan lines: the
       buffer moves every pixel of every window, and per-pixel accessor
       calls would box a float each (no flambda). *)
    let checked_slot y =
      let slot = y mod r in
      if st.row_ids.(slot) <> y then
        Err.graphf
          "buffer %s: row %d was overwritten before use (storage too small)"
          class_name y;
      slot
    in
    let store_block ~bx ~by img =
      let src = Image.unsafe_data img in
      for j = 0 to bh - 1 do
        let y = (by * bh) + j in
        let slot = y mod r in
        if st.row_ids.(slot) <> y then begin
          st.row_ids.(slot) <- y;
          Array.fill st.store.(slot) 0 fw 0.
        end;
        Array.blit src (j * bw) st.store.(slot) (bx * bw) bw
      done
    in
    let try_step (io : Behaviour.io) =
      (* Emit-first: drain pending windows before accepting more input so
         the circular store never needs more than its sized capacity. *)
      if window_available () then begin
        if io.space "out" < 3 then None
        else begin
          let ox = st.wx * sx and oy = st.wy * sy in
          let out = io.acquire win in
          let out_d = Image.unsafe_data out in
          for y = 0 to win.Size.h - 1 do
            let slot = checked_slot (oy + y) in
            Array.blit st.store.(slot) ox out_d (y * win.Size.w) win.Size.w
          done;
          io.push "out" (Item.data out);
          let end_of_row = st.wx = iter.Size.w - 1 in
          let end_of_frame = end_of_row && st.wy = iter.Size.h - 1 in
          if end_of_row && cfg.emit_eol && not end_of_frame then
            io.push "out" (Item.ctl (Token.eol st.wy));
          if end_of_frame then begin
            if cfg.emit_eol then io.push "out" (Item.ctl (Token.eol st.wy));
            io.push "out" (Item.ctl (Token.eof st.frame_idx));
            st.wx <- 0;
            st.wy <- iter.Size.h (* frame complete; wait for input EOF *)
          end
          else if end_of_row then begin
            st.wx <- 0;
            st.wy <- st.wy + 1
          end
          else st.wx <- st.wx + 1;
          if st.wy < iter.Size.h then update_need_block ();
          fired_emitWindow
        end
      end
      else
        match io.peek "in" with
        | None -> None
        | Some (Item.Data _) ->
          let img = Behaviour.pop_data io "in" in
          if not (Size.equal (Image.size img) cfg.in_block) then
            Err.graphf "buffer %s: bad input block %s" class_name
              (Size.to_string (Image.size img));
          let bx = st.blocks_in mod blocks_per_row
          and by = st.blocks_in / blocks_per_row in
          store_block ~bx ~by img;
          io.release img;
          st.blocks_in <- st.blocks_in + 1;
          fired_storeBlock
        | Some (Item.Ctl tok) -> (
          match tok.Token.kind with
          | Token.End_of_line ->
            ignore (io.pop "in");
            fired_consumeEol
          | Token.End_of_frame ->
            (* Only consume the input EOF once every window of the frame
               has been emitted (window_available is false and the cursor
               is past the last row). *)
            if st.wy < iter.Size.h then None
            else begin
              ignore (io.pop "in");
              st.blocks_in <- 0;
              st.wx <- 0;
              st.wy <- 0;
              st.frame_idx <- st.frame_idx + 1;
              Array.fill st.row_ids 0 r (-1);
              update_need_block ();
              fired_consumeEof
            end
          | Token.User _ ->
            (* Forward user tokens in order with the data. *)
            if io.space "out" < 1 then None
            else begin
              ignore (io.pop "in");
              io.push "out" (Item.ctl tok);
              fired_forwardUser
            end)
    in
    (* Exact decline oracle: with no pending window, every branch of
       [try_step] starts from the input front — so an empty input means a
       guaranteed decline. With a window pending the buffer may self-fire
       (emit needs only output space), so it must be re-attempted. *)
    let starved (io : Behaviour.io) =
      (not (window_available ())) && not (io.has_input "in")
    in
    (* Slot-indexed twin of [try_step], one op per firing shape. Each op
       re-checks the private-state preconditions the generic path consults
       (emit-first ordering, frame-complete EOF gate) and declines with
       [None] — mutation-free — when they do not hold, so the engine can
       fall back to the generic attempt. Fronts, item kinds, and the
       3-slot emit space are pre-checked by the engine. *)
    let op_of ~method_name ~pops:_ ~pushes:_ =
      match method_name with
      | "emitWindow" -> 0
      | "storeBlock" -> 1
      | "consumeEol" -> 2
      | "consumeEof" -> 3
      | _ -> -1
    in
    let emit_outs = [| 0 |] and no_outs = [||] in
    let space_need _ = 3 in
    let space_outs op = if op = 0 then emit_outs else no_outs in
    let fire_indexed (ports : Behaviour.ports) op =
      match op with
      | 0 ->
        if not (window_available ()) then None
        else begin
          let ox = st.wx * sx and oy = st.wy * sy in
          let out = ports.ix_acquire win in
          let out_d = Image.unsafe_data out in
          for y = 0 to win.Size.h - 1 do
            let slot = checked_slot (oy + y) in
            Array.blit st.store.(slot) ox out_d (y * win.Size.w) win.Size.w
          done;
          ports.ix_push 0 (Item.data out);
          let end_of_row = st.wx = iter.Size.w - 1 in
          let end_of_frame = end_of_row && st.wy = iter.Size.h - 1 in
          if end_of_row && cfg.emit_eol && not end_of_frame then
            ports.ix_push 0 (Item.ctl (Token.eol st.wy));
          if end_of_frame then begin
            if cfg.emit_eol then
              ports.ix_push 0 (Item.ctl (Token.eol st.wy));
            ports.ix_push 0 (Item.ctl (Token.eof st.frame_idx));
            st.wx <- 0;
            st.wy <- iter.Size.h
          end
          else if end_of_row then begin
            st.wx <- 0;
            st.wy <- st.wy + 1
          end
          else st.wx <- st.wx + 1;
          if st.wy < iter.Size.h then update_need_block ();
          fired_emitWindow
        end
      | 1 -> (
        if window_available () then None
        else
          match ports.ix_pop 0 with
          | Item.Data img ->
            if not (Size.equal (Image.size img) cfg.in_block) then
              Err.graphf "buffer %s: bad input block %s" class_name
                (Size.to_string (Image.size img));
            let bx = st.blocks_in mod blocks_per_row
            and by = st.blocks_in / blocks_per_row in
            store_block ~bx ~by img;
            ports.ix_release img;
            st.blocks_in <- st.blocks_in + 1;
            fired_storeBlock
          | Item.Ctl _ ->
            Err.graphf "buffer %s: indexed storeBlock popped a token"
              class_name)
      | 2 ->
        if window_available () then None
        else begin
          ignore (ports.ix_pop 0);
          fired_consumeEol
        end
      | 3 ->
        if window_available () || st.wy < iter.Size.h then None
        else begin
          ignore (ports.ix_pop 0);
          st.blocks_in <- 0;
          st.wx <- 0;
          st.wy <- 0;
          st.frame_idx <- st.frame_idx + 1;
          Array.fill st.row_ids 0 r (-1);
          update_need_block ();
          fired_consumeEof
        end
      | _ -> None
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Buffer ~class_name ~state_words:(storage_words cfg)
    ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" in_window ]
    ~outputs:[ Port.output "out" cfg.out_window ]
    ~methods:[] ~make_behaviour ()
