open Bp_kernel
open Bp_geometry

let input_window ~w ~h = Window.windowed w h

let spec ?cycles ~w ~h () =
  let cycles = Option.value cycles ~default:(Costs.convolve ~w ~h) in
  let coeff_window =
    Window.v
      ~offset:(Offset.centered (Size.v w h))
      ~step:(Step.v w h) (Size.v w h)
  in
  let methods =
    [
      (* Registered first so pending coefficients always load before the
         next convolution fires. *)
      Method_spec.on_data
        ~cycles:(Costs.load_coeff ~w ~h)
        ~name:"loadCoeff" ~inputs:[ "coeff" ] ~outputs:[] ();
      Method_spec.on_data ~cycles ~name:"runConvolve" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let make_behaviour () =
    (* Private state shared between the two methods, as in the paper's
       Java kernel: [loadCoeff] writes it, [runConvolve] reads it. *)
    let coeff = Bp_image.Image.create (Size.v w h) in
    let run_convolve ~alloc ~inputs ~outputs =
      let out = alloc Size.one in
      Bp_image.Ops.convolve_into inputs.(0) ~kernel:coeff ~dst:out;
      outputs.(0) <- out
    in
    let load_coeff ~alloc:_ ~inputs ~outputs:_ =
      (* Copy into private state instead of retaining the input chunk:
         the runtime releases consumed inputs back to the pool, so a
         retained reference would be recycled under us. *)
      Bp_image.Image.blit ~src:inputs.(0) ~dst:coeff ~x:0 ~y:0
    in
    let run_indexed = function
      | "runConvolve" -> run_convolve
      | "loadCoeff" -> load_coeff
      | other -> Bp_util.Err.graphf "convolution: unknown method %S" other
    in
    Behaviour.iteration_kernel ~methods
      ~port_order:([ "in"; "coeff" ], [ "out" ])
      ~run_indexed ()
  in
  Spec.v
    ~class_name:(Printf.sprintf "%dx%d Conv" w h)
    ~state_words:(w * h)
    ~inputs:
      [
        Port.input "in" (input_window ~w ~h);
        Port.input ~replicated:true "coeff" coeff_window;
      ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods ~make_behaviour ()
