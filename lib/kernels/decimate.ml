open Bp_kernel
open Bp_geometry

let spec ?(cycles = 2) ~fx ~fy () =
  if fx <= 0 || fy <= 0 then
    Bp_util.Err.invalidf "decimate: factors %dx%d must be positive" fx fy;
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"pick" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  (* Pass-through: storing the input chunk into the output slot transfers
     its ownership onward, so the runtime will not release it. *)
  let run_indexed _m ~alloc:_ ~inputs ~outputs = outputs.(0) <- inputs.(0) in
  Spec.v
    ~class_name:(Printf.sprintf "Decimate %dx%d" fx fy)
    ~inputs:[ Port.input "in" (Window.v ~step:(Step.v fx fy) Size.one) ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods
    ~make_behaviour:(fun () ->
      Behaviour.iteration_kernel ~methods ~port_order:([ "in" ], [ "out" ])
        ~run_indexed ())
    ()
