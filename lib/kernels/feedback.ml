open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image
module Err = Bp_util.Err

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_emitInitial =
  Some { Behaviour.method_name = "emitInitial"; cycles = 1 }
let fired_forward =
  Some { Behaviour.method_name = "forward"; cycles = 1 }
let fired_dropToken =
  Some { Behaviour.method_name = "dropToken"; cycles = 1 }
let fired_forwardToken =
  Some { Behaviour.method_name = "forwardToken"; cycles = 1 }


let init ?(class_name = "Loop Init") ~window ~initial () =
  List.iter
    (fun img ->
      if not (Size.equal (Image.size img) window.Window.size) then
        Err.invalidf "feedback init: initial chunk %s does not match %s"
          (Size.to_string (Image.size img))
          (Size.to_string window.Window.size))
    initial;
  let make_behaviour () =
    let pending = ref (List.map Image.copy initial) in
    let try_step (io : Behaviour.io) =
      match !pending with
      | chunk :: rest ->
        if io.space "out" < 1 then None
        else begin
          io.push "out" (Item.data chunk);
          pending := rest;
          fired_emitInitial
        end
      | [] -> (
        match io.peek "in" with
        | None -> None
        | Some (Item.Data _) ->
          if io.space "out" < 1 then None
          else begin
            io.push "out" (Item.data (Behaviour.pop_data io "in"));
            fired_forward
          end
        | Some (Item.Ctl _) ->
          (* Tokens do not recirculate around the loop. *)
          ignore (io.pop "in");
          fired_dropToken)
    in
    (* Self-driven while initial chunks remain; input-driven after. *)
    let starved (io : Behaviour.io) =
      !pending = [] && not (io.has_input "in")
    in
    (* Slot-indexed twin: op 0 emits a queued initial chunk, op 1 forwards
       a data chunk, op 2 drops a token. Ops 1 and 2 re-check that no
       initial chunk is pending (the generic path emits those first). *)
    let one_out = [| 0 |] and no_outs = [||] in
    let op_of ~method_name ~pops:_ ~pushes:_ =
      match method_name with
      | "emitInitial" -> 0
      | "forward" -> 1
      | "dropToken" -> 2
      | _ -> -1
    in
    let space_need _ = 1 in
    let space_outs op = if op = 2 then no_outs else one_out in
    let fire_indexed (ports : Behaviour.ports) op =
      match op with
      | 0 -> (
        match !pending with
        | chunk :: rest ->
          ports.ix_push 0 (Item.data chunk);
          pending := rest;
          fired_emitInitial
        | [] -> None)
      | 1 ->
        if !pending <> [] then None
        else begin
          ports.ix_push 0 (Item.data (Item.chunk_exn (ports.ix_pop 0)));
          fired_forward
        end
      | 2 ->
        if !pending <> [] then None
        else begin
          ignore (ports.ix_pop 0);
          fired_dropToken
        end
      | _ -> None
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Replicate ~class_name ~parallelization:Spec.Serial
    ~state_words:(Size.area window.Window.size * max 1 (List.length initial))
    ~inputs:[ Port.input "in" window ]
    ~outputs:[ Port.output "out" window ]
    ~methods:[] ~make_behaviour ()

let loop_combine ?(class_name = "Loop Combine") ?(cycles = 4) f =
  let fired_combine = Some { Behaviour.method_name = "combine"; cycles } in
  let make_behaviour () =
    let try_step (io : Behaviour.io) =
      match io.peek "in0" with
      | None -> None
      | Some (Item.Ctl tok) ->
        (* Forward-path tokens pass straight through; the feedback input
           carries none. *)
        if io.space "out" < 1 then None
        else begin
          ignore (io.pop "in0");
          io.push "out" (Item.ctl tok);
          fired_forwardToken
        end
      | Some (Item.Data _) -> (
        match io.peek "in1" with
        | Some (Item.Data _) when io.space "out" >= 1 ->
          let a = Behaviour.pop_data io "in0" in
          let b = Behaviour.pop_data io "in1" in
          let out = io.acquire (Image.size a) in
          Image.map2_into f a b ~dst:out;
          io.push "out" (Item.data out);
          io.release a;
          io.release b;
          fired_combine
        | Some (Item.Ctl _) ->
          Err.graphf "%s: unexpected token on the feedback input" class_name
        | Some (Item.Data _) | None -> None)
    in
    (* Every branch starts from the in0 front, so an empty in0 is a
       guaranteed decline (in1 alone can never trigger a firing). *)
    let starved (io : Behaviour.io) = not (io.has_input "in0") in
    (* Slot-indexed twin: both ops are fully guarded by the engine (front
       kinds on in0/in1 plus one slot of output space) — no private state
       to re-check. *)
    let one_out = [| 0 |] in
    let op_of ~method_name ~pops:_ ~pushes:_ =
      match method_name with
      | "combine" -> 0
      | "forwardToken" -> 1
      | _ -> -1
    in
    let space_need _ = 1 in
    let space_outs _ = one_out in
    let fire_indexed (ports : Behaviour.ports) op =
      match op with
      | 0 ->
        let a = Item.chunk_exn (ports.ix_pop 0) in
        let b = Item.chunk_exn (ports.ix_pop 1) in
        let out = ports.ix_acquire (Image.size a) in
        Image.map2_into f a b ~dst:out;
        ports.ix_push 0 (Item.data out);
        ports.ix_release a;
        ports.ix_release b;
        fired_combine
      | 1 -> (
        match ports.ix_pop 0 with
        | Item.Ctl tok ->
          ports.ix_push 0 (Item.ctl tok);
          fired_forwardToken
        | Item.Data _ ->
          Err.graphf "%s: indexed forwardToken popped a chunk" class_name)
      | _ -> None
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"combine" ~inputs:[ "in0"; "in1" ]
        ~outputs:[ "out" ] ();
    ]
  in
  Spec.v ~class_name ~parallelization:Spec.Serial
    ~inputs:
      [ Port.input "in0" Window.pixel; Port.input "in1" Window.pixel ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods ~make_behaviour ()
