open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image

let bin_lower_bounds ~bins ~lo ~hi =
  if bins <= 0 then Bp_util.Err.invalidf "histogram needs at least one bin";
  if not (hi > lo) then Bp_util.Err.invalidf "histogram range is empty";
  let width = (hi -. lo) /. float_of_int bins in
  Image.init (Size.v bins 1) (fun ~x ~y:_ -> lo +. (float_of_int x *. width))

let bins_window bins =
  Window.v ~step:(Step.v bins 1) (Size.v bins 1)

(* The paper's [findBin]: linear search for the last bin whose lower bound
   is at or below the value; values below every bound clamp to bin 0. *)
let find_bin ranges v =
  let bins = Array.length ranges in
  let rec search i best =
    if i >= bins then best
    else if v >= ranges.(i) then search (i + 1) i
    else best
  in
  search 0 0

let reference img ~bins ~lo ~hi =
  let bounds = bin_lower_bounds ~bins ~lo ~hi in
  let ranges = Array.init bins (fun i -> Image.get bounds ~x:i ~y:0) in
  let counts = Array.make bins 0. in
  Image.iter_pixels
    (fun ~x:_ ~y:_ v ->
      let b = find_bin ranges v in
      counts.(b) <- counts.(b) +. 1.)
    img;
  Image.init (Size.v bins 1) (fun ~x ~y:_ -> counts.(x))

let spec ?count_cycles ~bins () =
  let count_cycles =
    Option.value count_cycles ~default:(Costs.histogram_count ~bins)
  in
  let methods =
    [
      (* Registered before [count] so pending bin bounds are always loaded
         ahead of further counting. *)
      Method_spec.on_data
        ~cycles:(2 * bins)
        ~name:"configureBins" ~inputs:[ "bins" ] ~outputs:[] ();
      Method_spec.on_data ~cycles:count_cycles ~name:"count" ~inputs:[ "in" ]
        ~outputs:[] ();
      Method_spec.on_token
        ~cycles:(Costs.histogram_finish ~bins)
        ~name:"finishCount" ~input:"in" ~kind:Bp_token.Token.End_of_frame
        ~outputs:[ "out" ] ();
    ]
  in
  let make_behaviour () =
    let counts = Array.make bins 0. in
    let ranges = Array.make bins 0. in
    let count ~alloc:_ ~inputs ~outputs:_ =
      let v = Image.get inputs.(0) ~x:0 ~y:0 in
      let b = find_bin ranges v in
      counts.(b) <- counts.(b) +. 1.
    in
    let configure_bins ~alloc:_ ~inputs ~outputs:_ =
      let img = inputs.(0) in
      for i = 0 to bins - 1 do
        ranges.(i) <- Image.get img ~x:i ~y:0;
        counts.(i) <- 0.
      done
    in
    let run_indexed = function
      | "count" -> count
      | "configureBins" -> configure_bins
      | other -> Bp_util.Err.graphf "histogram: unknown method %S" other
    in
    let token_run m ~alloc _tok =
      match m with
      | "finishCount" ->
        let out = alloc (Size.v bins 1) in
        for i = 0 to bins - 1 do
          Image.set out ~x:i ~y:0 counts.(i)
        done;
        Array.fill counts 0 bins 0.;
        [ ("out", out) ]
      | other -> Bp_util.Err.graphf "histogram: unknown token method %S" other
    in
    Behaviour.iteration_kernel ~methods
      ~port_order:([ "in"; "bins" ], [ "out" ])
      ~run_indexed ~token_run ()
  in
  Spec.v ~class_name:"Histogram" ~state_words:(2 * bins)
    ~inputs:
      [
        Port.input "in" Window.pixel;
        Port.input ~replicated:true "bins" (bins_window bins);
      ]
    ~outputs:[ Port.output "out" (bins_window bins) ]
    ~methods ~make_behaviour ()

let merge ~bins () =
  let methods =
    [
      Method_spec.on_data
        ~cycles:(Costs.merge_accumulate ~bins)
        ~name:"accumulate" ~inputs:[ "in" ] ~outputs:[] ();
      Method_spec.on_token
        ~cycles:(Costs.merge_emit ~bins)
        ~name:"emit" ~input:"in" ~kind:Bp_token.Token.End_of_frame
        ~outputs:[ "out" ] ();
    ]
  in
  let make_behaviour () =
    let sums = Array.make bins 0. in
    let accumulate ~alloc:_ ~inputs ~outputs:_ =
      let img = inputs.(0) in
      for i = 0 to bins - 1 do
        sums.(i) <- sums.(i) +. Image.get img ~x:i ~y:0
      done
    in
    let run_indexed = function
      | "accumulate" -> accumulate
      | other -> Bp_util.Err.graphf "merge: unknown method %S" other
    in
    let token_run m ~alloc _tok =
      match m with
      | "emit" ->
        let out = alloc (Size.v bins 1) in
        for i = 0 to bins - 1 do
          Image.set out ~x:i ~y:0 sums.(i)
        done;
        Array.fill sums 0 bins 0.;
        [ ("out", out) ]
      | other -> Bp_util.Err.graphf "merge: unknown token method %S" other
    in
    Behaviour.iteration_kernel ~methods ~port_order:([ "in" ], [ "out" ])
      ~run_indexed ~token_run ()
  in
  Spec.v ~class_name:"Merge" ~state_words:bins ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" (bins_window bins) ]
    ~outputs:[ Port.output "out" (bins_window bins) ]
    ~methods ~make_behaviour ()
