open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image
module Token = Bp_token.Token
module Err = Bp_util.Err

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_filter =
  Some { Behaviour.method_name = "filter"; cycles = Costs.inset }
let fired_consumeEol =
  Some { Behaviour.method_name = "consumeEol"; cycles = 1 }
let fired_emitEof =
  Some { Behaviour.method_name = "emitEof"; cycles = 2 }
let fired_forwardUser =
  Some { Behaviour.method_name = "forwardUser"; cycles = 1 }
let fired_consumeToken =
  Some { Behaviour.method_name = "consumeToken"; cycles = 1 }
let fired_emitPad =
  Some { Behaviour.method_name = "emitPad"; cycles = Costs.pad }
let fired_forward =
  Some { Behaviour.method_name = "forward"; cycles = Costs.pad }


let inset ?class_name ?(chunk = Window.pixel) ~grid ~left ~right ~top ~bottom
    () =
  if left < 0 || right < 0 || top < 0 || bottom < 0 then
    Err.invalidf "inset margins must be non-negative";
  if left + right >= grid.Size.w || top + bottom >= grid.Size.h then
    Err.invalidf "inset margins (%d,%d,%d,%d) consume the whole %s grid" left
      right top bottom (Size.to_string grid);
  let class_name =
    Option.value class_name
      ~default:
        (Printf.sprintf "Inset (%d,%d)[%d,%d,%d,%d]" grid.Size.w grid.Size.h
           left right top bottom)
  in
  let make_behaviour () =
    let x = ref 0 and y = ref 0 and frame_idx = ref 0 in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some (Item.Data _) ->
        let keep =
          !x >= left
          && !x < grid.Size.w - right
          && !y >= top
          && !y < grid.Size.h - bottom
        in
        if keep && io.space "out" < 1 then None
        else begin
          let img = Behaviour.pop_data io "in" in
          if keep then io.push "out" (Item.data img)
          else io.release img;
          x := !x + 1;
          if !x = grid.Size.w then begin
            x := 0;
            y := !y + 1
          end;
          fired_filter
        end
      | Some (Item.Ctl tok) -> (
        match tok.Token.kind with
        | Token.End_of_line ->
          ignore (io.pop "in");
          fired_consumeEol
        | Token.End_of_frame ->
          if io.space "out" < 1 then None
          else begin
            ignore (io.pop "in");
            io.push "out" (Item.ctl (Token.eof !frame_idx));
            x := 0;
            y := 0;
            incr frame_idx;
            fired_emitEof
          end
        | Token.User _ ->
          if io.space "out" < 1 then None
          else begin
            ignore (io.pop "in");
            io.push "out" (Item.ctl tok);
            fired_forwardUser
          end)
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    Behaviour.v ~starved try_step
  in
  Spec.v ~role:Spec.Inset ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" chunk ]
    ~outputs:[ Port.output "out" chunk ]
    ~methods:[] ~make_behaviour ()

let pad ?class_name ?(value = 0.) ~frame ~left ~right ~top ~bottom () =
  if left < 0 || right < 0 || top < 0 || bottom < 0 then
    Err.invalidf "pad margins must be non-negative";
  let out_w = frame.Size.w + left + right in
  let out_h = frame.Size.h + top + bottom in
  let class_name =
    Option.value class_name
      ~default:(Printf.sprintf "Pad [%d,%d,%d,%d]" left right top bottom)
  in
  let make_behaviour () =
    (* Cursor over the *padded* grid; positions inside the original frame
       require an input pixel, margin positions emit the constant. *)
    let ox = ref 0 and oy = ref 0 and frame_idx = ref 0 in
    let in_margin () =
      !ox < left
      || !ox >= left + frame.Size.w
      || !oy < top
      || !oy >= top + frame.Size.h
    in
    let advance io =
      let end_of_row = !ox = out_w - 1 in
      let end_of_frame = end_of_row && !oy = out_h - 1 in
      if end_of_row then begin
        io.Behaviour.push "out" (Item.ctl (Token.eol !oy));
        ox := 0;
        if end_of_frame then begin
          io.Behaviour.push "out" (Item.ctl (Token.eof !frame_idx));
          oy := 0;
          incr frame_idx
        end
        else oy := !oy + 1
      end
      else ox := !ox + 1;
      end_of_frame
    in
    let seen_input = ref false in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      (* Input tokens are informational here — the output schedule below
         emits this kernel's own tokens for the padded geometry — so they
         are consumed eagerly whenever they reach the front. *)
      | Some (Item.Ctl { Token.kind = Token.End_of_line | Token.End_of_frame; _ })
        ->
        ignore (io.pop "in");
        fired_consumeToken
      | Some (Item.Ctl tok) ->
        if io.space "out" < 1 then None
        else begin
          ignore (io.pop "in");
          io.push "out" (Item.ctl tok);
          fired_forwardUser
        end
      | (Some (Item.Data _) | None) as front ->
        if io.space "out" < 3 then None
        else if in_margin () then
          (* Only emit margins of a frame whose data has started arriving,
             otherwise an exhausted input would trigger margins of a frame
             that never comes. *)
          if !seen_input || front <> None then begin
            let px = io.acquire Size.one in
            Image.set px ~x:0 ~y:0 value;
            io.push "out" (Item.data px);
            if advance io then seen_input := false;
            fired_emitPad
          end
          else None
        else (
          match front with
          | None -> None
          | Some _ ->
            let img = Behaviour.pop_data io "in" in
            seen_input := true;
            io.push "out" (Item.data img);
            if advance io then seen_input := false;
            fired_forward)
    in
    (* The padder can self-fire margin pixels of an in-flight frame, so it
       is only provably starved when the input is empty AND the cursor is
       not on a margin position of a started frame. *)
    let starved (io : Behaviour.io) =
      (not (io.has_input "in")) && not (!seen_input && in_margin ())
    in
    Behaviour.v ~starved try_step
  in
  Spec.v ~role:Spec.Pad ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods:[] ~make_behaviour ()
