open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image
module Token = Bp_token.Token
module Err = Bp_util.Err

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_filter =
  Some { Behaviour.method_name = "filter"; cycles = Costs.inset }
let fired_consumeEol =
  Some { Behaviour.method_name = "consumeEol"; cycles = 1 }
let fired_emitEof =
  Some { Behaviour.method_name = "emitEof"; cycles = 2 }
let fired_forwardUser =
  Some { Behaviour.method_name = "forwardUser"; cycles = 1 }
let fired_consumeToken =
  Some { Behaviour.method_name = "consumeToken"; cycles = 1 }
let fired_emitPad =
  Some { Behaviour.method_name = "emitPad"; cycles = Costs.pad }
let fired_forward =
  Some { Behaviour.method_name = "forward"; cycles = Costs.pad }


let inset ?class_name ?(chunk = Window.pixel) ~grid ~left ~right ~top ~bottom
    () =
  if left < 0 || right < 0 || top < 0 || bottom < 0 then
    Err.invalidf "inset margins must be non-negative";
  if left + right >= grid.Size.w || top + bottom >= grid.Size.h then
    Err.invalidf "inset margins (%d,%d,%d,%d) consume the whole %s grid" left
      right top bottom (Size.to_string grid);
  let class_name =
    Option.value class_name
      ~default:
        (Printf.sprintf "Inset (%d,%d)[%d,%d,%d,%d]" grid.Size.w grid.Size.h
           left right top bottom)
  in
  let make_behaviour () =
    let x = ref 0 and y = ref 0 and frame_idx = ref 0 in
    let keep_now () =
      !x >= left
      && !x < grid.Size.w - right
      && !y >= top
      && !y < grid.Size.h - bottom
    in
    let advance_cursor () =
      x := !x + 1;
      if !x = grid.Size.w then begin
        x := 0;
        y := !y + 1
      end
    in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some (Item.Data _) ->
        let keep = keep_now () in
        if keep && io.space "out" < 1 then None
        else begin
          let img = Behaviour.pop_data io "in" in
          if keep then io.push "out" (Item.data img)
          else io.release img;
          advance_cursor ();
          fired_filter
        end
      | Some (Item.Ctl tok) -> (
        match tok.Token.kind with
        | Token.End_of_line ->
          ignore (io.pop "in");
          fired_consumeEol
        | Token.End_of_frame ->
          if io.space "out" < 1 then None
          else begin
            ignore (io.pop "in");
            io.push "out" (Item.ctl (Token.eof !frame_idx));
            x := 0;
            y := 0;
            incr frame_idx;
            fired_emitEof
          end
        | Token.User _ ->
          if io.space "out" < 1 then None
          else begin
            ignore (io.pop "in");
            io.push "out" (Item.ctl tok);
            fired_forwardUser
          end)
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    (* Slot-indexed twin. The two firing shapes of [filter] — keep (one
       push) and drop (no push) — are distinct ops resolved from the
       entry's push list; each re-checks the cursor's keep decision and
       declines mutation-free on mismatch. *)
    let op_of ~method_name ~pops:_ ~pushes =
      match method_name with
      | "filter" -> if Array.length pushes = 0 then 1 else 0
      | "consumeEol" -> 2
      | "emitEof" -> 3
      | _ -> -1
    in
    let one_out = [| 0 |] and no_outs = [||] in
    let space_need _ = 1 in
    let space_outs op = if op = 0 || op = 3 then one_out else no_outs in
    let fire_indexed (ports : Behaviour.ports) op =
      match op with
      | 0 ->
        if not (keep_now ()) then None
        else begin
          let img = Item.chunk_exn (ports.ix_pop 0) in
          ports.ix_push 0 (Item.data img);
          advance_cursor ();
          fired_filter
        end
      | 1 ->
        if keep_now () then None
        else begin
          let img = Item.chunk_exn (ports.ix_pop 0) in
          ports.ix_release img;
          advance_cursor ();
          fired_filter
        end
      | 2 ->
        ignore (ports.ix_pop 0);
        fired_consumeEol
      | 3 ->
        ignore (ports.ix_pop 0);
        ports.ix_push 0 (Item.ctl (Token.eof !frame_idx));
        x := 0;
        y := 0;
        incr frame_idx;
        fired_emitEof
      | _ -> None
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Inset ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" chunk ]
    ~outputs:[ Port.output "out" chunk ]
    ~methods:[] ~make_behaviour ()

let pad ?class_name ?(value = 0.) ~frame ~left ~right ~top ~bottom () =
  if left < 0 || right < 0 || top < 0 || bottom < 0 then
    Err.invalidf "pad margins must be non-negative";
  let out_w = frame.Size.w + left + right in
  let out_h = frame.Size.h + top + bottom in
  let class_name =
    Option.value class_name
      ~default:(Printf.sprintf "Pad [%d,%d,%d,%d]" left right top bottom)
  in
  let make_behaviour () =
    (* Cursor over the *padded* grid; positions inside the original frame
       require an input pixel, margin positions emit the constant. *)
    let ox = ref 0 and oy = ref 0 and frame_idx = ref 0 in
    let in_margin () =
      !ox < left
      || !ox >= left + frame.Size.w
      || !oy < top
      || !oy >= top + frame.Size.h
    in
    let advance io =
      let end_of_row = !ox = out_w - 1 in
      let end_of_frame = end_of_row && !oy = out_h - 1 in
      if end_of_row then begin
        io.Behaviour.push "out" (Item.ctl (Token.eol !oy));
        ox := 0;
        if end_of_frame then begin
          io.Behaviour.push "out" (Item.ctl (Token.eof !frame_idx));
          oy := 0;
          incr frame_idx
        end
        else oy := !oy + 1
      end
      else ox := !ox + 1;
      end_of_frame
    in
    let seen_input = ref false in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      (* Input tokens are informational here — the output schedule below
         emits this kernel's own tokens for the padded geometry — so they
         are consumed eagerly whenever they reach the front. *)
      | Some (Item.Ctl { Token.kind = Token.End_of_line | Token.End_of_frame; _ })
        ->
        ignore (io.pop "in");
        fired_consumeToken
      | Some (Item.Ctl tok) ->
        if io.space "out" < 1 then None
        else begin
          ignore (io.pop "in");
          io.push "out" (Item.ctl tok);
          fired_forwardUser
        end
      | (Some (Item.Data _) | None) as front ->
        if io.space "out" < 3 then None
        else if in_margin () then
          (* Only emit margins of a frame whose data has started arriving,
             otherwise an exhausted input would trigger margins of a frame
             that never comes. *)
          if !seen_input || front <> None then begin
            let px = io.acquire Size.one in
            Image.set px ~x:0 ~y:0 value;
            io.push "out" (Item.data px);
            if advance io then seen_input := false;
            fired_emitPad
          end
          else None
        else (
          match front with
          | None -> None
          | Some _ ->
            let img = Behaviour.pop_data io "in" in
            seen_input := true;
            io.push "out" (Item.data img);
            if advance io then seen_input := false;
            fired_forward)
    in
    (* The padder can self-fire margin pixels of an in-flight frame, so it
       is only provably starved when the input is empty AND the cursor is
       not on a margin position of a started frame. *)
    let starved (io : Behaviour.io) =
      (not (io.has_input "in")) && not (!seen_input && in_margin ())
    in
    (* Slot-indexed twin. [emitPad] has the one genuinely timing-sensitive
       precondition in the stdlib: margins only fire for a frame whose data
       has started arriving, and the recorder may have observed an input
       front where the timed run has none — so the op re-checks
       [seen_input || front present] (and that the front is not a token,
       which the generic path would consume first) and declines
       mutation-free on mismatch. *)
    let advance_ix (ports : Behaviour.ports) =
      let end_of_row = !ox = out_w - 1 in
      let end_of_frame = end_of_row && !oy = out_h - 1 in
      if end_of_row then begin
        ports.ix_push 0 (Item.ctl (Token.eol !oy));
        ox := 0;
        if end_of_frame then begin
          ports.ix_push 0 (Item.ctl (Token.eof !frame_idx));
          oy := 0;
          incr frame_idx
        end
        else oy := !oy + 1
      end
      else ox := !ox + 1;
      end_of_frame
    in
    let op_of ~method_name ~pops:_ ~pushes:_ =
      match method_name with
      | "consumeToken" -> 0
      | "forward" -> 1
      | "emitPad" -> 2
      | _ -> -1
    in
    let one_out = [| 0 |] and no_outs = [||] in
    let space_need _ = 3 in
    let space_outs op = if op = 0 then no_outs else one_out in
    let fire_indexed (ports : Behaviour.ports) op =
      match op with
      | 0 ->
        ignore (ports.ix_pop 0);
        fired_consumeToken
      | 1 ->
        if in_margin () then None
        else begin
          let img = Item.chunk_exn (ports.ix_pop 0) in
          seen_input := true;
          ports.ix_push 0 (Item.data img);
          if advance_ix ports then seen_input := false;
          fired_forward
        end
      | 2 ->
        let front_is_token =
          ports.ix_has 0
          &&
          match ports.ix_peek 0 with
          | Item.Ctl _ -> true
          | Item.Data _ -> false
        in
        if front_is_token || not (in_margin ()) then None
        else if !seen_input || ports.ix_has 0 then begin
          let px = ports.ix_acquire Size.one in
          Image.set px ~x:0 ~y:0 value;
          ports.ix_push 0 (Item.data px);
          if advance_ix ports then seen_input := false;
          fired_emitPad
        end
        else None
      | _ -> None
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Pad ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods:[] ~make_behaviour ()
