open Bp_kernel
open Bp_geometry

let spec ?cycles ~w ~h () =
  let cycles = Option.value cycles ~default:(Costs.median ~w ~h) in
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"runMedian" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let make_behaviour () =
    (* One sort window per behaviour instance, reused across firings. *)
    let scratch = Array.make (w * h) 0. in
    let run_indexed _m ~alloc ~inputs ~outputs =
      let out = alloc Bp_geometry.Size.one in
      Bp_image.Ops.median_into ~scratch inputs.(0) ~w ~h ~dst:out;
      outputs.(0) <- out
    in
    Behaviour.iteration_kernel ~methods ~port_order:([ "in" ], [ "out" ])
      ~run_indexed ()
  in
  Spec.v
    ~class_name:(Printf.sprintf "%dx%d Median" w h)
    ~inputs:[ Port.input "in" (Window.windowed w h) ]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods ~make_behaviour ()
