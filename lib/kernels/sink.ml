open Bp_kernel
module Token = Bp_token.Token

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_consume =
  Some { Behaviour.method_name = "consume"; cycles = 0 }


type collector = {
  mutable closed_groups : Bp_image.Image.t list list;  (* newest first *)
  mutable current_group : Bp_image.Image.t list;  (* newest first *)
  mutable tokens_rev : Token.t list;
}

let collector () =
  { closed_groups = []; current_group = []; tokens_rev = [] }

let reset c =
  c.closed_groups <- [];
  c.current_group <- [];
  c.tokens_rev <- []

let chunks c =
  (* groups are stored newest-first both between and within groups *)
  List.rev c.current_group :: List.map List.rev c.closed_groups
  |> List.rev |> List.concat

let tokens c = List.rev c.tokens_rev

let chunks_between_frames c =
  let groups = List.rev_map List.rev c.closed_groups in
  if c.current_group = [] then groups else groups @ [ List.rev c.current_group ]

let eof_count c =
  List.length
    (List.filter (fun t -> t.Token.kind = Token.End_of_frame) (tokens c))

let spec ?(class_name = "Output") ~window c () =
  let make_behaviour () =
    reset c;
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some _ ->
        (match io.pop "in" with
        | Item.Data img -> c.current_group <- img :: c.current_group
        | Item.Ctl tok ->
          c.tokens_rev <- tok :: c.tokens_rev;
          if tok.Token.kind = Token.End_of_frame then begin
            c.closed_groups <- c.current_group :: c.closed_groups;
            c.current_group <- []
          end);
        fired_consume
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    Behaviour.v ~starved try_step
  in
  Spec.v ~role:Spec.Sink ~class_name
    ~inputs:[ Port.input "in" window ]
    ~outputs:[] ~methods:[] ~make_behaviour ()
