open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image
module Token = Bp_token.Token

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_emit =
  Some { Behaviour.method_name = "emit"; cycles = 0 }


let emissions_per_frame ~frame = Size.area frame

(* The worst-case burst of one scheduled emission: the last pixel of a
   frame is followed by its end-of-line and end-of-frame tokens in the
   same firing. The behaviour requires this much space on every emission
   (a conservative, position-independent guard, so an emission never
   half-completes), and declares it in the spec so the simulator can tell
   a space-blocked source from an exhausted one exactly. *)
let emission_burst = 3

let spec ?(emit_eol = true) ?(class_name = "Input") ~frame ~frames () =
  List.iter
    (fun img ->
      if not (Size.equal (Image.size img) frame) then
        Bp_util.Err.invalidf "source frame extent mismatch: got %s, want %s"
          (Size.to_string (Image.size img))
          (Size.to_string frame))
    frames;
  let make_behaviour () =
    let remaining = ref frames in
    let x = ref 0 and y = ref 0 and frame_idx = ref 0 in
    let try_step (io : Behaviour.io) =
      match !remaining with
      | [] -> None
      | img :: rest ->
        (* One emission may carry pixel + EOL + EOF. *)
        if io.space "out" < emission_burst then None
        else begin
          let pixel = io.acquire Size.one in
          (* Raw move: the source fires once per pixel, so a boxed
             get/set pair here costs four words per event. *)
          Array.unsafe_set (Image.unsafe_data pixel) 0
            (Array.unsafe_get (Image.unsafe_data img)
               ((!y * frame.Size.w) + !x));
          io.push "out" (Item.data pixel);
          let end_of_row = !x = frame.Size.w - 1 in
          let end_of_frame = end_of_row && !y = frame.Size.h - 1 in
          if end_of_row && emit_eol then
            io.push "out" (Item.ctl (Token.eol !y));
          if end_of_frame then begin
            io.push "out" (Item.ctl (Token.eof !frame_idx));
            x := 0;
            y := 0;
            incr frame_idx;
            remaining := rest
          end
          else if end_of_row then begin
            x := 0;
            incr y
          end
          else incr x;
          fired_emit
        end
    in
    (* Sources are self-driven emitters: the event queue, not a decline
       oracle, schedules them. *)
    Behaviour.v try_step
  in
  Spec.v ~role:Spec.Source ~class_name ~emission_burst ~inputs:[]
    ~outputs:[ Port.output "out" Window.pixel ]
    ~methods:[] ~make_behaviour ()

let const ?(class_name = "Const") ~chunk () =
  let size = Image.size chunk in
  let window = Window.v ~step:(Step.of_size size) size in
  let make_behaviour () =
    let sent = ref false in
    let try_step (io : Behaviour.io) =
      if !sent then None
      else if io.space "out" < 1 then None
      else begin
        io.push "out" (Item.data (Image.copy chunk));
        sent := true;
        fired_emit
      end
    in
    Behaviour.v try_step
  in
  Spec.v ~role:Spec.Const_source ~class_name ~inputs:[]
    ~outputs:[ Port.output "out" window ]
    ~methods:[] ~make_behaviour ()
