(** Application inputs.

    A [Source] streams frames pixel-by-pixel in scan-line order at a fixed
    real-time rate, inserting end-of-line and end-of-frame tokens as the
    paper's data inputs do. The simulator drives source behaviours on the
    rate's schedule (one attempt per element period); the behaviour itself
    only knows what to emit next.

    A [Const_source] provides configuration data (convolution coefficients,
    histogram bin bounds): it emits its chunk exactly once at start-up and
    carries no tokens. *)

val spec :
  ?emit_eol:bool ->
  ?class_name:string ->
  frame:Bp_geometry.Size.t ->
  frames:Bp_image.Image.t list ->
  unit ->
  Bp_kernel.Spec.t
(** [spec ~frame ~frames ()] emits each image of [frames] (all must have
    extent [frame]) as a 1×1 pixel stream with tokens. After the last frame
    the source is exhausted. *)

val const :
  ?class_name:string -> chunk:Bp_image.Image.t -> unit -> Bp_kernel.Spec.t
(** [const ~chunk ()] is a constant source emitting [chunk] once. *)

val emissions_per_frame : frame:Bp_geometry.Size.t -> int
(** Scheduled emission slots per frame (= pixel count; tokens ride along
    with the pixel they follow). *)

val emission_burst : int
(** The worst-case items one emission pushes (pixel + end-of-line +
    end-of-frame at a frame corner). A source only fires with this much
    space on its output, and declares the same bound as
    [Spec.emission_burst] so the simulator's blocked-vs-exhausted test is
    exact rather than a duplicated magic number. *)
