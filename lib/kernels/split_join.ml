open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image
module Token = Bp_token.Token
module Err = Bp_util.Err

(* Interned success values: a fresh [Some fired] per firing would be
   a steady five-word allocation on the simulator's hottest path. *)
let fired_route =
  Some { Behaviour.method_name = "route"; cycles = Costs.split }
let fired_broadcast =
  Some { Behaviour.method_name = "broadcast"; cycles = Costs.split }
let fired_collect =
  Some { Behaviour.method_name = "collect"; cycles = Costs.split }
let fired_mergeToken =
  Some { Behaviour.method_name = "mergeToken"; cycles = Costs.split }
let fired_routeColumn =
  Some { Behaviour.method_name = "routeColumn"; cycles = Costs.split }
let fired_copy =
  Some { Behaviour.method_name = "copy"; cycles = 1 }


let out_names ways = List.init ways (fun k -> Printf.sprintf "out%d" k)
let in_names ways = List.init ways (fun k -> Printf.sprintf "in%d" k)

let split ?class_name ?pattern ~window ~ways () =
  if ways < 2 then Err.invalidf "split needs at least 2 ways";
  let pattern = Option.value pattern ~default:(Array.make ways 1) in
  if Array.length pattern <> ways then
    Err.invalidf "split pattern length %d does not match %d ways"
      (Array.length pattern) ways;
  Array.iter
    (fun p ->
      if p <= 0 then Err.invalidf "split pattern entries must be positive")
    pattern;
  let class_name = Option.value class_name ~default:"Split" in
  let outs = out_names ways in
  let make_behaviour () =
    let branch = ref 0 and sent = ref 0 in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some (Item.Data _) ->
        let target = List.nth outs !branch in
        if io.space target < 1 then None
        else begin
          let img = Behaviour.pop_data io "in" in
          io.push target (Item.data img);
          incr sent;
          if !sent >= pattern.(!branch) then begin
            sent := 0;
            branch := (!branch + 1) mod ways
          end;
          fired_route
        end
      | Some (Item.Ctl tok) ->
        if List.exists (fun o -> io.space o < 1) outs then None
        else begin
          ignore (io.pop "in");
          List.iter (fun o -> io.push o (Item.ctl tok)) outs;
          if tok.Token.kind = Token.End_of_frame then begin
            branch := 0;
            sent := 0
          end;
          fired_broadcast
        end
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    (* Slot-indexed twin: op 0 broadcasts a token to every branch, op 1+k
       routes one data chunk to branch k (resolved from the entry's single
       push slot; the fire re-checks the round-robin cursor and declines
       mutation-free on mismatch). *)
    let all_outs = Array.init ways Fun.id in
    let route_outs = Array.init ways (fun k -> [| k |]) in
    let op_of ~method_name ~pops:_ ~pushes =
      match method_name with
      | "broadcast" -> 0
      | "route" when Array.length pushes = 1 -> 1 + pushes.(0)
      | _ -> -1
    in
    let space_need _ = 1 in
    let space_outs op = if op = 0 then all_outs else route_outs.(op - 1) in
    let fire_indexed (ports : Behaviour.ports) op =
      if op = 0 then begin
        match ports.ix_pop 0 with
        | Item.Ctl tok ->
          for k = 0 to ways - 1 do
            ports.ix_push k (Item.ctl tok)
          done;
          if tok.Token.kind = Token.End_of_frame then begin
            branch := 0;
            sent := 0
          end;
          fired_broadcast
        | Item.Data _ -> Err.graphf "split: indexed broadcast popped data"
      end
      else begin
        let k = op - 1 in
        if !branch <> k then None
        else begin
          let img = Item.chunk_exn (ports.ix_pop 0) in
          ports.ix_push k (Item.data img);
          incr sent;
          if !sent >= pattern.(!branch) then begin
            sent := 0;
            branch := (!branch + 1) mod ways
          end;
          fired_route
        end
      end
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Split ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" window ]
    ~outputs:(List.map (fun o -> Port.output o window) outs)
    ~methods:[] ~make_behaviour ()

let join ?class_name ?pattern ~window ~ways () =
  if ways < 2 then Err.invalidf "join needs at least 2 ways";
  let pattern = Option.value pattern ~default:(Array.make ways 1) in
  if Array.length pattern <> ways then
    Err.invalidf "join pattern length %d does not match %d ways"
      (Array.length pattern) ways;
  Array.iter
    (fun p -> if p <= 0 then Err.invalidf "join pattern entries must be positive")
    pattern;
  let class_name = Option.value class_name ~default:"Join" in
  let ins = in_names ways in
  let ins_arr = Array.of_list ins in
  let make_behaviour () =
    let branch = ref 0 and taken = ref 0 in
    let advance () =
      incr taken;
      if !taken >= pattern.(!branch) then begin
        taken := 0;
        branch := (!branch + 1) mod ways
      end
    in
    let try_step (io : Behaviour.io) =
      let current = ins_arr.(!branch) in
      match io.peek current with
      | None -> None
      | Some (Item.Data _) ->
        if io.space "out" < 1 then None
        else begin
          let img = Behaviour.pop_data io current in
          io.push "out" (Item.data img);
          advance ();
          fired_collect
        end
      | Some (Item.Ctl tok) ->
        (* Merge: consume the token copy from every branch, emit once. *)
        let all_match =
          List.for_all
            (fun i ->
              match io.peek i with
              | Some (Item.Ctl t) -> Token.kind_equal t.Token.kind tok.Token.kind
              | Some (Item.Data _) | None -> false)
            ins
        in
        if not all_match then None
        else if io.space "out" < 1 then None
        else begin
          List.iter (fun i -> ignore (io.pop i)) ins;
          io.push "out" (Item.ctl tok);
          if tok.Token.kind = Token.End_of_frame then begin
            branch := 0;
            taken := 0
          end;
          fired_mergeToken
        end
    in
    (* Every join branch starts by peeking the current round-robin input,
       so an empty front there is a guaranteed decline. *)
    let starved (io : Behaviour.io) =
      not (io.has_input ins_arr.(!branch))
    in
    (* Slot-indexed twin: op 0 merges one token copy from every branch,
       op 1+k collects one data chunk from branch k. *)
    let one_out = [| 0 |] in
    let op_of ~method_name ~pops ~pushes:_ =
      match method_name with
      | "mergeToken" -> 0
      | "collect" when Array.length pops = 1 -> 1 + pops.(0)
      | _ -> -1
    in
    let space_need _ = 1 in
    let space_outs _ = one_out in
    let fire_indexed (ports : Behaviour.ports) op =
      if op = 0 then begin
        match ports.ix_peek !branch with
        | Item.Ctl tok ->
          for i = 0 to ways - 1 do
            ignore (ports.ix_pop i)
          done;
          ports.ix_push 0 (Item.ctl tok);
          if tok.Token.kind = Token.End_of_frame then begin
            branch := 0;
            taken := 0
          end;
          fired_mergeToken
        | Item.Data _ -> None
      end
      else begin
        let k = op - 1 in
        if !branch <> k then None
        else begin
          let img = Item.chunk_exn (ports.ix_pop k) in
          ports.ix_push 0 (Item.data img);
          advance ();
          fired_collect
        end
      end
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Join ~class_name ~parallelization:Spec.Serial
    ~inputs:(List.map (fun i -> Port.input i window) ins)
    ~outputs:[ Port.output "out" window ]
    ~methods:[] ~make_behaviour ()

let column_split ?class_name ~ranges ~frame () =
  let parts = Array.length ranges in
  if parts < 2 then Err.invalidf "column split needs at least 2 stripes";
  let w = frame.Size.w in
  Array.iteri
    (fun k (c0, c1) ->
      if c0 < 0 || c1 > w || c0 >= c1 then
        Err.invalidf "column split: bad range [%d,%d) for width %d" c0 c1 w;
      if k = 0 && c0 <> 0 then
        Err.invalidf "column split: first range must start at column 0";
      if k = parts - 1 && c1 <> w then
        Err.invalidf "column split: last range must end at column %d" w;
      if k > 0 then begin
        let p0, p1 = ranges.(k - 1) in
        if c0 > p1 then
          Err.invalidf "column split: gap between ranges %d and %d" (k - 1) k;
        if c0 <= p0 then
          Err.invalidf "column split: ranges must advance monotonically"
      end)
    ranges;
  let class_name = Option.value class_name ~default:"Split" in
  let outs = out_names parts in
  let make_behaviour () =
    let x = ref 0 in
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some (Item.Data _) ->
        let targets =
          List.filteri
            (fun k _ ->
              let c0, c1 = ranges.(k) in
              !x >= c0 && !x < c1)
            outs
        in
        if List.exists (fun o -> io.space o < 1) targets then None
        else begin
          let img = Behaviour.pop_data io "in" in
          (* Overlap columns go to two stripes; each channel must own its
             chunk, so stripes beyond the first get pool-backed copies. *)
          List.iteri
            (fun k o ->
              let chunk =
                if k = 0 then img
                else begin
                  let d = io.acquire (Image.size img) in
                  Image.blit ~src:img ~dst:d ~x:0 ~y:0;
                  d
                end
              in
              io.push o (Item.data chunk))
            targets;
          x := (!x + 1) mod w;
          fired_routeColumn
        end
      | Some (Item.Ctl tok) ->
        if List.exists (fun o -> io.space o < 1) outs then None
        else begin
          ignore (io.pop "in");
          List.iter (fun o -> io.push o (Item.ctl tok)) outs;
          if tok.Token.kind = Token.End_of_frame then x := 0;
          fired_broadcast
        end
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    (* Slot-indexed twin: op 0 broadcasts, op 1 routes a column. The
       column targets depend on the cursor, so op 1 re-checks space on the
       computed targets itself (its [space_outs] is empty — the engine
       never batch-arms it) and declines mutation-free when blocked. *)
    let all_outs = Array.init parts Fun.id in
    let no_outs = [||] in
    let op_of ~method_name ~pops:_ ~pushes:_ =
      match method_name with
      | "broadcast" -> 0
      | "routeColumn" -> 1
      | _ -> -1
    in
    let space_need _ = 1 in
    let space_outs op = if op = 0 then all_outs else no_outs in
    let target_now k =
      let c0, c1 = ranges.(k) in
      !x >= c0 && !x < c1
    in
    let fire_indexed (ports : Behaviour.ports) op =
      if op = 0 then begin
        match ports.ix_pop 0 with
        | Item.Ctl tok ->
          for k = 0 to parts - 1 do
            ports.ix_push k (Item.ctl tok)
          done;
          if tok.Token.kind = Token.End_of_frame then x := 0;
          fired_broadcast
        | Item.Data _ -> Err.graphf "column split: indexed broadcast on data"
      end
      else begin
        let blocked = ref false in
        for k = 0 to parts - 1 do
          if target_now k && ports.ix_space k < 1 then blocked := true
        done;
        if !blocked then None
        else begin
          let img = Item.chunk_exn (ports.ix_pop 0) in
          (* Overlap columns go to two stripes; each channel must own its
             chunk, so stripes beyond the first get pool-backed copies. *)
          let first = ref true in
          for k = 0 to parts - 1 do
            if target_now k then begin
              let chunk =
                if !first then img
                else begin
                  let d = ports.ix_acquire (Image.size img) in
                  Image.blit ~src:img ~dst:d ~x:0 ~y:0;
                  d
                end
              in
              first := false;
              ports.ix_push k (Item.data chunk)
            end
          done;
          x := (!x + 1) mod w;
          fired_routeColumn
        end
      end
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Split ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:(List.map (fun o -> Port.output o Window.pixel) outs)
    ~methods:[] ~make_behaviour ()

let replicate ?class_name ~window () =
  let class_name = Option.value class_name ~default:"Replicate" in
  let make_behaviour () =
    let try_step (io : Behaviour.io) =
      match io.peek "in" with
      | None -> None
      | Some _ ->
        if io.space "out" < 1 then None
        else begin
          io.push "out" (io.pop "in");
          fired_copy
        end
    in
    let starved (io : Behaviour.io) = not (io.has_input "in") in
    (* Slot-indexed twin: one op, any item kind, pure pass-through. *)
    let one_out = [| 0 |] in
    let op_of ~method_name ~pops:_ ~pushes:_ =
      if String.equal method_name "copy" then 0 else -1
    in
    let space_need _ = 1 in
    let space_outs _ = one_out in
    let fire_indexed (ports : Behaviour.ports) op =
      if op <> 0 then None
      else begin
        ports.ix_push 0 (ports.ix_pop 0);
        fired_copy
      end
    in
    let indexed = { Behaviour.op_of; space_need; space_outs; fire_indexed } in
    Behaviour.v ~starved ~indexed try_step
  in
  Spec.v ~role:Spec.Replicate ~class_name ~parallelization:Spec.Serial
    ~inputs:[ Port.input "in" window ]
    ~outputs:[ Port.output "out" window ]
    ~methods:[] ~make_behaviour ()

(* Window-origin counts per stripe when splitting a frame into [parts]
   column stripes. *)
let origin_counts ~frame_w ~(window : Window.t) ~parts =
  let w = window.Window.size.Size.w and sx = window.Window.step.Step.sx in
  if frame_w < w then
    Err.invalidf "stripe_ranges: frame width %d below window %d" frame_w w;
  let n = ((frame_w - w) / sx) + 1 in
  if n < parts then
    Err.invalidf "stripe_ranges: only %d window columns for %d stripes" n
      parts;
  Array.init parts (fun k -> (n * (k + 1) / parts) - (n * k / parts))

let stripe_ranges ~frame_w ~window ~parts =
  let counts = origin_counts ~frame_w ~window ~parts in
  let w = window.Window.size.Size.w and sx = window.Window.step.Step.sx in
  let ranges = Array.make parts (0, 0) in
  let first = ref 0 in
  Array.iteri
    (fun k cnt ->
      let o_first = !first * sx and o_last = (!first + cnt - 1) * sx in
      let a = o_first and b = o_last + w in
      ranges.(k) <- (a, b);
      first := !first + cnt)
    counts;
  (* Stretch the last stripe to the frame edge so every input column has a
     home even when the step leaves unused trailing columns. *)
  (let a, _ = ranges.(parts - 1) in
   ranges.(parts - 1) <- (a, frame_w));
  ranges

let stripe_windows_per_row ~frame_w ~window ~ranges =
  ignore frame_w;
  let w = window.Window.size.Size.w and sx = window.Window.step.Step.sx in
  Array.map (fun (a, b) -> ((b - a - w) / sx) + 1) ranges
