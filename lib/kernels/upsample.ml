open Bp_kernel
open Bp_geometry
module Image = Bp_image.Image

type mode = Hold | Zero_stuff

let reference ~mode ~fx ~fy img =
  let w = Image.width img and h = Image.height img in
  Image.init (Size.v (w * fx) (h * fy)) (fun ~x ~y ->
      match mode with
      | Hold -> Image.get img ~x:(x / fx) ~y:(y / fy)
      | Zero_stuff ->
        if x mod fx = 0 && y mod fy = 0 then
          Image.get img ~x:(x / fx) ~y:(y / fy)
        else 0.)

let spec ?(cycles = 3) ?(mode = Hold) ~fx ~fy () =
  if fx <= 0 || fy <= 0 then
    Bp_util.Err.invalidf "upsample: factors %dx%d must be positive" fx fy;
  let methods =
    [
      Method_spec.on_data ~cycles ~name:"expand" ~inputs:[ "in" ]
        ~outputs:[ "out" ] ();
    ]
  in
  let run_indexed _m ~alloc ~inputs ~outputs =
    let v = Image.get inputs.(0) ~x:0 ~y:0 in
    let out = alloc (Size.v fx fy) in
    (match mode with
    | Hold -> Image.fill out v
    | Zero_stuff ->
      (* Acquired chunks are all-zero; only the corner needs writing. *)
      Image.set out ~x:0 ~y:0 v);
    outputs.(0) <- out
  in
  Spec.v
    ~class_name:(Printf.sprintf "Upsample %dx%d" fx fy)
    ~inputs:[ Port.input "in" Window.pixel ]
    ~outputs:[ Port.output "out" (Window.block fx fy) ]
    ~methods
    ~make_behaviour:(fun () ->
      Behaviour.iteration_kernel ~methods ~port_order:([ "in" ], [ "out" ])
        ~run_indexed ())
    ()
