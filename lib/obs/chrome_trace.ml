module Graph = Bp_graph.Graph
module Sim = Bp_sim.Sim
module Trace = Bp_sim.Trace
module Pipeline = Bp_compiler.Pipeline

let us_of_s s = 1e6 *. s

(* Process ids: 0 = the simulated chip, 1 = the compiler. *)
let sim_pid = 0
let compiler_pid = 1

let metadata ~pid ?tid ~name ~value () =
  let base =
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("ts", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]
  in
  match tid with
  | None -> Json.Obj base
  | Some t -> Json.Obj (base @ [ ("tid", Json.Int t) ])

let firing_event (f : Trace.firing) =
  Json.Obj
    [
      ("name", Str (f.Trace.kernel ^ "." ^ f.Trace.method_name));
      ("cat", Str "firing");
      ("ph", Str "X");
      ("ts", Json.float (us_of_s f.Trace.at_s));
      ("dur", Json.float (us_of_s f.Trace.service_s));
      ("pid", Int sim_pid);
      ("tid", Int f.Trace.proc);
      ( "args",
        Obj
          [
            ("kernel", Str f.Trace.kernel);
            ("method", Str f.Trace.method_name);
          ] );
    ]

let counter_event ~name ~ts_us ~depth =
  Json.Obj
    [
      ("name", Str name);
      ("cat", Str "channel");
      ("ph", Str "C");
      ("ts", Json.float ts_us);
      ("pid", Int sim_pid);
      ("args", Obj [ ("items", Int depth) ]);
    ]

(* Stall tracks ride above the firing tracks: PE p's stalls live on
   thread id [stall_tid_base + p]. *)
let stall_tid_base = 1000

let stall_event ~graph ~kernel ~tid ~ts_us ~dur_us ~state ~chan =
  let cname =
    (* Perfetto reserved color names: input starvation amber, output
       backpressure red. *)
    match state with
    | Sim.Ks_blocked_output -> "terrible"
    | _ -> "bad"
  in
  Json.Obj
    [
      ("name", Str (kernel ^ " " ^ Sim.kernel_state_name state));
      ("cat", Str "stall");
      ("ph", Str "X");
      ("ts", Json.float ts_us);
      ("dur", Json.float dur_us);
      ("pid", Int sim_pid);
      ("tid", Int tid);
      ("cname", Str cname);
      ( "args",
        Obj
          (("kernel", Json.Str kernel)
          ::
          (match chan with
          | None -> []
          | Some id ->
              [
                ("channel", Json.Int id);
                ("channel_label", Json.Str (Instrument.channel_label graph id));
              ])) );
    ]

(* One async begin/end pair per frame: Perfetto draws the birth-to-arrival
   span, i.e. the frame's end-to-end latency. Ids must be unique per
   concurrently open async track; frames of one sink never overlap, so
   the sink id alone suffices. *)
let frame_flow_events ~sink (f : Health.frame) =
  let base ph ts =
    [
      ("name", Json.Str ("frame@" ^ sink));
      ("cat", Json.Str "frame");
      ("ph", Json.Str ph);
      ("id", Json.Str sink);
      ("ts", Json.float (us_of_s ts));
      ("pid", Json.Int sim_pid);
      ("tid", Json.Int 0);
    ]
  in
  [
    ( us_of_s f.Health.f_birth_s,
      Json.Obj
        (base "b" f.Health.f_birth_s
        @ [
            ( "args",
              Json.Obj
                [
                  ("index", Json.Int f.Health.f_index);
                  ("missed", Json.Bool f.Health.f_missed);
                ] );
          ]) );
    ( us_of_s f.Health.f_arrival_s,
      Json.Obj
        (base "e" f.Health.f_arrival_s
        @ [
            ( "args",
              Json.Obj
                [
                  ("index", Json.Int f.Health.f_index);
                  ( "latency_us",
                    Json.float (us_of_s f.Health.f_latency_s) );
                ] );
          ]) );
  ]

let pass_events passes =
  let _, rev =
    List.fold_left
      (fun (t_us, acc) (p : Pipeline.pass_timing) ->
        let dur = us_of_s p.Pipeline.wall_s in
        let ev =
          Json.Obj
            [
              ("name", Str p.Pipeline.pass);
              ("cat", Str "compile-pass");
              ("ph", Str "X");
              ("ts", Json.float t_us);
              ("dur", Json.float dur);
              ("pid", Int compiler_pid);
              ("tid", Int 0);
              ( "args",
                Obj
                  [
                    ("nodes_before", Int p.Pipeline.nodes_before);
                    ("nodes_after", Int p.Pipeline.nodes_after);
                    ("channels_before", Int p.Pipeline.channels_before);
                    ("channels_after", Int p.Pipeline.channels_after);
                  ] );
            ]
        in
        (t_us +. dur, (t_us, ev) :: acc))
      (0., []) passes
  in
  List.rev rev

let of_run ?(process_name = "bp-sim") ?compile_passes ?instrument ?health
    ~graph ~trace () =
  let firings = Trace.firings trace in
  let procs =
    List.fold_left (fun acc (f : Trace.firing) -> max acc f.Trace.proc) (-1)
      firings
  in
  let stall_procs =
    match health with
    | None -> []
    | Some h ->
        List.filter_map
          (fun (_, proc, _) -> if proc >= 0 then Some proc else None)
          (Health.intervals h)
        |> List.sort_uniq compare
  in
  let meta =
    metadata ~pid:sim_pid ~name:"process_name" ~value:process_name ()
    :: List.concat
         [
           List.init (procs + 1) (fun p ->
               metadata ~pid:sim_pid ~tid:p ~name:"thread_name"
                 ~value:(Printf.sprintf "PE %d" p) ());
           List.map
             (fun p ->
               metadata ~pid:sim_pid ~tid:(stall_tid_base + p)
                 ~name:"thread_name"
                 ~value:(Printf.sprintf "PE %d stalls" p) ())
             stall_procs;
           (match compile_passes with
           | Some _ ->
             [
               metadata ~pid:compiler_pid ~name:"process_name"
                 ~value:"bpc compile" ();
               metadata ~pid:compiler_pid ~tid:0 ~name:"thread_name"
                 ~value:"passes" ();
             ]
           | None -> []);
         ]
  in
  let timed =
    List.concat
      [
        List.map (fun f -> (us_of_s f.Trace.at_s, firing_event f)) firings;
        (match instrument with
        | None -> []
        | Some inst ->
          List.concat_map
            (fun (id, samples) ->
              let name =
                Printf.sprintf "chan.%d %s" id
                  (Instrument.channel_label graph id)
              in
              List.map
                (fun (t_s, depth) ->
                  let ts_us = us_of_s t_s in
                  (ts_us, counter_event ~name ~ts_us ~depth))
                samples)
            (Instrument.channel_series inst));
        (match health with
        | None -> []
        | Some h ->
          List.concat
            [
              List.concat_map
                (fun ((node : Graph.node), proc, ivs) ->
                  if proc < 0 then []
                  else
                    List.filter_map
                      (fun (iv : Health.interval) ->
                        match iv.Health.iv_state with
                        | Sim.Ks_blocked_input | Sim.Ks_blocked_output
                          when iv.Health.iv_end > iv.Health.iv_start ->
                            let ts_us = us_of_s iv.Health.iv_start in
                            Some
                              ( ts_us,
                                stall_event ~graph ~kernel:node.Graph.name
                                  ~tid:(stall_tid_base + proc) ~ts_us
                                  ~dur_us:
                                    (us_of_s
                                       (iv.Health.iv_end -. iv.Health.iv_start))
                                  ~state:iv.Health.iv_state
                                  ~chan:iv.Health.iv_chan )
                        | _ -> None)
                      ivs)
                (Health.intervals h);
              List.concat_map
                (fun ((sink : Graph.node), frames) ->
                  List.concat_map
                    (frame_flow_events ~sink:sink.Graph.name)
                    frames)
                (Health.frames h);
            ]);
        (match compile_passes with
        | None -> []
        | Some passes -> pass_events passes);
      ]
  in
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) timed
  in
  (* Metadata first (ts 0), then everything else sorted by ts: the schema
     promises monotone timestamps, which tests and downstream consumers
     rely on. *)
  let events = meta @ List.map snd sorted in
  Json.Obj
    [
      ("traceEvents", List events); ("displayTimeUnit", Str "ms");
    ]

let write_file = Json.write_file
