(** Chrome [trace_event] export — load the result in Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing].

    Renders a recorded {!Bp_sim.Trace.t} as one track ("thread") per
    processor of complete events (["ph":"X"]) — one slice per kernel
    firing — plus, when an {!Instrument} is supplied, one counter track
    (["ph":"C"]) per channel with its queue occupancy over time, and, when
    compile pass timings are supplied, a second process with one slice per
    compiler pass. When a finalized {!Health} is supplied, each processor
    additionally gets a stall track (thread id [1000 + proc]) of colored
    spans — blocked-on-input vs blocked-on-output, with the culprit
    channel in [args] — and every frame becomes an async flow event
    (["ph":"b"]/["ph":"e"]) from its source birth to its sink
    end-of-frame, so per-frame latency is visible as a span. Timestamps
    are microseconds of *simulated* time (compiler passes: microseconds
    of wall time, on their own timeline starting at 0). The full schema
    is documented in docs/OBSERVABILITY.md. *)

val of_run :
  ?process_name:string ->
  ?compile_passes:Bp_compiler.Pipeline.pass_timing list ->
  ?instrument:Instrument.t ->
  ?health:Health.t ->
  graph:Bp_graph.Graph.t ->
  trace:Bp_sim.Trace.t ->
  unit ->
  Json.t
(** The trace document: [{"traceEvents": [...], "displayTimeUnit": "ms"}]
    with events sorted by timestamp (metadata first). [process_name]
    defaults to ["bp-sim"]. *)

val write_file : path:string -> Json.t -> unit
(** Alias of {!Json.write_file}, so callers need only this module. *)
