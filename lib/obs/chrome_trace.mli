(** Chrome [trace_event] export — load the result in Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing].

    Renders a recorded {!Bp_sim.Trace.t} as one track ("thread") per
    processor of complete events (["ph":"X"]) — one slice per kernel
    firing — plus, when an {!Instrument} is supplied, one counter track
    (["ph":"C"]) per channel with its queue occupancy over time, and, when
    compile pass timings are supplied, a second process with one slice per
    compiler pass. Timestamps are microseconds of *simulated* time
    (compiler passes: microseconds of wall time, on their own timeline
    starting at 0). The full schema is documented in
    docs/OBSERVABILITY.md. *)

val of_run :
  ?process_name:string ->
  ?compile_passes:Bp_compiler.Pipeline.pass_timing list ->
  ?instrument:Instrument.t ->
  graph:Bp_graph.Graph.t ->
  trace:Bp_sim.Trace.t ->
  unit ->
  Json.t
(** The trace document: [{"traceEvents": [...], "displayTimeUnit": "ms"}]
    with events sorted by timestamp (metadata first). [process_name]
    defaults to ["bp-sim"]. *)

val write_file : path:string -> Json.t -> unit
(** Alias of {!Json.write_file}, so callers need only this module. *)
