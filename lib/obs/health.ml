module Graph = Bp_graph.Graph
module Sim = Bp_sim.Sim
module Mapping = Bp_sim.Mapping
module Rate = Bp_geometry.Rate

type breakdown = {
  busy_s : float;
  blocked_input_s : float;
  blocked_output_s : float;
  idle_s : float;
}

type interval = {
  iv_state : Sim.kernel_state;
  iv_start : float;
  iv_end : float;
  iv_chan : int option;
}

type frame = {
  f_index : int;
  f_birth_s : float;
  f_arrival_s : float;
  f_latency_s : float;
  f_deadline_s : float option;
  f_missed : bool;
}

type bottleneck = {
  b_kernel : Graph.node;
  b_blocked_s : float;
  b_chan : Graph.channel option;
  b_culprit : Graph.node option;
  b_ranking : (Graph.node * breakdown) list;
}

let state_index = function
  | Sim.Ks_busy -> 0
  | Sim.Ks_blocked_input -> 1
  | Sim.Ks_blocked_output -> 2
  | Sim.Ks_idle -> 3

(* One track per on-chip kernel: the open interval being accumulated, the
   closed intervals kept for export, time totals per state, and blocked
   time attributed per culprit channel. *)
type track = {
  t_node : Graph.node;
  mutable t_proc : int;  (* -1 until first examined *)
  mutable t_state : Sim.kernel_state;
  mutable t_chan : int option;
  mutable t_since : float;
  mutable t_rev : interval list;  (* closed intervals, newest first *)
  mutable t_kept : int;
  mutable t_dropped : int;
  t_acc : float array;  (* seconds per state, indexed by state_index *)
  t_chan_acc : (int, float ref) Hashtbl.t;  (* blocked seconds per chan *)
}

type sink_frames = { sf_node : Graph.node; sf_frames : frame list }

type t = {
  graph : Graph.t;
  m : Metrics.t;
  tracks : (Graph.node_id, track) Hashtbl.t;
  interval_limit : int;
  mutable finalized : bool;
  mutable duration_s : float;
  mutable period_s : float option;
  mutable frames : sink_frames list;  (* in sink id order, after finalize *)
  mutable misses : int;
}

let create ?(interval_limit = 500_000) ~graph () =
  let tracks = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      if Mapping.is_on_chip n then
        Hashtbl.replace tracks n.Graph.id
          {
            t_node = n;
            t_proc = -1;
            t_state = Sim.Ks_idle;
            t_chan = None;
            t_since = 0.;
            t_rev = [];
            t_kept = 0;
            t_dropped = 0;
            t_acc = Array.make 4 0.;
            t_chan_acc = Hashtbl.create 4;
          })
    (Graph.nodes graph);
  {
    graph;
    m = Metrics.create ();
    tracks;
    interval_limit;
    finalized = false;
    duration_s = 0.;
    period_s = None;
    frames = [];
    misses = 0;
  }

let close_interval t (tr : track) ~until =
  let len = until -. tr.t_since in
  tr.t_acc.(state_index tr.t_state) <- tr.t_acc.(state_index tr.t_state) +. len;
  (match (tr.t_state, tr.t_chan) with
  | (Sim.Ks_blocked_input | Sim.Ks_blocked_output), Some c ->
      let r =
        match Hashtbl.find_opt tr.t_chan_acc c with
        | Some r -> r
        | None ->
            let r = ref 0. in
            Hashtbl.replace tr.t_chan_acc c r;
            r
      in
      r := !r +. len
  | _ -> ());
  if tr.t_kept < t.interval_limit then begin
    tr.t_rev <-
      {
        iv_state = tr.t_state;
        iv_start = tr.t_since;
        iv_end = until;
        iv_chan = tr.t_chan;
      }
      :: tr.t_rev;
    tr.t_kept <- tr.t_kept + 1
  end
  else tr.t_dropped <- tr.t_dropped + 1

let state_observer t ~time_s ~node ~proc ~state ~chan =
  match Hashtbl.find_opt t.tracks node.Graph.id with
  | None -> ()
  | Some tr ->
      tr.t_proc <- proc;
      close_interval t tr ~until:time_s;
      tr.t_state <- state;
      tr.t_chan <- chan;
      tr.t_since <- time_s

(* The declared frame period of the graph's first timed source, if any. *)
let declared_period graph =
  let rec first = function
    | [] -> None
    | (n : Graph.node) :: rest -> (
        match n.Graph.meta with
        | Graph.Source_meta { rate; _ } -> Some (Rate.frame_period_s rate)
        | _ -> first rest)
  in
  first (Graph.sources graph)

(* Merge per-source birth lists into one per-frame-index birth: frame k is
   born when the first source emits its k-th frame's first pixel. *)
let merged_births (result : Sim.result) =
  let n =
    List.fold_left
      (fun acc (_, l) -> max acc (List.length l))
      0 result.Sim.source_frame_births
  in
  let births = Array.make n infinity in
  List.iter
    (fun (_, l) ->
      List.iteri (fun k b -> if b < births.(k) then births.(k) <- b) l)
    result.Sim.source_frame_births;
  births

let sink_frame_list births ~period_s ~tolerance eofs =
  let t0 = match eofs with [] -> 0. | t :: _ -> t in
  List.mapi
    (fun k arrival ->
      if k < Array.length births && births.(k) < infinity then
        let deadline =
          match period_s with
          | None -> None
          | Some p -> Some (t0 +. (float_of_int k *. p *. (1. +. tolerance)))
        in
        let missed =
          match deadline with None -> false | Some d -> arrival > d
        in
        Some
          {
            f_index = k;
            f_birth_s = births.(k);
            f_arrival_s = arrival;
            f_latency_s = arrival -. births.(k);
            f_deadline_s = deadline;
            f_missed = missed;
          }
      else None)
    eofs
  |> List.filter_map Fun.id

let finalize t ~(result : Sim.result) ?period_s ?(tolerance = 0.05) () =
  if t.finalized then invalid_arg "Health.finalize: already finalized";
  t.finalized <- true;
  t.duration_s <- result.Sim.duration_s;
  let period_s =
    match period_s with Some _ -> period_s | None -> declared_period t.graph
  in
  t.period_s <- period_s;
  Metrics.set t.m "sim.duration_s" t.duration_s;
  (* Close every kernel's open interval at the end of the run and derive
     the per-kernel time-breakdown gauges. *)
  Hashtbl.iter
    (fun _ tr ->
      close_interval t tr ~until:t.duration_s;
      let name = tr.t_node.Graph.name in
      Metrics.set t.m (Printf.sprintf "kernel.%s.busy_s" name) tr.t_acc.(0);
      Metrics.set t.m
        (Printf.sprintf "kernel.%s.blocked_on_input_s" name)
        tr.t_acc.(1);
      Metrics.set t.m
        (Printf.sprintf "kernel.%s.blocked_on_output_s" name)
        tr.t_acc.(2);
      Metrics.set t.m (Printf.sprintf "kernel.%s.idle_s" name) tr.t_acc.(3))
    t.tracks;
  (* Channel high-watermarks against the compiled capacities. *)
  List.iter
    (fun (id, depth) ->
      let cap = (Graph.channel t.graph id).Graph.capacity in
      Metrics.set t.m (Printf.sprintf "chan.%d.hwm" id) (float_of_int depth);
      Metrics.set t.m
        (Printf.sprintf "chan.%d.capacity" id)
        (float_of_int cap);
      if cap > 0 then
        Metrics.set t.m
          (Printf.sprintf "chan.%d.hwm_frac" id)
          (float_of_int depth /. float_of_int cap))
    result.Sim.channel_depths;
  (* Per-frame end-to-end latency and deadline accounting. *)
  let births = merged_births result in
  t.frames <-
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      result.Sim.sink_eofs
    |> List.map (fun (sink_id, eofs) ->
           let sf_node = Graph.node t.graph sink_id in
           let frames = sink_frame_list births ~period_s ~tolerance eofs in
           let name = sf_node.Graph.name in
           List.iter
             (fun f ->
               Metrics.observe t.m
                 (Printf.sprintf "sink.%s.frame_latency_s" name)
                 f.f_latency_s;
               Metrics.incr t.m (Printf.sprintf "sink.%s.frames" name);
               if f.f_missed then begin
                 Metrics.incr t.m
                   (Printf.sprintf "sink.%s.deadline_misses" name);
                 Metrics.incr t.m "sim.deadline_misses";
                 t.misses <- t.misses + 1
               end)
             frames;
           (* Successive end-of-frame intervals: the jitter the real-time
              verdict checks in aggregate. *)
           let rec intervals = function
             | a :: (b :: _ as rest) ->
                 Metrics.observe t.m
                   (Printf.sprintf "sink.%s.frame_interval_s" name)
                   (b -. a);
                 intervals rest
             | _ -> ()
           in
           intervals eofs;
           { sf_node; sf_frames = frames })

let ensure_finalized t fn =
  if not t.finalized then
    invalid_arg (Printf.sprintf "Health.%s: call finalize first" fn)

let metrics t = t.m

let breakdown t id =
  match Hashtbl.find_opt t.tracks id with
  | None -> None
  | Some tr ->
      Some
        {
          busy_s = tr.t_acc.(0);
          blocked_input_s = tr.t_acc.(1);
          blocked_output_s = tr.t_acc.(2);
          idle_s = tr.t_acc.(3);
        }

let sorted_tracks t =
  Hashtbl.fold (fun _ tr acc -> tr :: acc) t.tracks []
  |> List.sort (fun a b -> compare a.t_node.Graph.id b.t_node.Graph.id)

let intervals t =
  ensure_finalized t "intervals";
  List.map (fun tr -> (tr.t_node, tr.t_proc, List.rev tr.t_rev)) (sorted_tracks t)

let frames t =
  ensure_finalized t "frames";
  List.map (fun sf -> (sf.sf_node, sf.sf_frames)) t.frames

let deadline_misses t = t.misses

let blocked_of tr = tr.t_acc.(1) +. tr.t_acc.(2)

let bottleneck t =
  ensure_finalized t "bottleneck";
  let ranked =
    sorted_tracks t
    |> List.sort (fun a b ->
           match compare (blocked_of b) (blocked_of a) with
           | 0 -> compare a.t_node.Graph.id b.t_node.Graph.id
           | c -> c)
  in
  match ranked with
  | [] -> None
  | top :: _ ->
      (* The binding channel: the edge this kernel spent the most blocked
         time against; its other endpoint is the likely rate limiter. *)
      let b_chan =
        Hashtbl.fold
          (fun c r best ->
            match best with
            | Some (_, bt) when bt >= !r -> best
            | _ -> Some (c, !r))
          top.t_chan_acc None
        |> Option.map (fun (c, _) -> Graph.channel t.graph c)
      in
      let b_culprit =
        Option.map
          (fun (c : Graph.channel) ->
            let other =
              if c.Graph.src.Graph.node = top.t_node.Graph.id then
                c.Graph.dst.Graph.node
              else c.Graph.src.Graph.node
            in
            Graph.node t.graph other)
          b_chan
      in
      Some
        {
          b_kernel = top.t_node;
          b_blocked_s = blocked_of top;
          b_chan;
          b_culprit;
          b_ranking =
            List.map
              (fun tr ->
                ( tr.t_node,
                  {
                    busy_s = tr.t_acc.(0);
                    blocked_input_s = tr.t_acc.(1);
                    blocked_output_s = tr.t_acc.(2);
                    idle_s = tr.t_acc.(3);
                  } ))
              ranked;
        }

let to_json t =
  ensure_finalized t "to_json";
  let kernels =
    sorted_tracks t
    |> List.sort (fun a b -> compare a.t_node.Graph.name b.t_node.Graph.name)
    |> List.map (fun tr ->
           Json.Obj
             [
               ("name", Json.Str tr.t_node.Graph.name);
               ("proc", if tr.t_proc < 0 then Json.Null else Json.Int tr.t_proc);
               ("busy_s", Json.float tr.t_acc.(0));
               ("blocked_on_input_s", Json.float tr.t_acc.(1));
               ("blocked_on_output_s", Json.float tr.t_acc.(2));
               ("idle_s", Json.float tr.t_acc.(3));
               ("intervals", Json.Int tr.t_kept);
               ("intervals_dropped", Json.Int tr.t_dropped);
             ])
  in
  let sinks =
    t.frames
    |> List.sort (fun a b ->
           compare a.sf_node.Graph.name b.sf_node.Graph.name)
    |> List.map (fun sf ->
           Json.Obj
             [
               ("name", Json.Str sf.sf_node.Graph.name);
               ("frames", Json.Int (List.length sf.sf_frames));
               ( "deadline_misses",
                 Json.Int
                   (List.length (List.filter (fun f -> f.f_missed) sf.sf_frames))
               );
               ( "frame_detail",
                 Json.List
                   (List.map
                      (fun f ->
                        Json.Obj
                          [
                            ("index", Json.Int f.f_index);
                            ("birth_s", Json.float f.f_birth_s);
                            ("arrival_s", Json.float f.f_arrival_s);
                            ("latency_s", Json.float f.f_latency_s);
                            ( "deadline_s",
                              match f.f_deadline_s with
                              | None -> Json.Null
                              | Some d -> Json.float d );
                            ("missed", Json.Bool f.f_missed);
                          ])
                      sf.sf_frames) );
             ])
  in
  let channels =
    Graph.channels t.graph
    |> List.filter_map (fun (c : Graph.channel) ->
           match Metrics.gauge t.m (Printf.sprintf "chan.%d.hwm" c.Graph.chan_id) with
           | None -> None
           | Some hwm ->
               Some
                 (Json.Obj
                    [
                      ("id", Json.Int c.Graph.chan_id);
                      ( "label",
                        Json.Str (Instrument.channel_label t.graph c.Graph.chan_id)
                      );
                      ("capacity", Json.Int c.Graph.capacity);
                      ("hwm", Json.Int (int_of_float hwm));
                      ( "hwm_frac",
                        if c.Graph.capacity > 0 then
                          Json.float (hwm /. float_of_int c.Graph.capacity)
                        else Json.Null );
                    ]))
  in
  let bottleneck_json =
    match bottleneck t with
    | None -> Json.Null
    | Some b ->
        Json.Obj
          [
            ("kernel", Json.Str b.b_kernel.Graph.name);
            ("blocked_s", Json.float b.b_blocked_s);
            ( "channel",
              match b.b_chan with
              | None -> Json.Null
              | Some c -> Json.Int c.Graph.chan_id );
            ( "channel_label",
              match b.b_chan with
              | None -> Json.Null
              | Some c ->
                  Json.Str (Instrument.channel_label t.graph c.Graph.chan_id) );
            ( "culprit",
              match b.b_culprit with
              | None -> Json.Null
              | Some n -> Json.Str n.Graph.name );
          ]
  in
  Json.Obj
    [
      ("duration_s", Json.float t.duration_s);
      ( "period_s",
        match t.period_s with None -> Json.Null | Some p -> Json.float p );
      ("deadline_misses", Json.Int t.misses);
      ("kernels", Json.List kernels);
      ("sinks", Json.List sinks);
      ("channels", Json.List channels);
      ("bottleneck", bottleneck_json);
    ]

let pct t v = if t.duration_s > 0. then 100. *. v /. t.duration_s else 0.

let pp_bottleneck ppf t =
  ensure_finalized t "pp_bottleneck";
  Format.fprintf ppf "Bottleneck report — duration %.6f s, %d deadline miss%s@."
    t.duration_s t.misses
    (if t.misses = 1 then "" else "es");
  match bottleneck t with
  | None -> Format.fprintf ppf "  (no on-chip kernels)@."
  | Some b ->
      Format.fprintf ppf "  %4s  %-24s %8s %8s %8s %8s@." "rank" "kernel"
        "busy%" "blk-in%" "blk-out%" "idle%";
      List.iteri
        (fun i (n, bd) ->
          Format.fprintf ppf "  %4d  %-24s %8.1f %8.1f %8.1f %8.1f@." (i + 1)
            n.Graph.name (pct t bd.busy_s)
            (pct t bd.blocked_input_s)
            (pct t bd.blocked_output_s)
            (pct t bd.idle_s))
        b.b_ranking;
      if b.b_blocked_s <= 0. then
        Format.fprintf ppf
          "No stalls observed: no kernel was ever blocked — the pipeline is \
           source-limited, not kernel-limited.@."
      else begin
        Format.fprintf ppf "Most blocked: %s (%.6f s, %.1f%% of the run)@."
          b.b_kernel.Graph.name b.b_blocked_s (pct t b.b_blocked_s);
        (match b.b_chan with
        | None ->
            Format.fprintf ppf
              "Binding channel: none attributed (starved mid-window)@."
        | Some c ->
            let hwm =
              match
                Metrics.gauge t.m (Printf.sprintf "chan.%d.hwm" c.Graph.chan_id)
              with
              | Some h -> int_of_float h
              | None -> 0
            in
            Format.fprintf ppf "Binding channel: %s (chan %d, hwm %d/%d)@."
              (Instrument.channel_label t.graph c.Graph.chan_id)
              c.Graph.chan_id hwm c.Graph.capacity);
        match b.b_culprit with
        | None -> ()
        | Some n ->
            let busy =
              match breakdown t n.Graph.id with
              | Some bd -> pct t bd.busy_s
              | None -> 0.
            in
            Format.fprintf ppf "Likely rate limiter: %s (busy %.1f%%)@."
              n.Graph.name busy
      end
