(** Real-time health: exact stall attribution, per-frame latency and
    deadline accounting, and the bottleneck report.

    The fold over {!Bp_sim.Sim.run}'s [state_observer] hook. The simulator
    emits one event per entered kernel state (busy, blocked-on-input,
    blocked-on-output, idle — exact by construction, see
    docs/OBSERVABILITY.md §"Real-time health"); this module accumulates
    them into per-kernel time breakdowns, joins [source_frame_births]
    against [sink_eofs] into per-frame end-to-end latencies checked
    against the source's declared period, compares channel occupancy
    high-watermarks to the compiled capacities, and ranks kernels by
    blocked time to name the binding channel — the contended edge that
    explains the rank-1 kernel's stalls.

    Usage:

    {[
      let h = Health.create ~graph () in
      let result =
        Sim.run ~state_observer:(Health.state_observer h)
          ~graph ~mapping ~machine ()
      in
      Health.finalize h ~result;
      Json.write_file ~path (Health.to_json h);
      Format.printf "%a" Health.pp_bottleneck h
    ]}

    Like all observers, health instrumentation is passive: a run's
    [Sim.result] is identical with and without it (asserted in
    [test/test_obs.ml]). *)

type t

val create : ?interval_limit:int -> graph:Bp_graph.Graph.t -> unit -> t
(** Every on-chip kernel is pre-registered (a kernel that never leaves
    [Ks_idle] still appears in the breakdown, fully idle).
    [interval_limit] (default 500_000) caps the per-kernel intervals kept
    for {!intervals} and the trace export; past it, interval retention
    stops for that kernel (time totals keep accumulating) and the drop is
    counted in the JSON snapshot. *)

val state_observer :
  t ->
  time_s:float ->
  node:Bp_graph.Graph.node ->
  proc:int ->
  state:Bp_sim.Sim.kernel_state ->
  chan:int option ->
  unit
(** Pass as [Sim.run ~state_observer]. *)

val finalize : t -> result:Bp_sim.Sim.result -> ?period_s:float ->
  ?tolerance:float -> unit -> unit
(** Close every kernel's open interval at [result.duration_s], join frame
    births to sink end-of-frame arrivals, and derive the metrics snapshot.
    Deadlines are anchored at each sink's first end-of-frame arrival
    [t0]: frame [k]'s deadline is [t0 + k·period·(1+tolerance)]
    (tolerance defaults to 5%, matching {!Bp_sim.Sim.real_time_verdict}).
    [period_s] defaults to the declared frame period of the graph's first
    timed source; with no timed source and no override, deadline
    accounting is skipped (latencies are still recorded). Call exactly
    once, after {!Bp_sim.Sim.run} returns. *)

(** {1 Reading} *)

type breakdown = {
  busy_s : float;  (** Time with a firing in flight. *)
  blocked_input_s : float;  (** Time declined waiting for input. *)
  blocked_output_s : float;  (** Time declined against a full output. *)
  idle_s : float;  (** Everything else (incl. waiting for a shared PE). *)
}

type interval = {
  iv_state : Bp_sim.Sim.kernel_state;
  iv_start : float;
  iv_end : float;
  iv_chan : int option;
      (** For blocked states, the culprit channel when known. *)
}

type frame = {
  f_index : int;  (** Frame number, from 0. *)
  f_birth_s : float;  (** Source emission of the frame's first pixel. *)
  f_arrival_s : float;  (** End-of-frame arrival at the sink. *)
  f_latency_s : float;  (** [arrival - birth]: end-to-end latency. *)
  f_deadline_s : float option;  (** Absent when no period is known. *)
  f_missed : bool;  (** [arrival > deadline]. *)
}

type bottleneck = {
  b_kernel : Bp_graph.Graph.node;  (** The most-blocked kernel. *)
  b_blocked_s : float;  (** Its total blocked time. *)
  b_chan : Bp_graph.Graph.channel option;
      (** The binding channel: the edge carrying the largest share of its
          blocked time (unattributed mid-window starvation has no
          channel). *)
  b_culprit : Bp_graph.Graph.node option;
      (** The other endpoint of the binding channel — the likely rate
          limiter. *)
  b_ranking : (Bp_graph.Graph.node * breakdown) list;
      (** All on-chip kernels, most blocked time first (ties broken by
          node id). *)
}

val metrics : t -> Metrics.t
(** The derived snapshot (names in docs/OBSERVABILITY.md §"Real-time
    health"): per-kernel [kernel.<name>.{busy,blocked_on_input,
    blocked_on_output,idle}_s], per-sink [sink.<name>.frame_latency_s] /
    [.frame_interval_s] histograms and [.deadline_misses] / [.frames]
    counters, [sim.deadline_misses], and per-channel [chan.<id>.hwm] /
    [.capacity] / [.hwm_frac]. Populated by {!finalize}. *)

val breakdown : t -> Bp_graph.Graph.node_id -> breakdown option
(** Per-kernel time totals; [None] for off-chip or unknown nodes. The
    four components sum to [result.duration_s] (the partition invariant,
    asserted in [test/test_obs.ml]). *)

val intervals : t -> (Bp_graph.Graph.node * int * interval list) list
(** Per on-chip kernel (in id order): its processor (-1 when it was never
    examined) and its state intervals in time order, contiguous from 0 to
    [duration_s]. *)

val frames : t -> (Bp_graph.Graph.node * frame list) list
(** Per sink (in id order), its frames in arrival order. Only frames
    whose birth was recorded by a timed source appear. *)

val deadline_misses : t -> int
(** Total missed deadlines across sinks. *)

val bottleneck : t -> bottleneck option
(** [None] when the graph has no on-chip kernels. A bottleneck with
    [b_blocked_s = 0.] means no stall was ever observed — the pipeline is
    source-limited, not kernel-limited. *)

val to_json : t -> Json.t
(** The health snapshot schema of docs/OBSERVABILITY.md: duration,
    deadline misses, per-kernel breakdowns, per-sink frames, channel
    high-watermarks vs capacity, and the bottleneck verdict. All arrays
    deterministically ordered (kernels/sinks by name, channels by id). *)

val pp_bottleneck : Format.formatter -> t -> unit
(** The human-readable bottleneck report behind [bpc report bottleneck]:
    kernels ranked by blocked time, the binding channel, and the likely
    rate limiter. *)
