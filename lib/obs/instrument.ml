module Graph = Bp_graph.Graph
module Sim = Bp_sim.Sim
module Mapping = Bp_sim.Mapping

type series = {
  mutable rev_samples : (float * int) list;
  mutable n_samples : int;
  mutable dropped : int;
}

type t = {
  m : Metrics.t;
  sample_limit : int;
  channels : (int, series) Hashtbl.t;
  mutable finalized : bool;
}

let kernel_fires name = Printf.sprintf "kernel.%s.fires" name
let kernel_service name = Printf.sprintf "kernel.%s.service_s" name
let kernel_blocks name = Printf.sprintf "kernel.%s.blocks" name
let pe_fires p = Printf.sprintf "pe.%d.fires" p
let pe_busy p = Printf.sprintf "pe.%d.busy_s" p
let pe_idle p = Printf.sprintf "pe.%d.idle_s" p
let pe_util p = Printf.sprintf "pe.%d.util" p
let chan_pushes id = Printf.sprintf "chan.%d.pushes" id
let chan_pops id = Printf.sprintf "chan.%d.pops" id
let chan_blocks id = Printf.sprintf "chan.%d.blocks" id
let chan_max_depth id = Printf.sprintf "chan.%d.max_depth" id
let chan_dropped id = Printf.sprintf "chan.%d.samples_dropped" id

let create ?(sample_limit = 200_000) ~graph () =
  let m = Metrics.create () in
  let channels = Hashtbl.create 32 in
  (* Pre-register every kernel and channel so components that never fire
     still show up — a zero is information, absence is a question. *)
  List.iter
    (fun (n : Graph.node) ->
      if Mapping.is_on_chip n then begin
        Metrics.incr m ~by:0 (kernel_fires n.Graph.name);
        Metrics.incr m ~by:0 (kernel_blocks n.Graph.name)
      end)
    (Graph.nodes graph);
  List.iter
    (fun (c : Graph.channel) ->
      let id = c.Graph.chan_id in
      Metrics.incr m ~by:0 (chan_pushes id);
      Metrics.incr m ~by:0 (chan_pops id);
      Metrics.incr m ~by:0 (chan_blocks id);
      Metrics.set_max m (chan_max_depth id) 0.;
      Hashtbl.replace channels id { rev_samples = []; n_samples = 0; dropped = 0 })
    (Graph.channels graph);
  { m; sample_limit; channels; finalized = false }

let metrics t = t.m

let observer t ~time_s:_ ~proc ~node ~method_name:_ ~service_s =
  Metrics.incr t.m (kernel_fires node.Graph.name);
  Metrics.observe t.m (kernel_service node.Graph.name) service_s;
  Metrics.incr t.m (pe_fires proc);
  Metrics.add t.m (pe_busy proc) service_s

let series_of t chan_id =
  match Hashtbl.find_opt t.channels chan_id with
  | Some s -> s
  | None ->
    let s = { rev_samples = []; n_samples = 0; dropped = 0 } in
    Hashtbl.replace t.channels chan_id s;
    s

let channel_observer t ~time_s ~chan_id ~node ~proc:_ ~event ~depth =
  (match event with
  | Sim.Ch_push -> Metrics.incr t.m (chan_pushes chan_id)
  | Sim.Ch_pop -> Metrics.incr t.m (chan_pops chan_id)
  | Sim.Ch_block ->
    Metrics.incr t.m (chan_blocks chan_id);
    Metrics.incr t.m (kernel_blocks node.Graph.name));
  Metrics.set_max t.m (chan_max_depth chan_id) (float_of_int depth);
  match event with
  | Sim.Ch_block -> ()
  | Sim.Ch_push | Sim.Ch_pop ->
    let s = series_of t chan_id in
    if s.n_samples < t.sample_limit then begin
      s.rev_samples <- (time_s, depth) :: s.rev_samples;
      s.n_samples <- s.n_samples + 1
    end
    else begin
      s.dropped <- s.dropped + 1;
      Metrics.incr t.m (chan_dropped chan_id)
    end

let finalize t ~result =
  if t.finalized then invalid_arg "Instrument.finalize: already finalized";
  t.finalized <- true;
  let duration = result.Sim.duration_s in
  Metrics.set t.m "sim.duration_s" duration;
  Metrics.incr t.m ~by:result.Sim.input_stalls "sim.input_stalls";
  Metrics.incr t.m ~by:result.Sim.late_emissions "sim.late_emissions";
  Metrics.incr t.m ~by:result.Sim.leftover_items "sim.leftover_items";
  Metrics.set t.m "sim.timed_out" (if result.Sim.timed_out then 1. else 0.);
  Metrics.set t.m "sim.static.regions"
    (float_of_int result.Sim.static_regions);
  Metrics.incr t.m ~by:result.Sim.static_fired "sim.static.fired";
  Metrics.incr t.m ~by:result.Sim.static_indexed_fired
    "sim.static.indexed_fired";
  Metrics.incr t.m ~by:result.Sim.static_fallback_events
    "sim.static.fallback_events";
  Metrics.incr t.m ~by:result.Sim.static_elided_events
    "sim.static.elided_events";
  Array.iteri
    (fun p _ ->
      let busy = Option.value ~default:0. (Metrics.gauge t.m (pe_busy p)) in
      Metrics.set t.m (pe_busy p) busy;
      Metrics.set t.m (pe_idle p) (Float.max 0. (duration -. busy));
      Metrics.set t.m (pe_util p)
        (if duration > 0. then busy /. duration else 0.))
    result.Sim.procs;
  (* The simulator's own high-water marks are authoritative; observed
     marks can only agree or undershoot (they equal, by construction). *)
  List.iter
    (fun (id, depth) ->
      Metrics.set_max t.m (chan_max_depth id) (float_of_int depth))
    result.Sim.channel_depths

let channel_series t =
  Hashtbl.fold
    (fun id s acc -> (id, List.rev s.rev_samples) :: acc)
    t.channels []
  |> List.sort compare

let channel_label g id =
  let c = Graph.channel g id in
  Printf.sprintf "%s.%s->%s.%s"
    (Graph.node g c.Graph.src.Graph.node).Graph.name c.Graph.src.Graph.port
    (Graph.node g c.Graph.dst.Graph.node).Graph.name c.Graph.dst.Graph.port

let compose observers ~time_s ~proc ~node ~method_name ~service_s =
  List.iter
    (fun f -> f ~time_s ~proc ~node ~method_name ~service_s)
    observers

(* ---- compile-side metrics --------------------------------------------- *)

let record_compile m (plan : Bp_compiler.Plan.t) =
  let total =
    List.fold_left
      (fun acc (p : Bp_compiler.Pass.timing) ->
        Metrics.set m
          (Printf.sprintf "compile.pass.%s.wall_s" p.Bp_compiler.Pass.pass)
          p.Bp_compiler.Pass.wall_s;
        acc +. p.Bp_compiler.Pass.wall_s)
      0. plan.Bp_compiler.Plan.timings
  in
  Metrics.set m "compile.wall_s" total;
  Metrics.incr m ~by:0 "compile.diag.info";
  Metrics.incr m ~by:0 "compile.diag.warning";
  Metrics.incr m ~by:0 "compile.diag.error";
  List.iter
    (fun (d : Bp_util.Diag.t) ->
      Metrics.incr m
        ("compile.diag." ^ Bp_util.Diag.severity_name d.Bp_util.Diag.severity))
    plan.Bp_compiler.Plan.diagnostics
