(** Simulation instrumentation: observers that feed a {!Metrics}
    registry and record channel-occupancy time series.

    Usage (see docs/OBSERVABILITY.md and docs/TUTORIAL.md §"Profiling"):

    {[
      let inst = Instrument.create ~graph () in
      let result =
        Sim.run
          ~observer:(Instrument.observer inst)
          ~channel_observer:(Instrument.channel_observer inst)
          ~graph ~mapping ~machine ()
      in
      Instrument.finalize inst ~result;
      Json.write_file ~path (Metrics.to_json (Instrument.metrics inst))
    ]}

    Instrumentation is passive: it never mutates simulation state, and a
    run's [Sim.result] is bit-identical with and without it (asserted in
    [test/test_obs.ml]). The exported counter names are the normative
    contract of docs/OBSERVABILITY.md; every on-chip kernel and every
    channel is pre-registered at creation so quiet components still appear
    (as zeros) in the snapshot. *)

type t

val create : ?sample_limit:int -> graph:Bp_graph.Graph.t -> unit -> t
(** [sample_limit] (default 200_000) caps the per-channel occupancy
    samples kept for counter tracks; past it, sampling stops for that
    channel (aggregate counters keep counting) and
    [chan.<id>.samples_dropped] records how many were discarded. *)

val metrics : t -> Metrics.t

val observer :
  t ->
  time_s:float ->
  proc:int ->
  node:Bp_graph.Graph.node ->
  method_name:string ->
  service_s:float ->
  unit
(** Pass as [Sim.run ~observer]. Feeds [kernel.<name>.fires],
    [kernel.<name>.service_s], [pe.<p>.fires], [pe.<p>.busy_s]. *)

val channel_observer :
  t ->
  time_s:float ->
  chan_id:int ->
  node:Bp_graph.Graph.node ->
  proc:int option ->
  event:Bp_sim.Sim.channel_event ->
  depth:int ->
  unit
(** Pass as [Sim.run ~channel_observer]. Feeds [chan.<id>.pushes],
    [chan.<id>.pops], [chan.<id>.blocks], [chan.<id>.max_depth],
    [kernel.<name>.blocks], and the occupancy time series behind
    {!channel_series}. *)

val compose :
  (time_s:float ->
  proc:int ->
  node:Bp_graph.Graph.node ->
  method_name:string ->
  service_s:float ->
  unit)
  list ->
  time_s:float ->
  proc:int ->
  node:Bp_graph.Graph.node ->
  method_name:string ->
  service_s:float ->
  unit
(** [compose obs] is a firing observer that fans each event out to every
    observer in [obs], in list order — the way to attach both the
    {!Bp_sim.Trace} recorder and {!observer} to one run:
    [Sim.run ~observer:(Instrument.compose [Trace.recorder tr; Instrument.observer inst])].
    Composing passive observers is passive. *)

val finalize : t -> result:Bp_sim.Sim.result -> unit
(** Derive the post-run metrics that need the whole result:
    [sim.duration_s], [sim.input_stalls], [sim.late_emissions],
    [sim.leftover_items], [sim.timed_out], and per-PE [pe.<p>.idle_s] and
    [pe.<p>.util]. Call exactly once, after {!Bp_sim.Sim.run} returns. *)

val channel_series : t -> (int * (float * int) list) list
(** Per channel id, the (time, depth-after-event) occupancy samples in
    time order — the source of the Chrome-trace counter tracks. Only
    pushes and pops produce samples (blocks do not change depth). *)

val channel_label : Bp_graph.Graph.t -> int -> string
(** ["src.port->dst.port"] for a channel id — how metrics' [chan.<id>.*]
    names map back to the graph. *)

val record_compile : Metrics.t -> Bp_compiler.Plan.t -> unit
(** Fold a compilation plan's pass timings and diagnostics into the
    registry, next to the simulation metrics: gauges
    [compile.pass.<name>.wall_s] and [compile.wall_s] (their sum),
    counters [compile.diag.info], [compile.diag.warning],
    [compile.diag.error] (pre-registered at zero). Names are part of the
    observability contract (docs/OBSERVABILITY.md). *)
