type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON numbers cannot be [nan]/[inf] and must not end in a bare dot;
   ["%.12g"] produces forms ("0.25", "3.3e-07") every JSON parser takes,
   with enough digits that microsecond timestamps round-trip. *)
let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> if Float.is_finite f then add_float buf f else to_buffer buf Null
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let write_file ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
