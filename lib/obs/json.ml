type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON numbers cannot be [nan]/[inf] and must not end in a bare dot;
   ["%.12g"] produces forms ("0.25", "3.3e-07") every JSON parser takes,
   with enough digits that microsecond timestamps round-trip. *)
let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> if Float.is_finite f then add_float buf f else to_buffer buf Null
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------

   A strict recursive-descent reader for the subset this module writes
   (all of RFC 8259 minus \uXXXX escapes above the BMP surrogate
   machinery — the writer never emits them for the ASCII names and
   numbers these artifacts contain). Used by the benchmark's regression
   gate to read a committed baseline back. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> parse_error "expected %C at offset %d, found %C" c !pos d
    | None -> parse_error "expected %C at offset %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else parse_error "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then parse_error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then parse_error "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> parse_error "bad \\u escape %S" hex
           in
           (* The writer only emits \u for control characters; decode
              the Latin-1 range and reject the rest. *)
           if code < 0x100 then Buffer.add_char buf (Char.chr code)
           else parse_error "unsupported \\u escape %S" hex
         | e -> parse_error "bad escape character %C" e);
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_error "bad number %S at offset %d" text start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> parse_error "expected ',' or ']' at offset %d" !pos
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> parse_error "expected ',' or '}' at offset %d" !pos
        in
        fields []
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage at offset %d" !pos;
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let write_file ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
