(** A minimal JSON value and serializer.

    The observability layer emits machine-readable artifacts (metrics
    snapshots, Chrome [trace_event] files) without pulling a JSON library
    into the dependency cone. A small strict parser ({!parse}) covers the
    subset the writer emits, so the benchmark's regression gate can read
    a committed baseline back. Serialization is strict RFC 8259: strings are
    escaped, non-finite floats become [null] (JSON has no representation
    for them), and numbers render in a form Python's [json] module and
    Perfetto both accept. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val float : float -> t
(** [Float f], except non-finite values map to [Null]. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val write_file : path:string -> t -> unit
(** Serialize to [path] with a trailing newline. *)

exception Parse_error of string

val parse : string -> t
(** Strict recursive-descent parse of one JSON value (raises
    {!Parse_error}). Integers that fit an OCaml [int] become [Int];
    other numbers become [Float]. Trailing non-whitespace input is an
    error. *)

val parse_file : string -> t
(** {!parse} the entire contents of a file. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing keys and non-objects. *)

val to_float_opt : t -> float option
(** Numeric coercion of [Int]/[Float]; [None] otherwise. *)
