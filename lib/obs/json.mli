(** A minimal JSON value and serializer.

    The observability layer emits machine-readable artifacts (metrics
    snapshots, Chrome [trace_event] files) without pulling a JSON library
    into the dependency cone. Only construction and serialization are
    provided — the repo never *parses* JSON (tests carry their own tiny
    validating reader). Serialization is strict RFC 8259: strings are
    escaped, non-finite floats become [null] (JSON has no representation
    for them), and numbers render in a form Python's [json] module and
    Perfetto both accept. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val float : float -> t
(** [Float f], except non-finite values map to [Null]. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val write_file : path:string -> t -> unit
(** Serialize to [path] with a trailing newline. *)
