let bucket_bounds =
  [| 1e-9; 1e-8; 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array;  (* one per bound + overflow *)
}

type value = Counter of int ref | Gauge of float ref | Hist of hist

type t = (string, value) Hashtbl.t

let create () : t = Hashtbl.create 64

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let find t name ~kind ~make =
  match Hashtbl.find_opt t name with
  | Some v ->
    if kind_name v <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %s is a %s, used as a %s" name (kind_name v)
           kind);
    v
  | None ->
    let v = make () in
    Hashtbl.replace t name v;
    v

let counter_ref t name =
  match find t name ~kind:"counter" ~make:(fun () -> Counter (ref 0)) with
  | Counter r -> r
  | _ -> assert false

let gauge_ref t name =
  match find t name ~kind:"gauge" ~make:(fun () -> Gauge (ref 0.)) with
  | Gauge r -> r
  | _ -> assert false

let hist_of t name =
  let make () =
    Hist
      {
        count = 0;
        sum = 0.;
        mn = Float.infinity;
        mx = Float.neg_infinity;
        buckets = Array.make (Array.length bucket_bounds + 1) 0;
      }
  in
  match find t name ~kind:"histogram" ~make with
  | Hist h -> h
  | _ -> assert false

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  let r = counter_ref t name in
  r := !r + by

let set t name v = gauge_ref t name := v
let set_max t name v =
  let r = gauge_ref t name in
  if v > !r then r := v

let add t name v =
  let r = gauge_ref t name in
  r := !r +. v

let bucket_index v =
  let n = Array.length bucket_bounds in
  let rec go i = if i >= n then n else if v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe t name v =
  let h = hist_of t name in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let counter t name =
  match Hashtbl.find_opt t name with Some (Counter r) -> !r | _ -> 0

let gauge t name =
  match Hashtbl.find_opt t name with Some (Gauge r) -> Some !r | _ -> None

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
}

let histogram t name =
  match Hashtbl.find_opt t name with
  | Some (Hist h) when h.count > 0 ->
    Some
      {
        h_count = h.count;
        h_sum = h.sum;
        h_min = h.mn;
        h_max = h.mx;
        h_mean = h.sum /. float_of_int h.count;
      }
  | Some (Hist _) ->
    Some { h_count = 0; h_sum = 0.; h_min = 0.; h_max = 0.; h_mean = 0. }
  | _ -> None

(* ---- GC and pool sampling ------------------------------------------- *)

type gc_snapshot = {
  gc_minor_words : float;
  gc_major_words : float;
  gc_promoted_words : float;
  gc_minor_collections : int;
  gc_major_collections : int;
}

let gc_snapshot () =
  let s = Gc.quick_stat () in
  {
    gc_minor_words = s.Gc.minor_words;
    gc_major_words = s.Gc.major_words;
    gc_promoted_words = s.Gc.promoted_words;
    gc_minor_collections = s.Gc.minor_collections;
    gc_major_collections = s.Gc.major_collections;
  }

let allocated_words ~before ~after =
  (* Promoted words appear in both minor and major totals; subtract one
     copy so the result is words allocated, wherever they first landed. *)
  after.gc_minor_words -. before.gc_minor_words
  +. (after.gc_major_words -. before.gc_major_words)
  -. (after.gc_promoted_words -. before.gc_promoted_words)

let record_gc t ?(prefix = "") ~before ~after () =
  let n s = prefix ^ s in
  set t (n "gc.minor_words") (after.gc_minor_words -. before.gc_minor_words);
  set t (n "gc.major_words") (after.gc_major_words -. before.gc_major_words);
  set t
    (n "gc.promoted_words")
    (after.gc_promoted_words -. before.gc_promoted_words);
  set t (n "gc.allocated_words") (allocated_words ~before ~after);
  incr t
    ~by:(after.gc_minor_collections - before.gc_minor_collections)
    (n "gc.minor_collections");
  incr t
    ~by:(after.gc_major_collections - before.gc_major_collections)
    (n "gc.major_collections")

let record_gc_around t ?prefix f =
  let before = gc_snapshot () in
  let result = f () in
  let after = gc_snapshot () in
  record_gc t ?prefix ~before ~after ();
  result

let record_pool t ?(prefix = "") ~hits ~misses ~releases ~live () =
  let n s = prefix ^ s in
  incr t ~by:hits (n "pool.hits");
  incr t ~by:misses (n "pool.misses");
  incr t ~by:releases (n "pool.releases");
  set t (n "pool.live") (float_of_int live);
  let total = hits + misses in
  set t
    (n "pool.hit_rate")
    (if total = 0 then 0. else float_of_int hits /. float_of_int total)

let record_domain t ?(prefix = "") ~domain ~tasks ~wall_s ~steals () =
  let n s = Printf.sprintf "%ssim.domain.%d.%s" prefix domain s in
  incr t ~by:tasks (n "tasks");
  incr t ~by:steals (n "steal_count");
  set t (n "wall_s") wall_s

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let to_json t =
  let entry name =
    match Hashtbl.find t name with
    | Counter r -> Json.Obj [ ("name", Str name); ("kind", Str "counter"); ("value", Int !r) ]
    | Gauge r ->
      Json.Obj [ ("name", Str name); ("kind", Str "gauge"); ("value", Json.float !r) ]
    | Hist h ->
      let stats = Option.get (histogram t name) in
      let buckets =
        List.concat
          [
            List.mapi
              (fun i le ->
                Json.Obj [ ("le", Json.float le); ("count", Int h.buckets.(i)) ])
              (Array.to_list bucket_bounds);
            [
              Json.Obj
                [
                  ("le", Null);
                  ("count", Int h.buckets.(Array.length bucket_bounds));
                ];
            ];
          ]
      in
      Json.Obj
        [
          ("name", Str name);
          ("kind", Str "histogram");
          ("count", Int stats.h_count);
          ("sum", Json.float stats.h_sum);
          ("min", Json.float stats.h_min);
          ("max", Json.float stats.h_max);
          ("mean", Json.float stats.h_mean);
          ("buckets", List buckets);
        ]
  in
  Json.Obj [ ("metrics", List (List.map entry (names t))) ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name ->
      match Hashtbl.find t name with
      | Counter r -> Format.fprintf ppf "%-40s %12d@," name !r
      | Gauge r -> Format.fprintf ppf "%-40s %12g@," name !r
      | Hist _ ->
        let s = Option.get (histogram t name) in
        Format.fprintf ppf "%-40s n=%d sum=%g min=%g max=%g mean=%g@," name
          s.h_count s.h_sum s.h_min s.h_max s.h_mean)
    (names t);
  Format.fprintf ppf "@]"
