(** A structured metrics registry: counters, gauges, histograms.

    The aggregation half of the observability layer. Names are flat,
    dot-separated strings; the normative name set produced by a simulation
    run is documented in docs/OBSERVABILITY.md ([kernel.<name>.fires],
    [chan.<id>.pushes], [pe.<p>.busy_s], ...). A name is bound to one kind
    on first use; touching it with a different kind raises
    [Invalid_argument] — a misspelled instrumentation site should fail
    loudly, not fork a second series.

    - A {b counter} is a monotonically increasing integer (events).
    - A {b gauge} is a float with last-write ([set]), high-water
      ([set_max]) or accumulate ([add]) semantics (seconds, depths).
    - A {b histogram} is a distribution summary: count/sum/min/max plus
      counts in fixed decade buckets (default bounds suit durations in
      seconds, 1 ns .. 10 s).

    The registry is not thread-safe; the simulator is single-threaded. *)

type t

val create : unit -> t

(** {1 Recording} *)

val incr : t -> ?by:int -> string -> unit
(** Bump a counter ([by] defaults to 1; must be >= 0). *)

val set : t -> string -> float -> unit
(** Set a gauge to a value. *)

val set_max : t -> string -> float -> unit
(** Raise a gauge to [max current value] — high-water marks. *)

val add : t -> string -> float -> unit
(** Accumulate into a gauge — time totals. *)

val observe : t -> string -> float -> unit
(** Record one sample into a histogram. *)

(** {1 Reading} *)

val counter : t -> string -> int
(** Current counter value; 0 when the name was never incremented. *)

val gauge : t -> string -> float option

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
}

val histogram : t -> string -> hist_stats option

val bucket_bounds : float array
(** Upper bounds (inclusive, seconds) of the histogram decade buckets; a
    final implicit overflow bucket catches everything above the last
    bound. *)

val names : t -> string list
(** All registered names, sorted — the iteration order of {!to_json} and
    {!pp}, so output is deterministic. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** The metrics snapshot schema of docs/OBSERVABILITY.md:
    [{"metrics": [{"name": ..., "kind": "counter"|"gauge"|"histogram", ...}]}]
    with entries sorted by name. Counters and gauges carry ["value"];
    histograms carry ["count"], ["sum"], ["min"], ["max"], ["mean"] and
    ["buckets"] (a list of [{"le": bound, "count": n}] with a final
    [{"le": null}] overflow entry). *)

val pp : Format.formatter -> t -> unit
(** A plain-text table of every metric, sorted by name. *)
