(** A structured metrics registry: counters, gauges, histograms.

    The aggregation half of the observability layer. Names are flat,
    dot-separated strings; the normative name set produced by a simulation
    run is documented in docs/OBSERVABILITY.md ([kernel.<name>.fires],
    [chan.<id>.pushes], [pe.<p>.busy_s], ...). A name is bound to one kind
    on first use; touching it with a different kind raises
    [Invalid_argument] — a misspelled instrumentation site should fail
    loudly, not fork a second series.

    - A {b counter} is a monotonically increasing integer (events).
    - A {b gauge} is a float with last-write ([set]), high-water
      ([set_max]) or accumulate ([add]) semantics (seconds, depths).
    - A {b histogram} is a distribution summary: count/sum/min/max plus
      counts in fixed decade buckets (default bounds suit durations in
      seconds, 1 ns .. 10 s).

    The registry is not thread-safe; the simulator is single-threaded. *)

type t

val create : unit -> t

(** {1 Recording} *)

val incr : t -> ?by:int -> string -> unit
(** Bump a counter ([by] defaults to 1; must be >= 0). *)

val set : t -> string -> float -> unit
(** Set a gauge to a value. *)

val set_max : t -> string -> float -> unit
(** Raise a gauge to [max current value] — high-water marks. *)

val add : t -> string -> float -> unit
(** Accumulate into a gauge — time totals. *)

val observe : t -> string -> float -> unit
(** Record one sample into a histogram. *)

(** {1 Reading} *)

val counter : t -> string -> int
(** Current counter value; 0 when the name was never incremented. *)

val gauge : t -> string -> float option

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
}

val histogram : t -> string -> hist_stats option

val bucket_bounds : float array
(** Upper bounds (inclusive, seconds) of the histogram decade buckets; a
    final implicit overflow bucket catches everything above the last
    bound. *)

(** {1 GC and pool sampling}

    The allocation half of the performance contract (docs/PERFORMANCE.md
    §"The data plane"): sample the OCaml GC around a simulation run and
    fold the deltas — plus the run's chunk-pool counters — into the
    registry, so allocation pressure is exported next to throughput. *)

type gc_snapshot = {
  gc_minor_words : float;
  gc_major_words : float;
  gc_promoted_words : float;
  gc_minor_collections : int;
  gc_major_collections : int;
}
(** A point-in-time reading of [Gc.quick_stat] (cheap; no heap walk). *)

val gc_snapshot : unit -> gc_snapshot

val allocated_words : before:gc_snapshot -> after:gc_snapshot -> float
(** Total words allocated between the two snapshots
    ([minor + major - promoted], so promoted words are not double
    counted). *)

val record_gc :
  t -> ?prefix:string -> before:gc_snapshot -> after:gc_snapshot -> unit ->
  unit
(** Record the deltas between two snapshots: gauges
    [gc.minor_words], [gc.major_words], [gc.promoted_words],
    [gc.allocated_words]; counters [gc.minor_collections],
    [gc.major_collections]. [prefix] is prepended verbatim to every
    name. *)

val record_gc_around : t -> ?prefix:string -> (unit -> 'a) -> 'a
(** [record_gc_around t f] runs [f] between two {!gc_snapshot}s and
    {!record_gc}s the deltas. *)

val record_pool :
  t ->
  ?prefix:string ->
  hits:int ->
  misses:int ->
  releases:int ->
  live:int ->
  unit ->
  unit
(** Record chunk-pool counters (see {!Bp_image.Pool.stats}, passed as
    plain ints to keep this module dependency-light): counters
    [pool.hits], [pool.misses], [pool.releases]; gauges [pool.live] and
    [pool.hit_rate]. *)

val record_domain :
  t ->
  ?prefix:string ->
  domain:int ->
  tasks:int ->
  wall_s:float ->
  steals:int ->
  unit ->
  unit
(** Record one worker domain's sweep telemetry (see
    docs/PARALLELISM.md §Observability; the numbers come from
    [Sweep.report]): counters [sim.domain.<i>.tasks] and
    [sim.domain.<i>.steal_count], gauge [sim.domain.<i>.wall_s].
    [prefix] is prepended verbatim to every name. Call once per domain
    after a sweep. *)

val names : t -> string list
(** All registered names, sorted — the iteration order of {!to_json} and
    {!pp}, so output is deterministic. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** The metrics snapshot schema of docs/OBSERVABILITY.md:
    [{"metrics": [{"name": ..., "kind": "counter"|"gauge"|"histogram", ...}]}]
    with entries sorted by name. Counters and gauges carry ["value"];
    histograms carry ["count"], ["sum"], ["min"], ["max"], ["mean"] and
    ["buckets"] (a list of [{"le": bound, "count": n}] with a final
    [{"le": null}] overflow entry). *)

val pp : Format.formatter -> t -> unit
(** A plain-text table of every metric, sorted by name. *)
