open Bp_geometry
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Machine = Bp_machine.Machine
module Dataflow = Bp_analysis.Dataflow
module Stream = Bp_analysis.Stream
module Pipeline = Bp_compiler.Pipeline
module Plan = Bp_compiler.Plan
module Sim = Bp_sim.Sim
module Mapping = Bp_sim.Mapping
module App = Bp_apps.App
module Table = Bp_util.Table
module Stats = Bp_util.Stats

let example ?(frame = Size.v 24 18) ?(rate = Rate.hz 30.) ?(n_frames = 3) () =
  Bp_apps.Image_pipeline.v ~frame ~rate ~n_frames ()

(* ---- Figure 2 --------------------------------------------------------- *)

type fig2_row = {
  kernel : string;
  iterations : Size.t option;
  rate_hz : float option;
  inset : Inset.t option;
}

let fig2 ppf =
  let inst = example () in
  let g = inst.App.graph in
  let an = Dataflow.analyze g in
  let rows =
    List.map
      (fun (n : Graph.node) ->
        let info = Dataflow.info_of an n.Graph.id in
        let inset =
          match Graph.out_channels g n.Graph.id () with
          | c :: _ ->
            Some (Dataflow.stream_of an c.Graph.chan_id).Stream.inset
          | [] -> None
        in
        {
          kernel = n.Graph.name;
          iterations = info.Dataflow.iterations;
          rate_hz = Option.map Rate.to_hz info.Dataflow.rate;
          inset;
        })
      (Graph.topological_order g)
  in
  let table =
    Table.create ~title:"Figure 2: iteration sizes, rates and insets"
      [ "kernel"; "iterations"; "rate"; "output inset" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.kernel;
          (match r.iterations with Some s -> Size.to_string s | None -> "-");
          (match r.rate_hz with Some f -> Printf.sprintf "%gHz" f | None -> "const");
          (match r.inset with Some i -> Inset.to_string i | None -> "-");
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

(* ---- Figure 3 --------------------------------------------------------- *)

type fig3_result = {
  buffers : (string * Size.t) list;
  insets : (string * (int * int * int * int)) list;
}

let fig3 ppf =
  let inst = example () in
  let g = inst.App.graph in
  let repairs = Bp_transform.Align.run g in
  let buffers = Bp_transform.Buffering.run g in
  let result =
    {
      buffers =
        List.map
          (fun (b : Bp_transform.Buffering.inserted) ->
            ((Graph.node g b.Bp_transform.Buffering.buffer_node).Graph.name,
             b.Bp_transform.Buffering.storage))
          buffers;
      insets =
        List.map
          (fun (r : Bp_transform.Align.repair) ->
            ( (Graph.node g r.Bp_transform.Align.inserted).Graph.name,
              r.Bp_transform.Align.margins ))
          repairs;
    }
  in
  let table =
    Table.create ~title:"Figure 3: automatic buffering and trimming"
      [ "inserted kernel"; "detail" ]
  in
  List.iter
    (fun (name, storage) ->
      Table.add_row table
        [ name; Printf.sprintf "storage [%dx%d]" storage.Size.w storage.Size.h ])
    result.buffers;
  List.iter
    (fun (name, (l, r, t, b)) ->
      Table.add_row table
        [ name; Printf.sprintf "trim l=%d r=%d t=%d b=%d" l r t b ])
    result.insets;
  Format.fprintf ppf "%s@." (Table.render table);
  result

(* ---- Figure 4 --------------------------------------------------------- *)

type fig4_result = {
  replicas : (string * int) list;
  splits : int;
  joins : int;
  total_nodes : int;
  real_time_met : bool;
}

let fig4 ppf =
  let inst = example ~frame:(Size.v 48 36) ~rate:(Rate.hz 40.) () in
  let machine = Machine.small_memory in
  let compiled = Pipeline.compile ~machine inst.App.graph in
  let g = compiled.Pipeline.graph in
  let census role =
    List.length
      (List.filter
         (fun (n : Graph.node) -> n.Graph.spec.Spec.role = role)
         (Graph.nodes g))
  in
  let replicas =
    List.map
      (fun (d : Bp_transform.Parallelize.decision) ->
        (d.Bp_transform.Parallelize.original, d.Bp_transform.Parallelize.degree))
      compiled.Pipeline.decisions
  in
  let result = Plan.run_plan ~policy:Plan.One_to_one compiled () in
  let verdict =
    Sim.real_time_verdict result ~expected_frames:inst.App.n_frames
      ~period_s:(App.period_s inst) ()
  in
  let out =
    {
      replicas;
      splits = census Spec.Split;
      joins = census Spec.Join;
      total_nodes = Graph.size g;
      real_time_met = verdict.Sim.met;
    }
  in
  let table =
    Table.create ~title:"Figure 4: automatically parallelized example"
      [ "kernel"; "replicas" ]
  in
  List.iter
    (fun (k, d) -> Table.add_row table [ k; string_of_int d ])
    out.replicas;
  Table.add_rule table;
  Table.add_row table [ "split kernels"; string_of_int out.splits ];
  Table.add_row table [ "join kernels"; string_of_int out.joins ];
  Table.add_row table [ "total nodes"; string_of_int out.total_nodes ];
  Table.add_row table
    [ "meets real-time"; (if out.real_time_met then "yes" else "no") ];
  Format.fprintf ppf "%s@." (Table.render table);
  out

(* ---- Figure 5 --------------------------------------------------------- *)

let fig5 ppf =
  let cases =
    [
      ("5x5 conv, step 1", Bp_kernels.Conv.input_window ~w:5 ~h:5);
      ("3x3 median, step 1", Window.windowed 3 3);
      ("5x5 coeff, step 5", Window.block 5 5);
      ("1x1 decimate, step 2", Window.v ~step:(Step.v 2 2) Size.one);
    ]
  in
  let rows =
    List.map (fun (l, w) -> (l, Bp_analysis.Reuse.of_window w)) cases
  in
  let table =
    Table.create ~title:"Figure 5(b): data access and reuse per iteration"
      [ "window"; "read"; "new"; "reused"; "reuse" ]
  in
  List.iter
    (fun (l, (r : Bp_analysis.Reuse.t)) ->
      Table.add_row table
        [
          l;
          string_of_int r.Bp_analysis.Reuse.elements_per_fire;
          string_of_int r.Bp_analysis.Reuse.new_per_fire;
          string_of_int r.Bp_analysis.Reuse.reused_per_fire;
          Stats.pct r.Bp_analysis.Reuse.reuse_fraction;
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

(* ---- Figure 8 --------------------------------------------------------- *)

type fig8_result = {
  median_inset : Inset.t;
  conv_inset : Inset.t;
  trim_margins : (int * int * int * int) list;
}

let fig8 ppf =
  let inst = example () in
  let g = inst.App.graph in
  let an = Dataflow.analyze g in
  let subtract = Graph.node_by_name g "Subtract" in
  let inset_of port =
    match Graph.in_channel g subtract.Graph.id port with
    | Some c ->
      let s = Dataflow.stream_of an c.Graph.chan_id in
      (* Add the consumer window's own contribution, as the analysis does. *)
      Inset.add s.Stream.inset
        (Inset.of_window
           (Spec.find_input subtract.Graph.spec port).Bp_kernel.Port.window)
    | None -> Inset.zero
  in
  let median_inset = inset_of "in0" and conv_inset = inset_of "in1" in
  let repairs = Bp_transform.Align.run g in
  let out =
    {
      median_inset;
      conv_inset;
      trim_margins =
        List.map (fun (r : Bp_transform.Align.repair) -> r.Bp_transform.Align.margins) repairs;
    }
  in
  let table =
    Table.create ~title:"Figure 8: inset alignment at the subtract kernel"
      [ "stream"; "inset" ]
  in
  Table.add_row table [ "median path"; Inset.to_string out.median_inset ];
  Table.add_row table [ "convolution path"; Inset.to_string out.conv_inset ];
  List.iter
    (fun (l, r, t, b) ->
      Table.add_row table
        [ "trim inserted"; Printf.sprintf "l=%d r=%d t=%d b=%d" l r t b ])
    out.trim_margins;
  Format.fprintf ppf "%s@." (Table.render table);
  out

(* ---- Figure 9 --------------------------------------------------------- *)

type fig9_row = {
  variant : Bp_apps.Reuse_variants.variant;
  stalls : int;
  late : int;
  met : bool;
  worst_interval_ms : float;
  exact : bool;
}

let fig9 ppf =
  let run variant =
    let inst =
      Bp_apps.Reuse_variants.v ~variant ~frame:(Size.v 24 18)
        ~rate:(Rate.hz 65.) ~n_frames:4 ()
    in
    let g = inst.App.graph in
    let result =
      Sim.run ~graph:g ~mapping:(Mapping.one_to_one g)
        ~machine:Machine.default ()
    in
    let diffs, ok = App.verify inst result in
    ignore diffs;
    let verdict =
      Sim.real_time_verdict result ~expected_frames:inst.App.n_frames
        ~period_s:(App.period_s inst) ()
    in
    {
      variant;
      stalls = result.Sim.input_stalls;
      late = result.Sim.late_emissions;
      met = verdict.Sim.met;
      worst_interval_ms = 1000. *. verdict.Sim.worst_frame_interval_s;
      exact = ok || result.Sim.input_stalls > 0 (* content still exact *);
    }
  in
  let rows =
    List.map run
      [
        Bp_apps.Reuse_variants.Round_robin;
        Bp_apps.Reuse_variants.Blocked;
        Bp_apps.Reuse_variants.Blocked_buffered;
      ]
  in
  let table =
    Table.create ~title:"Figure 9: reuse-optimized buffering ablation"
      [ "variant"; "input stalls"; "late"; "worst frame"; "meets rate" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Bp_apps.Reuse_variants.variant_name r.variant;
          string_of_int r.stalls;
          string_of_int r.late;
          Printf.sprintf "%.2fms" r.worst_interval_ms;
          (if r.met then "yes" else "no");
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

(* ---- Figure 10 -------------------------------------------------------- *)

type fig10_result = {
  ranges : (int * int) array;
  overlap_columns : int list;
  pattern : int array;
  exact : bool;
}

let fig10 ppf =
  let frame = Size.v 96 16 in
  let window = Bp_kernels.Conv.input_window ~w:5 ~h:5 in
  let inst =
    Bp_apps.Parallel_buffer.v ~frame ~rate:(Rate.hz 20.) ~n_frames:2 ()
  in
  let machine = Machine.small_memory in
  let compiled = Pipeline.compile ~machine inst.App.graph in
  let g = compiled.Pipeline.graph in
  (* Recover the column-split ranges the compiler chose. *)
  let ranges =
    List.find_map
      (fun (n : Graph.node) ->
        match n.Graph.meta with
        | Graph.Column_split_meta { ranges } -> Some ranges
        | _ -> None)
      (Graph.nodes g)
  in
  let ranges = Option.value ranges ~default:[||] in
  let pattern =
    List.find_map
      (fun (n : Graph.node) ->
        match n.Graph.meta with
        | Graph.Pattern_join_meta { pattern; _ } -> Some pattern
        | _ -> None)
      (Graph.nodes g)
  in
  let pattern =
    Option.value pattern
      ~default:
        (Bp_kernels.Split_join.stripe_windows_per_row ~frame_w:frame.Size.w
           ~window ~ranges)
  in
  let overlap_columns =
    List.concat
      (List.init (Array.length ranges - 1 |> max 0) (fun k ->
           let _, b = ranges.(k) and a', _ = ranges.(k + 1) in
           List.init (max 0 (b - a')) (fun i -> a' + i)))
  in
  let result = Plan.run_plan ~policy:Plan.One_to_one compiled () in
  let _, ok = App.verify inst result in
  let out = { ranges; overlap_columns; pattern; exact = ok } in
  let table =
    Table.create ~title:"Figure 10: column-split buffer with overlap"
      [ "stripe"; "input columns"; "windows/row" ]
  in
  Array.iteri
    (fun k (a, b) ->
      Table.add_row table
        [
          string_of_int k;
          Printf.sprintf "[%d, %d)" a b;
          string_of_int out.pattern.(k);
        ])
    out.ranges;
  Table.add_rule table;
  Table.add_row table
    [
      "overlap";
      Printf.sprintf "%d columns replicated" (List.length out.overlap_columns);
      "";
    ];
  Table.add_row table
    [ "functional"; (if out.exact then "exact" else "MISMATCH"); "" ];
  Format.fprintf ppf "%s@." (Table.render table);
  out

(* ---- Figure 11 -------------------------------------------------------- *)

type fig11_row = {
  config : string;
  buffers : int;
  compute_replicas : int;
  pes_1to1 : int;
  met : bool;
}

let fig11 ppf =
  let corners =
    [
      ("Small/Slow", Size.v 24 18, Rate.hz 20.);
      ("Small/Fast", Size.v 24 18, Rate.hz 40.);
      ("Big/Slow", Size.v 48 36, Rate.hz 20.);
      ("Big/Fast", Size.v 48 36, Rate.hz 40.);
    ]
  in
  let machine = Machine.small_memory in
  let rows =
    List.map
      (fun (config, frame, rate) ->
        let inst = example ~frame ~rate () in
        let compiled = Pipeline.compile ~machine inst.App.graph in
        let g = compiled.Pipeline.graph in
        let count role =
          List.length
            (List.filter
               (fun (n : Graph.node) -> n.Graph.spec.Spec.role = role)
               (Graph.nodes g))
        in
        let result = Plan.run_plan ~policy:Plan.One_to_one compiled () in
        let verdict =
          Sim.real_time_verdict result ~expected_frames:inst.App.n_frames
            ~period_s:(App.period_s inst) ()
        in
        let _, functional = App.verify inst result in
        {
          config;
          buffers = count Spec.Buffer;
          compute_replicas = count Spec.Compute;
          pes_1to1 = Plan.processors_needed compiled ~policy:Plan.One_to_one;
          met = verdict.Sim.met && functional;
        })
      corners
  in
  let table =
    Table.create
      ~title:"Figure 11: parallelization across input sizes and rates"
      [ "config"; "buffer kernels"; "compute kernels"; "PEs (1:1)"; "meets rate" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.config;
          string_of_int r.buffers;
          string_of_int r.compute_replicas;
          string_of_int r.pes_1to1;
          (if r.met then "yes" else "no");
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

(* ---- Figure 12 / Section V ------------------------------------------- *)

type fig12_result = {
  pes_1to1 : int;
  pes_greedy : int;
  util_1to1 : float;
  util_greedy : float;
}

let fig12 ppf =
  let inst = example () in
  let machine = Machine.default in
  let compiled = Pipeline.compile ~machine inst.App.graph in
  let measure policy =
    let result = Plan.run_plan ~policy compiled () in
    (Array.length result.Sim.procs, Sim.average_utilization result)
  in
  let pes_1to1, util_1to1 = measure Plan.One_to_one in
  let pes_greedy, util_greedy = measure Plan.Greedy in
  let out = { pes_1to1; pes_greedy; util_1to1; util_greedy } in
  let table =
    Table.create
      ~title:"Figure 12 / Section V: 1:1 vs greedy kernel-to-PE mapping"
      [ "mapping"; "PEs"; "avg utilization" ]
  in
  Table.add_row table
    [ "1:1"; string_of_int out.pes_1to1; Stats.pct out.util_1to1 ];
  Table.add_row table
    [ "greedy"; string_of_int out.pes_greedy; Stats.pct out.util_greedy ];
  Table.add_row table
    [
      "improvement";
      "";
      Printf.sprintf "%.2fx" (out.util_greedy /. out.util_1to1);
    ];
  Format.fprintf ppf "%s@." (Table.render table);
  out

(* ---- Figure 13 -------------------------------------------------------- *)

type fig13_row = {
  label : string;
  mapping : string;
  pes : int;
  run : float;
  read : float;
  write : float;
  total : float;
  rt_met : bool;
  functional : bool;
}

type fig13_result = { rows : fig13_row list; average_improvement : float }

let fig13 ppf =
  let rows =
    List.concat_map
      (fun (e : Bp_apps.Suite.entry) ->
        let inst = e.Bp_apps.Suite.build () in
        let compiled =
          Pipeline.compile ~machine:e.Bp_apps.Suite.machine inst.App.graph
        in
        List.map
          (fun policy ->
            let result = Plan.run_plan ~policy compiled () in
            let run, read, write = Sim.utilization_breakdown result in
            let verdict =
              Sim.real_time_verdict result
                ~expected_frames:inst.App.n_frames
                ~period_s:(App.period_s inst) ()
            in
            let _, functional = App.verify inst result in
            {
              label = e.Bp_apps.Suite.label;
              mapping = (match policy with Plan.Greedy -> "GM" | Plan.One_to_one -> "1:1");
              pes = Array.length result.Sim.procs;
              run;
              read;
              write;
              total = run +. read +. write;
              rt_met = verdict.Sim.met;
              functional;
            })
          [ Plan.One_to_one; Plan.Greedy ])
      Bp_apps.Suite.entries
  in
  let improvements =
    List.filter_map
      (fun (e : Bp_apps.Suite.entry) ->
        let l = e.Bp_apps.Suite.label in
        let find m =
          List.find_opt (fun r -> r.label = l && r.mapping = m) rows
        in
        match (find "1:1", find "GM") with
        | Some a, Some b when a.total > 0. -> Some (b.total /. a.total)
        | _ -> None)
      Bp_apps.Suite.entries
  in
  let out =
    { rows; average_improvement = Stats.mean improvements }
  in
  let table =
    Table.create
      ~title:"Figure 13: processor utilization (run/read/write), 1:1 vs GM"
      [ "bench"; "map"; "PEs"; "run"; "read"; "write"; "total"; "rt"; "exact" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          r.mapping;
          string_of_int r.pes;
          Stats.pct r.run;
          Stats.pct r.read;
          Stats.pct r.write;
          Stats.pct r.total;
          (if r.rt_met then "yes" else "no");
          (if r.functional then "yes" else "no");
        ])
    rows;
  Table.add_rule table;
  Table.add_row table
    [
      "avg";
      "GM/1:1";
      "";
      "";
      "";
      "";
      Printf.sprintf "%.2fx" out.average_improvement;
      "";
      "";
    ];
  Format.fprintf ppf "%s@." (Table.render table);
  out

(* ---- PE utilization table (observability layer) ----------------------- *)

type util_row = {
  u_label : string;
  u_mapping : string;
  u_pes : int;
  u_avg : float;
  u_min : float;
  u_max : float;
  u_busiest : string;
}

let utilization_table ppf =
  let rows =
    List.concat_map
      (fun (e : Bp_apps.Suite.entry) ->
        let inst = e.Bp_apps.Suite.build () in
        let compiled =
          Pipeline.compile ~machine:e.Bp_apps.Suite.machine inst.App.graph
        in
        List.map
          (fun policy ->
            let obs =
              Bp_obs.Instrument.create ~graph:compiled.Pipeline.graph ()
            in
            let result =
              Plan.run_plan
                ~observer:(Bp_obs.Instrument.observer obs)
                ~channel_observer:(Bp_obs.Instrument.channel_observer obs)
                ~policy compiled ()
            in
            Bp_obs.Instrument.finalize obs ~result;
            let m = Bp_obs.Instrument.metrics obs in
            let pes = Array.length result.Sim.procs in
            let utils =
              List.init pes (fun p ->
                  Option.value ~default:0.
                    (Bp_obs.Metrics.gauge m (Printf.sprintf "pe.%d.util" p)))
            in
            (* Busiest kernel straight from the metrics contract: the
               [kernel.<name>.service_s] histogram with the largest sum. *)
            let busiest =
              List.fold_left
                (fun (best, best_sum) name ->
                  match Bp_obs.Metrics.histogram m name with
                  | Some h when h.Bp_obs.Metrics.h_sum > best_sum ->
                    let stripped =
                      String.sub name 7 (String.length name - 7 - 10)
                    in
                    (stripped, h.Bp_obs.Metrics.h_sum)
                  | _ -> (best, best_sum))
                ("-", 0.)
                (List.filter
                   (fun n ->
                     String.length n > 17
                     && String.sub n 0 7 = "kernel."
                     && Filename.check_suffix n ".service_s")
                   (Bp_obs.Metrics.names m))
              |> fst
            in
            {
              u_label = e.Bp_apps.Suite.label;
              u_mapping =
                (match policy with Plan.Greedy -> "GM" | Plan.One_to_one -> "1:1");
              u_pes = pes;
              u_avg = Stats.mean utils;
              u_min = (match utils with [] -> 0. | l -> List.fold_left Float.min infinity l);
              u_max = (match utils with [] -> 0. | l -> Stats.maximum l);
              u_busiest = busiest;
            })
          [ Plan.One_to_one; Plan.Greedy ])
      Bp_apps.Suite.entries
  in
  let table =
    Table.create
      ~title:
        "PE utilization (from the metrics layer): avg/min/max per mapping"
      [ "bench"; "map"; "PEs"; "avg"; "min"; "max"; "busiest kernel" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.u_label;
          r.u_mapping;
          string_of_int r.u_pes;
          Stats.pct r.u_avg;
          Stats.pct r.u_min;
          Stats.pct r.u_max;
          r.u_busiest;
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

(* ---- Placement ablation ----------------------------------------------- *)

type placement_result = {
  random_cost : float;
  annealed_cost : float;
  improvement : float;
}

let placement_ablation ppf =
  let inst = example () in
  let machine = Machine.default in
  let compiled = Pipeline.compile ~machine inst.App.graph in
  let mapping = Plan.mapping compiled ~policy:Plan.One_to_one in
  let an = compiled.Pipeline.analysis in
  let random = Bp_placement.Placement.random_placement ~seed:5 an mapping in
  (* The annealed placement is already in the plan — the [place] pass ran. *)
  let annealed = Plan.placement compiled ~policy:Plan.One_to_one in
  let out =
    {
      random_cost = random.Bp_placement.Placement.cost;
      annealed_cost = annealed.Bp_placement.Placement.cost;
      improvement =
        (if annealed.Bp_placement.Placement.cost > 0. then
           random.Bp_placement.Placement.cost
           /. annealed.Bp_placement.Placement.cost
         else infinity);
    }
  in
  let table =
    Table.create
      ~title:"Placement: simulated annealing vs random (word-hops/frame)"
      [ "placement"; "cost" ]
  in
  Table.add_row table [ "random"; Printf.sprintf "%.0f" out.random_cost ];
  Table.add_row table [ "annealed"; Printf.sprintf "%.0f" out.annealed_cost ];
  Table.add_row table
    [ "improvement"; Printf.sprintf "%.2fx" out.improvement ];
  Format.fprintf ppf "%s@." (Table.render table);
  out

type energy_row = {
  e_mapping : string;
  e_pes : int;
  e_total_uj : float;
  e_static_uj : float;
}

let energy_ablation ppf =
  let inst = example () in
  let machine = Machine.default in
  let compiled = Pipeline.compile ~machine inst.App.graph in
  let rows =
    List.map
      (fun policy ->
        let result = Plan.run_plan ~policy compiled () in
        let e = Bp_sim.Energy.of_result ~machine result in
        {
          e_mapping = Plan.policy_name policy;
          e_pes = e.Bp_sim.Energy.pes;
          e_total_uj = e.Bp_sim.Energy.total_uj;
          e_static_uj = e.Bp_sim.Energy.static_uj;
        })
      [ Plan.One_to_one; Plan.Greedy ]
  in
  let table =
    Table.create ~title:"Energy (extension): multiplexing saves static power"
      [ "mapping"; "PEs"; "static uJ"; "total uJ" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.e_mapping;
          string_of_int r.e_pes;
          Printf.sprintf "%.1f" r.e_static_uj;
          Printf.sprintf "%.1f" r.e_total_uj;
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

type machine_row = {
  m_name : string;
  m_compute_kernels : int;
  m_pes_1to1 : int;
  m_met : bool;
}

let machine_ablation ppf =
  let rows =
    List.map
      (fun (m_name, machine) ->
        let inst = example ~rate:(Rate.hz 40.) () in
        let compiled = Pipeline.compile ~machine inst.App.graph in
        let g = compiled.Pipeline.graph in
        let computes =
          List.length
            (List.filter
               (fun (n : Graph.node) -> n.Graph.spec.Spec.role = Spec.Compute)
               (Graph.nodes g))
        in
        let result = Plan.run_plan ~policy:Plan.One_to_one compiled () in
        let verdict =
          Sim.real_time_verdict result ~expected_frames:inst.App.n_frames
            ~period_s:(App.period_s inst) ()
        in
        {
          m_name;
          m_compute_kernels = computes;
          m_pes_1to1 = Array.length result.Sim.procs;
          m_met = verdict.Sim.met;
        })
      [ ("default (1 MHz)", Machine.default); ("fast-pe (4 MHz)", Machine.fast_pe) ]
  in
  let table =
    Table.create
      ~title:"Machines (extension): faster PEs need fewer kernels"
      [ "machine"; "compute kernels"; "PEs (1:1)"; "meets rate" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.m_name;
          string_of_int r.m_compute_kernels;
          string_of_int r.m_pes_1to1;
          (if r.m_met then "yes" else "no");
        ])
    rows;
  Format.fprintf ppf "%s@." (Table.render table);
  rows

let export_dots ~dir ppf =
  let write name graph_builder =
    let path = Filename.concat dir name in
    Bp_viz.Dot.write_file ~path (graph_builder ());
    Format.fprintf ppf "wrote %s@." path;
    path
  in
  let raw () =
    Bp_viz.Dot.to_dot ~title:"figure 1(b): raw application"
      (example ()).App.graph
  in
  let buffered () =
    let g = (example ()).App.graph in
    ignore (Bp_transform.Align.run g);
    ignore (Bp_transform.Buffering.run g);
    Bp_viz.Dot.to_dot ~title:"figure 3: buffered and trimmed" g
  in
  let parallel ~clusters title () =
    let inst = example ~frame:(Size.v 48 36) ~rate:(Rate.hz 40.) () in
    let compiled = Pipeline.compile ~machine:Machine.small_memory inst.App.graph in
    let groups = if clusters then compiled.Pipeline.greedy_groups else [] in
    Bp_viz.Dot.to_dot ~title ~groups compiled.Pipeline.graph
  in
  let p1 = write "fig1b.dot" raw in
  let p2 = write "fig3.dot" buffered in
  let p3 = write "fig4.dot" (parallel ~clusters:false "figure 4: parallelized") in
  let p4 =
    write "fig12.dot"
      (parallel ~clusters:true "figure 12: greedy kernel-to-PE mapping")
  in
  [ p1; p2; p3; p4 ]

let all ppf =
  ignore (fig2 ppf);
  ignore (fig3 ppf);
  ignore (fig4 ppf);
  ignore (fig5 ppf);
  ignore (fig8 ppf);
  ignore (fig9 ppf);
  ignore (fig10 ppf);
  ignore (fig11 ppf);
  ignore (fig12 ppf);
  ignore (fig13 ppf);
  ignore (utilization_table ppf);
  ignore (placement_ablation ppf);
  ignore (energy_ablation ppf);
  ignore (machine_ablation ppf)
