(** Reproduction harness: one entry per figure/table of the paper.

    Every [figN] function rebuilds the relevant workload from scratch, runs
    whatever analysis/compilation/simulation the artifact needs, prints a
    plain-text rendering to the given formatter, and returns structured
    results so tests and benches can assert on the shape (who wins, by what
    factor) without parsing text. See EXPERIMENTS.md for paper-vs-measured
    commentary. *)

type fig2_row = {
  kernel : string;
  iterations : Bp_geometry.Size.t option;
  rate_hz : float option;
  inset : Bp_geometry.Inset.t option;  (** Of the kernel's output stream. *)
}

val fig2 : Format.formatter -> fig2_row list
(** Iteration sizes, rates and insets of the Figure 1(b) application —
    the annotations of Figure 2. *)

type fig3_result = {
  buffers : (string * Bp_geometry.Size.t) list;  (** name, storage. *)
  insets : (string * (int * int * int * int)) list;  (** name, margins. *)
}

val fig3 : Format.formatter -> fig3_result
(** Automatic buffering and trimming of the example (Figure 3). *)

type fig4_result = {
  replicas : (string * int) list;  (** kernel class -> instances. *)
  splits : int;
  joins : int;
  total_nodes : int;
  real_time_met : bool;
}

val fig4 : Format.formatter -> fig4_result
(** The example parallelized for a demanding input (Figure 4), simulated to
    verify the throughput. *)

val fig5 : Format.formatter -> (string * Bp_analysis.Reuse.t) list
(** Data access and reuse of representative windows (Figure 5(b)); the 5×5
    unit-step window must report 24/25 reuse. *)

type fig8_result = {
  median_inset : Bp_geometry.Inset.t;
  conv_inset : Bp_geometry.Inset.t;
  trim_margins : (int * int * int * int) list;  (** Per repaired input. *)
}

val fig8 : Format.formatter -> fig8_result
(** Output alignment at the subtract kernel (Figure 8). *)

type fig9_row = {
  variant : Bp_apps.Reuse_variants.variant;
  stalls : int;
  late : int;
  met : bool;
  worst_interval_ms : float;
  exact : bool;
}

val fig9 : Format.formatter -> fig9_row list
(** The buffering-for-reuse ablation (Figure 9): round-robin meets rate,
    blocked-without-output-buffers misses it, blocked-with-buffers meets
    it, all producing identical pixels. *)

type fig10_result = {
  ranges : (int * int) array;
  overlap_columns : int list;  (** Columns sent to more than one stripe. *)
  pattern : int array;
  exact : bool;  (** Striped execution matches the golden filter. *)
}

val fig10 : Format.formatter -> fig10_result
(** Column-wise buffer splitting with overlap replication (Figure 10). *)

type fig11_row = {
  config : string;  (** "Small/Slow" ... *)
  buffers : int;  (** Buffer kernels after splitting. *)
  compute_replicas : int;  (** Compute kernel instances. *)
  pes_1to1 : int;
  met : bool;
}

val fig11 : Format.formatter -> fig11_row list
(** Parallelization across the four input size/rate corners (Figure 11):
    bigger inputs add buffers, faster rates add compute replicas, all four
    meet their rates. *)

type fig12_result = {
  pes_1to1 : int;
  pes_greedy : int;
  util_1to1 : float;
  util_greedy : float;
}

val fig12 : Format.formatter -> fig12_result
(** Kernel-to-processor mappings of the example (Figure 12) with measured
    utilizations (the Section V "20% to 37%" numbers). *)

type fig13_row = {
  label : string;
  mapping : string;  (** "1:1" or "GM". *)
  pes : int;
  run : float;
  read : float;
  write : float;
  total : float;
  rt_met : bool;
  functional : bool;
}

type fig13_result = {
  rows : fig13_row list;
  average_improvement : float;
      (** Mean over benchmarks of GM/1:1 utilization — the paper reports
          1.5×. *)
}

val fig13 : Format.formatter -> fig13_result
(** Processor utilization for the full benchmark suite under both mappings
    (Figure 13). *)

type util_row = {
  u_label : string;
  u_mapping : string;  (** "1:1" or "GM". *)
  u_pes : int;
  u_avg : float;
  u_min : float;
  u_max : float;
  u_busiest : string;
      (** The kernel with the largest total service time, read from the
          [kernel.<name>.service_s] metrics. *)
}

val utilization_table : Format.formatter -> util_row list
(** Per-PE utilization for the whole suite under both mappings, computed
    from the observability layer's [pe.<p>.util] gauges rather than from
    [Sim.result] directly — the table exercises (and therefore guards) the
    instrumentation contract of docs/OBSERVABILITY.md. *)

type placement_result = {
  random_cost : float;
  annealed_cost : float;
  improvement : float;
}

val placement_ablation : Format.formatter -> placement_result
(** The standalone simulated-annealing placer on the compiled example:
    annealed communication cost must beat a random placement. *)

type energy_row = {
  e_mapping : string;
  e_pes : int;
  e_total_uj : float;
  e_static_uj : float;
}

val energy_ablation : Format.formatter -> energy_row list
(** Extension: the energy consequence of greedy multiplexing on the running
    example — same active work, fewer powered processors, lower static and
    total energy (the quantitative version of Section V's motivation). *)

val export_dots : dir:string -> Format.formatter -> string list
(** Write Graphviz renderings of the figure graphs into [dir]:
    [fig1b.dot] (the raw application), [fig3.dot] (buffered and trimmed),
    [fig4.dot] (parallelized), and [fig12.dot] (parallelized with the
    greedy processor clusters). Returns the paths written. *)

type machine_row = {
  m_name : string;
  m_compute_kernels : int;
  m_pes_1to1 : int;
  m_met : bool;
}

val machine_ablation : Format.formatter -> machine_row list
(** Extension: the same application and rate compiled against the default
    and the 4× faster PE — faster processors need fewer replicas and fewer
    cores for the same guarantee. *)

val all : Format.formatter -> unit
(** Run every reproduction in paper order. *)
