(* Binary min-heap over (time, seq) with FIFO tie-breaking.

   The representation is three parallel arrays rather than an array of
   entry records: [times] is a float array, so times live unboxed, and a
   push/pop pair allocates nothing once the arrays have grown to the
   working size. The simulator pops one event per simulated step, so a
   per-entry record (and the option/tuple a record-based [pop] returns)
   would be a steady per-event allocation — see docs/PERFORMANCE.md.

   Popped value slots are overwritten with [dummy] so the heap never
   pins a dead event (and transitively its simulated items). *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  dummy : 'a;
  mutable size : int;
  mutable next_seq : int;
}

let create ~dummy () =
  { times = [||]; seqs = [||]; values = [||]; dummy; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let size t = t.size

let less t i j =
  t.times.(i) < t.times.(j)
  || (Float.equal t.times.(i) t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tt = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tt;
  let ts = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- ts;
  let tv = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- tv

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow_if_full t =
  if t.size = Array.length t.values then begin
    let cap = max 16 (2 * Array.length t.values) in
    let times = Array.make cap 0. in
    let seqs = Array.make cap 0 in
    let values = Array.make cap t.dummy in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.values 0 values 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.values <- values
  end

let push_seq t ~time ~seq value =
  grow_if_full t;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- seq;
  t.values.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let reserve_seq t =
  let s = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  s

let push t ~time value = push_seq t ~time ~seq:(reserve_seq t) value

let front_time_exn t =
  if t.size = 0 then invalid_arg "Heap.front_time_exn: empty";
  t.times.(0)

let pop_value_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_value_exn: empty";
  let v = t.values.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.times.(0) <- t.times.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.values.(0) <- t.values.(t.size);
    t.values.(t.size) <- t.dummy;
    sift_down t 0
  end
  else t.values.(0) <- t.dummy;
  v

let pop t =
  if t.size = 0 then None
  else
    let time = t.times.(0) in
    Some (time, pop_value_exn t)

let peek_time t = if t.size = 0 then None else Some t.times.(0)
