(* Slots distinguish live entries from vacated ones so [pop] can clear the
   cell it vacates: leaving the old entry behind would pin its value (an
   event record, and transitively simulated items) until a later push
   happens to overwrite that index. [Empty] is a constant constructor, so
   clearing allocates nothing, and the inline record keeps a live entry to
   a single heap block, as before. *)
type 'a slot = Empty | Entry of { time : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let size t = t.size

let less a b =
  match (a, b) with
  | Entry a, Entry b ->
    a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)
  | (Empty, _ | _, Empty) -> assert false (* never compared beyond [size] *)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time value =
  let entry = Entry { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap Empty in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Empty -> assert false
    | Entry { time; value; _ } ->
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        t.data.(t.size) <- Empty;
        sift_down t 0
      end
      else t.data.(0) <- Empty;
      Some (time, value)

let peek_time t =
  if t.size = 0 then None
  else match t.data.(0) with Empty -> assert false | Entry e -> Some e.time
