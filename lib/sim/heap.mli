(** A minimal binary min-heap keyed by (time, sequence).

    The event queue of the simulator. Ties on time break by insertion
    sequence, making runs deterministic. [pop] clears the array slot it
    vacates, so the heap never retains a reference to an entry after
    returning it (popped events — and whatever simulated data they point
    to — are garbage as soon as the caller drops them).

    Times are stored in a plain [float array], so a push/pop pair is
    allocation-free at steady state; the event loop uses
    {!front_time_exn}/{!pop_value_exn} to keep it that way, while {!pop}
    remains as the convenient (allocating) form. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] overwrites vacated value slots; it is never returned. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at [time], stamped with the next sequence number. *)

val reserve_seq : 'a t -> int
(** Claim the next sequence number without inserting anything. The
    quasi-static engine reserves an event's tie-breaking rank at the
    moment the eager engine would have pushed it, so a wake that is
    elided and later restored by {!push_seq} lands in exactly the heap
    order the eager push would have had. *)

val push_seq : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an event at [time] with an explicitly reserved sequence
    number. [push t ~time v] is [push_seq t ~time ~seq:(reserve_seq t) v]. *)

val front_time_exn : 'a t -> float
(** Time of the earliest event. Raises [Invalid_argument] when empty. *)

val pop_value_exn : 'a t -> 'a
(** Remove and return the earliest event (its value only, see
    {!front_time_exn}). Raises [Invalid_argument] when empty. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event with its time. Allocates; the
    hot loop uses {!front_time_exn} + {!pop_value_exn} instead. *)

val peek_time : 'a t -> float option
