(** A minimal binary min-heap keyed by (time, sequence).

    The event queue of the simulator. Ties on time break by insertion
    sequence, making runs deterministic. [pop] clears the array slot it
    vacates, so the heap never retains a reference to an entry after
    returning it (popped events — and whatever simulated data they point
    to — are garbage as soon as the caller drops them). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
