type 'a t = {
  data : 'a array;
  dummy : 'a;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
}

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity dummy; dummy; head = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.data
let space t = Array.length t.data - t.len

(* Avoid [mod] (an integer division) on the hot path: indices stay in
   [0, 2*capacity), one conditional subtraction re-wraps them. *)
let[@inline] wrap t i = if i >= Array.length t.data then i - Array.length t.data else i

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.data.(t.head)

let peek_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.peek_at: out of range";
  t.data.(wrap t (t.head + i))

let push t v =
  if t.len = Array.length t.data then invalid_arg "Ring.push: full";
  t.data.(wrap t (t.head + t.len)) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let v = t.data.(t.head) in
  (* Clear the slot so the ring never keeps popped items alive. *)
  t.data.(t.head) <- t.dummy;
  t.head <- wrap t (t.head + 1);
  t.len <- t.len - 1;
  v

let to_list t = List.init t.len (fun i -> t.data.(wrap t (t.head + i)))
