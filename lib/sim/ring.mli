(** A fixed-capacity circular FIFO backed by one preallocated array.

    The channel representation of the simulator: a bounded channel of
    capacity [n] costs exactly one [n]-slot array for the whole run, with
    no per-element heap cells (unlike [Queue.t], which allocates a cons
    cell per push). [pop] overwrites the vacated slot with the [dummy]
    element supplied at creation, so the ring never pins popped items —
    in steady state a simulation's channels allocate nothing at all.

    Bounds are the caller's contract: [push] on a full ring and [pop]/
    [peek] on an empty one raise [Invalid_argument]. The simulator always
    guards with {!space} / {!is_empty} first, exactly as kernels guard
    with [Behaviour.io.space]. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** A ring holding at most [capacity] elements. [dummy] fills empty
    slots; it is never returned. Raises if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val space : 'a t -> int
(** Free slots: [capacity - length]. *)

val peek : 'a t -> 'a
(** The front element, without consuming. Raises if empty. *)

val peek_at : 'a t -> int -> 'a
(** [peek_at t i] is the [i]-th element from the front ([peek_at t 0 =
    peek t]), without consuming. Raises if [i] is outside [0, length).
    Lets the static executor prove a prefix of queued items has the
    right kind before arming a multi-firing run. *)

val push : 'a t -> 'a -> unit
(** Append at the back. Raises if full. *)

val pop : 'a t -> 'a
(** Consume the front element and clear its slot. Raises if empty. *)

val to_list : 'a t -> 'a list
(** Front-to-back contents (diagnostics and tests; allocates). *)
