open Bp_util
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Item = Bp_kernel.Item
module Behaviour = Bp_kernel.Behaviour
module Machine = Bp_machine.Machine
module Token = Bp_token.Token
module Size = Bp_geometry.Size
module Rate = Bp_geometry.Rate
module Image = Bp_image.Image
module Pool = Bp_image.Pool

type proc_stats = {
  run_s : float;
  read_s : float;
  write_s : float;
  fires : int;
}

type node_stats = { node_fires : int; node_busy_s : float }

type result = {
  duration_s : float;
  procs : proc_stats array;
  input_stalls : int;
  late_emissions : int;
  max_input_lateness_s : float;
  sink_eofs : (Graph.node_id * float list) list;
  sink_first_data : (Graph.node_id * float) list;
  source_frame_births : (Graph.node_id * float list) list;
  node_stats : (Graph.node_id * node_stats) list;
  channel_depths : (int * int) list;  (* channel id -> max occupancy *)
  leftover_channels : (int * int * Item.t) list;
  leftover_items : int;
  events_processed : int;
  timed_out : bool;
  pool : Pool.stats option;  (* chunk-pool counters; None when pooling off *)
  static_regions : int;  (* static regions of the schedule, 0 if none *)
  static_fired : int;  (* firings that matched their table entry *)
  static_fallback_events : int;  (* table desyncs observed at runtime *)
  static_elided_events : int;  (* provably-declining wakes never dispatched *)
}

type placement_model = {
  tile_of_proc : int -> int * int;
  hop_cycles_per_word : float;
}

type channel_event = Ch_push | Ch_pop | Ch_block

type kernel_state = Ks_busy | Ks_blocked_input | Ks_blocked_output | Ks_idle

let kernel_state_name = function
  | Ks_busy -> "busy"
  | Ks_blocked_input -> "blocked-on-input"
  | Ks_blocked_output -> "blocked-on-output"
  | Ks_idle -> "idle"

(* ---- runtime structures ----------------------------------------------

   The engine is event-driven: instead of rescanning every processor to a
   fixpoint after each event (the original engine, preserved in
   {!Sim_reference}), each channel knows the two parties it connects, and
   a push, pop, or processor-release marks exactly the parties whose
   readiness it may have changed. Every [try_step] is failure-pure — a
   declined firing mutates nothing — so a processor whose kernels saw no
   adjacent-channel change since their last declined attempt would
   deterministically decline again; skipping it is exact, not an
   approximation. The equivalence is held down by the suite-wide
   differential test against {!Sim_reference}.

   Allocation discipline: hot mutable floats live in [float array]
   side-state ([rt_f], [t_f], the per-proc arrays inside [run]) rather
   than in mutable record fields, because without flambda a store to a
   mutable float field of a mixed record boxes the float — at one or more
   stores per event that was a measurable slice of the very minor-GC
   pressure this engine exists to avoid (docs/PERFORMANCE.md). *)

type chan_rt = {
  id : int;
  ring : Item.t Ring.t;
  mutable hops : int;  (* mesh distance between producer and consumer *)
  mutable max_depth : int;
  mutable producer : party;  (* woken by Ch_pop: space freed *)
  mutable consumer : party;  (* woken by Ch_push: data available *)
}

(* Who reacts when a channel changes. Wired after construction, because
   channels and node runtimes refer to each other. *)
and party =
  | P_none
  | P_proc of int  (* an on-chip kernel: mark its processor ready *)
  | P_sink of node_rt  (* an off-chip sink: queue it for draining *)
  | P_emit of emitter_rt  (* a self-driven emitter: retry if blocked *)

and node_rt = {
  node : Graph.node;
  behaviour : Behaviour.t;
  in_chans : (string * chan_rt) array;  (* bound once at setup *)
  out_chans : (string * chan_rt array) array;
  proc : int option;
  mutable io : Behaviour.io;  (* built once; counters reset per firing *)
  mutable cw_read : int;  (* words read by the current firing *)
  mutable cw_write : int;
  mutable cw_hop : int;
  mutable cw_full_out : int;  (* full output channel the attempt saw, or -1 *)
  mutable s_marked : bool;  (* sinks only: queued for draining *)
  mutable s_first_seen : bool;  (* sinks only: first data chunk recorded *)
  mutable rt_fires : int;
  (* Quasi-static table cursor: method names of the node's firing table
     (empty when the schedule has none), the next expected position, and
     whether the run is still in sync with the table. Telemetry only —
     see {!Static_schedule}. *)
  st_prelude : string array;
  st_period : string array;
  mutable st_pos : int;
  mutable st_synced : bool;
  rt_f : float array;  (* 0 = total busy seconds; 1 = current busy end *)
  mutable ks_state : kernel_state;  (* as of the last dispatch examination *)
  mutable fb_pending : bool;  (* sources only: next Data push starts a frame *)
}

and emitter_rt = {
  em : node_rt;
  em_burst : int;  (* Spec.emission_burst: space one firing may need *)
  em_kind : em_kind;
  mutable em_event : event;  (* interned; re-pushed on every (re)schedule *)
  mutable em_blocked : bool;  (* waiting for space; woken by Ch_pop *)
  mutable em_woken : bool;
}

and em_kind = Em_const | Em_timed of timed_rt

and timed_rt = {
  period : float;
  t_f : float array;  (* 0 = next due time; 1 = max lateness *)
  mutable stalls : int;
  mutable late : int;
}

and event = Source_slot of emitter_rt | Const_emit of emitter_rt
          | Proc_free of int

type proc_rt = {
  mutable cursor : int;  (* round-robin position among its kernels *)
  mutable last_fired : int;  (* kernel index of the previous firing *)
  kernels : node_rt array;
  mutable ready : bool;  (* marked for the next dispatch sweep *)
  mutable p_fires : int;
  (* Lazy processor-free wake (quasi-static mode): when every kernel on
     the processor is provably starved at fire time, the [Proc_free]
     event is not pushed; its heap sequence number is reserved here so a
     later restore lands in the exact order the eager push would have. *)
  mutable pf_scheduled : bool;
  mutable pf_seq : int;
}

(* Channel rings hold plain [Item.t]; popped slots are overwritten with
   this throwaway control item so the ring never pins live pixel data. *)
let dummy_item = Item.ctl (Token.eof (-1))

let find_port what (rt : node_rt) (a : (string * 'a) array) port =
  let n = Array.length a in
  let rec go i =
    if i >= n then
      Err.graphf "%s: no %s channel %S" rt.node.Graph.name what port
    else
      let name, c = a.(i) in
      if String.equal name port then c else go (i + 1)
  in
  go 0

(* ---- main engine ------------------------------------------------------ *)

let run ?(max_time_s = 300.) ?(max_events = 50_000_000) ?(pool = true)
    ?chunk_pool ?placement ?observer ?channel_observer ?state_observer
    ?static_schedule ~graph:g ~mapping ~machine () =
  Graph.validate g;
  let pe = machine.Machine.pe in
  (* Quasi-static mode: active only when a schedule is supplied AND no
     observer is installed. The elided examinations are exactly ones that
     would decline (the [starved] oracle contract), so simulated outcomes
     are bit-identical — but observers report *examinations* (state
     intervals, per-attempt block events), which elision would thin out.
     With any observer present the engine stays fully event-driven. *)
  let static_mode =
    Option.is_some static_schedule
    && (not (Option.is_some observer))
    && (not (Option.is_some channel_observer))
    && not (Option.is_some state_observer)
  in
  let sched =
    match static_schedule with
    | Some s -> s
    | None -> Static_schedule.empty
  in
  let methods_of (tbl : Static_schedule.node_table option) =
    match tbl with
    | None -> ([||], [||])
    | Some tbl ->
      ( Array.map (fun e -> e.Static_schedule.e_method)
          tbl.Static_schedule.t_prelude,
        Array.map (fun e -> e.Static_schedule.e_method)
          tbl.Static_schedule.t_period )
  in
  (* Current simulated time, in a one-slot float array so stores stay
     unboxed (a [float ref] boxes on every [:=] without flambda). *)
  let now = [| 0. |] in
  (* Channels: preallocated rings, indexed by a plain array over a dense
     remap of channel ids (graph ids are small ints but need not be
     contiguous after transforms). *)
  let graph_chans = Graph.channels g in
  let chan_tbl = Hashtbl.create 64 in
  List.iter
    (fun (c : Graph.channel) ->
      Hashtbl.replace chan_tbl c.Graph.chan_id
        {
          id = c.Graph.chan_id;
          ring = Ring.create ~capacity:c.Graph.capacity ~dummy:dummy_item;
          hops = 0;
          max_depth = 0;
          producer = P_none;
          consumer = P_none;
        })
    graph_chans;
  let chan_rt id = Hashtbl.find chan_tbl id in
  let all_chans =
    (* Deterministic order for the result lists. *)
    List.map (fun (c : Graph.channel) -> chan_rt c.Graph.chan_id)
      (List.sort
         (fun (a : Graph.channel) b -> compare a.Graph.chan_id b.Graph.chan_id)
         graph_chans)
  in
  (* Node runtimes, with port->channel bindings resolved once. *)
  let sink_eof_times : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let sink_first_data : (Graph.node_id, float) Hashtbl.t = Hashtbl.create 8 in
  (* Per timed source, the emission time of each frame's first data item
     (newest first) — the birth tags sinks' per-frame latency is measured
     against. *)
  let frame_births : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  (* One pool for the whole run. Every chunk a behaviour acquires or pops
     and does not push onward comes back here, so steady state recycles a
     fixed working set instead of allocating. [~pool:false] falls back to
     the allocation-naive plane (releases are dropped, acquires allocate)
     for A/B measurement — results are bit-identical either way.
     [?chunk_pool] lends an existing pool instead — the per-domain reuse
     path of docs/PARALLELISM.md: a sweep worker keeps its free lists
     warm across runs, and this run's [result.pool] reports the deltas
     it contributed. Acquired buffers are zeroed in all three modes, so
     the simulated outcome never depends on the choice. *)
  let pool_before = Option.map Pool.stats chunk_pool in
  let chunk_pool =
    match chunk_pool with
    | Some _ as lent -> lent
    | None -> if pool then Some (Pool.create ()) else None
  in
  let acquire_chunk, release_chunk =
    match chunk_pool with
    | Some p -> ((fun s -> Pool.acquire p s), fun img -> Pool.release p img)
    | None -> (Image.create, fun _ -> ())
  in
  let dummy_io =
    let fail _ = assert false in
    { Behaviour.peek = fail; pop = fail; push = (fun _ _ -> assert false);
      space = fail; acquire = fail; release = (fun _ -> assert false);
      has_input = fail }
  in
  let node_rts = Hashtbl.create 64 in
  let static_ids =
    if static_mode then Static_schedule.static_node_ids sched else []
  in
  List.iter
    (fun (n : Graph.node) ->
      let in_chans =
        Array.of_list
          (List.map
             (fun (c : Graph.channel) ->
               (c.Graph.dst.Graph.port, chan_rt c.Graph.chan_id))
             (Graph.in_channels g n.Graph.id))
      in
      let out_chans =
        Array.of_list
          (List.map
             (fun (p : Bp_kernel.Port.t) ->
               ( p.Bp_kernel.Port.name,
                 Array.of_list
                   (List.map
                      (fun (c : Graph.channel) -> chan_rt c.Graph.chan_id)
                      (Graph.out_channels g n.Graph.id
                         ~port:p.Bp_kernel.Port.name ())) ))
             n.Graph.spec.Spec.outputs)
      in
      (* Only static-region members are reconciled against their tables:
         a node excluded from every static region (user tokens, or an
         unverified period) has a firing order the schedule deliberately
         refuses to predict, so holding it to the recorder's order would
         report spurious desyncs. *)
      let st_prelude, st_period =
        methods_of
          (if static_mode && List.mem n.Graph.id static_ids then
             Static_schedule.table sched n.Graph.id
           else None)
      in
      let rt =
        {
          node = n;
          behaviour = n.Graph.spec.Spec.make_behaviour ();
          in_chans;
          out_chans;
          proc = Mapping.processor_of mapping n.Graph.id;
          io = dummy_io;
          cw_read = 0;
          cw_write = 0;
          cw_hop = 0;
          cw_full_out = -1;
          s_marked = false;
          s_first_seen = false;
          rt_fires = 0;
          st_prelude;
          st_period;
          st_pos = 0;
          st_synced = Array.length st_period > 0;
          rt_f = [| 0.; 0. |];
          ks_state = Ks_idle;
          fb_pending = true;
        }
      in
      if n.Graph.spec.Spec.role = Spec.Sink then
        Hashtbl.replace sink_eof_times n.Graph.id (ref []);
      if n.Graph.spec.Spec.role = Spec.Source then
        Hashtbl.replace frame_births n.Graph.id (ref []);
      Hashtbl.replace node_rts n.Graph.id rt)
    (Graph.nodes g);
  let node_rt id = Hashtbl.find node_rts id in
  (* Network distances, when a placement is supplied: off-chip endpoints
     (sources, sinks) sit at the mesh edge, tile (0,0). *)
  (match placement with
  | None -> ()
  | Some p ->
    let tile id =
      match Mapping.processor_of mapping id with
      | Some proc -> p.tile_of_proc proc
      | None -> (0, 0)
    in
    List.iter
      (fun (c : Graph.channel) ->
        let x0, y0 = tile c.Graph.src.Graph.node in
        let x1, y1 = tile c.Graph.dst.Graph.node in
        (chan_rt c.Graph.chan_id).hops <- abs (x0 - x1) + abs (y0 - y1))
      graph_chans);
  (* Processors: a record for the int/array state, parallel float arrays
     for the accumulated times (field stores would box). *)
  let nprocs = Mapping.processors mapping in
  let procs =
    Array.init nprocs (fun p ->
        {
          cursor = 0;
          last_fired = -1;
          kernels =
            Array.of_list (List.map node_rt (Mapping.nodes_on mapping p));
          ready = true;  (* every processor gets one initial scan *)
          p_fires = 0;
          pf_scheduled = true;  (* nothing elided yet *)
          pf_seq = 0;
        })
  in
  let p_busy_until = Array.make nprocs 0. in
  let p_run = Array.make nprocs 0. in
  let p_read = Array.make nprocs 0. in
  let p_write = Array.make nprocs 0. in
  (* Interned events: each party's wake event is allocated once and
     re-pushed, not rebuilt per scheduling. *)
  let proc_free = Array.init nprocs (fun p -> Proc_free p) in
  (* Emitters: sources and constant sources drive themselves off the
     event queue rather than a processor. *)
  let emitter_tbl : (Graph.node_id, emitter_rt) Hashtbl.t = Hashtbl.create 8 in
  let emitters = ref [] in
  let add_emitter (n : Graph.node) kind =
    let e =
      {
        em = node_rt n.Graph.id;
        em_burst = n.Graph.spec.Spec.emission_burst;
        em_kind = kind;
        em_event = Proc_free (-1);
        em_blocked = false;
        em_woken = false;
      }
    in
    e.em_event <-
      (match kind with Em_const -> Const_emit e | Em_timed _ -> Source_slot e);
    Hashtbl.replace emitter_tbl n.Graph.id e;
    emitters := e :: !emitters;
    e
  in
  let sinks =
    Array.of_list
      (List.map
         (fun (n : Graph.node) ->
           let rt = node_rt n.Graph.id in
           rt.s_marked <- true;  (* one initial drain *)
           rt)
         (Graph.sinks g))
  in
  let events : event Heap.t = Heap.create ~dummy:(Proc_free (-1)) () in
  (* Constant sources emit before the first source slot so configuration
     data (coefficients, bin bounds) is in place when pixel 0 arrives. *)
  List.iter
    (fun (n : Graph.node) ->
      Heap.push events ~time:0. (add_emitter n Em_const).em_event)
    (Graph.const_sources g);
  let timed_srcs =
    List.map
      (fun (n : Graph.node) ->
        let frame, rate =
          match n.Graph.meta with
          | Graph.Source_meta { frame; rate } -> (frame, rate)
          | _ -> Err.graphf "source %s lacks Source_meta" n.Graph.name
        in
        let period = Rate.element_period_s rate ~frame in
        let t = { period; t_f = [| 0.; 0. |]; stalls = 0; late = 0 } in
        Heap.push events ~time:0. (add_emitter n (Em_timed t)).em_event;
        t)
      (Graph.sources g)
  in
  (* Wire each channel to the parties its changes can unblock. *)
  List.iter
    (fun (c : Graph.channel) ->
      let rt = chan_rt c.Graph.chan_id in
      let src = node_rt c.Graph.src.Graph.node in
      rt.producer <-
        (match Hashtbl.find_opt emitter_tbl c.Graph.src.Graph.node with
        | Some e -> P_emit e
        | None -> (
          match src.proc with Some p -> P_proc p | None -> P_none));
      let dst = node_rt c.Graph.dst.Graph.node in
      rt.consumer <-
        (if dst.node.Graph.spec.Spec.role = Spec.Sink then P_sink dst
         else
           match dst.proc with Some p -> P_proc p | None -> P_none))
    graph_chans;
  (* Ready-set marking. In quasi-static mode a mark that lands on a busy
     processor whose end-of-service wake was elided restores that wake at
     the exact time (and reserved heap rank) the eager engine would have
     used — the channel change is the proof the post-service examination
     may no longer decline. [static_elided] counts wakes that stay elided
     for good: each is exactly one eager-engine event that would have been
     dispatched and declined, so [!processed + !static_elided] equals the
     eager engine's event count. *)
  let static_elided = ref 0 in
  let wake_proc p =
    let proc = procs.(p) in
    if (not proc.pf_scheduled) && p_busy_until.(p) > now.(0) +. 1e-15 then begin
      proc.pf_scheduled <- true;
      decr static_elided;
      Heap.push_seq events ~time:p_busy_until.(p) ~seq:proc.pf_seq
        proc_free.(p)
    end
  in
  let mark_producer (c : chan_rt) =
    match c.producer with
    | P_proc p ->
      procs.(p).ready <- true;
      if static_mode then wake_proc p
    | P_emit e -> if e.em_blocked then e.em_woken <- true
    | P_sink _ | P_none -> ()
  in
  let mark_consumer (c : chan_rt) =
    match c.consumer with
    | P_proc p ->
      procs.(p).ready <- true;
      if static_mode then wake_proc p
    | P_sink s -> s.s_marked <- true
    | P_emit _ | P_none -> ()
  in
  (* Observability is pay-when-used: with no observer installed, the
     firing path must not even box the float arguments a callback would
     take, so every notification is behind an [Option] match (and the
     state machinery behind [state_observing]). *)
  let chan_observing = Option.is_some channel_observer in
  let state_observing = Option.is_some state_observer in
  let on_chan (rt : node_rt) (c : chan_rt) ev =
    match channel_observer with
    | None -> ()
    | Some f ->
      f ~time_s:now.(0) ~chan_id:c.id ~node:rt.node ~proc:rt.proc ~event:ev
        ~depth:(Ring.length c.ring)
  in
  (* Per-node IO, built exactly once; the word counters live on the node
     and are reset before each attempt. *)
  let hop_cycles_per_word =
    match placement with
    | Some p -> p.hop_cycles_per_word
    | None -> 0.
  in
  let build_io (rt : node_rt) =
    (* Role tests hoisted out of the per-item path: a polymorphic [=] on
       the role variant per push/pop walks the generic comparator. *)
    let is_sink =
      match rt.node.Graph.spec.Spec.role with Spec.Sink -> true | _ -> false
    in
    let is_source =
      match rt.node.Graph.spec.Spec.role with
      | Spec.Source -> true
      | _ -> false
    in
    {
      Behaviour.peek =
        (fun port ->
          let c = find_port "input" rt rt.in_chans port in
          if Ring.is_empty c.ring then None else Some (Ring.peek c.ring));
      pop =
        (fun port ->
          let c = find_port "input" rt rt.in_chans port in
          if Ring.is_empty c.ring then
            Err.graphf "%s: pop from empty input %S" rt.node.Graph.name port;
          let item = Ring.pop c.ring in
          rt.cw_read <- rt.cw_read + Item.words item;
          if is_sink then begin
            match item with
            | Item.Ctl { Token.kind = Token.End_of_frame; _ } ->
              let times = Hashtbl.find sink_eof_times rt.node.Graph.id in
              times := now.(0) :: !times
            | Item.Data _ ->
              if not rt.s_first_seen then begin
                rt.s_first_seen <- true;
                Hashtbl.replace sink_first_data rt.node.Graph.id now.(0)
              end
            | _ -> ()
          end;
          if chan_observing then on_chan rt c Ch_pop;
          mark_producer c;
          item);
      push =
        (fun port item ->
          (* Frame tagging: a timed source's first data push after start or
             after an end-of-frame token is the birth of the next frame. *)
          if is_source then begin
            match item with
            | Item.Data _ ->
              if rt.fb_pending then begin
                let births = Hashtbl.find frame_births rt.node.Graph.id in
                births := now.(0) :: !births;
                rt.fb_pending <- false
              end
            | Item.Ctl { Token.kind = Token.End_of_frame; _ } ->
              rt.fb_pending <- true
            | Item.Ctl _ -> ()
          end;
          let cs = find_port "output" rt rt.out_chans port in
          for i = 0 to Array.length cs - 1 do
            let c = cs.(i) in
            if Ring.is_full c.ring then
              Err.graphf "%s: push to full channel on %S" rt.node.Graph.name
                port;
            (* Fan-out under pooling: each channel's consumer will own
               (and eventually release) its chunk, so channels beyond the
               first receive pool-backed copies — sharing one physical
               buffer would let it re-enter the pool twice. Without the
               pool, sharing is safe (nothing recycles) and matches the
               reference engine. *)
            let item =
              if i = 0 || not pool then item
              else
                match item with
                | Item.Data img ->
                  let d = acquire_chunk (Image.size img) in
                  Image.blit ~src:img ~dst:d ~x:0 ~y:0;
                  Item.data d
                | Item.Ctl _ -> item
            in
            Ring.push c.ring item;
            let depth = Ring.length c.ring in
            if depth > c.max_depth then c.max_depth <- depth;
            rt.cw_write <- rt.cw_write + Item.words item;
            rt.cw_hop <- rt.cw_hop + (c.hops * Item.words item);
            if chan_observing then on_chan rt c Ch_push;
            mark_consumer c
          done);
      acquire = acquire_chunk;
      release = release_chunk;
      has_input =
        (fun port ->
          not (Ring.is_empty (find_port "input" rt rt.in_chans port).ring));
      space =
        (fun port ->
          let cs = find_port "output" rt rt.out_chans port in
          let n = Array.length cs in
          if n = 0 then max_int
          else begin
            (* Local, non-escaping ref: compiled to a register. *)
            let acc = ref max_int in
            for i = 0 to n - 1 do
              let c = cs.(i) in
              let free = Ring.space c.ring in
              if free <= 0 then begin
                rt.cw_full_out <- c.id;
                if chan_observing then on_chan rt c Ch_block
              end;
              if free < !acc then acc := free
            done;
            !acc
          end);
    }
  in
  Hashtbl.iter (fun _ rt -> rt.io <- build_io rt) node_rts;
  (* One step of a node. Service-time pricing happens at the dispatch
     site — the only caller that needs it — from the [cw_*] word
     counters; a sink or emitter firing prices nothing, and a step
     returns the behaviour's interned [fired] with no wrapper. *)
  (* Table reconciliation (telemetry only): a firing either matches the
     next entry of the node's table — walking prelude then cycling the
     period — or desyncs the node for the rest of the run. *)
  let static_fired = ref 0 in
  let static_fallback = ref 0 in
  let reconcile (rt : node_rt) (f : Behaviour.fired) =
    let plen = Array.length rt.st_prelude in
    let expected =
      if rt.st_pos < plen then rt.st_prelude.(rt.st_pos)
      else rt.st_period.((rt.st_pos - plen) mod Array.length rt.st_period)
    in
    (* Method names are interned per kernel module, so the physical test
       settles almost every comparison. *)
    if expected == f.Behaviour.method_name
       || String.equal expected f.Behaviour.method_name
    then begin
      rt.st_pos <- rt.st_pos + 1;
      incr static_fired
    end
    else begin
      rt.st_synced <- false;
      incr static_fallback
    end
  in
  let step_node (rt : node_rt) =
    rt.cw_read <- 0;
    rt.cw_write <- 0;
    rt.cw_hop <- 0;
    rt.cw_full_out <- -1;
    match rt.behaviour.Behaviour.try_step rt.io with
    | None -> None
    | Some f as fired ->
      rt.rt_fires <- rt.rt_fires + 1;
      if rt.st_synced then reconcile rt f;
      fired
  in
  (* Shared progress flag for the dispatch fixpoint, hoisted so the loop
     helpers below close over one ref for the whole run instead of
     threading a fresh one per event. *)
  let progress = ref false in
  (* Marked sinks drain instantly (off-chip), to personal exhaustion;
     sinks never push, so they cannot re-enable each other and one pass
     reaches the same fixpoint as the reference engine's rescan. *)
  let rec drain_sink srt =
    match step_node srt with
    | Some _ ->
      progress := true;
      drain_sink srt
    | None -> ()
  in
  let drain_ready_sinks () =
    for i = 0 to Array.length sinks - 1 do
      let srt = sinks.(i) in
      if srt.s_marked then begin
        srt.s_marked <- false;
        drain_sink srt
      end
    done
  in
  (* A successful timed emission: lateness bookkeeping and the next slot. *)
  let fire_timed (t : timed_rt) e =
    let lateness = now.(0) -. t.t_f.(0) in
    if lateness > 1e-12 then begin
      t.late <- t.late + 1;
      if lateness > t.t_f.(1) then t.t_f.(1) <- lateness
    end;
    t.t_f.(0) <- t.t_f.(0) +. t.period;
    let due = t.t_f.(0) in
    Heap.push events
      ~time:(if due >= now.(0) then due else now.(0))
      e.em_event
  in
  (* An emitter that declined is blocked exactly when some output channel
     lacks space for its declared worst-case burst; otherwise it is
     exhausted and never retried. *)
  let emitter_blocked e =
    let ocs = e.em.out_chans in
    let blocked = ref false in
    for i = 0 to Array.length ocs - 1 do
      let _, cs = ocs.(i) in
      for j = 0 to Array.length cs - 1 do
        if Ring.space cs.(j).ring < e.em_burst then blocked := true
      done
    done;
    !blocked
  in
  (* A pop freed space on a blocked emitter's channel: retry right now
     (precise wake, replacing the reference engine's fixed retry polls). *)
  let rec retry_emitters = function
    | [] -> ()
    | e :: rest ->
      if e.em_woken then begin
        e.em_woken <- false;
        if e.em_blocked then
          match step_node e.em with
          | Some _ ->
            e.em_blocked <- false;
            progress := true;
            (match e.em_kind with
            | Em_timed t -> fire_timed t e
            | Em_const -> ())
          | None -> if not (emitter_blocked e) then e.em_blocked <- false
      end;
      retry_emitters rest
  in
  (* ---- kernel state intervals ----------------------------------------
     Each on-chip kernel carries a state (busy / blocked-on-input /
     blocked-on-output / idle) that changes only when the dispatcher
     learns something: an attempt that declines is classified by what the
     attempt observed (a full output channel, or wanting input), a firing
     enters busy, and a busy interval ends exactly at its known service
     end. Between examinations nothing adjacent changed (try_step is
     failure-pure), so holding the last classification is exact, not
     sampled. [state_observer] is invoked once per entered state with the
     entry time; by construction the emitted intervals partition
     [0, duration] for every kernel (asserted in test/test_obs.ml). The
     whole mechanism is skipped when no [state_observer] is installed. *)
  let emit_state (rt : node_rt) proc st chan time_s =
    match state_observer with
    | None -> ()
    | Some f -> f ~time_s ~node:rt.node ~proc ~state:st ~chan
  in
  let set_state (rt : node_rt) proc st chan =
    (* A busy interval whose end passed unexamined closes into idle at the
       exact service end, not at the moment we finally looked. *)
    if rt.ks_state = Ks_busy && now.(0) > rt.rt_f.(1) +. 1e-15 then begin
      emit_state rt proc Ks_idle None rt.rt_f.(1);
      rt.ks_state <- Ks_idle
    end;
    if st <> rt.ks_state then begin
      emit_state rt proc st chan now.(0);
      rt.ks_state <- st
    end
  in
  let first_empty_input (rt : node_rt) =
    let n = Array.length rt.in_chans in
    let rec go i =
      if i >= n then None
      else
        let _, c = rt.in_chans.(i) in
        if Ring.is_empty c.ring then Some c.id else go (i + 1)
    in
    go 0
  in
  (* Try to start one firing on an idle processor. The service prices
     below reproduce [Machine.read_time_s], [write_time_s] and
     [cycle_time_s] operation for operation: the arithmetic must stay
     bit-identical to the reference engine, which still calls through
     [Machine] (inlining it here avoids the boxed float each of those
     cross-module calls returns without flambda). *)
  (* All kernels of a processor provably starved right now? Then its
     post-service examination would decline for every one of them, and
     the [Proc_free] wake can be elided (restored by the first adjacent
     channel change — see [wake_proc]). The test is specialized per
     processor at startup: the common one-kernel mapping collapses to a
     single oracle call, and a processor with any oracle-less kernel is
     never provably starved. *)
  let p_all_starved =
    Array.map
      (fun proc ->
        let rec collect i acc =
          if i < 0 then Some acc
          else
            let rt = proc.kernels.(i) in
            match rt.behaviour.Behaviour.starved with
            | Some st -> collect (i - 1) ((fun () -> st rt.io) :: acc)
            | None -> None
        in
        match collect (Array.length proc.kernels - 1) [] with
        | None -> fun () -> false
        | Some [ f ] -> f
        | Some fs ->
          let fs = Array.of_list fs in
          let n = Array.length fs in
          fun () ->
            let rec go i = i >= n || (fs.(i) () && go (i + 1)) in
            go 0)
      procs
  in
  let rec attempt_kernel proc p k i =
    if i >= k then false
    else begin
      let idx = (proc.cursor + i) mod k in
      let rt = proc.kernels.(idx) in
      match step_node rt with
      | None ->
        if state_observing then
          if rt.cw_full_out >= 0 then
            set_state rt p Ks_blocked_output (Some rt.cw_full_out)
          else set_state rt p Ks_blocked_input (first_empty_input rt);
        attempt_kernel proc p k (i + 1)
      | Some fired ->
        let read_s =
          float_of_int rt.cw_read *. pe.Machine.read_cycles_per_word
          /. pe.Machine.freq_hz
        in
        let write_s =
          float_of_int rt.cw_write *. pe.Machine.write_cycles_per_word
          /. pe.Machine.freq_hz
          +. (float_of_int rt.cw_hop *. hop_cycles_per_word
             /. pe.Machine.freq_hz)
        in
        let run_s =
          float_of_int fired.Behaviour.cycles *. (1. /. pe.Machine.freq_hz)
        in
        (* Context-switch charge when a multiplexed PE changes kernel. *)
        let run_s =
          if proc.last_fired >= 0 && proc.last_fired <> idx then
            run_s +. (pe.Machine.switch_cycles *. (1. /. pe.Machine.freq_hz))
          else run_s
        in
        proc.last_fired <- idx;
        let service = read_s +. run_s +. write_s in
        if state_observing then begin
          set_state rt p Ks_busy None;
          rt.rt_f.(1) <- now.(0) +. service
        end;
        (match observer with
        | None -> ()
        | Some f ->
          f ~time_s:now.(0) ~proc:p ~node:rt.node
            ~method_name:fired.Behaviour.method_name ~service_s:service);
        p_busy_until.(p) <- now.(0) +. service;
        proc.cursor <- (idx + 1) mod k;
        p_run.(p) <- p_run.(p) +. run_s;
        p_read.(p) <- p_read.(p) +. read_s;
        p_write.(p) <- p_write.(p) +. write_s;
        proc.p_fires <- proc.p_fires + 1;
        rt.rt_f.(0) <- rt.rt_f.(0) +. service;
        if static_mode then begin
          (* The wake's tie-breaking rank is reserved even when the event
             is elided, so a restored wake collides with other same-time
             events in exactly the eager engine's order. *)
          let seq = Heap.reserve_seq events in
          if p_all_starved.(p) () then begin
            proc.pf_scheduled <- false;
            proc.pf_seq <- seq;
            incr static_elided
          end
          else begin
            proc.pf_scheduled <- true;
            Heap.push_seq events ~time:p_busy_until.(p) ~seq proc_free.(p)
          end
        end
        else Heap.push events ~time:p_busy_until.(p) proc_free.(p);
        true
    end
  in
  let try_dispatch p =
    if p_busy_until.(p) > now.(0) +. 1e-15 then false
    else begin
      let proc = procs.(p) in
      attempt_kernel proc p (Array.length proc.kernels) 0
    end
  in
  (* The dispatch loop: only marked parties are attempted. Processors are
     swept in ascending index so marks set mid-sweep by a firing are seen
     by later indices within the round, exactly as the reference engine's
     full rescan sees them; anything marked at an earlier index waits for
     the next round, as it would wait for the rescan's next round. *)
  let dispatch () =
    progress := true;
    while !progress do
      progress := false;
      drain_ready_sinks ();
      retry_emitters !emitters;
      for p = 0 to nprocs - 1 do
        let proc = procs.(p) in
        if proc.ready then begin
          proc.ready <- false;
          if try_dispatch p then progress := true
        end
      done
    done
  in
  (* Advancing simulated time is itself a readiness change: processors
     whose busy interval ends inside (old now, new time] become idle
     without any channel traffic, so mark them before handling the event
     (their own [Proc_free] may still sit behind this event in the queue
     when service times collide exactly). *)
  let advance time =
    if time > now.(0) then begin
      for p = 0 to nprocs - 1 do
        if
          p_busy_until.(p) > now.(0) +. 1e-15
          && p_busy_until.(p) <= time +. 1e-15
        then procs.(p).ready <- true
      done;
      now.(0) <- time
    end
  in
  (* Main loop. The front time is read before the pop so a discarded
     over-limit event never disturbs the queue, and neither step
     allocates (see {!Heap}). *)
  let processed = ref 0 in
  let timed_out = ref false in
  let continue = ref true in
  while !continue do
    if Heap.is_empty events then continue := false
    else begin
      let time = Heap.front_time_exn events in
      incr processed;
      if time > max_time_s || !processed > max_events then begin
        timed_out := true;
        continue := false
      end
      else begin
        let ev = Heap.pop_value_exn events in
        advance time;
        (match ev with
        | Proc_free p -> procs.(p).ready <- true
        | Const_emit e -> (
          match step_node e.em with
          | Some _ -> ()
          | None ->
            (* A const source that already emitted returns None forever;
               only a space-starved one waits for a wake. *)
            if emitter_blocked e then e.em_blocked <- true)
        | Source_slot e -> (
          match step_node e.em with
          | Some _ -> (
            match e.em_kind with
            | Em_timed t -> fire_timed t e
            | Em_const -> assert false)
          | None ->
            (* Distinguish an exhausted source (no more frames: every
               output has burst room yet nothing was emitted) from a
               blocked one. A blocked source counts one stall for the
               missed slot and then waits for space — no retry polling;
               the wake fires the pixel at the first instant it fits. *)
            if emitter_blocked e then begin
              (match e.em_kind with
              | Em_timed t -> t.stalls <- t.stalls + 1
              | Em_const -> ());
              e.em_blocked <- true
            end));
        dispatch ()
      end
    end
  done;
  (* Quasi-static quiescence: the last events of an eager run are the
     trailing [Proc_free]s, whose times set [duration_s]. When those were
     elided, restore the clock to the latest busy end so the reported
     duration is bit-identical to the eager engine's. *)
  if static_mode && not !timed_out then
    for p = 0 to nprocs - 1 do
      if p_busy_until.(p) > now.(0) then now.(0) <- p_busy_until.(p)
    done;
  (* Close out busy intervals whose service end passed without another
     examination, so every kernel's intervals reach a settled state. *)
  if state_observing then
    Hashtbl.iter
      (fun _ rt ->
        match rt.proc with
        | Some p ->
          if rt.ks_state = Ks_busy && now.(0) > rt.rt_f.(1) +. 1e-15 then begin
            emit_state rt p Ks_idle None rt.rt_f.(1);
            rt.ks_state <- Ks_idle
          end
        | None -> ())
      node_rts;
  let leftover_items =
    List.fold_left (fun acc c -> acc + Ring.length c.ring) 0 all_chans
  in
  let leftover_channels =
    List.filter_map
      (fun c ->
        if Ring.is_empty c.ring then None
        else Some (c.id, Ring.length c.ring, Ring.peek c.ring))
      all_chans
  in
  let proc_stats =
    Array.mapi
      (fun i p ->
        {
          run_s = p_run.(i);
          read_s = p_read.(i);
          write_s = p_write.(i);
          fires = p.p_fires;
        })
      procs
  in
  {
    duration_s = now.(0);
    procs = proc_stats;
    input_stalls = List.fold_left (fun a t -> a + t.stalls) 0 timed_srcs;
    late_emissions = List.fold_left (fun a t -> a + t.late) 0 timed_srcs;
    max_input_lateness_s =
      List.fold_left (fun a t -> Float.max a t.t_f.(1)) 0. timed_srcs;
    sink_eofs =
      Hashtbl.fold
        (fun id times acc -> (id, List.rev !times) :: acc)
        sink_eof_times [];
    sink_first_data =
      Hashtbl.fold (fun id t acc -> (id, t) :: acc) sink_first_data [];
    source_frame_births =
      Hashtbl.fold
        (fun id births acc -> (id, List.rev !births) :: acc)
        frame_births [];
    channel_depths = List.map (fun c -> (c.id, c.max_depth)) all_chans;
    leftover_channels;
    node_stats =
      Hashtbl.fold
        (fun id rt acc ->
          (id, { node_fires = rt.rt_fires; node_busy_s = rt.rt_f.(0) }) :: acc)
        node_rts [];
    leftover_items;
    (* Elided wakes count as processed: each is one eager-engine decline
       skipped wholesale, so the total matches event-driven mode exactly
       and throughput normalizes without a second run. *)
    events_processed = !processed + !static_elided;
    timed_out = !timed_out;
    static_regions =
      (if static_mode then Static_schedule.static_regions sched else 0);
    static_fired = !static_fired;
    static_fallback_events = !static_fallback;
    static_elided_events = !static_elided;
    pool =
      (match (Option.map Pool.stats chunk_pool, pool_before) with
      | Some s, Some b ->
        (* Lent pool: report only this run's contribution. *)
        Some
          {
            Pool.hits = s.Pool.hits - b.Pool.hits;
            misses = s.Pool.misses - b.Pool.misses;
            releases = s.Pool.releases - b.Pool.releases;
            live = s.Pool.live - b.Pool.live;
          }
      | s, None -> s
      | None, Some _ -> assert false);
  }

let first_output_latency_s r =
  match r.sink_first_data with
  | [] -> None
  | l -> Some (List.fold_left (fun acc (_, t) -> Float.min acc t) infinity l)

let utilization r ~proc =
  if r.duration_s <= 0. then 0.
  else
    let p = r.procs.(proc) in
    (p.run_s +. p.read_s +. p.write_s) /. r.duration_s

let average_utilization r =
  if Array.length r.procs = 0 then 0.
  else
    Array.fold_left ( +. ) 0.
      (Array.mapi (fun i _ -> utilization r ~proc:i) r.procs)
    /. float_of_int (Array.length r.procs)

let utilization_breakdown r =
  let total = float_of_int (Array.length r.procs) *. r.duration_s in
  if total <= 0. then (0., 0., 0.)
  else
    let run = Array.fold_left (fun a p -> a +. p.run_s) 0. r.procs in
    let read = Array.fold_left (fun a p -> a +. p.read_s) 0. r.procs in
    let write = Array.fold_left (fun a p -> a +. p.write_s) 0. r.procs in
    (run /. total, read /. total, write /. total)

type verdict = {
  met : bool;
  frames_delivered : int;
  mean_frame_interval_s : float;
  worst_frame_interval_s : float;
}

let real_time_verdict r ~expected_frames ~period_s ?(tolerance = 0.05)
    ?(allowed_leftover = 0) () =
  let all_intervals =
    List.concat_map
      (fun (_, times) ->
        let rec pairs = function
          | a :: (b :: _ as rest) -> (b -. a) :: pairs rest
          | _ -> []
        in
        pairs times)
      r.sink_eofs
  in
  let frames_delivered =
    match r.sink_eofs with
    | [] -> 0
    | eofs -> List.fold_left (fun acc (_, ts) -> min acc (List.length ts))
                max_int eofs
  in
  let frames_delivered = if frames_delivered = max_int then 0 else frames_delivered in
  let mean_i = Stats.mean all_intervals in
  let worst_i = match all_intervals with [] -> 0. | l -> Stats.maximum l in
  let met =
    r.input_stalls = 0 && r.late_emissions = 0
    && r.leftover_items <= allowed_leftover
    && (not r.timed_out)
    && frames_delivered >= expected_frames
    && (all_intervals = [] || worst_i <= period_s *. (1. +. tolerance))
  in
  {
    met;
    frames_delivered;
    mean_frame_interval_s = mean_i;
    worst_frame_interval_s = worst_i;
  }

let pp_stuck g ppf r =
  if r.leftover_channels = [] then
    Format.fprintf ppf "nothing left queued@,"
  else
    List.iter
      (fun (chan_id, count, front) ->
        let c = Graph.channel g chan_id in
        Format.fprintf ppf "  %s.%s -> %s.%s: %d items, front %a@,"
          (Graph.node g c.Graph.src.Graph.node).Graph.name
          c.Graph.src.Graph.port
          (Graph.node g c.Graph.dst.Graph.node).Graph.name
          c.Graph.dst.Graph.port count Item.pp front)
      (List.sort compare r.leftover_channels)

let pp_result ppf r =
  let run, read, write = utilization_breakdown r in
  Format.fprintf ppf
    "sim: %.6fs, %d PEs, avg util %.1f%% (run %.1f%% read %.1f%% write \
     %.1f%%), stalls %d, late %d, leftover %d%s"
    r.duration_s (Array.length r.procs)
    (100. *. average_utilization r)
    (100. *. run) (100. *. read) (100. *. write) r.input_stalls
    r.late_emissions r.leftover_items
    (if r.timed_out then " (TIMED OUT)" else "")
