open Bp_util
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Item = Bp_kernel.Item
module Behaviour = Bp_kernel.Behaviour
module Machine = Bp_machine.Machine
module Token = Bp_token.Token
module Size = Bp_geometry.Size
module Rate = Bp_geometry.Rate

type proc_stats = {
  run_s : float;
  read_s : float;
  write_s : float;
  fires : int;
}

type node_stats = { node_fires : int; node_busy_s : float }

type result = {
  duration_s : float;
  procs : proc_stats array;
  input_stalls : int;
  late_emissions : int;
  max_input_lateness_s : float;
  sink_eofs : (Graph.node_id * float list) list;
  sink_first_data : (Graph.node_id * float) list;
  node_stats : (Graph.node_id * node_stats) list;
  channel_depths : (int * int) list;  (* channel id -> max occupancy *)
  leftover_channels : (int * int * Item.t) list;
  leftover_items : int;
  timed_out : bool;
}

type placement_model = {
  tile_of_proc : int -> int * int;
  hop_cycles_per_word : float;
}

type channel_event = Ch_push | Ch_pop | Ch_block

(* ---- runtime structures ---------------------------------------------- *)

type chan_rt = {
  id : int;
  queue : Item.t Queue.t;
  capacity : int;
  mutable hops : int;  (* mesh distance between producer and consumer *)
  mutable max_depth : int;
}

type node_rt = {
  node : Graph.node;
  behaviour : Behaviour.t;
  in_chans : (string * chan_rt) list;
  out_chans : (string * chan_rt list) list;
  proc : int option;
  mutable rt_fires : int;
  mutable rt_busy : float;
}

type proc_rt = {
  mutable busy_until : float;
  mutable cursor : int;  (* round-robin position among its kernels *)
  mutable last_fired : int;  (* kernel index of the previous firing *)
  kernels : node_rt array;
  mutable p_run : float;
  mutable p_read : float;
  mutable p_write : float;
  mutable p_fires : int;
}

type source_rt = {
  src : node_rt;
  period : float;
  mutable next_due : float;
  mutable stalls : int;
  mutable late : int;
  mutable max_late : float;
}

type event = Source_slot of source_rt | Const_emit of node_rt | Proc_free of int

(* ---- io construction -------------------------------------------------- *)

let make_io (rt : node_rt) ~read_words ~write_words ~hop_words ~on_pop
    ~on_chan =
  let find_in port =
    match List.assoc_opt port rt.in_chans with
    | Some c -> c
    | None -> Err.graphf "%s: no input channel %S" rt.node.Graph.name port
  in
  let find_outs port =
    match List.assoc_opt port rt.out_chans with
    | Some cs -> cs
    | None -> Err.graphf "%s: no output channel %S" rt.node.Graph.name port
  in
  {
    Behaviour.peek =
      (fun port ->
        let c = find_in port in
        if Queue.is_empty c.queue then None else Some (Queue.peek c.queue));
    pop =
      (fun port ->
        let c = find_in port in
        if Queue.is_empty c.queue then
          Err.graphf "%s: pop from empty input %S" rt.node.Graph.name port;
        let item = Queue.pop c.queue in
        read_words := !read_words + Item.words item;
        on_pop item;
        on_chan c Ch_pop;
        item);
    push =
      (fun port item ->
        let cs = find_outs port in
        List.iter
          (fun c ->
            if Queue.length c.queue >= c.capacity then
              Err.graphf "%s: push to full channel on %S" rt.node.Graph.name
                port;
            Queue.push item c.queue;
            if Queue.length c.queue > c.max_depth then
              c.max_depth <- Queue.length c.queue;
            write_words := !write_words + Item.words item;
            hop_words := !hop_words + (c.hops * Item.words item);
            on_chan c Ch_push)
          cs);
    space =
      (fun port ->
        match find_outs port with
        | [] -> max_int
        | cs ->
          List.fold_left
            (fun acc c ->
              let free = c.capacity - Queue.length c.queue in
              if free <= 0 then on_chan c Ch_block;
              min acc free)
            max_int cs);
  }

(* ---- main engine ------------------------------------------------------ *)

let run ?(max_time_s = 300.) ?(max_events = 50_000_000) ?placement
    ?(observer = fun ~time_s:_ ~proc:_ ~node:_ ~method_name:_ ~service_s:_ -> ())
    ?(channel_observer =
      fun ~time_s:_ ~chan_id:_ ~node:_ ~proc:_ ~event:_ ~depth:_ -> ())
    ~graph:g ~mapping ~machine () =
  Graph.validate g;
  let pe = machine.Machine.pe in
  (* Channels. *)
  let chans = Hashtbl.create 64 in
  List.iter
    (fun (c : Graph.channel) ->
      Hashtbl.replace chans c.Graph.chan_id
        {
          id = c.Graph.chan_id;
          queue = Queue.create ();
          capacity = c.Graph.capacity;
          hops = 0;
          max_depth = 0;
        })
    (Graph.channels g);
  let chan_rt id = Hashtbl.find chans id in
  (* Node runtimes. *)
  let sink_eof_times : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let sink_first_data : (Graph.node_id, float) Hashtbl.t = Hashtbl.create 8 in
  let now = ref 0. in
  let node_rts = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      let in_chans =
        List.map
          (fun (c : Graph.channel) ->
            (c.Graph.dst.Graph.port, chan_rt c.Graph.chan_id))
          (Graph.in_channels g n.Graph.id)
      in
      let out_chans =
        List.map
          (fun (p : Bp_kernel.Port.t) ->
            ( p.Bp_kernel.Port.name,
              List.map
                (fun (c : Graph.channel) -> chan_rt c.Graph.chan_id)
                (Graph.out_channels g n.Graph.id ~port:p.Bp_kernel.Port.name ()) ))
          n.Graph.spec.Spec.outputs
      in
      let rt =
        {
          node = n;
          behaviour = n.Graph.spec.Spec.make_behaviour ();
          in_chans;
          out_chans;
          proc = Mapping.processor_of mapping n.Graph.id;
          rt_fires = 0;
          rt_busy = 0.;
        }
      in
      if n.Graph.spec.Spec.role = Spec.Sink then
        Hashtbl.replace sink_eof_times n.Graph.id (ref []);
      Hashtbl.replace node_rts n.Graph.id rt)
    (Graph.nodes g);
  let node_rt id = Hashtbl.find node_rts id in
  (* Network distances, when a placement is supplied: off-chip endpoints
     (sources, sinks) sit at the mesh edge, tile (0,0). *)
  (match placement with
  | None -> ()
  | Some p ->
    let tile id =
      match Mapping.processor_of mapping id with
      | Some proc -> p.tile_of_proc proc
      | None -> (0, 0)
    in
    List.iter
      (fun (c : Graph.channel) ->
        let x0, y0 = tile c.Graph.src.Graph.node in
        let x1, y1 = tile c.Graph.dst.Graph.node in
        (chan_rt c.Graph.chan_id).hops <- abs (x0 - x1) + abs (y0 - y1))
      (Graph.channels g));
  (* Processors. *)
  let procs =
    Array.init (Mapping.processors mapping) (fun p ->
        {
          busy_until = 0.;
          cursor = 0;
          last_fired = -1;
          kernels =
            Array.of_list (List.map node_rt (Mapping.nodes_on mapping p));
          p_run = 0.;
          p_read = 0.;
          p_write = 0.;
          p_fires = 0;
        })
  in
  let events : event Heap.t = Heap.create () in
  (* One step of a node, with word accounting; returns service time split. *)
  let hop_cycles_per_word =
    match placement with
    | Some p -> p.hop_cycles_per_word
    | None -> 0.
  in
  let step_node (rt : node_rt) =
    let read_words = ref 0 and write_words = ref 0 in
    let hop_words = ref 0 in
    let on_pop item =
      match (rt.node.Graph.spec.Spec.role, item) with
      | Spec.Sink, Item.Ctl tok when tok.Token.kind = Token.End_of_frame ->
        let times = Hashtbl.find sink_eof_times rt.node.Graph.id in
        times := !now :: !times
      | Spec.Sink, Item.Data _ ->
        if not (Hashtbl.mem sink_first_data rt.node.Graph.id) then
          Hashtbl.replace sink_first_data rt.node.Graph.id !now
      | _ -> ()
    in
    let on_chan (c : chan_rt) ev =
      channel_observer ~time_s:!now ~chan_id:c.id ~node:rt.node ~proc:rt.proc
        ~event:ev ~depth:(Queue.length c.queue)
    in
    let io = make_io rt ~read_words ~write_words ~hop_words ~on_pop ~on_chan in
    match rt.behaviour.Behaviour.try_step io with
    | None -> None
    | Some fired ->
      let read_s = Machine.read_time_s pe ~words:!read_words in
      let write_s =
        Machine.write_time_s pe ~words:!write_words
        +. (float_of_int !hop_words *. hop_cycles_per_word
           /. pe.Machine.freq_hz)
      in
      let run_s = float_of_int fired.Behaviour.cycles *. Machine.cycle_time_s pe in
      rt.rt_fires <- rt.rt_fires + 1;
      Some (fired, read_s, run_s, write_s)
  in
  (* Sinks drain instantly (off-chip). *)
  let drain_sinks () =
    let progressed = ref true in
    while !progressed do
      progressed := false;
      List.iter
        (fun (n : Graph.node) ->
          let rt = node_rt n.Graph.id in
          match step_node rt with
          | Some _ -> progressed := true
          | None -> ())
        (Graph.sinks g)
    done
  in
  (* Try to start one firing on an idle processor. *)
  let try_dispatch p =
    let proc = procs.(p) in
    if proc.busy_until > !now +. 1e-15 then false
    else begin
      let k = Array.length proc.kernels in
      let rec attempt i =
        if i >= k then false
        else begin
          let idx = (proc.cursor + i) mod k in
          let rt = proc.kernels.(idx) in
          match step_node rt with
          | None -> attempt (i + 1)
          | Some (fired, read_s, run_s, write_s) ->
            (* Context-switch charge when a multiplexed PE changes kernel. *)
            let run_s =
              if proc.last_fired >= 0 && proc.last_fired <> idx then
                run_s +. (pe.Machine.switch_cycles *. Machine.cycle_time_s pe)
              else run_s
            in
            proc.last_fired <- idx;
            let service = read_s +. run_s +. write_s in
            observer ~time_s:!now ~proc:p ~node:rt.node
              ~method_name:fired.Behaviour.method_name ~service_s:service;
            proc.busy_until <- !now +. service;
            proc.cursor <- (idx + 1) mod k;
            proc.p_run <- proc.p_run +. run_s;
            proc.p_read <- proc.p_read +. read_s;
            proc.p_write <- proc.p_write +. write_s;
            proc.p_fires <- proc.p_fires + 1;
            rt.rt_busy <- rt.rt_busy +. service;
            Heap.push events ~time:proc.busy_until (Proc_free p);
            true
        end
      in
      attempt 0
    end
  in
  let dispatch_all () =
    let progressed = ref true in
    while !progressed do
      progressed := false;
      drain_sinks ();
      Array.iteri
        (fun p _ -> if try_dispatch p then progressed := true)
        procs
    done;
    drain_sinks ()
  in
  (* Constant sources emit before the first source slot so configuration
     data (coefficients, bin bounds) is in place when pixel 0 arrives. *)
  List.iter
    (fun (n : Graph.node) ->
      Heap.push events ~time:0. (Const_emit (node_rt n.Graph.id)))
    (Graph.const_sources g);
  (* Sources. *)
  let source_rts =
    List.map
      (fun (n : Graph.node) ->
        let frame, rate =
          match n.Graph.meta with
          | Graph.Source_meta { frame; rate } -> (frame, rate)
          | _ -> Err.graphf "source %s lacks Source_meta" n.Graph.name
        in
        let period = Rate.element_period_s rate ~frame in
        let s =
          {
            src = node_rt n.Graph.id;
            period;
            next_due = 0.;
            stalls = 0;
            late = 0;
            max_late = 0.;
          }
        in
        Heap.push events ~time:0. (Source_slot s);
        s)
      (Graph.sources g)
  in
  (* Main loop. *)
  let processed = ref 0 in
  let timed_out = ref false in
  let continue = ref true in
  while !continue do
    match Heap.pop events with
    | None -> continue := false
    | Some (time, ev) ->
      incr processed;
      if time > max_time_s || !processed > max_events then begin
        timed_out := true;
        continue := false
      end
      else begin
        now := max !now time;
        (match ev with
        | Proc_free _ -> ()
        | Const_emit rt -> (
          match step_node rt with
          | Some _ -> ()
          | None ->
            (* Only retry while the chunk is still pending (a const source
               that already emitted returns None forever). *)
            let has_space =
              List.for_all
                (fun (_, cs) ->
                  List.for_all
                    (fun c -> Queue.length c.queue < c.capacity)
                    cs)
                rt.out_chans
            in
            if not has_space then
              Heap.push events ~time:(!now +. 1e-6) (Const_emit rt))
        | Source_slot s -> (
          match step_node s.src with
          | Some _ ->
            let lateness = !now -. s.next_due in
            if lateness > 1e-12 then begin
              s.late <- s.late + 1;
              if lateness > s.max_late then s.max_late <- lateness
            end;
            s.next_due <- s.next_due +. s.period;
            Heap.push events ~time:(Float.max s.next_due !now) (Source_slot s)
          | None ->
            (* Distinguish an exhausted source (no more frames: every output
               has room yet nothing was emitted) from a blocked one. *)
            let blocked =
              List.exists
                (fun (_, cs) ->
                  List.exists
                    (fun c -> c.capacity - Queue.length c.queue < 3)
                    cs)
                s.src.out_chans
            in
            if blocked then begin
              (* The downstream channel is full at the scheduled time: the
                 input would be dropped or stall the camera. *)
              s.stalls <- s.stalls + 1;
              Heap.push events ~time:(!now +. (s.period /. 4.)) (Source_slot s)
            end));
        dispatch_all ()
      end
  done;
  let leftover_items =
    Hashtbl.fold (fun _ c acc -> acc + Queue.length c.queue) chans 0
  in
  let leftover_channels =
    Hashtbl.fold
      (fun id c acc ->
        if Queue.is_empty c.queue then acc
        else (id, Queue.length c.queue, Queue.peek c.queue) :: acc)
      chans []
  in
  let proc_stats =
    Array.map
      (fun p ->
        { run_s = p.p_run; read_s = p.p_read; write_s = p.p_write; fires = p.p_fires })
      procs
  in
  {
    duration_s = !now;
    procs = proc_stats;
    input_stalls = List.fold_left (fun a s -> a + s.stalls) 0 source_rts;
    late_emissions = List.fold_left (fun a s -> a + s.late) 0 source_rts;
    max_input_lateness_s =
      List.fold_left (fun a s -> Float.max a s.max_late) 0. source_rts;
    sink_eofs =
      Hashtbl.fold
        (fun id times acc -> (id, List.rev !times) :: acc)
        sink_eof_times [];
    sink_first_data =
      Hashtbl.fold (fun id t acc -> (id, t) :: acc) sink_first_data [];
    channel_depths =
      Hashtbl.fold (fun id c acc -> (id, c.max_depth) :: acc) chans [];
    leftover_channels;
    node_stats =
      Hashtbl.fold
        (fun id rt acc ->
          (id, { node_fires = rt.rt_fires; node_busy_s = rt.rt_busy }) :: acc)
        node_rts [];
    leftover_items;
    timed_out = !timed_out;
  }

let first_output_latency_s r =
  match r.sink_first_data with
  | [] -> None
  | l -> Some (List.fold_left (fun acc (_, t) -> Float.min acc t) infinity l)

let utilization r ~proc =
  if r.duration_s <= 0. then 0.
  else
    let p = r.procs.(proc) in
    (p.run_s +. p.read_s +. p.write_s) /. r.duration_s

let average_utilization r =
  if Array.length r.procs = 0 then 0.
  else
    Array.fold_left ( +. ) 0.
      (Array.mapi (fun i _ -> utilization r ~proc:i) r.procs)
    /. float_of_int (Array.length r.procs)

let utilization_breakdown r =
  let total = float_of_int (Array.length r.procs) *. r.duration_s in
  if total <= 0. then (0., 0., 0.)
  else
    let run = Array.fold_left (fun a p -> a +. p.run_s) 0. r.procs in
    let read = Array.fold_left (fun a p -> a +. p.read_s) 0. r.procs in
    let write = Array.fold_left (fun a p -> a +. p.write_s) 0. r.procs in
    (run /. total, read /. total, write /. total)

type verdict = {
  met : bool;
  frames_delivered : int;
  mean_frame_interval_s : float;
  worst_frame_interval_s : float;
}

let real_time_verdict r ~expected_frames ~period_s ?(tolerance = 0.05)
    ?(allowed_leftover = 0) () =
  let all_intervals =
    List.concat_map
      (fun (_, times) ->
        let rec pairs = function
          | a :: (b :: _ as rest) -> (b -. a) :: pairs rest
          | _ -> []
        in
        pairs times)
      r.sink_eofs
  in
  let frames_delivered =
    match r.sink_eofs with
    | [] -> 0
    | eofs -> List.fold_left (fun acc (_, ts) -> min acc (List.length ts))
                max_int eofs
  in
  let frames_delivered = if frames_delivered = max_int then 0 else frames_delivered in
  let mean_i = Stats.mean all_intervals in
  let worst_i = match all_intervals with [] -> 0. | l -> Stats.maximum l in
  let met =
    r.input_stalls = 0 && r.late_emissions = 0
    && r.leftover_items <= allowed_leftover
    && (not r.timed_out)
    && frames_delivered >= expected_frames
    && (all_intervals = [] || worst_i <= period_s *. (1. +. tolerance))
  in
  {
    met;
    frames_delivered;
    mean_frame_interval_s = mean_i;
    worst_frame_interval_s = worst_i;
  }

let pp_stuck g ppf r =
  if r.leftover_channels = [] then
    Format.fprintf ppf "nothing left queued@,"
  else
    List.iter
      (fun (chan_id, count, front) ->
        let c = Graph.channel g chan_id in
        Format.fprintf ppf "  %s.%s -> %s.%s: %d items, front %a@,"
          (Graph.node g c.Graph.src.Graph.node).Graph.name
          c.Graph.src.Graph.port
          (Graph.node g c.Graph.dst.Graph.node).Graph.name
          c.Graph.dst.Graph.port count Item.pp front)
      (List.sort compare r.leftover_channels)

let pp_result ppf r =
  let run, read, write = utilization_breakdown r in
  Format.fprintf ppf
    "sim: %.6fs, %d PEs, avg util %.1f%% (run %.1f%% read %.1f%% write \
     %.1f%%), stalls %d, late %d, leftover %d%s"
    r.duration_s (Array.length r.procs)
    (100. *. average_utilization r)
    (100. *. run) (100. *. read) (100. *. write) r.input_stalls
    r.late_emissions r.leftover_items
    (if r.timed_out then " (TIMED OUT)" else "")
