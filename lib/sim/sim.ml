open Bp_util
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Item = Bp_kernel.Item
module Behaviour = Bp_kernel.Behaviour
module Machine = Bp_machine.Machine
module Token = Bp_token.Token
module Size = Bp_geometry.Size
module Rate = Bp_geometry.Rate
module Image = Bp_image.Image
module Pool = Bp_image.Pool

type proc_stats = {
  run_s : float;
  read_s : float;
  write_s : float;
  fires : int;
}

type node_stats = { node_fires : int; node_busy_s : float }

type result = {
  duration_s : float;
  procs : proc_stats array;
  input_stalls : int;
  late_emissions : int;
  max_input_lateness_s : float;
  sink_eofs : (Graph.node_id * float list) list;
  sink_first_data : (Graph.node_id * float) list;
  source_frame_births : (Graph.node_id * float list) list;
  node_stats : (Graph.node_id * node_stats) list;
  channel_depths : (int * int) list;  (* channel id -> max occupancy *)
  leftover_channels : (int * int * Item.t) list;
  leftover_items : int;
  events_processed : int;
  timed_out : bool;
  pool : Pool.stats option;  (* chunk-pool counters; None when pooling off *)
  static_regions : int;  (* static regions of the schedule, 0 if none *)
  static_fired : int;  (* firings that matched their table entry *)
  static_indexed_fired : int;  (* of those, dispatched via the slot ABI *)
  static_fallback_events : int;  (* table desyncs observed at runtime *)
  static_elided_events : int;  (* provably-declining wakes never dispatched *)
}

type placement_model = {
  tile_of_proc : int -> int * int;
  hop_cycles_per_word : float;
}

type channel_event = Ch_push | Ch_pop | Ch_block

type kernel_state = Ks_busy | Ks_blocked_input | Ks_blocked_output | Ks_idle

let kernel_state_name = function
  | Ks_busy -> "busy"
  | Ks_blocked_input -> "blocked-on-input"
  | Ks_blocked_output -> "blocked-on-output"
  | Ks_idle -> "idle"

(* ---- runtime structures ----------------------------------------------

   The engine is event-driven: instead of rescanning every processor to a
   fixpoint after each event (the original engine, preserved in
   {!Sim_reference}), each channel knows the two parties it connects, and
   a push, pop, or processor-release marks exactly the parties whose
   readiness it may have changed. Every [try_step] is failure-pure — a
   declined firing mutates nothing — so a processor whose kernels saw no
   adjacent-channel change since their last declined attempt would
   deterministically decline again; skipping it is exact, not an
   approximation. The equivalence is held down by the suite-wide
   differential test against {!Sim_reference}.

   Allocation discipline: hot mutable floats live in [float array]
   side-state ([rt_f], [t_f], the per-proc arrays inside [run]) rather
   than in mutable record fields, because without flambda a store to a
   mutable float field of a mixed record boxes the float — at one or more
   stores per event that was a measurable slice of the very minor-GC
   pressure this engine exists to avoid (docs/PERFORMANCE.md). *)

type chan_rt = {
  id : int;
  ring : Item.t Ring.t;
  mutable hops : int;  (* mesh distance between producer and consumer *)
  mutable max_depth : int;
  mutable producer : party;  (* woken by Ch_pop: space freed *)
  mutable consumer : party;  (* woken by Ch_push: data available *)
  (* Kernel endpoints, for the quasi-static wake vetting: the node that
     pushes into this channel and the node that pops it ([None] for
     emitter/sink/unbound endpoints). *)
  mutable c_src : node_rt option;
  mutable c_dst : node_rt option;
}

(* Who reacts when a channel changes. Wired after construction, because
   channels and node runtimes refer to each other. *)
and party =
  | P_none
  | P_proc of int  (* an on-chip kernel: mark its processor ready *)
  | P_sink of node_rt  (* an off-chip sink: queue it for draining *)
  | P_emit of emitter_rt  (* a self-driven emitter: retry if blocked *)

and node_rt = {
  node : Graph.node;
  behaviour : Behaviour.t;
  in_chans : (string * chan_rt) array;  (* bound once at setup *)
  out_chans : (string * chan_rt array) array;
  proc : int option;
  mutable io : Behaviour.io;  (* built once; counters reset per firing *)
  mutable cw_read : int;  (* words read by the current firing *)
  mutable cw_write : int;
  mutable cw_hop : int;
  mutable cw_full_out : int;  (* full output channel the attempt saw, or -1 *)
  mutable s_marked : bool;  (* sinks only: queued for draining *)
  mutable s_first_seen : bool;  (* sinks only: first data chunk recorded *)
  mutable rt_fires : int;
  (* Quasi-static table cursor: method names of the node's firing table
     (empty when the schedule has none), the next expected position, and
     whether the run is still in sync with the table. Telemetry only —
     see {!Static_schedule}. *)
  st_prelude : string array;
  st_period : string array;
  mutable st_pos : int;
  mutable st_synced : bool;
  (* Scripted dispatch (quasi-static mode): the node's resolved firing
     table compiled against its channel bindings, so a synced static
     kernel fires through {!Behaviour.indexed} with no name lookup and
     no closure allocation. [sc_run_left > 0] means a run of identical
     firings was armed by one guard validation and the next [sc_run_left]
     scripted firings skip the guard entirely. *)
  mutable sc : scripted option;
  mutable sc_run_left : int;
  (* Scripted cursor over the node's segment-compressed program: the
     sentry of the current segment, how many positions of it remain
     (including the current one — the guard's maximal armable run), the
     segment index, and which side (prelude or period) the cursor walks.
     Maintained on every table advance so the per-examination hot path
     and the elision oracle read fields instead of re-deriving a
     prelude/period index (an integer division) each time. Meaningless
     while unsynced. *)
  mutable sc_next : sentry;
  mutable sc_left : int;
  mutable sc_seg : int;
  mutable sc_in_prelude : bool;
  (* Why the last decline proof held, for O(1) re-vetting of elided wakes
     on adjacent channel changes (see [wake_push]/[wake_pop]): 0 = no
     cached proof, 1 = input-blocked on [sc_block_chan] (fewer than one
     firing's worth queued, everything queued matches the table), 2 =
     output-space-blocked, 3 = proven by the behaviour's [starved]
     closure (no incremental form — any adjacent change re-proves in
     full). Consulted only between an elision and its restore. *)
  mutable sc_blocked : int;
  mutable sc_block_chan : chan_rt option;
  rt_f : float array;  (* 0 = total busy seconds; 1 = current busy end *)
  mutable ks_state : kernel_state;  (* as of the last dispatch examination *)
  mutable fb_pending : bool;  (* sources only: next Data push starts a frame *)
}

and scripted = {
  sc_ports : Behaviour.ports;  (* slot-indexed io over the bound channels *)
  sc_fire : Behaviour.ports -> int -> Behaviour.fired option;
  (* The firing table compressed to segments: one (sentry, length) pair
     per maximal run of identical firings ([e_run]), per side. A period
     of hundreds of entries holds only dozens of segments and a handful
     of distinct compiled shapes, so this is what the per-[run] wiring
     builds — nothing in the engine is sized by raw entry count. *)
  sc_pre_segs : sentry array;
  sc_pre_runs : int array;
  sc_per_segs : sentry array;
  sc_per_runs : int array;
}

(* One compiled firing-table shape: the behaviour op index plus the exact
   ring checks that prove the generic path would fire this entry next. *)
and sentry = {
  sop : int;  (* Behaviour.indexed op, -1 = dispatch generically *)
  s_pops : (chan_rt * Static_schedule.item_kind array) array;
      (* per popped input channel: expected front kinds of ONE firing *)
  s_outs : (chan_rt array * int) array;
      (* per space-checked output port: fan-out set and pushes per firing *)
  s_need : int;  (* free slots one firing needs on each checked port *)
  s_armable : bool;  (* safe to arm a multi-firing run from one guard *)
}

and emitter_rt = {
  em : node_rt;
  em_burst : int;  (* Spec.emission_burst: space one firing may need *)
  em_kind : em_kind;
  mutable em_event : event;  (* interned; re-pushed on every (re)schedule *)
  mutable em_blocked : bool;  (* waiting for space; woken by Ch_pop *)
  mutable em_woken : bool;
}

and em_kind = Em_const | Em_timed of timed_rt

and timed_rt = {
  period : float;
  t_f : float array;  (* 0 = next due time; 1 = max lateness *)
  mutable stalls : int;
  mutable late : int;
}

and event = Source_slot of emitter_rt | Const_emit of emitter_rt
          | Proc_free of int

type proc_rt = {
  mutable cursor : int;  (* round-robin position among its kernels *)
  mutable last_fired : int;  (* kernel index of the previous firing *)
  kernels : node_rt array;
  mutable ready : bool;  (* marked for the next dispatch sweep *)
  mutable p_fires : int;
  (* Lazy processor-free wake (quasi-static mode): when every kernel on
     the processor is provably starved at fire time, the [Proc_free]
     event is not pushed; its heap sequence number is reserved here so a
     later restore lands in the exact order the eager push would have. *)
  mutable pf_scheduled : bool;
  mutable pf_seq : int;
}

(* Channel rings hold plain [Item.t]; popped slots are overwritten with
   this throwaway control item so the ring never pins live pixel data. *)
let dummy_item = Item.ctl (Token.eof (-1))


(* Placeholder for [sc_next] until a node is wired for scripted
   dispatch; its [sop = -1] routes any accidental use to the generic
   path. *)
let null_sentry =
  { sop = -1; s_pops = [||]; s_outs = [||]; s_need = 0; s_armable = false }

(* Point a scripted node's cursor at the first segment of its program
   (prelude when one exists, else straight into the period). *)
let script_init (rt : node_rt) (sc : scripted) =
  if Array.length sc.sc_pre_segs > 0 then begin
    rt.sc_in_prelude <- true;
    rt.sc_seg <- 0;
    rt.sc_next <- sc.sc_pre_segs.(0);
    rt.sc_left <- sc.sc_pre_runs.(0)
  end
  else if Array.length sc.sc_per_segs > 0 then begin
    rt.sc_in_prelude <- false;
    rt.sc_seg <- 0;
    rt.sc_next <- sc.sc_per_segs.(0);
    rt.sc_left <- sc.sc_per_runs.(0)
  end
  else begin
    (* No recorded firings at all: park on the null sentry forever. *)
    rt.sc_next <- null_sentry;
    rt.sc_left <- max_int
  end

(* Step a scripted node's cursor one table position forward: consume one
   position of the current segment, rolling into the next segment — and
   from the end of the prelude into the period, which then cycles — when
   it runs dry. *)
let advance_script (rt : node_rt) (sc : scripted) =
  if rt.sc_left > 1 then rt.sc_left <- rt.sc_left - 1
  else begin
    let s = rt.sc_seg + 1 in
    if rt.sc_in_prelude && s >= Array.length sc.sc_pre_segs then begin
      rt.sc_in_prelude <- false;
      rt.sc_seg <- 0;
      rt.sc_next <- sc.sc_per_segs.(0);
      rt.sc_left <- sc.sc_per_runs.(0)
    end
    else begin
      let s = if rt.sc_in_prelude || s < Array.length sc.sc_per_segs then s else 0 in
      if rt.sc_in_prelude then begin
        rt.sc_seg <- s;
        rt.sc_next <- sc.sc_pre_segs.(s);
        rt.sc_left <- sc.sc_pre_runs.(s)
      end
      else begin
        rt.sc_seg <- s;
        rt.sc_next <- sc.sc_per_segs.(s);
        rt.sc_left <- sc.sc_per_runs.(s)
      end
    end
  end

let find_port what (rt : node_rt) (a : (string * 'a) array) port =
  let n = Array.length a in
  let rec go i =
    if i >= n then
      Err.graphf "%s: no %s channel %S" rt.node.Graph.name what port
    else
      let name, c = a.(i) in
      if String.equal name port then c else go (i + 1)
  in
  go 0

(* ---- main engine ------------------------------------------------------ *)

let run ?(max_time_s = 300.) ?(max_events = 50_000_000) ?(pool = true)
    ?chunk_pool ?placement ?observer ?channel_observer ?state_observer
    ?static_schedule ~graph:g ~mapping ~machine () =
  Graph.validate g;
  let pe = machine.Machine.pe in
  (* Quasi-static mode: active only when a schedule is supplied AND no
     observer is installed. The elided examinations are exactly ones that
     would decline (the [starved] oracle contract), so simulated outcomes
     are bit-identical — but observers report *examinations* (state
     intervals, per-attempt block events), which elision would thin out.
     With any observer present the engine stays fully event-driven. *)
  let static_mode =
    Option.is_some static_schedule
    && (not (Option.is_some observer))
    && (not (Option.is_some channel_observer))
    && not (Option.is_some state_observer)
  in
  let sched =
    match static_schedule with
    | Some s -> s
    | None -> Static_schedule.empty
  in
  let methods_of (tbl : Static_schedule.node_table option) =
    match tbl with
    | None -> ([||], [||])
    | Some tbl ->
      ( Array.map (fun e -> e.Static_schedule.e_method)
          tbl.Static_schedule.t_prelude,
        Array.map (fun e -> e.Static_schedule.e_method)
          tbl.Static_schedule.t_period )
  in
  (* Current simulated time, in a one-slot float array so stores stay
     unboxed (a [float ref] boxes on every [:=] without flambda). *)
  let now = [| 0. |] in
  (* Channels: preallocated rings, indexed by a plain array over a dense
     remap of channel ids (graph ids are small ints but need not be
     contiguous after transforms). *)
  let graph_chans = Graph.channels g in
  let chan_tbl = Hashtbl.create 64 in
  List.iter
    (fun (c : Graph.channel) ->
      Hashtbl.replace chan_tbl c.Graph.chan_id
        {
          id = c.Graph.chan_id;
          ring = Ring.create ~capacity:c.Graph.capacity ~dummy:dummy_item;
          hops = 0;
          max_depth = 0;
          producer = P_none;
          consumer = P_none;
          c_src = None;
          c_dst = None;
        })
    graph_chans;
  let chan_rt id = Hashtbl.find chan_tbl id in
  let all_chans =
    (* Deterministic order for the result lists. *)
    List.map (fun (c : Graph.channel) -> chan_rt c.Graph.chan_id)
      (List.sort
         (fun (a : Graph.channel) b -> compare a.Graph.chan_id b.Graph.chan_id)
         graph_chans)
  in
  (* Node runtimes, with port->channel bindings resolved once. *)
  let sink_eof_times : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let sink_first_data : (Graph.node_id, float) Hashtbl.t = Hashtbl.create 8 in
  (* Per timed source, the emission time of each frame's first data item
     (newest first) — the birth tags sinks' per-frame latency is measured
     against. *)
  let frame_births : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  (* One pool for the whole run. Every chunk a behaviour acquires or pops
     and does not push onward comes back here, so steady state recycles a
     fixed working set instead of allocating. [~pool:false] falls back to
     the allocation-naive plane (releases are dropped, acquires allocate)
     for A/B measurement — results are bit-identical either way.
     [?chunk_pool] lends an existing pool instead — the per-domain reuse
     path of docs/PARALLELISM.md: a sweep worker keeps its free lists
     warm across runs, and this run's [result.pool] reports the deltas
     it contributed. Acquired buffers are zeroed in all three modes, so
     the simulated outcome never depends on the choice. *)
  let pool_before = Option.map Pool.stats chunk_pool in
  let chunk_pool =
    match chunk_pool with
    | Some _ as lent -> lent
    | None -> if pool then Some (Pool.create ()) else None
  in
  let acquire_chunk, release_chunk =
    match chunk_pool with
    | Some p -> ((fun s -> Pool.acquire p s), fun img -> Pool.release p img)
    | None -> (Image.create, fun _ -> ())
  in
  let dummy_io =
    let fail _ = assert false in
    { Behaviour.peek = fail; pop = fail; push = (fun _ _ -> assert false);
      space = fail; acquire = fail; release = (fun _ -> assert false);
      has_input = fail }
  in
  let node_rts = Hashtbl.create 64 in
  let static_ids =
    if static_mode then Static_schedule.static_node_ids sched else []
  in
  List.iter
    (fun (n : Graph.node) ->
      let in_chans =
        Array.of_list
          (List.map
             (fun (c : Graph.channel) ->
               (c.Graph.dst.Graph.port, chan_rt c.Graph.chan_id))
             (Graph.in_channels g n.Graph.id))
      in
      let out_chans =
        Array.of_list
          (List.map
             (fun (p : Bp_kernel.Port.t) ->
               ( p.Bp_kernel.Port.name,
                 Array.of_list
                   (List.map
                      (fun (c : Graph.channel) -> chan_rt c.Graph.chan_id)
                      (Graph.out_channels g n.Graph.id
                         ~port:p.Bp_kernel.Port.name ())) ))
             n.Graph.spec.Spec.outputs)
      in
      (* Only static-region members are reconciled against their tables:
         a node excluded from every static region (user tokens, or an
         unverified period) has a firing order the schedule deliberately
         refuses to predict, so holding it to the recorder's order would
         report spurious desyncs. *)
      let st_prelude, st_period =
        methods_of
          (if static_mode && List.mem n.Graph.id static_ids then
             Static_schedule.table sched n.Graph.id
           else None)
      in
      let rt =
        {
          node = n;
          behaviour = n.Graph.spec.Spec.make_behaviour ();
          in_chans;
          out_chans;
          proc = Mapping.processor_of mapping n.Graph.id;
          io = dummy_io;
          cw_read = 0;
          cw_write = 0;
          cw_hop = 0;
          cw_full_out = -1;
          s_marked = false;
          s_first_seen = false;
          rt_fires = 0;
          st_prelude;
          st_period;
          st_pos = 0;
          st_synced = Array.length st_period > 0;
          sc = None;
          sc_run_left = 0;
          sc_next = null_sentry;
          sc_left = 0;
          sc_seg = 0;
          sc_in_prelude = false;
          sc_blocked = 0;
          sc_block_chan = None;
          rt_f = [| 0.; 0. |];
          ks_state = Ks_idle;
          fb_pending = true;
        }
      in
      Array.iter (fun (_, c) -> c.c_dst <- Some rt) in_chans;
      Array.iter
        (fun (_, cs) -> Array.iter (fun c -> c.c_src <- Some rt) cs)
        out_chans;
      if n.Graph.spec.Spec.role = Spec.Sink then
        Hashtbl.replace sink_eof_times n.Graph.id (ref []);
      if n.Graph.spec.Spec.role = Spec.Source then
        Hashtbl.replace frame_births n.Graph.id (ref []);
      Hashtbl.replace node_rts n.Graph.id rt)
    (Graph.nodes g);
  let node_rt id = Hashtbl.find node_rts id in
  (* Network distances, when a placement is supplied: off-chip endpoints
     (sources, sinks) sit at the mesh edge, tile (0,0). *)
  (match placement with
  | None -> ()
  | Some p ->
    let tile id =
      match Mapping.processor_of mapping id with
      | Some proc -> p.tile_of_proc proc
      | None -> (0, 0)
    in
    List.iter
      (fun (c : Graph.channel) ->
        let x0, y0 = tile c.Graph.src.Graph.node in
        let x1, y1 = tile c.Graph.dst.Graph.node in
        (chan_rt c.Graph.chan_id).hops <- abs (x0 - x1) + abs (y0 - y1))
      graph_chans);
  (* Processors: a record for the int/array state, parallel float arrays
     for the accumulated times (field stores would box). *)
  let nprocs = Mapping.processors mapping in
  let procs =
    Array.init nprocs (fun p ->
        {
          cursor = 0;
          last_fired = -1;
          kernels =
            Array.of_list (List.map node_rt (Mapping.nodes_on mapping p));
          ready = true;  (* every processor gets one initial scan *)
          p_fires = 0;
          pf_scheduled = true;  (* nothing elided yet *)
          pf_seq = 0;
        })
  in
  let p_busy_until = Array.make nprocs 0. in
  let p_run = Array.make nprocs 0. in
  let p_read = Array.make nprocs 0. in
  let p_write = Array.make nprocs 0. in
  (* Interned events: each party's wake event is allocated once and
     re-pushed, not rebuilt per scheduling. *)
  let proc_free = Array.init nprocs (fun p -> Proc_free p) in
  (* Emitters: sources and constant sources drive themselves off the
     event queue rather than a processor. *)
  let emitter_tbl : (Graph.node_id, emitter_rt) Hashtbl.t = Hashtbl.create 8 in
  let emitters = ref [] in
  let add_emitter (n : Graph.node) kind =
    let e =
      {
        em = node_rt n.Graph.id;
        em_burst = n.Graph.spec.Spec.emission_burst;
        em_kind = kind;
        em_event = Proc_free (-1);
        em_blocked = false;
        em_woken = false;
      }
    in
    e.em_event <-
      (match kind with Em_const -> Const_emit e | Em_timed _ -> Source_slot e);
    Hashtbl.replace emitter_tbl n.Graph.id e;
    emitters := e :: !emitters;
    e
  in
  let sinks =
    Array.of_list
      (List.map
         (fun (n : Graph.node) ->
           let rt = node_rt n.Graph.id in
           rt.s_marked <- true;  (* one initial drain *)
           rt)
         (Graph.sinks g))
  in
  let events : event Heap.t = Heap.create ~dummy:(Proc_free (-1)) () in
  (* Constant sources emit before the first source slot so configuration
     data (coefficients, bin bounds) is in place when pixel 0 arrives. *)
  List.iter
    (fun (n : Graph.node) ->
      Heap.push events ~time:0. (add_emitter n Em_const).em_event)
    (Graph.const_sources g);
  let timed_srcs =
    List.map
      (fun (n : Graph.node) ->
        let frame, rate =
          match n.Graph.meta with
          | Graph.Source_meta { frame; rate } -> (frame, rate)
          | _ -> Err.graphf "source %s lacks Source_meta" n.Graph.name
        in
        let period = Rate.element_period_s rate ~frame in
        let t = { period; t_f = [| 0.; 0. |]; stalls = 0; late = 0 } in
        Heap.push events ~time:0. (add_emitter n (Em_timed t)).em_event;
        t)
      (Graph.sources g)
  in
  (* Wire each channel to the parties its changes can unblock. *)
  List.iter
    (fun (c : Graph.channel) ->
      let rt = chan_rt c.Graph.chan_id in
      let src = node_rt c.Graph.src.Graph.node in
      rt.producer <-
        (match Hashtbl.find_opt emitter_tbl c.Graph.src.Graph.node with
        | Some e -> P_emit e
        | None -> (
          match src.proc with Some p -> P_proc p | None -> P_none));
      let dst = node_rt c.Graph.dst.Graph.node in
      rt.consumer <-
        (if dst.node.Graph.spec.Spec.role = Spec.Sink then P_sink dst
         else
           match dst.proc with Some p -> P_proc p | None -> P_none))
    graph_chans;
  (* Ready-set marking. In quasi-static mode a mark that lands on a busy
     processor whose end-of-service wake was elided re-proves the elision
     ([p_oracle], the same per-processor decline proof the firing site
     used): while every kernel still provably declines the wake stays
     elided, and the first change that breaks the proof restores the wake
     at the exact time (and reserved heap rank) the eager engine would
     have used. [static_elided] counts wakes that stay elided for good:
     each is exactly one eager-engine event that would have been
     dispatched and declined, so [!processed + !static_elided] equals the
     eager engine's event count. *)
  let static_elided = ref 0 in
  let p_oracle = ref (fun (_ : int) -> false) in
  let wake_proc p =
    let proc = procs.(p) in
    if
      (not proc.pf_scheduled)
      && p_busy_until.(p) > now.(0) +. 1e-15
      && not (!p_oracle p)
    then begin
      proc.pf_scheduled <- true;
      decr static_elided;
      Heap.push_seq events ~time:p_busy_until.(p) ~seq:proc.pf_seq
        proc_free.(p)
    end
  in
  (* Vetting an elided wake against a single channel change, O(1) in the
     common cases. A pop on the producer's output only grows its space:
     it cannot lift an input block (proof kind 1), so the elision stands
     untouched; every other cached kind re-proves in full. *)
  let wake_pop (c : chan_rt) p =
    let proc = procs.(p) in
    if (not proc.pf_scheduled) && p_busy_until.(p) > now.(0) +. 1e-15 then
      match c.c_src with
      | Some rt when rt.sc_blocked = 1 -> ()
      | _ -> wake_proc p
  in
  (* A push on the consumer's input: positions at or beyond one firing's
     worth cannot touch the proof (the predicted firing never reads
     them); below that, the new item either matches the table — in which
     case only the blocking channel reaching a full firing's worth can
     lift an input block — or contradicts it, voiding the proof. *)
  let wake_push (c : chan_rt) p =
    let proc = procs.(p) in
    if (not proc.pf_scheduled) && p_busy_until.(p) > now.(0) +. 1e-15 then
      match c.c_dst with
      | Some rt when rt.sc_blocked = 1 || rt.sc_blocked = 2 ->
        let e = rt.sc_next in
        let pops = e.s_pops in
        let np = Array.length pops in
        let rec find i =
          if i >= np then -1
          else
            let cc, _ = pops.(i) in
            if cc == c then i else find (i + 1)
        in
        let ix = find 0 in
        if ix < 0 then () (* not popped by the predicted firing *)
        else begin
          let _, kinds = pops.(ix) in
          let u = Array.length kinds in
          let len = Ring.length c.ring in
          let pos = len - 1 in
          if pos >= u then () (* beyond the first firing *)
          else if
            Static_schedule.kind_of_item (Ring.peek_at c.ring pos)
            == kinds.(pos)
          then begin
            if
              rt.sc_blocked = 1
              && len >= u
              && match rt.sc_block_chan with Some b -> b == c | None -> false
            then wake_proc p
          end
          else wake_proc p (* first-firing mismatch: proof void *)
        end
      | _ -> wake_proc p
  in
  let mark_producer (c : chan_rt) =
    match c.producer with
    | P_proc p ->
      procs.(p).ready <- true;
      if static_mode then wake_pop c p
    | P_emit e -> if e.em_blocked then e.em_woken <- true
    | P_sink _ | P_none -> ()
  in
  let mark_consumer (c : chan_rt) =
    match c.consumer with
    | P_proc p ->
      procs.(p).ready <- true;
      if static_mode then wake_push c p
    | P_sink s -> s.s_marked <- true
    | P_emit _ | P_none -> ()
  in
  (* Observability is pay-when-used: with no observer installed, the
     firing path must not even box the float arguments a callback would
     take, so every notification is behind an [Option] match (and the
     state machinery behind [state_observing]). *)
  let chan_observing = Option.is_some channel_observer in
  let state_observing = Option.is_some state_observer in
  let on_chan (rt : node_rt) (c : chan_rt) ev =
    match channel_observer with
    | None -> ()
    | Some f ->
      f ~time_s:now.(0) ~chan_id:c.id ~node:rt.node ~proc:rt.proc ~event:ev
        ~depth:(Ring.length c.ring)
  in
  (* Per-node IO, built exactly once; the word counters live on the node
     and are reset before each attempt. *)
  let hop_cycles_per_word =
    match placement with
    | Some p -> p.hop_cycles_per_word
    | None -> 0.
  in
  let build_io (rt : node_rt) =
    (* Role tests hoisted out of the per-item path: a polymorphic [=] on
       the role variant per push/pop walks the generic comparator. *)
    let is_sink =
      match rt.node.Graph.spec.Spec.role with Spec.Sink -> true | _ -> false
    in
    let is_source =
      match rt.node.Graph.spec.Spec.role with
      | Spec.Source -> true
      | _ -> false
    in
    {
      Behaviour.peek =
        (fun port ->
          let c = find_port "input" rt rt.in_chans port in
          if Ring.is_empty c.ring then None else Some (Ring.peek c.ring));
      pop =
        (fun port ->
          let c = find_port "input" rt rt.in_chans port in
          if Ring.is_empty c.ring then
            Err.graphf "%s: pop from empty input %S" rt.node.Graph.name port;
          let item = Ring.pop c.ring in
          rt.cw_read <- rt.cw_read + Item.words item;
          if is_sink then begin
            match item with
            | Item.Ctl { Token.kind = Token.End_of_frame; _ } ->
              let times = Hashtbl.find sink_eof_times rt.node.Graph.id in
              times := now.(0) :: !times
            | Item.Data _ ->
              if not rt.s_first_seen then begin
                rt.s_first_seen <- true;
                Hashtbl.replace sink_first_data rt.node.Graph.id now.(0)
              end
            | _ -> ()
          end;
          if chan_observing then on_chan rt c Ch_pop;
          mark_producer c;
          item);
      push =
        (fun port item ->
          (* Frame tagging: a timed source's first data push after start or
             after an end-of-frame token is the birth of the next frame. *)
          if is_source then begin
            match item with
            | Item.Data _ ->
              if rt.fb_pending then begin
                let births = Hashtbl.find frame_births rt.node.Graph.id in
                births := now.(0) :: !births;
                rt.fb_pending <- false
              end
            | Item.Ctl { Token.kind = Token.End_of_frame; _ } ->
              rt.fb_pending <- true
            | Item.Ctl _ -> ()
          end;
          let cs = find_port "output" rt rt.out_chans port in
          for i = 0 to Array.length cs - 1 do
            let c = cs.(i) in
            if Ring.is_full c.ring then
              Err.graphf "%s: push to full channel on %S" rt.node.Graph.name
                port;
            (* Fan-out under pooling: each channel's consumer will own
               (and eventually release) its chunk, so channels beyond the
               first receive pool-backed copies — sharing one physical
               buffer would let it re-enter the pool twice. Without the
               pool, sharing is safe (nothing recycles) and matches the
               reference engine. *)
            let item =
              if i = 0 || not pool then item
              else
                match item with
                | Item.Data img ->
                  let d = acquire_chunk (Image.size img) in
                  Image.blit ~src:img ~dst:d ~x:0 ~y:0;
                  Item.data d
                | Item.Ctl _ -> item
            in
            Ring.push c.ring item;
            let depth = Ring.length c.ring in
            if depth > c.max_depth then c.max_depth <- depth;
            rt.cw_write <- rt.cw_write + Item.words item;
            rt.cw_hop <- rt.cw_hop + (c.hops * Item.words item);
            if chan_observing then on_chan rt c Ch_push;
            mark_consumer c
          done);
      acquire = acquire_chunk;
      release = release_chunk;
      has_input =
        (fun port ->
          not (Ring.is_empty (find_port "input" rt rt.in_chans port).ring));
      space =
        (fun port ->
          let cs = find_port "output" rt rt.out_chans port in
          let n = Array.length cs in
          if n = 0 then max_int
          else begin
            (* Local, non-escaping ref: compiled to a register. *)
            let acc = ref max_int in
            for i = 0 to n - 1 do
              let c = cs.(i) in
              let free = Ring.space c.ring in
              if free <= 0 then begin
                rt.cw_full_out <- c.id;
                if chan_observing then on_chan rt c Ch_block
              end;
              if free < !acc then acc := free
            done;
            !acc
          end);
    }
  in
  Hashtbl.iter (fun _ rt -> rt.io <- build_io rt) node_rts;
  (* Scripted-dispatch wiring (quasi-static mode): compile each static
     node's resolved firing table against its channel bindings, so synced
     kernels fire through {!Behaviour.indexed} with no port-name lookup.
     The slot-indexed io repeats [build_io]'s bookkeeping operation for
     operation minus the sink/source/observer branches — static-region
     members are never sinks or sources, and observers disable static
     mode outright. *)
  let null_chan =
    {
      id = -1;
      ring = Ring.create ~capacity:1 ~dummy:dummy_item;
      hops = 0;
      max_depth = 0;
      producer = P_none;
      consumer = P_none;
      c_src = None;
      c_dst = None;
    }
  in
  let build_ports (rt : node_rt) (ix_in : chan_rt array)
      (ix_out : chan_rt array array) =
    {
      Behaviour.ix_peek = (fun s -> Ring.peek ix_in.(s).ring);
      ix_pop =
        (fun s ->
          let c = ix_in.(s) in
          let item = Ring.pop c.ring in
          rt.cw_read <- rt.cw_read + Item.words item;
          mark_producer c;
          item);
      ix_push =
        (fun s item ->
          let cs = ix_out.(s) in
          for i = 0 to Array.length cs - 1 do
            let c = cs.(i) in
            (* Fan-out under pooling: pool-backed copies beyond channel 0,
               exactly as [build_io.push]. *)
            let item =
              if i = 0 || not pool then item
              else
                match item with
                | Item.Data img ->
                  let d = acquire_chunk (Image.size img) in
                  Image.blit ~src:img ~dst:d ~x:0 ~y:0;
                  Item.data d
                | Item.Ctl _ -> item
            in
            Ring.push c.ring item;
            let depth = Ring.length c.ring in
            if depth > c.max_depth then c.max_depth <- depth;
            rt.cw_write <- rt.cw_write + Item.words item;
            rt.cw_hop <- rt.cw_hop + (c.hops * Item.words item);
            mark_consumer c
          done);
      ix_space =
        (fun s ->
          let cs = ix_out.(s) in
          let n = Array.length cs in
          if n = 0 then max_int
          else begin
            let acc = ref max_int in
            for i = 0 to n - 1 do
              let free = Ring.space cs.(i).ring in
              if free < !acc then acc := free
            done;
            !acc
          end);
      ix_has = (fun s -> not (Ring.is_empty ix_in.(s).ring));
      ix_acquire = acquire_chunk;
      ix_release = release_chunk;
    }
  in
  if static_mode then
    List.iter
      (fun id ->
        let rt = node_rt id in
        match
          (rt.behaviour.Behaviour.indexed, Static_schedule.table sched id)
        with
        | Some ix, Some tbl ->
          let spec = rt.node.Graph.spec in
          let ix_in =
            Array.of_list
              (List.map
                 (fun name ->
                   (* An unconnected input never appears in a recorded
                      entry; the shared placeholder keeps the array dense. *)
                   match
                     Array.find_opt
                       (fun (n, _) -> String.equal n name)
                       rt.in_chans
                   with
                   | Some (_, c) -> c
                   | None -> null_chan)
                 (Spec.input_order spec))
          in
          let ix_out =
            Array.of_list
              (List.map
                 (fun name -> find_port "output" rt rt.out_chans name)
                 (Spec.output_order spec))
          in
          let compile (e : Static_schedule.entry) =
            let op =
              ix.Behaviour.op_of ~method_name:e.Static_schedule.e_method
                ~pops:e.Static_schedule.e_pop_slots
                ~pushes:e.Static_schedule.e_push_slots
            in
            if op < 0 then
              {
                sop = -1;
                s_pops = [||];
                s_outs = [||];
                s_need = 0;
                s_armable = false;
              }
            else begin
              (* Group the entry's pops by input slot, order preserved. *)
              let slots = ref [] in
              Array.iter
                (fun s ->
                  if not (List.mem s !slots) then slots := s :: !slots)
                e.Static_schedule.e_pop_slots;
              let s_pops =
                Array.of_list
                  (List.rev_map
                     (fun s ->
                       let kinds = ref [] in
                       Array.iteri
                         (fun i s' ->
                           if s' = s then
                             kinds :=
                               snd e.Static_schedule.e_pops.(i) :: !kinds)
                         e.Static_schedule.e_pop_slots;
                       (ix_in.(s), Array.of_list (List.rev !kinds)))
                     !slots)
              in
              let outs = ix.Behaviour.space_outs op in
              let s_outs =
                Array.of_list
                  (List.filter_map
                     (fun o ->
                       let cs = ix_out.(o) in
                       if Array.length cs = 0 then None
                       else begin
                         (* Pushes per firing per channel: every fan-out
                            channel of the port receives the same count. *)
                         let cid = cs.(0).id in
                         let u = ref 0 in
                         Array.iter
                           (fun (c, _) -> if c = cid then incr u)
                           e.Static_schedule.e_pushes;
                         Some (cs, !u)
                       end)
                     (Array.to_list outs))
              in
              {
                sop = op;
                s_pops;
                s_outs;
                s_need = ix.Behaviour.space_need op;
                s_armable =
                  (* An op whose space the engine cannot pre-check (it
                     self-checks inside the fire) is never batch-armed. *)
                  Array.length e.Static_schedule.e_pushes = 0
                  || Array.length outs > 0;
              }
            end
          in
          (* A table has one entry per recorded firing but only dozens of
             segments and a handful of distinct shapes, pre-computed by
             the resolve pass ([e_run], [e_shape]); compile each shape
             once, emit one (sentry, length) pair per maximal run, and
             nothing in the per-[run] wiring is sized by raw entry
             count. *)
          let nshapes = ref 1 in
          let count (e : Static_schedule.entry) =
            if e.Static_schedule.e_shape >= !nshapes then
              nshapes := e.Static_schedule.e_shape + 1
          in
          Array.iter count tbl.Static_schedule.t_prelude;
          Array.iter count tbl.Static_schedule.t_period;
          let protos = Array.make !nshapes None in
          let proto_of (e : Static_schedule.entry) =
            match protos.(e.Static_schedule.e_shape) with
            | Some s -> s
            | None ->
              let s = compile e in
              protos.(e.Static_schedule.e_shape) <- Some s;
              s
          in
          let segments (entries : Static_schedule.entry array) =
            let n = Array.length entries in
            let acc = ref [] and i = ref 0 in
            while !i < n do
              let e = entries.(!i) in
              acc := (proto_of e, e.Static_schedule.e_run) :: !acc;
              i := !i + max 1 e.Static_schedule.e_run
            done;
            let l = List.rev !acc in
            (Array.of_list (List.map fst l), Array.of_list (List.map snd l))
          in
          let pre_segs, pre_runs = segments tbl.Static_schedule.t_prelude in
          let per_segs, per_runs = segments tbl.Static_schedule.t_period in
          let sc =
            {
              sc_ports = build_ports rt ix_in ix_out;
              sc_fire = ix.Behaviour.fire_indexed;
              sc_pre_segs = pre_segs;
              sc_pre_runs = pre_runs;
              sc_per_segs = per_segs;
              sc_per_runs = per_runs;
            }
          in
          rt.sc <- Some sc;
          if rt.st_synced then script_init rt sc
        | _ -> ())
      static_ids;
  (* One step of a node. Service-time pricing happens at the dispatch
     site — the only caller that needs it — from the [cw_*] word
     counters; a sink or emitter firing prices nothing, and a step
     returns the behaviour's interned [fired] with no wrapper. *)
  (* Table reconciliation (telemetry only): a firing either matches the
     next entry of the node's table — walking prelude then cycling the
     period — or desyncs the node for the rest of the run. *)
  let static_fired = ref 0 in
  let static_fallback = ref 0 in
  let reconcile (rt : node_rt) (f : Behaviour.fired) =
    let plen = Array.length rt.st_prelude in
    let expected =
      if rt.st_pos < plen then rt.st_prelude.(rt.st_pos)
      else rt.st_period.((rt.st_pos - plen) mod Array.length rt.st_period)
    in
    (* Method names are interned per kernel module, so the physical test
       settles almost every comparison. *)
    if expected == f.Behaviour.method_name
       || String.equal expected f.Behaviour.method_name
    then begin
      rt.st_pos <- rt.st_pos + 1;
      (match rt.sc with Some sc -> advance_script rt sc | None -> ());
      incr static_fired
    end
    else begin
      rt.st_synced <- false;
      rt.sc_run_left <- 0;
      incr static_fallback
    end
  in
  let step_node (rt : node_rt) =
    rt.cw_read <- 0;
    rt.cw_write <- 0;
    rt.cw_hop <- 0;
    rt.cw_full_out <- -1;
    match rt.behaviour.Behaviour.try_step rt.io with
    | None -> None
    | Some f as fired ->
      rt.rt_fires <- rt.rt_fires + 1;
      if rt.st_synced then reconcile rt f;
      fired
  in
  (* Scripted dispatch: fire the node's next table entry through the
     slot-indexed ABI. The guard proves the generic path would fire
     exactly this entry next — fronts present with the recorded kinds,
     space for the recorded pushes — and [fire_indexed] re-checks any
     private-state precondition, declining mutation-free on mismatch, in
     which case (and on any guard failure) the attempt falls back to the
     generic [step_node] with its PR-7 reconcile semantics intact. *)
  let static_indexed = ref 0 in
  (* The guard's three-way verdict on entry [e] at the front of the
     table, with [run] = the identical-firing run length from the
     current position:

     - [k >= 1]: one validation proves [k] consecutive firings of [e] —
       fronts carry the recorded kinds and [space0 - j*u >= need]
       budgets firing [j] exactly. Sound because only this node consumes
       its input fronts (producers append at the back) and only this
       node shrinks its output space.
     - [0]: unproven either way — a queued item contradicts the table
       (possible desync); hand the node to the generic path.
     - [-1]: a proven decline — every queued item matches the table but
       a popped channel holds fewer than one firing's worth, or the
       fronts are complete and an output lacks space. A synced node's
       next firing is its next table entry (Kahn determinism: firing
       sequences are a function of input item sequences, and static-
       region kernels branch on item kind only), so the generic
       examination would deterministically decline; callers skip it, and
       the post-service elision oracle reuses the same proof.

     Constant constructors make the kind test a physical comparison. *)
  (* Written as tail-recursive int loops — the guard runs tens of
     thousands of times per run, and without flambda every [ref] here
     would be a live minor-heap allocation. *)
  let guard_k (rt : node_rt) (e : sentry) (run : int) =
    let nouts = Array.length e.s_outs in
    let rec outs i k =
      if i >= nouts then k
      else begin
        let cs, u = e.s_outs.(i) in
        let n = Array.length cs in
        let rec minfree j sp =
          if j >= n then sp
          else
            let f = Ring.space cs.(j).ring in
            minfree (j + 1) (if f < sp then f else sp)
        in
        let sp = minfree 0 max_int in
        if sp < e.s_need then -2 (* fronts complete: proven space block *)
        else if u > 0 then begin
          let cap = ((sp - e.s_need) / u) + 1 in
          outs (i + 1) (if cap < k then cap else k)
        end
        else outs (i + 1) k
      end
    in
    let npops = Array.length e.s_pops in
    (* [short]: everything queued on some popped channel matched but one
       firing's worth isn't there — a proven input block, unless a later
       channel shows a first-firing mismatch (which makes the verdict
       unproven and dominates). *)
    let rec pops i k short =
      if k = 0 then 0
      else if i >= npops then if short then -1 else outs 0 k
      else begin
        let c, kinds = e.s_pops.(i) in
        let u = Array.length kinds in
        let len = Ring.length c.ring in
        let m = k * u in
        let maxj = if m < len then m else len in
        let j =
          if u = 1 then begin
            (* Single pop per firing — the overwhelmingly common shape;
               no index arithmetic in the scan. *)
            let k0 = kinds.(0) in
            let rec scan j =
              if
                j < maxj
                && Static_schedule.kind_of_item (Ring.peek_at c.ring j) == k0
              then scan (j + 1)
              else j
            in
            scan 0
          end
          else
            let rec scan j =
              if
                j < maxj
                && Static_schedule.kind_of_item (Ring.peek_at c.ring j)
                   == kinds.(j mod u)
              then scan (j + 1)
              else j
            in
            scan 0
        in
        if j < maxj then
          (* A queued item disagrees with the table. Inside the first
             firing that is a desync witness (unproven); beyond it, it
             merely limits the armable run. *)
          let fir = j / u in
          pops (i + 1) (if fir < k then fir else k) short
        else if j = len && len < m then
          (* All queued items match but fewer than [k] firings' worth are
             there: blocked at firing [len / u]. *)
          let fir = j / u in
          if fir = 0 then begin
            rt.sc_block_chan <- Some c;
            pops (i + 1) k true
          end
          else pops (i + 1) (if fir < k then fir else k) short
        else pops (i + 1) (if j / u < k then j / u else k) short
      end
    in
    pops 0 (if e.s_armable then run else 1) false
  in
  let step_kernel (rt : node_rt) =
    match rt.sc with
    | Some sc when rt.st_synced ->
      let e = rt.sc_next in
      if rt.sc_run_left > 0 then begin
        (* Armed: the guard already proved this whole run of identical
           firings; dispatch straight into the op. *)
        rt.cw_read <- 0;
        rt.cw_write <- 0;
        rt.cw_hop <- 0;
        rt.cw_full_out <- -1;
        match sc.sc_fire sc.sc_ports e.sop with
        | Some _ as fired ->
          rt.sc_run_left <- rt.sc_run_left - 1;
          rt.rt_fires <- rt.rt_fires + 1;
          rt.st_pos <- rt.st_pos + 1;
          advance_script rt sc;
          incr static_fired;
          incr static_indexed;
          fired
        | None ->
          rt.sc_run_left <- 0;
          step_node rt
      end
      else begin
        let k = if e.sop >= 0 then guard_k rt e rt.sc_left else 0 in
        if k > 0 then begin
          rt.cw_read <- 0;
          rt.cw_write <- 0;
          rt.cw_hop <- 0;
          rt.cw_full_out <- -1;
          match sc.sc_fire sc.sc_ports e.sop with
          | Some _ as fired ->
            rt.sc_run_left <- k - 1;
            rt.rt_fires <- rt.rt_fires + 1;
            rt.st_pos <- rt.st_pos + 1;
            advance_script rt sc;
            incr static_fired;
            incr static_indexed;
            fired
          | None -> step_node rt
        end
        else if k < 0 && not state_observing then
          (* Proven decline: skip the generic examination outright. (With
             a state observer installed the generic decline still runs —
             its [cw_full_out] classifies the blocked state.) *)
          None
        else step_node rt
      end
    | _ -> step_node rt
  in
  (* Shared progress flag for the dispatch fixpoint, hoisted so the loop
     helpers below close over one ref for the whole run instead of
     threading a fresh one per event. *)
  let progress = ref false in
  (* Marked sinks drain instantly (off-chip), to personal exhaustion;
     sinks never push, so they cannot re-enable each other and one pass
     reaches the same fixpoint as the reference engine's rescan. *)
  let rec drain_sink srt =
    match step_node srt with
    | Some _ ->
      progress := true;
      drain_sink srt
    | None -> ()
  in
  let drain_ready_sinks () =
    for i = 0 to Array.length sinks - 1 do
      let srt = sinks.(i) in
      if srt.s_marked then begin
        srt.s_marked <- false;
        drain_sink srt
      end
    done
  in
  (* A successful timed emission: lateness bookkeeping and the next slot. *)
  let fire_timed (t : timed_rt) e =
    let lateness = now.(0) -. t.t_f.(0) in
    if lateness > 1e-12 then begin
      t.late <- t.late + 1;
      if lateness > t.t_f.(1) then t.t_f.(1) <- lateness
    end;
    t.t_f.(0) <- t.t_f.(0) +. t.period;
    let due = t.t_f.(0) in
    Heap.push events
      ~time:(if due >= now.(0) then due else now.(0))
      e.em_event
  in
  (* An emitter that declined is blocked exactly when some output channel
     lacks space for its declared worst-case burst; otherwise it is
     exhausted and never retried. *)
  let emitter_blocked e =
    let ocs = e.em.out_chans in
    let blocked = ref false in
    for i = 0 to Array.length ocs - 1 do
      let _, cs = ocs.(i) in
      for j = 0 to Array.length cs - 1 do
        if Ring.space cs.(j).ring < e.em_burst then blocked := true
      done
    done;
    !blocked
  in
  (* A pop freed space on a blocked emitter's channel: retry right now
     (precise wake, replacing the reference engine's fixed retry polls). *)
  let rec retry_emitters = function
    | [] -> ()
    | e :: rest ->
      if e.em_woken then begin
        e.em_woken <- false;
        if e.em_blocked then
          match step_node e.em with
          | Some _ ->
            e.em_blocked <- false;
            progress := true;
            (match e.em_kind with
            | Em_timed t -> fire_timed t e
            | Em_const -> ())
          | None -> if not (emitter_blocked e) then e.em_blocked <- false
      end;
      retry_emitters rest
  in
  (* ---- kernel state intervals ----------------------------------------
     Each on-chip kernel carries a state (busy / blocked-on-input /
     blocked-on-output / idle) that changes only when the dispatcher
     learns something: an attempt that declines is classified by what the
     attempt observed (a full output channel, or wanting input), a firing
     enters busy, and a busy interval ends exactly at its known service
     end. Between examinations nothing adjacent changed (try_step is
     failure-pure), so holding the last classification is exact, not
     sampled. [state_observer] is invoked once per entered state with the
     entry time; by construction the emitted intervals partition
     [0, duration] for every kernel (asserted in test/test_obs.ml). The
     whole mechanism is skipped when no [state_observer] is installed. *)
  let emit_state (rt : node_rt) proc st chan time_s =
    match state_observer with
    | None -> ()
    | Some f -> f ~time_s ~node:rt.node ~proc ~state:st ~chan
  in
  let set_state (rt : node_rt) proc st chan =
    (* A busy interval whose end passed unexamined closes into idle at the
       exact service end, not at the moment we finally looked. *)
    if rt.ks_state = Ks_busy && now.(0) > rt.rt_f.(1) +. 1e-15 then begin
      emit_state rt proc Ks_idle None rt.rt_f.(1);
      rt.ks_state <- Ks_idle
    end;
    if st <> rt.ks_state then begin
      emit_state rt proc st chan now.(0);
      rt.ks_state <- st
    end
  in
  let first_empty_input (rt : node_rt) =
    let n = Array.length rt.in_chans in
    let rec go i =
      if i >= n then None
      else
        let _, c = rt.in_chans.(i) in
        if Ring.is_empty c.ring then Some c.id else go (i + 1)
    in
    go 0
  in
  (* Try to start one firing on an idle processor. The service prices
     below reproduce [Machine.read_time_s], [write_time_s] and
     [cycle_time_s] operation for operation: the arithmetic must stay
     bit-identical to the reference engine, which still calls through
     [Machine] (inlining it here avoids the boxed float each of those
     cross-module calls returns without flambda). *)
  (* Every kernel of a processor provably declining right now? Then its
     post-service examination would fire nothing, and the [Proc_free]
     wake can be elided (restored by the first adjacent channel change —
     see [wake_proc]). Two proof sources, per kernel:

     - the scripted guard: a synced node's next table entry is blocked
       on an input or an output ([guard_k] verdict [-1]) — cheaper than
       the behaviour oracle (direct ring reads, no string-keyed io) and
       strictly stronger, since it also proves output-blocked declines;
     - the behaviour's own [starved] oracle, as before, for unscripted
       kernels and unproven guard verdicts.

     The test is specialized per processor at startup: the common
     one-kernel mapping collapses to a single call, and a processor with
     any proof-less kernel is never provably declining. *)
  let p_all_starved =
    let kernel_declines (rt : node_rt) =
      let starved =
        match rt.behaviour.Behaviour.starved with
        | Some st ->
          Some
            (fun () ->
              if st rt.io then begin
                rt.sc_blocked <- 3;
                true
              end
              else false)
        | None -> None
      in
      match rt.sc with
      | None -> starved
      | Some _ ->
        let fallback =
          match starved with Some f -> f | None -> fun () -> false
        in
        Some
          (fun () ->
            if not rt.st_synced then fallback ()
            else if rt.sc_run_left > 0 then false (* armed: will fire *)
            else
              let e = rt.sc_next in
              if e.sop < 0 then fallback ()
              else
                let k = guard_k rt e rt.sc_left in
                if k > 0 then begin
                  (* A verdict proven here still holds at the wake's
                     dispatch: matched input fronts cannot change (only
                     this node pops them, and it only runs here) and
                     proven output space cannot shrink (only this node
                     pushes it) — so arm the run now and the dispatch
                     skips the guard entirely. *)
                  rt.sc_run_left <- k;
                  false
                end
                else if k < 0 then begin
                  (* Proven block; remember which kind so adjacent
                     channel changes can re-vet the proof in O(1). *)
                  rt.sc_blocked <- (if k = -1 then 1 else 2);
                  true
                end
                else fallback ())
    in
    Array.map
      (fun proc ->
        let rec collect i acc =
          if i < 0 then Some acc
          else
            let rt = proc.kernels.(i) in
            match kernel_declines rt with
            | Some pred -> collect (i - 1) (pred :: acc)
            | None -> None
        in
        match collect (Array.length proc.kernels - 1) [] with
        | None -> fun () -> false
        | Some [ f ] -> f
        | Some fs ->
          let fs = Array.of_list fs in
          let n = Array.length fs in
          fun () ->
            let rec go i = i >= n || (fs.(i) () && go (i + 1)) in
            go 0)
      procs
  in
  p_oracle := (fun p -> p_all_starved.(p) ());
  let rec attempt_kernel proc p k i =
    if i >= k then false
    else begin
      let idx = (proc.cursor + i) mod k in
      let rt = proc.kernels.(idx) in
      match step_kernel rt with
      | None ->
        if state_observing then
          if rt.cw_full_out >= 0 then
            set_state rt p Ks_blocked_output (Some rt.cw_full_out)
          else set_state rt p Ks_blocked_input (first_empty_input rt);
        attempt_kernel proc p k (i + 1)
      | Some fired ->
        let read_s =
          float_of_int rt.cw_read *. pe.Machine.read_cycles_per_word
          /. pe.Machine.freq_hz
        in
        let write_s =
          float_of_int rt.cw_write *. pe.Machine.write_cycles_per_word
          /. pe.Machine.freq_hz
          +. (float_of_int rt.cw_hop *. hop_cycles_per_word
             /. pe.Machine.freq_hz)
        in
        let run_s =
          float_of_int fired.Behaviour.cycles *. (1. /. pe.Machine.freq_hz)
        in
        (* Context-switch charge when a multiplexed PE changes kernel. *)
        let run_s =
          if proc.last_fired >= 0 && proc.last_fired <> idx then
            run_s +. (pe.Machine.switch_cycles *. (1. /. pe.Machine.freq_hz))
          else run_s
        in
        proc.last_fired <- idx;
        let service = read_s +. run_s +. write_s in
        if state_observing then begin
          set_state rt p Ks_busy None;
          rt.rt_f.(1) <- now.(0) +. service
        end;
        (match observer with
        | None -> ()
        | Some f ->
          f ~time_s:now.(0) ~proc:p ~node:rt.node
            ~method_name:fired.Behaviour.method_name ~service_s:service);
        p_busy_until.(p) <- now.(0) +. service;
        proc.cursor <- (idx + 1) mod k;
        p_run.(p) <- p_run.(p) +. run_s;
        p_read.(p) <- p_read.(p) +. read_s;
        p_write.(p) <- p_write.(p) +. write_s;
        proc.p_fires <- proc.p_fires + 1;
        rt.rt_f.(0) <- rt.rt_f.(0) +. service;
        if static_mode then begin
          (* The wake's tie-breaking rank is reserved even when the event
             is elided, so a restored wake collides with other same-time
             events in exactly the eager engine's order. *)
          let seq = Heap.reserve_seq events in
          if p_all_starved.(p) () then begin
            proc.pf_scheduled <- false;
            proc.pf_seq <- seq;
            incr static_elided
          end
          else begin
            proc.pf_scheduled <- true;
            Heap.push_seq events ~time:p_busy_until.(p) ~seq proc_free.(p)
          end
        end
        else Heap.push events ~time:p_busy_until.(p) proc_free.(p);
        true
    end
  in
  let try_dispatch p =
    if p_busy_until.(p) > now.(0) +. 1e-15 then false
    else begin
      let proc = procs.(p) in
      attempt_kernel proc p (Array.length proc.kernels) 0
    end
  in
  (* The dispatch loop: only marked parties are attempted. Processors are
     swept in ascending index so marks set mid-sweep by a firing are seen
     by later indices within the round, exactly as the reference engine's
     full rescan sees them; anything marked at an earlier index waits for
     the next round, as it would wait for the rescan's next round. *)
  let dispatch () =
    progress := true;
    while !progress do
      progress := false;
      drain_ready_sinks ();
      retry_emitters !emitters;
      for p = 0 to nprocs - 1 do
        let proc = procs.(p) in
        if proc.ready then begin
          proc.ready <- false;
          if try_dispatch p then progress := true
        end
      done
    done
  in
  (* Advancing simulated time is itself a readiness change: processors
     whose busy interval ends inside (old now, new time] become idle
     without any channel traffic, so mark them before handling the event
     (their own [Proc_free] may still sit behind this event in the queue
     when service times collide exactly). *)
  let advance time =
    if time > now.(0) then begin
      for p = 0 to nprocs - 1 do
        if
          p_busy_until.(p) > now.(0) +. 1e-15
          && p_busy_until.(p) <= time +. 1e-15
        then procs.(p).ready <- true
      done;
      now.(0) <- time
    end
  in
  (* Main loop. The front time is read before the pop so a discarded
     over-limit event never disturbs the queue, and neither step
     allocates (see {!Heap}). *)
  let processed = ref 0 in
  let timed_out = ref false in
  let continue = ref true in
  while !continue do
    if Heap.is_empty events then continue := false
    else begin
      let time = Heap.front_time_exn events in
      incr processed;
      if time > max_time_s || !processed > max_events then begin
        timed_out := true;
        continue := false
      end
      else begin
        let ev = Heap.pop_value_exn events in
        advance time;
        (match ev with
        | Proc_free p -> procs.(p).ready <- true
        | Const_emit e -> (
          match step_node e.em with
          | Some _ -> ()
          | None ->
            (* A const source that already emitted returns None forever;
               only a space-starved one waits for a wake. *)
            if emitter_blocked e then e.em_blocked <- true)
        | Source_slot e -> (
          match step_node e.em with
          | Some _ -> (
            match e.em_kind with
            | Em_timed t -> fire_timed t e
            | Em_const -> assert false)
          | None ->
            (* Distinguish an exhausted source (no more frames: every
               output has burst room yet nothing was emitted) from a
               blocked one. A blocked source counts one stall for the
               missed slot and then waits for space — no retry polling;
               the wake fires the pixel at the first instant it fits. *)
            if emitter_blocked e then begin
              (match e.em_kind with
              | Em_timed t -> t.stalls <- t.stalls + 1
              | Em_const -> ());
              e.em_blocked <- true
            end));
        dispatch ()
      end
    end
  done;
  (* Quasi-static quiescence: the last events of an eager run are the
     trailing [Proc_free]s, whose times set [duration_s]. When those were
     elided, restore the clock to the latest busy end so the reported
     duration is bit-identical to the eager engine's. *)
  if static_mode && not !timed_out then
    for p = 0 to nprocs - 1 do
      if p_busy_until.(p) > now.(0) then now.(0) <- p_busy_until.(p)
    done;
  (* Close out busy intervals whose service end passed without another
     examination, so every kernel's intervals reach a settled state. *)
  if state_observing then
    Hashtbl.iter
      (fun _ rt ->
        match rt.proc with
        | Some p ->
          if rt.ks_state = Ks_busy && now.(0) > rt.rt_f.(1) +. 1e-15 then begin
            emit_state rt p Ks_idle None rt.rt_f.(1);
            rt.ks_state <- Ks_idle
          end
        | None -> ())
      node_rts;
  let leftover_items =
    List.fold_left (fun acc c -> acc + Ring.length c.ring) 0 all_chans
  in
  let leftover_channels =
    List.filter_map
      (fun c ->
        if Ring.is_empty c.ring then None
        else Some (c.id, Ring.length c.ring, Ring.peek c.ring))
      all_chans
  in
  let proc_stats =
    Array.mapi
      (fun i p ->
        {
          run_s = p_run.(i);
          read_s = p_read.(i);
          write_s = p_write.(i);
          fires = p.p_fires;
        })
      procs
  in
  {
    duration_s = now.(0);
    procs = proc_stats;
    input_stalls = List.fold_left (fun a t -> a + t.stalls) 0 timed_srcs;
    late_emissions = List.fold_left (fun a t -> a + t.late) 0 timed_srcs;
    max_input_lateness_s =
      List.fold_left (fun a t -> Float.max a t.t_f.(1)) 0. timed_srcs;
    sink_eofs =
      Hashtbl.fold
        (fun id times acc -> (id, List.rev !times) :: acc)
        sink_eof_times [];
    sink_first_data =
      Hashtbl.fold (fun id t acc -> (id, t) :: acc) sink_first_data [];
    source_frame_births =
      Hashtbl.fold
        (fun id births acc -> (id, List.rev !births) :: acc)
        frame_births [];
    channel_depths = List.map (fun c -> (c.id, c.max_depth)) all_chans;
    leftover_channels;
    node_stats =
      Hashtbl.fold
        (fun id rt acc ->
          (id, { node_fires = rt.rt_fires; node_busy_s = rt.rt_f.(0) }) :: acc)
        node_rts [];
    leftover_items;
    (* Elided wakes count as processed: each is one eager-engine decline
       skipped wholesale, so the total matches event-driven mode exactly
       and throughput normalizes without a second run. *)
    events_processed = !processed + !static_elided;
    timed_out = !timed_out;
    static_regions =
      (if static_mode then Static_schedule.static_regions sched else 0);
    static_fired = !static_fired;
    static_indexed_fired = !static_indexed;
    static_fallback_events = !static_fallback;
    static_elided_events = !static_elided;
    pool =
      (match (Option.map Pool.stats chunk_pool, pool_before) with
      | Some s, Some b ->
        (* Lent pool: report only this run's contribution. *)
        Some
          {
            Pool.hits = s.Pool.hits - b.Pool.hits;
            misses = s.Pool.misses - b.Pool.misses;
            releases = s.Pool.releases - b.Pool.releases;
            live = s.Pool.live - b.Pool.live;
          }
      | s, None -> s
      | None, Some _ -> assert false);
  }

let first_output_latency_s r =
  match r.sink_first_data with
  | [] -> None
  | l -> Some (List.fold_left (fun acc (_, t) -> Float.min acc t) infinity l)

let utilization r ~proc =
  if r.duration_s <= 0. then 0.
  else
    let p = r.procs.(proc) in
    (p.run_s +. p.read_s +. p.write_s) /. r.duration_s

let average_utilization r =
  if Array.length r.procs = 0 then 0.
  else
    Array.fold_left ( +. ) 0.
      (Array.mapi (fun i _ -> utilization r ~proc:i) r.procs)
    /. float_of_int (Array.length r.procs)

let utilization_breakdown r =
  let total = float_of_int (Array.length r.procs) *. r.duration_s in
  if total <= 0. then (0., 0., 0.)
  else
    let run = Array.fold_left (fun a p -> a +. p.run_s) 0. r.procs in
    let read = Array.fold_left (fun a p -> a +. p.read_s) 0. r.procs in
    let write = Array.fold_left (fun a p -> a +. p.write_s) 0. r.procs in
    (run /. total, read /. total, write /. total)

type verdict = {
  met : bool;
  frames_delivered : int;
  mean_frame_interval_s : float;
  worst_frame_interval_s : float;
}

let real_time_verdict r ~expected_frames ~period_s ?(tolerance = 0.05)
    ?(allowed_leftover = 0) () =
  let all_intervals =
    List.concat_map
      (fun (_, times) ->
        let rec pairs = function
          | a :: (b :: _ as rest) -> (b -. a) :: pairs rest
          | _ -> []
        in
        pairs times)
      r.sink_eofs
  in
  let frames_delivered =
    match r.sink_eofs with
    | [] -> 0
    | eofs -> List.fold_left (fun acc (_, ts) -> min acc (List.length ts))
                max_int eofs
  in
  let frames_delivered = if frames_delivered = max_int then 0 else frames_delivered in
  let mean_i = Stats.mean all_intervals in
  let worst_i = match all_intervals with [] -> 0. | l -> Stats.maximum l in
  let met =
    r.input_stalls = 0 && r.late_emissions = 0
    && r.leftover_items <= allowed_leftover
    && (not r.timed_out)
    && frames_delivered >= expected_frames
    && (all_intervals = [] || worst_i <= period_s *. (1. +. tolerance))
  in
  {
    met;
    frames_delivered;
    mean_frame_interval_s = mean_i;
    worst_frame_interval_s = worst_i;
  }

let pp_stuck g ppf r =
  if r.leftover_channels = [] then
    Format.fprintf ppf "nothing left queued@,"
  else
    List.iter
      (fun (chan_id, count, front) ->
        let c = Graph.channel g chan_id in
        Format.fprintf ppf "  %s.%s -> %s.%s: %d items, front %a@,"
          (Graph.node g c.Graph.src.Graph.node).Graph.name
          c.Graph.src.Graph.port
          (Graph.node g c.Graph.dst.Graph.node).Graph.name
          c.Graph.dst.Graph.port count Item.pp front)
      (List.sort compare r.leftover_channels)

let pp_result ppf r =
  let run, read, write = utilization_breakdown r in
  Format.fprintf ppf
    "sim: %.6fs, %d PEs, avg util %.1f%% (run %.1f%% read %.1f%% write \
     %.1f%%), stalls %d, late %d, leftover %d%s"
    r.duration_s (Array.length r.procs)
    (100. *. average_utilization r)
    (100. *. run) (100. *. read) (100. *. write) r.input_stalls
    r.late_emissions r.leftover_items
    (if r.timed_out then " (TIMED OUT)" else "")
