(** The timing-accurate functional simulator.

    This is the evaluation substrate of the paper: a discrete-event
    simulation that accounts for kernel execution time, channel read/write
    (data access) time, buffer transfers, and processor scheduling — but not
    placement or wire delay, which the paper argues do not affect a
    throughput-constrained pipeline (Section IV-D). It is simultaneously
    *functional*: kernels move and compute real pixel data, so a run's
    outputs can be checked against reference image operations.

    The engine is event-driven (see docs/PERFORMANCE.md): channels are
    preallocated ring buffers that know their producer and consumer, and
    a push, pop, or processor release re-examines only the parties it may
    have unblocked, instead of rescanning every processor to a fixpoint
    after each event. Because kernel [try_step]s are failure-pure, the
    skipped scans are ones that would deterministically decline; the
    original full-rescan engine is preserved in {!Sim_reference} and a
    suite-wide differential test keeps the two in exact agreement on
    every application whose emitters never block.

    Model:
    - every on-chip kernel instance is assigned to a processor by a
      {!Mapping.t}; kernels sharing a processor are time-multiplexed
      (round-robin among ready kernels, with an optional context-switch
      charge);
    - optionally, a {!placement} adds network-on-chip delay: writes across
      distinct processors cost extra cycles proportional to the Manhattan
      hop distance between their tiles. The paper omits this (Section
      IV-D, arguing throughput is unaffected); supplying it here lets the
      claim be tested rather than assumed;
    - one firing occupies the processor for
      [read_words·t_read + cycles·t_cycle + written_words·t_write];
    - channels are bounded FIFOs; a kernel only fires when its outputs have
      room, so backpressure propagates upstream;
    - sources emit on the rigid schedule of their input rate; an emission
      that finds its channel full is recorded as a late emission — the
      real-time constraint is violated;
    - sinks and sources are off-chip and consume no processor time. *)

type proc_stats = {
  run_s : float;  (** Time executing kernel methods. *)
  read_s : float;  (** Time reading inputs. *)
  write_s : float;  (** Time writing outputs. *)
  fires : int;
}

type node_stats = { node_fires : int; node_busy_s : float }

type result = {
  duration_s : float;  (** Time of the last event. *)
  procs : proc_stats array;
  input_stalls : int;
      (** Scheduled source emissions that found insufficient space for
          the source's declared {!Bp_kernel.Spec.emission_burst} — one
          per missed slot (the stalled pixel is emitted the instant space
          frees, without retry polling). *)
  late_emissions : int;
      (** Pixels that could not be emitted at their scheduled time. *)
  max_input_lateness_s : float;
  sink_eofs : (Bp_graph.Graph.node_id * float list) list;
      (** Per sink, the times its end-of-frame tokens arrived. *)
  sink_first_data : (Bp_graph.Graph.node_id * float) list;
      (** Per sink, when its first data chunk arrived — the first-output
          latency the paper notes is the only thing placement affects
          (Section IV-D). *)
  source_frame_births : (Bp_graph.Graph.node_id * float list) list;
      (** Per timed source, the emission time of each frame's first data
          item, in frame order — the birth tag that, joined with
          [sink_eofs], gives per-frame end-to-end latency (the fold lives
          in [Bp_obs.Health]). *)
  node_stats : (Bp_graph.Graph.node_id * node_stats) list;
  channel_depths : (int * int) list;
      (** Per channel (by id), the highest queue occupancy observed —
          validates the sizing rules: a well-provisioned run never presses
          a channel to its capacity for long. *)
  leftover_channels : (int * int * Bp_kernel.Item.t) list;
      (** Channels still holding items at quiescence: id, count, and the
          stuck front item — the raw material of a deadlock diagnosis. *)
  leftover_items : int;
      (** Items still queued when the simulation went quiet — nonzero means
          the graph deadlocked or was cut short by [max_time_s]. A
          deadlocked graph quiesces as soon as its last event drains
          (with [timed_out = false]) rather than polling until the time
          limit. *)
  events_processed : int;
      (** Heap events the eager engine dispatches for this run — the
          denominator of the events-per-second throughput the benchmark
          tracks. Quasi-static execution dispatches fewer (it skips
          provably-declining wakes wholesale) but counts each elided
          wake here, so the field is bit-identical across modes; the
          skipped share is [static_elided_events]. *)
  timed_out : bool;
  pool : Bp_image.Pool.stats option;
      (** Chunk-pool counters for the run's data plane ([None] when the
          run was started with [~pool:false] or came from the
          allocation-naive reference engine). The hit rate is the fraction
          of chunk acquisitions served by recycling. *)
  static_regions : int;
      (** Static regions of the schedule the run executed under (0 when
          no schedule was supplied or quasi-static mode was inactive). *)
  static_fired : int;
      (** Firings that matched the next entry of their kernel's firing
          table — the numerator of static coverage (the denominator is
          total fires, summed over [node_stats]). *)
  static_indexed_fired : int;
      (** Of [static_fired], the firings dispatched through the
          slot-indexed ABI ({!Bp_kernel.Behaviour.indexed}) — zero name
          hashing, zero per-firing closure allocation. The remainder went
          through the generic string-keyed path (kernels without indexed
          support, entries the guard could not prove, or re-checks that
          declined). *)
  static_fallback_events : int;
      (** Runtime table desyncs: firings whose method diverged from the
          table, dropping their kernel to event-driven accounting for the
          rest of the run. Always 0 for deterministic-dataflow graphs
          (asserted across the suite in [test/test_schedule.ml]). *)
  static_elided_events : int;
      (** End-of-service wakes elided for good by quasi-static execution:
          each is exactly one eager-engine event that would have been
          dispatched and declined. Included in [events_processed]. *)
}

type placement_model = {
  tile_of_proc : int -> int * int;
      (** Mesh tile of each processor (e.g. from [Bp_placement]). *)
  hop_cycles_per_word : float;  (** Extra write cycles per word per hop. *)
}

(** What just happened on a channel — the events behind the
    [channel_observer] hook (see docs/OBSERVABILITY.md for the normative
    contract):
    - [Ch_push]: one item was appended by the firing kernel (one event per
      fan-out copy);
    - [Ch_pop]: one item was removed by the firing kernel;
    - [Ch_block]: a kernel's output-space guard found this channel full —
      the firing could not proceed through it. Emitted per guard
      evaluation; the event-driven scheduler only re-evaluates guards
      whose channels changed, so a persistently blocked kernel reports
      one event per genuine re-attempt, not one per polling interval. *)
type channel_event = Ch_push | Ch_pop | Ch_block

(** What a kernel is doing, as of the dispatcher's last examination — the
    states behind the [state_observer] hook (see docs/OBSERVABILITY.md
    §"Real-time health" for the normative contract):
    - [Ks_busy]: a firing is in flight; the interval is exactly
      [(start, start + service)].
    - [Ks_blocked_output]: the last attempt declined after its output-space
      guard found a channel full (the culprit channel id rides along).
    - [Ks_blocked_input]: the last attempt declined without touching a full
      output — the kernel wants more input (the first empty input channel
      rides along when one exists; a kernel mid-window may be starved with
      no input empty).
    - [Ks_idle]: not running and not observed blocked: the settled state
      after a firing until the next examination, which covers both waiting
      for a shared PE and end-of-run quiescence.

    Transitions fire only at scheduling events, but they are exact, not
    sampled: between two examinations no adjacent channel changed (the
    event-driven core's invariant), so the held state is what any finer
    probe would have seen. *)
type kernel_state = Ks_busy | Ks_blocked_input | Ks_blocked_output | Ks_idle

val kernel_state_name : kernel_state -> string
(** ["busy" | "blocked-on-input" | "blocked-on-output" | "idle"] — the
    spelling the health snapshot and trace export use. *)

val run :
  ?max_time_s:float ->
  ?max_events:int ->
  ?pool:bool ->
  ?chunk_pool:Bp_image.Pool.t ->
  ?placement:placement_model ->
  ?observer:
    (time_s:float ->
    proc:int ->
    node:Bp_graph.Graph.node ->
    method_name:string ->
    service_s:float ->
    unit) ->
  ?channel_observer:
    (time_s:float ->
    chan_id:int ->
    node:Bp_graph.Graph.node ->
    proc:int option ->
    event:channel_event ->
    depth:int ->
    unit) ->
  ?state_observer:
    (time_s:float ->
    node:Bp_graph.Graph.node ->
    proc:int ->
    state:kernel_state ->
    chan:int option ->
    unit) ->
  ?static_schedule:Static_schedule.t ->
  graph:Bp_graph.Graph.t ->
  mapping:Mapping.t ->
  machine:Bp_machine.Machine.t ->
  unit ->
  result
(** Simulate until quiescent. [max_time_s] (default 300 simulated seconds)
    and [max_events] (default 50 million) bound runaway graphs; hitting
    either sets [timed_out]. [pool] (default [true]) runs the data plane
    through a per-run chunk pool ({!Bp_image.Pool}): behaviours acquire
    output chunks and release consumed inputs, so steady state recycles a
    fixed working set instead of allocating per firing. [~pool:false] is
    the allocation-naive escape hatch (`bpc simulate --no-pool`); results
    are bit-identical either way, only GC behavior differs. [chunk_pool]
    lends an existing pool instead of creating one (it overrides [pool]):
    the per-domain reuse path of docs/PARALLELISM.md, where a sweep
    worker owns one pool and threads it through every run it executes,
    keeping free lists warm across runs. The lender keeps ownership;
    [result.pool] then reports this run's {e deltas} (its hit/miss/
    release contribution), and simulated outcomes remain bit-identical
    in all three modes — acquired buffers are always all-zero. A pool
    must never be lent to two concurrently running simulations
    ({!Bp_image.Pool} is not domain-safe; one owner domain at a time). [observer] is invoked for every on-chip kernel
    firing with its start time, processor, and service time — the hook the
    {!Trace} module records through. [channel_observer] is invoked on every
    channel push/pop/full-guard event with the acting node, its processor
    ([None] for off-chip sources and sinks), and the queue depth *after*
    the event — the hook [Bp_obs.Instrument] feeds metrics and occupancy
    counter tracks from. [state_observer] is invoked once per entered
    {!kernel_state} of each on-chip kernel, with the entry time and, for
    blocked states, the culprit channel; every kernel starts [Ks_idle] at
    time 0 (no call is made for the initial state) and the emitted
    transitions partition [[0, duration_s]] exactly — the hook
    [Bp_obs.Health] folds breakdowns and the bottleneck report from. All
    hooks default to no-ops and must not mutate simulation state; a run's
    [result] is identical with and without them (asserted in
    [test/test_obs.ml]).

    [static_schedule] supplies a quasi-static schedule (the compiler's
    pass-10 artifact) and, when no observer is installed, switches the
    engine to quasi-static execution: kernels whose [starved] oracle
    proves the next attempt would decline are skipped without entering
    their [try_step], and a processor whose kernels are all provably
    starved at fire time elides its end-of-service wake event (restored,
    at the exact time and heap rank of the eager push, by the first
    adjacent channel change). Both moves remove only examinations that
    would deterministically decline, so every simulated outcome — floats
    included, [events_processed] included (elided wakes count as
    processed) — is bit-identical to the event-driven engine; only the
    [static_*] telemetry fields differ. With any observer installed the schedule is ignored
    and the engine stays fully event-driven, because observers report
    examinations themselves. See docs/PERFORMANCE.md §"Quasi-static
    execution". *)

val utilization : result -> proc:int -> float
(** [(run+read+write) / duration] for one processor. *)

val average_utilization : result -> float
(** Mean utilization across processors (Figure 13's metric). *)

val first_output_latency_s : result -> float option
(** Earliest first-data arrival across sinks, if any data arrived. *)

val utilization_breakdown : result -> float * float * float
(** Aggregate (run, read, write) fractions of total processor-seconds,
    each relative to [procs × duration]. *)

type verdict = {
  met : bool;
  frames_delivered : int;
  mean_frame_interval_s : float;
  worst_frame_interval_s : float;
}

val real_time_verdict :
  result -> expected_frames:int -> period_s:float -> ?tolerance:float ->
  ?allowed_leftover:int -> unit -> verdict
(** Did the run meet its real-time constraint? True when no emission was
    late, every sink delivered [expected_frames] end-of-frames, at most
    [allowed_leftover] items were left queued (default 0 — feedback loops
    legitimately keep their last value circulating), and steady-state frame
    intervals stayed within [period · (1+tolerance)] (default tolerance
    5%). *)

val pp_result : Format.formatter -> result -> unit

val pp_stuck : Bp_graph.Graph.t -> Format.formatter -> result -> unit
(** Render the leftover channels with kernel and port names — call this
    when [leftover_items > 0] to see where a graph wedged and on what
    (a lone token on one input of a matched-token kernel is the classic
    misalignment signature). *)
