(* The original polling engine, kept verbatim as the reference
   implementation for the differential test against the event-driven
   engine in Sim. Queue-backed channels, full rescans to fixpoint after
   every event, fixed retry polls for blocked emitters. Do not optimise
   this module: its value is being the known-good semantics. *)

open Bp_util
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Item = Bp_kernel.Item
module Behaviour = Bp_kernel.Behaviour
module Machine = Bp_machine.Machine
module Token = Bp_token.Token
module Rate = Bp_geometry.Rate

type chan_rt = {
  id : int;
  queue : Item.t Queue.t;
  capacity : int;
  mutable hops : int;
  mutable max_depth : int;
}

type node_rt = {
  node : Graph.node;
  behaviour : Behaviour.t;
  in_chans : (string * chan_rt) list;
  out_chans : (string * chan_rt list) list;
  proc : int option;
  mutable rt_fires : int;
  mutable rt_busy : float;
}

type proc_rt = {
  mutable busy_until : float;
  mutable cursor : int;
  mutable last_fired : int;
  kernels : node_rt array;
  mutable p_run : float;
  mutable p_read : float;
  mutable p_write : float;
  mutable p_fires : int;
}

type source_rt = {
  src : node_rt;
  period : float;
  mutable next_due : float;
  mutable stalls : int;
  mutable late : int;
  mutable max_late : float;
}

type event = Source_slot of source_rt | Const_emit of node_rt | Proc_free of int

let make_io (rt : node_rt) ~read_words ~write_words ~hop_words ~on_pop
    ~on_push ~on_chan =
  let find_in port =
    match List.assoc_opt port rt.in_chans with
    | Some c -> c
    | None -> Err.graphf "%s: no input channel %S" rt.node.Graph.name port
  in
  let find_outs port =
    match List.assoc_opt port rt.out_chans with
    | Some cs -> cs
    | None -> Err.graphf "%s: no output channel %S" rt.node.Graph.name port
  in
  {
    Behaviour.peek =
      (fun port ->
        let c = find_in port in
        if Queue.is_empty c.queue then None else Some (Queue.peek c.queue));
    pop =
      (fun port ->
        let c = find_in port in
        if Queue.is_empty c.queue then
          Err.graphf "%s: pop from empty input %S" rt.node.Graph.name port;
        let item = Queue.pop c.queue in
        read_words := !read_words + Item.words item;
        on_pop item;
        on_chan c Sim.Ch_pop;
        item);
    push =
      (fun port item ->
        on_push item;
        let cs = find_outs port in
        List.iter
          (fun c ->
            if Queue.length c.queue >= c.capacity then
              Err.graphf "%s: push to full channel on %S" rt.node.Graph.name
                port;
            Queue.push item c.queue;
            if Queue.length c.queue > c.max_depth then
              c.max_depth <- Queue.length c.queue;
            write_words := !write_words + Item.words item;
            hop_words := !hop_words + (c.hops * Item.words item);
            on_chan c Sim.Ch_push)
          cs);
    (* Allocation-naive data plane, on purpose: acquires are plain
       allocations and releases are dropped, preserving the seed engine's
       behavior exactly. The pooled engine is held bit-identical to this
       by the suite-wide differential. *)
    acquire = Bp_image.Image.create;
    release = (fun _ -> ());
    has_input = (fun port -> not (Queue.is_empty (find_in port).queue));
    space =
      (fun port ->
        match find_outs port with
        | [] -> max_int
        | cs ->
          List.fold_left
            (fun acc c ->
              let free = c.capacity - Queue.length c.queue in
              if free <= 0 then on_chan c Sim.Ch_block;
              min acc free)
            max_int cs);
  }

let run ?(max_time_s = 300.) ?(max_events = 50_000_000) ?placement
    ?(observer = fun ~time_s:_ ~proc:_ ~node:_ ~method_name:_ ~service_s:_ -> ())
    ?(channel_observer =
      fun ~time_s:_ ~chan_id:_ ~node:_ ~proc:_ ~event:_ ~depth:_ -> ())
    ~graph:g ~mapping ~machine () =
  Graph.validate g;
  let pe = machine.Machine.pe in
  let chans = Hashtbl.create 64 in
  List.iter
    (fun (c : Graph.channel) ->
      Hashtbl.replace chans c.Graph.chan_id
        {
          id = c.Graph.chan_id;
          queue = Queue.create ();
          capacity = c.Graph.capacity;
          hops = 0;
          max_depth = 0;
        })
    (Graph.channels g);
  let chan_rt id = Hashtbl.find chans id in
  let sink_eof_times : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let sink_first_data : (Graph.node_id, float) Hashtbl.t = Hashtbl.create 8 in
  (* Frame birth tags, as in Sim: per timed source, when each frame's
     first data item was emitted. *)
  let frame_births : (Graph.node_id, float list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let frame_pending : (Graph.node_id, bool ref) Hashtbl.t = Hashtbl.create 4 in
  let now = ref 0. in
  let node_rts = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      let in_chans =
        List.map
          (fun (c : Graph.channel) ->
            (c.Graph.dst.Graph.port, chan_rt c.Graph.chan_id))
          (Graph.in_channels g n.Graph.id)
      in
      let out_chans =
        List.map
          (fun (p : Bp_kernel.Port.t) ->
            ( p.Bp_kernel.Port.name,
              List.map
                (fun (c : Graph.channel) -> chan_rt c.Graph.chan_id)
                (Graph.out_channels g n.Graph.id ~port:p.Bp_kernel.Port.name ()) ))
          n.Graph.spec.Spec.outputs
      in
      let rt =
        {
          node = n;
          behaviour = n.Graph.spec.Spec.make_behaviour ();
          in_chans;
          out_chans;
          proc = Mapping.processor_of mapping n.Graph.id;
          rt_fires = 0;
          rt_busy = 0.;
        }
      in
      if n.Graph.spec.Spec.role = Spec.Sink then
        Hashtbl.replace sink_eof_times n.Graph.id (ref []);
      if n.Graph.spec.Spec.role = Spec.Source then begin
        Hashtbl.replace frame_births n.Graph.id (ref []);
        Hashtbl.replace frame_pending n.Graph.id (ref true)
      end;
      Hashtbl.replace node_rts n.Graph.id rt)
    (Graph.nodes g);
  let node_rt id = Hashtbl.find node_rts id in
  (match placement with
  | None -> ()
  | Some (p : Sim.placement_model) ->
    let tile id =
      match Mapping.processor_of mapping id with
      | Some proc -> p.Sim.tile_of_proc proc
      | None -> (0, 0)
    in
    List.iter
      (fun (c : Graph.channel) ->
        let x0, y0 = tile c.Graph.src.Graph.node in
        let x1, y1 = tile c.Graph.dst.Graph.node in
        (chan_rt c.Graph.chan_id).hops <- abs (x0 - x1) + abs (y0 - y1))
      (Graph.channels g));
  let procs =
    Array.init (Mapping.processors mapping) (fun p ->
        {
          busy_until = 0.;
          cursor = 0;
          last_fired = -1;
          kernels =
            Array.of_list (List.map node_rt (Mapping.nodes_on mapping p));
          p_run = 0.;
          p_read = 0.;
          p_write = 0.;
          p_fires = 0;
        })
  in
  let events : event Heap.t = Heap.create ~dummy:(Proc_free (-1)) () in
  let hop_cycles_per_word =
    match placement with
    | Some p -> p.Sim.hop_cycles_per_word
    | None -> 0.
  in
  let step_node (rt : node_rt) =
    let read_words = ref 0 and write_words = ref 0 in
    let hop_words = ref 0 in
    let on_pop item =
      match (rt.node.Graph.spec.Spec.role, item) with
      | Spec.Sink, Item.Ctl tok when tok.Token.kind = Token.End_of_frame ->
        let times = Hashtbl.find sink_eof_times rt.node.Graph.id in
        times := !now :: !times
      | Spec.Sink, Item.Data _ ->
        if not (Hashtbl.mem sink_first_data rt.node.Graph.id) then
          Hashtbl.replace sink_first_data rt.node.Graph.id !now
      | _ -> ()
    in
    let on_chan (c : chan_rt) ev =
      channel_observer ~time_s:!now ~chan_id:c.id ~node:rt.node ~proc:rt.proc
        ~event:ev ~depth:(Queue.length c.queue)
    in
    let on_push item =
      if rt.node.Graph.spec.Spec.role = Spec.Source then begin
        match item with
        | Item.Data _ ->
          let pending = Hashtbl.find frame_pending rt.node.Graph.id in
          if !pending then begin
            let births = Hashtbl.find frame_births rt.node.Graph.id in
            births := !now :: !births;
            pending := false
          end
        | Item.Ctl tok ->
          if tok.Token.kind = Token.End_of_frame then
            Hashtbl.find frame_pending rt.node.Graph.id := true
      end
    in
    let io =
      make_io rt ~read_words ~write_words ~hop_words ~on_pop ~on_push ~on_chan
    in
    match rt.behaviour.Behaviour.try_step io with
    | None -> None
    | Some fired ->
      let read_s = Machine.read_time_s pe ~words:!read_words in
      let write_s =
        Machine.write_time_s pe ~words:!write_words
        +. (float_of_int !hop_words *. hop_cycles_per_word
           /. pe.Machine.freq_hz)
      in
      let run_s = float_of_int fired.Behaviour.cycles *. Machine.cycle_time_s pe in
      rt.rt_fires <- rt.rt_fires + 1;
      Some (fired, read_s, run_s, write_s)
  in
  let drain_sinks () =
    let progressed = ref true in
    while !progressed do
      progressed := false;
      List.iter
        (fun (n : Graph.node) ->
          let rt = node_rt n.Graph.id in
          match step_node rt with
          | Some _ -> progressed := true
          | None -> ())
        (Graph.sinks g)
    done
  in
  let try_dispatch p =
    let proc = procs.(p) in
    if proc.busy_until > !now +. 1e-15 then false
    else begin
      let k = Array.length proc.kernels in
      let rec attempt i =
        if i >= k then false
        else begin
          let idx = (proc.cursor + i) mod k in
          let rt = proc.kernels.(idx) in
          match step_node rt with
          | None -> attempt (i + 1)
          | Some (fired, read_s, run_s, write_s) ->
            let run_s =
              if proc.last_fired >= 0 && proc.last_fired <> idx then
                run_s +. (pe.Machine.switch_cycles *. Machine.cycle_time_s pe)
              else run_s
            in
            proc.last_fired <- idx;
            let service = read_s +. run_s +. write_s in
            observer ~time_s:!now ~proc:p ~node:rt.node
              ~method_name:fired.Behaviour.method_name ~service_s:service;
            proc.busy_until <- !now +. service;
            proc.cursor <- (idx + 1) mod k;
            proc.p_run <- proc.p_run +. run_s;
            proc.p_read <- proc.p_read +. read_s;
            proc.p_write <- proc.p_write +. write_s;
            proc.p_fires <- proc.p_fires + 1;
            rt.rt_busy <- rt.rt_busy +. service;
            Heap.push events ~time:proc.busy_until (Proc_free p);
            true
        end
      in
      attempt 0
    end
  in
  let dispatch_all () =
    let progressed = ref true in
    while !progressed do
      progressed := false;
      drain_sinks ();
      Array.iteri
        (fun p _ -> if try_dispatch p then progressed := true)
        procs
    done;
    drain_sinks ()
  in
  List.iter
    (fun (n : Graph.node) ->
      Heap.push events ~time:0. (Const_emit (node_rt n.Graph.id)))
    (Graph.const_sources g);
  let source_rts =
    List.map
      (fun (n : Graph.node) ->
        let frame, rate =
          match n.Graph.meta with
          | Graph.Source_meta { frame; rate } -> (frame, rate)
          | _ -> Err.graphf "source %s lacks Source_meta" n.Graph.name
        in
        let period = Rate.element_period_s rate ~frame in
        let s =
          {
            src = node_rt n.Graph.id;
            period;
            next_due = 0.;
            stalls = 0;
            late = 0;
            max_late = 0.;
          }
        in
        Heap.push events ~time:0. (Source_slot s);
        s)
      (Graph.sources g)
  in
  let processed = ref 0 in
  let timed_out = ref false in
  let continue = ref true in
  while !continue do
    match Heap.pop events with
    | None -> continue := false
    | Some (time, ev) ->
      incr processed;
      if time > max_time_s || !processed > max_events then begin
        timed_out := true;
        continue := false
      end
      else begin
        now := max !now time;
        (match ev with
        | Proc_free _ -> ()
        | Const_emit rt -> (
          match step_node rt with
          | Some _ -> ()
          | None ->
            let has_space =
              List.for_all
                (fun (_, cs) ->
                  List.for_all
                    (fun c -> Queue.length c.queue < c.capacity)
                    cs)
                rt.out_chans
            in
            if not has_space then
              Heap.push events ~time:(!now +. 1e-6) (Const_emit rt))
        | Source_slot s -> (
          match step_node s.src with
          | Some _ ->
            let lateness = !now -. s.next_due in
            if lateness > 1e-12 then begin
              s.late <- s.late + 1;
              if lateness > s.max_late then s.max_late <- lateness
            end;
            s.next_due <- s.next_due +. s.period;
            Heap.push events ~time:(Float.max s.next_due !now) (Source_slot s)
          | None ->
            let blocked =
              List.exists
                (fun (_, cs) ->
                  List.exists
                    (fun c -> c.capacity - Queue.length c.queue < 3)
                    cs)
                s.src.out_chans
            in
            if blocked then begin
              s.stalls <- s.stalls + 1;
              Heap.push events ~time:(!now +. (s.period /. 4.)) (Source_slot s)
            end));
        dispatch_all ()
      end
  done;
  let leftover_items =
    Hashtbl.fold (fun _ c acc -> acc + Queue.length c.queue) chans 0
  in
  let leftover_channels =
    Hashtbl.fold
      (fun id c acc ->
        if Queue.is_empty c.queue then acc
        else (id, Queue.length c.queue, Queue.peek c.queue) :: acc)
      chans []
  in
  let proc_stats =
    Array.map
      (fun p ->
        {
          Sim.run_s = p.p_run;
          read_s = p.p_read;
          write_s = p.p_write;
          fires = p.p_fires;
        })
      procs
  in
  {
    Sim.duration_s = !now;
    procs = proc_stats;
    input_stalls = List.fold_left (fun a s -> a + s.stalls) 0 source_rts;
    late_emissions = List.fold_left (fun a s -> a + s.late) 0 source_rts;
    max_input_lateness_s =
      List.fold_left (fun a s -> Float.max a s.max_late) 0. source_rts;
    sink_eofs =
      Hashtbl.fold
        (fun id times acc -> (id, List.rev !times) :: acc)
        sink_eof_times [];
    sink_first_data =
      Hashtbl.fold (fun id t acc -> (id, t) :: acc) sink_first_data [];
    source_frame_births =
      Hashtbl.fold
        (fun id births acc -> (id, List.rev !births) :: acc)
        frame_births [];
    channel_depths =
      Hashtbl.fold (fun id c acc -> (id, c.max_depth) :: acc) chans [];
    leftover_channels;
    node_stats =
      Hashtbl.fold
        (fun id rt acc ->
          (id, { Sim.node_fires = rt.rt_fires; node_busy_s = rt.rt_busy })
          :: acc)
        node_rts [];
    leftover_items;
    events_processed = !processed;
    timed_out = !timed_out;
    pool = None;
    (* The reference engine is always fully event-driven. *)
    static_regions = 0;
    static_fired = 0;
    static_indexed_fired = 0;
    static_fallback_events = 0;
    static_elided_events = 0;
  }
