(** The original polling simulation engine, kept as a reference.

    This is the seed implementation of {!Sim.run}, frozen: Queue-backed
    channels, a full rescan of every processor to fixpoint after each
    event, and fixed retry polls for blocked sources (quarter-period) and
    constant sources (1 µs). The event-driven engine in {!Sim} must agree
    with it bit-exactly on every application that never blocks an emitter
    — the suite-wide differential test in [test/test_differential.ml]
    holds the two together. Use {!Sim.run} everywhere else; this module
    exists only to be compared against. *)

val run :
  ?max_time_s:float ->
  ?max_events:int ->
  ?placement:Sim.placement_model ->
  ?observer:
    (time_s:float ->
    proc:int ->
    node:Bp_graph.Graph.node ->
    method_name:string ->
    service_s:float ->
    unit) ->
  ?channel_observer:
    (time_s:float ->
    chan_id:int ->
    node:Bp_graph.Graph.node ->
    proc:int option ->
    event:Sim.channel_event ->
    depth:int ->
    unit) ->
  graph:Bp_graph.Graph.t ->
  mapping:Mapping.t ->
  machine:Bp_machine.Machine.t ->
  unit ->
  Sim.result
(** Same contract as {!Sim.run}, original engine. [events_processed]
    counts this engine's own (polling) events, so it will generally
    differ from the event-driven engine's count even when every other
    field matches. *)
