open Bp_util
module Graph = Bp_graph.Graph
module Spec = Bp_kernel.Spec
module Item = Bp_kernel.Item
module Behaviour = Bp_kernel.Behaviour
module Token = Bp_token.Token
module Image = Bp_image.Image

(* A quasi-static schedule: per-kernel periodic firing tables recovered by
   an untimed functional execution of the mapped graph (the "recorder"),
   plus the partition of the graph into static regions.

   The tables are an artifact: the timed engine's correctness NEVER
   depends on them. What makes the quasi-static executor exact is the
   kernels' [starved] decline oracles ({!Bp_kernel.Behaviour.t}); the
   tables only (a) document the steady-state firing pattern, (b) let the
   engine report how much of a run matched the predicted pattern
   (coverage), and (c) drive the [--dump-after schedule] artifact. A
   kernel whose runtime firing order diverges from its table desyncs and
   is simply counted, not mis-simulated.

   Determinism: a kernel's per-node firing sequence is a function of its
   input item sequence alone (dataflow/Kahn determinism — declined
   attempts mutate nothing), so the untimed recorder observes the same
   per-node sequences as any timed execution, regardless of interleaving.
   This is what makes runtime coverage high rather than coincidental. *)

type item_kind = K_data | K_eol | K_eof | K_user

let kind_of_item = function
  | Item.Data _ -> K_data
  | Item.Ctl tok -> (
    match tok.Token.kind with
    | Token.End_of_line -> K_eol
    | Token.End_of_frame -> K_eof
    | Token.User _ -> K_user)

let kind_name = function
  | K_data -> "data"
  | K_eol -> "eol"
  | K_eof -> "eof"
  | K_user -> "user"

type entry = {
  e_method : string;
  e_pops : (int * item_kind) array;  (* channel id, item kind, pop order *)
  e_pushes : (int * item_kind) array;
  (* Filled by [resolve] after recording; the recorder leaves the
     defaults ([||], [||], 1). *)
  e_pop_slots : int array;  (* input port ordinal of each pop *)
  e_push_slots : int array;  (* output port ordinal of each push *)
  e_run : int;  (* length of the identical-firing run starting here *)
  e_shape : int;  (* index of this entry's distinct shape in its table *)
}

type node_table = {
  t_node : Graph.node_id;
  t_prelude : entry array;  (* firings of the first recorded frame *)
  t_period : entry array;  (* firings of the second frame: the cycle *)
  t_verified : bool;  (* a third frame repeated the period exactly *)
  t_user_tokens : bool;  (* the node popped or pushed a User token *)
}

type region = {
  r_id : int;
  r_nodes : Graph.node_id list;  (* ascending *)
  r_static : bool;
}

type t = {
  tables : (Graph.node_id * node_table) list;  (* ascending node id *)
  regions : region list;  (* ascending region id *)
  by_proc : (int * Graph.node_id list) list;  (* static nodes per PE *)
  recorded_firings : int;
  truncated : bool;  (* recorder hit its firing cap; tables are empty *)
}

let empty = {
  tables = []; regions = []; by_proc = []; recorded_firings = 0;
  truncated = false;
}

(* ---- recorder -------------------------------------------------------- *)

(* Untimed functional execution with the real behaviours over bounded
   queues. Sinks are NOT instantiated — a sink's [make_behaviour] resets
   the application's shared collector, which must keep belonging to the
   timed run — their channels are drained raw instead. *)

type rec_chan = {
  rc_id : int;
  rc_cap : int;
  rc_q : Item.t Queue.t;
}

let entry_equal a b =
  String.equal a.e_method b.e_method
  && a.e_pops = b.e_pops && a.e_pushes = b.e_pushes

let segment_at_eof entries =
  (* Split the firing sequence after each firing that consumed an
     end-of-frame token; the trailing partial segment (if any) is
     dropped. *)
  let segs = ref [] and cur = ref [] in
  List.iter
    (fun e ->
      cur := e :: !cur;
      if Array.exists (fun (_, k) -> k = K_eof) e.e_pops then begin
        segs := Array.of_list (List.rev !cur) :: !segs;
        cur := []
      end)
    entries;
  List.rev !segs

let record ?(max_firings = 5_000_000) g =
  let chans = Hashtbl.create 64 in
  List.iter
    (fun (c : Graph.channel) ->
      Hashtbl.replace chans c.Graph.chan_id
        { rc_id = c.Graph.chan_id; rc_cap = c.Graph.capacity;
          rc_q = Queue.create () })
    (Graph.channels g);
  let chan id = Hashtbl.find chans id in
  let nodes =
    List.sort (fun (a : Graph.node) b -> compare a.Graph.id b.Graph.id)
      (Graph.nodes g)
  in
  let total = ref 0 and truncated = ref false in
  let firings : (Graph.node_id, entry list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Per-node untimed stepper: behaviour + recording io. *)
  let steppers =
    List.filter_map
      (fun (n : Graph.node) ->
        if n.Graph.spec.Spec.role = Spec.Sink then None
        else begin
          let in_chans =
            List.map
              (fun (c : Graph.channel) ->
                (c.Graph.dst.Graph.port, chan c.Graph.chan_id))
              (Graph.in_channels g n.Graph.id)
          in
          let out_chans =
            List.map
              (fun (p : Bp_kernel.Port.t) ->
                ( p.Bp_kernel.Port.name,
                  List.map
                    (fun (c : Graph.channel) -> chan c.Graph.chan_id)
                    (Graph.out_channels g n.Graph.id
                       ~port:p.Bp_kernel.Port.name ()) ))
              n.Graph.spec.Spec.outputs
          in
          let find what l port =
            match List.assoc_opt port l with
            | Some c -> c
            | None ->
              Err.graphf "schedule recorder: %s: no %s channel %S"
                n.Graph.name what port
          in
          let pops = ref [] and pushes = ref [] in
          let io =
            {
              Behaviour.peek =
                (fun port ->
                  Queue.peek_opt (find "input" in_chans port).rc_q);
              pop =
                (fun port ->
                  let c = find "input" in_chans port in
                  let item = Queue.pop c.rc_q in
                  pops := (c.rc_id, kind_of_item item) :: !pops;
                  item);
              push =
                (fun port item ->
                  List.iter
                    (fun c ->
                      if Queue.length c.rc_q >= c.rc_cap then
                        Err.graphf
                          "schedule recorder: %s: push past capacity on %S"
                          n.Graph.name port;
                      Queue.push item c.rc_q;
                      pushes := (c.rc_id, kind_of_item item) :: !pushes)
                    (find "output" out_chans port));
              space =
                (fun port ->
                  match find "output" out_chans port with
                  | [] -> max_int
                  | cs ->
                    List.fold_left
                      (fun acc c -> min acc (c.rc_cap - Queue.length c.rc_q))
                      max_int cs);
              acquire = Image.create;
              release = (fun _ -> ());
              has_input =
                (fun port ->
                  not (Queue.is_empty (find "input" in_chans port).rc_q));
            }
          in
          let behaviour = n.Graph.spec.Spec.make_behaviour () in
          let recorded = ref [] in
          Hashtbl.replace firings n.Graph.id recorded;
          let step () =
            pops := [];
            pushes := [];
            match behaviour.Behaviour.try_step io with
            | None -> false
            | Some f ->
              incr total;
              recorded :=
                {
                  e_method = f.Behaviour.method_name;
                  e_pops = Array.of_list (List.rev !pops);
                  e_pushes = Array.of_list (List.rev !pushes);
                  e_pop_slots = [||];
                  e_push_slots = [||];
                  e_run = 1;
                  e_shape = 0;
                }
                :: !recorded;
              true
          in
          Some step
        end)
      nodes
  in
  (* Raw sink drains: consume everything queued on a sink's inputs. *)
  let sink_drains =
    List.filter_map
      (fun (n : Graph.node) ->
        if n.Graph.spec.Spec.role <> Spec.Sink then None
        else
          let ins =
            List.map
              (fun (c : Graph.channel) -> chan c.Graph.chan_id)
              (Graph.in_channels g n.Graph.id)
          in
          Some
            (fun () ->
              List.fold_left
                (fun acc c ->
                  let drained = Queue.length c.rc_q > 0 in
                  Queue.clear c.rc_q;
                  acc || drained)
                false ins))
      nodes
  in
  (* Round-robin to quiescence: each sweep gives every node a
     fire-to-exhaustion turn (bounded queues keep any one turn finite). *)
  let progress = ref true in
  while !progress && not !truncated do
    progress := false;
    List.iter
      (fun step ->
        while (not !truncated) && step () do
          progress := true;
          if !total > max_firings then truncated := true
        done)
      steppers;
    List.iter (fun drain -> if drain () then progress := true) sink_drains
  done;
  if !truncated then { empty with truncated = true; recorded_firings = !total }
  else begin
    let tables =
      List.filter_map
        (fun (n : Graph.node) ->
          match Hashtbl.find_opt firings n.Graph.id with
          | None -> None
          | Some { contents = [] } -> None
          | Some recorded ->
            let entries = List.rev !recorded in
            let user =
              List.exists
                (fun e ->
                  Array.exists (fun (_, k) -> k = K_user) e.e_pops
                  || Array.exists (fun (_, k) -> k = K_user) e.e_pushes)
                entries
            in
            let prelude, period, verified =
              match segment_at_eof entries with
              | s1 :: s2 :: rest ->
                let verified =
                  match rest with
                  | s3 :: _ ->
                    Array.length s2 = Array.length s3
                    && Array.for_all2 entry_equal s2 s3
                  | [] -> false
                in
                (s1, s2, verified)
              | [ s1 ] -> (s1, [||], false)
              | [] -> (Array.of_list entries, [||], false)
            in
            Some
              ( n.Graph.id,
                {
                  t_node = n.Graph.id;
                  t_prelude = prelude;
                  t_period = period;
                  t_verified = verified;
                  t_user_tokens = user;
                } ))
        nodes
    in
    { empty with tables; recorded_firings = !total }
  end

(* ---- region partition ------------------------------------------------ *)

(* A kernel with two or more data methods is a reactive merge: which
   method fires first depends on the arrival order of independent input
   streams, which the untimed recorder cannot predict (the histogram's
   [configureBins]/[count] pair is the suite's example). Such nodes keep
   their tables for inspection but are never statically scheduled. *)
let multi_data_methods (n : Graph.node) =
  let data (m : Bp_kernel.Method_spec.t) =
    match m.Bp_kernel.Method_spec.trigger with
    | Bp_kernel.Method_spec.On_data _ -> true
    | Bp_kernel.Method_spec.On_token _ -> false
  in
  List.length (List.filter data n.Graph.spec.Spec.methods) > 1

let node_static (n : Graph.node) tbl =
  (match n.Graph.spec.Spec.role with
  | Spec.Source | Spec.Const_source | Spec.Sink -> false
  | _ -> true)
  && Array.length tbl.t_period > 0
  && (not tbl.t_user_tokens)
  && not (multi_data_methods n)

let partition g sched =
  let nodes =
    List.sort (fun (a : Graph.node) b -> compare a.Graph.id b.Graph.id)
      (Graph.nodes g)
  in
  let static_ids = Hashtbl.create 16 in
  List.iter
    (fun (n : Graph.node) ->
      match List.assoc_opt n.Graph.id sched.tables with
      | Some tbl when node_static n tbl ->
        Hashtbl.replace static_ids n.Graph.id ()
      | _ -> ())
    nodes;
  (* Union-find over static nodes; edges are channels between them. *)
  let parent = Hashtbl.create 16 in
  let rec find i =
    match Hashtbl.find_opt parent i with
    | Some p when p <> i ->
      let r = find p in
      Hashtbl.replace parent i r;
      r
    | _ -> i
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  Hashtbl.iter (fun id () -> Hashtbl.replace parent id id) static_ids;
  List.iter
    (fun (c : Graph.channel) ->
      let s = c.Graph.src.Graph.node and d = c.Graph.dst.Graph.node in
      if Hashtbl.mem static_ids s && Hashtbl.mem static_ids d then union s d)
    (Graph.channels g);
  (* Deterministic region numbering: ascending by least member id, static
     components first, then singleton dynamic regions. *)
  let comps = Hashtbl.create 8 in
  Hashtbl.iter
    (fun id () ->
      let root = find id in
      let members =
        match Hashtbl.find_opt comps root with Some l -> l | None -> []
      in
      Hashtbl.replace comps root (id :: members))
    static_ids;
  let static_regions =
    Hashtbl.fold (fun _root members acc -> List.sort compare members :: acc)
      comps []
    |> List.sort compare
  in
  let dynamic_regions =
    List.filter_map
      (fun (n : Graph.node) ->
        if Hashtbl.mem static_ids n.Graph.id then None
        else Some [ n.Graph.id ])
      nodes
  in
  List.mapi
    (fun i (static, members) ->
      { r_id = i; r_nodes = members; r_static = static })
    (List.map (fun m -> (true, m)) static_regions
    @ List.map (fun m -> (false, m)) dynamic_regions)

(* ---- slot resolution ------------------------------------------------- *)

(* Rewrite each table entry's channel references as kernel port ordinals —
   the slot indices of {!Bp_kernel.Behaviour.indexed} — and annotate it
   with the length of the maximal run of identical firings starting at
   it, so the timed engine dispatches without any name lookup and can arm
   a whole run from one guard validation. Runs never cross the prelude/
   period boundary (each segment is swept independently, no wrap). *)
let resolve g sched =
  let port_of_chan = Hashtbl.create 64 in
  List.iter
    (fun (c : Graph.channel) ->
      Hashtbl.replace port_of_chan c.Graph.chan_id
        (c.Graph.src.Graph.port, c.Graph.dst.Graph.port))
    (Graph.channels g);
  let resolve_node (id, tbl) =
    let spec = (Graph.node g id).Graph.spec in
    let pop_slot (cid, _) =
      Spec.input_ordinal spec (snd (Hashtbl.find port_of_chan cid))
    in
    let push_slot (cid, _) =
      Spec.output_ordinal spec (fst (Hashtbl.find port_of_chan cid))
    in
    (* Shape numbering, shared by prelude and period: entries with the
       same (method, pops, pushes) footprint get the same index, assigned
       in first-occurrence order (prelude first), so the table carries at
       most a handful of shapes and the engine can compile each once per
       run instead of once per entry. *)
    let shapes = ref [] and nshapes = ref 0 in
    let shape_of e =
      let rec find i = function
        | [] ->
          shapes := e :: !shapes;
          incr nshapes;
          !nshapes - 1
        | e' :: rest -> if entry_equal e' e then i else find (i - 1) rest
      in
      find (!nshapes - 1) !shapes
    in
    let resolve_seg entries =
      let n = Array.length entries in
      let out =
        Array.map
          (fun e ->
            {
              e with
              e_pop_slots = Array.map pop_slot e.e_pops;
              e_push_slots = Array.map push_slot e.e_pushes;
              e_shape = shape_of e;
            })
          entries
      in
      (* Backward sweep over the raw entries: [e_run] counts consecutive
         firings with the same method and channel/kind footprint. *)
      for i = n - 2 downto 0 do
        if entry_equal entries.(i) entries.(i + 1) then
          out.(i) <- { (out.(i)) with e_run = out.(i + 1).e_run + 1 }
      done;
      out
    in
    let prelude = resolve_seg tbl.t_prelude in
    let period = resolve_seg tbl.t_period in
    (id, { tbl with t_prelude = prelude; t_period = period })
  in
  { sched with tables = List.map resolve_node sched.tables }

(* ---- construction ---------------------------------------------------- *)

let build ?max_firings ~graph ~mapping () =
  let sched = record ?max_firings graph in
  if sched.truncated then sched
  else begin
    let sched = resolve graph sched in
    let regions = partition graph sched in
    let static_ids = Hashtbl.create 16 in
    List.iter
      (fun r ->
        if r.r_static then
          List.iter (fun id -> Hashtbl.replace static_ids id ()) r.r_nodes)
      regions;
    let by_proc =
      List.filter_map
        (fun p ->
          let on_p =
            List.filter (Hashtbl.mem static_ids)
              (List.sort compare (Mapping.nodes_on mapping p))
          in
          if on_p = [] then None else Some (p, on_p))
        (List.init (Mapping.processors mapping) Fun.id)
    in
    { sched with regions; by_proc }
  end

(* ---- queries --------------------------------------------------------- *)

let table t id = List.assoc_opt id t.tables

let static_node_ids t =
  List.concat_map (fun r -> if r.r_static then r.r_nodes else []) t.regions

let static_regions t =
  List.length (List.filter (fun r -> r.r_static) t.regions)

let coverage_bound t g =
  (* Fraction of recorded firings that belong to static-region nodes — an
     upper bound on the runtime static coverage the executor can report. *)
  ignore g;
  if t.recorded_firings = 0 then 0.
  else begin
    let static_ids = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace static_ids id ()) (static_node_ids t);
    let static_fires =
      List.fold_left
        (fun acc (id, tbl) ->
          if Hashtbl.mem static_ids id then
            acc
            + (Array.length tbl.t_prelude * 1)
            + Array.length tbl.t_period
          else acc)
        0 t.tables
    in
    float_of_int static_fires /. float_of_int t.recorded_firings
  end

(* ---- rendering ------------------------------------------------------- *)

let pp_entry ppf e =
  let pp_side slots ppf a =
    Array.iteri
      (fun i (cid, k) ->
        if i > 0 then Format.fprintf ppf ",";
        Format.fprintf ppf "c%d:%s" cid (kind_name k);
        if i < Array.length slots then Format.fprintf ppf "@@s%d" slots.(i))
      a
  in
  Format.fprintf ppf "%s[%a -> %a]" e.e_method
    (pp_side e.e_pop_slots) e.e_pops
    (pp_side e.e_push_slots) e.e_pushes;
  if e.e_run > 1 then Format.fprintf ppf "x%d" e.e_run

let pp g ppf t =
  if t.truncated then
    Format.fprintf ppf
      "schedule: recorder truncated after %d firings; no tables@,"
      t.recorded_firings
  else begin
    Format.fprintf ppf "schedule: %d regions (%d static), %d tables@,"
      (List.length t.regions) (static_regions t) (List.length t.tables);
    List.iter
      (fun r ->
        Format.fprintf ppf "  region %d (%s):%t@," r.r_id
          (if r.r_static then "static" else "dynamic")
          (fun ppf ->
            List.iter
              (fun id ->
                Format.fprintf ppf " %s" (Graph.node g id).Graph.name)
              r.r_nodes))
      t.regions;
    List.iter
      (fun p ->
        Format.fprintf ppf "  pe %d static kernels:%t@," (fst p)
          (fun ppf ->
            List.iter
              (fun id ->
                Format.fprintf ppf " %s" (Graph.node g id).Graph.name)
              (snd p)))
      t.by_proc;
    List.iter
      (fun (id, tbl) ->
        Format.fprintf ppf "  %s: prelude %d, period %d%s%s@,"
          (Graph.node g id).Graph.name
          (Array.length tbl.t_prelude)
          (Array.length tbl.t_period)
          (if tbl.t_verified then " (verified)" else "")
          (if tbl.t_user_tokens then " (user tokens)" else "");
        if Array.length tbl.t_period > 0 && Array.length tbl.t_period <= 8
        then begin
          Format.fprintf ppf "    period:";
          Array.iter
            (fun e -> Format.fprintf ppf " %a" pp_entry e)
            tbl.t_period;
          Format.fprintf ppf "@,"
        end)
      t.tables
  end
