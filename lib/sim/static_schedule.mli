(** Quasi-static schedules: per-kernel periodic firing tables and the
    partition of a mapped graph into static regions.

    Built by the compiler's [schedule] pass (pass 10) from an untimed
    functional execution of the graph — the "recorder" — and carried in
    the {!Bp_compiler.Plan.t} artifact. The timed engine
    ({!Sim.run} [?static_schedule]) uses the artifact to {e report} how
    much of a run matched the predicted firing pattern; its correctness
    never depends on the tables. What makes quasi-static execution exact
    is the kernels' [starved] decline oracles
    ({!Bp_kernel.Behaviour.t.starved}) — see docs/PERFORMANCE.md
    §"Quasi-static execution".

    Determinism note: per-node firing sequences are a function of input
    item sequences alone (declined attempts mutate nothing — the Kahn
    determinism argument in docs/COMPILER.md), so the untimed recorder
    observes the same per-node sequences as any timed interleaving, and
    rebuilding the schedule always yields an identical artifact. *)

(** The kind of item a recorded firing moved. *)
type item_kind = K_data | K_eol | K_eof | K_user

val kind_name : item_kind -> string

val kind_of_item : Bp_kernel.Item.t -> item_kind
(** The table classification of a queued item — what the engine's
    scripted-firing guard compares ring fronts against. *)

type entry = {
  e_method : string;  (** Method the firing executed. *)
  e_pops : (int * item_kind) array;
      (** Channel id and item kind of each pop, in pop order. *)
  e_pushes : (int * item_kind) array;
      (** Channel id and item kind of each push (one per fan-out copy). *)
  e_pop_slots : int array;
      (** Input port ordinal of each pop ({!Bp_kernel.Spec.input_ordinal}
          of the popped channel's destination port) — the slot indices the
          engine hands to {!Bp_kernel.Behaviour.indexed.fire_indexed}.
          Aligned with [e_pops]; filled by the [resolve] step inside
          {!build} (the raw recorder leaves [[||]]). *)
  e_push_slots : int array;
      (** Output port ordinal of each push, aligned with [e_pushes].
          Fan-out copies of one push repeat the same ordinal. *)
  e_run : int;
      (** Length of the maximal run of consecutive identical firings
          (same method and channel/kind footprint) starting at this
          entry, within its prelude or period segment — one guard
          validation by the engine arms the whole run. Always [>= 1];
          [1] before [resolve]. *)
  e_shape : int;
      (** Index of this entry's distinct (method, pops, pushes) shape
          within its node's table, assigned in first-occurrence order
          (prelude before period, shared numbering). A table holds at
          most a handful of shapes, so the engine compiles each shape's
          slot bindings once per run and indexes them per entry. [0]
          before [resolve]. *)
}

type node_table = {
  t_node : Bp_graph.Graph.node_id;
  t_prelude : entry array;
      (** Firings of the first recorded frame, in order. *)
  t_period : entry array;
      (** Firings of the second frame — the steady-state cycle. Empty
          when fewer than two frames were recorded (no period known). *)
  t_verified : bool;
      (** A third recorded frame repeated [t_period] exactly. *)
  t_user_tokens : bool;
      (** The node popped or pushed a [User] control token — it is
          excluded from static regions. *)
}

type region = {
  r_id : int;
  r_nodes : Bp_graph.Graph.node_id list;  (** Ascending. *)
  r_static : bool;
}

type t = {
  tables : (Bp_graph.Graph.node_id * node_table) list;  (** Ascending id. *)
  regions : region list;
      (** Every node of the graph appears in exactly one region: static
          nodes grouped by channel-connectivity, every other node as a
          singleton dynamic region (invariant asserted in
          [test/test_schedule.ml]). *)
  by_proc : (int * Bp_graph.Graph.node_id list) list;
      (** Static nodes of each processor — the per-PE firing-table
          projection. PEs with no static kernel are omitted. *)
  recorded_firings : int;
  truncated : bool;
      (** The recorder hit its firing cap; [tables] and [regions] are
          empty and the simulator falls back to fully-dynamic dispatch. *)
}

val empty : t

val build :
  ?max_firings:int ->
  graph:Bp_graph.Graph.t ->
  mapping:Mapping.t ->
  unit ->
  t
(** Record an untimed execution of [graph] (default cap 5 million
    firings; past it the result is [truncated] and otherwise empty),
    segment each node's firing sequence at its end-of-frame pops into
    prelude + period, and partition the graph into regions. Sinks are
    drained raw rather than instantiated — instantiating a sink
    behaviour would reset the application's shared output collector. *)

val table : t -> Bp_graph.Graph.node_id -> node_table option

val static_node_ids : t -> Bp_graph.Graph.node_id list
(** Members of all static regions. *)

val static_regions : t -> int
(** Number of static regions. *)

val coverage_bound : t -> Bp_graph.Graph.t -> float
(** Fraction of recorded firings belonging to static-region nodes — the
    upper bound on the runtime static coverage a run can report. *)

val pp : Bp_graph.Graph.t -> Format.formatter -> t -> unit
(** The [--dump-after schedule] rendering: regions, per-PE projections,
    and per-table prelude/period summaries. *)
