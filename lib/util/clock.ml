(* A monotonicized wall clock: remember the highest reading handed out and
   never go below it. This makes interval measurements robust against
   backward NTP steps without requiring C stubs for CLOCK_MONOTONIC.

   The high-water mark is an [Atomic.t] advanced by compare-and-set, so
   the clock is safe to read from every domain of a [Domain_pool] — per-
   domain task timings race on nothing, and the monotonic guarantee holds
   process-wide, not per domain. *)

let last = Atomic.make 0.

let rec now_s () =
  let t = Unix.gettimeofday () in
  let cur = Atomic.get last in
  if t <= cur then cur
  else if Atomic.compare_and_set last cur t then t
  else now_s ()

let elapsed_s ~since = Float.max 0. (now_s () -. since)
