(* A monotonicized wall clock: remember the highest reading handed out and
   never go below it. This makes interval measurements robust against
   backward NTP steps without requiring C stubs for CLOCK_MONOTONIC. *)

let last = ref 0.

let now_s () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed_s ~since = Float.max 0. (now_s () -. since)
