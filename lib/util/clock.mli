(** Monotonic timestamps for measuring elapsed wall time.

    [Unix.gettimeofday] follows the system clock, which NTP may step
    backwards; naive [t1 -. t0] differences can then go negative, which
    poisons timing tables and trace exports. The stdlib does not expose
    [CLOCK_MONOTONIC] without C stubs, so this module monotonicizes the
    wall clock instead: {!now_s} never returns a value smaller than any
    value it has already returned, so durations measured between two
    {!now_s} readings are never negative (a backward step reads as a
    zero-length interval, a forward step passes through unchanged).

    The high-water mark is atomic, so the guarantee is process-wide and
    holds across {!Domain_pool} workers: readings taken on different
    domains never order backwards either.

    All compile-pass timings ({!Bp_compiler.Pass}) and all
    {!Domain_pool} task timings read this clock. *)

val now_s : unit -> float
(** The current time in seconds. Non-decreasing across calls within the
    process; the absolute origin is the Unix epoch (whatever the system
    clock claimed at the highest reading so far). *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since] is [now_s () -. since], clamped to be
    non-negative (defensive: with [since] from {!now_s} the clamp never
    engages). *)
