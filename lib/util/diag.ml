type severity = Info | Warning | Error

type subject =
  | Whole_graph
  | Node of string
  | Channel of int

type t = {
  severity : severity;
  pass : string;
  subject : subject;
  message : string;
}

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let v severity ~pass ?(subject = Whole_graph) message =
  { severity; pass; subject; message }

type buffer = { mutable rev : t list; mutable n : int }

let buffer () = { rev = []; n = 0 }

let add b d =
  b.rev <- d :: b.rev;
  b.n <- b.n + 1

let addf b severity ~pass ?subject fmt =
  Format.kasprintf (fun message -> add b (v severity ~pass ?subject message)) fmt

let list b = List.rev b.rev
let count b = b.n
let errors ds = List.filter (fun d -> d.severity = Error) ds

let worst ds =
  List.fold_left
    (fun acc d ->
      match (acc, d.severity) with
      | Some Error, _ | _, Error -> Some Error
      | Some Warning, _ | _, Warning -> Some Warning
      | _ -> Some Info)
    None ds

let subject_string = function
  | Whole_graph -> ""
  | Node n -> Printf.sprintf " kernel '%s':" n
  | Channel id -> Printf.sprintf " channel %d:" id

let to_string d =
  Printf.sprintf "%s[%s]%s %s" (severity_name d.severity) d.pass
    (subject_string d.subject)
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let pp_list ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) ds
