(** Accumulating compiler diagnostics.

    The historical compiler reported problems exclusively by raising
    {!Err.Error}, which aborts at the first issue and carries no
    provenance. This module is the accumulating half of the error story:
    passes append structured diagnostics — severity, the pass that spoke,
    the graph entity concerned — into a {!buffer} as they run, and
    {!Err.Error} is raised only at the pass barrier (by
    {!Bp_compiler.Pass.run_all}) once the failing pass has been recorded.

    Ordering is insertion order and therefore deterministic for a
    deterministic compile; [bpc compile --explain] prints the list and a
    test pins the determinism. *)

type severity = Info | Warning | Error

type subject =
  | Whole_graph  (** About the program as a whole. *)
  | Node of string  (** A kernel, by graph node name. *)
  | Channel of int  (** A channel, by channel id. *)

type t = {
  severity : severity;
  pass : string;  (** The compile pass that emitted the diagnostic. *)
  subject : subject;
  message : string;
}

val severity_name : severity -> string
(** ["info" | "warning" | "error"]. *)

val v : severity -> pass:string -> ?subject:subject -> string -> t
(** Build one diagnostic. [subject] defaults to {!Whole_graph}. *)

(** {1 Accumulation} *)

type buffer
(** A mutable append-only accumulator. *)

val buffer : unit -> buffer

val add : buffer -> t -> unit

val addf :
  buffer ->
  severity ->
  pass:string ->
  ?subject:subject ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Format and append. *)

val list : buffer -> t list
(** All diagnostics, in insertion order. *)

val count : buffer -> int
(** Number accumulated so far — passes snapshot this to detect
    diagnostics added on their watch. *)

(** {1 Queries and rendering} *)

val errors : t list -> t list
(** The error-severity subset, order preserved. *)

val worst : t list -> severity option
(** The highest severity present, [None] on an empty list. *)

val to_string : t -> string
(** One line: ["error[align] kernel '3x3 Median': ..."]. *)

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
