(* A work-stealing pool of domains for independent tasks. See the .mli
   and docs/PARALLELISM.md for the contract.

   Concurrency design: one mutex guards everything — the batch slot, the
   per-worker queues, and the counters. Tasks are whole compile+simulate
   runs, so the critical sections (dequeue an index, decrement a counter)
   are nanoseconds against task milliseconds; a lock-free deque would buy
   nothing measurable and cost a memory-model argument. Two conditions:
   [work] wakes workers (new batch, or batch finished — wake so idle
   thieves re-check), [finished] wakes callers waiting in [map] or
   [shutdown]. *)

type stats = { tasks : int; wall_s : float; steals : int }

(* Mutable twin of [stats]; fields touched only under the pool lock. *)
type counters = {
  mutable c_tasks : int;
  mutable c_wall_s : float;
  mutable c_steals : int;
}

(* One batch of tasks. [queues.(w)] holds task indices dealt to worker
   [w]; the owner takes from [lo] upward, thieves take from [hi - 1]
   downward, so an owner streams through its deal in submission order
   while thieves drain the far end. [run] executes one task and must not
   raise — exceptions are captured into the caller's error slots. *)
type batch = {
  queues : (int array * cursors) array;
  run : domain:int -> int -> unit;
  mutable remaining : int;
}

and cursors = { mutable lo : int; mutable hi : int }

type 'r t = {
  n : int;
  resources : 'r array;
  counters : counters array;
  lock : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable batch : batch option;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;  (* [||] for the inline pool *)
}

let recommended_domains () = min 8 (Domain.recommended_domain_count ())
let domains t = t.n

(* ---- scheduling (all under t.lock) ------------------------------------ *)

let take_own (b : batch) w =
  let items, cur = b.queues.(w) in
  if cur.lo < cur.hi then begin
    let i = items.(cur.lo) in
    cur.lo <- cur.lo + 1;
    Some i
  end
  else None

let steal (b : batch) ~thief n =
  let rec scan k =
    if k = n then None
    else
      let v = (thief + k) mod n in
      let items, cur = b.queues.(v) in
      if cur.lo < cur.hi then begin
        cur.hi <- cur.hi - 1;
        Some items.(cur.hi)
      end
      else scan (k + 1)
  in
  scan 1

(* One task, executed off-lock, with its wall time booked to [w]. *)
let exec t (b : batch) w idx =
  Mutex.unlock t.lock;
  let t0 = Clock.now_s () in
  b.run ~domain:w idx;
  let dt = Clock.elapsed_s ~since:t0 in
  Mutex.lock t.lock;
  let c = t.counters.(w) in
  c.c_tasks <- c.c_tasks + 1;
  c.c_wall_s <- c.c_wall_s +. dt;
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then begin
    t.batch <- None;
    (* Wake the caller in [map] and any thief parked on [work]. *)
    Condition.broadcast t.finished;
    Condition.broadcast t.work
  end

let worker_loop t w =
  Mutex.lock t.lock;
  let rec loop () =
    if t.stopping then Mutex.unlock t.lock
    else
      match t.batch with
      | None ->
        Condition.wait t.work t.lock;
        loop ()
      | Some b -> (
        match take_own b w with
        | Some idx ->
          exec t b w idx;
          loop ()
        | None -> (
          match steal b ~thief:w t.n with
          | Some idx ->
            t.counters.(w).c_steals <- t.counters.(w).c_steals + 1;
            exec t b w idx;
            loop ()
          | None ->
            (* Batch dealt out but not drained: siblings are mid-task.
               Wait for the completion broadcast (or a new batch). *)
            Condition.wait t.work t.lock;
            loop ()))
  in
  loop ()

(* ---- lifecycle --------------------------------------------------------- *)

let create ~domains ~resource () =
  if domains < 1 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be >= 1, got %d"
         domains);
  let t =
    {
      n = domains;
      (* Resources are built on the creating domain, before any worker
         exists; workers only ever see their own slot. *)
      resources = Array.init domains resource;
      counters =
        Array.init domains (fun _ ->
            { c_tasks = 0; c_wall_s = 0.; c_steals = 0 });
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stopping = false;
      workers = [||];
    }
  in
  if domains > 1 then
    t.workers <- Array.init domains (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

let shutdown t =
  Mutex.lock t.lock;
  while t.batch <> None do
    Condition.wait t.finished t.lock
  done;
  let ws = t.workers in
  t.workers <- [||];
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join ws

let with_pool ~domains ~resource f =
  let t = create ~domains ~resource () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---- map --------------------------------------------------------------- *)

(* Re-raise the lowest-indexed captured failure with its original
   backtrace — deterministic no matter which domain hit it first. *)
let reraise_first errors =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let map_inline t f tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let results = Array.make n None in
  let errors = Array.make n None in
  let c = t.counters.(0) in
  Array.iteri
    (fun i task ->
      let t0 = Clock.now_s () in
      (match f ~domain:0 t.resources.(0) task with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      c.c_tasks <- c.c_tasks + 1;
      c.c_wall_s <- c.c_wall_s +. Clock.elapsed_s ~since:t0)
    arr;
  reraise_first errors;
  List.init n (fun i ->
      match results.(i) with
      | Some v -> v
      | None -> assert false)

let map t f tasks =
  if t.stopping then invalid_arg "Domain_pool.map: pool is shut down";
  if t.n = 1 then map_inline t f tasks
  else begin
    let arr = Array.of_list tasks in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let errors = Array.make n None in
      let run ~domain idx =
        match f ~domain t.resources.(domain) arr.(idx) with
        | v -> results.(idx) <- Some v
        | exception e ->
          errors.(idx) <- Some (e, Printexc.get_raw_backtrace ())
      in
      (* Deal task i to worker (i mod n): round-robin keeps the deal
         deterministic and roughly balanced before stealing kicks in. *)
      let queues =
        Array.init t.n (fun w ->
            let mine = ref [] in
            for i = n - 1 downto 0 do
              if i mod t.n = w then mine := i :: !mine
            done;
            let items = Array.of_list !mine in
            (items, { lo = 0; hi = Array.length items }))
      in
      let b = { queues; run; remaining = n } in
      Mutex.lock t.lock;
      while t.batch <> None do
        Condition.wait t.finished t.lock
      done;
      if t.stopping then begin
        Mutex.unlock t.lock;
        invalid_arg "Domain_pool.map: pool is shut down"
      end;
      t.batch <- Some b;
      Condition.broadcast t.work;
      while b.remaining > 0 do
        Condition.wait t.finished t.lock
      done;
      Mutex.unlock t.lock;
      reraise_first errors;
      List.init n (fun i ->
          match results.(i) with
          | Some v -> v
          | None -> assert false)
    end
  end

(* ---- introspection ----------------------------------------------------- *)

let stats t =
  Mutex.lock t.lock;
  let s =
    Array.to_list
      (Array.map
         (fun c -> { tasks = c.c_tasks; wall_s = c.c_wall_s; steals = c.c_steals })
         t.counters)
  in
  Mutex.unlock t.lock;
  s

let resources t = Array.to_list t.resources
