(** A work-stealing pool of OCaml 5 domains for *independent* tasks.

    The simulation engine itself is single-threaded by design (see
    docs/PERFORMANCE.md); what parallelizes is the layer above it: sweeps
    of independent compile+simulate runs — per application, per mapping,
    per rate probe. This pool shards such task lists across domains and
    merges the results back in {e submission order}, so a sweep's output
    is bit-exact regardless of how many domains ran it or which domain
    ran which task. The normative contract — what tasks may and may not
    do, and what determinism is promised — is docs/PARALLELISM.md.

    Scheduling is work-stealing: task [i] of a batch is dealt to worker
    [i mod domains]; a worker drains its own queue front-to-back and,
    when empty, steals from the {e back} of a sibling's queue (recorded
    in [steals]). All queue manipulation shares one mutex — tasks here
    are whole compile+simulate runs (milliseconds to seconds), so lock
    traffic is noise; the win is the dealing/stealing {e policy}, not a
    lock-free deque.

    Each worker owns one ['r] {b resource}, created by the [resource]
    factory when the pool is created and handed to every task that
    worker runs. The sweep layer instantiates ['r] with a chunk pool
    ({!Bp_image.Pool.t}, which is not domain-safe) so each domain has
    its own — the per-domain pool-ownership rule of docs/PARALLELISM.md.

    A pool with [domains = 1] spawns no domain at all: [map] runs every
    task inline on the caller, in order, through the same accounting.
    This is the [-j 1] path, and it makes "parallel output equals serial
    output" a real end-to-end test rather than a tautology. *)

type 'r t
(** A pool of workers, each owning one ['r]. *)

type stats = {
  tasks : int;  (** Tasks this domain completed (cumulative). *)
  wall_s : float;  (** Wall seconds this domain spent inside tasks. *)
  steals : int;  (** Tasks this domain took from a sibling's queue. *)
}

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 — sweeps here are
    memory-bandwidth-bound well before 8 domains, and the cap keeps the
    default polite on big hosts. *)

val create : domains:int -> resource:(int -> 'r) -> unit -> 'r t
(** [create ~domains ~resource ()] starts [domains] worker domains
    ([domains >= 2]; the caller only coordinates), each with
    [resource i] ([i] in [0 .. domains-1]) built eagerly before any
    task runs, so ownership is pinned from the first task on.
    [domains = 1] is the inline path: no domain is spawned and [map]
    runs tasks on the caller. Raises [Invalid_argument] if
    [domains < 1]. *)

val domains : _ t -> int
(** The worker count the pool was created with. *)

val map : 'r t -> (domain:int -> 'r -> 'a -> 'b) -> 'a list -> 'b list
(** [map t f tasks] runs [f ~domain resource task] for every task, on
    whichever worker gets to it, and returns the results {b in
    submission order} — the deterministic-merge rule. Tasks must be
    independent: they may share no mutable state except through their
    per-domain resource, and must not assume anything about execution
    order (docs/PARALLELISM.md lists the full requirements).

    If tasks raise, every remaining task still runs (the batch drains),
    then the exception of the {e lowest-indexed} failed task is
    re-raised on the caller with its original backtrace — deterministic
    regardless of scheduling. The pool stays usable afterwards.
    Concurrent [map] calls from different threads serialize, batch by
    batch. *)

val stats : _ t -> stats list
(** Per-domain counters, cumulative since [create], in domain order. *)

val resources : 'r t -> 'r list
(** Each worker's resource, in domain order. Inspect between batches
    only — touching a resource while a batch runs races with its owner
    (the one sanctioned use is read-only stats such as
    {!Bp_image.Pool.stats}). *)

val shutdown : _ t -> unit
(** Wait for any in-flight batch, stop the workers, and join them.
    Idempotent; [map] after [shutdown] raises [Invalid_argument]. *)

val with_pool : domains:int -> resource:(int -> 'r) -> ('r t -> 'a) -> 'a
(** [create], apply, and [shutdown] (also on exception). *)
